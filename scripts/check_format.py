#!/usr/bin/env python3
"""Mechanical format checks, toolchain-independent and tree-wide.

clang-format owns layout (see .clang-format); this script enforces the
hygiene rules that need no compiler and hold for every tracked source
file regardless of age:

  - no tab characters (indentation is spaces everywhere in this tree)
  - no trailing whitespace
  - LF line endings (no CRLF)
  - file ends with exactly one newline
  - no line longer than 100 characters (hard cap; the 80-column target
    is clang-format's job)

Usage: check_format.py [paths...]   (default: git ls-files selection)
stdlib only; exit 1 listing every violation, 0 when clean.
"""
import subprocess
import sys
from pathlib import Path

EXTENSIONS = {".cpp", ".hpp", ".h", ".cc", ".py", ".cmake"}
FILENAMES = {"CMakeLists.txt"}
MAX_LINE = 100


def tracked_files():
    out = subprocess.run(
        ["git", "ls-files"], capture_output=True, text=True, check=True
    ).stdout
    for name in out.splitlines():
        p = Path(name)
        if p.suffix in EXTENSIONS or p.name in FILENAMES:
            yield p


def check_file(path: Path) -> list:
    problems = []
    try:
        raw = path.read_bytes()
    except OSError as e:
        return [f"{path}: unreadable: {e}"]
    if not raw:
        return []
    if b"\r" in raw:
        problems.append(f"{path}: CRLF line endings")
    if not raw.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    elif raw.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    for lineno, line in enumerate(raw.split(b"\n"), start=1):
        if b"\t" in line:
            problems.append(f"{path}:{lineno}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
        if len(line) > MAX_LINE:
            problems.append(
                f"{path}:{lineno}: line is {len(line)} chars (cap {MAX_LINE})"
            )
    return problems


def main() -> int:
    paths = [Path(p) for p in sys.argv[1:]] or list(tracked_files())
    problems = []
    for path in paths:
        problems.extend(check_file(path))
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"{len(problems)} format violation(s)", file=sys.stderr)
        return 1
    print(f"{len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
