#!/usr/bin/env python3
"""Validate a BENCH_*.json run report (schema halcyon.run_report.v5).

Checks, per file:
  - required top-level fields and the schema id
  - per-node stats sum to the aggregate stats, counter by counter
  - dead_letter_causes sum to dead_letters (and respect --max-dead-letters
    when given)
  - per-probe invariants: count == sum of bucket counts, min <= p50 <= p90
    <= p99 <= max, and every listed bucket is non-empty with a power-of-two
    (or zero) lower bound
  - at least --min-populated probes carry samples
  - the hal::check buffer audit is clean: no leaked buffers, no
    double-retires, no poison hits (HAL_CHECK=1 builds; a HAL_CHECK=0
    build reports all-zero audit fields, which passes trivially)

Usage: check_report.py [--min-populated N] [--allow-buffer-leaks]
       [--max-dead-letters N] report.json [report.json ...]

stdlib only; exits non-zero on the first failing file.
"""
import argparse
import json
import sys

# Schema versions this validator understands. A report carrying any other
# id (e.g. a future v6 emitted by a newer runtime) must fail loudly here:
# silently "validating" fields whose meaning changed is worse than failing.
# v5 added the wire-batching counters (wire_frames, coalesced_msgs,
# wire_flush_*) and the frame_fill_msgs probe; the structural checks below
# cover them like any other stat/histogram.
KNOWN_SCHEMAS = {"halcyon.run_report.v5"}
TOP_FIELDS = [
    "schema",
    "machine",
    "nodes",
    "workers",
    "seed",
    "makespan_ns",
    "dead_letters",
    "dead_letter_causes",
    "buffers",
    "stats",
    "per_node_stats",
    "probes",
]
DEAD_LETTER_CAUSES = ["unknown_actor", "stale_descriptor", "shutdown_drain"]
BUFFER_FIELDS = [
    "acquired",
    "retired",
    "adopted",
    "escaped",
    "in_flight",
    "leaked",
    "double_retires",
    "poison_hits",
]
HIST_FIELDS = ["unit", "count", "sum", "min", "max", "p50", "p90", "p99", "buckets"]


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    return False


def check_histogram(path, name, h):
    for f in HIST_FIELDS:
        if f not in h:
            return fail(path, f"probe {name} missing field '{f}'")
    bucket_total = sum(count for _, count in h["buckets"])
    if bucket_total != h["count"]:
        return fail(
            path,
            f"probe {name}: bucket counts sum to {bucket_total}, "
            f"count says {h['count']}",
        )
    for lower, count in h["buckets"]:
        if count <= 0:
            return fail(path, f"probe {name}: empty bucket listed at {lower}")
        if lower != 0 and (lower & (lower - 1)) != 0:
            return fail(
                path, f"probe {name}: bucket lower {lower} is not a power of two"
            )
    if h["count"] > 0:
        order = [h["min"], h["p50"], h["p90"], h["p99"], h["max"]]
        # Quantiles are bucket lower bounds, so p50 may round below min;
        # clamp the comparison to the quantile chain itself plus max.
        chain = order[1:]
        if any(a > b for a, b in zip(chain, chain[1:])):
            return fail(path, f"probe {name}: quantiles out of order {order}")
        if h["min"] > h["max"] or h["sum"] < h["max"]:
            return fail(path, f"probe {name}: inconsistent min/max/sum")
    return True


def check_buffers(path, b, allow_leaks):
    for f in BUFFER_FIELDS:
        if f not in b:
            return fail(path, f"buffers missing field '{f}'")
        if not isinstance(b[f], int) or b[f] < 0:
            return fail(path, f"buffers.{f} = {b[f]!r} is not a count")
    # Ledger conservation: every acquired buffer is retired, escaped to user
    # code, or still accounted for (in flight / leaked) at report time.
    accounted = b["retired"] + b["escaped"] + b["in_flight"] + b["leaked"]
    if accounted != b["acquired"]:
        return fail(
            path,
            f"buffers: acquired {b['acquired']} != retired {b['retired']} "
            f"+ escaped {b['escaped']} + in_flight {b['in_flight']} "
            f"+ leaked {b['leaked']}",
        )
    for f in ("double_retires", "poison_hits"):
        if b[f] != 0:
            return fail(path, f"buffers.{f} = {b[f]} (lifecycle violation)")
    if b["leaked"] != 0 and not allow_leaks:
        return fail(
            path,
            f"buffers.leaked = {b['leaked']} "
            "(pass --allow-buffer-leaks to waive)",
        )
    return True


def check_dead_letters(path, d, max_dead_letters):
    causes = d["dead_letter_causes"]
    for f in DEAD_LETTER_CAUSES:
        if f not in causes:
            return fail(path, f"dead_letter_causes missing field '{f}'")
        if not isinstance(causes[f], int) or causes[f] < 0:
            return fail(path, f"dead_letter_causes.{f} = {causes[f]!r}")
    cause_sum = sum(causes[f] for f in DEAD_LETTER_CAUSES)
    if cause_sum != d["dead_letters"]:
        return fail(
            path,
            f"dead_letter_causes sum to {cause_sum}, "
            f"dead_letters says {d['dead_letters']}",
        )
    if max_dead_letters is not None and d["dead_letters"] > max_dead_letters:
        return fail(
            path,
            f"dead_letters = {d['dead_letters']} exceeds "
            f"--max-dead-letters {max_dead_letters}",
        )
    return True


def check(path, min_populated, allow_leaks, max_dead_letters):
    try:
        with open(path) as f:
            d = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable: {e}")

    for f in TOP_FIELDS:
        if f not in d:
            return fail(path, f"missing top-level field '{f}'")
    if d["schema"] not in KNOWN_SCHEMAS:
        return fail(
            path,
            f"unknown schema version '{d['schema']}' "
            f"(this validator understands: {', '.join(sorted(KNOWN_SCHEMAS))}); "
            "refusing to validate fields whose meaning may have changed",
        )
    if d["machine"] not in ("sim", "thread", "mn"):
        return fail(path, f"unknown machine '{d['machine']}'")
    if d["nodes"] < 1:
        return fail(path, f"nodes = {d['nodes']}")
    if d["workers"] < 1 or d["workers"] > d["nodes"]:
        return fail(
            path, f"workers = {d['workers']} outside [1, nodes={d['nodes']}]"
        )
    if len(d["per_node_stats"]) != d["nodes"]:
        return fail(
            path,
            f"{len(d['per_node_stats'])} per-node stat blocks for "
            f"{d['nodes']} nodes",
        )

    if not check_dead_letters(path, d, max_dead_letters):
        return False

    if not check_buffers(path, d["buffers"], allow_leaks):
        return False

    for counter, total in d["stats"].items():
        node_sum = sum(blk.get(counter, 0) for blk in d["per_node_stats"])
        if node_sum != total:
            return fail(
                path,
                f"stat {counter}: per-node sum {node_sum} != aggregate {total}",
            )

    populated = 0
    for name, h in d["probes"].items():
        if not check_histogram(path, name, h):
            return False
        if h["count"] > 0:
            populated += 1
    if populated < min_populated:
        return fail(
            path,
            f"only {populated} populated probes, expected >= {min_populated}",
        )

    print(
        f"{path}: ok ({d['machine']}, {d['nodes']} nodes, "
        f"{d['workers']} workers, makespan {d['makespan_ns']} ns, "
        f"{populated} populated probes)"
    )
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--min-populated", type=int, default=5)
    ap.add_argument(
        "--allow-buffer-leaks",
        action="store_true",
        help="do not fail on buffers.leaked != 0",
    )
    ap.add_argument(
        "--max-dead-letters",
        type=int,
        default=None,
        help="fail when dead_letters exceeds this (fault-smoke passes 0)",
    )
    ap.add_argument("reports", nargs="+")
    args = ap.parse_args()
    for path in args.reports:
        if not check(
            path,
            args.min_populated,
            args.allow_buffer_leaks,
            args.max_dead_letters,
        ):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
