#!/usr/bin/env bash
# Build and run the tier-1 suite under a sanitizer.
#
#   scripts/sanitize.sh thread   [ctest args...]   # TSan
#   scripts/sanitize.sh address  [ctest args...]   # ASan + UBSan
#
# The concurrency stress tests (test_stress, plus the ThreadMachine halves
# of the parameterized suites) are the reason this script exists: the
# ThreadMachine's termination detector, wakeup handshake, and MPSC endpoint
# queues are only trustworthy if this passes clean. CI runs both modes on
# every PR; run `scripts/sanitize.sh thread --repeat until-fail:50 -R Stress`
# to reproduce the 50-iteration race soak locally.
set -euo pipefail

mode="${1:?usage: scripts/sanitize.sh thread|address [ctest args...]}"
shift || true

case "$mode" in
  thread)
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
    ;;
  address)
    export ASAN_OPTIONS="${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
    ;;
  *)
    echo "unknown sanitizer '$mode' (want: thread | address)" >&2
    exit 2
    ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-$mode"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHAL_SANITIZE="$mode" \
  -DHAL_BUILD_BENCH=OFF \
  -DHAL_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"
