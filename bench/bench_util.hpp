// Shared helpers for the benchmark harness.
//
// Every bench binary prints a paper-style table to stdout, writes a
// machine-readable BENCH_<name>.json (the perf trajectory tracked across
// PRs), and exits 0; the HAL_BENCH_SCALE environment variable selects
// problem sizes:
//   small (default) — seconds-scale, CI friendly
//   paper           — closer to the paper's sizes (minutes on one core)
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/types.hpp"
#include "obs/run_report.hpp"
#include "runtime/config.hpp"

namespace hal::bench {

inline bool paper_scale() {
  const char* s = std::getenv("HAL_BENCH_SCALE");
  return s != nullptr && std::strcmp(s, "paper") == 0;
}

/// Read an unsigned integer from the environment. Malformed values (empty,
/// non-digit characters, overflow) are rejected with a stderr warning and
/// the default is used — the old atoi version silently turned "abc12" into 0
/// and quietly ran the wrong experiment.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  unsigned value = 0;
  bool ok = *s != '\0';
  for (const char* p = s; ok && *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      ok = false;
      break;
    }
    const unsigned digit = static_cast<unsigned>(*p - '0');
    if (value > (std::numeric_limits<unsigned>::max() - digit) / 10u) {
      ok = false;  // overflow
      break;
    }
    value = value * 10u + digit;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "warning: ignoring malformed %s='%s' (expected an unsigned "
                 "integer); using default %u\n",
                 name, s, fallback);
    return fallback;
  }
  return value;
}

/// Machine selection for every bench binary: HAL_MACHINE=sim|thread|mn
/// (parse_machine_kind's canonical names). Unknown values are rejected with
/// a stderr warning and the benchmark's default machine is used — same
/// contract as env_unsigned above.
inline MachineKind env_machine(MachineKind fallback) {
  const char* s = std::getenv("HAL_MACHINE");
  if (s == nullptr) return fallback;
  if (const auto kind = parse_machine_kind(s)) return *kind;
  std::fprintf(stderr,
               "warning: ignoring unknown HAL_MACHINE='%s' (expected "
               "sim|thread|mn); using default '%s'\n",
               s, std::string(to_string(fallback)).c_str());
  return fallback;
}

/// MnMachine worker-pool size: HAL_MN_WORKERS=N (0 = auto, the default).
/// Ignored unless the selected machine is mn.
inline std::uint32_t env_mn_workers() {
  return env_unsigned("HAL_MN_WORKERS", 0);
}

/// Wire-batching knobs for every bench binary (docs/perf.md):
///   HAL_BATCH=0|1            master switch (default: the config's default)
///   HAL_BATCH_FRAME_BYTES=N  frame payload cap
///   HAL_BATCH_MAX_MSGS=N     fill-flush record threshold
///   HAL_BATCH_HOLDOFF_NS=N   initial per-destination holdoff
/// Values that would make the config invalid are rejected with a warning
/// and the fallback is kept — same contract as env_unsigned above.
inline am::BatchConfig env_batching(am::BatchConfig fallback) {
  am::BatchConfig cfg = fallback;
  cfg.enabled = env_unsigned("HAL_BATCH", cfg.enabled ? 1 : 0) != 0;
  cfg.max_frame_bytes = env_unsigned("HAL_BATCH_FRAME_BYTES",
                                     cfg.max_frame_bytes);
  cfg.max_msgs = env_unsigned("HAL_BATCH_MAX_MSGS", cfg.max_msgs);
  cfg.holdoff_ns = env_unsigned(
      "HAL_BATCH_HOLDOFF_NS", static_cast<unsigned>(cfg.holdoff_ns));
  // Keep the adaptive clamp range around a knobbed holdoff.
  cfg.holdoff_min_ns = std::min(cfg.holdoff_min_ns, cfg.holdoff_ns);
  cfg.holdoff_max_ns = std::max(cfg.holdoff_max_ns, cfg.holdoff_ns);
  if (!cfg.valid()) {
    std::fprintf(stderr,
                 "warning: HAL_BATCH_* values form an invalid BatchConfig; "
                 "using defaults\n");
    return fallback;
  }
  return cfg;
}

inline double ms(SimTime ns) { return static_cast<double>(ns) / 1e6; }
inline double us(SimTime ns) { return static_cast<double>(ns) / 1e3; }
inline double secs(SimTime ns) { return static_cast<double>(ns) / 1e9; }

inline void header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("machine: virtual-time simulator calibrated to a CM-5 node\n");
  std::printf("==============================================================\n");
}

/// Write a run's structured report to `path` (deterministic JSON).
inline void report_json_path(const hal::obs::RunReport& report,
                             const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  const std::string json = report.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("report: %s\n", path.c_str());
}

/// Standard emission point for bench binaries: BENCH_<name>.json in the
/// working directory, next to the text table.
inline void report_json(const hal::obs::RunReport& report, const char* name) {
  report_json_path(report, std::string("BENCH_") + name + ".json");
}

}  // namespace hal::bench
