// Shared helpers for the benchmark harness.
//
// Every bench binary prints a paper-style table to stdout and exits 0; the
// HAL_BENCH_SCALE environment variable selects problem sizes:
//   small (default) — seconds-scale, CI friendly
//   paper           — closer to the paper's sizes (minutes on one core)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/types.hpp"

namespace hal::bench {

inline bool paper_scale() {
  const char* s = std::getenv("HAL_BENCH_SCALE");
  return s != nullptr && std::strcmp(s, "paper") == 0;
}

inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? static_cast<unsigned>(std::atoi(s)) : fallback;
}

inline double ms(SimTime ns) { return static_cast<double>(ns) / 1e6; }
inline double us(SimTime ns) { return static_cast<double>(ns) / 1e3; }
inline double secs(SimTime ns) { return static_cast<double>(ns) / 1e9; }

inline void header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("machine: virtual-time simulator calibrated to a CM-5 node\n");
  std::printf("==============================================================\n");
}

}  // namespace hal::bench
