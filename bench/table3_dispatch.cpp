// Table 3 — comparison of comparable method-invocation costs.
//
// Paper: "The comparison of comparable method invocation costs. All numbers
// are minimum values. [Ours and ABCL/onAP1000's] are the sum of the time
// for locality check and the time for function invocation." The paper's
// point (§6.3): the compiler-visible fast path — locality check + static
// dispatch on the caller's stack — costs a small multiple of a plain
// function call, while the generic buffered send is an order of magnitude
// more; an encapsulated runtime (ABCL-style) that always buffers local
// messages pays the generic price every time.
//
// Rows: plain C++ virtual call / compiled static dispatch (locality check +
// invocation) / generic buffered local send / remote send. Simulated µs on
// the CM-5 cost model, then host-ns microbenchmarks of the same paths.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class Server : public ActorBase {
 public:
  void on_call(Context&, std::int64_t v) { acc += v; }
  void on_ask(Context& ctx) { ctx.reply(acc); }
  HAL_BEHAVIOR(Server, &Server::on_call, &Server::on_ask)
  std::int64_t acc = 0;
};

/// Side traffic for the structured report: a caller on another node doing a
/// full request/reply to the node-0 server, so the emitted histogram set
/// also covers the join round-trip path.
class Caller : public ActorBase {
 public:
  void on_go(Context& ctx, MailAddress server, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.send<&Server::on_call>(server, std::int64_t{1});
    }
    ctx.request<&Server::on_ask>(server, [](Context&, const JoinView&) {});
  }
  HAL_BEHAVIOR(Caller, &Caller::on_go)
};

RuntimeConfig sim_cfg(NodeId nodes) {
  RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  return cfg;
}

obs::RunReport print_sim_table() {
  Runtime rt(sim_cfg(2));
  rt.load<Server>();
  rt.load<Caller>();
  const MailAddress local = rt.spawn<Server>(0);
  const MailAddress remote = rt.spawn<Server>(1);
  // Queued on node 1 for the drain phase; does not perturb the node-0
  // single-shot measurements below.
  const MailAddress caller = rt.spawn<Caller>(1);
  rt.inject<&Caller::on_go>(caller, local, std::int64_t{16});
  Kernel& k0 = rt.kernel(0);
  am::Machine& m = rt.machine();

  std::printf("%-44s %14s\n", "invocation mechanism", "min cost (µs)");

  // Plain function call reference: the cost model's static dispatch charge
  // alone (what the inlined call costs the 33 MHz node).
  std::printf("%-44s %14.2f\n", "C++ call (reference)",
              static_cast<double>(m.costs().static_dispatch_ns) / 1e3);

  {
    Context ctx(k0, SlotId{}, local, nullptr);
    const SimTime t0 = m.now(0);
    (void)compiled::try_invoke_local<&Server::on_call>(ctx, local,
                                                       std::int64_t{1});
    std::printf("%-44s %14.2f\n",
                "locality check + static dispatch (ours)",
                hal::bench::us(m.now(0) - t0));
  }
  {
    Message msg;
    msg.dest = local;
    msg.selector = sel<&Server::on_call>();
    codec::encode_args(msg, std::int64_t{1});
    const SimTime t0 = m.now(0);
    k0.send_message(msg);
    (void)k0.step();
    std::printf("%-44s %14.2f\n",
                "generic buffered send (ABCL-style local)",
                hal::bench::us(m.now(0) - t0));
  }
  {
    Message msg;
    msg.dest = remote;
    msg.selector = sel<&Server::on_call>();
    codec::encode_args(msg, std::int64_t{1});
    const SimTime t0 = m.now(0);
    k0.send_message(msg);
    const SimTime sender_side = m.now(0) - t0;
    std::printf("%-44s %14.2f\n", "remote send (sender side)",
                hal::bench::us(sender_side));
    rt.run();  // drain
    std::printf("%-44s %14.2f\n", "remote send (end to end)",
                hal::bench::us(rt.report().makespan_ns - t0));
  }
  return rt.report();
}

// --- Host microbenchmarks -----------------------------------------------------

struct Fixture {
  Runtime rt{sim_cfg(1)};
  MailAddress target;
  Server* raw = nullptr;
  Fixture() {
    rt.load<Server>();
    target = rt.spawn<Server>(0);
    raw = rt.find_behavior<Server>(target);
  }
  static Fixture& instance() {
    static Fixture f;
    return f;
  }
};

void BM_CppVirtualCall(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  ActorBase* base = f.raw;
  Kernel& k = f.rt.kernel(0);
  Context ctx(k, SlotId{}, f.target, nullptr);
  Message msg;
  msg.dest = f.target;
  msg.selector = sel<&Server::on_call>();
  codec::encode_args(msg, std::int64_t{1});
  for (auto _ : state) {
    base->dispatch_message(ctx, msg);  // virtual dispatch + arg decode
    benchmark::DoNotOptimize(f.raw->acc);
  }
}
BENCHMARK(BM_CppVirtualCall);

void BM_StaticDispatchFastPath(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  Kernel& k = f.rt.kernel(0);
  Context ctx(k, SlotId{}, f.target, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled::try_invoke_local<&Server::on_call>(
        ctx, f.target, std::int64_t{1}));
  }
}
BENCHMARK(BM_StaticDispatchFastPath);

void BM_GenericBufferedSend(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  Kernel& k = f.rt.kernel(0);
  Message msg;
  msg.dest = f.target;
  msg.selector = sel<&Server::on_call>();
  codec::encode_args(msg, std::int64_t{1});
  for (auto _ : state) {
    k.send_message(msg);
    benchmark::DoNotOptimize(k.step());
  }
}
BENCHMARK(BM_GenericBufferedSend);

}  // namespace

int main(int argc, char** argv) {
  hal::bench::header(
      "Table 3: comparable method-invocation costs (simulated µs)",
      "paper §7.1 Table 3 — static dispatch vs generic send");
  hal::bench::report_json(print_sim_table(), "table3_dispatch");
  std::printf(
      "\nshape check: static dispatch should sit within a few C++ calls;\n"
      "the generic buffered send should cost several times more.\n\n");
  std::printf("host-nanosecond microbenchmarks of the same paths:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
