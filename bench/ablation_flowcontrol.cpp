// Ablation B — minimal flow control on bulk transfers (§6.5).
//
// Paper: "The runtime system supports minimal flow control for sending
// messages of large size to guarantee the correct implementation of
// software pipelining. A node manager controls sending the acknowledgment
// for a bulk data transfer request … so that only one such transfer is
// active at a time. … without flow control the pipelined version of
// Cholesky Decomposition did not deliver the expected performance."
//
// Two experiments: (1) a fan-in microbenchmark — several senders stream
// large messages at one consumer that must process the *first* arrival to
// make progress (the pipelining pattern); (2) the pipelined Cholesky from
// Table 1 with flow control switched off.
#include "apps/cholesky.hpp"
#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

/// Consumer: records when each large block arrives and charges per-block
/// processing (the pipeline stage that should overlap with later arrivals).
class Consumer : public ActorBase {
 public:
  void on_block(Context& ctx, std::uint64_t seq, Bytes data) {
    if (first_at == 0) first_at = ctx.now();
    ctx.charge_flops(data.size() / 4);  // downstream compute per block
    (void)seq;
    ++received;
  }
  HAL_BEHAVIOR(Consumer, &Consumer::on_block)
  inline static SimTime first_at = 0;
  inline static std::uint64_t received = 0;
};

class Producer : public ActorBase {
 public:
  void on_stream(Context& ctx, MailAddress dst, std::uint64_t blocks,
                 std::uint64_t bytes) {
    for (std::uint64_t i = 0; i < blocks; ++i) {
      ctx.send<&Consumer::on_block>(dst, i, Bytes(bytes));
    }
  }
  HAL_BEHAVIOR(Producer, &Producer::on_stream)
};

struct FanInResult {
  SimTime first;
  SimTime total;
  obs::RunReport report;
};

FanInResult fan_in(bool flow_control) {
  RuntimeConfig cfg;
  cfg.nodes = 5;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  cfg.flow_control = flow_control;
  Runtime rt(cfg);
  rt.load<Consumer>();
  rt.load<Producer>();
  Consumer::first_at = 0;
  Consumer::received = 0;
  const MailAddress c = rt.spawn<Consumer>(0);
  for (NodeId n = 1; n < 5; ++n) {
    const MailAddress p = rt.spawn<Producer>(n);
    rt.inject<&Producer::on_stream>(p, c, std::uint64_t{6},
                                    std::uint64_t{32 * 1024});
  }
  rt.run();
  HAL_ASSERT(Consumer::received == 24);
  obs::RunReport report = rt.report();
  return {Consumer::first_at, report.makespan_ns, std::move(report)};
}

}  // namespace

int main() {
  using namespace hal::bench;
  using namespace hal::apps;
  header("Ablation B: minimal flow control for bulk transfers",
         "paper §6.5 — software pipelining needs the one-at-a-time grant");

  std::printf("fan-in: 4 producers stream 6 x 32 KiB blocks each at one "
              "consumer\n\n");
  std::printf("%-18s %18s %18s\n", "flow control", "first block (ms)",
              "all blocks (ms)");
  const FanInResult with_fc = fan_in(true);
  const FanInResult without_fc = fan_in(false);
  std::printf("%-18s %18.3f %18.3f\n", "on (paper)", ms(with_fc.first),
              ms(with_fc.total));
  std::printf("%-18s %18.3f %18.3f\n", "off", ms(without_fc.first),
              ms(without_fc.total));
  std::printf(
      "\nWithout the grant policy every transfer's chunks interleave at\n"
      "the consumer, so the first block completes ~%.1fx later and the\n"
      "pipeline stage behind it starts late.\n\n",
      static_cast<double>(without_fc.first) /
          static_cast<double>(with_fc.first));

  std::printf("pipelined Cholesky (CP variant of Table 1), 256x256 on 8 "
              "nodes:\n\n");
  std::printf("%-18s %18s\n", "flow control", "time (ms)");
  for (const bool fc : {true, false}) {
    CholeskyParams p;
    p.machine = hal::bench::env_machine(p.machine);
    p.mn_workers = hal::bench::env_mn_workers();
    p.n = 256;
    p.nodes = 8;
    p.variant = CholVariant::kPipelined;
    p.mapping = ColMapping::kCyclic;
    p.flow_control = fc;
    const CholeskyResult r = run_cholesky(p);
    if (r.max_error > 1e-8) {
      std::fprintf(stderr, "VERIFICATION FAILED\n");
      return 1;
    }
    std::printf("%-18s %18.2f\n", fc ? "on (paper)" : "off",
                ms(r.makespan_ns));
  }
  std::printf(
      "\nThe application-level effect is modest at simulated scale (our\n"
      "network model has no packet backup beyond receiver serialization);\n"
      "the fan-in experiment above isolates the mechanism the paper\n"
      "credits for correct software pipelining.\n");
  // The with-flow-control fan-in exercises the bulk-transfer and
  // grant-queue stall probes; emit that run's report.
  report_json(with_fc.report, "ablation_flowcontrol");
  return 0;
}
