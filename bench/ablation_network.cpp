// Ablation E — sensitivity to the interconnect: CM-5 vs a network of
// workstations.
//
// The paper's conclusion: "Recently, networks of workstations with fast
// interconnect network have drawn more and more attention as the potential
// work force for high performance concurrent computing. … We are
// investigating ways to reconcile such hardware platforms and our runtime
// system." This experiment reruns the paper's two application benchmarks on
// a NOW-calibrated cost model (≈25 µs latency, ≈4 MB/s streams — Active
// Messages over ATM) to show which of the runtime's mechanisms are
// latency-bound: fine-grained fib tolerates it (stealing moves whole
// subcomputations), while the systolic matmul's per-step block shifts pay
// the full latency increase.
#include "apps/cholesky.hpp"
#include "apps/fib.hpp"
#include "apps/matmul.hpp"
#include "bench_util.hpp"
#include "common/assert.hpp"

int main() {
  using namespace hal::apps;
  using namespace hal::bench;
  header("Ablation E: CM-5 interconnect vs network of workstations",
         "paper §9 (conclusions) — NOW as the future platform");

  std::printf("%-34s %14s %14s %8s\n", "workload", "CM-5 (ms)", "NOW (ms)",
              "slowdown");

  auto row = [](const char* name, hal::SimTime cm5, hal::SimTime now_t) {
    std::printf("%-34s %14.2f %14.2f %7.2fx\n", name, ms(cm5), ms(now_t),
                static_cast<double>(now_t) / static_cast<double>(cm5));
  };

  {
    FibParams p;
    p.machine = hal::bench::env_machine(p.machine);
    p.mn_workers = hal::bench::env_mn_workers();
    p.n = 22;
    p.cutoff = 8;
    p.nodes = 8;
    p.load_balancing = true;
    p.costs = hal::am::CostModel::cm5();
    const auto a = run_fib(p);
    p.costs = hal::am::CostModel::now();
    const auto b = run_fib(p);
    HAL_ASSERT(a.value == b.value);
    row("fib(22), 8 nodes, stealing", a.makespan_ns, b.makespan_ns);
    // The NOW-calibrated stealing run exercises migration, steal and join
    // probes under the higher-latency model; emit it as this binary's report.
    report_json(b.report, "ablation_network");
  }
  {
    CholeskyParams p;
    p.machine = hal::bench::env_machine(p.machine);
    p.mn_workers = hal::bench::env_mn_workers();
    p.n = 128;
    p.nodes = 4;
    p.variant = CholVariant::kPipelined;
    p.mapping = ColMapping::kCyclic;
    p.costs = hal::am::CostModel::cm5();
    const auto a = run_cholesky(p);
    p.costs = hal::am::CostModel::now();
    const auto b = run_cholesky(p);
    HAL_ASSERT(a.max_error < 1e-8 && b.max_error < 1e-8);
    row("Cholesky 128, 4 nodes, pipelined", a.makespan_ns, b.makespan_ns);
  }
  {
    MatmulParams p;
    p.machine = hal::bench::env_machine(p.machine);
    p.mn_workers = hal::bench::env_mn_workers();
    p.n = 96;
    p.grid = 4;
    p.costs = hal::am::CostModel::cm5();
    const auto a = run_matmul(p);
    p.costs = hal::am::CostModel::now();
    const auto b = run_matmul(p);
    HAL_ASSERT(a.max_error < 1e-8 && b.max_error < 1e-8);
    row("Cannon 96, 16 nodes, systolic", a.makespan_ns, b.makespan_ns);
  }
  std::printf(
      "\nLatency-hiding mechanisms (aliases, pipelining, stealing of whole\n"
      "subcomputations) keep the coarse-grained workloads usable on a NOW;\n"
      "per-step systolic communication degrades the most.\n");
  return 0;
}
