// Ablation C — locality-descriptor address caching (§4.1).
//
// Paper: "The memory address of the locality descriptor in the receiving
// node is sent back to the sending node and cached in the newly allocated
// locality descriptor. Subsequent messages to the receiver actor are sent
// with the cached address, making name table look-up in the receiving node
// unnecessary."
//
// The receiver here is addressed through an *alias* (it was created
// remotely, §5), so on its node the address resolves through the hash tier
// — unless the sender ships the cached descriptor address. Sends are
// chained on replies (a request/response loop), so the first response can
// populate the sender's cache before the next message leaves.
#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class Sink : public ActorBase {
 public:
  void on_msg(Context& ctx, std::int64_t i) {
    ++count;
    ctx.reply(i);
  }
  HAL_BEHAVIOR(Sink, &Sink::on_msg)
  inline static std::uint64_t count = 0;
};

class Driver : public ActorBase {
 public:
  void on_run(Context& ctx, std::int64_t m) {
    remaining_ = m;
    target_ = ctx.create_on<Sink>(1);  // alias address
    step(ctx);
  }
  HAL_BEHAVIOR(Driver, &Driver::on_run)

 private:
  void step(Context& ctx) {
    if (remaining_ == 0) return;
    const std::int64_t i = remaining_--;
    ctx.request<&Sink::on_msg>(
        // HAL_LINT_SUPPRESS(hal-actor-state-escape): the Driver is a
        // singleton pinned to node 0 for the whole run; it never migrates.
        target_, [this](Context& jc, const JoinView&) { step(jc); }, i);
  }

  MailAddress target_;
  std::int64_t remaining_ = 0;
};

struct Result {
  SimTime makespan;
  std::uint64_t receiver_lookups;
  std::uint64_t cache_hits;
  obs::RunReport report;
};

Result run(bool cache, std::int64_t messages) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  cfg.name_cache = cache;
  Runtime rt(cfg);
  rt.load<Sink>();
  rt.load<Driver>();
  Sink::count = 0;
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_run>(d, messages);
  rt.run();
  HAL_ASSERT(Sink::count == static_cast<std::uint64_t>(messages));
  obs::RunReport report = rt.report();
  return {report.makespan_ns,
          rt.kernel(1).stats().get(Stat::kNameTableLookups),
          rt.kernel(1).stats().get(Stat::kDescriptorCacheHits),
          std::move(report)};
}

}  // namespace

int main() {
  using namespace hal::bench;
  header("Ablation C: locality-descriptor address caching",
         "paper §4.1 — cached descriptor addresses skip the receiving-side "
         "name-table lookup");

  const std::int64_t m = 2000;
  std::printf("%lld request/reply round trips to an alias-addressed actor\n\n",
              static_cast<long long>(m));
  std::printf("%-14s %14s %22s %16s\n", "cache", "time (ms)",
              "receiver hash lookups", "cache hits");
  const Result on = run(true, m);
  const Result off = run(false, m);
  std::printf("%-14s %14.3f %22llu %16llu\n", "on (paper)", ms(on.makespan),
              static_cast<unsigned long long>(on.receiver_lookups),
              static_cast<unsigned long long>(on.cache_hits));
  std::printf("%-14s %14.3f %22llu %16llu\n", "off", ms(off.makespan),
              static_cast<unsigned long long>(off.receiver_lookups),
              static_cast<unsigned long long>(off.cache_hits));
  std::printf(
      "\nWith the cache, only the first deliveries consult the receiving\n"
      "node's hash table; every later message ships the descriptor's\n"
      "\"real address\" and delivery dereferences it in O(1).\n");
  report_json(on.report, "ablation_namecache");
  return 0;
}
