// Ablation F — compiled vs interpreted behaviours on the same runtime.
//
// The paper's theme is compiler–runtime cooperation: HAL compiles to C
// against the kernel's open interface. This repository has both ends of
// that spectrum on one runtime: C++ behaviours (standing in for compiled
// HAL) and HALlite's tree-walking interpreter. The ablation measures what
// interpretation costs per message on the simulated machine — i.e. how
// much the compilation half of the paper's story is worth.
#include "bench_util.hpp"
#include "lang/interp.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class CppCounter : public ActorBase {
 public:
  void on_inc(Context& ctx, std::int64_t by) {
    value_ += by;
    ctx.charge_work(6);  // parity with the interpreter's statement charge
  }
  void on_get(Context& ctx) { ctx.reply(value_); }
  HAL_BEHAVIOR(CppCounter, &CppCounter::on_inc, &CppCounter::on_get)

 private:
  std::int64_t value_ = 0;
};

class CppDriver : public ActorBase {
 public:
  void on_run(Context& ctx, MailAddress target, std::int64_t m) {
    for (std::int64_t i = 0; i < m; ++i) {
      ctx.send<&CppCounter::on_inc>(target, std::int64_t{1});
    }
    ctx.request<&CppCounter::on_get>(
        target, [m](Context&, const JoinView& v) {
          HAL_ASSERT(v.get<std::int64_t>(0) == m);
        });
  }
  HAL_BEHAVIOR(CppDriver, &CppDriver::on_run)
};

SimTime run_cpp(std::int64_t m, NodeId target_node,
                obs::RunReport* report = nullptr) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  Runtime rt(cfg);
  rt.load<CppCounter>();
  rt.load<CppDriver>();
  const MailAddress c = rt.spawn<CppCounter>(target_node);
  const MailAddress d = rt.spawn<CppDriver>(0);
  rt.inject<&CppDriver::on_run>(d, c, m);
  rt.run();
  if (report != nullptr) *report = rt.report();
  return rt.report().makespan_ns;
}

SimTime run_interp(std::int64_t m, NodeId target_node) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  Runtime rt(cfg);
  auto program = lang::load_program(rt, R"(
    behavior Counter {
      state value = 0;
      method inc(by) { value = value + by; }
      method get() { reply value; }
    }
    behavior Driver {
      method run(target, m) {
        let i = 0;
        while (i < m) {
          send target.inc(1);
          i = i + 1;
        }
        request target.get() -> (v) {
          if (v != m) { print "MISMATCH"; }
        }
      }
    }
    main { }
  )");
  const BehaviorId counter = rt.registry().id_of_name("Counter");
  const BehaviorId driver = rt.registry().id_of_name("Driver");
  const MailAddress c = rt.spawn_id(counter, target_node);
  const MailAddress d = rt.spawn_id(driver, 0);
  rt.inject_message(lang::make_interp_message(
      *program, d, "run",
      {lang::Value(c), lang::Value(std::int64_t{m})}));
  rt.run();
  HAL_ASSERT(rt.console().empty());  // no MISMATCH line
  return rt.report().makespan_ns;
}

}  // namespace

int main() {
  using namespace hal::bench;
  header("Ablation F: compiled (C++) vs interpreted (HALlite) behaviours",
         "the compiler half of the paper's compiler-runtime cooperation");

  const std::int64_t m = 5000;
  std::printf("%lld counter increments + one request/reply\n\n",
              static_cast<long long>(m));
  std::printf("%-28s %16s %16s %14s\n", "configuration", "compiled (ms)",
              "interpreted", "overhead");
  struct Row {
    const char* name;
    NodeId target;
  };
  hal::obs::RunReport rep;
  for (const Row& row : {Row{"local receiver", 0u},
                         Row{"remote receiver", 1u}}) {
    // Keep the remote-receiver compiled run: its wire traffic and final
    // request/reply populate the delivery and join histograms.
    const SimTime cpp = run_cpp(m, row.target,
                                row.target == 1u ? &rep : nullptr);
    const SimTime interp = run_interp(m, row.target);
    std::printf("%-28s %16.3f %16.3f %13.2fx\n", row.name, ms(cpp),
                ms(interp),
                static_cast<double>(interp) / static_cast<double>(cpp));
  }
  std::printf(
      "\nInterpretation multiplies the per-message fixed costs; the gap\n"
      "narrows for remote receivers, where the wire dominates — the same\n"
      "argument the paper makes for letting the compiler specialize the\n"
      "local fast path (§6.3).\n");
  report_json(rep, "ablation_interp");
  return 0;
}
