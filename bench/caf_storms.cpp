// CAF-style mailbox storms: the wire-batching payoff measurement.
//
// Three storms borrowed from the actor-framework benchmark family, run on
// ThreadMachine (real threads, real wall clock) with destination-coalesced
// wire batching toggled per run:
//
//   mailbox    — one remote sender floods one receiver (1:1). The classic
//                mailbox_performance shape: per-message enqueue + wake
//                overhead dominates, which is exactly what frames amortize.
//   n:1 storm  — every other node floods node 0's counter concurrently.
//                The contended shape: P-1 sender threads hammer one
//                mailbox; coalescing divides the lock/wake traffic by the
//                frame occupancy. Results are checked exactly (the sum of
//                all injected values), so batching must not reorder or
//                drop anything it touches.
//   ping+work  — latency-sensitive ping-pong next to a busy compute actor
//                on each node. Sends here leave on the idle-transition
//                flush (the pinger's node quiesces after each hop), so
//                this storm bounds the latency tax of the holdoff.
//
// Knobs (docs/perf.md): HAL_BATCH, HAL_BATCH_FRAME_BYTES,
// HAL_BATCH_MAX_MSGS, HAL_BATCH_HOLDOFF_NS select the batched
// configuration; HAL_CAF_MIN_SPEEDUP=<percent> turns the n:1 batched-over-
// unbatched throughput ratio into a hard budget (CI perf-smoke sets 130 —
// the batching layer must buy at least 1.3x on the contended storm).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

// --- Storm actors --------------------------------------------------------------

/// Flood sink: sums every value it receives (the exact-result check).
class Counter : public ActorBase {
 public:
  void on_add(Context&, std::uint64_t v) { sum += v; }
  HAL_BEHAVIOR(Counter, &Counter::on_add)
  std::uint64_t sum = 0;
};

/// Flood source: streams `total` counted messages at `dst` in self-paced
/// chunks (one burst per dispatch keeps the mailbox and flow control
/// honest — a single handler must not sit in a million-iteration loop).
class Flooder : public ActorBase {
 public:
  void on_init(Context&, MailAddress dst, std::uint64_t base) {
    dst_ = dst;
    next_ = base;
  }
  void on_flood(Context& ctx, std::uint64_t left) {
    const std::uint64_t chunk = std::min<std::uint64_t>(left, 512);
    for (std::uint64_t i = 0; i < chunk; ++i) {
      ctx.send<&Counter::on_add>(dst_, next_++);
    }
    if (left > chunk) {
      ctx.send<&Flooder::on_flood>(ctx.self(), left - chunk);
    }
  }
  HAL_BEHAVIOR(Flooder, &Flooder::on_init, &Flooder::on_flood)

 private:
  MailAddress dst_;
  std::uint64_t next_ = 0;
};

/// Half of a cross-node ping-pong pair; counts the hops it sees.
class Pinger : public ActorBase {
 public:
  void on_init(Context&, MailAddress peer) { peer_ = peer; }
  void on_ping(Context& ctx, std::uint64_t left) {
    ++hops;
    if (left > 0) ctx.send<&Pinger::on_ping>(peer_, left - 1);
  }
  HAL_BEHAVIOR(Pinger, &Pinger::on_init, &Pinger::on_ping)
  std::uint64_t hops = 0;

 private:
  MailAddress peer_;
};

/// Background compute load: self-sends with a spin of real work per
/// dispatch, keeping its node busy so batched traffic cannot ride the
/// idle-transition flush and must go through the holdoff timer instead.
class Burner : public ActorBase {
 public:
  void on_burn(Context& ctx, std::uint64_t left) {
    volatile std::uint64_t acc = left;
    for (int i = 0; i < 2000; ++i) acc = acc * 2862933555777941757ULL + 1;
    sink = acc;
    if (left > 0) ctx.send<&Burner::on_burn>(ctx.self(), left - 1);
  }
  HAL_BEHAVIOR(Burner, &Burner::on_burn)
  std::uint64_t sink = 0;
};

// --- Harness -------------------------------------------------------------------

struct StormOut {
  double wall_s = 0.0;
  std::uint64_t msgs = 0;
  bool exact = false;  ///< every counted message arrived exactly once
  obs::RunReport report;
};

/// Sum of base..base+count-1 (the flood's expected contribution).
std::uint64_t arith_sum(std::uint64_t base, std::uint64_t count) {
  return count * base + count * (count - 1) / 2;
}

template <typename SetupFn, typename CheckFn>
StormOut run_storm(NodeId nodes, const am::BatchConfig& batching,
                   std::uint64_t msgs, SetupFn&& setup, CheckFn&& check) {
  RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.machine = MachineKind::kThread;
  cfg.batching = batching;
  Runtime rt(cfg);
  setup(rt);
  StormOut out;
  const auto t0 = std::chrono::steady_clock::now();
  rt.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.msgs = msgs;
  out.exact = check(rt) && rt.dead_letters() == 0;
  out.report = rt.report();
  return out;
}

StormOut mailbox_storm(const am::BatchConfig& b, std::uint64_t n) {
  MailAddress sink, src;
  return run_storm(
      2, b, n,
      [&](Runtime& rt) {
        rt.load<Counter>();
        rt.load<Flooder>();
        sink = rt.spawn<Counter>(0);
        src = rt.spawn<Flooder>(1);
        rt.inject<&Flooder::on_init>(src, sink, std::uint64_t{1});
        rt.inject<&Flooder::on_flood>(src, n);
      },
      [&](Runtime& rt) {
        const auto* c = rt.find_behavior<Counter>(sink);
        return c != nullptr && c->sum == arith_sum(1, n);
      });
}

StormOut n_to_one_storm(const am::BatchConfig& b, NodeId nodes,
                        std::uint64_t per_sender) {
  MailAddress sink;
  const std::uint64_t total = per_sender * (nodes - 1);
  return run_storm(
      nodes, b, total,
      [&](Runtime& rt) {
        rt.load<Counter>();
        rt.load<Flooder>();
        sink = rt.spawn<Counter>(0);
        for (NodeId s = 1; s < nodes; ++s) {
          const MailAddress f = rt.spawn<Flooder>(s);
          rt.inject<&Flooder::on_init>(f, sink, per_sender * s);
          rt.inject<&Flooder::on_flood>(f, per_sender);
        }
      },
      [&](Runtime& rt) {
        std::uint64_t want = 0;
        for (NodeId s = 1; s < nodes; ++s) {
          want += arith_sum(per_sender * s, per_sender);
        }
        const auto* c = rt.find_behavior<Counter>(sink);
        return c != nullptr && c->sum == want;
      });
}

StormOut ping_compute_storm(const am::BatchConfig& b, std::uint64_t rounds,
                            std::uint64_t burns) {
  MailAddress a, c;
  return run_storm(
      2, b, 2 * rounds,
      [&](Runtime& rt) {
        rt.load<Pinger>();
        rt.load<Burner>();
        a = rt.spawn<Pinger>(0);
        c = rt.spawn<Pinger>(1);
        rt.inject<&Pinger::on_init>(a, c);
        rt.inject<&Pinger::on_init>(c, a);
        const MailAddress b0 = rt.spawn<Burner>(0);
        const MailAddress b1 = rt.spawn<Burner>(1);
        rt.inject<&Burner::on_burn>(b0, burns);
        rt.inject<&Burner::on_burn>(b1, burns);
        rt.inject<&Pinger::on_ping>(a, 2 * rounds - 1);
      },
      [&](Runtime& rt) {
        const auto* pa = rt.find_behavior<Pinger>(a);
        const auto* pc = rt.find_behavior<Pinger>(c);
        return pa != nullptr && pc != nullptr &&
               pa->hops + pc->hops == 2 * rounds;
      });
}

struct Row {
  const char* name;
  StormOut off;
  StormOut on;
};

double mrate(const StormOut& s) {
  return static_cast<double>(s.msgs) / s.wall_s;
}

/// Best-of-N wall time (HAL_BENCH_REPS, default 3): wall-clock storms on a
/// shared machine see multi-10% scheduler noise per run, and the minimum is
/// the standard noise-robust estimator for a fixed workload. Exactness is
/// ANDed across every rep — a single lost message in any rep fails the
/// bench even if that rep's timing is discarded.
template <typename Fn>
StormOut best_of(Fn&& fn) {
  const unsigned reps =
      std::max(1u, hal::bench::env_unsigned("HAL_BENCH_REPS", 3));
  StormOut best = fn();
  bool exact = best.exact;
  for (unsigned i = 1; i < reps; ++i) {
    StormOut next = fn();
    exact = exact && next.exact;
    if (next.wall_s < best.wall_s) best = std::move(next);
  }
  best.exact = exact;
  return best;
}

}  // namespace

int main() {
  hal::bench::header(
      "CAF-style mailbox storms (ThreadMachine, batching off vs on)",
      "destination-coalesced wire batching: per-message overhead amortized "
      "per frame");

  const bool paper = hal::bench::paper_scale();
  const std::uint64_t flood_n = paper ? 2'000'000 : 200'000;
  const std::uint64_t per_sender = paper ? 500'000 : 100'000;
  const std::uint64_t rounds = paper ? 20'000 : 5'000;
  const std::uint64_t burns = paper ? 4'000 : 1'000;
  const NodeId storm_nodes = 4;

  am::BatchConfig off;
  off.enabled = false;
  const am::BatchConfig on = hal::bench::env_batching(am::BatchConfig{});

  Row rows[] = {
      {"mailbox flood (1:1, 2 nodes)",
       best_of([&] { return mailbox_storm(off, flood_n); }),
       best_of([&] { return mailbox_storm(on, flood_n); })},
      {"enqueue storm (3:1, 4 nodes)",
       best_of([&] { return n_to_one_storm(off, storm_nodes, per_sender); }),
       best_of([&] { return n_to_one_storm(on, storm_nodes, per_sender); })},
      {"ping + compute (2 nodes)",
       best_of([&] { return ping_compute_storm(off, rounds, burns); }),
       best_of([&] { return ping_compute_storm(on, rounds, burns); })},
  };

  std::printf("%-32s %10s %14s %14s %9s\n", "storm", "messages",
              "off msgs/s", "on msgs/s", "speedup");
  bool all_exact = true;
  for (const Row& r : rows) {
    all_exact = all_exact && r.off.exact && r.on.exact;
    std::printf("%-32s %10llu %14.0f %14.0f %8.2fx\n", r.name,
                static_cast<unsigned long long>(r.on.msgs), mrate(r.off),
                mrate(r.on), mrate(r.on) / mrate(r.off));
  }
  if (!all_exact) {
    std::fprintf(stderr,
                 "FAIL: a storm lost, duplicated or dead-lettered counted "
                 "messages — batching must be semantically invisible\n");
    return 1;
  }
  std::printf(
      "\nexactness: PASS — every storm's sum matched with 0 dead letters on\n"
      "both configurations; frames coalesce, they never reorder or drop.\n");

  // Structured report from the batched contended storm: the shape the
  // frame-fill histogram and wire counters are most interesting for.
  hal::bench::report_json(rows[1].on.report, "caf_storms");

  // Optional hard budget on the contended storm's payoff (presence of the
  // variable enables the check; the value is a percentage, CI uses 130).
  if (std::getenv("HAL_CAF_MIN_SPEEDUP") != nullptr) {
    const unsigned pct = hal::bench::env_unsigned("HAL_CAF_MIN_SPEEDUP", 130);
    const double need = static_cast<double>(pct) / 100.0;
    const double got = mrate(rows[1].on) / mrate(rows[1].off);
    if (got < need) {
      std::fprintf(stderr,
                   "FAIL: n:1 storm speedup %.2fx below the %.2fx budget\n",
                   got, need);
      return 1;
    }
    std::printf("speedup budget: PASS (n:1 storm %.2fx >= %.2fx)\n", got,
                need);
  }
  return 0;
}
