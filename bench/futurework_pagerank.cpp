// Future-work experiment — irregular sparse computation with
// migration-based rebalancing.
//
// Paper §9: "we need to do more thorough evaluation with a wider range of
// realistic applications to find potential performance bottlenecks in
// irregular, sparse computations." This is that evaluation: PageRank over
// a power-law graph whose contiguous partitions are badly imbalanced.
// After two measured rounds, a coordinator migrates heavy partitions off
// the hot nodes — possible only because partitions are location-
// transparent: every peer keeps sending to the same mail address, in-
// flight contributions chase the movers through the FIR protocol, and
// nothing in the communication code changes. That is the paper's abstract
// in one experiment.
#include "apps/pagerank.hpp"
#include "bench_util.hpp"

int main() {
  using namespace hal::apps;
  using namespace hal::bench;
  header("Future work: irregular sparse PageRank with dynamic rebalancing",
         "paper §9 — the evaluation the conclusions call for");

  PageRankParams params;
  params.machine = hal::bench::env_machine(params.machine);
  params.mn_workers = hal::bench::env_mn_workers();
  params.vertices = paper_scale() ? 8192 : 2048;
  params.edges_per_vertex = 8;
  params.rounds = 14;
  params.nodes = 8;
  params.partitions_per_node = 4;

  std::printf("graph: %u vertices, ~%u edges (power-law skew), %u rounds,"
              " %u nodes x %u partitions\n\n",
              params.vertices, params.vertices * params.edges_per_vertex,
              params.rounds, params.nodes, params.partitions_per_node);

  params.rebalance_after_round = 0;
  const PageRankResult without = run_pagerank(params);
  params.rebalance_after_round = 2;
  const PageRankResult with_rb = run_pagerank(params);
  if (without.max_error > 1e-12 || with_rb.max_error > 1e-12) {
    std::fprintf(stderr, "VERIFICATION FAILED\n");
    return 1;
  }

  std::printf("%8s %18s %18s\n", "round", "static (ms)", "rebalanced (ms)");
  for (std::size_t r = 0; r < without.round_ns.size(); ++r) {
    std::printf("%8zu %18.2f %18.2f%s\n", r, ms(without.round_ns[r]),
                ms(with_rb.round_ns[r]),
                r + 1 == params.rebalance_after_round ? "   <- migrations"
                                                      : "");
  }
  std::printf("\n%-26s %14.2f ms\n", "total, static placement",
              ms(without.makespan_ns));
  std::printf("%-26s %14.2f ms  (%llu partitions migrated, speedup %.2fx)\n",
              "total, rebalanced", ms(with_rb.makespan_ns),
              static_cast<unsigned long long>(with_rb.migrations),
              static_cast<double>(without.makespan_ns) /
                  static_cast<double>(with_rb.makespan_ns));
  std::printf(
      "\nBoth runs verified against the sequential PageRank (max error"
      " %.1e).\nThe rebalanced run pays a one-time migration spike, then"
      " every later\nround runs at the levelled speed.\n",
      with_rb.max_error);
  report_json(with_rb.report, "futurework_pagerank");
  return 0;
}
