// Table 2 — execution time of the runtime primitives.
//
// Paper: "the use of aliases allows the local execution of a remote actor
// creation [to take] 5.83 µs whereas the actual latency is 20.83 µs. The
// locality check is done using only locally available information and
// completes within 1 µs for the locally created actors."
//
// The first table reports the primitives in simulated microseconds on the
// CM-5-calibrated cost model — these are the Table 2 numbers. The
// google-benchmark section that follows measures the same code paths in
// host nanoseconds (the protocol logic itself, unscaled).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class Target : public ActorBase {
 public:
  void on_ping(Context& ctx) {
    if (message_received_at == 0) message_received_at = ctx.now();
  }
  void on_nop(Context&) {}
  HAL_BEHAVIOR(Target, &Target::on_ping, &Target::on_nop)
  inline static SimTime message_received_at = 0;
};

RuntimeConfig sim_cfg(NodeId nodes) {
  RuntimeConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

struct Measurement {
  const char* name;
  double sim_us;
  const char* paper_us;
};

std::vector<Measurement> measure_primitives() {
  std::vector<Measurement> out;

  // --- Requester-side costs: direct kernel calls, clock deltas. ----------
  {
    Runtime rt(sim_cfg(2));
    rt.load<Target>();
    Kernel& k0 = rt.kernel(0);
    am::Machine& m = rt.machine();
    const BehaviorId bid = 0;

    SimTime t0 = m.now(0);
    const MailAddress local = k0.create_local(bid);
    out.push_back({"actor creation (local)", hal::bench::us(m.now(0) - t0), "-"});

    t0 = m.now(0);
    (void)k0.create(bid, 1);
    out.push_back({"remote creation, initiation (alias, §5)",
                   hal::bench::us(m.now(0) - t0), "5.83"});

    t0 = m.now(0);
    benchmark::DoNotOptimize(k0.locality_check(local));
    out.push_back({"locality check (local actor)",
                   hal::bench::us(m.now(0) - t0), "< 1"});

    // Buffered local send: name translation + enqueue + scheduling.
    Message msg;
    msg.dest = local;
    msg.selector = sel<&Target::on_nop>();
    t0 = m.now(0);
    k0.send_message(msg);
    out.push_back({"message send (local, buffered)",
                   hal::bench::us(m.now(0) - t0), "-"});

    // Dispatch of that buffered message.
    t0 = m.now(0);
    (void)k0.step();
    out.push_back({"method dispatch (generic)", hal::bench::us(m.now(0) - t0),
                   "-"});

    // Compiled fast path: locality check + direct invocation.
    Context ctx(k0, SlotId{}, local, nullptr);
    t0 = m.now(0);
    (void)compiled::try_invoke_local<&Target::on_nop>(ctx, local);
    out.push_back({"static dispatch (compiled fast path, §6.3)",
                   hal::bench::us(m.now(0) - t0), "-"});

    // Join continuation: allocation and one reply fill.
    t0 = m.now(0);
    const ContRef jc = k0.make_join(
        1, [](Context&, const JoinView&) {}, local);
    out.push_back({"join continuation allocation (§6.2)",
                   hal::bench::us(m.now(0) - t0), "-"});
    t0 = m.now(0);
    k0.fill_join(jc, 1, {});
    out.push_back({"reply fill + continuation fire",
                   hal::bench::us(m.now(0) - t0), "-"});

    // Remote send, sender side: name translation + packet injection.
    Message rmsg;
    rmsg.dest = MailAddress{};  // fill with a foreign target below
    const MailAddress remote = k0.create(bid, 1);
    rmsg.dest = remote;
    rmsg.selector = sel<&Target::on_nop>();
    t0 = m.now(0);
    k0.send_message(rmsg);
    out.push_back({"message send (remote, sender side)",
                   hal::bench::us(m.now(0) - t0), "-"});
    rt.run();  // drain the machine so tokens/quiescence stay clean
  }

  // --- End-to-end remote creation: completion at the target node. ---------
  {
    Runtime rt(sim_cfg(2));
    rt.load<Target>();
    Kernel& k0 = rt.kernel(0);
    const SimTime t0 = rt.machine().now(0);
    (void)k0.create(0, 1);
    rt.run();
    // Makespan covers request delivery + actual creation + the background
    // descriptor-caching ack.
    out.push_back({"remote creation, completed at target",
                   hal::bench::us(rt.makespan() - t0), "20.83"});
  }

  // --- End-to-end remote message latency. ---------------------------------
  {
    Target::message_received_at = 0;
    Runtime rt(sim_cfg(2));
    rt.load<Target>();
    const MailAddress t = rt.spawn<Target>(1);
    const SimTime t0 = rt.machine().now(0);
    rt.inject<&Target::on_ping>(t);
    rt.run();
    out.push_back({"message send → dispatch (remote, end to end)",
                   hal::bench::us(Target::message_received_at - t0), "-"});
  }

  return out;
}

// --- Host-nanosecond microbenchmarks of the same code paths ------------------

struct HostFixture {
  Runtime rt{sim_cfg(2)};
  MailAddress target;
  HostFixture() {
    rt.load<Target>();
    target = rt.spawn<Target>(0);
  }
  static HostFixture& instance() {
    static HostFixture f;
    return f;
  }
};

void BM_LocalityCheck(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.locality_check(f.target));
  }
}
BENCHMARK(BM_LocalityCheck);

void BM_LocalSendAndDispatch(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  Message msg;
  msg.dest = f.target;
  msg.selector = sel<&Target::on_nop>();
  for (auto _ : state) {
    k.send_message(msg);
    benchmark::DoNotOptimize(k.step());
  }
}
BENCHMARK(BM_LocalSendAndDispatch);

void BM_StaticDispatch(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  Context ctx(k, SlotId{}, f.target, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled::try_invoke_local<&Target::on_nop>(ctx, f.target));
  }
}
BENCHMARK(BM_StaticDispatch);

void BM_JoinAllocFill(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  for (auto _ : state) {
    const ContRef jc = k.make_join(
        1, [](Context&, const JoinView&) {}, f.target);
    k.fill_join(jc, 7, {});
  }
}
BENCHMARK(BM_JoinAllocFill);

}  // namespace

int main(int argc, char** argv) {
  hal::bench::header(
      "Table 2: execution time of runtime primitives (simulated µs)",
      "paper §7.1 Table 2 — primitive operation costs");
  std::printf("%-52s %12s %10s\n", "primitive", "this repro", "paper");
  for (const Measurement& m : measure_primitives()) {
    std::printf("%-52s %12.2f %10s\n", m.name, m.sim_us, m.paper_us);
  }
  std::printf("\nhost-nanosecond microbenchmarks of the same code paths:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
