// Table 2 — execution time of the runtime primitives.
//
// Paper: "the use of aliases allows the local execution of a remote actor
// creation [to take] 5.83 µs whereas the actual latency is 20.83 µs. The
// locality check is done using only locally available information and
// completes within 1 µs for the locally created actors."
//
// The first table reports the primitives in simulated microseconds on the
// CM-5-calibrated cost model — these are the Table 2 numbers. The
// google-benchmark section that follows measures the same code paths in
// host nanoseconds (the protocol logic itself, unscaled).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class Target : public ActorBase {
 public:
  void on_ping(Context& ctx) {
    if (message_received_at == 0) message_received_at = ctx.now();
  }
  void on_nop(Context&) {}
  HAL_BEHAVIOR(Target, &Target::on_ping, &Target::on_nop)
  inline static SimTime message_received_at = 0;
};

RuntimeConfig sim_cfg(NodeId nodes) {
  RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  return cfg;
}

struct Measurement {
  const char* name;
  double sim_us;
  const char* paper_us;
};

std::vector<Measurement> measure_primitives() {
  std::vector<Measurement> out;

  // --- Requester-side costs: direct kernel calls, clock deltas. ----------
  {
    Runtime rt(sim_cfg(2));
    rt.load<Target>();
    Kernel& k0 = rt.kernel(0);
    am::Machine& m = rt.machine();
    const BehaviorId bid = 0;

    SimTime t0 = m.now(0);
    const MailAddress local = k0.create_local(bid);
    out.push_back({"actor creation (local)", hal::bench::us(m.now(0) - t0), "-"});

    t0 = m.now(0);
    (void)k0.create(bid, 1);
    out.push_back({"remote creation, initiation (alias, §5)",
                   hal::bench::us(m.now(0) - t0), "5.83"});

    t0 = m.now(0);
    benchmark::DoNotOptimize(k0.locality_check(local));
    out.push_back({"locality check (local actor)",
                   hal::bench::us(m.now(0) - t0), "< 1"});

    // Buffered local send: name translation + enqueue + scheduling.
    Message msg;
    msg.dest = local;
    msg.selector = sel<&Target::on_nop>();
    t0 = m.now(0);
    k0.send_message(msg);
    out.push_back({"message send (local, buffered)",
                   hal::bench::us(m.now(0) - t0), "-"});

    // Dispatch of that buffered message.
    t0 = m.now(0);
    (void)k0.step();
    out.push_back({"method dispatch (generic)", hal::bench::us(m.now(0) - t0),
                   "-"});

    // Compiled fast path: locality check + direct invocation.
    Context ctx(k0, SlotId{}, local, nullptr);
    t0 = m.now(0);
    (void)compiled::try_invoke_local<&Target::on_nop>(ctx, local);
    out.push_back({"static dispatch (compiled fast path, §6.3)",
                   hal::bench::us(m.now(0) - t0), "-"});

    // Join continuation: allocation and one reply fill.
    t0 = m.now(0);
    const ContRef jc = k0.make_join(
        1, [](Context&, const JoinView&) {}, local);
    out.push_back({"join continuation allocation (§6.2)",
                   hal::bench::us(m.now(0) - t0), "-"});
    t0 = m.now(0);
    k0.fill_join(jc, 1, {});
    out.push_back({"reply fill + continuation fire",
                   hal::bench::us(m.now(0) - t0), "-"});

    // Remote send, sender side: name translation + packet injection.
    Message rmsg;
    rmsg.dest = MailAddress{};  // fill with a foreign target below
    const MailAddress remote = k0.create(bid, 1);
    rmsg.dest = remote;
    rmsg.selector = sel<&Target::on_nop>();
    t0 = m.now(0);
    k0.send_message(rmsg);
    out.push_back({"message send (remote, sender side)",
                   hal::bench::us(m.now(0) - t0), "-"});
    rt.run();  // drain the machine so tokens/quiescence stay clean
  }

  // --- End-to-end remote creation: completion at the target node. ---------
  {
    Runtime rt(sim_cfg(2));
    rt.load<Target>();
    Kernel& k0 = rt.kernel(0);
    const SimTime t0 = rt.machine().now(0);
    (void)k0.create(0, 1);
    rt.run();
    // Makespan covers request delivery + actual creation + the background
    // descriptor-caching ack.
    out.push_back({"remote creation, completed at target",
                   hal::bench::us(rt.report().makespan_ns - t0), "20.83"});
  }

  // --- End-to-end remote message latency. ---------------------------------
  {
    Target::message_received_at = 0;
    Runtime rt(sim_cfg(2));
    rt.load<Target>();
    const MailAddress t = rt.spawn<Target>(1);
    const SimTime t0 = rt.machine().now(0);
    rt.inject<&Target::on_ping>(t);
    rt.run();
    out.push_back({"message send → dispatch (remote, end to end)",
                   hal::bench::us(Target::message_received_at - t0), "-"});
  }

  return out;
}

// --- Probe distribution workload ---------------------------------------------
// The table above gives single-shot costs; the observability layer records
// full distributions. This mixed scenario exercises most of the probe set at
// once: a stateful actor tours the ring (migration + bulk transfer) while a
// chaser on every node keeps sending to its fixed address (remote delivery,
// park-and-chase FIR traffic) and finally requests a report (join
// round-trip). The resulting per-probe histograms are printed as quantiles
// and emitted to BENCH_table2_primitives.json.

class Rover : public ActorBase {
 public:
  void on_work(Context& ctx, std::int64_t amount) {
    sum_ += amount;
    ctx.charge_ns(200);  // a little modeled work per deposit
  }
  void on_tour(Context& ctx, NodeId next, std::int64_t remaining) {
    if (remaining > 0) {
      const auto after =
          static_cast<NodeId>((next + 1) % ctx.node_count());
      // Queue the next hop to ourselves before moving: it travels with us.
      ctx.send<&Rover::on_tour>(ctx.self(), after, remaining - 1);
      ctx.migrate_to(next);
    }
  }
  void on_query(Context& ctx) { ctx.reply(sum_); }
  HAL_BEHAVIOR(Rover, &Rover::on_work, &Rover::on_tour, &Rover::on_query)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override { w.write(sum_); }
  void unpack_state(ByteReader& r) override { sum_ = r.read<std::int64_t>(); }

 private:
  std::int64_t sum_ = 0;
};

class Chaser : public ActorBase {
 public:
  void on_go(Context& ctx, MailAddress rover, std::int64_t count,
             std::int64_t gap_ns) {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.charge_ns(static_cast<SimTime>(gap_ns));
      ctx.send<&Rover::on_work>(rover, std::int64_t{1});
    }
    ctx.request<&Rover::on_query>(rover, [](Context&, const JoinView&) {});
  }
  HAL_BEHAVIOR(Chaser, &Chaser::on_go)
};

obs::RunReport measure_probe_distribution(NodeId nodes) {
  Runtime rt(sim_cfg(nodes));
  rt.load<Rover>();
  rt.load<Chaser>();
  const MailAddress rover = rt.spawn<Rover>(0);
  rt.inject<&Rover::on_tour>(rover, NodeId{1},
                             static_cast<std::int64_t>(nodes) * 4);
  for (NodeId n = 0; n < nodes; ++n) {
    const MailAddress c = rt.spawn<Chaser>(n);
    // Stagger the send gaps so deposits land throughout the tour.
    rt.inject<&Chaser::on_go>(c, rover, std::int64_t{48},
                              std::int64_t{40000 + 7000 * n});
  }
  rt.run();
  return rt.report();
}

void print_probe_distribution(const obs::RunReport& r) {
  std::printf("\nprobe distributions (mixed migration/chase workload, "
              "%llu nodes):\n",
              static_cast<unsigned long long>(r.nodes));
  std::printf("%-24s %9s %12s %12s %12s %12s\n", "probe", "count", "p50",
              "p90", "p99", "max");
  for (std::size_t i = 0; i < obs::kProbeCount; ++i) {
    const auto& h = r.probes.histogram(static_cast<obs::Probe>(i));
    if (h.empty()) continue;
    std::printf("%-24s %9llu %12llu %12llu %12llu %12llu\n",
                std::string(obs::kProbeNames[i]).c_str(),
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.quantile(0.5)),
                static_cast<unsigned long long>(h.quantile(0.9)),
                static_cast<unsigned long long>(h.quantile(0.99)),
                static_cast<unsigned long long>(h.max()));
  }
}

// --- Host-nanosecond microbenchmarks of the same code paths ------------------

struct HostFixture {
  Runtime rt{sim_cfg(2)};
  MailAddress target;
  HostFixture() {
    rt.load<Target>();
    target = rt.spawn<Target>(0);
  }
  static HostFixture& instance() {
    static HostFixture f;
    return f;
  }
};

void BM_LocalityCheck(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.locality_check(f.target));
  }
}
BENCHMARK(BM_LocalityCheck);

void BM_LocalSendAndDispatch(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  Message msg;
  msg.dest = f.target;
  msg.selector = sel<&Target::on_nop>();
  for (auto _ : state) {
    k.send_message(msg);
    benchmark::DoNotOptimize(k.step());
  }
}
BENCHMARK(BM_LocalSendAndDispatch);

void BM_StaticDispatch(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  Context ctx(k, SlotId{}, f.target, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled::try_invoke_local<&Target::on_nop>(ctx, f.target));
  }
}
BENCHMARK(BM_StaticDispatch);

void BM_JoinAllocFill(benchmark::State& state) {
  HostFixture& f = HostFixture::instance();
  Kernel& k = f.rt.kernel(0);
  for (auto _ : state) {
    const ContRef jc = k.make_join(
        1, [](Context&, const JoinView&) {}, f.target);
    k.fill_join(jc, 7, {});
  }
}
BENCHMARK(BM_JoinAllocFill);

}  // namespace

int main(int argc, char** argv) {
  hal::bench::header(
      "Table 2: execution time of runtime primitives (simulated µs)",
      "paper §7.1 Table 2 — primitive operation costs");
  std::printf("%-52s %12s %10s\n", "primitive", "this repro", "paper");
  for (const Measurement& m : measure_primitives()) {
    std::printf("%-52s %12.2f %10s\n", m.name, m.sim_us, m.paper_us);
  }
  const hal::obs::RunReport dist = measure_probe_distribution(
      static_cast<hal::NodeId>(hal::bench::env_unsigned("HAL_BENCH_NODES", 8)));
  print_probe_distribution(dist);
  hal::bench::report_json(dist, "table2_primitives");
  std::printf("\nhost-nanosecond microbenchmarks of the same code paths:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
