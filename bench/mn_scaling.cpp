// MnMachine worker-scaling sweep (the P >> N regime the M:N machine exists
// for).
//
// Two workloads at HAL_MN_NODES nodes (default 4096 — thousands of nodes on
// a handful of workers, far past ThreadMachine's one-thread-per-node
// ceiling):
//   * fib        — fork/join traffic spread by receiver-initiated random
//                  polling, so runnable nodes churn through the run queues
//                  and the work-stealing path carries real load
//   * FIR chase  — a migrating actor with third-party senders over a lossy
//                  wire: stale-descriptor forwards, FIR re-resolution, and
//                  link retransmission timers all ride the worker pool
// Both are asserted exact (fib value, chase sum, zero dead letters) at every
// pool size N in {1, 2, 4, 8}; the wall-clock makespans form the scaling
// curve. Each fib run's report is emitted as BENCH_mn_scaling_w<N>.json
// (RunReport::workers carries the x-axis) and the widest pool's report as
// BENCH_mn_scaling.json; CI's mn-smoke step feeds them all through
// scripts/check_report.py --max-dead-letters 0.
#include <cstdint>
#include <string>

#include "apps/fib.hpp"
#include "bench_util.hpp"
#include "common/assert.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

/// A migratable accumulator touring the machine while senders chase it.
class Roamer : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; }
  void on_hop(Context& ctx, NodeId target) { ctx.migrate_to(target); }
  HAL_BEHAVIOR(Roamer, &Roamer::on_add, &Roamer::on_hop)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override { w.write(sum_); }
  void unpack_state(ByteReader& r) override { sum_ = r.read<std::int64_t>(); }

  std::int64_t sum() const { return sum_; }

 private:
  std::int64_t sum_ = 0;
};

/// Fires a burst at the (long-gone) target, forcing forward + FIR chase.
class Chaser : public ActorBase {
 public:
  void on_fire(Context& ctx, MailAddress target, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.send<&Roamer::on_add>(target, std::int64_t{1});
    }
  }
  HAL_BEHAVIOR(Chaser, &Chaser::on_fire)
};

std::uint64_t fib_value(unsigned n) {
  std::uint64_t a = 0, b = 1;
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

hal::obs::RunReport run_fib_at(NodeId nodes, std::uint32_t workers,
                               unsigned n) {
  apps::FibParams p;
  p.n = n;
  p.cutoff = 8;
  p.nodes = nodes;
  p.load_balancing = true;
  p.machine = MachineKind::kMn;
  p.mn_workers = workers;
  const apps::FibResult r = apps::run_fib(p);
  HAL_ASSERT(r.value == fib_value(n));
  HAL_ASSERT(r.dead_letters == 0);
  HAL_ASSERT(r.report.workers == workers);
  return r.report;
}

hal::obs::RunReport run_chase_at(NodeId nodes, std::uint32_t workers,
                                 unsigned burst) {
  RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.machine = MachineKind::kMn;
  cfg.mn_workers = workers;
  cfg.costs = am::CostModel::cm5();
  // A lossy wire at scale: retransmission timers for thousands of endpoints
  // share the pool's timer table instead of one thread per node.
  cfg.faults.enabled = true;
  cfg.faults.drop = 0.02;
  cfg.faults.duplicate = 0.01;
  cfg.faults.rto_ns = 500'000;
  Runtime rt(cfg);
  rt.load<Roamer>();
  rt.load<Chaser>();
  const MailAddress w = rt.spawn<Roamer>(0);
  // Tour a slice of the machine; every hop leaves a stale descriptor.
  const NodeId laps = nodes < 64 ? nodes : 64;
  for (NodeId n = 1; n < laps; ++n) rt.inject<&Roamer::on_hop>(w, n);
  rt.inject<&Roamer::on_hop>(w, NodeId{0});
  // Chasers spread across the whole node range route via the birthplace.
  std::int64_t expected = 0;
  const NodeId stride = nodes < 32 ? 1 : nodes / 32;
  for (NodeId n = 1; n < nodes; n += stride) {
    rt.inject<&Chaser::on_fire>(rt.spawn<Chaser>(n), w,
                                std::int64_t{burst});
    expected += burst;
  }
  rt.run();
  const Roamer* obj = rt.find_behavior<Roamer>(w);
  HAL_ASSERT(obj != nullptr && obj->sum() == expected);
  HAL_ASSERT(rt.dead_letters() == 0);
  return rt.report();
}

void print_row(const char* workload, std::uint32_t workers,
               const hal::obs::RunReport& r, SimTime base_ns) {
  using namespace hal::bench;
  const double speedup =
      r.makespan_ns == 0 ? 0.0
                         : static_cast<double>(base_ns) /
                               static_cast<double>(r.makespan_ns);
  std::printf("%-10s %7u %12.2f %8.2fx %12llu\n", workload, workers,
              ms(r.makespan_ns), speedup,
              static_cast<unsigned long long>(
                  r.total.get(Stat::kMessagesDelivered)));
}

}  // namespace

int main() {
  using namespace hal::bench;
  header("MnMachine scaling: M nodes on N workers",
         "ROADMAP item 1 — the paper's P-node protocols at P >> cores");

  const NodeId nodes =
      static_cast<NodeId>(env_unsigned("HAL_MN_NODES", 4096));
  const unsigned fib_n =
      env_unsigned("HAL_FIB_N", paper_scale() ? 26 : 22);
  const unsigned burst = env_unsigned("HAL_CHASE_BURST", 20);
  const std::uint32_t sweep[] = {1, 2, 4, 8};

  std::printf("nodes: %u (fib n=%u cutoff=8; chase burst=%u)\n\n",
              static_cast<unsigned>(nodes), fib_n, burst);
  std::printf("%-10s %7s %12s %9s %12s\n", "workload", "workers",
              "makespan ms", "speedup", "msgs dlvd");

  hal::obs::RunReport widest;
  SimTime fib_base = 0;
  for (const std::uint32_t w : sweep) {
    const hal::obs::RunReport r = run_fib_at(nodes, w, fib_n);
    if (w == 1) fib_base = r.makespan_ns;
    print_row("fib", w, r, fib_base);
    report_json_path(r, "BENCH_mn_scaling_w" + std::to_string(w) + ".json");
    widest = r;
  }
  SimTime chase_base = 0;
  for (const std::uint32_t w : sweep) {
    const hal::obs::RunReport r = run_chase_at(nodes, w, burst);
    if (w == 1) chase_base = r.makespan_ns;
    print_row("fir-chase", w, r, chase_base);
  }

  std::printf(
      "\nEvery run is asserted exact (fib value, chase sum, zero dead\n"
      "letters) — the pool size changes the schedule, never the result.\n"
      "N=1 is the degenerate point of receiver-initiated polling: the idle\n"
      "nodes' poll quanta serialize onto the one worker that also runs the\n"
      "real work (on ThreadMachine those polls ran on 4095 other threads),\n"
      "so the N=1 fib row measures the balancer storm, not fib.\n");
  report_json(widest, "mn_scaling");
  return 0;
}
