// Table 1 — Cholesky decomposition: local vs global synchronization.
//
// Paper: "Table 1: Results in msec from a set of C implementation of the
// Cholesky Decomposition algorithm on the CM-5. Columns BP and CP represent
// execution times for the implementations which start the execution of
// iteration i+1 before the execution of iteration i has completed by only
// using local synchronization. Columns Seq and Bcast show the numbers
// obtained by completing the execution of iteration i before starting that
// of the iteration i+1. BP uses block mapping and CP cyclic mapping."
//
// Expected shape: CP ≤ BP < Seq/Bcast for every P — local synchronization
// wins, and cyclic mapping beats block mapping under pipelining.
#include "apps/cholesky.hpp"
#include "bench_util.hpp"

int main() {
  using namespace hal::apps;
  using namespace hal::bench;

  const std::size_t n = env_unsigned("HAL_CHOL_N", paper_scale() ? 256 : 128);
  header("Table 1: Cholesky decomposition (msec)",
         "paper §2.2 Table 1 — effect of local vs global synchronization");
  std::printf("matrix: %zux%zu, columns distributed over P owner actors\n\n",
              n, n);
  std::printf("%4s %12s %12s %12s %12s\n", "P", "BP", "CP", "Seq", "Bcast");
  hal::obs::RunReport rep;  // representative run: CP at the largest P

  for (const hal::NodeId p : {2u, 4u, 8u, 16u}) {
    CholeskyParams params;
    params.n = n;
    params.nodes = p;
    params.machine = hal::bench::env_machine(params.machine);
    params.mn_workers = hal::bench::env_mn_workers();

    auto run = [&](CholVariant v, ColMapping m) {
      params.variant = v;
      params.mapping = m;
      const CholeskyResult r = run_cholesky(params);
      if (r.max_error > 1e-8) {
        std::fprintf(stderr, "VERIFICATION FAILED (err %g)\n", r.max_error);
        std::exit(1);
      }
      if (v == CholVariant::kPipelined && m == ColMapping::kCyclic) {
        rep = r.report;
      }
      return ms(r.makespan_ns);
    };

    const double bp = run(CholVariant::kPipelined, ColMapping::kBlock);
    const double cp = run(CholVariant::kPipelined, ColMapping::kCyclic);
    const double seq = run(CholVariant::kGlobalSeq, ColMapping::kCyclic);
    const double bct = run(CholVariant::kGlobalBcast, ColMapping::kCyclic);
    std::printf("%4u %12.2f %12.2f %12.2f %12.2f\n", p, bp, cp, seq, bct);
  }
  std::printf(
      "\nshape check: pipelined local sync (BP/CP) should beat the\n"
      "barrier-per-iteration variants (Seq/Bcast), and CP <= BP.\n"
      "All runs verified against the sequential factorization.\n");
  report_json(rep, "table1_cholesky");
  return 0;
}
