// Ablation D — collective scheduling of broadcast messages (§6.4).
//
// Paper: "By distinguishing broadcast messages and exposing the
// implementation of groups to the compiler, broadcast messages are
// scheduled in a manner similar to the quasi-dynamic scheduling in TAM …
// Such temporal locality is utilized in our system by collectively
// scheduling messages broadcast to a group of actors of the same type."
// The quantum pays one method lookup for all local members; the ablation
// dispatches each member generically.
#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class Cell : public ActorBase {
 public:
  void on_step(Context& ctx, std::int64_t round) {
    (void)round;
    ctx.charge_work(32);  // the per-member method body
    ++total_steps;
  }
  void on_ask(Context& ctx) { ctx.reply(std::int64_t{0}); }
  HAL_BEHAVIOR(Cell, &Cell::on_step, &Cell::on_ask)
  inline static std::uint64_t total_steps = 0;
};

class Driver : public ActorBase {
 public:
  void on_run(Context& ctx, std::uint32_t members, std::int64_t rounds) {
    const GroupId gid = ctx.grpnew<Cell>(members);
    for (std::int64_t r = 0; r < rounds; ++r) {
      ctx.broadcast<&Cell::on_step>(gid, r);
    }
    // One cross-node request/reply so the emitted report also covers the
    // point-to-point delivery and join histograms next to the broadcasts.
    const MailAddress probe =
        ctx.create_on<Cell>(static_cast<NodeId>(ctx.node_count() - 1));
    ctx.request<&Cell::on_ask>(probe, [](Context&, const JoinView&) {});
  }
  HAL_BEHAVIOR(Driver, &Driver::on_run)
};

struct Result {
  SimTime makespan;
  std::uint64_t static_dispatches;
  std::uint64_t generic_dispatches;
  obs::RunReport report;
};

Result run(bool collective, std::uint32_t members, std::int64_t rounds) {
  RuntimeConfig cfg;
  cfg.nodes = 4;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  cfg.collective_broadcast = collective;
  Runtime rt(cfg);
  rt.load<Cell>();
  rt.load<Driver>();
  Cell::total_steps = 0;
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_run>(d, members, rounds);
  rt.run();
  HAL_ASSERT(Cell::total_steps ==
             static_cast<std::uint64_t>(members) *
                 static_cast<std::uint64_t>(rounds));
  obs::RunReport report = rt.report();
  return {report.makespan_ns, report.total.get(Stat::kStaticDispatches),
          report.total.get(Stat::kGenericDispatches), std::move(report)};
}

}  // namespace

int main() {
  using namespace hal::bench;
  header("Ablation D: collective (quantum) scheduling of broadcasts",
         "paper §6.4 — TAM-style quanta amortize method lookup across the "
         "group's local members");

  const std::uint32_t members = 256;
  const std::int64_t rounds = 50;
  std::printf("group of %u members on 4 nodes, %lld broadcasts\n\n", members,
              static_cast<long long>(rounds));
  std::printf("%-22s %14s %18s %18s\n", "scheduling", "time (ms)",
              "fast dispatches", "generic dispatches");
  const Result coll = run(true, members, rounds);
  const Result indiv = run(false, members, rounds);
  std::printf("%-22s %14.3f %18llu %18llu\n", "collective (paper)",
              ms(coll.makespan),
              static_cast<unsigned long long>(coll.static_dispatches),
              static_cast<unsigned long long>(coll.generic_dispatches));
  std::printf("%-22s %14.3f %18llu %18llu\n", "per-member",
              ms(indiv.makespan),
              static_cast<unsigned long long>(indiv.static_dispatches),
              static_cast<unsigned long long>(indiv.generic_dispatches));
  std::printf(
      "\nCollective scheduling performs the method lookup once per quantum\n"
      "and runs every local member at fast-path cost (%.2fx faster here).\n",
      static_cast<double>(indiv.makespan) /
          static_cast<double>(coll.makespan));
  report_json(coll.report, "ablation_broadcast");
  return 0;
}
