// Table 5 — systolic dense matrix multiplication.
//
// Paper: "Table 5: Execution times of systolic matrix multiplication. All
// results were obtained by executing the program with [n×n] matrix on
// [√P×√P] processor array. … The performance peaks at 434 MFlops for 1024
// by 1024 matrix on [the] 64 node partition of the CM-5."
//
// Expected shape: for a fixed grid, MFlops rise with n (compute amortizes
// the block shifts); for a fixed n, more nodes give more MFlops, with
// efficiency dropping on small matrices (communication-bound cells).
#include "apps/matmul.hpp"
#include "bench_util.hpp"

int main() {
  using namespace hal::apps;
  using namespace hal::bench;

  header("Table 5: systolic matrix multiplication (Cannon's algorithm)",
         "paper §7.3 Table 5 — time (s) and MFlops vs matrix size and grid");

  const bool paper = paper_scale();
  const std::uint32_t grids[] = {2, 4, 8};  // 4, 16, 64 nodes
  const std::size_t sizes_small[] = {64, 128, 256};
  const std::size_t sizes_paper[] = {256, 512, 1024};
  const auto& sizes = paper ? sizes_paper : sizes_small;

  std::printf("%8s | %22s %22s %22s\n", "", "P=4 (2x2)", "P=16 (4x4)",
              "P=64 (8x8)");
  std::printf("%8s | %22s %22s %22s\n", "n", "sec      MFlops",
              "sec      MFlops", "sec      MFlops");
  hal::obs::RunReport rep;  // representative run: the last grid/size pair
  for (const std::size_t n : sizes) {
    std::printf("%8zu |", n);
    for (const std::uint32_t q : grids) {
      if (n % q != 0) {
        std::printf(" %22s", "-");
        continue;
      }
      MatmulParams params;
      params.n = n;
      params.grid = q;
      params.machine = hal::bench::env_machine(params.machine);
      params.mn_workers = hal::bench::env_mn_workers();
      // Verify the smaller runs; trust the kernel for the big ones (the
      // verification cost is the host-side O(n³) reference multiply).
      params.verify = n <= 256;
      const MatmulResult r = run_matmul(params);
      if (params.verify && r.max_error > 1e-8) {
        std::fprintf(stderr, "VERIFICATION FAILED (err %g)\n", r.max_error);
        return 1;
      }
      rep = r.report;
      // MFlops on the compute phase, like the paper (the serial data
      // distribution from node 0 is reported by the total seconds column).
      std::printf("   %9.3f %9.1f", secs(r.makespan_ns), r.mflops_compute);
    }
    std::printf("\n");
  }
  std::printf(
      "\nseconds = whole run including initial data distribution; MFlops is\n"
      "computed on the systolic phase only, as in the paper.\n"
      "shape check: MFlops rise with n at fixed P and with P at fixed n;\n"
      "the paper peaks at 434 MFlops for 1024² on 64 nodes (≈6.8 MFlops\n"
      "per 33 MHz node — our cost model charges 150 ns/flop ≈ 6.7).\n");
  report_json(rep, "table5_matmul");
  return 0;
}
