// Ablation A — alias-based latency hiding for remote creation (§5).
//
// Paper: "An actor which requests a remote creation must wait until a new
// actor is created and its mail address is returned from the remote node.
// … We use aliases to hide the remote creation latency with no context
// switching." A creator that fires K remote creations continues after each
// injection (alias mode); a runtime without aliases serializes a full
// round trip per creation (modeled by chaining each creation on a probe
// reply). The gap per creation is the paper's 5.83 µs vs 20.83 µs.
#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

class Dummy : public ActorBase {
 public:
  void on_probe(Context& ctx) { ctx.reply(std::int64_t{1}); }
  HAL_BEHAVIOR(Dummy, &Dummy::on_probe)
};

class Driver : public ActorBase {
 public:
  void on_run_alias(Context& ctx, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) {
      (void)ctx.create_on<Dummy>(pick(ctx, i));
    }
    done_at = ctx.now();  // creator's continuation resumes immediately
  }

  void on_run_sync(Context& ctx, std::uint64_t k) {
    remaining_ = k;
    next(ctx);
  }

  HAL_BEHAVIOR(Driver, &Driver::on_run_alias, &Driver::on_run_sync)
  inline static SimTime done_at = 0;

 private:
  static NodeId pick(Context& ctx, std::uint64_t i) {
    return static_cast<NodeId>(1 + i % (ctx.node_count() - 1));
  }

  void next(Context& ctx) {
    if (remaining_ == 0) {
      done_at = ctx.now();
      return;
    }
    const std::uint64_t i = remaining_--;
    const MailAddress a = ctx.create_on<Dummy>(pick(ctx, i));
    // Without aliases the creator cannot proceed until the new actor's
    // address comes back: chain the next creation on a reply.
    ctx.request<&Dummy::on_probe>(
        // HAL_LINT_SUPPRESS(hal-actor-state-escape): the Driver is a
        // singleton pinned to node 0 for the whole run; it never migrates.
        a, [this](Context& jc, const JoinView&) { next(jc); });
  }

  std::uint64_t remaining_ = 0;
};

SimTime run_mode(bool alias_mode, std::uint64_t k,
                 obs::RunReport* report = nullptr) {
  RuntimeConfig cfg;
  cfg.nodes = 4;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  Runtime rt(cfg);
  rt.load<Dummy>();
  rt.load<Driver>();
  Driver::done_at = 0;
  const MailAddress d = rt.spawn<Driver>(0);
  if (alias_mode) {
    rt.inject<&Driver::on_run_alias>(d, k);
  } else {
    rt.inject<&Driver::on_run_sync>(d, k);
  }
  rt.run();
  if (report != nullptr) *report = rt.report();
  return Driver::done_at;
}

}  // namespace

int main() {
  using namespace hal::bench;
  header("Ablation A: alias-based remote-creation latency hiding",
         "paper §5 — 5.83 µs initiation vs 20.83 µs actual creation");

  const std::uint64_t ks[] = {1, 8, 64, 256};
  hal::obs::RunReport rep;
  std::printf("%8s %20s %20s %10s\n", "K", "aliases (µs)",
              "no aliases (µs)", "ratio");
  for (const std::uint64_t k : ks) {
    const SimTime with_alias = run_mode(true, k);
    // Keep the largest no-alias run's report: its request/reply chains
    // populate the join and remote-delivery histograms.
    const SimTime without = run_mode(false, k, &rep);
    std::printf("%8llu %20.2f %20.2f %9.1fx\n",
                static_cast<unsigned long long>(k), us(with_alias),
                us(without),
                static_cast<double>(without) /
                    static_cast<double>(with_alias));
  }
  std::printf(
      "\ntime until the creator's continuation has passed all K remote\n"
      "creations. With aliases the creator pays only the injection cost\n"
      "per creation; without, it serializes a full round trip per\n"
      "creation (the paper's split-phase alternative needs a context\n"
      "switch instead, which stock hardware makes even costlier).\n");
  report_json(rep, "ablation_aliases");
  return 0;
}
