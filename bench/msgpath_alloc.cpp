// Allocation census of the message path.
//
// The zero-allocation fast path claims that steady-state small-message
// traffic performs no heap allocation: packet bodies memcpy into pooled
// buffers, the dispatcher ring and mailbox rings stop growing at their
// high-water marks, and retired payload buffers recycle through each
// kernel's BufferPool. This bench *measures* that claim: global operator
// new/delete are intercepted and counted around three fixed message storms
// (local send, remote send, reply-to-continuation), each run at two sizes so
// the marginal allocations per extra message cancel out warmup (pool fills,
// ring growth, event-queue doubling).
//
// HAL_MSGPATH_MAX_ALLOCS=<n> (optional; set but empty counts as set) turns
// the numbers into a hard budget: the binary exits non-zero if
// allocations-per-small-message exceeds n on *any* storm — local, remote,
// or reply. Since the join-continuation path went inline (InlineFunction
// body, inline slot storage) the reply storm allocates nothing either, so
// CI runs with a budget of 0.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"
#include "runtime/api.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

inline void count_alloc() noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t n) {
  count_alloc();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replaceable global allocation functions: count, then defer to malloc/free.
void* operator new(std::size_t n) { return checked_malloc(n); }
void* operator new[](std::size_t n) { return checked_malloc(n); }
void* operator new(std::size_t n, std::align_val_t) { return checked_malloc(n); }
void* operator new[](std::size_t n, std::align_val_t) {
  return checked_malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace hal;

// --- Storm actors --------------------------------------------------------------

/// Small-message hop chain: every hop is one inline-args message (no
/// payload). With peer == self this is the local-send storm; across two
/// nodes it is the remote-send storm.
class Hopper : public ActorBase {
 public:
  void on_peer(Context&, MailAddress p) { peer = p; }
  void on_hop(Context& ctx, std::int64_t left) {
    if (left > 0) ctx.send<&Hopper::on_hop>(peer, left - 1);
  }
  HAL_BEHAVIOR(Hopper, &Hopper::on_peer, &Hopper::on_hop)
  MailAddress peer;
};

class Replier : public ActorBase {
 public:
  void on_ask(Context& ctx) { ctx.reply(++served); }
  HAL_BEHAVIOR(Replier, &Replier::on_ask)
  std::int64_t served = 0;
};

/// Sequential request/reply rounds against a remote server: each round is a
/// remote request, a remote reply routed to the join-continuation slot, and
/// a local self-send from the continuation body (3 messages per round, plus
/// one join continuation).
class Asker : public ActorBase {
 public:
  void on_init(Context&, MailAddress s) { server = s; }
  void on_go(Context& ctx, std::int64_t left) {
    if (left <= 0) return;
    const MailAddress me = ctx.self();
    ctx.request<&Replier::on_ask>(
        server, [me, left](Context& c, const JoinView&) {
          c.send<&Asker::on_go>(me, left - 1);
        });
  }
  HAL_BEHAVIOR(Asker, &Asker::on_init, &Asker::on_go)
  MailAddress server;
};

// --- Harness -------------------------------------------------------------------

struct StormOut {
  std::uint64_t allocs = 0;  ///< heap allocations during Runtime::run()
  double wall_s = 0.0;       ///< host wall time of Runtime::run()
  obs::RunReport report;
};

template <typename SetupFn>
StormOut run_storm(NodeId nodes, SetupFn&& setup) {
  RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.machine = hal::bench::env_machine(cfg.machine);
  cfg.mn_workers = hal::bench::env_mn_workers();
  Runtime rt(cfg);
  setup(rt);
  StormOut out;
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  rt.run();
  const auto t1 = std::chrono::steady_clock::now();
  g_counting.store(false, std::memory_order_relaxed);
  out.allocs = g_allocs.load(std::memory_order_relaxed);
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.report = rt.report();
  return out;
}

StormOut local_storm(std::int64_t hops) {
  return run_storm(1, [hops](Runtime& rt) {
    rt.load<Hopper>();
    const MailAddress a = rt.spawn<Hopper>(0);
    rt.inject<&Hopper::on_peer>(a, a);
    rt.inject<&Hopper::on_hop>(a, hops);
  });
}

StormOut remote_storm(std::int64_t hops) {
  return run_storm(2, [hops](Runtime& rt) {
    rt.load<Hopper>();
    const MailAddress a = rt.spawn<Hopper>(0);
    const MailAddress b = rt.spawn<Hopper>(1);
    rt.inject<&Hopper::on_peer>(a, b);
    rt.inject<&Hopper::on_peer>(b, a);
    rt.inject<&Hopper::on_hop>(a, hops);
  });
}

StormOut reply_storm(std::int64_t rounds) {
  return run_storm(2, [rounds](Runtime& rt) {
    rt.load<Replier>();
    rt.load<Asker>();
    const MailAddress server = rt.spawn<Replier>(0);
    const MailAddress asker = rt.spawn<Asker>(1);
    rt.inject<&Asker::on_init>(asker, server);
    rt.inject<&Asker::on_go>(asker, rounds);
  });
}

struct Row {
  const char* name;
  double allocs_per_msg;
  double msgs_per_sec;
  std::uint64_t msgs;
};

/// Marginal allocation rate: run at N and 2N, attribute the difference to
/// the extra messages. One-time costs (pool warmup, ring growth to the
/// high-water mark, simulator event-queue doubling) appear in both runs and
/// cancel; what remains is the steady-state per-message rate.
template <typename StormFn>
Row measure(const char* name, StormFn&& storm, std::int64_t n,
            std::int64_t msgs_per_round, StormOut* keep_report = nullptr) {
  const StormOut small = storm(n);
  const StormOut big = storm(2 * n);
  if (keep_report != nullptr) *keep_report = big;
  const double extra_msgs =
      static_cast<double>(msgs_per_round) * static_cast<double>(n);
  const double extra_allocs =
      big.allocs >= small.allocs
          ? static_cast<double>(big.allocs - small.allocs)
          : 0.0;
  const std::uint64_t big_msgs = static_cast<std::uint64_t>(
      msgs_per_round * 2 * n);
  return Row{name, extra_allocs / extra_msgs,
             static_cast<double>(big_msgs) / big.wall_s, big_msgs};
}

}  // namespace

int main() {
  hal::bench::header(
      "Message-path allocation census (marginal allocs per message)",
      "zero-allocation small-message fast path (pooled buffers, ring "
      "dispatcher)");

  const bool paper = hal::bench::paper_scale();
  const std::int64_t send_n = paper ? 200000 : 20000;
  const std::int64_t reply_n = paper ? 50000 : 5000;

  StormOut reply_report;
  const Row rows[] = {
      measure("local send (1 node, inline args)", local_storm, send_n, 1),
      measure("remote send (2 nodes, inline args)", remote_storm, send_n, 1),
      measure("reply-to-continuation (2 nodes)", reply_storm, reply_n, 3,
              &reply_report),
  };

  std::printf("%-40s %12s %14s %12s\n", "storm", "messages", "allocs/msg",
              "msgs/sec");
  for (const Row& r : rows) {
    std::printf("%-40s %12llu %14.3f %12.0f\n", r.name,
                static_cast<unsigned long long>(r.msgs), r.allocs_per_msg,
                r.msgs_per_sec);
  }
  std::printf(
      "\nshape check: every storm should sit at ~0 allocs/msg — the reply\n"
      "round's join continuation lives entirely inline (InlineFunction body,\n"
      "inline slots, no pooled buffer for a body-less request).\n");

  // Structured report from the largest reply storm: it populates the remote
  // delivery, mailbox residency, method execution, dispatch batch, and join
  // round-trip histograms.
  hal::bench::report_json(reply_report.report, "msgpath_alloc");

  // Optional hard budget over all three storms (CI sets 0: the message
  // path — including reply-to-continuation — must be allocation-free at
  // the margin). Presence of the variable enables the check, so a budget
  // of 0 is expressible.
  if (std::getenv("HAL_MSGPATH_MAX_ALLOCS") != nullptr) {
    const unsigned budget =
        hal::bench::env_unsigned("HAL_MSGPATH_MAX_ALLOCS", 0);
    // Tolerance for O(log n) effects (ring/event-queue doubling) that do
    // not fully cancel in the marginal measurement.
    const double limit = static_cast<double>(budget) + 0.01;
    for (const Row& r : rows) {
      if (r.allocs_per_msg > limit) {
        std::fprintf(stderr,
                     "FAIL: %s exceeded the allocation budget: %.3f > %u "
                     "allocs per small message\n",
                     r.name, r.allocs_per_msg, budget);
        return 1;
      }
    }
    std::printf("allocation budget: PASS (<= %u per small message)\n", budget);
  }
  return 0;
}
