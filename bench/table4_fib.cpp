// Table 4 — Fibonacci with and without dynamic load balancing.
//
// Paper: "Table 4: Execution times (seconds) of the Fibonacci computation
// with and without dynamic load balancing. … executing the Fibonacci of 33
// results in the creation of 11,405,773 actors. … Receiver-initiated random
// polling scheme is used for dynamic load balancing. As a point of
// comparison, executing the Fibonacci of 33 using the Cilk system takes
// 73.16 seconds on the same Sparc processor and an optimized C version
// completes in 8.49 seconds."
//
// Expected shape: without LB, time is flat in P (everything runs on the
// seeding node); with LB it drops as P grows. The comparator rows give the
// sequential and work-stealing baselines.
#include <chrono>
#include <functional>

#include "apps/fib.hpp"
#include "baseline/seq_kernels.hpp"
#include "baseline/worksteal.hpp"
#include "bench_util.hpp"

namespace {

/// Cilk-style continuation-passing fib on the Chase–Lev pool.
std::uint64_t ws_fib(hal::baseline::WorkStealPool& pool, unsigned n,
                     unsigned cutoff) {
  struct Node {
    std::atomic<int> pending{2};
    std::uint64_t parts[2] = {0, 0};
    Node* parent = nullptr;
    int slot = 0;
  };
  std::atomic<std::uint64_t> result{0};
  std::function<void(unsigned, Node*, int)> spawn = [&](unsigned m,
                                                        Node* parent,
                                                        int slot) {
    if (m < cutoff) {
      std::uint64_t value = hal::baseline::fib_seq(m);
      Node* cur = parent;
      int s = slot;
      while (cur != nullptr) {
        cur->parts[s] = value;
        if (cur->pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
          return;
        }
        value = cur->parts[0] + cur->parts[1];
        Node* up = cur->parent;
        s = cur->slot;
        delete cur;
        cur = up;
      }
      result.store(value, std::memory_order_release);
      return;
    }
    auto* node = new Node;
    node->parent = parent;
    node->slot = slot;
    pool.fork([&spawn, m, node] { spawn(m - 1, node, 0); });
    pool.fork([&spawn, m, node] { spawn(m - 2, node, 1); });
  };
  pool.run([&] { spawn(n, nullptr, 0); });
  return result.load(std::memory_order_acquire);
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Sink to keep the sequential comparator from being optimized away.
volatile std::uint64_t benchmark_guard;

}  // namespace

int main() {
  using namespace hal::apps;
  using namespace hal::bench;

  const unsigned n = env_unsigned("HAL_FIB_N", paper_scale() ? 28 : 24);
  const unsigned cutoff = env_unsigned("HAL_FIB_CUTOFF", 8);
  const std::uint64_t expect = hal::baseline::fib_seq(n);

  header("Table 4: Fibonacci with/without dynamic load balancing (seconds)",
         "paper §7.2 Table 4 — receiver-initiated random polling");
  std::printf("fib(%u), compiler cutoff %u, all work seeded on node 0\n\n",
              n, cutoff);
  std::printf("%4s %16s %16s %10s\n", "P", "without LB", "with LB",
              "speedup");
  hal::obs::RunReport rep;  // representative run: with LB at the largest P

  for (const hal::NodeId p : {1u, 2u, 4u, 8u, 16u}) {
    FibParams params;
    params.n = n;
    params.cutoff = cutoff;
    params.nodes = p;
    params.machine = hal::bench::env_machine(params.machine);
    params.mn_workers = hal::bench::env_mn_workers();
    params.load_balancing = false;
    const FibResult without = run_fib(params);
    params.load_balancing = true;
    const FibResult with_lb = run_fib(params);
    if (without.value != expect || with_lb.value != expect) {
      std::fprintf(stderr, "VERIFICATION FAILED\n");
      return 1;
    }
    rep = with_lb.report;
    std::printf("%4u %16.3f %16.3f %9.2fx\n", p, secs(without.makespan_ns),
                secs(with_lb.makespan_ns),
                static_cast<double>(without.makespan_ns) /
                    static_cast<double>(with_lb.makespan_ns));
  }

  // Comparator rows. The virtual row is what the paper's footnote compares
  // against (optimized C on the same 33 MHz Sparc); the host rows are the
  // same baselines on today's hardware, for reference.
  std::printf("\ncomparators:\n");
  {
    FibParams one;
    one.n = n;
    const hal::SimTime seq_ns = fib_sequential_virtual_ns(
        n, hal::am::CostModel::cm5());
    std::printf("  %-46s %10.4f s\n",
                "sequential on one simulated node (paper: C)", secs(seq_ns));
  }
  const double seq_s =
      wall_seconds([&] { benchmark_guard = hal::baseline::fib_seq(n); });
  std::printf("  %-46s %10.4f s\n", "sequential C++ on the host (2026)",
              seq_s);
  {
    hal::baseline::WorkStealPool pool(2);
    double ws_s = 0.0;
    std::uint64_t v = 0;
    ws_s = wall_seconds([&] { v = ws_fib(pool, n, cutoff); });
    if (v != expect) {
      std::fprintf(stderr, "work-stealing verification failed\n");
      return 1;
    }
    std::printf("  %-46s %10.4f s\n",
                "work-stealing pool on the host (paper: Cilk)", ws_s);
  }
  std::printf(
      "\nshape check: the without-LB column is flat in P; the with-LB\n"
      "column falls as P grows (Table 4's contrast).\n");
  report_json(rep, "table4_fib");
  return 0;
}
