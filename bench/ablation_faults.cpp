// Ablation F — messaging under an adversarial wire: throughput and tail
// latency vs injected loss rate.
//
// The paper's runtime assumes the CM-5 data network's exactly-once, in-order
// delivery. This experiment turns that assumption off: the fault plane
// drops/duplicates/delays packets at a configured rate and the reliable link
// (sequence numbers + cumulative acks + retransmission + dedupe) restores
// the contract underneath the kernel. Two workloads:
//   * fib        — fine-grained fork/join traffic (join continuations carry
//                  the quiescence-relevant replies)
//   * FIR chase  — a migrating actor with third-party senders, so stale
//                  descriptors force forward + FIR re-resolution while the
//                  wire is lossy
// Every run must complete exactly (asserted), with zero dead letters; the
// 5%-loss fib report is emitted as BENCH_ablation_faults.json and checked in
// CI by scripts/check_report.py --max-dead-letters 0.
#include <string>

#include "apps/fib.hpp"
#include "bench_util.hpp"
#include "common/assert.hpp"
#include "runtime/api.hpp"

namespace {

using namespace hal;

/// A migratable accumulator touring the machine while senders chase it.
class Roamer : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; }
  void on_hop(Context& ctx, NodeId target) { ctx.migrate_to(target); }
  HAL_BEHAVIOR(Roamer, &Roamer::on_add, &Roamer::on_hop)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override { w.write(sum_); }
  void unpack_state(ByteReader& r) override { sum_ = r.read<std::int64_t>(); }

  std::int64_t sum() const { return sum_; }

 private:
  std::int64_t sum_ = 0;
};

/// Waits in virtual time, then fires a burst at the (long-gone) target.
class Chaser : public ActorBase {
 public:
  void on_fire(Context& ctx, MailAddress target, std::int64_t count,
               std::int64_t delay_us) {
    ctx.charge_ns(static_cast<SimTime>(delay_us) * 1000);
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.send<&Roamer::on_add>(target, std::int64_t{1});
    }
  }
  HAL_BEHAVIOR(Chaser, &Chaser::on_fire)
};

am::FaultConfig faults_at(double loss) {
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = loss;
  fc.duplicate = loss / 2;  // duplication typically rarer than loss
  fc.delay = loss;
  return fc;
}

struct Row {
  obs::RunReport report;
};

Row run_fir_chase(double loss, unsigned burst) {
  RuntimeConfig cfg;
  cfg.nodes = 8;
  cfg.machine = hal::bench::env_machine(MachineKind::kSim);
  cfg.mn_workers = hal::bench::env_mn_workers();
  cfg.costs = am::CostModel::cm5();
  cfg.faults = faults_at(loss);
  Runtime rt(cfg);
  rt.load<Roamer>();
  rt.load<Chaser>();
  const MailAddress w = rt.spawn<Roamer>(0);
  // Tour all nodes twice; every hop leaves a stale forwarding descriptor.
  for (int lap = 0; lap < 2; ++lap) {
    for (NodeId n = 1; n < cfg.nodes; ++n) {
      rt.inject<&Roamer::on_hop>(w, n);
    }
    rt.inject<&Roamer::on_hop>(w, NodeId{0});
  }
  // Staggered third-party bursts route via the birthplace and chase.
  std::int64_t expected = 0;
  for (NodeId n = 1; n < cfg.nodes; ++n) {
    const MailAddress c = rt.spawn<Chaser>(n);
    rt.inject<&Chaser::on_fire>(c, w, std::int64_t{burst},
                                std::int64_t{5000 * n});
    expected += burst;
  }
  rt.run();
  const Roamer* obj = rt.find_behavior<Roamer>(w);
  HAL_ASSERT(obj != nullptr && obj->sum() == expected);
  HAL_ASSERT(rt.dead_letters() == 0);
  Row row;
  row.report = rt.report();
  return row;
}

void print_row(const char* workload, double loss, const obs::RunReport& r) {
  using namespace hal::bench;
  const auto& remote = r.probes.histogram(obs::Probe::kRemoteDelivery);
  const auto& redeliv = r.probes.histogram(obs::Probe::kRedelivery);
  // Fib's cross-node traffic is migrations, steals, and join replies rather
  // than remote actor sends, so throughput counts every delivered message.
  const double throughput =
      r.makespan_ns == 0
          ? 0.0
          : static_cast<double>(r.total.get(Stat::kMessagesDelivered)) /
                secs(r.makespan_ns);
  std::printf("%-10s %5.0f%% %12.2f %12.0f %9llu %9llu %12.1f %12.1f\n",
              workload, loss * 100, ms(r.makespan_ns), throughput,
              static_cast<unsigned long long>(
                  r.total.get(Stat::kLinkRetransmits)),
              static_cast<unsigned long long>(redeliv.count()),
              us(remote.quantile(0.99)),
              redeliv.count() == 0 ? 0.0 : us(redeliv.quantile(0.99)));
}

}  // namespace

int main() {
  using namespace hal::apps;
  using namespace hal::bench;
  header("Ablation F: throughput and tail latency vs injected loss",
         "fault plane + reliable link under the paper's workloads");

  const bool paper = paper_scale();
  const unsigned fib_n = env_unsigned("HAL_FIB_N", paper ? 24 : 18);
  const unsigned burst = env_unsigned("HAL_CHASE_BURST", paper ? 200 : 50);
  const double rates[] = {0.0, 0.01, 0.05, 0.10};

  std::printf("%-10s %6s %12s %12s %9s %9s %12s %12s\n", "workload", "loss",
              "makespan", "msgs/s", "retrans", "redeliv", "p99 dlv us",
              "p99 rdlv us");

  hal::obs::RunReport five_pct_report;
  for (const double loss : rates) {
    FibParams p;
    p.machine = hal::bench::env_machine(p.machine);
    p.mn_workers = hal::bench::env_mn_workers();
    p.n = fib_n;
    p.cutoff = 8;
    p.nodes = 8;
    p.load_balancing = true;
    p.faults = faults_at(loss);
    const FibResult a = run_fib(p);
    HAL_ASSERT(a.dead_letters == 0);
    print_row("fib", loss, a.report);
    if (loss == 0.05) {
      // Identical seed, identical schedule, identical fault pattern: the
      // whole structured report must reproduce byte-for-byte. Virtual time
      // only — under HAL_MACHINE=thread|mn makespans are wall-clock.
      if (p.machine == MachineKind::kSim) {
        const FibResult b = run_fib(p);
        HAL_ASSERT(a.value == b.value);
        HAL_ASSERT(a.report.to_json() == b.report.to_json());
      }
      five_pct_report = a.report;
    }
  }
  for (const double loss : rates) {
    const Row r = run_fir_chase(loss, burst);
    print_row("fir-chase", loss, r.report);
  }

  std::printf(
      "\nAt-least-once retransmission plus sequence-layer dedupe keeps every\n"
      "workload exact (asserted: zero dead letters, byte-identical reports\n"
      "for identical seeds); loss shows up as tail latency, not as drops.\n");
  report_json(five_pct_report, "ablation_faults");
  return 0;
}
