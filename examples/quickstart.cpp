// Quickstart: a taste of the Halcyon actor runtime.
//
// Boots a 4-node simulated machine, creates a ring of actors spanning all
// nodes (remote creations use the alias scheme — note the program never
// waits for them), circulates a token around the ring, and finally collects
// each node's hop count through one join continuation.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "runtime/api.hpp"

namespace {

class Driver;

/// One ring node: forwards the token until it expires, counting local hops.
class RingNode : public hal::ActorBase {
 public:
  /// Wire this node to its successor.
  void on_link(hal::Context&, hal::MailAddress next) { next_ = next; }

  /// Pass the token on; when its time-to-live expires, tell the driver.
  void on_token(hal::Context& ctx, std::int64_t ttl, hal::MailAddress driver);

  /// Call/return: report how many times the token passed through here.
  void on_hops(hal::Context& ctx) { ctx.reply(hops_); }

  HAL_BEHAVIOR(RingNode, &RingNode::on_link, &RingNode::on_token,
               &RingNode::on_hops)

 private:
  hal::MailAddress next_;
  std::int64_t hops_ = 0;
};

/// Builds the ring, launches the token, then queries every node.
class Driver : public hal::ActorBase {
 public:
  void on_start(hal::Context& ctx, std::int64_t ring_size,
                std::int64_t laps) {
    // Create one ring node per machine node — create_on returns immediately
    // even for remote targets (§5 of the paper: aliases hide the creation
    // round trip).
    ring_.clear();
    for (std::int64_t i = 0; i < ring_size; ++i) {
      const auto node = static_cast<hal::NodeId>(
          i % static_cast<std::int64_t>(ctx.node_count()));
      ring_.push_back(ctx.create_on<RingNode>(node));
    }
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      ctx.send<&RingNode::on_link>(ring_[i], ring_[(i + 1) % ring_.size()]);
    }
    ctx.send<&RingNode::on_token>(ring_[0], laps * ring_size, ctx.self());
  }

  /// The token expired somewhere on the ring; now fan-in the hop counts
  /// with one join continuation (§6.2) — its body fires after every ring
  /// node has replied.
  void on_token_done(hal::Context& ctx) {
    const hal::ContRef join = ctx.make_join(
        static_cast<std::uint32_t>(ring_.size()),
        [](hal::Context&, const hal::JoinView& v) {
          std::int64_t total = 0;
          for (std::size_t i = 0; i < v.size(); ++i) {
            total += v.get<std::int64_t>(i);
          }
          std::printf("total hops observed by ring nodes: %lld\n",
                      static_cast<long long>(total));
        });
    for (std::uint32_t i = 0; i < ring_.size(); ++i) {
      ctx.send_cont<&RingNode::on_hops>(ring_[i], join.at(i));
    }
  }

  HAL_BEHAVIOR(Driver, &Driver::on_start, &Driver::on_token_done)

 private:
  std::vector<hal::MailAddress> ring_;
};

void RingNode::on_token(hal::Context& ctx, std::int64_t ttl,
                        hal::MailAddress driver) {
  ++hops_;
  if (ttl > 1) {
    ctx.send<&RingNode::on_token>(next_, ttl - 1, driver);
  } else {
    ctx.send<&Driver::on_token_done>(driver);
  }
}

}  // namespace

int main() {
  hal::RuntimeConfig cfg;
  cfg.nodes = 4;
  cfg.machine = hal::MachineKind::kSim;  // deterministic virtual time

  hal::Runtime rt(cfg);
  rt.load<RingNode>();
  rt.load<Driver>();

  const hal::MailAddress driver = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_start>(driver, std::int64_t{8}, std::int64_t{5});
  rt.run();

  const hal::StatBlock stats = rt.report().total;
  std::printf("simulated makespan: %.1f us\n",
              static_cast<double>(rt.report().makespan_ns) / 1000.0);
  std::printf("remote sends: %llu, local sends: %llu, aliases: %llu\n",
              static_cast<unsigned long long>(
                  stats.get(hal::Stat::kMessagesSentRemote)),
              static_cast<unsigned long long>(
                  stats.get(hal::Stat::kMessagesSentLocal)),
              static_cast<unsigned long long>(
                  stats.get(hal::Stat::kAliasesAllocated)));
  return 0;
}
