// Example: location transparency under live migration (paper §4).
//
// A stateful actor tours every node of the machine while clients on other
// nodes keep sending to the *same* mail address throughout. Deliveries that
// land on a node the actor already left are parked while an FIR chases the
// forward chain (§4.3); the resolution updates every name table on the way
// and teaches the senders, so traffic converges back to direct delivery.
//
// Usage: migration_tour [nodes] [laps] [messages_per_client]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "runtime/api.hpp"

namespace {

/// The touring actor: accumulates everything it is sent, wherever it is.
class Tourist : public hal::ActorBase {
 public:
  void on_deposit(hal::Context& ctx, std::int64_t amount) {
    total_ += amount;
    visits_[ctx.node()] += 0;  // ensure the entry exists
  }
  void on_hop(hal::Context& ctx, hal::NodeId next, std::int64_t remaining) {
    ++visits_[ctx.node()];
    if (remaining > 0) {
      const auto after =
          static_cast<hal::NodeId>((next + 1) % ctx.node_count());
      // Queue the next hop to ourselves before moving: it travels with us.
      ctx.send<&Tourist::on_hop>(ctx.self(), after, remaining - 1);
      ctx.migrate_to(next);
    }
  }
  void on_report(hal::Context& ctx) { ctx.reply(total_); }
  HAL_BEHAVIOR(Tourist, &Tourist::on_deposit, &Tourist::on_hop,
               &Tourist::on_report)

  bool migratable() const override { return true; }
  void pack_state(hal::ByteWriter& w) const override {
    w.write(total_);
    w.write(static_cast<std::uint32_t>(visits_.size()));
    for (const auto& [node, count] : visits_) {
      w.write(node);
      w.write(count);
    }
  }
  void unpack_state(hal::ByteReader& r) override {
    total_ = r.read<std::int64_t>();
    const auto n = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto node = r.read<hal::NodeId>();
      visits_[node] = r.read<std::int64_t>();
    }
  }

  std::int64_t total() const { return total_; }
  const std::map<hal::NodeId, std::int64_t>& visits() const { return visits_; }

 private:
  std::int64_t total_ = 0;
  std::map<hal::NodeId, std::int64_t> visits_;
};

/// Fires deposits at the tourist at spaced (virtual) intervals, so some
/// land mid-migration and exercise the park-and-chase path.
class Client : public hal::ActorBase {
 public:
  void on_run(hal::Context& ctx, hal::MailAddress target, std::int64_t count,
              std::int64_t gap_us) {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.charge_ns(static_cast<hal::SimTime>(gap_us) * 1000);
      ctx.send<&Tourist::on_deposit>(target, std::int64_t{1});
    }
  }
  HAL_BEHAVIOR(Client, &Client::on_run)
};

}  // namespace

int main(int argc, char** argv) {
  const auto nodes =
      argc > 1 ? static_cast<hal::NodeId>(std::atoi(argv[1])) : 6;
  const auto laps = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto per_client = argc > 3 ? std::atoi(argv[3]) : 40;

  hal::RuntimeConfig cfg;
  cfg.nodes = nodes;
  hal::Runtime rt(cfg);
  rt.load<Tourist>();
  rt.load<Client>();

  const hal::MailAddress tourist = rt.spawn<Tourist>(0);
  rt.inject<&Tourist::on_hop>(
      tourist, hal::NodeId{1},
      std::int64_t{static_cast<std::int64_t>(nodes) * laps});
  for (hal::NodeId n = 0; n < nodes; ++n) {
    const hal::MailAddress c = rt.spawn<Client>(n);
    rt.inject<&Client::on_run>(c, tourist, std::int64_t{per_client},
                               std::int64_t{50 + 13 * n});
  }
  rt.run();

  const auto* t = rt.find_behavior<Tourist>(tourist);
  if (t == nullptr) {
    std::fprintf(stderr, "tourist lost!\n");
    return 1;
  }
  const std::int64_t expect =
      static_cast<std::int64_t>(nodes) * per_client;
  std::printf("deposits received: %lld / %lld  (exactly-once under %d laps"
              " of migration)\n",
              static_cast<long long>(t->total()),
              static_cast<long long>(expect), laps);

  const hal::StatBlock stats = rt.report().total;
  std::printf("migrations: %llu, messages parked for FIR: %llu, FIR chases"
              " resolved: %llu\n",
              static_cast<unsigned long long>(
                  stats.get(hal::Stat::kMigrationsIn)),
              static_cast<unsigned long long>(
                  stats.get(hal::Stat::kMessagesParked)),
              static_cast<unsigned long long>(
                  stats.get(hal::Stat::kFirResolved)));
  std::printf("dead letters: %llu\n",
              static_cast<unsigned long long>(rt.dead_letters()));
  return t->total() == expect ? 0 : 1;
}
