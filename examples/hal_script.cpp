// Example: run a HALlite program on the simulated machine.
//
// HALlite is the repository's reconstruction of the language surface the
// paper's runtime serves (§2): behaviours, asynchronous sends, creation
// with placement, request/reply continuation blocks (the compiled form of
// call/return, §6.2), `when` guards (synchronization constraints, §6.1),
// `become`, and migration. Interpreted actors run on the same kernels and
// name server as C++ behaviours — and migrate with their state.
//
// Usage: hal_script [path/to/program.hal] [nodes]
//        (no arguments: runs the embedded showcase program)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "lang/interp.hpp"

namespace {

constexpr const char* kShowcase = R"HAL(
// A stateful actor tours the machine while a supervisor keeps score.

behavior Tourist {
  state visits = 0;
  state diary = "";

  method visit(next_node, remaining, boss) {
    visits = visits + 1;
    diary = diary + " " + node();
    if (remaining > 0) {
      send self.visit((next_node + 1) % nodes(), remaining - 1, boss);
      migrate next_node;
    } else {
      send boss.done(visits, diary);
    }
  }
}

behavior Supervisor {
  state expected;

  method expect(n) { expected = n; }

  method done(visits, diary) when (expected > 0) {
    print "tour of " + visits + " stops, itinerary:" + diary;
    if (visits == expected) {
      print "all stops accounted for";
    } else {
      print "LOST STOPS: expected " + expected;
    }
  }
}

behavior Fib {
  method compute(n) {
    if (n < 2) {
      reply n;
    } else {
      let left = new Fib on ((node() + 1) % nodes());
      let right = new Fib on ((node() + 2) % nodes());
      request left.compute(n - 1) -> (a) {
        request right.compute(n - 2) -> (b) {
          reply a + b;
        }
      }
    }
  }
}

main {
  let boss = new Supervisor;
  send boss.expect(9);
  let t = new Tourist on 1;
  send t.visit(2, 8, boss);

  let f = new Fib;
  request f.compute(12) -> (v) {
    print "fib(12) = " + v;
  }
}
)HAL";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kShowcase;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.good()) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }
  const auto nodes =
      argc > 2 ? static_cast<hal::NodeId>(std::atoi(argv[2])) : 4;

  hal::RuntimeConfig cfg;
  cfg.nodes = nodes;
  hal::Runtime rt(cfg);
  try {
    auto program = hal::lang::load_program(rt, source);
    hal::lang::start_main(rt, program);
    rt.run();
  } catch (const hal::lang::LangError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  for (const auto& line : rt.console()) {
    std::printf("[%8.1f us, node %u] %s\n",
                static_cast<double>(line.time) / 1000.0, line.node,
                line.text.c_str());
  }
  std::printf("(simulated makespan %.1f us over %u nodes)\n",
              static_cast<double>(rt.report().makespan_ns) / 1000.0, nodes);
  return 0;
}
