// Example: a dynamic, irregular computation — the workload class the paper's
// introduction argues needs location transparency and migration.
//
// "We have argued that such flexibility is essential for scalable execution
// of dynamic, irregular applications over sparse data structures." (§1)
// Adaptive quadrature is the classic instance: the recursion tree's shape
// depends on the integrand, so no static placement is balanced. Every
// interval is a relocatable actor; all work is seeded on node 0; the
// receiver-initiated balancer spreads the spiky subtrees at runtime.
//
// Usage: adaptive_quadrature [nodes]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "runtime/api.hpp"

namespace {

/// A deliberately nasty integrand: smooth almost everywhere, violently
/// oscillatory near x = 0.3 — the recursion depth varies by ~10 levels
/// across the domain.
double f(double x) {
  const double d = std::abs(x - 0.3) + 1e-3;
  return std::sin(1.0 / d) + 0.5 * std::sin(20.0 * x);
}

/// Simpson's rule on [a, b].
double simpson(double a, double b) {
  const double m = 0.5 * (a + b);
  return (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b));
}

class IntervalActor : public hal::ActorBase {
 public:
  void on_integrate(hal::Context& ctx, double a, double b, double whole,
                    std::int64_t depth, hal::ContRef result) {
    const double m = 0.5 * (a + b);
    const double left = simpson(a, m);
    const double right = simpson(m, b);
    // ~30 evaluations of f worth of virtual work per refinement step.
    ctx.charge_work(30);
    if (depth <= 0 || std::abs(left + right - whole) < 1e-9) {
      ctx.reply_to(result, left + right);
      ctx.terminate();
      return;
    }
    // Refine: two relocatable children, a join continuation adds them up.
    const hal::ContRef join = ctx.make_join(
        2, [result](hal::Context& jc, const hal::JoinView& v) {
          jc.reply_to(result, v.get<double>(0) + v.get<double>(1));
        });
    const auto lchild = ctx.create<IntervalActor>();
    const auto rchild = ctx.create<IntervalActor>();
    ctx.set_relocatable(lchild, true);
    ctx.set_relocatable(rchild, true);
    ctx.send<&IntervalActor::on_integrate>(lchild, a, m, left, depth - 1,
                                           join.at(0));
    ctx.send<&IntervalActor::on_integrate>(rchild, m, b, right, depth - 1,
                                           join.at(1));
    ctx.terminate();
  }
  HAL_BEHAVIOR(IntervalActor, &IntervalActor::on_integrate)
  bool migratable() const override { return true; }
  void pack_state(hal::ByteWriter&) const override {}
  void unpack_state(hal::ByteReader&) override {}
};

class QuadRoot : public hal::ActorBase {
 public:
  void on_start(hal::Context& ctx, double a, double b) {
    const hal::ContRef join =
        ctx.make_join(1, [](hal::Context&, const hal::JoinView& v) {
          value = v.get<double>(0);
          done = true;
        });
    const auto top = ctx.create<IntervalActor>();
    ctx.set_relocatable(top, true);
    ctx.send<&IntervalActor::on_integrate>(top, a, b, simpson(a, b),
                                           std::int64_t{24}, join.at(0));
  }
  HAL_BEHAVIOR(QuadRoot, &QuadRoot::on_start)
  inline static double value = 0.0;
  inline static bool done = false;
};

double run(hal::NodeId nodes, bool lb, hal::SimTime* makespan,
           hal::StatBlock* stats) {
  QuadRoot::value = 0.0;
  QuadRoot::done = false;
  hal::RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.load_balancing = lb;
  hal::Runtime rt(cfg);
  rt.load<IntervalActor>();
  rt.load<QuadRoot>();
  const auto root = rt.spawn<QuadRoot>(0);
  rt.inject<&QuadRoot::on_start>(root, 0.0, 1.0);
  rt.run();
  *makespan = rt.report().makespan_ns;
  *stats = rt.report().total;
  return QuadRoot::done ? QuadRoot::value : std::nan("");
}

}  // namespace

int main(int argc, char** argv) {
  const auto nodes =
      argc > 1 ? static_cast<hal::NodeId>(std::atoi(argv[1])) : 8;

  hal::SimTime t_without = 0, t_with = 0;
  hal::StatBlock s_without, s_with;
  const double v1 = run(nodes, false, &t_without, &s_without);
  const double v2 = run(nodes, true, &t_with, &s_with);

  std::printf("adaptive quadrature of an oscillatory integrand on [0,1]\n");
  std::printf("result: %.9f (both runs agree: %s)\n", v2,
              std::abs(v1 - v2) < 1e-12 ? "yes" : "NO");
  std::printf("intervals refined: %llu actors\n",
              static_cast<unsigned long long>(
                  s_with.get(hal::Stat::kActorsCreatedLocal)));
  std::printf("without load balancing: %8.3f ms\n",
              static_cast<double>(t_without) / 1e6);
  std::printf("with    load balancing: %8.3f ms (speedup %.2fx, "
              "%llu steals)\n",
              static_cast<double>(t_with) / 1e6,
              static_cast<double>(t_without) / static_cast<double>(t_with),
              static_cast<unsigned long long>(
                  s_with.get(hal::Stat::kStealRequestsServed)));
  std::printf(
      "\nThe recursion tree is shaped by the integrand (deep near the\n"
      "singularity at x=0.3), so only dynamic balancing can spread it.\n");
  return std::abs(v1 - v2) < 1e-12 ? 0 : 1;
}
