// Example: Cannon's systolic matrix multiplication on a √P×√P actor grid
// (paper §7.3, Table 5). Blocks travel as three-phase bulk transfers; cells
// synchronize purely locally (a cell multiplies step s when both step-s
// blocks arrived, even if its neighbours are already a step ahead).
//
// Usage: systolic_matmul [n] [grid]
#include <cstdio>
#include <cstdlib>

#include "apps/matmul.hpp"

int main(int argc, char** argv) {
  hal::apps::MatmulParams params;
  params.n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 96;
  params.grid = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
  if (params.n % params.grid != 0) {
    std::fprintf(stderr, "n must be divisible by grid\n");
    return 2;
  }

  std::printf("Cannon %zux%zu on a %ux%u grid (%u simulated nodes)\n",
              params.n, params.n, params.grid, params.grid,
              params.grid * params.grid);
  const hal::apps::MatmulResult r = hal::apps::run_matmul(params);
  std::printf("time: %.3f ms   %.1f MFlops   max error %.2e\n",
              static_cast<double>(r.makespan_ns) / 1e6, r.mflops,
              r.max_error);
  std::printf("bulk transfers: %llu, flow-control stalls: %llu\n",
              static_cast<unsigned long long>(
                  r.stats.get(hal::Stat::kBulkTransfers)),
              static_cast<unsigned long long>(
                  r.stats.get(hal::Stat::kBulkFlowStalls)));
  return r.max_error < 1e-8 ? 0 : 1;
}
