// Example: parallel Cholesky factorization, local vs global synchronization
// (paper §2.2, Table 1). Runs all four variants on the same SPD matrix,
// verifies each against the sequential factorization, and shows why the
// paper argues for minimal, per-actor synchronization constraints.
//
// Usage: cholesky [n] [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/cholesky.hpp"

int main(int argc, char** argv) {
  using namespace hal::apps;
  CholeskyParams params;
  params.n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 96;
  params.nodes = argc > 2 ? static_cast<hal::NodeId>(std::atoi(argv[2])) : 4;

  struct Row {
    const char* name;
    CholVariant variant;
    ColMapping mapping;
  };
  const Row rows[] = {
      {"BP  (pipelined, block map)", CholVariant::kPipelined,
       ColMapping::kBlock},
      {"CP  (pipelined, cyclic map)", CholVariant::kPipelined,
       ColMapping::kCyclic},
      {"Seq (global sync, p2p)", CholVariant::kGlobalSeq,
       ColMapping::kCyclic},
      {"Bcast (global sync, tree)", CholVariant::kGlobalBcast,
       ColMapping::kCyclic},
  };

  std::printf("Cholesky %zux%zu on %u nodes\n", params.n, params.n,
              params.nodes);
  std::printf("%-28s %12s %12s\n", "variant", "time (ms)", "max error");
  for (const Row& row : rows) {
    params.variant = row.variant;
    params.mapping = row.mapping;
    const CholeskyResult r = run_cholesky(params);
    std::printf("%-28s %12.3f %12.2e\n", row.name,
                static_cast<double>(r.makespan_ns) / 1e6, r.max_error);
    if (r.max_error > 1e-8) return 1;
  }
  std::printf(
      "\nLocal synchronization (BP/CP) lets iteration k+1 start before\n"
      "iteration k has drained — the Table 1 effect.\n");
  return 0;
}
