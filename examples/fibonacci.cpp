// Example: massively concurrent Fibonacci with dynamic load balancing
// (paper §7.2). Every call above the cutoff is an actor; all work starts on
// node 0 and spreads only through receiver-initiated random polling, which
// migrates ready actors (with their queued mail) to idle nodes.
//
// Usage: fibonacci [n] [nodes] [cutoff]
#include <cstdio>
#include <cstdlib>

#include "apps/fib.hpp"
#include "baseline/seq_kernels.hpp"

int main(int argc, char** argv) {
  hal::apps::FibParams params;
  params.n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 22;
  params.nodes = argc > 2 ? static_cast<hal::NodeId>(std::atoi(argv[2])) : 8;
  params.cutoff = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 8;

  std::printf("fib(%u) on %u simulated nodes (cutoff %u)\n", params.n,
              params.nodes, params.cutoff);

  params.load_balancing = false;
  const auto without = hal::apps::run_fib(params);
  params.load_balancing = true;
  const auto with_lb = hal::apps::run_fib(params);

  const auto expect = hal::baseline::fib_seq(params.n);
  std::printf("result: %llu (expected %llu)\n",
              static_cast<unsigned long long>(with_lb.value),
              static_cast<unsigned long long>(expect));
  std::printf("without load balancing: %10.3f ms (all work on node 0)\n",
              static_cast<double>(without.makespan_ns) / 1e6);
  std::printf("with    load balancing: %10.3f ms  (speedup %.2fx)\n",
              static_cast<double>(with_lb.makespan_ns) / 1e6,
              static_cast<double>(without.makespan_ns) /
                  static_cast<double>(with_lb.makespan_ns));
  std::printf("steals served: %llu, actors migrated: %llu\n",
              static_cast<unsigned long long>(
                  with_lb.stats.get(hal::Stat::kStealRequestsServed)),
              static_cast<unsigned long long>(
                  with_lb.stats.get(hal::Stat::kMigrationsIn)));
  return with_lb.value == expect ? 0 : 1;
}
