// Example: concurrent execution of multiple programs on one machine.
//
// Paper §3: "The runtime system is designed to concurrently execute
// multiple programs on the same partition; the design minimizes the
// machine's idle cycles … The kernel does not discriminate between actors
// created by different programs." Two unrelated programs — a prime counter
// fanned out across nodes and a token ring — are loaded into the same
// kernels and run interleaved; both report through the front-end console
// (§3, Fig. 1), whose log is ordered by virtual time.
//
// Usage: multi_program [nodes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runtime/api.hpp"

namespace {

// --- Program 1: count primes in [lo, hi) by fanning ranges across nodes -----

class PrimeWorker : public hal::ActorBase {
 public:
  void on_count(hal::Context& ctx, std::int64_t lo, std::int64_t hi) {
    std::int64_t primes = 0;
    for (std::int64_t v = lo; v < hi; ++v) {
      if (is_prime(v)) ++primes;
    }
    ctx.charge_work(static_cast<std::uint64_t>((hi - lo) * 12));
    ctx.reply(primes);
    ctx.terminate();
  }
  HAL_BEHAVIOR(PrimeWorker, &PrimeWorker::on_count)

 private:
  static bool is_prime(std::int64_t v) {
    if (v < 2) return false;
    for (std::int64_t d = 2; d * d <= v; ++d) {
      if (v % d == 0) return false;
    }
    return true;
  }
};

class PrimeDriver : public hal::ActorBase {
 public:
  void on_start(hal::Context& ctx, std::int64_t limit) {
    const auto shards = static_cast<std::uint32_t>(ctx.node_count());
    const hal::ContRef join = ctx.make_join(
        shards, [](hal::Context& jc, const hal::JoinView& v) {
          std::int64_t total = 0;
          for (std::size_t i = 0; i < v.size(); ++i) {
            total += v.get<std::int64_t>(i);
          }
          char line[96];
          std::snprintf(line, sizeof line,
                        "[primes] %lld primes below the limit",
                        static_cast<long long>(total));
          jc.print(line);
        });
    const std::int64_t per = limit / shards;
    for (std::uint32_t s = 0; s < shards; ++s) {
      // Dynamic placement: spread the workers round-robin (§ placement).
      const hal::MailAddress w = ctx.create_spread<PrimeWorker>();
      const std::int64_t lo = s * per;
      const std::int64_t hi = (s + 1 == shards) ? limit : lo + per;
      ctx.send_cont<&PrimeWorker::on_count>(w, join.at(s), lo, hi);
    }
  }
  HAL_BEHAVIOR(PrimeDriver, &PrimeDriver::on_start)
};

// --- Program 2: a token ring that reports each completed lap -----------------

class RingMember : public hal::ActorBase {
 public:
  void on_wire(hal::Context&, hal::MailAddress next, bool head) {
    next_ = next;
    head_ = head;
  }
  void on_token(hal::Context& ctx, std::int64_t laps_left) {
    if (head_) {
      char line[64];
      std::snprintf(line, sizeof line, "[ring] lap complete, %lld to go",
                    static_cast<long long>(laps_left));
      ctx.print(line);
      if (laps_left == 0) return;
      ctx.send<&RingMember::on_token>(next_, laps_left - 1);
      return;
    }
    ctx.send<&RingMember::on_token>(next_, laps_left);
  }
  HAL_BEHAVIOR(RingMember, &RingMember::on_wire, &RingMember::on_token)

 private:
  hal::MailAddress next_;
  bool head_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const auto nodes =
      argc > 1 ? static_cast<hal::NodeId>(std::atoi(argv[1])) : 4;

  hal::RuntimeConfig cfg;
  cfg.nodes = nodes;
  hal::Runtime rt(cfg);
  // "Load" both executables into every kernel (§3: dynamic loading).
  rt.load<PrimeWorker>();
  rt.load<PrimeDriver>();
  rt.load<RingMember>();

  // Program 1.
  const hal::MailAddress primes = rt.spawn<PrimeDriver>(0);
  rt.inject<&PrimeDriver::on_start>(primes, std::int64_t{20000});

  // Program 2: a ring spanning the same nodes, one member each.
  std::vector<hal::MailAddress> ring;
  for (hal::NodeId n = 0; n < nodes; ++n) {
    ring.push_back(rt.spawn<RingMember>(n));
  }
  for (std::size_t i = 0; i < ring.size(); ++i) {
    rt.inject<&RingMember::on_wire>(ring[i], ring[(i + 1) % ring.size()],
                                    i == 0);
  }
  rt.inject<&RingMember::on_token>(ring[1 % ring.size()], std::int64_t{5});

  rt.run();

  std::printf("front-end console (ordered by virtual time):\n");
  for (const auto& line : rt.console()) {
    std::printf("  [%8.1f us, node %u] %s\n",
                static_cast<double>(line.time) / 1000.0, line.node,
                line.text.c_str());
  }
  std::printf("\nBoth programs shared the same kernels; the interleaving\n"
              "above is the machine filling idle cycles across programs.\n");
  return 0;
}
