# Empty compiler generated dependencies file for cholesky_example.
# This may be replaced when dependencies are built.
