file(REMOVE_RECURSE
  "CMakeFiles/cholesky_example.dir/cholesky.cpp.o"
  "CMakeFiles/cholesky_example.dir/cholesky.cpp.o.d"
  "cholesky_example"
  "cholesky_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
