# Empty dependencies file for hal_script.
# This may be replaced when dependencies are built.
