file(REMOVE_RECURSE
  "CMakeFiles/hal_script.dir/hal_script.cpp.o"
  "CMakeFiles/hal_script.dir/hal_script.cpp.o.d"
  "hal_script"
  "hal_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
