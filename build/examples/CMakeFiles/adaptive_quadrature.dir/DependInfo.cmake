
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/adaptive_quadrature.cpp" "examples/CMakeFiles/adaptive_quadrature.dir/adaptive_quadrature.cpp.o" "gcc" "examples/CMakeFiles/adaptive_quadrature.dir/adaptive_quadrature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/hal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hal_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hal_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/hal_am.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hal_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
