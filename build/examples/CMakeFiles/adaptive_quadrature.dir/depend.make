# Empty dependencies file for adaptive_quadrature.
# This may be replaced when dependencies are built.
