file(REMOVE_RECURSE
  "libhal_runtime.a"
)
