file(REMOVE_RECURSE
  "CMakeFiles/hal_runtime.dir/kernel.cpp.o"
  "CMakeFiles/hal_runtime.dir/kernel.cpp.o.d"
  "CMakeFiles/hal_runtime.dir/node_manager.cpp.o"
  "CMakeFiles/hal_runtime.dir/node_manager.cpp.o.d"
  "CMakeFiles/hal_runtime.dir/runtime.cpp.o"
  "CMakeFiles/hal_runtime.dir/runtime.cpp.o.d"
  "libhal_runtime.a"
  "libhal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
