# Empty dependencies file for hal_runtime.
# This may be replaced when dependencies are built.
