file(REMOVE_RECURSE
  "CMakeFiles/hal_lang.dir/interp.cpp.o"
  "CMakeFiles/hal_lang.dir/interp.cpp.o.d"
  "CMakeFiles/hal_lang.dir/lexer.cpp.o"
  "CMakeFiles/hal_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/hal_lang.dir/parser.cpp.o"
  "CMakeFiles/hal_lang.dir/parser.cpp.o.d"
  "CMakeFiles/hal_lang.dir/program.cpp.o"
  "CMakeFiles/hal_lang.dir/program.cpp.o.d"
  "CMakeFiles/hal_lang.dir/value.cpp.o"
  "CMakeFiles/hal_lang.dir/value.cpp.o.d"
  "libhal_lang.a"
  "libhal_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
