# Empty compiler generated dependencies file for hal_lang.
# This may be replaced when dependencies are built.
