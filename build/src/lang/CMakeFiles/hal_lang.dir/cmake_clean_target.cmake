file(REMOVE_RECURSE
  "libhal_lang.a"
)
