file(REMOVE_RECURSE
  "CMakeFiles/hal_common.dir/logging.cpp.o"
  "CMakeFiles/hal_common.dir/logging.cpp.o.d"
  "CMakeFiles/hal_common.dir/stats.cpp.o"
  "CMakeFiles/hal_common.dir/stats.cpp.o.d"
  "libhal_common.a"
  "libhal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
