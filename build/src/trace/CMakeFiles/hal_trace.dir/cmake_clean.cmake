file(REMOVE_RECURSE
  "CMakeFiles/hal_trace.dir/trace.cpp.o"
  "CMakeFiles/hal_trace.dir/trace.cpp.o.d"
  "libhal_trace.a"
  "libhal_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
