# Empty dependencies file for hal_trace.
# This may be replaced when dependencies are built.
