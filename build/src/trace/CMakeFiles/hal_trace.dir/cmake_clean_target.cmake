file(REMOVE_RECURSE
  "libhal_trace.a"
)
