file(REMOVE_RECURSE
  "libhal_baseline.a"
)
