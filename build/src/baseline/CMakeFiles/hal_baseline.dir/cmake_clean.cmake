file(REMOVE_RECURSE
  "CMakeFiles/hal_baseline.dir/seq_kernels.cpp.o"
  "CMakeFiles/hal_baseline.dir/seq_kernels.cpp.o.d"
  "CMakeFiles/hal_baseline.dir/worksteal.cpp.o"
  "CMakeFiles/hal_baseline.dir/worksteal.cpp.o.d"
  "libhal_baseline.a"
  "libhal_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
