# Empty dependencies file for hal_baseline.
# This may be replaced when dependencies are built.
