# Empty compiler generated dependencies file for hal_am.
# This may be replaced when dependencies are built.
