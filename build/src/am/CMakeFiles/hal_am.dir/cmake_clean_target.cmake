file(REMOVE_RECURSE
  "libhal_am.a"
)
