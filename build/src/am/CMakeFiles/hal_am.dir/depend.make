# Empty dependencies file for hal_am.
# This may be replaced when dependencies are built.
