file(REMOVE_RECURSE
  "CMakeFiles/hal_am.dir/bulk.cpp.o"
  "CMakeFiles/hal_am.dir/bulk.cpp.o.d"
  "CMakeFiles/hal_am.dir/sim_machine.cpp.o"
  "CMakeFiles/hal_am.dir/sim_machine.cpp.o.d"
  "CMakeFiles/hal_am.dir/thread_machine.cpp.o"
  "CMakeFiles/hal_am.dir/thread_machine.cpp.o.d"
  "libhal_am.a"
  "libhal_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
