
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/am/bulk.cpp" "src/am/CMakeFiles/hal_am.dir/bulk.cpp.o" "gcc" "src/am/CMakeFiles/hal_am.dir/bulk.cpp.o.d"
  "/root/repo/src/am/sim_machine.cpp" "src/am/CMakeFiles/hal_am.dir/sim_machine.cpp.o" "gcc" "src/am/CMakeFiles/hal_am.dir/sim_machine.cpp.o.d"
  "/root/repo/src/am/thread_machine.cpp" "src/am/CMakeFiles/hal_am.dir/thread_machine.cpp.o" "gcc" "src/am/CMakeFiles/hal_am.dir/thread_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
