file(REMOVE_RECURSE
  "CMakeFiles/hal_apps.dir/cholesky.cpp.o"
  "CMakeFiles/hal_apps.dir/cholesky.cpp.o.d"
  "CMakeFiles/hal_apps.dir/fib.cpp.o"
  "CMakeFiles/hal_apps.dir/fib.cpp.o.d"
  "CMakeFiles/hal_apps.dir/matmul.cpp.o"
  "CMakeFiles/hal_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/hal_apps.dir/pagerank.cpp.o"
  "CMakeFiles/hal_apps.dir/pagerank.cpp.o.d"
  "libhal_apps.a"
  "libhal_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
