
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cholesky.cpp" "src/apps/CMakeFiles/hal_apps.dir/cholesky.cpp.o" "gcc" "src/apps/CMakeFiles/hal_apps.dir/cholesky.cpp.o.d"
  "/root/repo/src/apps/fib.cpp" "src/apps/CMakeFiles/hal_apps.dir/fib.cpp.o" "gcc" "src/apps/CMakeFiles/hal_apps.dir/fib.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/hal_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/hal_apps.dir/matmul.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/apps/CMakeFiles/hal_apps.dir/pagerank.cpp.o" "gcc" "src/apps/CMakeFiles/hal_apps.dir/pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/hal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hal_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/hal_am.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hal_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
