file(REMOVE_RECURSE
  "libhal_apps.a"
)
