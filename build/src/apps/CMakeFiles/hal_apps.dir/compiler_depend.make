# Empty compiler generated dependencies file for hal_apps.
# This may be replaced when dependencies are built.
