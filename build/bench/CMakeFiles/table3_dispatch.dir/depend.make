# Empty dependencies file for table3_dispatch.
# This may be replaced when dependencies are built.
