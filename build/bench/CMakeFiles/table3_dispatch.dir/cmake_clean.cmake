file(REMOVE_RECURSE
  "CMakeFiles/table3_dispatch.dir/table3_dispatch.cpp.o"
  "CMakeFiles/table3_dispatch.dir/table3_dispatch.cpp.o.d"
  "table3_dispatch"
  "table3_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
