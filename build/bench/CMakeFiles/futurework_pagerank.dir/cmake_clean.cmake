file(REMOVE_RECURSE
  "CMakeFiles/futurework_pagerank.dir/futurework_pagerank.cpp.o"
  "CMakeFiles/futurework_pagerank.dir/futurework_pagerank.cpp.o.d"
  "futurework_pagerank"
  "futurework_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
