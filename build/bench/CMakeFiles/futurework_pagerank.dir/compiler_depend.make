# Empty compiler generated dependencies file for futurework_pagerank.
# This may be replaced when dependencies are built.
