# Empty compiler generated dependencies file for table5_matmul.
# This may be replaced when dependencies are built.
