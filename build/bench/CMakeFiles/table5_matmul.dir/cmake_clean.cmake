file(REMOVE_RECURSE
  "CMakeFiles/table5_matmul.dir/table5_matmul.cpp.o"
  "CMakeFiles/table5_matmul.dir/table5_matmul.cpp.o.d"
  "table5_matmul"
  "table5_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
