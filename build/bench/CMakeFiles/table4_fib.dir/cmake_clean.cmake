file(REMOVE_RECURSE
  "CMakeFiles/table4_fib.dir/table4_fib.cpp.o"
  "CMakeFiles/table4_fib.dir/table4_fib.cpp.o.d"
  "table4_fib"
  "table4_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
