# Empty compiler generated dependencies file for table4_fib.
# This may be replaced when dependencies are built.
