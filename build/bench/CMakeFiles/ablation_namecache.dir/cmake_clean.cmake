file(REMOVE_RECURSE
  "CMakeFiles/ablation_namecache.dir/ablation_namecache.cpp.o"
  "CMakeFiles/ablation_namecache.dir/ablation_namecache.cpp.o.d"
  "ablation_namecache"
  "ablation_namecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_namecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
