# Empty dependencies file for ablation_namecache.
# This may be replaced when dependencies are built.
