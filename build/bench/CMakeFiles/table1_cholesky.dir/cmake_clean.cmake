file(REMOVE_RECURSE
  "CMakeFiles/table1_cholesky.dir/table1_cholesky.cpp.o"
  "CMakeFiles/table1_cholesky.dir/table1_cholesky.cpp.o.d"
  "table1_cholesky"
  "table1_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
