# Empty dependencies file for table1_cholesky.
# This may be replaced when dependencies are built.
