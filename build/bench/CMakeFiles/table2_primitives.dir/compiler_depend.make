# Empty compiler generated dependencies file for table2_primitives.
# This may be replaced when dependencies are built.
