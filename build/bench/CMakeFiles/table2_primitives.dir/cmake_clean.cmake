file(REMOVE_RECURSE
  "CMakeFiles/table2_primitives.dir/table2_primitives.cpp.o"
  "CMakeFiles/table2_primitives.dir/table2_primitives.cpp.o.d"
  "table2_primitives"
  "table2_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
