# Empty dependencies file for ablation_aliases.
# This may be replaced when dependencies are built.
