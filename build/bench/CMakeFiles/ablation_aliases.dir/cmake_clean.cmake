file(REMOVE_RECURSE
  "CMakeFiles/ablation_aliases.dir/ablation_aliases.cpp.o"
  "CMakeFiles/ablation_aliases.dir/ablation_aliases.cpp.o.d"
  "ablation_aliases"
  "ablation_aliases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aliases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
