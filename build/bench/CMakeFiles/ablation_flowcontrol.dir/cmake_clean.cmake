file(REMOVE_RECURSE
  "CMakeFiles/ablation_flowcontrol.dir/ablation_flowcontrol.cpp.o"
  "CMakeFiles/ablation_flowcontrol.dir/ablation_flowcontrol.cpp.o.d"
  "ablation_flowcontrol"
  "ablation_flowcontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flowcontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
