# Empty compiler generated dependencies file for test_frontend_placement.
# This may be replaced when dependencies are built.
