file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_placement.dir/test_frontend_placement.cpp.o"
  "CMakeFiles/test_frontend_placement.dir/test_frontend_placement.cpp.o.d"
  "test_frontend_placement"
  "test_frontend_placement.pdb"
  "test_frontend_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
