# Empty compiler generated dependencies file for test_loadbalance.
# This may be replaced when dependencies are built.
