# Empty dependencies file for test_runtime_core.
# This may be replaced when dependencies are built.
