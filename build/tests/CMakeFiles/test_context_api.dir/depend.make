# Empty dependencies file for test_context_api.
# This may be replaced when dependencies are built.
