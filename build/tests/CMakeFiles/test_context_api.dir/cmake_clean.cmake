file(REMOVE_RECURSE
  "CMakeFiles/test_context_api.dir/test_context_api.cpp.o"
  "CMakeFiles/test_context_api.dir/test_context_api.cpp.o.d"
  "test_context_api"
  "test_context_api.pdb"
  "test_context_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
