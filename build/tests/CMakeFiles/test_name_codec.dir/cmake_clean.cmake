file(REMOVE_RECURSE
  "CMakeFiles/test_name_codec.dir/test_name_codec.cpp.o"
  "CMakeFiles/test_name_codec.dir/test_name_codec.cpp.o.d"
  "test_name_codec"
  "test_name_codec.pdb"
  "test_name_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
