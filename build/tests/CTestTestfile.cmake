# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_am[1]_include.cmake")
include("/root/repo/build/tests/test_name_codec[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_core[1]_include.cmake")
include("/root/repo/build/tests/test_migration[1]_include.cmake")
include("/root/repo/build/tests/test_groups[1]_include.cmake")
include("/root/repo/build/tests/test_loadbalance[1]_include.cmake")
include("/root/repo/build/tests/test_compiled[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_frontend_placement[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_misc_units[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_context_api[1]_include.cmake")
