// Minimal leveled logging.
//
// Off by default (level Error); tests and debugging sessions raise the level
// via set_log_level or the HAL_LOG environment variable. Log lines carry the
// emitting node id so interleaved protocol traces stay readable.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace hal {

enum class LogLevel : std::uint8_t { kError = 0, kWarn, kInfo, kTrace };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Reads HAL_LOG (error|warn|info|trace) once; called lazily on first log.
void init_log_level_from_env();

namespace detail {
void log_line(LogLevel level, NodeId node, std::string_view msg);
}

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<std::uint8_t>(level) <=
         static_cast<std::uint8_t>(log_level());
}

}  // namespace hal

// Logging macros take a pre-formatted message to keep the hot path free of
// formatting when the level is disabled.
#define HAL_LOG(level, node, msg)                        \
  do {                                                   \
    if (::hal::log_enabled(level)) [[unlikely]] {        \
      ::hal::detail::log_line((level), (node), (msg));   \
    }                                                    \
  } while (false)

#define HAL_TRACE(node, msg) HAL_LOG(::hal::LogLevel::kTrace, (node), (msg))
#define HAL_INFO(node, msg) HAL_LOG(::hal::LogLevel::kInfo, (node), (msg))
#define HAL_WARN(node, msg) HAL_LOG(::hal::LogLevel::kWarn, (node), (msg))
