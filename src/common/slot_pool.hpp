// Generation-checked slab allocator.
//
// The paper encodes raw memory addresses of locality descriptors inside mail
// addresses so that a cached address dereferences in O(1) with no hash lookup
// (§4.1). We reproduce the same O(1)-no-hash property with slot indices into
// a per-node pool; the generation counter turns use-after-free of a recycled
// slot into a detectable error instead of silent corruption.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace hal {

/// A pool handle: slot index + generation. 0-initialized SlotId is invalid.
struct SlotId {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;

  constexpr bool valid() const noexcept { return gen != 0; }
  friend constexpr bool operator==(SlotId, SlotId) noexcept = default;

  /// Pack into a single word for transmission inside messages.
  constexpr std::uint64_t pack() const noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) | index;
  }
  static constexpr SlotId unpack(std::uint64_t w) noexcept {
    return SlotId{static_cast<std::uint32_t>(w & 0xffffffffULL),
                  static_cast<std::uint32_t>(w >> 32)};
  }
};

/// Slab of T with stable indices, O(1) allocate/free via a free list, and
/// generation checking. Not thread-safe: each node owns its own pools
/// (single-writer discipline, see DESIGN.md §5).
template <typename T>
class SlotPool {
 public:
  SlotPool() = default;

  template <typename... Args>
  SlotId allocate(Args&&... args) {
    std::uint32_t index;
    if (free_head_ != kNoFree) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[index];
    HAL_DASSERT(!s.live);
    // Generation 0 is reserved for "invalid"; skip it on wrap-around.
    if (++s.gen == 0) ++s.gen;
    s.live = true;
    s.value = T(std::forward<Args>(args)...);
    ++live_count_;
    return SlotId{index, s.gen};
  }

  void free(SlotId id) {
    Slot& s = slot_checked(id);
    s.live = false;
    s.value = T();
    s.next_free = free_head_;
    free_head_ = id.index;
    HAL_DASSERT(live_count_ > 0);
    --live_count_;
  }

  T& get(SlotId id) { return slot_checked(id).value; }
  const T& get(SlotId id) const { return slot_checked(id).value; }

  /// Null if the id is stale (freed and possibly recycled) or invalid.
  T* try_get(SlotId id) noexcept {
    if (!id.valid() || id.index >= slots_.size()) return nullptr;
    Slot& s = slots_[id.index];
    if (!s.live || s.gen != id.gen) return nullptr;
    return &s.value;
  }
  const T* try_get(SlotId id) const noexcept {
    return const_cast<SlotPool*>(this)->try_get(id);
  }

  bool contains(SlotId id) const noexcept { return try_get(id) != nullptr; }
  std::size_t size() const noexcept { return live_count_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Visit every live slot; `fn(SlotId, T&)`.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) fn(SlotId{i, slots_[i].gen}, slots_[i].value);
    }
  }

 private:
  static constexpr std::uint32_t kNoFree = 0xffffffffU;

  struct Slot {
    T value{};
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoFree;
    bool live = false;
  };

  Slot& slot_checked(SlotId id) {
    HAL_ASSERT(id.valid() && id.index < slots_.size());
    Slot& s = slots_[id.index];
    HAL_ASSERT(s.live && s.gen == id.gen);
    return s;
  }
  const Slot& slot_checked(SlotId id) const {
    return const_cast<SlotPool*>(this)->slot_checked(id);
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_count_ = 0;
};

}  // namespace hal
