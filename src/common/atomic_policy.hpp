// Atomics policy: the seam between the lock-free protocol cores and the
// synchronization primitives they run on.
//
// Every hand-rolled protocol in the tree (Vyukov MPSC mailbox, Chase-Lev
// steal deque, termination epochs, MnMachine run tokens, the park/wake
// handshake) is templated on a policy type supplying its atomic cells:
//
//   * `StdAtomics` (this header, the default everywhere) maps straight to
//     `std::atomic<T>`. Production instantiations are identical to the
//     pre-policy code — same types, same orders, same layout (the alias
//     adds no members and no virtual anything), so the msgpath budget and
//     byte-identical sim reports are untouched.
//   * `hal::mc::ModelAtomics` (tools/hal-mc/mc/atomic.hpp) substitutes an
//     instrumented atomic whose every load, store, and RMW is a visible
//     operation of the hal-mc bounded model checker: interleavings are
//     enumerated, release/acquire visibility is tracked per thread, and
//     the memory order of each access can be mutated to prove the order
//     the code requests is load-bearing (docs/model-checking.md).
//
// The policy carries exactly one member so the protocol templates stay
// readable: `Policy::template Atomic<T>`. Model-only concerns (data-race
// detection on the payloads, modeled mutex/condvar for the park loops)
// live in hal-mc's scenario layer, not here — the production header must
// not know the checker exists beyond this seam.
#pragma once

#include <atomic>

namespace hal {

/// Production policy: plain `std::atomic`. The default template argument of
/// every protocol core, so existing call sites (`MpscQueue<Packet>`,
/// `WsDeque<Task>`, `TerminationDetector`) compile unchanged.
struct StdAtomics {
  template <typename T>
  using Atomic = std::atomic<T>;
};

}  // namespace hal
