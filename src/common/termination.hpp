// Event-driven termination (quiescence) detection for multithreaded
// executors.
//
// The ThreadMachine needs to answer "is the whole machine done?" without a
// central coordinator and without polling. A machine is quiescent when
//   (a) every participant (node loop) is idle,
//   (b) every unit of work that was ever published has been consumed, and
//   (c) no external work tokens are outstanding (see Machine work tokens).
// The detector tracks (a) with a sharded active counter and (b) with a pair
// of monotone epoch counters, and confirms a candidate snapshot with a
// double scan. All operations use sequentially consistent atomics: they run
// only on idle transitions and once per published/consumed unit, where an
// extra fence is noise, and seq_cst gives the single total order S the
// correctness argument below leans on.
//
// Usage contract (enforced by convention, asserted where possible):
//   * note_sent() is called BEFORE the unit becomes visible to its consumer
//     (e.g. before the queue push), and only by an active participant or by
//     the bootstrap thread before the participants start.
//   * note_handled() is called AFTER the unit is fully processed.
//   * A participant calls deactivate() only when it has no local work and
//     its inbox looked empty; it calls activate() before consuming anything
//     after a wakeup. A participant may only wake up because a unit was
//     published to it (or shutdown was requested) — never spontaneously.
//   * The `extra` quantity probed by check() (work tokens) is mutated only
//     by active participants.
//
// Correctness of check() — why a passing double scan proves termination:
//
//   Invariants: handled <= sent at every instant (each handle is preceded by
//   its send); both counters are monotone; sends/handles/token changes only
//   happen between an activate()/deactivate() pair.
//
//   Let the reads of check() be, in order: h1 = handled, s1 = sent, scan A
//   of all shards, e = extra(), scan B of all shards, s2 = sent,
//   h2 = handled. Suppose h1 == s1 == s2 == h2, both scans read every shard
//   zero, and e == 0.
//
//   1. At the instant t1 of the s1 read: handled(t1) >= h1 (monotone, h1 was
//      read earlier) and handled(t1) <= sent(t1) = s1 = h1, so
//      handled(t1) = sent(t1) — *no unit is in flight at t1*. In particular
//      no handler is mid-execution (its unit would be sent-but-not-handled).
//   2. s2 == s1 at the later instant t2 means no note_sent() happened in
//      [t1, t2]; h2 == h1 means no note_handled() happened either. So no
//      unit exists, is published, or is consumed anywhere in the window.
//   3. A participant can only activate in [t1, t2] if a unit was published
//      to it — impossible by (2) — or if shutdown was requested, which ends
//      the race anyway. So the active-set can only shrink in the window.
//   4. Scans A and B and the shard decrements are all in the seq_cst order
//      S. Consider the S-latest deactivate() of the run. The participant
//      that performs it runs check() afterwards; its scan reads follow every
//      other final deactivate in S and therefore observe zero. Hence when
//      genuine quiescence is reached, *at least one* checker's double scan
//      passes: detection is guaranteed without timeouts (liveness).
//   5. Conversely a passing scan pair brackets the counter window: any
//      participant active anywhere in [t1, t2] either sent or handled a unit
//      (caught by s2/h2) or was active at a scan instant (caught by a
//      nonzero shard). So at t2 every participant is idle, nothing is in
//      flight, and by (3) nothing can ever wake again (safety).
//   6. Tokens (`extra`) are mutated only by active participants, so within
//      the confirmed-stable window the value read at e is frozen: e == 0
//      proves (c); e != 0 with an otherwise stable snapshot proves the
//      machine can never release them — a protocol deadlock (kStalled).
#pragma once

#include <atomic>
#include <cstdint>

#include "check/affinity.hpp"
#include "check/check.hpp"
#include "common/assert.hpp"
#include "common/atomic_policy.hpp"
#include "common/lint_markers.hpp"

namespace hal {

/// `Policy` supplies the atomic cells (common/atomic_policy.hpp): the
/// production alias `TerminationDetector` below pins `StdAtomics`; hal-mc
/// instantiates the same double-scan code with instrumented model atomics
/// so the seq_cst total order the proof leans on is actually explored.
template <typename Policy = StdAtomics>
class BasicTerminationDetector {
  // Binds this class to hal-lint HL007's `termination_epochs` policy: the
  // epoch bumps and shard scans stay seq_cst (the total order S above);
  // only the constructor's pre-publication init may relax.
  HAL_MEMORY_PROTOCOL("termination_epochs");

 public:
  enum class Verdict {
    kBusy,       ///< not quiescent (yet) — go to sleep, someone will wake you
    kQuiescent,  ///< provably terminated: no participant can ever wake again
    kStalled,    ///< stable but external tokens outstanding: protocol deadlock
  };

  /// All `participants` start active (they are about to start running).
  explicit BasicTerminationDetector(std::uint32_t participants) {
    for (std::uint32_t i = 0; i < participants; ++i) {
      shards_[shard_of(i)].active.fetch_add(1, std::memory_order_relaxed);
    }
  }

  BasicTerminationDetector(const BasicTerminationDetector&) = delete;
  BasicTerminationDetector& operator=(const BasicTerminationDetector&) = delete;

  /// Participant `who` re-enters the active set. Must be called after a
  /// wakeup BEFORE consuming the unit that caused it.
  void activate(std::uint32_t who) noexcept {
    shards_[shard_of(who)].active.fetch_add(1);
  }

  /// Participant `who` leaves the active set: inbox drained, no local work,
  /// all its sends already published.
  void deactivate(std::uint32_t who) noexcept {
    [[maybe_unused]] const std::int64_t prev =
        shards_[shard_of(who)].active.fetch_sub(1);
    HAL_ASSERT(prev >= 1);
  }

  /// A unit of work is about to be published (call BEFORE the queue push).
  void note_sent() noexcept { sent_.fetch_add(1); }

  /// A unit of work has been fully consumed (call AFTER the handler ran).
  void note_handled() noexcept {
    [[maybe_unused]] const std::uint64_t h = handled_.fetch_add(1) + 1;
#if HAL_CHECK
    // Conservation: every handle is preceded by its send (the invariant the
    // double-scan proof leans on). sent_ read after the increment can only
    // have grown past this unit's own send, so h > sent is a contract
    // breach, not a benign race.
    const std::uint64_t s = sent_.load();
    if (h > s) {
      check::fail(check::Violation{check::ViolationKind::kCounterConservation,
                                   "TerminationDetector", kInvalidNode,
                                   check::current_node(), h, s});
    }
#endif
  }

  std::uint64_t sent() const noexcept { return sent_.load(); }
  std::uint64_t handled() const noexcept { return handled_.load(); }

  bool all_idle() const noexcept {
    for (const Shard& s : shards_) {
      if (s.active.load() != 0) return false;
    }
    return true;
  }

  /// Double-scan quiescence check (proof in the header comment). `extra`
  /// is a callable returning the outstanding external token count; it is
  /// probed inside the stability window so its value is trustworthy.
  /// Typically called by a participant right after deactivate().
  template <typename ExtraFn>
  Verdict check(ExtraFn&& extra) const {
    const std::uint64_t h1 = handled_.load();
    const std::uint64_t s1 = sent_.load();
    if (h1 != s1) return Verdict::kBusy;
    if (!all_idle()) return Verdict::kBusy;
    const std::uint64_t e = extra();
    if (!all_idle()) return Verdict::kBusy;
    if (sent_.load() != s1 || handled_.load() != h1) return Verdict::kBusy;
    return e == 0 ? Verdict::kQuiescent : Verdict::kStalled;
  }

 private:
  // Idle transitions from different nodes land on different cache lines;
  // 16 shards keep the scan trivially cheap while giving 16-way spread.
  static constexpr std::uint32_t kShards = 16;
  static constexpr std::uint32_t kShardMask = kShards - 1;
  static_assert((kShards & kShardMask) == 0, "shard count must be 2^k");

  static constexpr std::uint32_t shard_of(std::uint32_t who) noexcept {
    return who & kShardMask;
  }

  template <typename T>
  using Atomic = typename Policy::template Atomic<T>;

  struct alignas(64) Shard {
    Atomic<std::int64_t> active{0};
  };

  Shard shards_[kShards];
  alignas(64) Atomic<std::uint64_t> sent_{0};
  alignas(64) Atomic<std::uint64_t> handled_{0};
};

/// Production instantiation: plain `std::atomic` cells. Every executor and
/// test names this alias; the template above exists for hal-mc.
using TerminationDetector = BasicTerminationDetector<StdAtomics>;

}  // namespace hal
