// Unbounded multi-producer single-consumer queue (Vyukov's algorithm).
//
// This is the only cross-thread data structure in the ThreadMachine: each
// node's network endpoint is an MpscQueue<Packet> that remote nodes push
// into and only the owning node pops from — matching the paper's model where
// the network interface delivers into a node and the node manager drains it.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <utility>

namespace hal {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node{};
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    while (pop().has_value()) {
    }
    delete tail_;
  }

  /// Push from any thread. Wait-free except for the allocation.
  void push(T value) {
    Node* node = new Node{std::move(value)};
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Pop from the single consumer thread only.
  std::optional<T> pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> out(std::move(next->value));
    tail_ = next;
    delete tail;
    return out;
  }

  /// Approximate emptiness check (exact from the consumer's perspective when
  /// it returns false; may race with concurrent pushes when true).
  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  alignas(64) std::atomic<Node*> head_;  // producers CAS here
  alignas(64) Node* tail_;               // consumer-private
};

}  // namespace hal
