// Unbounded multi-producer single-consumer queue (Vyukov's algorithm).
//
// This is the only cross-thread data structure in the ThreadMachine: each
// node's network endpoint is an MpscQueue<Packet> that remote nodes push
// into and only the owning node pops from — matching the paper's model where
// the network interface delivers into a node and the node manager drains it.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/atomic_policy.hpp"
#include "common/lint_markers.hpp"

namespace hal {

/// `Policy` supplies the atomic cells (common/atomic_policy.hpp): the
/// default `StdAtomics` is production `std::atomic`; hal-mc instantiates
/// the same code with instrumented model atomics to explore interleavings.
template <typename T, typename Policy = StdAtomics>
class MpscQueue {
  // Memory-order contract checked by hal-lint HL007 (docs/linting.md):
  // push = head_.exchange(acq_rel) + next.store(release); pop/empty =
  // next.load(acquire); size_ is an advisory relaxed counter.
  HAL_MEMORY_PROTOCOL("mpsc_queue");

  // pop() moves out of next->value before advancing tail_; if that move
  // could throw, the element would be lost while still linked and the queue
  // state would be ambiguous to the caller. Packet (vector + scalars) is
  // nothrow-move-constructible, as any payload type here must be.
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "MpscQueue requires a nothrow-move-constructible T");

 public:
  MpscQueue() {
    Node* stub = new Node{};
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Destruction is a consumer-side operation: no producer may push
  // concurrently (the ThreadMachine joins every node thread before its
  // NodeRecs die). Drains remaining elements, then frees the stub.
  ~MpscQueue() {
    while (pop().has_value()) {
    }
    delete tail_;
  }

  /// Push from any thread. Wait-free except for the allocation.
  void push(T value) {
    Node* node = new Node{std::move(value)};
    size_.fetch_add(1, std::memory_order_relaxed);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Pop from the single consumer thread only.
  std::optional<T> pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> out(std::move(next->value));
    tail_ = next;
    delete tail;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return out;
  }

  /// Approximate emptiness check: exact from the consumer's perspective when
  /// it returns false. When it returns true the queue may in fact hold
  /// elements — not just from the obvious race with an in-flight push, but
  /// because a COMPLETED push can be transiently unreachable behind another
  /// producer's half-finished one (head_ already swung, prev->next not yet
  /// stored). A consumer that parks on "empty" must therefore re-arm its
  /// wakeup flag before every check, so the producer that closes the gap
  /// re-notifies — see the park loops in ThreadMachine and MnMachine.
  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

  /// Approximate element count: racy snapshot for stress tests and stats.
  /// Exact once producers and the consumer are quiescent; may transiently
  /// overshoot while a push is mid-flight (counted before linked).
  std::size_t approx_size() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;

  struct Node {
    T value{};
    Atomic<Node*> next{nullptr};
  };

  alignas(64) Atomic<Node*> head_;  // producers CAS here
  alignas(64) Node* tail_;          // consumer-private
  alignas(64) Atomic<std::size_t> size_{0};
};

}  // namespace hal
