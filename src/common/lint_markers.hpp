// Protocol markers for hal-lint's whole-program concurrency checks.
//
// The runtime's lock-free protocols are correct for reasons that live in
// proof comments (ThreadMachine::raw_push, MpscQueue::empty,
// termination.hpp); these markers bind the code to those arguments so
// hal-lint can enforce the load-bearing parts mechanically:
//
//   HAL_MEMORY_PROTOCOL("name")   class-body marker tying the class to the
//                                 memory-order policy table of the same name
//                                 in hal-lint (HL007, docs/linting.md). The
//                                 marker and the table entry must agree in
//                                 both directions — deleting either is a
//                                 lint error, so the policy cannot silently
//                                 rot away from the code.
//   HAL_PARK_FLAG                 member attribute on a park/sleep flag that
//                                 takes part in the seq_cst RMW wakeup
//                                 handshake. Every wait loop touching such a
//                                 flag must re-arm it with a seq_cst
//                                 exchange before each predicate evaluation
//                                 (HL006 — the PR 8 lost-wakeup shape).
//   HAL_EPOCH_COUNTED             member attribute on a queue whose traffic
//                                 is counted by the termination detector:
//                                 every push must be preceded by note_sent
//                                 and every pop balanced by note_handled or
//                                 a hand-off (HL009).
//
// All three expand to nothing the compiler cares about; they exist for the
// token-level extractor in tools/hal-lint/lint/model.cpp.
#pragma once

#define HAL_MEMORY_PROTOCOL(name) \
  static_assert(true, "hal-lint memory protocol: " name)

#define HAL_PARK_FLAG

#define HAL_EPOCH_COUNTED
