#include "common/stats.hpp"

#include <string>

namespace hal {

std::string format_stats(const StatBlock& block, bool skip_zero) {
  std::string out;
  for (std::size_t i = 0; i < kStatNames.size(); ++i) {
    const auto v = block.get(static_cast<Stat>(i));
    if (skip_zero && v == 0) continue;
    out += kStatNames[i];
    out += '=';
    out += std::to_string(v);
    out += '\n';
  }
  return out;
}

}  // namespace hal
