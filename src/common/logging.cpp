#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace hal {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kError};
std::once_flag g_env_once;
std::mutex g_io_mutex;

constexpr const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void init_log_level_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("HAL_LOG");
    if (env == nullptr) return;
    if (std::strcmp(env, "trace") == 0) set_log_level(LogLevel::kTrace);
    else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
    else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
    else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  });
}

namespace detail {

void log_line(LogLevel level, NodeId node, std::string_view msg) {
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[hal %-5s n%02u] %.*s\n", level_name(level), node,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail
}  // namespace hal
