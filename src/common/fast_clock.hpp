// Cheap nanosecond clock for the wall-clock machines.
//
// ThreadMachine and MnMachine stamp every packet and bracket every method
// execution with a clock read; through the vDSO, steady_clock::now() costs
// ~25-30 ns — a third of the whole per-message delivery path once batching
// has amortized the queue and wake costs. On x86-64 with an invariant TSC
// (constant_tsc + nonstop_tsc, universal on anything this decade), a
// calibrated rdtsc gives the same nanoseconds-since-epoch reading in ~7 ns.
//
// The cycles-per-nanosecond ratio is calibrated once per process against
// steady_clock (a ~2 ms busy window, amortized across every machine the
// process creates). Each FastClock instance then anchors its own epoch, so
// now_ns() is nanoseconds since construction — the same contract as the
// steady_clock arithmetic it replaces. The ratio's calibration error
// (<0.1%) only skews how a long run's readings compare to an *external*
// clock; every consumer (holdoff deadlines, retransmit timers, probe spans)
// compares readings from the same instance, which stay self-consistent.
//
// Non-x86 targets (and builds without __x86_64__) fall back to steady_clock
// transparently — same interface, the historical cost.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace hal {

class FastClock {
 public:
#if defined(__x86_64__)
  FastClock() : ns_per_cycle_(calibration()), base_(__rdtsc()) {}

  /// Nanoseconds since this instance was constructed.
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        static_cast<double>(__rdtsc() - base_) * ns_per_cycle_);
  }

 private:
  /// Process-wide cycles->ns ratio, measured once against steady_clock.
  static double calibration() {
    static const double ratio = [] {
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t c0 = __rdtsc();
      while (std::chrono::steady_clock::now() - t0 <
             std::chrono::milliseconds(2)) {
      }
      const std::uint64_t c1 = __rdtsc();
      const auto t1 = std::chrono::steady_clock::now();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t1 - t0)
                          .count();
      return static_cast<double>(ns) / static_cast<double>(c1 - c0);
    }();
    return ratio;
  }

  double ns_per_cycle_;
  std::uint64_t base_;
#else
  FastClock() : epoch_(std::chrono::steady_clock::now()) {}

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
#endif
};

}  // namespace hal
