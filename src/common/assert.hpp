// Assertion and panic machinery.
//
// HAL_ASSERT is active in every build type: the runtime implements
// distributed protocols (FIR resolution, migration hand-off, flow-control
// grants) whose invariant violations must fail fast rather than corrupt a
// simulation silently. HAL_DASSERT compiles out in NDEBUG builds and is for
// hot-path checks (per-message, per-packet).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hal {

[[noreturn]] inline void panic(const char* file, int line, const char* what) {
  std::fprintf(stderr, "hal: panic at %s:%d: %s\n", file, line, what);
  std::abort();
}

}  // namespace hal

#define HAL_ASSERT(cond)                                     \
  do {                                                       \
    if (!(cond)) [[unlikely]] {                              \
      ::hal::panic(__FILE__, __LINE__, "assertion failed: " #cond); \
    }                                                        \
  } while (false)

#define HAL_PANIC(msg) ::hal::panic(__FILE__, __LINE__, (msg))

#ifdef NDEBUG
#define HAL_DASSERT(cond) \
  do {                    \
  } while (false)
#else
#define HAL_DASSERT(cond) HAL_ASSERT(cond)
#endif
