// Fundamental identifier types shared across the runtime.
#pragma once

#include <cstdint>
#include <limits>

namespace hal {

/// Index of a processing element (the paper's CM-5 "node").
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Virtual time in the simulated machine, in nanoseconds. The paper reports
/// microseconds on a 33 MHz Sparc; nanosecond resolution keeps sub-µs costs
/// (e.g. cached locality checks) representable.
using SimTime = std::uint64_t;

/// Method selector: index into a behaviour's method table.
using Selector = std::uint32_t;

/// Identifies a behaviour (class) in the BehaviorRegistry — the runtime's
/// stand-in for the dynamically loaded executables of the paper's front-end.
using BehaviorId = std::uint32_t;

inline constexpr BehaviorId kInvalidBehavior =
    std::numeric_limits<BehaviorId>::max();

}  // namespace hal
