// Per-node event counters.
//
// The runtime keeps one StatBlock per node (single-writer, no atomics) and
// aggregates across nodes at quiescence. Benchmarks and tests use these to
// verify protocol claims (e.g. "descriptor caching eliminates receiver-side
// name-table lookups after the first send", §4.1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hal {

/// Counter identifiers; keep in sync with kStatNames.
enum class Stat : std::uint32_t {
  kMessagesSentLocal,
  kMessagesSentRemote,
  kMessagesDelivered,
  kMessagesForwarded,       // delivered to a node the receiver already left
  kMessagesParked,          // held while an FIR is outstanding
  kStaticDispatches,        // compiler fast path: direct invocation
  kGenericDispatches,       // generic buffered send path
  kPendingEnqueued,         // synchronization constraint disabled the method
  kPendingReplayed,
  kActorsCreatedLocal,
  kActorsCreatedRemote,
  kAliasesAllocated,
  kNameTableLookups,
  kNameTableHits,
  kDescriptorCacheHits,     // cached remote descriptor address used
  kFirSent,
  kFirRelayed,
  kFirResolved,
  kMigrationsOut,
  kMigrationsIn,
  kStealRequestsSent,
  kStealRequestsServed,
  kStealRequestsDenied,
  kBulkTransfers,
  kBulkFlowStalls,          // transfer waited for a flow-control grant
  kBroadcastsSent,
  kBroadcastFanout,         // MST relays performed
  kJoinContinuationsCreated,
  kRepliesJoined,
  kLinkDropsInjected,       // fault plane: packets discarded at the wire
  kLinkDuplicatesInjected,  // fault plane: packets delivered twice
  kLinkDelaysInjected,      // fault plane: packets given extra latency
  kLinkRetransmits,         // reliable link: timer-driven resends
  kLinkDupesSuppressed,     // reliable link: duplicates absorbed pre-kernel
  kLinkAcksSent,            // reliable link: cumulative acks emitted
  kWireFramesSent,          // batching: coalesced frames put on the wire
  kWireMsgsCoalesced,       // batching: messages that traveled inside frames
  kWireFlushFill,           // batching: frames closed by fill (bytes/msgs)
  kWireFlushTimer,          // batching: frames closed by holdoff expiry
  kWireFlushIdle,           // batching: frames closed at busy->idle
  kWireFlushBarrier,        // batching: frames closed for channel FIFO
  kCount,
};

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(Stat::kCount)>
    kStatNames = {
        "messages_sent_local",   "messages_sent_remote",
        "messages_delivered",    "messages_forwarded",
        "messages_parked",       "static_dispatches",
        "generic_dispatches",    "pending_enqueued",
        "pending_replayed",      "actors_created_local",
        "actors_created_remote", "aliases_allocated",
        "name_table_lookups",    "name_table_hits",
        "descriptor_cache_hits", "fir_sent",
        "fir_relayed",           "fir_resolved",
        "migrations_out",        "migrations_in",
        "steal_requests_sent",   "steal_requests_served",
        "steal_requests_denied", "bulk_transfers",
        "bulk_flow_stalls",      "broadcasts_sent",
        "broadcast_fanout",      "join_continuations_created",
        "replies_joined",        "link_drops_injected",
        "link_duplicates_injected", "link_delays_injected",
        "link_retransmits",      "link_dupes_suppressed",
        "link_acks_sent",        "wire_frames",
        "coalesced_msgs",        "wire_flush_fill",
        "wire_flush_timer",      "wire_flush_idle",
        "wire_flush_barrier",
};

class StatBlock {
 public:
  void bump(Stat s, std::uint64_t by = 1) noexcept {
    counts_[static_cast<std::size_t>(s)] += by;
  }
  std::uint64_t get(Stat s) const noexcept {
    return counts_[static_cast<std::size_t>(s)];
  }
  void reset() noexcept { counts_ = {}; }

  /// Element-wise accumulate (used to aggregate node blocks).
  StatBlock& operator+=(const StatBlock& other) noexcept {
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    return *this;
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Stat::kCount)> counts_{};
};

/// Render a StatBlock as "name=value" lines; implemented in stats.cpp.
std::string format_stats(const StatBlock& block, bool skip_zero = true);

}  // namespace hal
