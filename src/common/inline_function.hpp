// Small-buffer type-erased callable with no heap fallback.
//
// The runtime's type-erased code slots — join-continuation bodies (§6.2),
// behaviour factories, work-stealing tasks — used to be std::function,
// whose small-object buffer (16 B in libstdc++) is too small for a typical
// continuation closure (a MailAddress plus a counter is already 32 B), so
// every request/reply round paid one heap allocation on the message path.
// InlineFunction stores the callable inline, full stop: a capture block
// that does not fit the declared capacity is a compile error, not a silent
// allocation. This is what lets the zero-allocation fast path extend to
// the reply path, and what lets hal-lint's handler-purity check treat
// "constructs an InlineFunction" as allocation-free without special cases.
//
// Deliberately minimal: move-only, no allocator, no target_type, no
// small-closure heroics — invoke, move, destroy.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hal {

/// Default capture capacity. 48 bytes holds a MailAddress (24 B) plus three
/// words — every closure the runtime itself creates, with room to spare —
/// while keeping a JoinContinuation inside one cache-line pair.
inline constexpr std::size_t kInlineFunctionCapacity = 48;

template <typename Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;  // primary template: see the R(Args...) specialization

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture block exceeds InlineFunction capacity: shrink the "
                  "captures (capture words, not objects) or raise Capacity "
                  "at the declaration site");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_move_constructible_v<Fn>,
                  "callables must be move-constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &ops_for<Fn>;
  }

  InlineFunction(InlineFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(other.storage_, storage_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(const std::byte* storage, Args&&... args);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(std::byte* src, std::byte* dst) noexcept;
    void (*destroy)(std::byte* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops ops_for{
      [](const std::byte* storage, Args&&... args) -> R {
        // The callable is invoked as non-const (matching std::function):
        // mutable lambdas and stateful functors work.
        auto* fn =
            std::launder(reinterpret_cast<Fn*>(const_cast<std::byte*>(storage)));
        return (*fn)(std::forward<Args>(args)...);
      },
      [](std::byte* src, std::byte* dst) noexcept {
        auto* fn = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*fn));
        fn->~Fn();
      },
      [](std::byte* storage) noexcept {
        std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
      },
  };

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace hal
