// Deterministic random number generation.
//
// Every source of randomness in the runtime (load-balancer victim selection,
// placement policies, workload generators) draws from a seeded xoshiro256**
// stream so that SimMachine runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace hal {

/// splitmix64 stream; used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    HAL_DASSERT(bound > 0);
    // 128-bit multiply keeps the bias below 2^-64 for any realistic bound.
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>((*this)()) * bound) >>
                                      64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hal
