// Byte-buffer serialization helpers.
//
// Messages that cross a node boundary are self-contained values (DESIGN.md
// §5): a trivially-copyable header plus an owned byte payload. ByteWriter /
// ByteReader provide the little marshalling layer actor behaviours use to
// pack state for migration and bulk arguments for sends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace hal {

using Bytes = std::vector<std::byte>;

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes buffer) : buffer_(std::move(buffer)) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    append(reinterpret_cast<const std::byte*>(&value), sizeof(T));
  }

  void write_bytes(std::span<const std::byte> data) {
    write<std::uint64_t>(data.size());
    append(data.data(), data.size());
  }

  void write_string(const std::string& s) {
    write_bytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_span(std::span<const T> data) {
    write_bytes(std::as_bytes(data));
  }

  Bytes take() && { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  // Kept out of line: when GCC 12 inlines vector::resize here it mis-infers
  // a fixed buffer bound from the caller and raises bogus -Warray-bounds /
  // -Wstringop-overflow errors under -Werror.
#if defined(__GNUC__) && !defined(__clang__)
  [[gnu::noinline]]
#endif
  void append(const std::byte* p, std::size_t n) {
    const std::size_t off = buffer_.size();
    buffer_.resize(off + n);
    if (n != 0) std::memcpy(buffer_.data() + off, p, n);
  }

  Bytes buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    HAL_ASSERT(pos_ + sizeof(T) <= data_.size());
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::span<const std::byte> read_bytes() {
    const auto n = read<std::uint64_t>();
    HAL_ASSERT(pos_ + n <= data_.size());
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string read_string() {
    auto b = read_bytes();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    auto b = read_bytes();
    HAL_ASSERT(b.size() % sizeof(T) == 0);
    std::vector<T> out(b.size() / sizeof(T));
    if (!b.empty()) std::memcpy(out.data(), b.data(), b.size());
    return out;
  }

  bool exhausted() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace hal
