// Hash primitives used by the per-node name tables.
//
// The paper's name tables are "hash tables whose entries are actor locality
// descriptors" (§4.2); lookups sit on the message-send critical path, so we
// use cheap finalizer-style mixing rather than std::hash (which is identity
// for integers on libstdc++ and clusters badly for slab-allocated ids).
#pragma once

#include <cstdint>

namespace hal {

/// splitmix64 finalizer; a full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one hash.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a over a byte range; used for behaviour-name → id hashing.
constexpr std::uint64_t fnv1a(const char* data, std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hal
