// Size-classed free-list pool of payload buffers.
//
// Every message that crosses a node boundary needs an owned byte buffer
// (packet payload, bulk transfer body, migration image). Allocating a fresh
// `Bytes` per message puts malloc/free on the messaging hot path — exactly
// the overhead the paper's active-message mapping is meant to avoid, and
// what CAF attributes most of its fine-grain throughput loss to. A
// BufferPool recycles retired buffers in per-size-class free lists so
// steady-state messaging performs no heap allocation at all.
//
// Ownership discipline matches the rest of the runtime (DESIGN.md §5):
// each kernel owns one pool and touches it only from its own execution
// stream, so there is no locking. Under the ThreadMachine the pools are
// thereby sharded per node thread; a buffer acquired on the sending node
// travels inside the packet and retires into the *receiving* node's pool,
// which is safe because `Bytes` carries its own allocation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "check/affinity.hpp"
#include "check/buffer_lifecycle.hpp"
#include "check/capability.hpp"
#include "common/bytes.hpp"

namespace hal {

class BufferPool {
 public:
  /// Size-class capacities. Classes cover the wire traffic tiers: inline
  /// message bodies (≤ 8 args · 8 B = 64 B), small payload-bearing packets
  /// (≤ kMaxInlinePayload = 512 B), bulk DATA chunks (kBulkChunkBytes =
  /// 4 KiB), and whole bulk transfers / migration images (64 KiB). Larger
  /// requests fall through to plain allocation and are dropped on release.
  static constexpr std::array<std::size_t, 4> kClassBytes = {64, 512, 4096,
                                                            65536};
  /// Free-list depth bound per class: a pool retains at most this many idle
  /// buffers per class (≈ 2.3 MiB worst case per node), so a burst cannot
  /// permanently pin its high-water mark in memory.
  static constexpr std::size_t kMaxFreePerClass = 32;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == len, recycled when possible. The memory is not
  /// zeroed beyond what vector::resize of a recycled buffer defines —
  /// callers overwrite the full extent.
  [[nodiscard]] Bytes acquire(std::size_t len) {
    Bytes b = reserve(len);
    b.resize(len);  // within reserved capacity: no allocation
    return b;
  }

  /// An empty buffer with capacity() >= cap (for ByteWriter-style append
  /// serialization). Oversized requests get a plain fresh buffer.
  [[nodiscard]] Bytes reserve(std::size_t cap) {
    affinity_.assert_here();
    const std::size_t cls = class_for(cap);
    if (cls < kClassBytes.size()) {
      FreeList& fl = free_[cls];
      if (fl.count > 0) {
        ++hits_;
        Bytes b = std::move(fl.buffers[--fl.count]);
        lifecycle_.note_reuse(b, affinity_);
        b.clear();
        note_acquired(b);
        return b;
      }
      ++misses_;
      Bytes b;
      b.reserve(kClassBytes[cls]);
      note_acquired(b);
      return b;
    }
    ++misses_;
    Bytes b;
    b.reserve(cap);
    note_acquired(b);
    return b;
  }

  /// Retire a buffer into the free list of the largest class its capacity
  /// covers. Buffers too small for the smallest class (e.g. moved-from
  /// shells), oversized one-offs, and overflow beyond the per-class bound
  /// are simply dropped (freed by ~Bytes).
  void release(Bytes&& b) {
    affinity_.assert_here();
    const std::size_t cap = b.capacity();
    if (cap < kClassBytes.front()) return;  // nothing worth keeping
#if HAL_CHECK
    if (ledger_ != nullptr) ledger_->note_retire(b.data());
#endif
    // Largest class with kClassBytes[cls] <= cap serves any request of that
    // class without reallocating.
    std::size_t cls = 0;
    while (cls + 1 < kClassBytes.size() && kClassBytes[cls + 1] <= cap) ++cls;
    if (cap > 2 * kClassBytes.back()) return;  // oversized one-off
    FreeList& fl = free_[cls];
    if (fl.count >= kMaxFreePerClass) return;  // bounded
    ++returns_;
    lifecycle_.note_idle(b, affinity_);
    fl.buffers[fl.count++] = std::move(b);
  }

  // --- hal::check wiring ---------------------------------------------------
  /// Name the owning node (level-2 affinity checking). Called once from the
  /// owning kernel's constructor; standalone pools stay unbound/unchecked.
  void bind_owner(NodeId node) noexcept { affinity_.bind(node, "BufferPool"); }
  /// Attach the runtime-wide leak ledger (nullptr = untracked).
  void set_ledger(check::BufferLedger* ledger) noexcept {
#if HAL_CHECK
    ledger_ = ledger;
#else
    (void)ledger;
#endif
  }
  /// Allocation identity of a payload before dispatch, for escape detection
  /// (nullptr when untracked or checking is off).
  const void* watch(const Bytes& b) const noexcept {
#if HAL_CHECK
    return ledger_ != nullptr ? b.data() : nullptr;
#else
    (void)b;
    return nullptr;
#endif
  }
  /// If the watched buffer's allocation is no longer `pre` — user code took
  /// the payload's ownership via Codec<Bytes> during dispatch, or a writer
  /// outgrew its reservation and vector growth freed the allocation —
  /// record that `pre` left the recycling loop.
  void note_escape_if_moved(const void* pre, const Bytes& now) noexcept {
#if HAL_CHECK
    if (pre != nullptr && now.data() != pre && ledger_ != nullptr) {
      ledger_->note_escape(pre);
    }
#else
    (void)pre;
    (void)now;
#endif
  }
  std::uint64_t check_double_retires() const noexcept
      HAL_NO_THREAD_SAFETY_ANALYSIS {
    return lifecycle_.double_retires();
  }
  std::uint64_t check_poison_hits() const noexcept
      HAL_NO_THREAD_SAFETY_ANALYSIS {
    return lifecycle_.poison_hits();
  }

  // --- Introspection (tests, diagnostics) ----------------------------------
  // Quiescent-time reads from the bootstrap thread (Runtime::report, tests):
  // opted out of clang's capability analysis rather than asserted.
  std::uint64_t hits() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return hits_;
  }
  std::uint64_t misses() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return misses_;
  }
  std::uint64_t returns() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return returns_;
  }
  std::size_t idle_buffers() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    std::size_t n = 0;
    for (const FreeList& fl : free_) n += fl.count;
    return n;
  }

 private:
  /// Smallest class that can hold `len`; kClassBytes.size() if none.
  static std::size_t class_for(std::size_t len) noexcept {
    for (std::size_t i = 0; i < kClassBytes.size(); ++i) {
      if (len <= kClassBytes[i]) return i;
    }
    return kClassBytes.size();
  }

  void note_acquired(const Bytes& b) noexcept {
#if HAL_CHECK
    if (ledger_ != nullptr) ledger_->note_acquire(b.data());
#else
    (void)b;
#endif
  }

  struct FreeList {
    std::array<Bytes, kMaxFreePerClass> buffers{};
    std::size_t count = 0;
  };

  check::NodeAffinityGuard affinity_;
  check::BufferLifecycle lifecycle_ HAL_GUARDED_BY(affinity_);
  std::array<FreeList, kClassBytes.size()> free_ HAL_GUARDED_BY(affinity_){};
  std::uint64_t hits_ HAL_GUARDED_BY(affinity_) = 0;
  std::uint64_t misses_ HAL_GUARDED_BY(affinity_) = 0;
  std::uint64_t returns_ HAL_GUARDED_BY(affinity_) = 0;
#if HAL_CHECK
  // HAL_LINT_SUPPRESS(hal-capability-coverage): the ledger pointer is set
  // once at bind time; BufferLedger itself is internally synchronized
  // (cross-node conservation audit, HAL_CHECK builds only).
  check::BufferLedger* ledger_ = nullptr;
#endif
};

}  // namespace hal
