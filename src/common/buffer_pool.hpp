// Size-classed free-list pool of payload buffers.
//
// Every message that crosses a node boundary needs an owned byte buffer
// (packet payload, bulk transfer body, migration image). Allocating a fresh
// `Bytes` per message puts malloc/free on the messaging hot path — exactly
// the overhead the paper's active-message mapping is meant to avoid, and
// what CAF attributes most of its fine-grain throughput loss to. A
// BufferPool recycles retired buffers in per-size-class free lists so
// steady-state messaging performs no heap allocation at all.
//
// Ownership discipline matches the rest of the runtime (DESIGN.md §5):
// each kernel owns one pool and touches it only from its own execution
// stream, so there is no locking. Under the ThreadMachine the pools are
// thereby sharded per node thread; a buffer acquired on the sending node
// travels inside the packet and retires into the *receiving* node's pool,
// which is safe because `Bytes` carries its own allocation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/bytes.hpp"

namespace hal {

class BufferPool {
 public:
  /// Size-class capacities. Classes cover the wire traffic tiers: inline
  /// message bodies (≤ 8 args · 8 B = 64 B), small payload-bearing packets
  /// (≤ kMaxInlinePayload = 512 B), bulk DATA chunks (kBulkChunkBytes =
  /// 4 KiB), and whole bulk transfers / migration images (64 KiB). Larger
  /// requests fall through to plain allocation and are dropped on release.
  static constexpr std::array<std::size_t, 4> kClassBytes = {64, 512, 4096,
                                                            65536};
  /// Free-list depth bound per class: a pool retains at most this many idle
  /// buffers per class (≈ 2.3 MiB worst case per node), so a burst cannot
  /// permanently pin its high-water mark in memory.
  static constexpr std::size_t kMaxFreePerClass = 32;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == len, recycled when possible. The memory is not
  /// zeroed beyond what vector::resize of a recycled buffer defines —
  /// callers overwrite the full extent.
  Bytes acquire(std::size_t len) {
    Bytes b = reserve(len);
    b.resize(len);  // within reserved capacity: no allocation
    return b;
  }

  /// An empty buffer with capacity() >= cap (for ByteWriter-style append
  /// serialization). Oversized requests get a plain fresh buffer.
  Bytes reserve(std::size_t cap) {
    const std::size_t cls = class_for(cap);
    if (cls < kClassBytes.size()) {
      FreeList& fl = free_[cls];
      if (fl.count > 0) {
        ++hits_;
        Bytes b = std::move(fl.buffers[--fl.count]);
        b.clear();
        return b;
      }
      ++misses_;
      Bytes b;
      b.reserve(kClassBytes[cls]);
      return b;
    }
    ++misses_;
    Bytes b;
    b.reserve(cap);
    return b;
  }

  /// Retire a buffer into the free list of the largest class its capacity
  /// covers. Buffers too small for the smallest class (e.g. moved-from
  /// shells), oversized one-offs, and overflow beyond the per-class bound
  /// are simply dropped (freed by ~Bytes).
  void release(Bytes&& b) {
    const std::size_t cap = b.capacity();
    if (cap < kClassBytes.front()) return;  // nothing worth keeping
    // Largest class with kClassBytes[cls] <= cap serves any request of that
    // class without reallocating.
    std::size_t cls = 0;
    while (cls + 1 < kClassBytes.size() && kClassBytes[cls + 1] <= cap) ++cls;
    if (cap > 2 * kClassBytes.back()) return;  // oversized one-off
    FreeList& fl = free_[cls];
    if (fl.count >= kMaxFreePerClass) return;  // bounded
    ++returns_;
    fl.buffers[fl.count++] = std::move(b);
  }

  // --- Introspection (tests, diagnostics) ----------------------------------
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t returns() const noexcept { return returns_; }
  std::size_t idle_buffers() const noexcept {
    std::size_t n = 0;
    for (const FreeList& fl : free_) n += fl.count;
    return n;
  }

 private:
  /// Smallest class that can hold `len`; kClassBytes.size() if none.
  static std::size_t class_for(std::size_t len) noexcept {
    for (std::size_t i = 0; i < kClassBytes.size(); ++i) {
      if (len <= kClassBytes[i]) return i;
    }
    return kClassBytes.size();
  }

  struct FreeList {
    std::array<Bytes, kMaxFreePerClass> buffers{};
    std::size_t count = 0;
  };

  std::array<FreeList, kClassBytes.size()> free_{};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t returns_ = 0;
};

}  // namespace hal
