// Growable power-of-two ring deque.
//
// The dispatcher's ready structure and every actor's mailbox/pending queue
// are FIFO queues that live on a messaging hot path. std::deque pays one
// map-chunk allocation per ~512 bytes of queued data and never returns a
// chunk to a free list, so steady-state messaging churns the allocator even
// when queue depth is bounded. RingDeque keeps elements in one contiguous
// power-of-two array: push/pop are index arithmetic, and once the ring has
// grown to the run's high-water mark it never allocates again. Indexed
// access and mid-queue erase (both FIFO-order-preserving) support the load
// balancer's steal scan and the pending-queue constraint replay.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace hal {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  T& front() {
    HAL_DASSERT(size_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    HAL_DASSERT(size_ > 0);
    return slots_[head_];
  }

  /// i-th element from the front (0 == front()).
  T& operator[](std::size_t i) {
    HAL_DASSERT(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    HAL_DASSERT(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  /// Drop the front element. The vacated slot keeps the moved-from shell
  /// (callers move the value out first); it is overwritten on reuse.
  void pop_front() {
    HAL_DASSERT(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  /// Move the front element out and drop it.
  T take_front() {
    HAL_DASSERT(size_ > 0);
    T value = std::move(slots_[head_]);
    pop_front();
    return value;
  }

  /// Remove the i-th element, preserving the order of the rest. Shifts the
  /// shorter side of the ring (amortized size/2 moves worst case; O(1) at
  /// either end, which covers the common steal-the-front case).
  void erase_at(std::size_t i) {
    HAL_DASSERT(i < size_);
    if (i < size_ - i - 1) {
      // Shift the front segment up toward the hole.
      for (std::size_t j = i; j > 0; --j) {
        slots_[(head_ + j) & mask_] = std::move(slots_[(head_ + j - 1) & mask_]);
      }
      head_ = (head_ + 1) & mask_;
    } else {
      // Shift the back segment down onto the hole.
      for (std::size_t j = i; j + 1 < size_; ++j) {
        slots_[(head_ + j) & mask_] = std::move(slots_[(head_ + j + 1) & mask_]);
      }
    }
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  void grow() {
    const std::size_t new_cap =
        slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_.swap(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace hal
