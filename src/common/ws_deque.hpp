// Chase–Lev work-stealing deque.
//
// Owner thread pushes and pops at the bottom; any other thread steals from
// the top. Used by the Cilk-style baseline pool (baseline/worksteal.hpp) and
// by the MnMachine's per-worker run queues of runnable nodes
// (am/mn_machine.hpp) — one implementation, one memory-model argument.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/atomic_policy.hpp"
#include "common/lint_markers.hpp"

namespace hal {

/// Chase–Lev work-stealing deque of raw pointers.
/// Owner thread: push_bottom / pop_bottom. Other threads: steal_top.
/// `Policy` supplies the atomic cells (common/atomic_policy.hpp): the
/// default `StdAtomics` is production `std::atomic`; hal-mc instantiates
/// the same code with instrumented model atomics to explore interleavings.
template <typename T, typename Policy = StdAtomics>
class WsDeque {
  // Memory-order contract checked by hal-lint HL007: the pop_bottom /
  // steal_top store-buffering exclusion uses seq_cst accesses (not fences —
  // TSan models accesses), push_bottom publishes with a release store of
  // bottom_ after an acquire read of top_.
  HAL_MEMORY_PROTOCOL("ws_deque");

 public:
  explicit WsDeque(std::size_t capacity_pow2 = 1u << 13)
      : buffer_(capacity_pow2), mask_(capacity_pow2 - 1) {
    HAL_ASSERT((capacity_pow2 & mask_) == 0);  // power of two
  }

  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    HAL_ASSERT(b - t < static_cast<std::int64_t>(buffer_.size()));  // full
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  T* pop_bottom() {
    // The classic formulation puts a seq_cst fence between the bottom store
    // and the top load; seq_cst accesses on both are equivalent here (the
    // store/load pair lands in the single total order S, so the symmetric
    // store-buffering race with steal_top is excluded) and, unlike fences,
    // are modeled by ThreadSanitizer.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t != b) return item;  // more than one element: safe
    // Single element: race with thieves via CAS on top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      item = nullptr;  // lost to a thief
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return item;
  }

  T* steal_top() {
    // seq_cst accesses in place of the classic load/fence/load — see
    // pop_bottom for why.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;  // empty
    T* item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;

  std::vector<Atomic<T*>> buffer_;
  std::size_t mask_;
  alignas(64) Atomic<std::int64_t> top_{0};
  alignas(64) Atomic<std::int64_t> bottom_{0};
};

}  // namespace hal
