// Structured run results: the one thing a Halcyon run hands back.
//
// RunReport replaces the makespan()/total_stats() accessor pair with a
// single value object carrying everything the paper's evaluation tables
// need: machine kind, node count, makespan, per-node and aggregate event
// counters, and per-probe latency histograms. to_json() is deterministic —
// fixed key order, integers only — so two SimMachine runs of the same seed
// serialize byte-identically and BENCH_*.json files diff cleanly across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/probe_recorder.hpp"

namespace hal::obs {

/// Schema identifier embedded in the JSON (bump on layout changes).
inline constexpr std::string_view kRunReportSchema = "halcyon.run_report.v1";

struct RunReport {
  std::string machine;  ///< "sim" or "thread"
  std::uint64_t nodes = 0;
  std::uint64_t seed = 0;
  std::uint64_t makespan_ns = 0;
  std::uint64_t dead_letters = 0;

  StatBlock total;                        ///< sum of per_node
  std::vector<StatBlock> per_node;        ///< index = NodeId
  ProbeRecorder probes;                   ///< merged across nodes
  std::vector<ProbeRecorder> per_node_probes;  ///< index = NodeId

  /// Deterministic JSON serialization (schema halcyon.run_report.v1):
  /// {
  ///   "schema": "...", "machine": "sim", "nodes": N, "seed": S,
  ///   "makespan_ns": M, "dead_letters": D,
  ///   "stats": {"<stat>": count, ...},            // all counters, in order
  ///   "per_node_stats": [{...}, ...],
  ///   "probes": {"<probe>": {"unit": "...", "count": C, "sum": S,
  ///               "min": m, "max": M, "p50": q, "p90": q, "p99": q,
  ///               "buckets": [[lower_bound, count], ...]}, ...}
  /// }
  std::string to_json() const;
};

}  // namespace hal::obs
