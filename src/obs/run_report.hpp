// Structured run results: the one thing a Halcyon run hands back.
//
// RunReport replaces the makespan()/total_stats() accessor pair with a
// single value object carrying everything the paper's evaluation tables
// need: machine kind, node count, makespan, per-node and aggregate event
// counters, and per-probe latency histograms. to_json() is deterministic —
// fixed key order, integers only — so two SimMachine runs of the same seed
// serialize byte-identically and BENCH_*.json files diff cleanly across PRs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/probe_recorder.hpp"

namespace hal::obs {

/// Schema identifier embedded in the JSON (bump on layout changes).
/// v3: adds "dead_letter_causes" (per-cause breakdown summing to
/// "dead_letters") and the link/fault stat counters + redelivery probe.
/// v4: adds "workers" (execution contexts the machine used: 1 for sim,
/// node count for thread, pool size N for mn) and the "mn" machine kind.
/// v5: adds the wire-batching counters (wire_frames, coalesced_msgs and the
/// four wire_flush_* cause counters) and the frame_fill_msgs probe.
inline constexpr std::string_view kRunReportSchema = "halcyon.run_report.v5";

/// Payload-buffer lifecycle audit, filled from the hal::check ledger. All
/// fields are zero in HAL_CHECK=0 builds (the ledger compiles away).
struct BufferAudit {
  std::uint64_t acquired = 0;   ///< pool acquisitions recorded
  std::uint64_t retired = 0;    ///< releases of ledger-tracked buffers
  std::uint64_t adopted = 0;    ///< releases of externally allocated buffers
  std::uint64_t escaped = 0;    ///< payloads moved out to user code (decode)
  std::uint64_t in_flight = 0;  ///< live buffers still reachable in queues
  std::uint64_t leaked = 0;     ///< live buffers reachable from nowhere
  std::uint64_t double_retires = 0;  ///< same buffer released twice
  std::uint64_t poison_hits = 0;     ///< writes to a buffer after release
};

struct RunReport {
  std::string machine;  ///< "sim", "thread" or "mn" (to_string(MachineKind))
  std::uint64_t nodes = 0;
  /// Execution contexts the machine scheduled nodes onto (worker_count()):
  /// 1 for sim, nodes for thread, the worker-pool size for mn. The scaling
  /// sweep in bench/mn_scaling reads its x-axis from here.
  std::uint64_t workers = 1;
  std::uint64_t seed = 0;
  std::uint64_t makespan_ns = 0;
  std::uint64_t dead_letters = 0;
  /// Per-cause breakdown of dead_letters, indexed by DeadLetterCause
  /// (unknown actor, stale descriptor, shutdown drain); sums to
  /// dead_letters.
  std::array<std::uint64_t, 3> dead_letter_causes{};
  BufferAudit buffers;  ///< hal::check buffer audit (zeros when disabled)

  StatBlock total;                        ///< sum of per_node
  std::vector<StatBlock> per_node;        ///< index = NodeId
  ProbeRecorder probes;                   ///< merged across nodes
  std::vector<ProbeRecorder> per_node_probes;  ///< index = NodeId

  /// Deterministic JSON serialization (schema halcyon.run_report.v5):
  /// {
  ///   "schema": "...", "machine": "sim", "nodes": N, "workers": W,
  ///   "seed": S, "makespan_ns": M, "dead_letters": D,
  ///   "dead_letter_causes": {"unknown_actor": u, "stale_descriptor": s,
  ///                          "shutdown_drain": d},
  ///   "buffers": {"acquired": A, "retired": R, "adopted": a, "escaped": e,
  ///               "in_flight": i, "leaked": l, "double_retires": d,
  ///               "poison_hits": p},
  ///   "stats": {"<stat>": count, ...},            // all counters, in order
  ///   "per_node_stats": [{...}, ...],
  ///   "probes": {"<probe>": {"unit": "...", "count": C, "sum": S,
  ///               "min": m, "max": M, "p50": q, "p90": q, "p99": q,
  ///               "buckets": [[lower_bound, count], ...]}, ...}
  /// }
  std::string to_json() const;
};

}  // namespace hal::obs
