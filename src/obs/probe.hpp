// Probe identifiers for the observability layer.
//
// Each probe names one runtime primitive whose latency (or size) the paper's
// evaluation cares about: Tables 1-5 are built from µs-level measurements of
// message delivery, FIR resolution, migration and bulk transfer. A probe is
// charged in virtual ns under SimMachine and wall ns under ThreadMachine, so
// the two executors produce comparable distributions.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hal::obs {

/// Probe identifiers; keep in sync with kProbeNames / kProbeUnits.
enum class Probe : std::uint32_t {
  kRemoteDelivery,    ///< packet injection -> receiver handler entry
  kFirRoundTrip,      ///< FIR sent -> response received (§4.3 chase)
  kMigration,         ///< pack started -> actor reinstalled at target
  kBulkTransfer,      ///< bulk REQUEST sent -> data delivered (§6.5)
  kBulkFlowStall,     ///< REQUEST held in the flow-control grant queue
  kStealRoundTrip,    ///< steal poll sent -> deny or stolen actor arrival
  kPendingResidency,  ///< message parked on a disabled method (§6.1)
  kMailboxResidency,  ///< mailbox enqueue -> dispatch
  kMethodExecution,   ///< one method body, including stolen handler cycles
  kJoinRoundTrip,     ///< join continuation created -> counter hit zero
  kBroadcastRelay,    ///< broadcast injection -> MST relay handler entry
  kDispatchBatch,     ///< items drained per dispatcher busy period (items)
  kRedelivery,        ///< first send -> delivery of a retransmitted packet
  kFrameFill,         ///< records per coalesced wire frame at close (msgs)
  kCount,
};

inline constexpr std::size_t kProbeCount =
    static_cast<std::size_t>(Probe::kCount);

/// Stable JSON key per probe; suffix echoes the unit.
inline constexpr std::array<std::string_view, kProbeCount> kProbeNames = {
    "remote_delivery_ns", "fir_round_trip_ns",    "migration_ns",
    "bulk_transfer_ns",   "bulk_flow_stall_ns",   "steal_round_trip_ns",
    "pending_residency_ns", "mailbox_residency_ns", "method_execution_ns",
    "join_round_trip_ns", "broadcast_relay_ns",   "dispatch_batch_items",
    "redelivery_ns",      "frame_fill_msgs",
};

inline constexpr std::array<std::string_view, kProbeCount> kProbeUnits = {
    "ns", "ns", "ns", "ns", "ns", "ns", "ns", "ns", "ns", "ns", "ns",
    "items", "ns", "msgs",
};

}  // namespace hal::obs
