// Per-node probe recorder.
//
// One Log2Histogram per Probe, owned by a single node's kernel and written
// only from that node's execution stream (same single-writer discipline as
// StatBlock — no atomics, no locks). Runtime::report() merges the per-node
// recorders into the aggregate distribution at quiescence.
#pragma once

#include "check/affinity.hpp"
#include "check/capability.hpp"
#include "obs/histogram.hpp"
#include "obs/probe.hpp"

namespace hal::obs {

class ProbeRecorder {
 public:
  void record(Probe p, std::uint64_t value) noexcept {
    affinity_.assert_here();
    histograms_[static_cast<std::size_t>(p)].record(value);
  }

  /// Duration helper with saturation: cross-node wall-clock deltas under
  /// ThreadMachine can come out "negative" when the endpoints race; clamp to
  /// zero rather than recording a wrapped uint64.
  void record_span(Probe p, std::uint64_t start, std::uint64_t end) noexcept {
    record(p, end >= start ? end - start : 0);
  }

  // Quiescent-time readers/mergers (Runtime::report on the bootstrap
  // thread): opted out of the capability analysis rather than asserted.
  const Log2Histogram& histogram(Probe p) const noexcept
      HAL_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_[static_cast<std::size_t>(p)];
  }

  /// Number of probes with at least one sample.
  std::size_t populated() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    std::size_t n = 0;
    for (const auto& h : histograms_) {
      if (!h.empty()) ++n;
    }
    return n;
  }

  ProbeRecorder& operator+=(const ProbeRecorder& other) noexcept
      HAL_NO_THREAD_SAFETY_ANALYSIS {
    for (std::size_t i = 0; i < kProbeCount; ++i) {
      histograms_[i] += other.histograms_[i];
    }
    return *this;
  }

  /// Name the owning node (called once by the owning kernel's constructor).
  void bind_owner(NodeId node) noexcept {
    affinity_.bind(node, "ProbeRecorder");
  }

 private:
  check::NodeAffinityGuard affinity_;
  std::array<Log2Histogram, kProbeCount> histograms_ HAL_GUARDED_BY(affinity_){};
};

}  // namespace hal::obs
