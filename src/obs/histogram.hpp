// Fixed-bucket log2 latency histogram.
//
// 65 buckets cover the full uint64 range: bucket 0 holds the value 0 and
// bucket b (1 <= b <= 64) holds [2^(b-1), 2^b). Recording is a bit_width and
// an increment — cheap enough to leave on unconditionally in the kernel's
// hot paths — and the fixed layout makes per-node histograms mergeable and
// the JSON serialization deterministic. Quantiles return the *lower bound*
// of the bucket containing the requested rank, so they are exact whenever
// the samples themselves are bucket lower bounds (the unit tests exploit
// this) and otherwise underestimate by at most 2x.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace hal::obs {

class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  bool empty() const noexcept { return count_ == 0; }

  std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b];
  }

  /// Lower bound of bucket b: 0, 1, 2, 4, ... 2^63.
  static constexpr std::uint64_t bucket_lower(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Index of the bucket that holds `value`.
  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  /// Lower bound of the bucket containing the sample of rank ceil(q * count)
  /// (1-based, samples in ascending order). 0 on an empty histogram.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    HAL_DASSERT(q > 0.0 && q <= 1.0);
    // ceil(q * count) without FP edge cases on the boundary: the smallest
    // rank r with r >= q * count.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) return bucket_lower(b);
    }
    return bucket_lower(kBuckets - 1);  // unreachable
  }

  Log2Histogram& operator+=(const Log2Histogram& other) noexcept {
    if (other.count_ == 0) return *this;
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    return *this;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace hal::obs
