#include "obs/run_report.hpp"

namespace hal::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_stats(std::string& out, const StatBlock& stats) {
  out += '{';
  for (std::size_t i = 0; i < kStatNames.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += kStatNames[i];
    out += "\":";
    append_u64(out, stats.get(static_cast<Stat>(i)));
  }
  out += '}';
}

void append_histogram(std::string& out, const Log2Histogram& h,
                      std::string_view unit) {
  out += "{\"unit\":\"";
  out += unit;
  out += "\",\"count\":";
  append_u64(out, h.count());
  out += ",\"sum\":";
  append_u64(out, h.sum());
  out += ",\"min\":";
  append_u64(out, h.min());
  out += ",\"max\":";
  append_u64(out, h.max());
  out += ",\"p50\":";
  append_u64(out, h.empty() ? 0 : h.quantile(0.50));
  out += ",\"p90\":";
  append_u64(out, h.empty() ? 0 : h.quantile(0.90));
  out += ",\"p99\":";
  append_u64(out, h.empty() ? 0 : h.quantile(0.99));
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    if (h.bucket_count(b) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    append_u64(out, Log2Histogram::bucket_lower(b));
    out += ',';
    append_u64(out, h.bucket_count(b));
    out += ']';
  }
  out += "]}";
}

void append_probes(std::string& out, const ProbeRecorder& probes) {
  out += '{';
  for (std::size_t i = 0; i < kProbeCount; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += kProbeNames[i];
    out += "\":";
    append_histogram(out, probes.histogram(static_cast<Probe>(i)),
                     kProbeUnits[i]);
  }
  out += '}';
}

}  // namespace

std::string RunReport::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"";
  out += kRunReportSchema;
  out += "\",\"machine\":\"";
  out += machine;
  out += "\",\"nodes\":";
  append_u64(out, nodes);
  out += ",\"workers\":";
  append_u64(out, workers);
  out += ",\"seed\":";
  append_u64(out, seed);
  out += ",\"makespan_ns\":";
  append_u64(out, makespan_ns);
  out += ",\"dead_letters\":";
  append_u64(out, dead_letters);
  out += ",\"dead_letter_causes\":{\"unknown_actor\":";
  append_u64(out, dead_letter_causes[0]);
  out += ",\"stale_descriptor\":";
  append_u64(out, dead_letter_causes[1]);
  out += ",\"shutdown_drain\":";
  append_u64(out, dead_letter_causes[2]);
  out += "},\"buffers\":{\"acquired\":";
  append_u64(out, buffers.acquired);
  out += ",\"retired\":";
  append_u64(out, buffers.retired);
  out += ",\"adopted\":";
  append_u64(out, buffers.adopted);
  out += ",\"escaped\":";
  append_u64(out, buffers.escaped);
  out += ",\"in_flight\":";
  append_u64(out, buffers.in_flight);
  out += ",\"leaked\":";
  append_u64(out, buffers.leaked);
  out += ",\"double_retires\":";
  append_u64(out, buffers.double_retires);
  out += ",\"poison_hits\":";
  append_u64(out, buffers.poison_hits);
  out += "},\"stats\":";
  append_stats(out, total);
  out += ",\"per_node_stats\":[";
  for (std::size_t n = 0; n < per_node.size(); ++n) {
    if (n != 0) out += ',';
    append_stats(out, per_node[n]);
  }
  out += "],\"probes\":";
  append_probes(out, probes);
  out += '}';
  return out;
}

}  // namespace hal::obs
