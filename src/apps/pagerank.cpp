#include "apps/pagerank.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "runtime/api.hpp"

namespace hal::apps {
namespace {

constexpr double kDamping = 0.85;

std::uint32_t partition_of(std::uint32_t v, std::uint32_t chunk) {
  return v / chunk;
}

/// One contiguous vertex range. Partitions hold each other's mail
/// addresses and stay addressable through migration: after the coordinator
/// relocates one, in-flight contributions chase it via the FIR protocol and
/// subsequent senders are taught its new location (location transparency).
class Partition : public ActorBase {
 public:
  // --- Protocol ---------------------------------------------------------------
  void on_init(Context& ctx, std::uint64_t packed, std::uint32_t index,
               MailAddress coord, Bytes data) {
    n_ = static_cast<std::uint32_t>(packed & 0xffffffffU);
    rounds_ = static_cast<std::uint32_t>((packed >> 32) & 0xffffU);
    parts_ = static_cast<std::uint32_t>((packed >> 48) & 0xffffU);
    index_ = index;
    coord_ = coord;
    chunk_ = (n_ + parts_ - 1) / parts_;
    lo_ = index_ * chunk_;
    hi_ = std::min(n_, lo_ + chunk_);

    ByteReader r{std::span<const std::byte>{data}};
    peers_.clear();
    const auto npeers = r.read<std::uint32_t>();
    peers_.reserve(npeers);
    for (std::uint32_t i = 0; i < npeers; ++i) {
      const auto w0 = r.read<std::uint64_t>();
      const auto w1 = r.read<std::uint64_t>();
      peers_.push_back(MailAddress::unpack(w0, w1));
    }
    in_peer_count_ = r.read<std::uint32_t>();
    const auto owned = r.read<std::uint32_t>();
    adj_offsets_ = r.read_vector<std::uint32_t>();
    adj_ = r.read_vector<std::uint32_t>();
    HAL_ASSERT(owned == hi_ - lo_);
    HAL_ASSERT(adj_offsets_.size() == owned + 1);
    rank_.assign(owned, 1.0 / n_);
    accum_.assign(owned, 0.0);
    initialized_ = true;
    if (rounds_ > 0) send_round(ctx);
  }

  /// Round-tagged contributions from one in-peer (their end-of-round marker
  /// for us at the same time). Purely local synchronization.
  void on_contrib(Context& ctx, std::uint64_t round, Bytes data) {
    buffered_[round].push_back(std::move(data));
    try_advance(ctx);
  }

  /// Coordinator-directed rebalancing (uses the measured loads).
  void on_move(Context& ctx, NodeId target) { ctx.migrate_to(target); }

  HAL_BEHAVIOR(Partition, &Partition::on_init, &Partition::on_contrib,
               &Partition::on_move)

  bool method_enabled(Selector s) const override {
    if (s == sel<&Partition::on_init>()) return !initialized_;
    if (s == sel<&Partition::on_contrib>()) return initialized_;
    return true;
  }

  // --- Migration ---------------------------------------------------------------
  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override {
    w.write(n_);
    w.write(rounds_);
    w.write(parts_);
    w.write(index_);
    w.write(static_cast<std::uint32_t>(peers_.size()));
    for (const MailAddress& p : peers_) {
      w.write(p.pack_word0());
      w.write(p.pack_word1());
    }
    w.write(coord_.pack_word0());
    w.write(coord_.pack_word1());
    w.write(in_peer_count_);
    w.write(round_);
    w.write(static_cast<std::uint8_t>(initialized_ ? 1 : 0));
    w.write_span<std::uint32_t>(adj_offsets_);
    w.write_span<std::uint32_t>(adj_);
    w.write_span<double>(rank_);
    w.write_span<double>(accum_);
    w.write(static_cast<std::uint32_t>(buffered_.size()));
    for (const auto& [round, msgs] : buffered_) {
      w.write(round);
      w.write(static_cast<std::uint32_t>(msgs.size()));
      for (const Bytes& b : msgs) w.write_bytes(b);
    }
  }
  void unpack_state(ByteReader& r) override {
    n_ = r.read<std::uint32_t>();
    rounds_ = r.read<std::uint32_t>();
    parts_ = r.read<std::uint32_t>();
    index_ = r.read<std::uint32_t>();
    const auto npeers = r.read<std::uint32_t>();
    peers_.clear();
    peers_.reserve(npeers);
    for (std::uint32_t i = 0; i < npeers; ++i) {
      const auto w0 = r.read<std::uint64_t>();
      const auto w1 = r.read<std::uint64_t>();
      peers_.push_back(MailAddress::unpack(w0, w1));
    }
    const auto c0 = r.read<std::uint64_t>();
    const auto c1 = r.read<std::uint64_t>();
    coord_ = MailAddress::unpack(c0, c1);
    in_peer_count_ = r.read<std::uint32_t>();
    round_ = r.read<std::uint64_t>();
    initialized_ = r.read<std::uint8_t>() != 0;
    adj_offsets_ = r.read_vector<std::uint32_t>();
    adj_ = r.read_vector<std::uint32_t>();
    rank_ = r.read_vector<double>();
    accum_ = r.read_vector<double>();
    const auto nbuf = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < nbuf; ++i) {
      const auto round = r.read<std::uint64_t>();
      const auto count = r.read<std::uint32_t>();
      auto& vec = buffered_[round];
      for (std::uint32_t j = 0; j < count; ++j) {
        const auto b = r.read_bytes();
        vec.emplace_back(b.begin(), b.end());
      }
    }
    chunk_ = (n_ + parts_ - 1) / parts_;
    lo_ = index_ * chunk_;
    hi_ = std::min(n_, lo_ + chunk_);
  }

  const std::vector<double>& ranks() const { return rank_; }
  std::uint32_t lo() const { return lo_; }
  std::uint32_t index() const { return index_; }

 private:
  /// Emit this round's contributions: one message per out-peer (doubling as
  /// the marker), self-contributions applied directly.
  void send_round(Context& ctx) {
    struct Pair {
      std::uint32_t v;
      double share;
    };
    std::map<std::uint32_t, std::vector<Pair>> per_peer;
    std::uint64_t edge_work = 0;
    for (std::uint32_t v = lo_; v < hi_; ++v) {
      const std::uint32_t o = v - lo_;
      const std::uint32_t deg = adj_offsets_[o + 1] - adj_offsets_[o];
      if (deg == 0) continue;
      const double share = rank_[o] / deg;
      for (std::uint32_t e = adj_offsets_[o]; e < adj_offsets_[o + 1]; ++e) {
        const std::uint32_t dst = adj_[e];
        const std::uint32_t p = partition_of(dst, chunk_);
        ++edge_work;
        if (p == index_) {
          accum_[dst - lo_] += share;
        } else {
          per_peer[p].push_back(Pair{dst, share});
        }
      }
    }
    ctx.charge_flops(2 * edge_work);
    // Every out-peer gets exactly one message per round (the marker).
    for (auto& [peer, pairs] : per_peer) {
      ByteWriter w;
      w.write(static_cast<std::uint32_t>(pairs.size()));
      for (const Pair& pr : pairs) {
        w.write(pr.v);
        w.write(pr.share);
      }
      ctx.send<&Partition::on_contrib>(peers_[peer], std::uint64_t{round_},
                                       std::move(w).take());
    }
    try_advance(ctx);
  }

  void try_advance(Context& ctx) {
    while (round_ < rounds_ &&
           buffered_[round_].size() == in_peer_count_) {
      // Apply the buffered round: rank ← (1-d)/n + d·Σ contributions.
      auto msgs = std::move(buffered_[round_]);
      buffered_.erase(round_);
      for (const Bytes& m : msgs) {
        ByteReader r{std::span<const std::byte>{m}};
        const auto count = r.read<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto v = r.read<std::uint32_t>();
          const auto share = r.read<double>();
          accum_[v - lo_] += share;
        }
      }
      for (std::uint32_t o = 0; o < rank_.size(); ++o) {
        rank_[o] = (1.0 - kDamping) / n_ + kDamping * accum_[o];
        accum_[o] = 0.0;
      }
      ctx.charge_flops(3 * rank_.size() + 8);
      ++round_;
      report(ctx);
      if (round_ < rounds_) send_round(ctx);
    }
  }

  void report(Context& ctx);

  std::uint32_t n_ = 0, rounds_ = 0, parts_ = 0, index_ = 0;
  std::uint32_t chunk_ = 0, lo_ = 0, hi_ = 0;
  std::vector<MailAddress> peers_;
  MailAddress coord_{};
  bool initialized_ = false;
  std::uint32_t in_peer_count_ = 0;
  std::uint64_t round_ = 0;
  std::vector<std::uint32_t> adj_offsets_;  // CSR over owned vertices
  std::vector<std::uint32_t> adj_;
  std::vector<double> rank_;
  std::vector<double> accum_;
  std::map<std::uint64_t, std::vector<Bytes>> buffered_;
};

/// Tracks round completion times and directs the rebalancing migrations.
class PrCoordinator : public ActorBase {
 public:
  void on_config(Context& ctx, std::uint32_t partitions, std::uint32_t rounds,
                 std::uint32_t rebalance_after, Bytes work) {
    partitions_ = partitions;
    rounds_ = rounds;
    rebalance_after_ = rebalance_after;
    ByteReader r{std::span<const std::byte>{work}};
    peers_.clear();
    peers_.reserve(partitions);
    for (std::uint32_t i = 0; i < partitions; ++i) {
      const auto w0 = r.read<std::uint64_t>();
      const auto w1 = r.read<std::uint64_t>();
      peers_.push_back(MailAddress::unpack(w0, w1));
    }
    work_ = r.read_vector<std::uint64_t>();
    HAL_ASSERT(work_.size() == partitions_);
    last_mark_ = ctx.now();
    configured_ = true;
  }

  bool method_enabled(Selector s) const override {
    if (s == sel<&PrCoordinator::on_round_done>()) return configured_;
    return true;
  }

  void on_round_done(Context& ctx, std::uint64_t round,
                     std::uint32_t partition, std::uint64_t home_node) {
    location_[partition] = static_cast<NodeId>(home_node);
    if (++reported_[round] < partitions_) return;
    // Everyone finished `round`: record its duration.
    const SimTime now = ctx.now();
    round_ns.push_back(now - last_mark_);
    last_mark_ = now;
    if (rebalance_after_ != 0 && round + 1 == rebalance_after_) {
      rebalance(ctx);
    }
  }

  HAL_BEHAVIOR(PrCoordinator, &PrCoordinator::on_config,
               &PrCoordinator::on_round_done)

  inline static std::vector<SimTime> round_ns{};
  inline static std::uint64_t moves = 0;

 private:
  /// Greedy load leveling on the *measured* locations and static edge
  /// weights: repeatedly move the heaviest partition of the most loaded
  /// node to the least loaded node.
  void rebalance(Context& ctx) {
    const NodeId nodes = static_cast<NodeId>(ctx.node_count());
    for (int iteration = 0; iteration < static_cast<int>(partitions_);
         ++iteration) {
      std::vector<std::uint64_t> load(nodes, 0);
      for (std::uint32_t p = 0; p < partitions_; ++p) {
        load[location_[p]] += work_[p];
      }
      const auto max_it = std::max_element(load.begin(), load.end());
      const auto min_it = std::min_element(load.begin(), load.end());
      const auto max_node = static_cast<NodeId>(max_it - load.begin());
      const auto min_node = static_cast<NodeId>(min_it - load.begin());
      if (*max_it <= *min_it + *min_it / 4) break;  // balanced enough
      // Choose the hot-node partition whose relocation minimizes the
      // resulting peak of the (hot, cold) pair — moving the giant itself
      // would often just relocate the bottleneck.
      std::int64_t best = -1;
      std::uint64_t best_peak = *max_it;  // must strictly improve
      for (std::uint32_t p = 0; p < partitions_; ++p) {
        if (location_[p] != max_node) continue;
        const std::uint64_t peak =
            std::max(*max_it - work_[p], *min_it + work_[p]);
        if (peak < best_peak) {
          best_peak = peak;
          best = p;
        }
      }
      if (best < 0) break;
      const auto bp = static_cast<std::uint32_t>(best);
      location_[bp] = min_node;
      ++moves;
      ctx.send<&Partition::on_move>(peers_[bp], min_node);
    }
  }

  std::uint32_t partitions_ = 0, rounds_ = 0, rebalance_after_ = 0;
  bool configured_ = false;
  std::vector<MailAddress> peers_;
  std::vector<std::uint64_t> work_;
  std::map<std::uint64_t, std::uint32_t> reported_;
  std::map<std::uint32_t, NodeId> location_;
  SimTime last_mark_ = 0;
};

void Partition::report(Context& ctx) {
  ctx.send<&PrCoordinator::on_round_done>(coord_, round_ - 1, index_,
                                          std::uint64_t{ctx.node()});
}

/// Distributes the graph and wires partitions to the coordinator.
class PrSetup : public ActorBase {
 public:
  void on_go(Context& ctx, std::uint64_t packed, std::uint32_t rebalance,
             Bytes graph) {
    const auto n = static_cast<std::uint32_t>(packed & 0xffffffffU);
    const auto rounds = static_cast<std::uint32_t>((packed >> 32) & 0xffffU);
    const auto parts = static_cast<std::uint32_t>((packed >> 48) & 0xffffU);
    const std::uint32_t chunk = (n + parts - 1) / parts;

    ByteReader r{std::span<const std::byte>{graph}};
    const auto src = r.read_vector<std::uint32_t>();
    const auto dst = r.read_vector<std::uint32_t>();

    // Contiguous initial placement: partition p starts on node
    // p·P/parts, so the quadratic skew concentrates the heavy partitions —
    // the imbalance the measured rebalancing then fixes.
    std::vector<MailAddress> peers;
    peers.reserve(parts);
    for (std::uint32_t p = 0; p < parts; ++p) {
      const auto node = static_cast<NodeId>(
          static_cast<std::uint64_t>(p) * ctx.node_count() / parts);
      peers.push_back(ctx.create_on<Partition>(node));
    }
    const MailAddress coord = ctx.create<PrCoordinator>();

    // Per-partition CSR + in-peer counts + static edge work.
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (std::size_t e = 0; e < src.size(); ++e) {
      adj[src[e]].push_back(dst[e]);
    }
    std::vector<std::set<std::uint32_t>> in_peers(parts);
    std::vector<std::uint64_t> work(parts, 0);
    for (std::size_t e = 0; e < src.size(); ++e) {
      const std::uint32_t ps = partition_of(src[e], chunk);
      const std::uint32_t pd = partition_of(dst[e], chunk);
      ++work[ps];
      if (ps != pd) in_peers[pd].insert(ps);
    }

    for (std::uint32_t p = 0; p < parts; ++p) {
      const std::uint32_t lo = p * chunk;
      const std::uint32_t hi = std::min(n, lo + chunk);
      ByteWriter w;
      // Peer address list first (the reader consumes in this order), then
      // in-peer count and the owned CSR slice.
      w.write(static_cast<std::uint32_t>(peers.size()));
      for (const MailAddress& a : peers) {
        w.write(a.pack_word0());
        w.write(a.pack_word1());
      }
      w.write(static_cast<std::uint32_t>(in_peers[p].size()));
      w.write(hi - lo);
      std::vector<std::uint32_t> offsets(hi - lo + 1, 0);
      std::vector<std::uint32_t> flat;
      for (std::uint32_t v = lo; v < hi; ++v) {
        offsets[v - lo + 1] =
            offsets[v - lo] + static_cast<std::uint32_t>(adj[v].size());
        flat.insert(flat.end(), adj[v].begin(), adj[v].end());
      }
      w.write_span<std::uint32_t>(offsets);
      w.write_span<std::uint32_t>(flat);
      ctx.send<&Partition::on_init>(peers[p], packed, p, coord,
                                    std::move(w).take());
    }

    ByteWriter ww;
    for (const MailAddress& a : peers) {
      ww.write(a.pack_word0());
      ww.write(a.pack_word1());
    }
    ww.write_span<std::uint64_t>(work);
    ctx.send<&PrCoordinator::on_config>(coord, parts, rounds, rebalance,
                                        std::move(ww).take());
  }
  HAL_BEHAVIOR(PrSetup, &PrSetup::on_go)
};

}  // namespace

void make_skewed_graph(std::uint32_t vertices, std::uint32_t avg_degree,
                       std::uint64_t seed,
                       std::vector<std::uint32_t>& edge_src,
                       std::vector<std::uint32_t>& edge_dst) {
  Xoshiro256 rng(seed);
  const std::uint64_t edges =
      static_cast<std::uint64_t>(vertices) * avg_degree;
  edge_src.clear();
  edge_dst.clear();
  edge_src.reserve(edges + vertices);
  edge_dst.reserve(edges + vertices);
  std::vector<bool> has_out(vertices, false);
  for (std::uint64_t e = 0; e < edges; ++e) {
    // Quadratic skew: low-numbered vertices emit most of the edges, so
    // contiguous partitions are heavily imbalanced.
    const double u = rng.uniform();
    const auto src =
        static_cast<std::uint32_t>(u * u * static_cast<double>(vertices));
    const auto dst = static_cast<std::uint32_t>(rng.below(vertices));
    edge_src.push_back(std::min(src, vertices - 1));
    edge_dst.push_back(dst);
    has_out[edge_src.back()] = true;
  }
  for (std::uint32_t v = 0; v < vertices; ++v) {
    if (!has_out[v]) {  // dangling: self-loop keeps mass conserved enough
      edge_src.push_back(v);
      edge_dst.push_back(v);
    }
  }
}

std::vector<double> pagerank_seq(std::uint32_t vertices,
                                 const std::vector<std::uint32_t>& edge_src,
                                 const std::vector<std::uint32_t>& edge_dst,
                                 std::uint32_t rounds) {
  std::vector<std::uint32_t> outdeg(vertices, 0);
  for (const std::uint32_t s : edge_src) ++outdeg[s];
  std::vector<double> rank(vertices, 1.0 / vertices);
  std::vector<double> next(vertices, 0.0);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t e = 0; e < edge_src.size(); ++e) {
      next[edge_dst[e]] += rank[edge_src[e]] / outdeg[edge_src[e]];
    }
    for (std::uint32_t v = 0; v < vertices; ++v) {
      rank[v] = (1.0 - kDamping) / vertices + kDamping * next[v];
    }
  }
  return rank;
}

PageRankResult run_pagerank(const PageRankParams& params) {
  HAL_ASSERT(params.vertices >= params.nodes * params.partitions_per_node);
  RuntimeConfig cfg;
  cfg.nodes = params.nodes;
  cfg.machine = params.machine;
  cfg.mn_workers = params.mn_workers;
  cfg.costs = params.costs;
  cfg.seed = params.seed;
  Runtime rt(cfg);
  rt.load<Partition>();
  rt.load<PrCoordinator>();
  rt.load<PrSetup>();
  PrCoordinator::round_ns.clear();
  PrCoordinator::moves = 0;

  std::vector<std::uint32_t> src, dst;
  make_skewed_graph(params.vertices, params.edges_per_vertex, params.seed,
                    src, dst);
  const std::uint32_t parts = params.nodes * params.partitions_per_node;
  const std::uint64_t packed =
      static_cast<std::uint64_t>(params.vertices) |
      (static_cast<std::uint64_t>(params.rounds) << 32) |
      (static_cast<std::uint64_t>(parts) << 48);

  ByteWriter w;
  w.write_span<std::uint32_t>(src);
  w.write_span<std::uint32_t>(dst);
  const MailAddress setup = rt.spawn<PrSetup>(0);
  rt.inject<&PrSetup::on_go>(setup, packed, params.rebalance_after_round,
                             std::move(w).take());
  rt.run();

  PageRankResult out;
  out.report = rt.report();
  out.makespan_ns = out.report.makespan_ns;
  out.round_ns = PrCoordinator::round_ns;
  out.migrations = PrCoordinator::moves;
  out.stats = out.report.total;
  out.dead_letters = rt.dead_letters();

  if (params.verify) {
    std::vector<double> got(params.vertices, 0.0);
    std::size_t seen = 0;
    for (NodeId n = 0; n < rt.nodes(); ++n) {
      rt.kernel(n).for_each_actor([&](SlotId, ActorRecord& rec) {
        if (auto* p = dynamic_cast<Partition*>(rec.impl.get())) {
          const auto& ranks = p->ranks();
          for (std::size_t i = 0; i < ranks.size(); ++i) {
            got[p->lo() + i] = ranks[i];
          }
          seen += ranks.size();
        }
      });
    }
    HAL_ASSERT(seen == params.vertices);
    const auto ref =
        pagerank_seq(params.vertices, src, dst, params.rounds);
    double err = 0.0;
    for (std::uint32_t v = 0; v < params.vertices; ++v) {
      err = std::max(err, std::abs(got[v] - ref[v]));
    }
    out.max_error = err;
  }
  return out;
}

}  // namespace hal::apps
