// Distributed PageRank over a skewed sparse graph — the "future work"
// evaluation the paper asks for.
//
// Paper §9: "we need to do more thorough evaluation with a wider range of
// realistic applications to find potential performance bottlenecks in
// irregular, sparse computations." This application is that evaluation:
//  * the graph is power-law-skewed, so contiguous vertex partitions have
//    wildly different edge counts — a static placement is never balanced;
//  * partitions are group members (grpnew) addressed by index, and they
//    remain fully location-transparent: after the first measured rounds, a
//    coordinator migrates heavy partitions off overloaded nodes, and every
//    member-indexed send keeps working through the name service — no
//    communication code changes, which is precisely the flexibility the
//    paper argues for;
//  * synchronization is purely local: contributions are tagged by round and
//    applied when every in-peer's end-of-round marker has arrived
//    (the same buffered-step pattern as the systolic matmul).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "obs/run_report.hpp"
#include "runtime/config.hpp"

namespace hal::apps {

struct PageRankParams {
  std::uint32_t vertices = 1024;
  std::uint32_t edges_per_vertex = 8;  ///< average; distribution is skewed
  std::uint32_t rounds = 8;
  NodeId nodes = 4;
  std::uint32_t partitions_per_node = 2;
  /// Rebalance by migrating heavy partitions after this round (0 = never).
  std::uint32_t rebalance_after_round = 0;
  MachineKind machine = MachineKind::kSim;
  /// MnMachine worker-pool size (0 = auto); ignored by the other machines.
  std::uint32_t mn_workers = 0;
  am::CostModel costs = am::CostModel::cm5();
  std::uint64_t seed = 0x9a9e;
  bool verify = true;
};

struct PageRankResult {
  SimTime makespan_ns = 0;
  double max_error = 0.0;  ///< vs the sequential reference
  /// Virtual duration of each round, measured at the coordinator (round
  /// start → all partitions reported); shows the rebalancing effect.
  std::vector<SimTime> round_ns;
  std::uint64_t migrations = 0;
  StatBlock stats;  ///< == report.total
  std::uint64_t dead_letters = 0;
  obs::RunReport report;  ///< full structured results
};

PageRankResult run_pagerank(const PageRankParams& params);

/// Sequential reference (same synchronous-update schedule).
std::vector<double> pagerank_seq(std::uint32_t vertices,
                                 const std::vector<std::uint32_t>& edge_src,
                                 const std::vector<std::uint32_t>& edge_dst,
                                 std::uint32_t rounds);

/// Deterministic skewed graph (self-loops added to dangling vertices).
void make_skewed_graph(std::uint32_t vertices, std::uint32_t avg_degree,
                       std::uint64_t seed,
                       std::vector<std::uint32_t>& edge_src,
                       std::vector<std::uint32_t>& edge_dst);

}  // namespace hal::apps
