#include "apps/fib.hpp"

#include "runtime/api.hpp"

namespace hal::apps {
namespace {

/// Virtual work units charged per inlined call (compare + add + recursion
/// bookkeeping on a 33 MHz Sparc).
constexpr std::uint64_t kWorkPerCall = 4;

struct InlineFib {
  std::uint64_t value = 0;
  std::uint64_t calls = 0;
};

InlineFib fib_inline(std::uint64_t n) {
  if (n < 2) return {n, 1};
  const InlineFib a = fib_inline(n - 1);
  const InlineFib b = fib_inline(n - 2);
  return {a.value + b.value, a.calls + b.calls + 1};
}

/// One actor per call above the cutoff. The actor spawns its two children,
/// wires their replies into a join continuation that forwards the sum to
/// its own reply slot, and terminates — the continuation outlives it, just
/// like the compiled HAL code the paper describes (§6.2).
class FibActor : public ActorBase {
 public:
  void on_compute(Context& ctx, std::uint64_t n, std::uint64_t cutoff,
                  ContRef reply) {
    if (n < cutoff) {
      const InlineFib r = fib_inline(n);
      ctx.charge_work(r.calls * kWorkPerCall);
      ctx.reply_to(reply, r.value);
      ctx.terminate();
      return;
    }
    ctx.charge_work(kWorkPerCall);
    const ContRef join = ctx.make_join(
        2, [reply](Context& jc, const JoinView& v) {
          jc.kernel().reply_to(reply, v.word(0) + v.word(1));
        });
    const MailAddress left = ctx.create<FibActor>();
    const MailAddress right = ctx.create<FibActor>();
    // Unprocessed children are the stealable work units: the receiver-
    // initiated balancer migrates them (actor + queued compute message).
    ctx.set_relocatable(left, true);
    ctx.set_relocatable(right, true);
    ctx.send<&FibActor::on_compute>(left, n - 1, cutoff, join.at(0));
    ctx.send<&FibActor::on_compute>(right, n - 2, cutoff, join.at(1));
    ctx.terminate();
  }
  HAL_BEHAVIOR(FibActor, &FibActor::on_compute)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter&) const override {}  // stateless
  void unpack_state(ByteReader&) override {}
};

/// Seeds the computation and collects the final value.
class FibRoot : public ActorBase {
 public:
  void on_start(Context& ctx, std::uint64_t n, std::uint64_t cutoff) {
    const ContRef join =
        ctx.make_join(1, [self = ctx.self()](Context& jc, const JoinView& v) {
          jc.send<&FibRoot::on_done>(self, v.word(0));
        });
    const MailAddress top = ctx.create<FibActor>();
    ctx.set_relocatable(top, true);
    ctx.send<&FibActor::on_compute>(top, n, cutoff, join.at(0));
  }
  void on_done(Context&, std::uint64_t value) { result = value; }
  HAL_BEHAVIOR(FibRoot, &FibRoot::on_start, &FibRoot::on_done)

  std::uint64_t result = 0;
};

}  // namespace

SimTime fib_sequential_virtual_ns(unsigned n, const am::CostModel& costs) {
  const std::uint64_t calls = fib_inline(n).calls;
  return static_cast<SimTime>(static_cast<double>(calls * kWorkPerCall) *
                              costs.work_ns);
}

FibResult run_fib(const FibParams& params) {
  RuntimeConfig cfg;
  cfg.nodes = params.nodes;
  cfg.machine = params.machine;
  cfg.mn_workers = params.mn_workers;
  cfg.load_balancing = params.load_balancing;
  cfg.costs = params.costs;
  cfg.seed = params.seed;
  cfg.faults = params.faults;
  Runtime rt(cfg);
  rt.load<FibActor>();
  rt.load<FibRoot>();
  const MailAddress root = rt.spawn<FibRoot>(0);
  rt.inject<&FibRoot::on_start>(
      root, std::uint64_t{params.n},
      std::uint64_t{params.cutoff < 2 ? 2 : params.cutoff});
  rt.run();
  FibResult out;
  const FibRoot* r = rt.find_behavior<FibRoot>(root);
  out.value = r == nullptr ? 0 : r->result;
  out.report = rt.report();
  out.makespan_ns = out.report.makespan_ns;
  out.stats = out.report.total;
  out.dead_letters = rt.dead_letters();
  return out;
}

}  // namespace hal::apps
