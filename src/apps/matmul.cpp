#include "apps/matmul.hpp"

#include <atomic>
#include <map>

#include "baseline/seq_kernels.hpp"
#include "runtime/api.hpp"

namespace hal::apps {
namespace {

/// One cell of the q×q systolic grid, member index r*q + c.
class CannonCell : public ActorBase {
 public:
  void on_init(Context& ctx, std::uint64_t n, std::uint64_t q,
               std::uint32_t index, GroupId gid, Bytes data) {
    n_ = n;
    q_ = q;
    index_ = index;
    gid_ = gid;
    b_ = n / q;
    row_ = index / q;
    col_ = index % q;
    ByteReader r{std::span<const std::byte>{data}};
    a_ = r.read_vector<double>();
    bblk_ = r.read_vector<double>();
    c_.assign(b_ * b_, 0.0);
    initialized_ = true;
    // Track when the whole grid is loaded (distribution end, for the
    // paper-style compute-phase MFlops).
    SimTime prev = last_init_done.load(std::memory_order_relaxed);
    const SimTime now = ctx.now();
    while (prev < now && !last_init_done.compare_exchange_weak(
                             prev, now, std::memory_order_relaxed)) {
    }

    // Initial skew (the "skewing the blocks" phase): A(r,c) moves left by r
    // columns, B(r,c) moves up by c rows; both are tagged step 0.
    send_a(ctx, static_cast<std::uint32_t>((col_ + q_ - row_) % q_), 0,
           std::move(a_));
    send_b(ctx, static_cast<std::uint32_t>((row_ + q_ - col_) % q_), 0,
           std::move(bblk_));
    a_.clear();
    bblk_.clear();
  }

  void on_a(Context& ctx, std::uint64_t step, Bytes data) {
    ByteReader r{std::span<const std::byte>{data}};
    a_bufs_.emplace(step, r.read_vector<double>());
    process_ready(ctx);
  }

  void on_b(Context& ctx, std::uint64_t step, Bytes data) {
    ByteReader r{std::span<const std::byte>{data}};
    b_bufs_.emplace(step, r.read_vector<double>());
    process_ready(ctx);
  }

  HAL_BEHAVIOR(CannonCell, &CannonCell::on_init, &CannonCell::on_a,
               &CannonCell::on_b)

  /// Blocks racing ahead of initialization park in the pending queue.
  bool method_enabled(Selector s) const override {
    if (s == sel<&CannonCell::on_init>()) return !initialized_;
    return initialized_;
  }

  const std::vector<double>& result() const { return c_; }
  std::uint64_t row() const { return row_; }
  std::uint64_t column() const { return col_; }
  std::uint64_t steps_done() const { return step_; }
  inline static std::atomic<SimTime> last_init_done{0};

 private:
  /// Multiply every step whose A and B blocks have both arrived; forward
  /// the consumed blocks one hop (left / up) tagged for the next step.
  /// Purely local synchronization — a neighbour may run a step ahead.
  void process_ready(Context& ctx) {
    while (true) {
      auto ia = a_bufs_.find(step_);
      auto ib = b_bufs_.find(step_);
      if (ia == a_bufs_.end() || ib == b_bufs_.end()) return;
      std::vector<double> a = std::move(ia->second);
      std::vector<double> bb = std::move(ib->second);
      a_bufs_.erase(ia);
      b_bufs_.erase(ib);
      baseline::matmul_block(a.data(), bb.data(), c_.data(), b_);
      ctx.charge_flops(2 * b_ * b_ * b_);
      ++step_;
      if (step_ < q_) {
        send_a(ctx, static_cast<std::uint32_t>((col_ + q_ - 1) % q_), step_,
               std::move(a));
        send_b(ctx, static_cast<std::uint32_t>((row_ + q_ - 1) % q_), step_,
               std::move(bb));
      }
    }
  }

  void send_a(Context& ctx, std::uint32_t dst_col, std::uint64_t step,
              std::vector<double> block) {
    ByteWriter w;
    w.write_span<double>(block);
    ctx.send_member<&CannonCell::on_a>(
        gid_, static_cast<std::uint32_t>(row_ * q_ + dst_col), step,
        std::move(w).take());
  }

  void send_b(Context& ctx, std::uint32_t dst_row, std::uint64_t step,
              std::vector<double> block) {
    ByteWriter w;
    w.write_span<double>(block);
    ctx.send_member<&CannonCell::on_b>(
        gid_, static_cast<std::uint32_t>(dst_row * q_ + col_), step,
        std::move(w).take());
  }

  std::uint64_t n_ = 0, q_ = 0, b_ = 0, row_ = 0, col_ = 0;
  std::uint32_t index_ = 0;
  GroupId gid_{};
  bool initialized_ = false;
  std::uint64_t step_ = 0;
  std::vector<double> a_, bblk_, c_;
  std::map<std::uint64_t, std::vector<double>> a_bufs_, b_bufs_;
};

class CannonSetup : public ActorBase {
 public:
  void on_go(Context& ctx, std::uint64_t n, std::uint64_t q, Bytes matrices) {
    const auto cells = static_cast<std::uint32_t>(q * q);
    gid = ctx.grpnew<CannonCell>(cells);
    ByteReader r{std::span<const std::byte>{matrices}};
    const auto a = r.read_vector<double>();
    const auto bm = r.read_vector<double>();
    const std::uint64_t b = n / q;
    for (std::uint32_t idx = 0; idx < cells; ++idx) {
      const std::uint64_t row = idx / q, col = idx % q;
      ByteWriter w;
      w.write_span<double>(slice_block(a, n, b, row, col));
      w.write_span<double>(slice_block(bm, n, b, row, col));
      ctx.send_member<&CannonCell::on_init>(gid, idx, n, q, idx, gid,
                                            std::move(w).take());
    }
  }
  HAL_BEHAVIOR(CannonSetup, &CannonSetup::on_go)
  inline static GroupId gid{};

 private:
  static std::vector<double> slice_block(const std::vector<double>& m,
                                         std::uint64_t n, std::uint64_t b,
                                         std::uint64_t row,
                                         std::uint64_t col) {
    std::vector<double> out(b * b);
    for (std::uint64_t i = 0; i < b; ++i) {
      for (std::uint64_t j = 0; j < b; ++j) {
        out[i * b + j] = m[(row * b + i) * n + (col * b + j)];
      }
    }
    return out;
  }
};

}  // namespace

MatmulResult run_matmul(const MatmulParams& params) {
  const std::uint32_t q = params.grid;
  HAL_ASSERT(q >= 1 && params.n % q == 0);
  RuntimeConfig cfg;
  cfg.nodes = q * q;
  cfg.machine = params.machine;
  cfg.mn_workers = params.mn_workers;
  cfg.costs = params.costs;
  cfg.seed = params.seed;
  Runtime rt(cfg);
  rt.load<CannonCell>();
  rt.load<CannonSetup>();

  const auto a = baseline::make_dense(params.n, params.seed);
  const auto b = baseline::make_dense(params.n, params.seed ^ 0xffff);
  ByteWriter w;
  w.write_span<double>(a);
  w.write_span<double>(b);

  CannonCell::last_init_done.store(0, std::memory_order_relaxed);
  const MailAddress setup = rt.spawn<CannonSetup>(0);
  rt.inject<&CannonSetup::on_go>(setup, std::uint64_t{params.n},
                                 std::uint64_t{q}, std::move(w).take());
  rt.run();

  MatmulResult out;
  out.report = rt.report();
  out.makespan_ns = out.report.makespan_ns;
  out.distribution_ns = CannonCell::last_init_done.load();
  out.stats = out.report.total;
  out.dead_letters = rt.dead_letters();
  const double flops = 2.0 * static_cast<double>(params.n) *
                       static_cast<double>(params.n) *
                       static_cast<double>(params.n);
  auto rate = [&](SimTime ns) {
    return ns == 0 ? 0.0 : flops / (static_cast<double>(ns) / 1e9) / 1e6;
  };
  out.mflops = rate(out.makespan_ns);
  out.mflops_compute =
      out.makespan_ns > out.distribution_ns
          ? rate(out.makespan_ns - out.distribution_ns)
          : out.mflops;

  if (params.verify) {
    const std::uint64_t blk = params.n / q;
    std::vector<double> c(params.n * params.n, 0.0);
    std::uint64_t total_steps = 0;
    for (NodeId node = 0; node < rt.nodes(); ++node) {
      const GroupInfo* g = rt.kernel(node).groups().find(CannonSetup::gid);
      HAL_ASSERT(g != nullptr);
      for (const auto& [idx, addr] : g->members) {
        (void)idx;
        const auto* cell = rt.find_behavior<CannonCell>(addr);
        HAL_ASSERT(cell != nullptr);
        total_steps += cell->steps_done();
        const auto& blk_data = cell->result();
        for (std::uint64_t i = 0; i < blk; ++i) {
          for (std::uint64_t j = 0; j < blk; ++j) {
            c[(cell->row() * blk + i) * params.n + (cell->column() * blk + j)] =
                blk_data[i * blk + j];
          }
        }
      }
    }
    HAL_ASSERT(total_steps == static_cast<std::uint64_t>(q) * q * q);
    const auto ref = baseline::matmul_seq(a, b, params.n);
    out.max_error = baseline::max_abs_diff(c, ref);
  }
  return out;
}

}  // namespace hal::apps
