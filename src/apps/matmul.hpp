// Systolic dense matrix multiplication (paper §7.3, Table 5).
//
// Cannon's algorithm [Kumar et al. 94]: "first skewing the blocks within a
// square processor grid, and then cyclically shifting the blocks at each
// step. No global synchronization is used in the implementation. Instead,
// per actor basis local synchronization is used." One actor per grid cell
// holds an A, B and C block; blocks travel as bulk transfers (the
// three-phase protocol with minimal flow control); a cell multiplies step s
// as soon as both step-s blocks are present — neighbours may already be a
// step ahead, which is exactly the software pipelining the paper relies on.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "obs/run_report.hpp"
#include "runtime/config.hpp"

namespace hal::apps {

struct MatmulParams {
  std::size_t n = 64;       ///< matrix dimension (divisible by grid)
  std::uint32_t grid = 2;   ///< q: q×q processor grid on q² nodes
  MachineKind machine = MachineKind::kSim;
  /// MnMachine worker-pool size (0 = auto); ignored by the other machines.
  std::uint32_t mn_workers = 0;
  am::CostModel costs = am::CostModel::cm5();
  std::uint64_t seed = 0x3a7;
  bool verify = true;
};

struct MatmulResult {
  SimTime makespan_ns = 0;
  /// When the last cell finished initialization — everything before this is
  /// the initial data distribution from the seeding node, which the paper's
  /// MFlops figure does not charge to the algorithm.
  SimTime distribution_ns = 0;
  double max_error = 0.0;
  double mflops = 0.0;          ///< 2n³ / total simulated time
  double mflops_compute = 0.0;  ///< 2n³ / (time after distribution) — the
                                ///< Table 5 metric
  StatBlock stats;  ///< == report.total
  std::uint64_t dead_letters = 0;
  obs::RunReport report;  ///< full structured results
};

MatmulResult run_matmul(const MatmulParams& params);

}  // namespace hal::apps
