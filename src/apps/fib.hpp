// Actor Fibonacci (paper §7.2, Table 4).
//
// "Although the Fibonacci number generator is a very simple program, it is
// extremely concurrent: executing the Fibonacci of 33 results in the
// creation of 11,405,773 actors. Moreover, its computation tree has a great
// deal of load imbalance." Each call is an actor; call/return is compiled
// into join continuations; the computation tree is seeded on node 0 and
// spread by receiver-initiated random polling when load balancing is on.
//
// `cutoff` models the compiler's granularity control: subtrees with
// n < cutoff execute inline (their work is charged to the virtual clock),
// exactly like the paper's "actor creations were optimized away" for the
// purely functional leaves. cutoff = 2 (minimum) creates an actor per call.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "obs/run_report.hpp"
#include "runtime/config.hpp"

namespace hal::apps {

struct FibParams {
  unsigned n = 22;
  /// Subtrees below this size run inline in the parent (compiler
  /// granularity control). Minimum 2.
  unsigned cutoff = 2;
  NodeId nodes = 4;
  bool load_balancing = true;
  MachineKind machine = MachineKind::kSim;
  /// MnMachine worker-pool size (0 = auto); ignored by the other machines.
  std::uint32_t mn_workers = 0;
  am::CostModel costs = am::CostModel::cm5();
  std::uint64_t seed = 0x715b;
  /// Wire fault injection (bench/ablation_faults: throughput vs loss rate).
  am::FaultConfig faults;
};

struct FibResult {
  std::uint64_t value = 0;
  SimTime makespan_ns = 0;  ///< == report.makespan_ns (kept for convenience)
  StatBlock stats;          ///< == report.total
  std::uint64_t dead_letters = 0;
  obs::RunReport report;    ///< full structured results
};

/// Build a runtime, run fib(n), and return value + measurements.
FibResult run_fib(const FibParams& params);

/// What a purely sequential fib(n) would cost on one simulated node (the
/// cost model's work charge for every call) — the Table 4 "optimized C on
/// the same Sparc" comparator, in virtual ns.
SimTime fib_sequential_virtual_ns(unsigned n, const am::CostModel& costs);

}  // namespace hal::apps
