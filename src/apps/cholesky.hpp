// Parallel column Cholesky factorization (paper §2.2, Table 1).
//
// The paper uses Cholesky decomposition to compare local against global
// synchronization. Four variants, as in Table 1:
//   * BP — software-pipelined, local synchronization only, block-mapped
//     columns: iteration k+1 starts before iteration k has completed.
//   * CP — same, cyclic column mapping (better balance on the shrinking
//     trailing matrix).
//   * Seq — globally synchronized: a coordinator barriers every iteration;
//     finished columns travel point-to-point.
//   * Bcast — globally synchronized; finished columns travel down a relay
//     tree (the broadcast-flavoured variant).
// Local synchronization is per-owner update counting: column j's cdiv fires
// when its j cmod updates have arrived — no barrier anywhere. Columns are
// shipped as bulk payloads, so the three-phase protocol and the §6.5 flow
// control are on the critical path, exactly the situation where the paper
// observed pipelining break without flow control.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "obs/run_report.hpp"
#include "runtime/config.hpp"

namespace hal::apps {

enum class CholVariant : std::uint8_t {
  kPipelined,    // BP/CP depending on mapping
  kGlobalSeq,    // barrier per iteration, point-to-point columns
  kGlobalBcast,  // barrier per iteration, relay-tree columns
};

enum class ColMapping : std::uint8_t {
  kBlock,   // owner(j) = j / ceil(n/P)
  kCyclic,  // owner(j) = j mod P
};

struct CholeskyParams {
  std::size_t n = 96;
  NodeId nodes = 4;
  CholVariant variant = CholVariant::kPipelined;
  ColMapping mapping = ColMapping::kCyclic;
  MachineKind machine = MachineKind::kSim;
  /// MnMachine worker-pool size (0 = auto); ignored by the other machines.
  std::uint32_t mn_workers = 0;
  am::CostModel costs = am::CostModel::cm5();
  std::uint64_t seed = 0xc401;
  bool flow_control = true;  // ablation B toggles this
  bool verify = true;        // check against the sequential factorization
};

struct CholeskyResult {
  SimTime makespan_ns = 0;  ///< == report.makespan_ns (kept for convenience)
  double max_error = 0.0;  // vs cholesky_seq (0 when verify == false)
  StatBlock stats;          ///< == report.total
  std::uint64_t dead_letters = 0;
  obs::RunReport report;    ///< full structured results
};

CholeskyResult run_cholesky(const CholeskyParams& params);

/// Column owner under the given mapping.
NodeId cholesky_owner(std::size_t column, std::size_t n, NodeId nodes,
                      ColMapping mapping);

}  // namespace hal::apps
