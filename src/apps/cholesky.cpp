#include "apps/cholesky.hpp"

#include <cmath>
#include <map>
#include <set>

#include "am/mst.hpp"
#include "baseline/seq_kernels.hpp"
#include "runtime/api.hpp"

namespace hal::apps {
namespace {

constexpr std::uint64_t pack_cfg(CholVariant v, ColMapping m) {
  return (static_cast<std::uint64_t>(v) << 8) | static_cast<std::uint64_t>(m);
}
constexpr CholVariant cfg_variant(std::uint64_t w) {
  return static_cast<CholVariant>((w >> 8) & 0xff);
}
constexpr ColMapping cfg_mapping(std::uint64_t w) {
  return static_cast<ColMapping>(w & 0xff);
}

class CholCoord;

/// Owns a subset of columns; enforces ordering purely through local
/// synchronization (update counting + constraint-guarded methods).
class CholOwner : public ActorBase {
 public:
  // --- Messages -------------------------------------------------------------
  /// Configuration + this owner's columns (bulk payload).
  void on_init(Context& ctx, std::uint64_t cfg, std::uint64_t n,
               std::uint32_t index, GroupId gid, MailAddress coord,
               Bytes data) {
    variant_ = cfg_variant(cfg);
    mapping_ = cfg_mapping(cfg);
    n_ = n;
    index_ = index;
    gid_ = gid;
    coord_ = coord;
    nodes_ = static_cast<NodeId>(ctx.node_count());
    ByteReader r{std::span<const std::byte>{data}};
    const auto count = r.read<std::uint32_t>();
    for (std::uint32_t c = 0; c < count; ++c) {
      const auto j = r.read<std::uint64_t>();
      cols_.emplace(j, r.read_vector<double>());
      updates_[j] = 0;
    }
    initialized_ = true;
    if (variant_ == CholVariant::kPipelined) {
      // Column 0 needs no updates: its owner starts the pipeline at once.
      try_finalize(ctx);
    }
  }

  /// Pipelined variant: a finished column arrives from a peer.
  void on_column(Context& ctx, std::uint64_t k, Bytes data) {
    apply_column(ctx, k, data);
    try_finalize(ctx);
  }

  /// Global variants: the coordinator hands this owner iteration k.
  void on_do_step(Context& ctx, std::uint64_t k) {
    cdiv(ctx, k);
    const Bytes packed = pack_column(k);
    if (variant_ == CholVariant::kGlobalSeq) {
      for (std::uint32_t m = 0; m < nodes_; ++m) {
        if (m == index_) continue;
        ctx.send_member<&CholOwner::on_column_sync>(gid_, m, k,
                                                    std::uint64_t{index_},
                                                    packed);
      }
    } else {
      relay_tree(ctx, k, index_, packed);
    }
    apply_column(ctx, k, packed);
    ack(ctx, k);
  }

  /// Global variants: apply every update of iteration k, then report to the
  /// barrier. Bcast relays down the member-index tree first.
  void on_column_sync(Context& ctx, std::uint64_t k, std::uint64_t root,
                      Bytes data) {
    if (variant_ == CholVariant::kGlobalBcast) {
      relay_tree(ctx, k, static_cast<std::uint32_t>(root), data);
    }
    apply_column(ctx, k, data);
    ack(ctx, k);
  }

  HAL_BEHAVIOR(CholOwner, &CholOwner::on_init, &CholOwner::on_column,
               &CholOwner::on_do_step, &CholOwner::on_column_sync)

  /// Local synchronization constraint (§6.1): column traffic that races
  /// ahead of initialization parks in the pending queue.
  bool method_enabled(Selector s) const override {
    if (s == sel<&CholOwner::on_init>()) return !initialized_;
    return initialized_;
  }

  const std::map<std::uint64_t, std::vector<double>>& columns() const {
    return cols_;
  }

 private:
  // --- Numerics ----------------------------------------------------------------
  /// cdiv(k): scale column k by the square root of its diagonal.
  void cdiv(Context& ctx, std::uint64_t k) {
    auto it = cols_.find(k);
    HAL_ASSERT(it != cols_.end());
    std::vector<double>& col = it->second;
    const double d = std::sqrt(col[k]);
    col[k] = d;
    for (std::uint64_t i = k + 1; i < n_; ++i) col[i] /= d;
    ctx.charge_flops(n_ - k + 16);  // divides + one sqrt
    finalized_.insert(k);
  }

  /// cmod(j, k): subtract the rank-1 contribution of finished column k.
  void cmod(Context& ctx, std::uint64_t j, const double* colk,
            std::uint64_t base) {
    std::vector<double>& colj = cols_.at(j);
    const double ljk = colk[j - base];
    for (std::uint64_t i = j; i < n_; ++i) {
      colj[i] -= colk[i - base] * ljk;
    }
    ctx.charge_flops(2 * (n_ - j));
    ++updates_[j];
  }

  /// Apply finished column k to every owned, unfinalized column j > k.
  void apply_column(Context& ctx, std::uint64_t k, const Bytes& data) {
    ByteReader r{std::span<const std::byte>{data}};
    const auto base = r.read<std::uint64_t>();
    HAL_ASSERT(base == k);
    const auto colk = r.read_vector<double>();
    for (auto& [j, col] : cols_) {
      (void)col;
      if (j > k && !finalized_.contains(j)) {
        cmod(ctx, j, colk.data(), base);
      }
    }
  }

  /// Pipelined: finalize every owned column whose updates are complete —
  /// iteration k+1 proceeds while iteration k is still in flight elsewhere.
  void try_finalize(Context& ctx) {
    for (auto& [j, col] : cols_) {
      (void)col;
      if (finalized_.contains(j) || updates_[j] != j) continue;
      cdiv(ctx, j);
      const Bytes packed = pack_column(j);
      for (std::uint32_t m = 0; m < nodes_; ++m) {
        if (m == index_) continue;
        ctx.send_member<&CholOwner::on_column>(gid_, m, j, packed);
      }
      apply_column(ctx, j, packed);
      // Finalizing j may have completed a later owned column; rescan.
      try_finalize(ctx);
      return;
    }
  }

  /// Rows k..n-1 of column k, prefixed by the base offset.
  Bytes pack_column(std::uint64_t k) const {
    const std::vector<double>& col = cols_.at(k);
    ByteWriter w;
    w.write<std::uint64_t>(k);
    w.write_span<double>(std::span(col.data() + k, n_ - k));
    return std::move(w).take();
  }

  /// Relay down the binomial tree over member indices rooted at `root`.
  void relay_tree(Context& ctx, std::uint64_t k, std::uint32_t root,
                  const Bytes& data) {
    am::mst_for_each_child(index_, root, nodes_, [&](NodeId child) {
      ctx.send_member<&CholOwner::on_column_sync>(
          gid_, static_cast<std::uint32_t>(child), k, std::uint64_t{root},
          data);
    });
  }

  void ack(Context& ctx, std::uint64_t k);

  CholVariant variant_ = CholVariant::kPipelined;
  ColMapping mapping_ = ColMapping::kCyclic;
  std::uint64_t n_ = 0;
  std::uint32_t index_ = 0;
  NodeId nodes_ = 0;
  GroupId gid_{};
  MailAddress coord_{};
  bool initialized_ = false;
  std::map<std::uint64_t, std::vector<double>> cols_;
  std::map<std::uint64_t, std::uint64_t> updates_;
  std::set<std::uint64_t> finalized_;
};

/// Barrier coordinator for the globally synchronized variants: iteration
/// k+1 starts only after all P owners acknowledged iteration k.
class CholCoord : public ActorBase {
 public:
  void on_begin(Context& ctx, std::uint64_t n, std::uint64_t cfg,
                GroupId gid) {
    n_ = n;
    cfg_ = cfg;
    gid_ = gid;
    start_step(ctx, 0);
  }
  void on_ack(Context& ctx, std::uint64_t k) {
    HAL_ASSERT(k == step_);
    if (++acks_ < ctx.node_count()) return;
    acks_ = 0;
    if (step_ + 1 < n_) start_step(ctx, step_ + 1);
  }
  HAL_BEHAVIOR(CholCoord, &CholCoord::on_begin, &CholCoord::on_ack)

 private:
  void start_step(Context& ctx, std::uint64_t k) {
    step_ = k;
    const NodeId owner = cholesky_owner(
        k, n_, static_cast<NodeId>(ctx.node_count()), cfg_mapping(cfg_));
    ctx.send_member<&CholOwner::on_do_step>(gid_,
                                            static_cast<std::uint32_t>(owner),
                                            k);
  }

  std::uint64_t n_ = 0;
  std::uint64_t cfg_ = 0;
  GroupId gid_{};
  std::uint64_t step_ = 0;
  std::uint32_t acks_ = 0;
};

void CholOwner::ack(Context& ctx, std::uint64_t k) {
  ctx.send<&CholCoord::on_ack>(coord_, k);
}

/// Distributes the matrix and kicks the computation off.
class CholSetup : public ActorBase {
 public:
  void on_go(Context& ctx, std::uint64_t cfg, std::uint64_t n, Bytes matrix) {
    const auto nodes = static_cast<NodeId>(ctx.node_count());
    gid = ctx.grpnew<CholOwner>(nodes);
    const MailAddress coord = ctx.create<CholCoord>();
    ByteReader r{std::span<const std::byte>{matrix}};
    const auto a = r.read_vector<double>();
    HAL_ASSERT(a.size() == n * n);

    for (std::uint32_t m = 0; m < nodes; ++m) {
      ByteWriter w;
      std::vector<std::uint64_t> owned;
      for (std::uint64_t j = 0; j < n; ++j) {
        if (cholesky_owner(j, n, nodes, cfg_mapping(cfg)) == m) {
          owned.push_back(j);
        }
      }
      w.write(static_cast<std::uint32_t>(owned.size()));
      for (const std::uint64_t j : owned) {
        w.write(j);
        std::vector<double> col(n);
        for (std::uint64_t i = 0; i < n; ++i) col[i] = a[i * n + j];
        w.write_span<double>(col);
      }
      ctx.send_member<&CholOwner::on_init>(gid, m, cfg, n, m, gid, coord,
                                           std::move(w).take());
    }
    if (cfg_variant(cfg) != CholVariant::kPipelined) {
      ctx.send<&CholCoord::on_begin>(coord, n, cfg, gid);
    }
  }
  HAL_BEHAVIOR(CholSetup, &CholSetup::on_go)
  inline static GroupId gid{};
};

}  // namespace

NodeId cholesky_owner(std::size_t column, std::size_t n, NodeId nodes,
                      ColMapping mapping) {
  if (mapping == ColMapping::kCyclic) {
    return static_cast<NodeId>(column % nodes);
  }
  const std::size_t per = (n + nodes - 1) / nodes;
  const auto owner = static_cast<NodeId>(column / per);
  return owner < nodes ? owner : nodes - 1;
}

CholeskyResult run_cholesky(const CholeskyParams& params) {
  HAL_ASSERT(params.n >= params.nodes);
  RuntimeConfig cfg;
  cfg.nodes = params.nodes;
  cfg.machine = params.machine;
  cfg.mn_workers = params.mn_workers;
  cfg.costs = params.costs;
  cfg.seed = params.seed;
  cfg.flow_control = params.flow_control;
  Runtime rt(cfg);
  rt.load<CholOwner>();
  rt.load<CholCoord>();
  rt.load<CholSetup>();

  const auto a = baseline::make_spd(params.n, params.seed);
  ByteWriter w;
  w.write_span<double>(a);

  const MailAddress setup = rt.spawn<CholSetup>(0);
  rt.inject<&CholSetup::on_go>(setup,
                               pack_cfg(params.variant, params.mapping),
                               std::uint64_t{params.n}, std::move(w).take());
  rt.run();

  CholeskyResult out;
  out.report = rt.report();
  out.makespan_ns = out.report.makespan_ns;
  out.stats = out.report.total;
  out.dead_letters = rt.dead_letters();

  if (params.verify) {
    // Reassemble L from the owners and compare with the sequential kernel.
    std::vector<double> l(params.n * params.n, 0.0);
    for (NodeId node = 0; node < params.nodes; ++node) {
      Kernel& k = rt.kernel(node);
      const GroupInfo* g = k.groups().find(CholSetup::gid);
      HAL_ASSERT(g != nullptr);
      for (const auto& [idx, addr] : g->members) {
        (void)idx;
        const auto* owner = rt.find_behavior<CholOwner>(addr);
        HAL_ASSERT(owner != nullptr);
        for (const auto& [j, col] : owner->columns()) {
          for (std::size_t i = j; i < params.n; ++i) {
            l[i * params.n + j] = col[i];
          }
        }
      }
    }
    auto ref = a;
    baseline::cholesky_seq(ref, params.n);
    out.max_error = baseline::max_abs_diff(l, ref);
  }
  return out;
}

}  // namespace hal::apps
