// Locality descriptors (§4.1, §4.3).
//
// A descriptor records the runtime's *best guess* about an actor's current
// locality. If the actor is local it references the actor directly; if
// remote it names the best-guess node and, once the cache-fill response has
// arrived, the descriptor's slot on that node — letting subsequent sends
// skip the receiving-side name-table lookup entirely. When an actor migrates
// away, its descriptor on the old node becomes a forwarding hop; chains of
// such hops are collapsed by the FIR protocol (runtime/node_manager).
#pragma once

#include "common/slot_pool.hpp"
#include "common/types.hpp"

namespace hal {

struct LocalityDescriptor {
  enum class Kind : std::uint8_t {
    kLocal,   ///< actor lives on this node; `actor` is its slot
    kRemote,  ///< best guess: actor is on `remote_node`
  };

  Kind kind = Kind::kRemote;

  /// kLocal: the actor's slot in this node's actor pool.
  SlotId actor{};

  /// kRemote: best-guess node for the actor.
  NodeId remote_node = kInvalidNode;

  /// kRemote: the descriptor's slot on remote_node, once cached (invalid
  /// until the cache-fill or FIR response arrives). With this cached, the
  /// sender transmits the receiving-side descriptor address in the message
  /// and the receiving node manager dereferences it in O(1).
  SlotId remote_desc{};

  /// Migration epoch of the location information (the "migration history"
  /// of §4.3, reduced to a counter): an actor's epoch is its number of
  /// completed migrations, and every location update carries the epoch it
  /// describes. Updates with an older epoch are discarded, so forwarding
  /// pointers never regress — which is what guarantees the FIR chase cannot
  /// cycle even under arbitrarily stale, reordered updates.
  std::uint32_t epoch = 0;

  /// An FIR (forwarding information request) naming this actor is in flight
  /// from this node; further messages park until it resolves (§4.3).
  bool fir_outstanding = false;

  bool local() const noexcept { return kind == Kind::kLocal; }

  static LocalityDescriptor make_local(SlotId actor_slot,
                                       std::uint32_t epoch = 0) noexcept {
    LocalityDescriptor d;
    d.kind = Kind::kLocal;
    d.actor = actor_slot;
    d.epoch = epoch;
    return d;
  }

  static LocalityDescriptor make_remote(NodeId node, SlotId remote_desc = {},
                                        std::uint32_t epoch = 0) noexcept {
    LocalityDescriptor d;
    d.kind = Kind::kRemote;
    d.remote_node = node;
    d.remote_desc = remote_desc;
    d.epoch = epoch;
    return d;
  }
};

}  // namespace hal
