// Per-node name table (§4.2).
//
// "Each kernel maintains its own (local) name table, and name translation
// from a mail address to the location information is performed by consulting
// the local name table only" — no inter-processor communication on the
// lookup path. Consistency is deliberately relaxed: entries for remote
// actors are best guesses, corrected lazily by the FIR protocol when a stale
// guess is exercised.
//
// Resolution has two tiers, reproducing the paper's "real address" trick:
//   * home-node fast path — on the address's home node, the mail address
//     itself contains the descriptor slot: O(1) pool dereference, no hash;
//   * foreign path — a hash lookup finds this node's own descriptor caching
//     the actor's location (allocated on first send).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/stats.hpp"
#include "name/locality_descriptor.hpp"
#include "name/mail_address.hpp"

namespace hal {

class NameTable {
 public:
  NameTable(NodeId self, StatBlock& stats) : self_(self), stats_(stats) {}

  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;

  NodeId self() const noexcept { return self_; }

  // --- Descriptor pool -----------------------------------------------------
  SlotId allocate(LocalityDescriptor d = {}) { return pool_.allocate(d); }
  void release(SlotId id) { pool_.free(id); }
  LocalityDescriptor& descriptor(SlotId id) { return pool_.get(id); }
  const LocalityDescriptor& descriptor(SlotId id) const {
    return pool_.get(id);
  }
  LocalityDescriptor* try_descriptor(SlotId id) noexcept {
    return pool_.try_get(id);
  }

  // --- Name mapping ----------------------------------------------------------
  /// Register `addr` → local descriptor slot. Used for aliases and for
  /// foreign addresses this node has cached locality for.
  void bind(const MailAddress& addr, SlotId desc) {
    map_.insert_or_assign(addr, desc);
  }
  void unbind(const MailAddress& addr) { map_.erase(addr); }

  /// Hash-lookup tier. Returns an invalid SlotId when unknown.
  SlotId lookup(const MailAddress& addr) {
    stats_.bump(Stat::kNameTableLookups);
    auto it = map_.find(addr);
    if (it == map_.end()) return {};
    stats_.bump(Stat::kNameTableHits);
    return it->second;
  }

  /// Full resolution: home-node fast path first, hash tier otherwise.
  /// Returns the slot of this node's descriptor for the actor, or invalid if
  /// this node knows nothing about the address yet.
  SlotId resolve(const MailAddress& addr) {
    if (addr.home == self_) {
      // The address embeds the descriptor's "real address" on this node.
      return pool_.contains(addr.desc) ? addr.desc : SlotId{};
    }
    return lookup(addr);
  }

  std::size_t bound_names() const noexcept { return map_.size(); }
  std::size_t live_descriptors() const noexcept { return pool_.size(); }

  template <typename Fn>
  void for_each_descriptor(Fn&& fn) {
    pool_.for_each(std::forward<Fn>(fn));
  }

 private:
  NodeId self_;
  StatBlock& stats_;
  SlotPool<LocalityDescriptor> pool_;
  std::unordered_map<MailAddress, SlotId, MailAddressHash> map_;
};

}  // namespace hal
