// Per-node name table (§4.2).
//
// "Each kernel maintains its own (local) name table, and name translation
// from a mail address to the location information is performed by consulting
// the local name table only" — no inter-processor communication on the
// lookup path. Consistency is deliberately relaxed: entries for remote
// actors are best guesses, corrected lazily by the FIR protocol when a stale
// guess is exercised.
//
// Resolution has two tiers, reproducing the paper's "real address" trick:
//   * home-node fast path — on the address's home node, the mail address
//     itself contains the descriptor slot: O(1) pool dereference, no hash;
//   * foreign path — a hash lookup finds this node's own descriptor caching
//     the actor's location (allocated on first send).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "check/affinity.hpp"
#include "check/capability.hpp"
#include "check/protocol.hpp"
#include "common/stats.hpp"
#include "name/locality_descriptor.hpp"
#include "name/mail_address.hpp"

namespace hal {

class NameTable {
 public:
  NameTable(NodeId self, StatBlock& stats) : self_(self), stats_(stats) {
    affinity_.bind(self, "NameTable");
  }

  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;

  NodeId self() const noexcept { return self_; }

  // --- Descriptor pool -----------------------------------------------------
  [[nodiscard]] SlotId allocate(LocalityDescriptor d = {}) {
    affinity_.assert_here();
    return pool_.allocate(d);
  }
  void release(SlotId id) {
    affinity_.assert_here();
    pool_.free(id);
  }
  LocalityDescriptor& descriptor(SlotId id) {
    affinity_.assert_here();
    return pool_.get(id);
  }
  const LocalityDescriptor& descriptor(SlotId id) const
      HAL_NO_THREAD_SAFETY_ANALYSIS {
    return pool_.get(id);
  }
  LocalityDescriptor* try_descriptor(SlotId id) noexcept
      HAL_NO_THREAD_SAFETY_ANALYSIS {
    return pool_.try_get(id);
  }

  /// Checked descriptor overwrite: protocol code that rewrites a whole
  /// descriptor (install, migration, reap, FIR cache fill) must come through
  /// here so the epoch-monotonicity invariant is audited — a regression
  /// would make FIR chases cyclic (§4.2).
  void update(SlotId id, const LocalityDescriptor& next) {
    affinity_.assert_here();
    LocalityDescriptor& d = pool_.get(id);
    check::audit_epoch_monotone(self_, d.epoch, next.epoch);
    d = next;
  }

  // --- Name mapping ----------------------------------------------------------
  /// Register `addr` → local descriptor slot. Used for aliases and for
  /// foreign addresses this node has cached locality for.
  void bind(const MailAddress& addr, SlotId desc) {
    affinity_.assert_here();
    map_.insert_or_assign(addr, desc);
  }
  void unbind(const MailAddress& addr) {
    affinity_.assert_here();
    map_.erase(addr);
  }

  /// Hash-lookup tier. Returns an invalid SlotId when unknown.
  [[nodiscard]] SlotId lookup(const MailAddress& addr) {
    affinity_.assert_here();
    stats_.bump(Stat::kNameTableLookups);
    auto it = map_.find(addr);
    if (it == map_.end()) return {};
    stats_.bump(Stat::kNameTableHits);
    return it->second;
  }

  /// Full resolution: home-node fast path first, hash tier otherwise.
  /// Returns the slot of this node's descriptor for the actor, or invalid if
  /// this node knows nothing about the address yet.
  [[nodiscard]] SlotId resolve(const MailAddress& addr) {
    affinity_.assert_here();
    if (addr.home == self_) {
      // The address embeds the descriptor's "real address" on this node.
      return pool_.contains(addr.desc) ? addr.desc : SlotId{};
    }
    return lookup(addr);
  }

  // Quiescent-time introspection (report, tests): opted out of the
  // capability analysis rather than asserted.
  std::size_t bound_names() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return map_.size();
  }
  std::size_t live_descriptors() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return pool_.size();
  }

  template <typename Fn>
  void for_each_descriptor(Fn&& fn) HAL_NO_THREAD_SAFETY_ANALYSIS {
    pool_.for_each(std::forward<Fn>(fn));
  }

 private:
  const NodeId self_;  // write-once identity, never a shared-state race
  StatBlock& stats_;
  check::NodeAffinityGuard affinity_;
  SlotPool<LocalityDescriptor> pool_ HAL_GUARDED_BY(affinity_);
  std::unordered_map<MailAddress, SlotId, MailAddressHash> map_
      HAL_GUARDED_BY(affinity_);
};

}  // namespace hal
