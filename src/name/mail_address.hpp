// Mail addresses and aliases (§4.1, §5).
//
// Each actor is uniquely identified by a mail address implemented as a pair
// of "real addresses" ⟨birthplace, address⟩: the node on which the actor was
// created and the address of its locality descriptor on that node. We encode
// the descriptor address as a generation-checked slot id (common/slot_pool),
// which preserves the paper's key property — on the home node the mail
// address dereferences the descriptor in O(1) with no hash lookup — while
// making stale addresses detectable.
//
// An *alias* (§5) has the same structure but its `home` is the node that
// *requested* the creation, not the node the actor lives on; the node where
// the actor is actually created is encoded alongside, together with the
// behaviour type. An actor which requests a remote creation can therefore
// keep computing with the alias immediately, hiding the creation latency.
#pragma once

#include <cstdint>
#include <functional>

#include "common/hash.hpp"
#include "common/slot_pool.hpp"
#include "common/types.hpp"

namespace hal {

struct MailAddress {
  /// Node holding the descriptor named by `desc` (birthplace for ordinary
  /// addresses; the requesting node for aliases).
  NodeId home = kInvalidNode;
  /// Locality-descriptor slot on `home` — the paper's "memory address".
  SlotId desc{};
  /// Aliases only: the node on which the actor was actually created.
  NodeId created_on = kInvalidNode;
  /// Aliases only: behaviour type information carried in the address.
  BehaviorId behavior = kInvalidBehavior;
  /// Alias flag.
  bool alias = false;

  constexpr bool valid() const noexcept {
    return home != kInvalidNode && desc.valid();
  }

  /// Identity is the ⟨home, desc⟩ pair; the alias annotations are routing
  /// hints, not part of the name.
  friend constexpr bool operator==(const MailAddress& a,
                                   const MailAddress& b) noexcept {
    return a.home == b.home && a.desc == b.desc;
  }

  // --- Wire form: two 64-bit words (fits alongside a selector and a
  // continuation reference in a single active-message packet). Node and
  // behaviour ids are carried in 16 bits each — the CM-5 scales to 16K
  // nodes, so 64K is ample.
  constexpr std::uint64_t pack_word0() const noexcept {
    return (static_cast<std::uint64_t>(home & 0xffffU)) |
           (static_cast<std::uint64_t>(created_on & 0xffffU) << 16) |
           (static_cast<std::uint64_t>(behavior & 0xffffU) << 32) |
           (static_cast<std::uint64_t>(alias ? 1 : 0) << 48);
  }
  constexpr std::uint64_t pack_word1() const noexcept { return desc.pack(); }

  static constexpr MailAddress unpack(std::uint64_t w0,
                                      std::uint64_t w1) noexcept {
    MailAddress a;
    a.home = static_cast<NodeId>(w0 & 0xffffU);
    a.created_on = static_cast<NodeId>((w0 >> 16) & 0xffffU);
    a.behavior = static_cast<BehaviorId>((w0 >> 32) & 0xffffU);
    a.alias = ((w0 >> 48) & 1U) != 0;
    a.desc = SlotId::unpack(w1);
    if (a.created_on == 0xffffU) a.created_on = kInvalidNode;
    if (a.behavior == 0xffffU) a.behavior = kInvalidBehavior;
    if (a.home == 0xffffU) a.home = kInvalidNode;
    return a;
  }

  /// The node a message should be routed to when no local information about
  /// the receiver exists: the birthplace for ordinary addresses, the actual
  /// creation node for aliases (§5).
  constexpr NodeId fallback_node() const noexcept {
    return alias ? created_on : home;
  }

  std::uint64_t hash() const noexcept {
    return hash_combine(static_cast<std::uint64_t>(home), desc.pack());
  }
};

struct MailAddressHash {
  std::size_t operator()(const MailAddress& a) const noexcept {
    return static_cast<std::size_t>(a.hash());
  }
};

}  // namespace hal
