// Execution tracing.
//
// When enabled (RuntimeConfig::trace), every kernel records protocol-level
// events — method executions, migrations, steals, FIR chases, bulk
// transfers — with virtual-time stamps. The recorder exports the Chrome
// trace-event JSON format (load in chrome://tracing or https://ui.perfetto.dev),
// one track per node, which makes the pipelining and load-balancing
// behaviour of a 64-node simulated run directly visible.
//
// Recording is deterministic under SimMachine: same seed, same trace.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hal::trace {

enum class EventKind : std::uint8_t {
  kMethod,       // a = behavior id, b = selector
  kQuantum,      // a = group seq, b = members dispatched
  kSendRemote,   // a = destination node
  kCreateLocal,  // a = behavior id
  kCreateAlias,  // a = target node, b = behavior id
  kMigrateOut,   // a = target node, b = actor epoch after the move
  kMigrateIn,    // a = source node, b = actor epoch
  kStealServed,  // a = thief node
  kFirSent,      // a = chased-toward node
  kFirResolved,  // a = learned node
  kParked,       // message parked awaiting FIR resolution
  kJoinFired,    // a = slot count
  kBroadcast,    // a = group seq
  kCount,
};

std::string_view event_name(EventKind kind) noexcept;

struct Event {
  SimTime start = 0;
  SimTime duration = 0;  // 0 for instantaneous markers
  NodeId node = kInvalidNode;
  EventKind kind = EventKind::kMethod;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Shared, thread-safe event sink. The mutex is uncontended under the
/// simulator (one event loop) and acceptable under ThreadMachine — tracing
/// is a diagnosis tool, not a fast path; kernels skip the call entirely
/// when tracing is off.
class TraceRecorder {
 public:
  void record(const Event& e) {
    // HAL_LINT_SUPPRESS(hal-handler-purity): tracing is a diagnosis tool
    // (see class comment) — kernels skip the call when tracing is off, and
    // the lock is uncontended under the simulator's single event loop.
    std::lock_guard lock(mutex_);
    events_.push_back(e);
  }

  std::vector<Event> take() {
    std::lock_guard lock(mutex_);
    return std::move(events_);
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return events_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// Serialize events as a Chrome trace (JSON array of duration/instant
/// events; ts/dur in microseconds, tid = node).
void write_chrome_trace(std::ostream& out, const std::vector<Event>& events);

}  // namespace hal::trace
