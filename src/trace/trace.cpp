#include "trace/trace.hpp"

#include <array>

#include "common/assert.hpp"

namespace hal::trace {

namespace {
constexpr std::array<std::string_view,
                     static_cast<std::size_t>(EventKind::kCount)>
    kNames = {
        "method",       "quantum",     "send_remote", "create_local",
        "create_alias", "migrate_out", "migrate_in",  "steal_served",
        "fir_sent",     "fir_resolved", "parked",     "join_fired",
        "broadcast",
};
}  // namespace

std::string_view event_name(EventKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  HAL_DASSERT(i < kNames.size());
  return kNames[i];
}

void write_chrome_trace(std::ostream& out, const std::vector<Event>& events) {
  out << "[\n";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out << ",\n";
    first = false;
    const double ts = static_cast<double>(e.start) / 1000.0;  // ns → µs
    out << R"({"name":")" << event_name(e.kind) << R"(","pid":0,"tid":)"
        << e.node;
    if (e.duration > 0) {
      out << R"(,"ph":"X","ts":)" << ts << R"(,"dur":)"
          << static_cast<double>(e.duration) / 1000.0;
    } else {
      out << R"(,"ph":"i","s":"t","ts":)" << ts;
    }
    out << R"(,"args":{"a":)" << e.a << R"(,"b":)" << e.b << "}}";
  }
  out << "\n]\n";
}

}  // namespace hal::trace
