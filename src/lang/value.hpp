// HALlite runtime values.
//
// Values travel inside actor messages (serialized into the payload), live
// in actor state environments, and migrate with their actor. Mail addresses
// are first-class, as in the Actor model ("mail addresses may also be
// communicated in a message, allowing for a dynamic communication
// topology", §2.1).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "lang/token.hpp"
#include "name/mail_address.hpp"
#include "runtime/message.hpp"

namespace hal::lang {

class Value {
 public:
  using Storage = std::variant<std::monostate, std::int64_t, double, bool,
                               MailAddress, std::string, GroupId>;

  Value() = default;
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(bool v) : v_(v) {}
  explicit Value(MailAddress v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(GroupId v) : v_(v) {}

  bool is_nil() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_addr() const { return std::holds_alternative<MailAddress>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_group() const { return std::holds_alternative<GroupId>(v_); }
  bool is_number() const { return is_int() || is_float(); }

  std::int64_t as_int() const;
  double as_double() const;  // numbers only; int promotes
  bool as_bool() const;      // booleans only (no truthiness)
  const MailAddress& as_addr() const;
  const std::string& as_string() const;
  GroupId as_group() const;

  /// Human-readable rendering (print statement, diagnostics).
  std::string to_string() const;

  /// Structural equality (== / !=); numbers compare by value across
  /// int/float.
  bool equals(const Value& other) const;

  void serialize(ByteWriter& w) const;
  static Value deserialize(ByteReader& r);

 private:
  Storage v_;
};

/// Arithmetic and comparison used by the evaluator; throw LangError with
/// the offending operation on type mismatches.
Value op_add(const Value& a, const Value& b, int line);
Value op_sub(const Value& a, const Value& b, int line);
Value op_mul(const Value& a, const Value& b, int line);
Value op_div(const Value& a, const Value& b, int line);
Value op_mod(const Value& a, const Value& b, int line);
Value op_neg(const Value& a, int line);
Value op_not(const Value& a, int line);
/// <, <=, >, >= on numbers (and lexicographic on strings).
Value op_compare(Tok op, const Value& a, const Value& b, int line);

}  // namespace hal::lang
