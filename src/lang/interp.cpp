#include "lang/interp.hpp"

#include <algorithm>
#include <unordered_map>

#include "runtime/context.hpp"

namespace hal::lang {

namespace {

/// Encode interpreted-message arguments into a Message payload.
Bytes encode_values(const std::vector<Value>& args) {
  ByteWriter w;
  w.write(static_cast<std::uint32_t>(args.size()));
  for (const Value& v : args) v.serialize(w);
  return std::move(w).take();
}

std::vector<Value> decode_values(std::span<const std::byte> payload) {
  ByteReader r(payload);
  const auto n = r.read<std::uint32_t>();
  std::vector<Value> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(Value::deserialize(r));
  return out;
}

/// Per-statement virtual work charged to the simulated node: an interpreted
/// statement costs a handful of "Sparc instructions" of the cost model.
constexpr std::uint64_t kStmtWork = 6;

}  // namespace

// --- Evaluator -------------------------------------------------------------------

/// Executes one method body. `ctx` may be null only for guard evaluation
/// and state initializers, which are restricted to pure expressions.
class Evaluator {
 public:
  Evaluator(InterpActor& actor, Context* ctx, const Message* msg)
      : actor_(actor), ctx_(ctx), msg_(msg) {}

  void run_body(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& s : body) {
      exec(*s);
      if (returned_) return;
    }
  }

  Value eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return Value(e.int_val);
      case Expr::Kind::kFloatLit:
        return Value(e.float_val);
      case Expr::Kind::kBoolLit:
        return Value(e.bool_val);
      case Expr::Kind::kStringLit:
        return Value(e.text);
      case Expr::Kind::kNilLit:
        return Value();
      case Expr::Kind::kVar:
        return lookup(e.text, e.line);
      case Expr::Kind::kSelf:
        return Value(require_ctx(e)->self());
      case Expr::Kind::kNodeId:
        return Value(static_cast<std::int64_t>(require_ctx(e)->node()));
      case Expr::Kind::kNodes:
        return Value(static_cast<std::int64_t>(require_ctx(e)->node_count()));
      case Expr::Kind::kNew: {
        Context* ctx = require_ctx(e);
        const std::uint32_t bindex =
            actor_.program_->behavior_index(e.text, e.line);
        const BehaviorId bid = ctx->kernel().registry().id_of_name(
            actor_.program_->behavior(bindex).name);
        if (bid == kInvalidBehavior) {
          throw LangError("behavior '" + e.text + "' was not loaded",
                          e.line);
        }
        NodeId target = ctx->node();
        if (e.a != nullptr) {
          const std::int64_t n = eval(*e.a).as_int();
          if (n < 0 ||
              n >= static_cast<std::int64_t>(ctx->node_count())) {
            throw LangError("placement node out of range", e.line);
          }
          target = static_cast<NodeId>(n);
        }
        return Value(ctx->create_on_id(bid, target));
      }
      case Expr::Kind::kGroupNew: {
        // grpnew (§2.2): members striped across nodes from here.
        Context* ctx = require_ctx(e);
        const std::uint32_t bindex =
            actor_.program_->behavior_index(e.text, e.line);
        const BehaviorId bid = ctx->kernel().registry().id_of_name(
            actor_.program_->behavior(bindex).name);
        if (bid == kInvalidBehavior) {
          throw LangError("behavior '" + e.text + "' was not loaded",
                          e.line);
        }
        const std::int64_t n = eval(*e.a).as_int();
        if (n <= 0) throw LangError("group size must be positive", e.line);
        return Value(ctx->kernel().group_new(
            bid, static_cast<std::uint32_t>(n)));
      }
      case Expr::Kind::kIndex:
        throw LangError(
            "group indexing is only valid as a send/request target",
            e.line);
      case Expr::Kind::kUnary: {
        const Value a = eval(*e.a);
        return e.op == Tok::kMinus ? op_neg(a, e.line) : op_not(a, e.line);
      }
      case Expr::Kind::kBinary: {
        // Short-circuit logicals first.
        if (e.op == Tok::kAndAnd) {
          return eval(*e.a).as_bool() ? Value(eval(*e.b).as_bool())
                                      : Value(false);
        }
        if (e.op == Tok::kOrOr) {
          return eval(*e.a).as_bool() ? Value(true)
                                      : Value(eval(*e.b).as_bool());
        }
        const Value a = eval(*e.a);
        const Value b = eval(*e.b);
        switch (e.op) {
          case Tok::kPlus: return op_add(a, b, e.line);
          case Tok::kMinus: return op_sub(a, b, e.line);
          case Tok::kStar: return op_mul(a, b, e.line);
          case Tok::kSlash: return op_div(a, b, e.line);
          case Tok::kPercent: return op_mod(a, b, e.line);
          case Tok::kEq: return Value(a.equals(b));
          case Tok::kNe: return Value(!a.equals(b));
          case Tok::kLt:
          case Tok::kLe:
          case Tok::kGt:
          case Tok::kGe: return op_compare(e.op, a, b, e.line);
          default:
            throw LangError("bad binary operator", e.line);
        }
      }
    }
    throw LangError("bad expression", e.line);
  }

  void bind_local(const std::string& name, Value v) {
    locals_[name] = std::move(v);
  }

 private:
  Context* require_ctx(const Expr& e) {
    if (ctx_ == nullptr) {
      throw LangError(
          "self/node()/new are not allowed in guards or state initializers",
          e.line);
    }
    return ctx_;
  }

  Value lookup(const std::string& name, int line) {
    if (auto it = locals_.find(name); it != locals_.end()) return it->second;
    const auto& decls = actor_.program_->behavior(actor_.behavior_index_).state;
    for (std::size_t i = 0; i < decls.size(); ++i) {
      if (decls[i].name == name) return actor_.state_[i];
    }
    throw LangError("undefined variable '" + name + "'", line);
  }

  void assign(const std::string& name, Value v, int line) {
    if (auto it = locals_.find(name); it != locals_.end()) {
      it->second = std::move(v);
      return;
    }
    const auto& decls = actor_.program_->behavior(actor_.behavior_index_).state;
    for (std::size_t i = 0; i < decls.size(); ++i) {
      if (decls[i].name == name) {
        actor_.state_[i] = std::move(v);
        return;
      }
    }
    throw LangError("assignment to undefined variable '" + name + "'", line);
  }

  void exec(const Stmt& s) {
    if (ctx_ != nullptr) ctx_->charge_work(kStmtWork);
    switch (s.kind) {
      case Stmt::Kind::kLet:
        locals_[s.text] = eval(*s.a);
        return;
      case Stmt::Kind::kAssign:
        assign(s.text, eval(*s.a), s.line);
        return;
      case Stmt::Kind::kSend: {
        Context* ctx = require_stmt_ctx(s);
        std::vector<Value> args;
        args.reserve(s.args.size());
        for (const ExprPtr& a : s.args) args.push_back(eval(*a));
        dispatch_call(*ctx, s, std::move(args), ContRef{});
        return;
      }
      case Stmt::Kind::kBroadcast: {
        Context* ctx = require_stmt_ctx(s);
        const GroupId gid = eval(*s.a).as_group();
        std::vector<Value> args;
        args.reserve(s.args.size());
        for (const ExprPtr& a : s.args) args.push_back(eval(*a));
        Bytes payload = encode_values(args);
        if (payload.size() + 16 > am::kMaxInlinePayload) {
          throw LangError("broadcast arguments too large", s.line);
        }
        const std::array<std::uint64_t, kMsgInlineWords> words{};
        ctx->kernel().group_broadcast(gid,
                                      actor_.program_->name_id(s.text), 0,
                                      words, ContRef{}, std::move(payload));
        return;
      }
      case Stmt::Kind::kRequest: {
        Context* ctx = require_stmt_ctx(s);
        const auto& behavior =
            actor_.program_->behavior(actor_.behavior_index_);
        const MethodDecl& cont =
            behavior.methods.at(static_cast<std::size_t>(s.cont_index));
        // Snapshot the captured locals now; the reply re-enters the actor
        // as a message carrying [reply value, captures...].
        std::vector<Value> captured;
        captured.reserve(cont.captures.size());
        for (const std::string& name : cont.captures) {
          captured.push_back(lookup(name, s.line));
        }
        // The continuation message inherits the *original* customer: a
        // `reply` inside the continuation block answers whoever requested
        // the method that issued this request (HAL's customer threading).
        // The interpreter's capture set (program handle, name, snapshot) is
        // far wider than a compiled continuation's, so it is boxed behind
        // one pointer: JoinBody holds captures inline and this is the
        // deliberately-slow path — one allocation per interpreted request.
        struct ContCapture {
          std::shared_ptr<const Program> program;
          MailAddress self;
          std::string cont_name;
          std::vector<Value> captured;
          ContRef customer;
        };
        auto cap = std::make_unique<ContCapture>(ContCapture{
            actor_.program_, ctx->self(), cont.name, std::move(captured),
            msg_ != nullptr ? msg_->cont : ContRef{}});
        const ContRef join = ctx->make_join(
            1, [cap = std::move(cap)](Context& jc, const JoinView& v) {
              // Reply value arrives serialized in the slot blob.
              ByteReader r(std::span<const std::byte>(v.blob(0)));
              std::vector<Value> args;
              args.push_back(Value::deserialize(r));
              for (const Value& c : cap->captured) args.push_back(c);
              Message cm = make_interp_message(*cap->program, cap->self,
                                               cap->cont_name,
                                               std::move(args));
              cm.cont = cap->customer;
              jc.kernel().send_message(std::move(cm));
            });
        std::vector<Value> args;
        args.reserve(s.args.size());
        for (const ExprPtr& a : s.args) args.push_back(eval(*a));
        dispatch_call(*ctx, s, std::move(args), join.at(0));
        return;
      }
      case Stmt::Kind::kReply: {
        Context* ctx = require_stmt_ctx(s);
        ByteWriter w;
        eval(*s.a).serialize(w);
        ctx->reply_blob(0, std::move(w).take());
        return;
      }
      case Stmt::Kind::kPrint: {
        Context* ctx = require_stmt_ctx(s);
        ctx->print(eval(*s.a).to_string());
        return;
      }
      case Stmt::Kind::kBecome: {
        Context* ctx = require_stmt_ctx(s);
        const std::uint32_t bindex =
            actor_.program_->behavior_index(s.text, s.line);
        ctx->become_ptr(
            std::make_unique<InterpActor>(actor_.program_, bindex));
        return;
      }
      case Stmt::Kind::kMigrate: {
        Context* ctx = require_stmt_ctx(s);
        const std::int64_t n = eval(*s.a).as_int();
        if (n < 0 || n >= static_cast<std::int64_t>(ctx->node_count())) {
          throw LangError("migration target out of range", s.line);
        }
        ctx->migrate_to(static_cast<NodeId>(n));
        return;
      }
      case Stmt::Kind::kIf:
        if (eval(*s.a).as_bool()) {
          run_body(s.body);
        } else {
          run_body(s.else_body);
        }
        return;
      case Stmt::Kind::kWhile:
        while (!returned_ && eval(*s.a).as_bool()) {
          run_body(s.body);
          if (ctx_ != nullptr) ctx_->charge_work(kStmtWork);
        }
        return;
      case Stmt::Kind::kReturn:
        returned_ = true;
        return;
      case Stmt::Kind::kExpr:
        (void)eval(*s.a);
        return;
    }
  }

  /// Route a send/request either to an address or, for `g[i].m(...)`
  /// targets, through the group member-send path on the birth node.
  void dispatch_call(Context& ctx, const Stmt& s, std::vector<Value> args,
                     const ContRef& cont) {
    if (s.a->kind == Expr::Kind::kIndex) {
      const GroupId gid = eval(*s.a->a).as_group();
      const std::int64_t idx = eval(*s.a->b).as_int();
      if (idx < 0) throw LangError("negative member index", s.line);
      Message m = make_interp_message(*actor_.program_, MailAddress{},
                                      s.text, std::move(args));
      m.cont = cont;
      ctx.kernel().group_member_send(gid, gid.creator,
                                     static_cast<std::uint32_t>(idx),
                                     std::move(m));
      return;
    }
    Message m = make_interp_message(*actor_.program_, eval(*s.a).as_addr(),
                                    s.text, std::move(args));
    m.cont = cont;
    ctx.kernel().send_message(std::move(m));
  }

  Context* require_stmt_ctx(const Stmt& s) {
    if (ctx_ == nullptr) {
      throw LangError("statement not allowed in this context", s.line);
    }
    return ctx_;
  }

  InterpActor& actor_;
  Context* ctx_;
  const Message* msg_;
  std::unordered_map<std::string, Value> locals_;
  bool returned_ = false;
};

// --- InterpActor -------------------------------------------------------------------

InterpActor::InterpActor(std::shared_ptr<const Program> program,
                         std::uint32_t behavior_index)
    : program_(std::move(program)), behavior_index_(behavior_index) {
  const auto& decls = program_->behavior(behavior_index_).state;
  state_.resize(decls.size());
  for (std::size_t i = 0; i < decls.size(); ++i) {
    if (decls[i].init != nullptr) {
      Evaluator ev(*this, nullptr, nullptr);
      state_[i] = ev.eval(*decls[i].init);
    }
  }
}

void InterpActor::dispatch_message(Context& ctx, Message& m) {
  const auto& behavior = program_->behavior(behavior_index_);
  const auto it = behavior.by_name_id.find(m.selector);
  if (it == behavior.by_name_id.end()) {
    throw LangError("behavior '" + behavior.name + "' has no method '" +
                    program_->name_of(m.selector) + "'");
  }
  const MethodDecl& method = behavior.methods[it->second];
  const std::vector<Value> args = decode_values(m.payload);
  if (args.size() != method.params.size()) {
    throw LangError("method '" + method.name + "' expects " +
                        std::to_string(method.params.size()) +
                        " arguments, got " + std::to_string(args.size()),
                    method.line);
  }
  Evaluator ev(*this, &ctx, &m);
  for (std::size_t i = 0; i < args.size(); ++i) {
    ev.bind_local(method.params[i], args[i]);
  }
  ev.run_body(method.body);
}

bool InterpActor::method_enabled(Selector name_id) const {
  const auto& behavior = program_->behavior(behavior_index_);
  const auto it = behavior.by_name_id.find(name_id);
  if (it == behavior.by_name_id.end()) return true;  // dispatch will report
  const MethodDecl& method = behavior.methods[it->second];
  if (method.guard == nullptr) return true;
  // Guards are pure state predicates (§6.1's disabling conditions).
  Evaluator ev(*const_cast<InterpActor*>(this), nullptr, nullptr);
  return ev.eval(*method.guard).as_bool();
}

void InterpActor::pack_state(ByteWriter& w) const {
  w.write(behavior_index_);
  w.write(static_cast<std::uint32_t>(state_.size()));
  for (const Value& v : state_) v.serialize(w);
}

void InterpActor::unpack_state(ByteReader& r) {
  behavior_index_ = r.read<std::uint32_t>();
  const auto n = r.read<std::uint32_t>();
  state_.clear();
  state_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    state_.push_back(Value::deserialize(r));
  }
}

const Value& InterpActor::state_of(std::string_view name) const {
  const auto& decls = program_->behavior(behavior_index_).state;
  for (std::size_t i = 0; i < decls.size(); ++i) {
    if (decls[i].name == name) return state_[i];
  }
  throw LangError("no state variable '" + std::string(name) + "'");
}

// --- Loading ----------------------------------------------------------------------

Message make_interp_message(const Program& program, const MailAddress& dest,
                            std::string_view method,
                            std::vector<Value> args) {
  Message m;
  m.dest = dest;
  m.selector = program.name_id(method);
  m.payload = encode_values(args);
  return m;
}

std::shared_ptr<const Program> load_program(Runtime& rt,
                                            std::string_view source) {
  auto program = Program::compile(source);
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(program->behaviors().size()); ++i) {
    rt.registry().register_factory(
        program->behavior(i).name,
        [program, i]() -> std::unique_ptr<ActorBase> {
          return std::make_unique<InterpActor>(program, i);
        });
  }
  return program;
}

MailAddress start_main(Runtime& rt,
                       const std::shared_ptr<const Program>& program) {
  if (!program->has_main()) {
    throw LangError("program has no main block");
  }
  const BehaviorId bid = rt.registry().id_of_name("__main");
  HAL_ASSERT(bid != kInvalidBehavior);
  const MailAddress a = rt.spawn_id(bid, 0);
  rt.inject_message(make_interp_message(*program, a, "__start", {}));
  return a;
}

}  // namespace hal::lang
