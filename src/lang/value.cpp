#include "lang/value.hpp"

#include <cmath>

namespace hal::lang {

namespace {
enum class Tag : std::uint8_t {
  kNil = 0,
  kInt,
  kFloat,
  kBool,
  kAddr,
  kString,
  kGroup
};

[[noreturn]] void type_error(const char* op, const Value& a, const Value& b,
                             int line) {
  throw LangError(std::string("type error: ") + a.to_string() + " " + op +
                      " " + b.to_string(),
                  line);
}
}  // namespace

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_float()) return static_cast<std::int64_t>(std::get<double>(v_));
  throw LangError("expected an integer, got " + to_string());
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  if (is_float()) return std::get<double>(v_);
  throw LangError("expected a number, got " + to_string());
}

bool Value::as_bool() const {
  if (is_bool()) return std::get<bool>(v_);
  throw LangError("expected a boolean, got " + to_string());
}

const MailAddress& Value::as_addr() const {
  if (is_addr()) return std::get<MailAddress>(v_);
  throw LangError("expected an actor address, got " + to_string());
}

GroupId Value::as_group() const {
  if (is_group()) return std::get<GroupId>(v_);
  throw LangError("expected a group, got " + to_string());
}

const std::string& Value::as_string() const {
  if (is_string()) return std::get<std::string>(v_);
  throw LangError("expected a string, got " + to_string());
}

std::string Value::to_string() const {
  if (is_nil()) return "nil";
  if (is_int()) return std::to_string(std::get<std::int64_t>(v_));
  if (is_float()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", std::get<double>(v_));
    return buf;
  }
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  if (is_addr()) {
    const MailAddress& a = std::get<MailAddress>(v_);
    return "<actor@" + std::to_string(a.home) + ":" +
           std::to_string(a.desc.index) + ">";
  }
  if (is_group()) {
    const GroupId g = std::get<GroupId>(v_);
    return "<group@" + std::to_string(g.creator) + ":" +
           std::to_string(g.seq) + ">";
  }
  return std::get<std::string>(v_);
}

bool Value::equals(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return as_double() == other.as_double();
  }
  if (is_addr() && other.is_addr()) return as_addr() == other.as_addr();
  return v_ == other.v_;
}

void Value::serialize(ByteWriter& w) const {
  if (is_nil()) {
    w.write(Tag::kNil);
  } else if (is_int()) {
    w.write(Tag::kInt);
    w.write(std::get<std::int64_t>(v_));
  } else if (is_float()) {
    w.write(Tag::kFloat);
    w.write(std::get<double>(v_));
  } else if (is_bool()) {
    w.write(Tag::kBool);
    w.write(std::get<bool>(v_));
  } else if (is_addr()) {
    w.write(Tag::kAddr);
    const MailAddress& a = std::get<MailAddress>(v_);
    w.write(a.pack_word0());
    w.write(a.pack_word1());
  } else if (is_group()) {
    w.write(Tag::kGroup);
    w.write(std::get<GroupId>(v_).pack());
  } else {
    w.write(Tag::kString);
    w.write_string(std::get<std::string>(v_));
  }
}

Value Value::deserialize(ByteReader& r) {
  switch (r.read<Tag>()) {
    case Tag::kNil:
      return Value();
    case Tag::kInt:
      return Value(r.read<std::int64_t>());
    case Tag::kFloat:
      return Value(r.read<double>());
    case Tag::kBool:
      return Value(r.read<bool>());
    case Tag::kAddr: {
      const auto w0 = r.read<std::uint64_t>();
      const auto w1 = r.read<std::uint64_t>();
      return Value(MailAddress::unpack(w0, w1));
    }
    case Tag::kString:
      return Value(r.read_string());
    case Tag::kGroup:
      return Value(GroupId::unpack(r.read<std::uint64_t>()));
  }
  throw LangError("corrupt serialized value");
}

Value op_add(const Value& a, const Value& b, int line) {
  if (a.is_string() || b.is_string()) {
    return Value(a.to_string() + b.to_string());
  }
  if (a.is_int() && b.is_int()) return Value(a.as_int() + b.as_int());
  if (a.is_number() && b.is_number()) {
    return Value(a.as_double() + b.as_double());
  }
  type_error("+", a, b, line);
}

Value op_sub(const Value& a, const Value& b, int line) {
  if (a.is_int() && b.is_int()) return Value(a.as_int() - b.as_int());
  if (a.is_number() && b.is_number()) {
    return Value(a.as_double() - b.as_double());
  }
  type_error("-", a, b, line);
}

Value op_mul(const Value& a, const Value& b, int line) {
  if (a.is_int() && b.is_int()) return Value(a.as_int() * b.as_int());
  if (a.is_number() && b.is_number()) {
    return Value(a.as_double() * b.as_double());
  }
  type_error("*", a, b, line);
}

Value op_div(const Value& a, const Value& b, int line) {
  if (a.is_int() && b.is_int()) {
    if (b.as_int() == 0) throw LangError("division by zero", line);
    return Value(a.as_int() / b.as_int());
  }
  if (a.is_number() && b.is_number()) {
    return Value(a.as_double() / b.as_double());
  }
  type_error("/", a, b, line);
}

Value op_mod(const Value& a, const Value& b, int line) {
  if (a.is_int() && b.is_int()) {
    if (b.as_int() == 0) throw LangError("modulo by zero", line);
    return Value(a.as_int() % b.as_int());
  }
  type_error("%", a, b, line);
}

Value op_neg(const Value& a, int line) {
  if (a.is_int()) return Value(-a.as_int());
  if (a.is_float()) return Value(-a.as_double());
  throw LangError("cannot negate " + a.to_string(), line);
}

Value op_not(const Value& a, int line) {
  if (a.is_bool()) return Value(!a.as_bool());
  throw LangError("cannot apply '!' to " + a.to_string(), line);
}

Value op_compare(Tok op, const Value& a, const Value& b, int line) {
  int cmp;
  if (a.is_number() && b.is_number()) {
    const double x = a.as_double(), y = b.as_double();
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.is_string() && b.is_string()) {
    cmp = a.as_string().compare(b.as_string());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    type_error("compare", a, b, line);
  }
  switch (op) {
    case Tok::kLt: return Value(cmp < 0);
    case Tok::kLe: return Value(cmp <= 0);
    case Tok::kGt: return Value(cmp > 0);
    case Tok::kGe: return Value(cmp >= 0);
    default: throw LangError("bad comparison operator", line);
  }
}

}  // namespace hal::lang
