// HALlite parser: token stream → AST.
#pragma once

#include <string_view>

#include "lang/ast.hpp"

namespace hal::lang {

/// Parse a complete program. Throws LangError with a line number on
/// syntax errors.
ProgramAst parse(std::string_view source);

}  // namespace hal::lang
