#include "lang/parser.hpp"

#include <utility>

#include "lang/lexer.hpp"

namespace hal::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  ProgramAst program() {
    ProgramAst out;
    while (!at(Tok::kEof)) {
      if (at(Tok::kBehavior)) {
        out.behaviors.push_back(behavior());
      } else if (at(Tok::kMain)) {
        if (out.has_main) throw LangError("duplicate main block", line());
        out.has_main = true;
        const int l = line();
        advance();
        BehaviorDecl mainb;
        mainb.name = "__main";
        mainb.line = l;
        MethodDecl start;
        start.name = "__start";
        start.line = l;
        start.body = block();
        mainb.methods.push_back(std::move(start));
        out.behaviors.push_back(std::move(mainb));
      } else {
        throw LangError("expected 'behavior' or 'main'", line());
      }
    }
    return out;
  }

 private:
  // --- Token plumbing ---------------------------------------------------------
  const Token& peek() const { return toks_[pos_]; }
  bool at(Tok k) const { return peek().kind == k; }
  int line() const { return peek().line; }
  const Token& advance() { return toks_[pos_++]; }
  const Token& expect(Tok k, const char* context) {
    if (!at(k)) {
      throw LangError(std::string("expected ") + std::string(token_name(k)) +
                          " " + context + ", got " +
                          std::string(token_name(peek().kind)),
                      line());
    }
    return advance();
  }
  std::string ident(const char* context) {
    return expect(Tok::kIdent, context).text;
  }

  // --- Declarations -----------------------------------------------------------
  BehaviorDecl behavior() {
    BehaviorDecl b;
    b.line = line();
    expect(Tok::kBehavior, "at top level");
    b.name = ident("after 'behavior'");
    expect(Tok::kLBrace, "to open the behavior body");
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kState)) {
        advance();
        StateDecl s;
        s.line = line();
        s.name = ident("after 'state'");
        if (at(Tok::kAssign)) {
          advance();
          s.init = expr();
        }
        expect(Tok::kSemi, "after state declaration");
        b.state.push_back(std::move(s));
      } else if (at(Tok::kMethod)) {
        b.methods.push_back(method());
      } else {
        throw LangError("expected 'state' or 'method' in behavior body",
                        line());
      }
    }
    expect(Tok::kRBrace, "to close the behavior body");
    return b;
  }

  MethodDecl method() {
    MethodDecl m;
    m.line = line();
    expect(Tok::kMethod, "in behavior body");
    m.name = ident("after 'method'");
    expect(Tok::kLParen, "to open the parameter list");
    if (!at(Tok::kRParen)) {
      m.params.push_back(ident("as a parameter"));
      while (at(Tok::kComma)) {
        advance();
        m.params.push_back(ident("as a parameter"));
      }
    }
    expect(Tok::kRParen, "to close the parameter list");
    if (at(Tok::kWhen)) {
      // Synchronization constraint (§6.1): the method is enabled only in
      // states where the guard holds; otherwise its messages pend.
      advance();
      expect(Tok::kLParen, "after 'when'");
      m.guard = expr();
      expect(Tok::kRParen, "to close the 'when' guard");
    }
    m.body = block();
    return m;
  }

  // --- Statements -------------------------------------------------------------
  std::vector<StmtPtr> block() {
    expect(Tok::kLBrace, "to open a block");
    std::vector<StmtPtr> out;
    while (!at(Tok::kRBrace)) out.push_back(stmt());
    expect(Tok::kRBrace, "to close a block");
    return out;
  }

  StmtPtr stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = line();
    switch (peek().kind) {
      case Tok::kLet: {
        advance();
        s->kind = Stmt::Kind::kLet;
        s->text = ident("after 'let'");
        expect(Tok::kAssign, "in let statement");
        s->a = expr();
        expect(Tok::kSemi, "after let statement");
        return s;
      }
      case Tok::kSend: {
        advance();
        s->kind = Stmt::Kind::kSend;
        parse_target_call(*s);
        expect(Tok::kSemi, "after send statement");
        return s;
      }
      case Tok::kBroadcast: {
        advance();
        s->kind = Stmt::Kind::kBroadcast;
        parse_target_call(*s);
        expect(Tok::kSemi, "after broadcast statement");
        return s;
      }
      case Tok::kRequest: {
        advance();
        s->kind = Stmt::Kind::kRequest;
        parse_target_call(*s);
        expect(Tok::kArrow, "after request arguments");
        expect(Tok::kLParen, "to open the reply binding");
        s->text2 = ident("as the reply parameter");
        expect(Tok::kRParen, "to close the reply binding");
        s->body = block();
        return s;
      }
      case Tok::kReply: {
        advance();
        s->kind = Stmt::Kind::kReply;
        s->a = expr();
        expect(Tok::kSemi, "after reply statement");
        return s;
      }
      case Tok::kPrint: {
        advance();
        s->kind = Stmt::Kind::kPrint;
        s->a = expr();
        expect(Tok::kSemi, "after print statement");
        return s;
      }
      case Tok::kBecome: {
        advance();
        s->kind = Stmt::Kind::kBecome;
        s->text = ident("after 'become'");
        expect(Tok::kSemi, "after become statement");
        return s;
      }
      case Tok::kMigrate: {
        advance();
        s->kind = Stmt::Kind::kMigrate;
        s->a = expr();
        expect(Tok::kSemi, "after migrate statement");
        return s;
      }
      case Tok::kIf: {
        advance();
        s->kind = Stmt::Kind::kIf;
        expect(Tok::kLParen, "after 'if'");
        s->a = expr();
        expect(Tok::kRParen, "to close the if condition");
        s->body = block();
        if (at(Tok::kElse)) {
          advance();
          if (at(Tok::kIf)) {
            s->else_body.push_back(stmt());  // else-if chain
          } else {
            s->else_body = block();
          }
        }
        return s;
      }
      case Tok::kWhile: {
        advance();
        s->kind = Stmt::Kind::kWhile;
        expect(Tok::kLParen, "after 'while'");
        s->a = expr();
        expect(Tok::kRParen, "to close the while condition");
        s->body = block();
        return s;
      }
      case Tok::kReturn: {
        advance();
        s->kind = Stmt::Kind::kReturn;
        expect(Tok::kSemi, "after return");
        return s;
      }
      case Tok::kIdent: {
        // assignment: IDENT = expr ;
        if (toks_[pos_ + 1].kind == Tok::kAssign) {
          s->kind = Stmt::Kind::kAssign;
          s->text = advance().text;
          advance();  // '='
          s->a = expr();
          expect(Tok::kSemi, "after assignment");
          return s;
        }
        break;  // fall through to expression statement
      }
      default:
        break;
    }
    s->kind = Stmt::Kind::kExpr;
    s->a = expr();
    expect(Tok::kSemi, "after expression statement");
    return s;
  }

  /// target '.' method '(' args ')' — shared by send and request.
  void parse_target_call(Stmt& s) {
    s.a = postfix();
    expect(Tok::kDot, "before the method name");
    s.text = ident("as the method name");
    expect(Tok::kLParen, "to open the argument list");
    if (!at(Tok::kRParen)) {
      s.args.push_back(expr());
      while (at(Tok::kComma)) {
        advance();
        s.args.push_back(expr());
      }
    }
    expect(Tok::kRParen, "to close the argument list");
  }

  // --- Expressions (precedence climbing) ----------------------------------------
  ExprPtr expr() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr e = and_expr();
    while (at(Tok::kOrOr)) {
      e = binary(Tok::kOrOr, std::move(e), [&] { return and_expr(); });
    }
    return e;
  }
  ExprPtr and_expr() {
    ExprPtr e = equality();
    while (at(Tok::kAndAnd)) {
      e = binary(Tok::kAndAnd, std::move(e), [&] { return equality(); });
    }
    return e;
  }
  ExprPtr equality() {
    ExprPtr e = relational();
    while (at(Tok::kEq) || at(Tok::kNe)) {
      const Tok op = peek().kind;
      e = binary(op, std::move(e), [&] { return relational(); });
    }
    return e;
  }
  ExprPtr relational() {
    ExprPtr e = additive();
    while (at(Tok::kLt) || at(Tok::kLe) || at(Tok::kGt) || at(Tok::kGe)) {
      const Tok op = peek().kind;
      e = binary(op, std::move(e), [&] { return additive(); });
    }
    return e;
  }
  ExprPtr additive() {
    ExprPtr e = multiplicative();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const Tok op = peek().kind;
      e = binary(op, std::move(e), [&] { return multiplicative(); });
    }
    return e;
  }
  ExprPtr multiplicative() {
    ExprPtr e = unary();
    while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent)) {
      const Tok op = peek().kind;
      e = binary(op, std::move(e), [&] { return unary(); });
    }
    return e;
  }

  template <typename Next>
  ExprPtr binary(Tok op, ExprPtr lhs, Next&& next) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->line = line();
    e->op = op;
    advance();
    e->a = std::move(lhs);
    e->b = next();
    return e;
  }

  ExprPtr unary() {
    if (at(Tok::kMinus) || at(Tok::kBang)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->line = line();
      e->op = advance().kind;
      e->a = unary();
      return e;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    while (at(Tok::kLBracket)) {
      auto idx = std::make_unique<Expr>();
      idx->kind = Expr::Kind::kIndex;
      idx->line = line();
      advance();
      idx->a = std::move(e);
      idx->b = expr();
      expect(Tok::kRBracket, "to close the member index");
      e = std::move(idx);
    }
    return e;
  }

  ExprPtr primary() {
    auto e = std::make_unique<Expr>();
    e->line = line();
    switch (peek().kind) {
      case Tok::kInt:
        e->kind = Expr::Kind::kIntLit;
        e->int_val = advance().int_val;
        return e;
      case Tok::kFloat:
        e->kind = Expr::Kind::kFloatLit;
        e->float_val = advance().float_val;
        return e;
      case Tok::kString:
        e->kind = Expr::Kind::kStringLit;
        e->text = advance().text;
        return e;
      case Tok::kTrue:
      case Tok::kFalse:
        e->kind = Expr::Kind::kBoolLit;
        e->bool_val = advance().kind == Tok::kTrue;
        return e;
      case Tok::kNil:
        advance();
        e->kind = Expr::Kind::kNilLit;
        return e;
      case Tok::kSelf:
        advance();
        e->kind = Expr::Kind::kSelf;
        return e;
      case Tok::kNew: {
        advance();
        e->kind = Expr::Kind::kNew;
        e->text = ident("after 'new'");
        if (at(Tok::kOn)) {
          advance();
          e->a = expr();
        }
        return e;
      }
      case Tok::kGroup: {
        // grpnew (§2.2): group Behavior(count)
        advance();
        e->kind = Expr::Kind::kGroupNew;
        e->text = ident("after 'group'");
        expect(Tok::kLParen, "to open the member count");
        e->a = expr();
        expect(Tok::kRParen, "to close the member count");
        return e;
      }
      case Tok::kIdent: {
        const std::string name = advance().text;
        if ((name == "node" || name == "nodes") && at(Tok::kLParen)) {
          advance();
          expect(Tok::kRParen, "builtin takes no arguments");
          e->kind = name == "node" ? Expr::Kind::kNodeId : Expr::Kind::kNodes;
          return e;
        }
        e->kind = Expr::Kind::kVar;
        e->text = name;
        return e;
      }
      case Tok::kLParen: {
        advance();
        ExprPtr inner = expr();
        expect(Tok::kRParen, "to close the parenthesized expression");
        return inner;
      }
      default:
        throw LangError("expected an expression, got " +
                            std::string(token_name(peek().kind)),
                        line());
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramAst parse(std::string_view source) {
  Parser p(lex(source));
  return p.program();
}

}  // namespace hal::lang
