#include "lang/program.hpp"

#include <algorithm>

#include "lang/parser.hpp"

namespace hal::lang {

std::uint32_t Program::intern(const std::string& name) {
  if (auto it = name_ids_.find(name); it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

std::uint32_t Program::name_id(std::string_view name) const {
  auto it = name_ids_.find(std::string(name));
  if (it == name_ids_.end()) {
    throw LangError("no method named '" + std::string(name) +
                    "' anywhere in the program");
  }
  return it->second;
}

std::uint32_t Program::behavior_index(std::string_view name, int line) const {
  auto it = behavior_ids_.find(std::string(name));
  if (it == behavior_ids_.end()) {
    throw LangError("unknown behavior '" + std::string(name) + "'", line);
  }
  return it->second;
}

void Program::lower_requests(Behavior& b, std::vector<StmtPtr>& body,
                             std::vector<std::string>& locals) {
  for (StmtPtr& s : body) {
    switch (s->kind) {
      case Stmt::Kind::kLet:
        locals.push_back(s->text);
        break;
      case Stmt::Kind::kRequest: {
        if (s->cont_index >= 0) {
          throw LangError("internal: request lowered twice", s->line);
        }
        // Synthesize the continuation method: parameters are the reply
        // value followed by the captured locals (Fig. 4's pre-filled
        // argument slots, reborn as message arguments so the continuation
        // runs under the actor's own mutual exclusion).
        MethodDecl cont;
        cont.synthetic = true;
        cont.line = s->line;
        cont.name = "__cont_" + b.name + "_" +
                    std::to_string(synthetic_counter_++);
        cont.params.push_back(s->text2);  // reply binding
        cont.captures = locals;           // snapshot of live locals
        for (const std::string& l : locals) cont.params.push_back(l);
        cont.body = std::move(s->body);
        s->body.clear();
        // Continuation bodies may themselves contain requests; lower them
        // first so their synthetics land before this one and the recorded
        // index stays correct.
        std::vector<std::string> cont_locals = cont.params;
        lower_requests(b, cont.body, cont_locals);
        s->cont_index = static_cast<int>(b.methods.size());
        b.methods.push_back(std::move(cont));
        break;
      }
      case Stmt::Kind::kIf: {
        // Block scoping for capture analysis: lets inside a branch are in
        // scope for requests in that branch only.
        std::vector<std::string> then_scope = locals;
        lower_requests(b, s->body, then_scope);
        std::vector<std::string> else_scope = locals;
        lower_requests(b, s->else_body, else_scope);
        break;
      }
      case Stmt::Kind::kWhile: {
        std::vector<std::string> body_scope = locals;
        lower_requests(b, s->body, body_scope);
        break;
      }
      default:
        break;
    }
  }
}

std::shared_ptr<const Program> Program::compile(std::string_view source) {
  ProgramAst ast = parse(source);
  auto program = std::shared_ptr<Program>(new Program());
  program->has_main_ = ast.has_main;

  for (BehaviorDecl& bd : ast.behaviors) {
    if (program->behavior_ids_.contains(bd.name)) {
      throw LangError("duplicate behavior '" + bd.name + "'", bd.line);
    }
    program->behavior_ids_.emplace(
        bd.name, static_cast<std::uint32_t>(program->behaviors_.size()));
    Behavior b;
    b.name = bd.name;
    b.state = std::move(bd.state);
    b.methods = std::move(bd.methods);
    // Lower requests method by method (iterate by index: lowering appends
    // synthetic continuations, which are already fully lowered — touching
    // them again would re-lower their inner requests onto empty bodies).
    for (std::size_t mi = 0; mi < b.methods.size(); ++mi) {
      if (b.methods[mi].synthetic) continue;
      std::vector<std::string> locals = b.methods[mi].params;
      std::vector<StmtPtr> stmts = std::move(b.methods[mi].body);
      program->lower_requests(b, stmts, locals);
      b.methods[mi].body = std::move(stmts);
    }
    program->behaviors_.push_back(std::move(b));
  }

  // Intern every method name program-wide and index per behaviour.
  for (Behavior& b : program->behaviors_) {
    for (std::uint32_t mi = 0; mi < b.methods.size(); ++mi) {
      const std::uint32_t id = program->intern(b.methods[mi].name);
      if (!b.by_name_id.emplace(id, mi).second) {
        throw LangError("behavior '" + b.name + "' declares method '" +
                            b.methods[mi].name + "' twice",
                        b.methods[mi].line);
      }
    }
  }
  return program;
}

}  // namespace hal::lang
