#include "lang/lexer.hpp"

#include <array>
#include <cctype>
#include <unordered_map>

namespace hal::lang {

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"behavior", Tok::kBehavior}, {"state", Tok::kState},
    {"method", Tok::kMethod},     {"when", Tok::kWhen},
    {"main", Tok::kMain},         {"let", Tok::kLet},
    {"send", Tok::kSend},         {"request", Tok::kRequest},
    {"reply", Tok::kReply},       {"print", Tok::kPrint},
    {"become", Tok::kBecome},     {"migrate", Tok::kMigrate},
    {"if", Tok::kIf},             {"else", Tok::kElse},
    {"while", Tok::kWhile},       {"return", Tok::kReturn},
    {"new", Tok::kNew},           {"on", Tok::kOn},
    {"group", Tok::kGroup},       {"broadcast", Tok::kBroadcast},
    {"self", Tok::kSelf},         {"true", Tok::kTrue},
    {"false", Tok::kFalse},       {"nil", Tok::kNil},
};

}  // namespace

std::string_view token_name(Tok kind) noexcept {
  switch (kind) {
    case Tok::kEof: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "integer";
    case Tok::kFloat: return "float";
    case Tok::kString: return "string";
    case Tok::kBehavior: return "'behavior'";
    case Tok::kState: return "'state'";
    case Tok::kMethod: return "'method'";
    case Tok::kWhen: return "'when'";
    case Tok::kMain: return "'main'";
    case Tok::kLet: return "'let'";
    case Tok::kSend: return "'send'";
    case Tok::kRequest: return "'request'";
    case Tok::kReply: return "'reply'";
    case Tok::kPrint: return "'print'";
    case Tok::kBecome: return "'become'";
    case Tok::kMigrate: return "'migrate'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kReturn: return "'return'";
    case Tok::kNew: return "'new'";
    case Tok::kGroup: return "'group'";
    case Tok::kBroadcast: return "'broadcast'";
    case Tok::kOn: return "'on'";
    case Tok::kSelf: return "'self'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kNil: return "'nil'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kComma: return "','";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kArrow: return "'->'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kBang: return "'!'";
  }
  return "?";
}

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;

  auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      const std::string_view word = src.substr(start, i - start);
      if (auto it = kKeywords.find(word); it != kKeywords.end()) {
        push(it->second);
      } else {
        Token t;
        t.kind = Tok::kIdent;
        t.text = std::string(word);
        t.line = line;
        out.push_back(std::move(t));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      bool is_float = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_float = true;
        ++i;
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          ++i;
        }
      }
      const std::string num(src.substr(start, i - start));
      Token t;
      t.line = line;
      if (is_float) {
        t.kind = Tok::kFloat;
        t.float_val = std::stod(num);
      } else {
        t.kind = Tok::kInt;
        t.int_val = std::stoll(num);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string s;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          ++i;
          switch (src[i]) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case '"': s += '"'; break;
            case '\\': s += '\\'; break;
            default:
              throw LangError("bad escape in string literal", line);
          }
          ++i;
          continue;
        }
        if (src[i] == '\n') throw LangError("unterminated string", line);
        s += src[i++];
      }
      if (i >= src.size()) throw LangError("unterminated string", line);
      ++i;  // closing quote
      Token t;
      t.kind = Tok::kString;
      t.text = std::move(s);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case '{': push(Tok::kLBrace); ++i; break;
      case '[': push(Tok::kLBracket); ++i; break;
      case ']': push(Tok::kRBracket); ++i; break;
      case '}': push(Tok::kRBrace); ++i; break;
      case '(': push(Tok::kLParen); ++i; break;
      case ')': push(Tok::kRParen); ++i; break;
      case ',': push(Tok::kComma); ++i; break;
      case ';': push(Tok::kSemi); ++i; break;
      case '.': push(Tok::kDot); ++i; break;
      case '+': push(Tok::kPlus); ++i; break;
      case '*': push(Tok::kStar); ++i; break;
      case '%': push(Tok::kPercent); ++i; break;
      case '/': push(Tok::kSlash); ++i; break;
      case '-':
        if (two('>')) {
          push(Tok::kArrow);
          i += 2;
        } else {
          push(Tok::kMinus);
          ++i;
        }
        break;
      case '=':
        if (two('=')) {
          push(Tok::kEq);
          i += 2;
        } else {
          push(Tok::kAssign);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(Tok::kNe);
          i += 2;
        } else {
          push(Tok::kBang);
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(Tok::kLe);
          i += 2;
        } else {
          push(Tok::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(Tok::kGe);
          i += 2;
        } else {
          push(Tok::kGt);
          ++i;
        }
        break;
      case '&':
        if (!two('&')) throw LangError("expected '&&'", line);
        push(Tok::kAndAnd);
        i += 2;
        break;
      case '|':
        if (!two('|')) throw LangError("expected '||'", line);
        push(Tok::kOrOr);
        i += 2;
        break;
      default:
        throw LangError(std::string("unexpected character '") + c + "'",
                        line);
    }
  }
  push(Tok::kEof);
  return out;
}

}  // namespace hal::lang
