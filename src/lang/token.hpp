// HALlite tokens.
//
// HALlite is a small actor language in the spirit of HAL (§2 of the paper):
// behaviours with state and methods, asynchronous sends, creation with
// placement, request/reply written as explicit continuation blocks (the
// form HAL's compiler lowers requests into), `become`, migration, and
// per-method synchronization constraints (`when` guards). It exists to
// exercise the runtime through a second, independent client — interpreted
// actors use the same kernels, name server, and migration machinery as the
// C++ behaviours.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hal::lang {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kInt,
  kFloat,
  kString,
  // keywords
  kBehavior,
  kState,
  kMethod,
  kWhen,
  kMain,
  kLet,
  kSend,
  kRequest,
  kReply,
  kPrint,
  kBecome,
  kMigrate,
  kIf,
  kElse,
  kWhile,
  kReturn,
  kNew,
  kGroup,
  kBroadcast,
  kOn,
  kSelf,
  kTrue,
  kFalse,
  kNil,
  // punctuation / operators
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kSemi,
  kLBracket,
  kRBracket,
  kDot,
  kArrow,  // ->
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kBang,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;       // identifier / string literal contents
  std::int64_t int_val = 0;
  double float_val = 0.0;
  int line = 0;
};

std::string_view token_name(Tok kind) noexcept;

/// Thrown on lexical, syntactic, or semantic errors, and on interpreter
/// type errors at runtime; carries a source line where known.
class LangError : public std::exception {
 public:
  LangError(std::string message, int line = 0)
      : message_(line > 0 ? "line " + std::to_string(line) + ": " +
                                std::move(message)
                          : std::move(message)) {}
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

}  // namespace hal::lang
