// HALlite interpreter: one ActorBase implementation animates every
// source-level behaviour.
//
// Messages carry the target method's program-wide name id as their selector
// (late binding — the untyped language dispatches by name) and the argument
// Values serialized in the payload. Synchronization constraints are the
// `when` guards, evaluated through the standard method_enabled hook, so
// interpreted actors use the same pending-queue machinery (§6.1) as C++
// behaviours. Interpreted actors are migratable: their state environment
// serializes with them.
#pragma once

#include <memory>
#include <vector>

#include "lang/program.hpp"
#include "lang/value.hpp"
#include "runtime/runtime.hpp"

namespace hal::lang {

class InterpActor : public ActorBase {
 public:
  InterpActor(std::shared_ptr<const Program> program,
              std::uint32_t behavior_index);

  void dispatch_message(Context& ctx, Message& m) override;
  bool method_enabled(Selector name_id) const override;
  Selector method_count() const override { return program_->name_count(); }
  std::string_view behavior_name() const override {
    return program_->behavior(behavior_index_).name;
  }

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override;
  void unpack_state(ByteReader& r) override;

  /// Interpreted actors trace automatically: any address-typed state
  /// variable is a reference (Runtime::collect_garbage).
  void trace_refs(const std::function<void(const MailAddress&)>& visit)
      const override {
    for (const Value& v : state_) {
      if (v.is_addr()) visit(v.as_addr());
    }
  }

  /// Current value of a state variable (tests / inspection).
  const Value& state_of(std::string_view name) const;

 private:
  friend class Evaluator;

  std::shared_ptr<const Program> program_;
  std::uint32_t behavior_index_ = 0;
  /// State environment, indexed like the behaviour's state declarations.
  std::vector<Value> state_;
};

/// Build a message invoking `method` (by name id) with the given arguments.
Message make_interp_message(const Program& program, const MailAddress& dest,
                            std::string_view method,
                            std::vector<Value> args);

/// Compile and "load" a program into a runtime: registers one behaviour
/// factory per source behaviour (InterpActor closures over the shared
/// Program). Returns the compiled program.
std::shared_ptr<const Program> load_program(Runtime& rt,
                                            std::string_view source);

/// Spawn the program's `main { … }` block: an actor of the synthetic
/// "__main" behaviour on node 0 with a "__start" message. Must be called
/// at bootstrap. Returns the main actor's address.
MailAddress start_main(Runtime& rt, const std::shared_ptr<const Program>& p);

}  // namespace hal::lang
