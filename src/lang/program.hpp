// HALlite resolved programs.
//
// `Program::compile` parses and resolves a source text:
//  * every `request` statement is lowered into an asynchronous send plus a
//    *synthetic continuation method* — exactly the transformation HAL's
//    compiler performs ("transforms a request send to an asynchronous send
//    and separates out its continuation", §6.2). The continuation method's
//    parameters are the reply value plus the live locals captured at the
//    request site.
//  * method names across the whole program get dense *name ids*, which act
//    as message selectors. Dispatch is by name (late binding): the sender
//    never needs the receiver's behaviour, matching the untyped language.
//
// A compiled Program is immutable and shared by every node's interpreted
// actors ("the executable is dynamically loaded and integrated into each
// kernel", §3 — load_program registers one factory per behaviour).
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"

namespace hal::lang {

class Program {
 public:
  struct Behavior {
    std::string name;
    std::vector<StateDecl> state;
    std::vector<MethodDecl> methods;
    /// method name id → index into `methods`.
    std::unordered_map<std::uint32_t, std::uint32_t> by_name_id;
  };

  static std::shared_ptr<const Program> compile(std::string_view source);

  const std::vector<Behavior>& behaviors() const { return behaviors_; }
  const Behavior& behavior(std::uint32_t index) const {
    return behaviors_.at(index);
  }

  /// Dense id of a method name; throws if the program never declares it.
  std::uint32_t name_id(std::string_view name) const;
  /// Total distinct method names (the selector space).
  std::uint32_t name_count() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  const std::string& name_of(std::uint32_t id) const { return names_.at(id); }

  /// Index of a behaviour by source name; throws on unknown names.
  std::uint32_t behavior_index(std::string_view name, int line = 0) const;

  bool has_main() const { return has_main_; }

 private:
  Program() = default;
  std::uint32_t intern(const std::string& name);
  /// Lower request statements in `body`, appending synthetic continuation
  /// methods to `b`. `locals` are the names in scope (function-flat).
  void lower_requests(Behavior& b, std::vector<StmtPtr>& body,
                      std::vector<std::string>& locals);

  std::vector<Behavior> behaviors_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::unordered_map<std::string, std::uint32_t> behavior_ids_;
  std::uint32_t synthetic_counter_ = 0;
  bool has_main_ = false;
};

}  // namespace hal::lang
