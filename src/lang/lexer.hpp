// HALlite lexer: source text → token stream.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.hpp"

namespace hal::lang {

/// Tokenize a complete source buffer. Throws LangError on bad input.
/// `//` comments run to end of line.
std::vector<Token> lex(std::string_view source);

}  // namespace hal::lang
