// Runtime configuration and its validation.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "am/cost_model.hpp"
#include "am/fault.hpp"
#include "am/wire_batch.hpp"
#include "common/types.hpp"

namespace hal {

enum class MachineKind : std::uint8_t {
  kSim,     ///< deterministic virtual-time simulator (default)
  kThread,  ///< one OS thread per node
  kMn,      ///< M nodes multiplexed onto N worker threads (work-stealing)
};

/// Canonical machine names: the strings RunReport::machine carries, the
/// HAL_MACHINE env knob parses, and docs/machines.md documents. Keep the two
/// functions below inverse to each other.
constexpr std::string_view to_string(MachineKind kind) noexcept {
  switch (kind) {
    case MachineKind::kSim:
      return "sim";
    case MachineKind::kThread:
      return "thread";
    case MachineKind::kMn:
      return "mn";
  }
  return "unknown";
}

/// Parse a machine name ("sim" | "thread" | "mn"); nullopt on anything else.
constexpr std::optional<MachineKind> parse_machine_kind(
    std::string_view name) noexcept {
  if (name == "sim") return MachineKind::kSim;
  if (name == "thread") return MachineKind::kThread;
  if (name == "mn") return MachineKind::kMn;
  return std::nullopt;
}

/// Why a RuntimeConfig was rejected (ConfigError::code()).
enum class ConfigErrorCode : std::uint8_t {
  kZeroNodes,          ///< nodes == 0: nothing to boot
  kTooManyNodes,       ///< node id does not fit the 16-bit wire encoding
  kStackDepthTooLarge, ///< stack-scheduling quantum risks host-stack overflow
  kBadFaultConfig,     ///< fault-injection probability outside [0, 1]
  kBadBatchConfig,     ///< wire-batching knobs outside their valid ranges
};

/// Typed rejection of an invalid RuntimeConfig. Constructing a Runtime from
/// an invalid config throws this instead of aborting on an assert, so
/// embedders (language front-ends, long-lived tools) can surface the problem
/// to their users.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(ConfigErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ConfigErrorCode code() const noexcept { return code_; }

 private:
  ConfigErrorCode code_;
};

/// Node-count ceiling: mail addresses, continuation references and group ids
/// pack node ids into 16 bits on the wire with 0xffff reserved as the
/// invalid sentinel, so ids 0..0xfffe are addressable. (The binomial-tree
/// MST broadcast spans any count below this.)
inline constexpr NodeId kMaxNodes = 0xffff;

/// Stack-scheduling depth ceiling: each level of compiler-controlled direct
/// dispatch (§6.3) is a real host-stack frame, so an unbounded quantum turns
/// deep actor chains into stack overflow.
inline constexpr std::uint32_t kMaxStackDepth = 4096;

struct RuntimeConfig {
  NodeId nodes = 4;
  MachineKind machine = MachineKind::kSim;
  am::CostModel costs = am::CostModel::cm5();
  std::uint64_t seed = 0x5eed;

  /// Receiver-initiated random-polling load balancing (Table 4). Idle nodes
  /// poll random victims continuously while the machine-wide work hint is
  /// positive (the front-end stands in for the termination detector Kumar
  /// et al. pair with random polling), so an idle machine stays quiescent.
  bool load_balancing = false;

  /// Cache remote descriptor addresses in locality descriptors (§4.1).
  /// Disabled only by bench/ablation_namecache.
  bool name_cache = true;
  /// Minimal flow control on bulk transfers (§6.5). Disabled only by
  /// bench/ablation_flowcontrol.
  bool flow_control = true;
  /// Collective (quantum) scheduling of broadcast deliveries (§6.4).
  bool collective_broadcast = true;

  /// Compiler-controlled stack-based scheduling bound: send_static falls
  /// back to the generic buffered send beyond this nesting depth.
  std::uint32_t max_stack_depth = 64;

  /// SimMachine safety valve (0 = unlimited events).
  std::uint64_t sim_event_limit = 0;

  /// MnMachine worker-pool size; 0 picks min(hardware threads, nodes). The
  /// machine caps any value at the node count — more workers than nodes
  /// cannot be scheduled.
  std::uint32_t mn_workers = 0;

  /// Record protocol-level events for Chrome-trace export
  /// (Runtime::write_trace). Deterministic under SimMachine.
  bool trace = false;

  /// Fault injection on the active-message wire (am/fault.hpp). Enabling it
  /// also enables the reliable-link layer (sequence numbers, acks,
  /// retransmission, duplicate suppression), so the runtime's guarantee
  /// stays effectively-once, in-order per channel. faults.seed == 0 derives
  /// the injector seed from `seed` above, keeping one-knob reproducibility.
  am::FaultConfig faults;

  /// Destination-coalesced wire batching (am/wire_batch.hpp): small remote
  /// sends pack into one bounded frame per (source, destination) channel,
  /// amortizing per-message injection overhead on the hot path. On by
  /// default; single-node machines stay unbatched automatically. Delivery
  /// semantics are unchanged — frames preserve per-channel FIFO order and
  /// ride the reliable link whole under fault injection.
  am::BatchConfig batching;

  /// Validated construction: returns the first problem found, or nullopt for
  /// a usable config. Runtime's constructor throws the returned error.
  std::optional<ConfigError> validate() const {
    if (nodes == 0) {
      return ConfigError(ConfigErrorCode::kZeroNodes,
                         "RuntimeConfig: nodes must be >= 1");
    }
    if (nodes > kMaxNodes) {
      return ConfigError(
          ConfigErrorCode::kTooManyNodes,
          "RuntimeConfig: " + std::to_string(nodes) +
              " nodes exceeds the 16-bit mail-address wire encoding (max " +
              std::to_string(kMaxNodes) + ")");
    }
    if (max_stack_depth > kMaxStackDepth) {
      return ConfigError(
          ConfigErrorCode::kStackDepthTooLarge,
          "RuntimeConfig: max_stack_depth " + std::to_string(max_stack_depth) +
              " exceeds " + std::to_string(kMaxStackDepth) +
              " (each level is a host stack frame)");
    }
    if (!faults.probabilities_valid()) {
      return ConfigError(
          ConfigErrorCode::kBadFaultConfig,
          "RuntimeConfig: fault probabilities (drop/duplicate/delay) must "
          "lie in [0, 1]");
    }
    if (!batching.valid()) {
      return ConfigError(
          ConfigErrorCode::kBadBatchConfig,
          "RuntimeConfig: wire-batching knobs invalid (frame bytes must lie "
          "in [64, bulk-chunk], max_msgs >= 2, holdoff_min <= holdoff <= "
          "holdoff_max with holdoff_min >= 1)");
    }
    return std::nullopt;
  }
};

}  // namespace hal
