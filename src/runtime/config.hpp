// Runtime configuration.
#pragma once

#include <cstdint>

#include "am/cost_model.hpp"
#include "common/types.hpp"

namespace hal {

enum class MachineKind : std::uint8_t {
  kSim,     ///< deterministic virtual-time simulator (default)
  kThread,  ///< one OS thread per node
};

struct RuntimeConfig {
  NodeId nodes = 4;
  MachineKind machine = MachineKind::kSim;
  am::CostModel costs = am::CostModel::cm5();
  std::uint64_t seed = 0x5eed;

  /// Receiver-initiated random-polling load balancing (Table 4). Idle nodes
  /// poll random victims continuously while the machine-wide work hint is
  /// positive (the front-end stands in for the termination detector Kumar
  /// et al. pair with random polling), so an idle machine stays quiescent.
  bool load_balancing = false;

  /// Cache remote descriptor addresses in locality descriptors (§4.1).
  /// Disabled only by bench/ablation_namecache.
  bool name_cache = true;
  /// Minimal flow control on bulk transfers (§6.5). Disabled only by
  /// bench/ablation_flowcontrol.
  bool flow_control = true;
  /// Collective (quantum) scheduling of broadcast deliveries (§6.4).
  bool collective_broadcast = true;

  /// Compiler-controlled stack-based scheduling bound: send_static falls
  /// back to the generic buffered send beyond this nesting depth.
  std::uint32_t max_stack_depth = 64;

  /// SimMachine safety valve (0 = unlimited events).
  std::uint64_t sim_event_limit = 0;

  /// Record protocol-level events for Chrome-trace export
  /// (Runtime::write_trace). Deterministic under SimMachine.
  bool trace = false;
};

}  // namespace hal
