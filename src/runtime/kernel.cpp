#include "runtime/kernel.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "am/mst.hpp"
#include "common/hash.hpp"
#include "runtime/context.hpp"
#include "runtime/node_manager.hpp"

namespace hal {

Kernel::Kernel(am::Machine& machine, NodeId self,
               const BehaviorRegistry& registry, const RuntimeConfig& config)
    : machine_(machine),
      self_(self),
      registry_(registry),
      config_(config),
      names_(self, stats_),
      bulk_(machine, self,
            am::BulkHandlers{kHBulkRequest, kHBulkAck, kHBulkData}, stats_,
            probes_, pool_,
            [this](NodeId src, std::uint64_t tag,
                   const std::array<std::uint64_t, 2>& meta, Bytes data) {
              node_manager_->bulk_delivered(src, tag, meta, std::move(data));
            }),
      node_manager_(std::make_unique<NodeManager>(*this)),
      rng_(mix64(config.seed) ^ mix64(0x9e3779b9ULL + self)) {
  bulk_.set_flow_control(config.flow_control);
  // hal::check: name this node as the owner of its single-writer structures
  // (NameTable binds itself in its constructor).
  affinity_.bind(self, "Kernel");
  pool_.bind_owner(self);
  dispatcher_.bind_owner(self);
  probes_.bind_owner(self);
  groups_.bind(self);
}

Kernel::~Kernel() = default;

// --- NodeClient ---------------------------------------------------------------

void Kernel::handle(am::Packet p) {
  affinity_.assert_here();
  if (p.retransmitted) {
    // The link layer preserved the original send stamp across retransmits,
    // so this span is first-send -> final in-order delivery: the latency
    // the destination actor experienced because of the loss.
    probes_.record_span(obs::Probe::kRedelivery, p.stamp,
                        machine_.now(self_));
  }
  switch (p.handler) {
    case kHActorMessage:
      node_manager_->on_actor_message(p);
      break;
    case kHCacheFill:
      node_manager_->on_cache_fill(p);
      break;
    case kHFir:
      node_manager_->on_fir(p);
      break;
    case kHFirResponse:
      node_manager_->on_fir_response(p);
      break;
    case kHCreateRequest:
      node_manager_->on_create_request(p);
      break;
    case kHCreateAck:
      node_manager_->on_create_ack(p);
      break;
    case kHReply:
      node_manager_->on_reply(p);
      break;
    case kHGroupCreate:
      node_manager_->on_group_create(p);
      break;
    case kHGroupBroadcast:
      node_manager_->on_group_broadcast(p);
      break;
    case kHGroupMemberSend:
      node_manager_->on_group_member_send(p);
      break;
    case kHStealRequest:
      node_manager_->on_steal_request(p);
      break;
    case kHStealDeny:
      node_manager_->on_steal_deny(p);
      break;
    case kHMigrateAck:
      node_manager_->on_migrate_ack(p);
      break;
    case kHBulkRequest:
    case kHBulkAck:
    case kHBulkData:
      bulk_.route(p);
      break;
    case kHConsole: {
      HAL_ASSERT(self_ == 0 && front_end_ != nullptr);
      front_end_->append(
          p.words[0], static_cast<NodeId>(p.words[1]),
          std::string_view(reinterpret_cast<const char*>(p.payload.data()),
                           p.payload.size()));
      break;
    }
    default:
      HAL_PANIC("Kernel::handle: unknown handler id");
  }
  // Every handler above takes the packet by const reference (message bodies
  // are decoded into pooled buffers, bulk chunks memcpy'd out), so the
  // payload buffer retires here — into the *receiving* node's pool, closing
  // the recycling loop for cross-node traffic.
  pool_.release(std::move(p.payload));
}

bool Kernel::step() {
  affinity_.assert_here();
  auto item = dispatcher_.next();
  if (!item.has_value()) {
    flush_probes();
    return false;
  }
  ++dispatch_batch_len_;
  // The work hint counts this item until processing *completes*, so idle
  // nodes keep polling while a long method is generating more work.
  if (item->kind == Dispatcher::Item::Kind::kActor) {
    ActorRecord* rec = actors_.try_get(item->actor);
    if (rec == nullptr || rec->mailbox.empty()) {
      // Stolen or terminated while queued.
      if (rec != nullptr) rec->scheduled = false;
      machine_.work_hint_add(-1);
      return true;
    }
    // Mailbox burst: run up to kMailboxBurst queued messages while we hold
    // the dispatcher item instead of one message per item (the receive half
    // of wire batching — a decoded frame becomes one dispatcher burst, not
    // max_msgs round trips through the ready queue). `scheduled` stays true
    // for the whole burst, so post_method's re-schedule and any deliveries
    // the methods trigger early-out instead of queueing duplicate items;
    // the per-message dispatcher push/pop and the shared work-hint RMWs
    // collapse to one pair per burst. The cap keeps other actors' latency
    // bounded — same fairness shape as the frame size cap on the wire.
    for (std::uint32_t n = 0; n < kMailboxBurst; ++n) {
      Message m = std::move(rec->mailbox.front());
      rec->mailbox.pop_front();
      if (m.enqueued_at != 0) {
        probes_.record_span(obs::Probe::kMailboxResidency, m.enqueued_at,
                            machine_.now(self_));
      }
      run_method(item->actor, std::move(m), /*cheap_dispatch=*/false);
      // The method may have killed or migrated the actor (the slot lookup
      // is generation-checked) or descheduled it; re-fetch before touching
      // the mailbox again.
      rec = actors_.try_get(item->actor);
      if (rec == nullptr || !rec->scheduled || rec->mailbox.empty()) break;
    }
    if (rec != nullptr && rec->scheduled) {
      rec->scheduled = false;
      if (rec->has_mail()) schedule(item->actor);
    }
  } else {
    run_quantum(item->group, dispatcher_.take_message(*item));
  }
  machine_.work_hint_add(-1);
  return true;
}

bool Kernel::has_work() const { return !dispatcher_.empty(); }

void Kernel::on_idle() {
  flush_probes();
  node_manager_->maybe_poll();
}

SimTime Kernel::service_deadline() const {
  return node_manager_->poll_resume_at();
}

void Kernel::flush_probes() {
  // A dispatcher busy period ends when the ready queue drains (or, for runs
  // that never idle, when the report is assembled).
  if (dispatch_batch_len_ == 0) return;
  probes_.record(obs::Probe::kDispatchBatch, dispatch_batch_len_);
  dispatch_batch_len_ = 0;
}

// --- Creation (§5) --------------------------------------------------------------

MailAddress Kernel::create_local(BehaviorId behavior) {
  charge(costs().actor_alloc_ns + costs().descriptor_alloc_ns);
  std::unique_ptr<ActorBase> impl = registry_.construct(behavior);
  const SlotId aslot = install_actor(std::move(impl), behavior, {}, {});
  stats_.bump(Stat::kActorsCreatedLocal);
  trace_mark(trace::EventKind::kCreateLocal, behavior);
  return actors_.get(aslot).address;
}

MailAddress Kernel::create(BehaviorId behavior, NodeId target) {
  if (target == self_) return create_local(behavior);
  // Alias scheme (§5): allocate the alias, fire the creation request, and
  // return immediately — the caller's continuation proceeds while the remote
  // node does the actual allocation.
  charge(costs().descriptor_alloc_ns);
  const SlotId dslot =
      names_.allocate(LocalityDescriptor::make_remote(target));
  MailAddress alias;
  alias.home = self_;
  alias.desc = dslot;
  alias.created_on = target;
  alias.behavior = behavior;
  alias.alias = true;
  stats_.bump(Stat::kAliasesAllocated);
  trace_mark(trace::EventKind::kCreateAlias, target, behavior);

  am::Packet p;
  p.src = self_;
  p.dst = target;
  p.handler = kHCreateRequest;
  p.words = {alias.pack_word0(), alias.pack_word1(), behavior, 0, 0, 0};
  machine_.send(std::move(p));
  return alias;
}

SlotId Kernel::install_actor(std::unique_ptr<ActorBase> impl,
                             BehaviorId behavior, const MailAddress& addr_in,
                             const MailAddress& alias, std::uint32_t epoch) {
  const SlotId aslot = actors_.allocate();
  MailAddress addr = addr_in;
  SlotId dslot;
  if (!addr.valid()) {
    // Fresh ordinary address: the mail address embeds this node's
    // descriptor slot — the paper's "real address" pair.
    dslot = names_.allocate();
    addr.home = self_;
    addr.desc = dslot;
    addr.created_on = self_;
    addr.behavior = behavior;
  } else if (addr.home == self_) {
    // Actor returning to its birthplace: the address's embedded descriptor
    // is ours; it becomes local again (collapsing the forward chain).
    HAL_ASSERT(names_.try_descriptor(addr.desc) != nullptr);
    dslot = addr.desc;
  } else {
    // Migrated-in foreigner: reuse any descriptor we already hold for it
    // (this is what prevents forwarding cycles) or allocate one.
    dslot = names_.lookup(addr);
    if (!dslot.valid()) {
      dslot = names_.allocate();
      names_.bind(addr, dslot);
    }
  }
  names_.update(dslot, LocalityDescriptor::make_local(aslot, epoch));

  SlotId alias_dslot{};
  if (alias.valid()) {
    if (alias.home == self_) {
      // Actor migrated onto the node that requested its creation: the alias
      // embeds a descriptor slot here; make it local too.
      HAL_ASSERT(names_.try_descriptor(alias.desc) != nullptr);
      alias_dslot = alias.desc;
      names_.update(alias_dslot, LocalityDescriptor::make_local(aslot, epoch));
    } else {
      names_.bind(alias, dslot);
    }
  }

  ActorRecord& rec = actors_.get(aslot);
  rec.impl = std::move(impl);
  rec.behavior = behavior;
  rec.address = addr;
  rec.alias = alias;
  rec.self_desc = dslot;
  rec.alias_desc = alias_dslot;
  rec.epoch = epoch;

  node_manager_->registered(addr);
  if (alias.valid()) node_manager_->registered(alias);
  return aslot;
}

// --- Send path (Fig. 3, sender side) ---------------------------------------------

void Kernel::send_message(Message m) {
  affinity_.assert_here();
  // Name translation happens even when the recipient is local (§4): the
  // home-node fast path costs a locality check, the foreign path a hash
  // lookup.
  SlotId ds = names_.resolve(m.dest);
  charge(m.dest.home == self_ ? costs().locality_check_ns
                              : costs().name_lookup_ns);
  if (!ds.valid()) {
    if (m.dest.home == self_) {
      dead_letter(m, DeadLetterCause::kUnknownActor);
      return;
    }
    // First send to this address from this node: allocate a best-guess
    // descriptor toward the birthplace (or, for aliases, the actual
    // creation node) encoded in the address itself (§4.1).
    charge(costs().descriptor_alloc_ns + costs().name_insert_ns);
    ds = names_.allocate(
        LocalityDescriptor::make_remote(m.dest.fallback_node()));
    names_.bind(m.dest, ds);
  }
  const LocalityDescriptor& d = names_.descriptor(ds);
  if (d.local()) {
    stats_.bump(Stat::kMessagesSentLocal);
    deliver_local(d.actor, std::move(m));
  } else {
    stats_.bump(Stat::kMessagesSentRemote);
    node_manager_->ship(std::move(m), ds);
  }
}

void Kernel::deliver_local(SlotId actor_slot, Message m) {
  ActorRecord* rec = actors_.try_get(actor_slot);
  if (rec == nullptr) {
    dead_letter(m, DeadLetterCause::kStaleDescriptor);
    return;
  }
  charge(costs().enqueue_ns);
  m.enqueued_at = delivery_now();
  rec->mailbox.push_back(std::move(m));
  stats_.bump(Stat::kMessagesDelivered);
  schedule(actor_slot);
}

void Kernel::schedule(SlotId actor_slot) {
  ActorRecord* rec = actors_.try_get(actor_slot);
  if (rec == nullptr || rec->scheduled || !rec->has_mail()) return;
  rec->scheduled = true;
  charge(costs().schedule_ns);
  dispatcher_.schedule_actor(actor_slot);
  machine_.work_hint_add(1);
}

void Kernel::schedule_quantum(GroupId gid, Message m) {
  charge(costs().schedule_ns);
  dispatcher_.schedule_quantum(gid, std::move(m));
  machine_.work_hint_add(1);
}

SlotId Kernel::locality_check(const MailAddress& addr) {
  charge(costs().locality_check_ns);
  const SlotId ds = names_.resolve(addr);
  if (!ds.valid()) return {};
  const LocalityDescriptor& d = names_.descriptor(ds);
  if (!d.local()) return {};
  return actors_.try_get(d.actor) != nullptr ? d.actor : SlotId{};
}

// --- Method execution -------------------------------------------------------------

void Kernel::execute_message(SlotId actor_slot, Message& m) {
  const SimTime t0 = machine_.now(self_);
  ActorRecord& rec = actors_.get(actor_slot);
  // The behaviour object is heap-stable; the record reference is not (the
  // method may create actors and grow the pool), so take the raw pointer
  // first and re-fetch the record afterwards.
  ActorBase* impl = rec.impl.get();
  Context ctx(*this, actor_slot, rec.address, &m);
  const void* watched = pool_.watch(m.payload);
  impl->dispatch_message(ctx, m);
  if (auto next = ctx.take_become()) {
    charge(costs().become_ns);
    actors_.get(actor_slot).impl = std::move(next);
  }
  probes_.record_span(obs::Probe::kMethodExecution, t0, machine_.now(self_));
  // The message is consumed; recycle its payload buffer (a no-op shell if
  // the method moved the blob out — recorded as an escape, the buffer now
  // belongs to user code).
  pool_.note_escape_if_moved(watched, m.payload);
  pool_.release(std::move(m.payload));
}

void Kernel::run_method(SlotId actor_slot, Message m, bool cheap_dispatch) {
  ActorRecord* rec = actors_.try_get(actor_slot);
  if (rec == nullptr) {
    dead_letter(m, DeadLetterCause::kStaleDescriptor);
    return;
  }
  // Local synchronization constraints (§6.1): a disabled method's message
  // moves to the pending queue and is re-examined after later executions.
  charge(costs().constraint_check_ns);
  if (!rec->impl->method_enabled(m.selector)) {
    charge(costs().enqueue_ns);
    m.enqueued_at = machine_.now(self_);
    rec->pending.push_back(std::move(m));
    stats_.bump(Stat::kPendingEnqueued);
    post_method(actor_slot, *rec);
    return;
  }
  charge(cheap_dispatch ? costs().static_dispatch_ns : costs().dispatch_ns);
  stats_.bump(cheap_dispatch ? Stat::kStaticDispatches
                             : Stat::kGenericDispatches);
  const SimTime t0 = tracing() ? machine_.now(self_) : 0;
  const BehaviorId traced_behavior = rec->behavior;
  const Selector traced_selector = m.selector;
  execute_message(actor_slot, m);
  if (tracing()) {
    trace_event(trace::EventKind::kMethod, t0, machine_.now(self_) - t0,
                traced_behavior, traced_selector);
  }
  rec = actors_.try_get(actor_slot);
  HAL_ASSERT(rec != nullptr);  // actors are only freed in post_method
  if (!rec->dying && rec->migrate_target == kInvalidNode) {
    replay_pending(actor_slot);
    rec = actors_.try_get(actor_slot);
    HAL_ASSERT(rec != nullptr);
  }
  post_method(actor_slot, *rec);
}

void Kernel::replay_pending(SlotId actor_slot) {
  // "Whenever an actor completes its method execution, it examines whether
  // or not it has pending messages. If it does, it dispatches the pending
  // messages one by one before it schedules the next actor." (§6.1)
  for (;;) {
    ActorRecord* rec = actors_.try_get(actor_slot);
    if (rec == nullptr || rec->pending.empty() || rec->dying ||
        rec->migrate_target != kInvalidNode) {
      return;
    }
    bool fired = false;
    for (std::size_t i = 0; i < rec->pending.size(); ++i) {
      charge(costs().constraint_check_ns);
      if (rec->impl->method_enabled(rec->pending[i].selector)) {
        Message m = std::move(rec->pending[i]);
        rec->pending.erase_at(i);
        stats_.bump(Stat::kPendingReplayed);
        if (m.enqueued_at != 0) {
          probes_.record_span(obs::Probe::kPendingResidency, m.enqueued_at,
                              machine_.now(self_));
        }
        charge(costs().dispatch_ns);
        execute_message(actor_slot, m);
        fired = true;
        break;  // record may have moved; rescan from the front
      }
    }
    if (!fired) return;
  }
}

void Kernel::post_method(SlotId actor_slot, ActorRecord& rec) {
  if (rec.dying) {
    // Unprocessed mail dies with the actor — surface it in the dead-letter
    // count and retire the payload buffers rather than dropping them.
    while (!rec.mailbox.empty()) {
      Message m = std::move(rec.mailbox.front());
      rec.mailbox.pop_front();
      dead_letter(m, DeadLetterCause::kShutdownDrain);
    }
    while (!rec.pending.empty()) {
      Message m = std::move(rec.pending.front());
      rec.pending.pop_front();
      dead_letter(m, DeadLetterCause::kShutdownDrain);
    }
    // Descriptors are never reclaimed (the paper defers this to a future
    // distributed GC, §9): they become dead-letter sinks so stale senders
    // fail loudly in stats rather than corrupt a recycled slot.
    names_.update(rec.self_desc,
                  LocalityDescriptor::make_local(SlotId{}, rec.epoch));
    if (rec.alias_desc.valid()) {
      names_.update(rec.alias_desc,
                    LocalityDescriptor::make_local(SlotId{}, rec.epoch));
    }
    actors_.free(actor_slot);
    return;
  }
  if (rec.migrate_target != kInvalidNode) {
    const NodeId target = rec.migrate_target;
    rec.migrate_target = kInvalidNode;
    perform_migration(actor_slot, target);
    return;
  }
  if (rec.has_mail()) schedule(actor_slot);
}

void Kernel::run_quantum(GroupId gid, Message m) {
  GroupInfo* g = groups_.find(gid);
  HAL_ASSERT(g != nullptr);  // quanta are scheduled only for known groups
  const bool collective = config_.collective_broadcast;
  if (collective) {
    // One method lookup for the whole quantum (§6.4): the per-member
    // dispatch below then runs at fast-path cost.
    charge(costs().dispatch_ns);
  }
  // Member list is fixed at creation; copy defensively because methods may
  // create groups and rehash the table.
  const auto members = g->members;
  for (const auto& [index, addr] : members) {
    (void)index;
    Message copy = m.clone_using(pool_);
    copy.dest = addr;
    const SlotId ds = names_.resolve(addr);
    const LocalityDescriptor* d =
        ds.valid() ? &names_.descriptor(ds) : nullptr;
    if (d != nullptr && d->local()) {
      run_method(d->actor, std::move(copy), /*cheap_dispatch=*/collective);
    } else {
      // Member migrated away: fall back to the generic send path.
      send_message(std::move(copy));
    }
  }
  pool_.release(std::move(m.payload));
}

// --- Join continuations (§6.2) -------------------------------------------------

ContRef Kernel::make_join(std::uint32_t slot_count, JoinBody body,
                          const MailAddress& creator) {
  HAL_ASSERT(slot_count > 0);
  charge(costs().join_alloc_ns);
  const SlotId s = joins_.allocate();
  JoinContinuation& jc = joins_.get(s);
  jc.init(slot_count);
  jc.function = std::move(body);
  jc.creator = creator;
  jc.created_at = machine_.now(self_);
  stats_.bump(Stat::kJoinContinuationsCreated);
  // A continuation that never completes is a protocol bug; hold a work
  // token so quiescence detection turns it into a loud failure.
  machine_.token_acquire();
  return ContRef{self_, s, 0};
}

void Kernel::prefill_join(const ContRef& ref, std::uint64_t word) {
  fill_join(ref, word, {});
}

void Kernel::reply_to(const ContRef& ref, std::uint64_t word, Bytes blob) {
  HAL_ASSERT(ref.valid());
  if (ref.node == self_) {
    fill_join(ref, word, std::move(blob));
    return;
  }
  if (blob.size() > am::kMaxInlinePayload) {
    // Large reply (e.g. a matrix block): three-phase bulk transfer with the
    // continuation slot in the metadata and the value word prefixed.
    Bytes data = pool_.acquire(sizeof(std::uint64_t) + blob.size());
    std::memcpy(data.data(), &word, sizeof(word));
    std::memcpy(data.data() + sizeof(word), blob.data(), blob.size());
    pool_.release(std::move(blob));
    bulk_.send(ref.node, kTagReplyBlob, {ref.jc.pack(), ref.slot},
               std::move(data));
    return;
  }
  am::Packet p;
  p.src = self_;
  p.dst = ref.node;
  p.handler = kHReply;
  p.words = {ref.jc.pack(), ref.slot, word, blob.empty() ? 0ULL : 1ULL, 0, 0};
  p.payload = std::move(blob);
  machine_.send(std::move(p));
}

void Kernel::fill_join(const ContRef& ref, std::uint64_t word, Bytes blob) {
  HAL_ASSERT(ref.node == self_);
  JoinContinuation* jc = joins_.try_get(ref.jc);
  HAL_ASSERT(jc != nullptr);  // replies never outlive their continuation
  charge(costs().join_fill_ns);
  jc->fill(ref.slot, word, std::move(blob));
  stats_.bump(Stat::kRepliesJoined);
  if (!jc->ready()) return;
  // Counter hit zero: run the compiled continuation body on this stream.
  JoinContinuation done = std::move(*jc);
  joins_.free(ref.jc);
  machine_.token_release();
  probes_.record_span(obs::Probe::kJoinRoundTrip, done.created_at,
                      machine_.now(self_));
  trace_mark(trace::EventKind::kJoinFired, done.slot_count);
  Context ctx(*this, SlotId{}, done.creator, nullptr);
  done.function(ctx, done.view());
  // The body has consumed the joined values; retire the reply blobs
  // (pool-acquired on arrival in on_reply / the bulk reply path).
  for (Bytes& b : done.blobs()) pool_.release(std::move(b));
}

// --- Groups (§2.2, §6.4) ---------------------------------------------------------

GroupId Kernel::group_new(BehaviorId behavior, std::uint32_t count) {
  HAL_ASSERT(count > 0);
  const GroupId gid{self_, group_seq_++};
  node_manager_->group_create_local(gid, behavior, count, self_);
  am::Packet p;
  p.src = self_;
  p.handler = kHGroupCreate;
  p.words = {gid.pack(), behavior, count, self_, 0, 0};
  node_manager_->relay_mst(p, self_);
  return gid;
}

void Kernel::group_broadcast(
    GroupId gid, Selector sel, std::uint8_t argc,
    const std::array<std::uint64_t, kMsgInlineWords>& args,
    const ContRef& cont, Bytes payload) {
  stats_.bump(Stat::kBroadcastsSent);
  trace_mark(trace::EventKind::kBroadcast, gid.seq);
  Message m;
  m.selector = sel;
  m.argc = argc;
  m.args = args;
  m.cont = cont;
  m.payload = std::move(payload);
  HAL_ASSERT(m.body_bytes() <= am::kMaxInlinePayload);  // broadcasts stay small
  Bytes body = pool_.reserve(m.body_bytes());
  m.encode_body_into(body);

  am::Packet p;
  p.src = self_;
  p.handler = kHGroupBroadcast;
  p.words = {gid.pack(), pack_sel_argc(sel, argc), cont.pack_word0(),
             cont.pack_word1(), self_, 0};
  p.payload = std::move(body);
  node_manager_->relay_mst(p, self_);
  pool_.release(std::move(p.payload));

  // Local delivery: a quantum if the group is known here, parked otherwise.
  node_manager_->broadcast_deliver_local(gid, std::move(m));
}

void Kernel::group_member_send(GroupId gid, NodeId root, std::uint32_t index,
                               Message m) {
  const NodeId home = static_cast<NodeId>((root + index) % node_count());
  if (home == self_) {
    node_manager_->member_deliver_local(gid, index, std::move(m));
    return;
  }
  if (m.body_bytes() > am::kMaxInlinePayload) {
    // Large member-directed message (e.g. a matrix column): three-phase
    // bulk transfer, resolved against the group table on the birth node.
    ByteWriter w(pool_.reserve(m.full_bytes()));
    m.encode_full(w);
    pool_.release(std::move(m.payload));
    bulk_.send(home, kTagMemberMessage, {gid.pack(), index},
               std::move(w).take());
    return;
  }
  am::Packet p;
  p.src = self_;
  p.dst = home;
  p.handler = kHGroupMemberSend;
  p.words = {gid.pack(), index, pack_sel_argc(m.selector, m.argc),
             m.cont.pack_word0(), m.cont.pack_word1(), 0};
  p.payload = pool_.reserve(m.body_bytes());
  m.encode_body_into(p.payload);
  pool_.release(std::move(m.payload));
  machine_.send(std::move(p));
}

// --- Migration / termination ------------------------------------------------------

void Kernel::request_migrate(SlotId actor_slot, NodeId target) {
  ActorRecord* rec = actors_.try_get(actor_slot);
  HAL_ASSERT(rec != nullptr);
  HAL_ASSERT(target < node_count());
  rec->migrate_target = target;
}

void Kernel::perform_migration(SlotId actor_slot, NodeId target) {
  ActorRecord* recp = actors_.try_get(actor_slot);
  HAL_ASSERT(recp != nullptr);
  if (target == self_) {
    if (recp->has_mail()) schedule(actor_slot);
    return;
  }
  ActorRecord& rec = *recp;
  HAL_ASSERT(rec.impl->migratable());
  stats_.bump(Stat::kMigrationsOut);
  const std::uint32_t new_epoch = rec.epoch + 1;
  trace_mark(trace::EventKind::kMigrateOut, target, new_epoch);

  // The image and state writers can outgrow their reservation (pack_state
  // and buffered mail are unbounded); a growth reallocation frees the
  // pooled allocation, so its identity is watched and the free recorded as
  // an escape — otherwise the hal::check ledger would misaccount it.
  Bytes image_buf = pool_.reserve(am::kBulkChunkBytes);
  const void* image_id = pool_.watch(image_buf);
  ByteWriter w(std::move(image_buf));
  w.write(rec.behavior);
  w.write(rec.address.pack_word0());
  w.write(rec.address.pack_word1());
  w.write(rec.alias.pack_word0());
  w.write(rec.alias.pack_word1());
  w.write(new_epoch);
  w.write(static_cast<std::uint8_t>(rec.relocatable ? 1 : 0));
  Bytes state_buf = pool_.reserve(0);
  const void* state_id = pool_.watch(state_buf);
  ByteWriter state(std::move(state_buf));
  rec.impl->pack_state(state);
  Bytes state_bytes = std::move(state).take();
  pool_.note_escape_if_moved(state_id, state_bytes);
  w.write_bytes(state_bytes);
  pool_.release(std::move(state_bytes));
  w.write(static_cast<std::uint32_t>(rec.mailbox.size()));
  for (std::size_t i = 0; i < rec.mailbox.size(); ++i)
    rec.mailbox[i].encode_full(w);
  w.write(static_cast<std::uint32_t>(rec.pending.size()));
  for (std::size_t i = 0; i < rec.pending.size(); ++i)
    rec.pending[i].encode_full(w);

  // The descriptors left behind become the forward chain (§4.3); the
  // descriptor address at the new node is cached when the MigrateAck
  // arrives. Epoch new_epoch: "after its next migration the actor is at
  // `target`" — strictly fresher than anything this node held.
  names_.update(rec.self_desc,
                LocalityDescriptor::make_remote(target, SlotId{}, new_epoch));
  if (rec.alias_desc.valid()) {
    names_.update(rec.alias_desc,
                  LocalityDescriptor::make_remote(target, SlotId{}, new_epoch));
  }
  actors_.free(actor_slot);
  Bytes image = std::move(w).take();
  pool_.note_escape_if_moved(image_id, image);
  // meta[0] = departure time: the arrival side charges the end-to-end
  // migration probe against it.
  bulk_.send(target, kTagMigration, {machine_.now(self_), 0},
             std::move(image));
}

void Kernel::terminate_actor(SlotId actor_slot) {
  ActorRecord* rec = actors_.try_get(actor_slot);
  HAL_ASSERT(rec != nullptr);
  rec->dying = true;
}

void Kernel::reap_actor(SlotId actor_slot) {
  ActorRecord* rec = actors_.try_get(actor_slot);
  HAL_ASSERT(rec != nullptr);
  // GC runs at quiescence: an unreachable actor cannot have buffered mail.
  HAL_ASSERT(rec->mailbox.empty() && rec->pending.empty() &&
             !rec->scheduled);
  names_.update(rec->self_desc,
                LocalityDescriptor::make_local(SlotId{}, rec->epoch));
  if (rec->alias_desc.valid()) {
    names_.update(rec->alias_desc,
                  LocalityDescriptor::make_local(SlotId{}, rec->epoch));
  }
  actors_.free(actor_slot);
}

void Kernel::console_print(std::string_view text) {
  // I/O requests travel to the front-end through node 0, like the paper's
  // partition manager. Lines are capped at the inline payload size.
  const std::size_t n = std::min(text.size(), am::kMaxInlinePayload);
  am::Packet p;
  p.src = self_;
  p.dst = 0;
  p.handler = kHConsole;
  p.words = {machine_.now(self_), self_, 0, 0, 0, 0};
  p.payload = pool_.acquire(n);
  if (n != 0) std::memcpy(p.payload.data(), text.data(), n);
  machine_.send(std::move(p));
}

void Kernel::dead_letter(Message& m, DeadLetterCause cause) {
  ++dead_letters_;
  ++dead_letter_causes_[static_cast<std::size_t>(cause)];
  // The message dies here, but its payload buffer goes back to the pool —
  // dropping it would show up as a leak in the hal::check buffer ledger.
  // release() moves the buffer out, leaving an empty shell, so a message
  // that reaches two dead-letter paths cannot retire its buffer twice.
  pool_.release(std::move(m.payload));
}

void Kernel::for_each_in_flight_payload(
    const std::function<void(const Bytes&)>& fn) {
  actors_.for_each([&](SlotId, ActorRecord& rec) {
    for (std::size_t i = 0; i < rec.mailbox.size(); ++i) {
      fn(rec.mailbox[i].payload);
    }
    for (std::size_t i = 0; i < rec.pending.size(); ++i) {
      fn(rec.pending[i].payload);
    }
  });
  dispatcher_.for_each_quantum([&](const Message& m) { fn(m.payload); });
  joins_.for_each([&](SlotId, JoinContinuation& jc) {
    for (const Bytes& b : jc.blobs()) fn(b);
  });
  node_manager_->for_each_in_flight_payload(fn);
}

DrainStats Kernel::drain_in_flight() {
  DrainStats out;
  // Buffered actor mail: messages parked behind disabled constraints, or
  // never dispatched because the run was stopped early.
  actors_.for_each([&](SlotId, ActorRecord& rec) {
    auto drain_queue = [&](RingDeque<Message>& q) {
      while (!q.empty()) {
        Message m = std::move(q.front());
        q.pop_front();
        ++out.messages;
        if (m.payload.capacity() != 0) ++out.payloads;
        pool_.release(std::move(m.payload));
      }
    };
    drain_queue(rec.mailbox);
    drain_queue(rec.pending);
  });
  // Broadcast quanta still buffered in the dispatcher's side pool.
  dispatcher_.drain_quanta([&](Message& m) {
    ++out.messages;
    if (m.payload.capacity() != 0) ++out.payloads;
    pool_.release(std::move(m.payload));
  });
  // Unfilled join continuations: retire the reply blobs already collected
  // and give back the work token each continuation holds.
  std::vector<SlotId> join_slots;
  joins_.for_each(
      [&](SlotId id, JoinContinuation&) { join_slots.push_back(id); });
  for (SlotId id : join_slots) {
    JoinContinuation& jc = joins_.get(id);
    for (Bytes& b : jc.blobs()) {
      if (b.capacity() != 0) ++out.payloads;
      pool_.release(std::move(b));
    }
    joins_.free(id);
    machine_.token_release();
  }
  // NodeManager in-flight state: parked messages awaiting FIR responses and
  // the awaiting-registration / awaiting-group queues.
  node_manager_->drain_in_flight(out);
  return out;
}

}  // namespace hal
