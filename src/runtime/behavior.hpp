// Behaviour declaration machinery: the stand-in for HAL's compiler output.
//
// A behaviour class derives from ActorBase and lists its methods with the
// HAL_BEHAVIOR macro; MethodList generates the selector-indexed dispatch
// table (what the HAL compiler emits as C switch code) and the compile-time
// selector lookup used by Context::send<&B::method>. Synchronization
// constraints are expressed by overriding method_enabled — the disabling
// conditions of §2.2/§6.1.
//
//   class Counter : public hal::ActorBase {
//    public:
//     void on_inc(hal::Context& ctx, std::int64_t by) { value_ += by; }
//     void on_get(hal::Context& ctx) { ctx.reply(value_); }
//     HAL_BEHAVIOR(Counter, &Counter::on_inc, &Counter::on_get)
//    private:
//     std::int64_t value_ = 0;
//   };
#pragma once

#include <string_view>

#include "runtime/actor_base.hpp"
#include "runtime/context.hpp"

namespace hal {

template <typename B, auto... Methods>
struct MethodList {
  static constexpr Selector kCount = sizeof...(Methods);

  static void dispatch(B& self, Context& ctx, Message& m) {
    HAL_ASSERT(m.selector < kCount);
    Selector i = 0;
    // Expands to an if-chain the optimizer folds into a jump table.
    (void)((m.selector == i++
                ? (codec::invoke_decoded(self, Methods, ctx, m), true)
                : false) ||
           ...);
  }

  template <auto M>
  static constexpr Selector index_of() {
    Selector i = 0;
    Selector found = kCount;
    (void)((same_method<M, Methods>() ? (found = i, true) : (++i, false)) ||
           ...);
    static_assert(sizeof...(Methods) > 0, "behaviour declares no methods");
    if (found == kCount) {
      // Not a constant-expression failure path: index_of is only called in
      // constant evaluation, so reaching here fails compilation.
      HAL_PANIC("method not in behaviour's HAL_BEHAVIOR list");
    }
    return found;
  }

 private:
  template <auto A, auto Bm>
  static constexpr bool same_method() {
    if constexpr (std::is_same_v<decltype(A), decltype(Bm)>) {
      return A == Bm;
    } else {
      return false;
    }
  }
};

}  // namespace hal

/// Declare a behaviour's method table. First argument is the class name,
/// the rest are member-function pointers in selector order.
#define HAL_BEHAVIOR(Type, ...)                                             \
  using MethodsT = ::hal::MethodList<Type, __VA_ARGS__>;                    \
  void dispatch_message(::hal::Context& ctx, ::hal::Message& m) override {  \
    MethodsT::dispatch(*this, ctx, m);                                      \
  }                                                                         \
  ::hal::Selector method_count() const override { return MethodsT::kCount; } \
  std::string_view behavior_name() const override { return #Type; }
