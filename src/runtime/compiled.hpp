// The open compiler interface (§6.3).
//
// "The large performance difference between the generic message send
// mechanism and function invocation justifies the use of runtime locality
// check to enable static method dispatch for scheduling local messages."
// The runtime exposes its locality-check and method-lookup routines so the
// compiler can emit, for every send whose receiver type it inferred
// uniquely, a guarded direct invocation on the sender's stack — falling
// back to the generic buffered send when the receiver is remote, of another
// type, disabled, or the stack budget is exhausted.
//
// In this reproduction, "compiler-generated code" is these templates,
// instantiated at the call site with the statically known method.
#pragma once

#include "runtime/behavior.hpp"
#include "runtime/context.hpp"

namespace hal::compiled {

/// The guarded fast path: locality check + type check + constraint check +
/// direct, stack-based invocation (no context switch, no queueing). Returns
/// true when the fast path fired; callers normally use send_static instead.
template <auto Method, typename... Args>
bool try_invoke_local(Context& ctx, const MailAddress& addr, Args&&... args) {
  using B = class_of<Method>;
  Kernel& k = ctx.kernel();
  if (!k.stack_budget_left()) return false;
  const SlotId slot = k.locality_check(addr);
  if (!slot.valid()) return false;
  ActorRecord* rec = k.actor(slot);
  // Type-dependent dispatch guard: the compiler inferred a unique type; the
  // runtime verifies it before committing to the static target.
  B* obj = dynamic_cast<B*>(rec->impl.get());
  if (obj == nullptr) return false;

  Message m;
  m.dest = addr;
  m.selector = sel<Method>();
  codec::encode_args(m, std::forward<Args>(args)...);
  Kernel::StackGuard guard(k);
  // run_method performs the enabled check (parking to the pending queue if
  // the constraint disables the method), the pending replay, and the
  // become/migrate/terminate post-processing — at fast-path dispatch cost.
  k.run_method(slot, std::move(m), /*cheap_dispatch=*/true);
  return true;
}

/// Compiler-emitted send: stack-based static dispatch when the guard holds,
/// generic buffered send otherwise.
template <auto Method, typename... Args>
void send_static(Context& ctx, const MailAddress& addr, Args&&... args) {
  if (try_invoke_local<Method>(ctx, addr, args...)) return;
  ctx.template send<Method>(addr, std::forward<Args>(args)...);
}

/// send_static with an explicit reply continuation.
template <auto Method, typename... Args>
void send_static_cont(Context& ctx, const MailAddress& addr,
                      const ContRef& cont, Args&&... args) {
  using B = class_of<Method>;
  Kernel& k = ctx.kernel();
  if (k.stack_budget_left()) {
    const SlotId slot = k.locality_check(addr);
    if (slot.valid()) {
      ActorRecord* rec = k.actor(slot);
      if (dynamic_cast<B*>(rec->impl.get()) != nullptr) {
        Message m;
        m.dest = addr;
        m.selector = sel<Method>();
        m.cont = cont;
        codec::encode_args(m, args...);
        Kernel::StackGuard guard(k);
        k.run_method(slot, std::move(m), /*cheap_dispatch=*/true);
        return;
      }
    }
  }
  ctx.template send_cont<Method>(addr, cont, std::forward<Args>(args)...);
}

}  // namespace hal::compiled
