// Per-actor runtime bookkeeping.
//
// An ActorRecord pairs the user behaviour object with the kernel state the
// paper's runtime keeps per actor: its mail queue, the auxiliary *pending
// queue* used to enforce local synchronization constraints (§6.1), its
// addresses (ordinary and, for remotely created actors, the alias), and the
// slot of its locality descriptor on the current node.
#pragma once

#include <memory>

#include "common/ring_buffer.hpp"
#include "common/slot_pool.hpp"
#include "runtime/actor_base.hpp"
#include "runtime/message.hpp"

namespace hal {

struct ActorRecord {
  std::unique_ptr<ActorBase> impl;
  BehaviorId behavior = kInvalidBehavior;

  /// Ordinary mail address (home = birthplace).
  MailAddress address;
  /// Alias, when the actor was created in response to a remote request (§5).
  MailAddress alias;

  /// This node's locality descriptor for the actor (kind == kLocal).
  SlotId self_desc{};
  /// Second local descriptor when the actor lives on its alias's home node
  /// (the alias address embeds that node's descriptor slot directly).
  SlotId alias_desc{};

  /// Buffered incoming messages (the Actor model's mail queue).
  RingDeque<Message> mailbox;
  /// Messages whose method was disabled when dispatched (§6.1).
  RingDeque<Message> pending;

  /// Actor is in the dispatcher's ready structure.
  bool scheduled = false;
  /// Actor requested migration; the kernel performs it after the current
  /// method completes (actors are single-threaded, so migration never
  /// interrupts a method body).
  NodeId migrate_target = kInvalidNode;
  /// The load balancer may relocate this actor (set via Context).
  bool relocatable = false;
  /// Completed migrations — the actor's location epoch (see
  /// LocalityDescriptor::epoch).
  std::uint32_t epoch = 0;
  /// Actor called Context::terminate(); freed after the current method.
  bool dying = false;

  bool has_mail() const noexcept { return !mailbox.empty(); }
};

}  // namespace hal
