#include "runtime/runtime.hpp"

#include <chrono>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "am/machine_factory.hpp"
#include "am/sim_machine.hpp"  // makespan_impl downcast (kSim only)

namespace hal {

Runtime::Runtime(RuntimeConfig config) : config_(config) {
  if (auto err = config_.validate()) throw *err;
  machine_ = am::make_machine(config_);
  kernels_.reserve(config_.nodes);
  for (NodeId n = 0; n < config_.nodes; ++n) {
    kernels_.push_back(
        std::make_unique<Kernel>(*machine_, n, registry_, config_));
    machine_->attach(n, kernels_[n].get());
    // One shared ledger: payload buffers recycle across nodes (the sender's
    // pool acquires, the receiver's retires), so the live set is global.
    kernels_[n]->pool().set_ledger(&ledger_);
  }
  // Node 0's kernel relays I/O requests to the front-end (Fig. 1).
  kernels_[0]->set_front_end(&front_end_);
  if (config_.trace) {
    for (auto& k : kernels_) k->set_tracer(&tracer_);
  }
  // After the kernels attach, so each link endpoint can borrow its node's
  // payload pool. A zero injector seed inherits the runtime seed: one knob
  // reproduces both the schedule and the fault pattern.
  am::FaultConfig faults = config_.faults;
  if (faults.seed == 0) faults.seed = config_.seed;
  machine_->configure_faults(faults);
  // After the kernels attach for the same reason: each aggregator's frame
  // buffers come from its node's payload pool. Single-node machines stay
  // unbatched (configure_batching is inert there).
  machine_->configure_batching(config_.batching);
}

Runtime::~Runtime() {
  // Retire whatever is still buffered (dead letters at teardown) so the
  // pools get their buffers back and held work tokens are returned.
  shutdown_drain();
}

DrainStats Runtime::shutdown_drain() {
  DrainStats total;
  // Open frames first (their records were never delivered), then the link:
  // retransmit masters and out-of-order buffers retire into the pools before
  // the kernels' own drain accounting runs.
  machine_->drain_wire();
  machine_->drain_links();
  for (auto& k : kernels_) {
    // The drain releases buffers into each kernel's pool; run it "as" that
    // node so the pools' affinity guards stay satisfied.
    check::ScopedExecutionNode scope(k->self());
    total += k->drain_in_flight();
  }
  return total;
}

void Runtime::run() {
  HAL_ASSERT(!ran_);
  ran_ = true;
  const auto t0 = std::chrono::steady_clock::now();
  machine_->run();
  const auto t1 = std::chrono::steady_clock::now();
  wall_ns_ = static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

SimTime Runtime::makespan_impl() const {
  if (config_.machine == MachineKind::kSim) {
    return static_cast<const am::SimMachine&>(*machine_).makespan();
  }
  return wall_ns_;
}

StatBlock Runtime::total_stats_impl() const {
  StatBlock total;
  for (const auto& k : kernels_) total += k->stats();
  // Machine-side counters (link endpoints, wire aggregators) fold in here
  // too, keeping this legacy accessor consistent with report().
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (const am::LinkStats* ls = machine_->link_stats(n)) {
      total.bump(Stat::kLinkDropsInjected, ls->drops_injected);
      total.bump(Stat::kLinkDuplicatesInjected, ls->duplicates_injected);
      total.bump(Stat::kLinkDelaysInjected, ls->delays_injected);
      total.bump(Stat::kLinkRetransmits, ls->retransmits);
      total.bump(Stat::kLinkDupesSuppressed, ls->dupes_suppressed);
      total.bump(Stat::kLinkAcksSent, ls->acks_sent);
    }
    if (const am::WireStats* ws = machine_->wire_stats(n)) {
      total.bump(Stat::kWireFramesSent, ws->frames_sent);
      total.bump(Stat::kWireMsgsCoalesced, ws->msgs_coalesced);
      total.bump(Stat::kWireFlushFill, ws->flush_fill);
      total.bump(Stat::kWireFlushTimer, ws->flush_timer);
      total.bump(Stat::kWireFlushIdle, ws->flush_idle);
      total.bump(Stat::kWireFlushBarrier, ws->flush_barrier);
    }
  }
  return total;
}

obs::RunReport Runtime::report() {
  obs::RunReport r;
  r.machine = std::string(to_string(config_.machine));
  r.nodes = config_.nodes;
  r.workers = machine_->worker_count();
  r.seed = config_.seed;
  r.makespan_ns = makespan_impl();
  r.dead_letters = dead_letters();
  for (const auto& k : kernels_) {
    for (std::size_t c = 0; c < r.dead_letter_causes.size(); ++c) {
      r.dead_letter_causes[c] +=
          k->dead_letters(static_cast<DeadLetterCause>(c));
    }
  }
  r.per_node.reserve(kernels_.size());
  r.per_node_probes.reserve(kernels_.size());
  for (NodeId n = 0; n < static_cast<NodeId>(kernels_.size()); ++n) {
    Kernel& k = *kernels_[n];
    k.flush_probes();  // close the final dispatch batch of each node
    StatBlock node_stats = k.stats();
    // The link endpoints live in the machine, not the kernel: fold their
    // wire counters into the owning node's block so per-node sums still
    // reconcile against the aggregate.
    if (const am::LinkStats* ls = machine_->link_stats(n)) {
      node_stats.bump(Stat::kLinkDropsInjected, ls->drops_injected);
      node_stats.bump(Stat::kLinkDuplicatesInjected, ls->duplicates_injected);
      node_stats.bump(Stat::kLinkDelaysInjected, ls->delays_injected);
      node_stats.bump(Stat::kLinkRetransmits, ls->retransmits);
      node_stats.bump(Stat::kLinkDupesSuppressed, ls->dupes_suppressed);
      node_stats.bump(Stat::kLinkAcksSent, ls->acks_sent);
    }
    // Likewise for the wire aggregators (batching layer).
    if (const am::WireStats* ws = machine_->wire_stats(n)) {
      node_stats.bump(Stat::kWireFramesSent, ws->frames_sent);
      node_stats.bump(Stat::kWireMsgsCoalesced, ws->msgs_coalesced);
      node_stats.bump(Stat::kWireFlushFill, ws->flush_fill);
      node_stats.bump(Stat::kWireFlushTimer, ws->flush_timer);
      node_stats.bump(Stat::kWireFlushIdle, ws->flush_idle);
      node_stats.bump(Stat::kWireFlushBarrier, ws->flush_barrier);
    }
    r.per_node.push_back(node_stats);
    r.per_node_probes.push_back(k.probes());
    r.total += node_stats;
    r.probes += k.probes();
  }
  if constexpr (HAL_CHECK != 0) {
    // Buffer audit: ledger totals, then separate "still reachable in some
    // queue" (in flight) from "reachable from nowhere" (leaked).
    r.buffers.acquired = ledger_.acquired();
    r.buffers.retired = ledger_.retired();
    r.buffers.adopted = ledger_.adopted();
    r.buffers.escaped = ledger_.escaped();
    std::uint64_t in_flight = 0;
    for (const auto& k : kernels_) {
      k->for_each_in_flight_payload([&](const Bytes& b) {
        if (b.capacity() != 0 && ledger_.contains(b.data())) ++in_flight;
      });
      r.buffers.double_retires += k->pool().check_double_retires();
      r.buffers.poison_hits += k->pool().check_poison_hits();
    }
    // Payloads parked inside the link layer (retransmit masters, buffered
    // out-of-order arrivals) are reachable, not leaked.
    machine_->for_each_link_payload([&](const Bytes& b) {
      if (b.capacity() != 0 && ledger_.contains(b.data())) ++in_flight;
    });
    // Frame buffers held open in the wire aggregators are reachable too.
    machine_->for_each_wire_payload([&](const Bytes& b) {
      if (b.capacity() != 0 && ledger_.contains(b.data())) ++in_flight;
    });
    const std::uint64_t outstanding = ledger_.outstanding();
    r.buffers.in_flight = in_flight;
    r.buffers.leaked = outstanding > in_flight ? outstanding - in_flight : 0;
  }
  return r;
}

std::uint64_t Runtime::dead_letters() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->dead_letters();
  return n;
}

std::size_t Runtime::collect_garbage(std::span<const MailAddress> roots) {
  HAL_ASSERT(ran_);  // only a quiescent machine has a stable snapshot

  // Locate an address's current host by walking the forward chain (an
  // in-process shortcut: at quiescence the chains are stable).
  auto locate = [&](const MailAddress& addr) -> std::pair<NodeId, SlotId> {
    NodeId node = addr.home;
    if (node == kInvalidNode) return {kInvalidNode, {}};
    for (NodeId hops = 0; hops <= config_.nodes; ++hops) {
      Kernel& k = *kernels_[node];
      const SlotId ds = k.names().resolve(addr);
      if (!ds.valid()) return {kInvalidNode, {}};
      const LocalityDescriptor& d = k.names().descriptor(ds);
      if (d.local()) {
        return k.actor(d.actor) != nullptr
                   ? std::pair{node, d.actor}
                   : std::pair{kInvalidNode, SlotId{}};
      }
      node = d.remote_node;
    }
    return {kInvalidNode, {}};
  };

  auto key = [](NodeId node, SlotId slot) {
    return (static_cast<std::uint64_t>(node) << 32) | slot.index;
  };

  // Mark: BFS from the roots through held addresses.
  std::unordered_set<std::uint64_t> marked;
  std::vector<MailAddress> frontier(roots.begin(), roots.end());
  while (!frontier.empty()) {
    const MailAddress addr = frontier.back();
    frontier.pop_back();
    const auto [node, slot] = locate(addr);
    if (node == kInvalidNode) continue;
    if (!marked.insert(key(node, slot)).second) continue;
    kernels_[node]->actor(slot)->impl->trace_refs(
        [&frontier](const MailAddress& ref) { frontier.push_back(ref); });
  }

  // Sweep: reclaim every unmarked actor on every node.
  std::size_t reclaimed = 0;
  for (NodeId n = 0; n < config_.nodes; ++n) {
    std::vector<SlotId> dead;
    kernels_[n]->for_each_actor([&](SlotId slot, ActorRecord&) {
      if (!marked.contains(key(n, slot))) dead.push_back(slot);
    });
    for (const SlotId slot : dead) {
      kernels_[n]->reap_actor(slot);
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::size_t Runtime::write_trace(const std::string& path) {
  const std::vector<trace::Event> events = tracer_.take();
  std::ofstream out(path);
  HAL_ASSERT(out.good());
  trace::write_chrome_trace(out, events);
  return events.size();
}

}  // namespace hal
