// Active-message handler identifiers used by the runtime kernel.
//
// These are the customized CMAM handlers of the paper's communication module
// (§3): every inter-node interaction in the runtime is one of these packet
// types, routed by Kernel::handle on the receiving node's execution stream.
#pragma once

#include <cstdint>

namespace hal {

enum Handler : std::uint32_t {
  /// Generic actor message: words = [addr0, addr1, sel|argc, cont0, cont1,
  /// desc_hint]; payload = encoded args + user payload.
  kHActorMessage = 1,
  /// Receiver caches its descriptor slot back at the sender (§4.1):
  /// words = [addr0, addr1, desc_slot].
  kHCacheFill,
  /// Forwarding information request (§4.3): words = [addr0, addr1].
  kHFir,
  /// FIR response: words = [addr0, addr1, cur_node, cur_desc_slot].
  kHFirResponse,
  /// Remote creation (§5): words = [alias0, alias1, behavior].
  kHCreateRequest,
  /// Creation acknowledgment (background): words = [alias0, alias1,
  /// desc_slot].
  kHCreateAck,
  /// Join-continuation reply: words = [jc_slot, arg_slot, value, has_blob];
  /// payload = blob.
  kHReply,
  /// Group creation, MST-relayed: words = [gid, behavior, count, root].
  kHGroupCreate,
  /// Group broadcast, MST-relayed: words = [gid, sel|argc, cont0, cont1,
  /// root]; payload = encoded args.
  kHGroupBroadcast,
  /// Send to group member by index: words = [gid, index, sel|argc, cont0,
  /// cont1]; payload = encoded args.
  kHGroupMemberSend,
  /// Load balancing (receiver-initiated random polling): words = [thief].
  kHStealRequest,
  kHStealDeny,
  /// Migration landed: words = [addr0, addr1, new_node, new_desc_slot].
  kHMigrateAck,
  /// Three-phase bulk transfer protocol (am/bulk.hpp).
  kHBulkRequest,
  kHBulkAck,
  kHBulkData,
  /// Console I/O request to the front-end via node 0 (§3, Fig. 1):
  /// words = [emit_time, emitting_node]; payload = text.
  kHConsole,
};

/// Tags distinguishing bulk-transfer uses.
enum BulkTag : std::uint64_t {
  kTagLargeMessage = 1,  ///< actor message whose body exceeded inline size
  kTagMigration,         ///< serialized actor (state + mail)
  kTagReplyBlob,         ///< join-continuation reply with a large payload
  kTagMemberMessage,     ///< member-indexed send with a large payload;
                         ///< meta = {group id, member index}
};

/// selector|argc packing helpers for packet words.
constexpr std::uint64_t pack_sel_argc(std::uint32_t sel,
                                      std::uint8_t argc) noexcept {
  return (static_cast<std::uint64_t>(argc) << 32) | sel;
}
constexpr std::uint32_t unpack_sel(std::uint64_t w) noexcept {
  return static_cast<std::uint32_t>(w & 0xffffffffU);
}
constexpr std::uint8_t unpack_argc(std::uint64_t w) noexcept {
  return static_cast<std::uint8_t>((w >> 32) & 0xffU);
}

}  // namespace hal
