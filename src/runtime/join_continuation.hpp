// Join continuations (§6.2, Fig. 4).
//
// The HAL compiler transforms a blocking `request` into an asynchronous send
// whose continuation is separated out by dependence analysis; sends with no
// mutual dependence share one continuation. A join continuation has four
// components — counter, function, creator, and argument slots. Some slots
// are pre-filled at creation; the rest are filled by replies. When the
// counter reaches zero the function runs with the continuation as its
// argument. Its deterministic behaviour (receives exactly `counter` replies,
// then never again) is what makes this cheaper than a full actor.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "runtime/message.hpp"

namespace hal {

class Context;

/// Read-only view of a completed continuation's slots, handed to the body.
class JoinView {
 public:
  JoinView(std::span<const std::uint64_t> words, std::span<const Bytes> blobs)
      : words_(words), blobs_(blobs) {}

  std::size_t size() const noexcept { return words_.size(); }
  std::uint64_t word(std::size_t i) const {
    HAL_ASSERT(i < words_.size());
    return words_[i];
  }
  template <typename T>
    requires(std::is_trivially_copyable_v<T> && sizeof(T) <= 8)
  T get(std::size_t i) const {
    T v;
    std::memcpy(&v, &words_[i], sizeof(T));
    return v;
  }
  /// Payload attached to slot i's reply; empty for word-only replies.
  const Bytes& blob(std::size_t i) const {
    static const Bytes kEmpty;
    return i < blobs_.size() ? blobs_[i] : kEmpty;
  }

 private:
  std::span<const std::uint64_t> words_;
  std::span<const Bytes> blobs_;
};

struct JoinContinuation {
  /// Empty slots remaining; the continuation fires when this reaches zero.
  std::uint32_t counter = 0;
  /// The compiler-generated continuation body. Node-local by construction:
  /// join continuations never cross node boundaries (only ContRefs do), so
  /// holding code here does not violate the distributed-memory discipline.
  std::function<void(Context&, const JoinView&)> function;
  /// The actor which created the continuation (the paper keeps this to
  /// notify the creator of completion when necessary; we also run the body
  /// with the creator as `self`).
  MailAddress creator;
  std::vector<std::uint64_t> slots;
  std::vector<Bytes> blob_slots;
  /// Creation timestamp (join round-trip probe); continuations are
  /// node-local, so creation and completion read the same clock.
  SimTime created_at = 0;

  void fill(std::uint32_t slot, std::uint64_t word, Bytes blob) {
    HAL_ASSERT(slot < slots.size());
    HAL_ASSERT(counter > 0);
    slots[slot] = word;
    if (!blob.empty()) {
      if (blob_slots.size() <= slot) blob_slots.resize(slots.size());
      blob_slots[slot] = std::move(blob);
    }
    --counter;
  }

  bool ready() const noexcept { return counter == 0; }

  JoinView view() const {
    return JoinView(std::span(slots),
                    std::span(blob_slots.data(), blob_slots.size()));
  }
};

}  // namespace hal
