// Join continuations (§6.2, Fig. 4).
//
// The HAL compiler transforms a blocking `request` into an asynchronous send
// whose continuation is separated out by dependence analysis; sends with no
// mutual dependence share one continuation. A join continuation has four
// components — counter, function, creator, and argument slots. Some slots
// are pre-filled at creation; the rest are filled by replies. When the
// counter reaches zero the function runs with the continuation as its
// argument. Its deterministic behaviour (receives exactly `counter` replies,
// then never again) is what makes this cheaper than a full actor — and what
// lets the whole structure live allocation-free: the body is an
// InlineFunction (captures stay inside the record) and up to kInlineSlots
// argument slots are stored inline, so the common request/reply round
// touches the heap zero times.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/inline_function.hpp"
#include "runtime/message.hpp"

namespace hal {

class Context;
class JoinView;

/// The compiler-generated continuation body. Captures must fit the inline
/// capacity — a compile error otherwise, never a hidden heap allocation.
using JoinBody = InlineFunction<void(Context&, const JoinView&)>;

/// Read-only view of a completed continuation's slots, handed to the body.
class JoinView {
 public:
  JoinView(std::span<const std::uint64_t> words, std::span<const Bytes> blobs)
      : words_(words), blobs_(blobs) {}

  std::size_t size() const noexcept { return words_.size(); }
  std::uint64_t word(std::size_t i) const {
    HAL_ASSERT(i < words_.size());
    return words_[i];
  }
  template <typename T>
    requires(std::is_trivially_copyable_v<T> && sizeof(T) <= 8)
  T get(std::size_t i) const {
    T v;
    std::memcpy(&v, &words_[i], sizeof(T));
    return v;
  }
  /// Payload attached to slot i's reply; empty for word-only replies.
  const Bytes& blob(std::size_t i) const {
    static const Bytes kEmpty;
    return i < blobs_.size() ? blobs_[i] : kEmpty;
  }

 private:
  std::span<const std::uint64_t> words_;
  std::span<const Bytes> blobs_;
};

struct JoinContinuation {
  /// Slots at or below this count live in the fixed inline arrays at the
  /// bottom of the record (one word + one blob slot each, no allocation);
  /// wider joins fall back to the spill vectors, paying one heap block per
  /// array. Eight covers the fan-ins the compiler actually emits (tree
  /// reductions join 2, scatter/gather shapes up to 8) so only the
  /// stress-test joins (up to 64 slots) spill.
  static constexpr std::uint32_t kInlineSlots = 8;

  /// Empty slots remaining; the continuation fires when this reaches zero.
  std::uint32_t counter = 0;
  /// Total argument slots (fixed at creation).
  std::uint32_t slot_count = 0;
  /// Node-local by construction: join continuations never cross node
  /// boundaries (only ContRefs do), so holding code here does not violate
  /// the distributed-memory discipline.
  JoinBody function;
  /// The actor which created the continuation (the paper keeps this to
  /// notify the creator of completion when necessary; we also run the body
  /// with the creator as `self`).
  MailAddress creator;
  /// Creation timestamp (join round-trip probe); continuations are
  /// node-local, so creation and completion read the same clock.
  SimTime created_at = 0;

  /// Size the slot arrays for `n` replies (fresh record from the SlotPool:
  /// members are default-initialized before this runs).
  void init(std::uint32_t n) {
    counter = n;
    slot_count = n;
    if (n <= kInlineSlots) {
      inline_words_.fill(0);
    } else {
      spill_words_.assign(n, 0);
      spill_blobs_.resize(n);
    }
  }

  void fill(std::uint32_t slot, std::uint64_t word, Bytes blob) {
    HAL_ASSERT(slot < slot_count);
    HAL_ASSERT(counter > 0);
    words()[slot] = word;
    if (!blob.empty()) blobs()[slot] = std::move(blob);
    --counter;
  }

  bool ready() const noexcept { return counter == 0; }

  std::span<std::uint64_t> words() noexcept {
    return slot_count <= kInlineSlots
               ? std::span(inline_words_.data(), slot_count)
               : std::span(spill_words_);
  }
  /// Reply payload slots (pool-acquired on arrival; the kernel retires them
  /// after the body runs). Empty Bytes = word-only reply.
  std::span<Bytes> blobs() noexcept {
    return slot_count <= kInlineSlots
               ? std::span(inline_blobs_.data(), slot_count)
               : std::span(spill_blobs_);
  }
  std::span<const Bytes> blobs() const noexcept {
    return const_cast<JoinContinuation*>(this)->blobs();
  }

  JoinView view() const {
    auto* self = const_cast<JoinContinuation*>(this);
    return JoinView(self->words(), self->blobs());
  }

 private:
  std::array<std::uint64_t, kInlineSlots> inline_words_{};
  std::array<Bytes, kInlineSlots> inline_blobs_{};
  std::vector<std::uint64_t> spill_words_;
  std::vector<Bytes> spill_blobs_;
};

}  // namespace hal
