// Runtime facade: boots P kernels over a machine and runs to quiescence.
//
// Plays the role of the paper's front-end on the partition manager (Fig. 1):
// it "loads the program" (registers behaviours into the shared registry),
// seeds the initial actors, starts the machine, and detects termination.
//
// Typical use:
//
//   hal::RuntimeConfig cfg;
//   cfg.nodes = 8;
//   hal::Runtime rt(cfg);
//   rt.load<Worker>();
//   auto root = rt.spawn<Worker>(0);
//   rt.inject<&Worker::start>(root, 42);
//   rt.run();
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "am/machine.hpp"
#include "check/affinity.hpp"
#include "check/buffer_lifecycle.hpp"
#include "obs/run_report.hpp"
#include "runtime/context.hpp"
#include "runtime/front_end.hpp"
#include "runtime/kernel.hpp"
#include "runtime/registry.hpp"

namespace hal {

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// "Load the program": make behaviour B instantiable on every node.
  template <typename B>
  BehaviorId load() {
    HAL_ASSERT(!ran_);  // loading happens before execution, like the paper's
                        // front-end loading an executable into the kernels
    return registry_.register_behavior<B>();
  }

  // --- Bootstrap (before run()) ----------------------------------------------
  /// Create an actor of B on `node`; returns its ordinary mail address.
  template <typename B>
  MailAddress spawn(NodeId node = 0) {
    HAL_ASSERT(node < config_.nodes && !ran_);
    // Bootstrap runs on the caller's thread; for the affinity checker it is
    // executing "as" the target node until the machine starts.
    check::ScopedExecutionNode scope(node);
    return kernels_[node]->create_local(registry_.id_of<B>());
  }

  /// Send a message to `addr` invoking Method (usable only at bootstrap).
  template <auto Method, typename... Args>
  void inject(const MailAddress& addr, Args&&... args) {
    HAL_ASSERT(!ran_);
    Message m;
    m.dest = addr;
    m.selector = sel<Method>();
    check::ScopedExecutionNode scope(addr.home);
    codec::encode_args(m, std::forward<Args>(args)...);
    // Inject on the home node so bootstrap delivery is a local enqueue.
    kernels_[addr.home]->send_message(std::move(m));
  }

  /// spawn + inject in one step.
  template <auto InitMethod, typename... Args>
  MailAddress spawn_init(NodeId node, Args&&... args) {
    using B = class_of<InitMethod>;
    const MailAddress a = spawn<B>(node);
    inject<InitMethod>(a, std::forward<Args>(args)...);
    return a;
  }

  // --- Untyped bootstrap (language front-ends) --------------------------------
  /// Mutable registry access for front-ends that register behaviours by
  /// name + factory (dynamic loading). Before run() only.
  BehaviorRegistry& registry() {
    HAL_ASSERT(!ran_);
    return registry_;
  }
  /// Spawn by behaviour id (registered via registry().register_factory).
  MailAddress spawn_id(BehaviorId behavior, NodeId node = 0) {
    HAL_ASSERT(node < config_.nodes && !ran_);
    check::ScopedExecutionNode scope(node);
    return kernels_[node]->create_local(behavior);
  }
  /// Inject a fully built message (selector/args already encoded).
  void inject_message(Message m) {
    HAL_ASSERT(!ran_ && m.dest.valid());
    const NodeId home = m.dest.home;
    check::ScopedExecutionNode scope(home);
    kernels_[home]->send_message(std::move(m));
  }

  /// Execute until quiescence (no messages in flight, all mailboxes empty,
  /// no outstanding continuations).
  void run();

  // --- Results ------------------------------------------------------------------
  /// The one results entry point: machine kind, node count, makespan,
  /// per-node + aggregate counters, and per-probe latency histograms, with
  /// deterministic JSON serialization (obs::RunReport::to_json). Makespan is
  /// virtual ns under SimMachine and measured wall ns of run() under
  /// ThreadMachine.
  obs::RunReport report();

  /// Count and retire everything still buffered inside the kernels
  /// (undelivered mail, parked messages, unfilled joins), releasing payload
  /// buffers back to the pools and returning held work tokens. Idempotent —
  /// the destructor calls it too — so a test can invoke it early to assert
  /// on the counts. After a clean run to quiescence both counts are zero.
  DrainStats shutdown_drain();

  /// \deprecated Use report().makespan_ns.
  [[deprecated("use Runtime::report().makespan_ns")]] SimTime makespan()
      const {
    return makespan_impl();
  }

  /// \deprecated Use report().total (or report().per_node for one node).
  [[deprecated("use Runtime::report().total")]] StatBlock total_stats()
      const {
    return total_stats_impl();
  }

  std::uint64_t dead_letters() const;

  /// Console output collected by the front-end, ordered by virtual emission
  /// time (Context::print). Consumes the log.
  std::vector<FrontEnd::Line> console() { return front_end_.take_ordered(); }

  /// Distributed garbage collection (the paper's §9 future work, enabled by
  /// locality descriptors): mark every actor reachable from `roots` by
  /// following held mail addresses (ActorBase::trace_refs) across all
  /// nodes, then reclaim the rest — including cross-node cycles, which
  /// per-node reference counting could never collect. Callable only on a
  /// quiescent machine (after run()); returns the number of actors
  /// reclaimed. Reclaimed actors' descriptors remain as dead-letter sinks.
  std::size_t collect_garbage(std::span<const MailAddress> roots);

  /// Recorded protocol events (empty unless config.trace). Consumes them.
  std::vector<trace::Event> trace_events() { return tracer_.take(); }
  /// Write the recorded events as a Chrome trace (chrome://tracing /
  /// Perfetto). Returns the number of events written.
  std::size_t write_trace(const std::string& path);

  NodeId nodes() const noexcept { return config_.nodes; }
  const RuntimeConfig& config() const noexcept { return config_; }
  Kernel& kernel(NodeId node) {
    HAL_ASSERT(node < config_.nodes);
    return *kernels_[node];
  }
  am::Machine& machine() noexcept { return *machine_; }

  /// Test/inspection helper: locate an actor by following forward pointers
  /// from its home node and return its behaviour object, typed. Returns
  /// nullptr if it cannot be found or has another type. (In-process
  /// convenience only — actors are never shared across nodes at runtime.)
  template <typename B>
  B* find_behavior(const MailAddress& addr) {
    NodeId node = addr.home;
    for (NodeId hops = 0; hops <= config_.nodes; ++hops) {
      Kernel& k = *kernels_[node];
      const SlotId ds = k.names().resolve(addr);
      if (!ds.valid()) return nullptr;
      const LocalityDescriptor& d = k.names().descriptor(ds);
      if (d.local()) {
        ActorRecord* rec = k.actor(d.actor);
        return rec == nullptr ? nullptr : dynamic_cast<B*>(rec->impl.get());
      }
      node = d.remote_node;
    }
    return nullptr;
  }

 private:
  SimTime makespan_impl() const;
  StatBlock total_stats_impl() const;

  RuntimeConfig config_;
  BehaviorRegistry registry_;
  /// hal::check: process-wide payload-buffer ledger (empty shell when the
  /// checker is compiled out). Shared by every kernel's pool because buffers
  /// recycle across nodes (sender acquires, receiver retires).
  check::BufferLedger ledger_;
  std::unique_ptr<am::Machine> machine_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
  FrontEnd front_end_;
  trace::TraceRecorder tracer_;
  bool ran_ = false;
  SimTime wall_ns_ = 0;
};

}  // namespace hal
