// Behaviour registry — the runtime's program-load module.
//
// The paper's front-end dynamically loads a compiled executable into every
// kernel, after which any node can instantiate any behaviour by identifier
// (remote creation sends only the behaviour id, §5). The registry supplies
// exactly that: every node shares one immutable table, populated during
// Runtime setup ("program loading"), mapping BehaviorId → constructor.
#pragma once

#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/inline_function.hpp"
#include "runtime/actor_base.hpp"

namespace hal {

class BehaviorRegistry {
 public:
  /// Constructor thunk. InlineFunction (not std::function) so instantiating
  /// a behaviour — which happens on the remote-creation handler path — never
  /// allocates for the thunk itself; factory captures (a program handle, an
  /// id) must fit the inline capacity.
  using Factory = InlineFunction<std::unique_ptr<ActorBase>()>;

  template <typename B>
    requires std::derived_from<B, ActorBase> &&
             std::default_initializable<B>
  BehaviorId register_behavior() {
    const std::type_index ti(typeid(B));
    if (auto it = by_type_.find(ti); it != by_type_.end()) return it->second;
    const auto id = register_factory(
        std::string(B{}.behavior_name()),
        []() -> std::unique_ptr<ActorBase> { return std::make_unique<B>(); });
    by_type_.emplace(ti, id);
    return id;
  }

  /// Register a behaviour by name + factory. This is what dynamic loading
  /// really needs (the template overload is sugar for statically known C++
  /// behaviours): interpreted languages on top of the runtime register one
  /// factory per source-level behaviour.
  BehaviorId register_factory(std::string name, Factory factory) {
    if (auto it = by_name_.find(name); it != by_name_.end()) {
      return it->second;
    }
    const auto id = static_cast<BehaviorId>(entries_.size());
    by_name_.emplace(name, id);
    entries_.push_back(Entry{std::move(name), std::move(factory)});
    return id;
  }

  /// Lookup by behaviour name; kInvalidBehavior when absent.
  BehaviorId id_of_name(std::string_view name) const {
    auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? kInvalidBehavior : it->second;
  }

  template <typename B>
  BehaviorId id_of() const {
    auto it = by_type_.find(std::type_index(typeid(B)));
    HAL_ASSERT(it != by_type_.end());  // behaviour was never "loaded"
    return it->second;
  }

  template <typename B>
  bool registered() const {
    return by_type_.contains(std::type_index(typeid(B)));
  }

  std::unique_ptr<ActorBase> construct(BehaviorId id) const {
    HAL_ASSERT(id < entries_.size());
    return entries_[id].construct();
  }

  const std::string& name(BehaviorId id) const {
    HAL_ASSERT(id < entries_.size());
    return entries_[id].name;
  }

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Factory construct;
  };

  std::vector<Entry> entries_;
  std::unordered_map<std::type_index, BehaviorId> by_type_;
  std::unordered_map<std::string, BehaviorId> by_name_;
};

}  // namespace hal
