// Argument marshalling between C++ method signatures and message words.
//
// This is the runtime half of what the HAL compiler does when it lowers a
// message send to C: scalar arguments are bit-packed into the message's
// inline words, mail addresses and continuation references take two words,
// and at most one `Bytes` argument (which must be last) rides as the
// message payload. Everything is checked at compile time, so a send whose
// arguments don't match the target method's signature does not compile —
// the moral equivalent of HAL's static type inference (§2).
#pragma once

#include <cstring>
#include <type_traits>
#include <utility>

#include "runtime/message.hpp"

namespace hal {

class Context;

namespace codec {

template <typename T>
struct Codec;  // undefined primary: unsupported argument type

/// Scalars (integers, floats, bools, enums) occupy one word, bit-cast.
template <typename T>
  requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
struct Codec<T> {
  static constexpr std::size_t kWords = 1;
  static void encode(Message& m, std::size_t at, const T& v) {
    std::uint64_t w = 0;
    std::memcpy(&w, &v, sizeof(T));
    m.args[at] = w;
  }
  static T decode(const Message& m, std::size_t at) {
    T v;
    std::memcpy(&v, &m.args[at], sizeof(T));
    return v;
  }
};

template <>
struct Codec<MailAddress> {
  static constexpr std::size_t kWords = 2;
  static void encode(Message& m, std::size_t at, const MailAddress& a) {
    m.args[at] = a.pack_word0();
    m.args[at + 1] = a.pack_word1();
  }
  static MailAddress decode(const Message& m, std::size_t at) {
    return MailAddress::unpack(m.args[at], m.args[at + 1]);
  }
};

template <>
struct Codec<ContRef> {
  static constexpr std::size_t kWords = 2;
  static void encode(Message& m, std::size_t at, const ContRef& c) {
    m.args[at] = c.pack_word0();
    m.args[at + 1] = c.pack_word1();
  }
  static ContRef decode(const Message& m, std::size_t at) {
    return ContRef::unpack(m.args[at], m.args[at + 1]);
  }
};

template <>
struct Codec<GroupId> {
  static constexpr std::size_t kWords = 1;
  static void encode(Message& m, std::size_t at, const GroupId& g) {
    m.args[at] = g.pack();
  }
  static GroupId decode(const Message& m, std::size_t at) {
    return GroupId::unpack(m.args[at]);
  }
};

/// The single bulk argument: consumes the message payload, zero words.
template <>
struct Codec<Bytes> {
  static constexpr std::size_t kWords = 0;
  static void encode(Message& m, std::size_t, Bytes v) {
    m.payload = std::move(v);
  }
  static Bytes decode(Message& m, std::size_t) { return std::move(m.payload); }
};

template <typename T>
using Decay = std::remove_cvref_t<T>;

template <typename T>
concept WordArg = requires { Codec<Decay<T>>::kWords; } &&
                  !std::is_same_v<Decay<T>, Bytes>;
template <typename T>
concept AnyArg = requires { Codec<Decay<T>>::kWords; };

template <typename... Ts>
inline constexpr std::size_t total_words = (0 + ... + Codec<Decay<Ts>>::kWords);

template <typename... Ts>
inline constexpr std::size_t bytes_args =
    (0 + ... + (std::is_same_v<Decay<Ts>, Bytes> ? 1 : 0));

/// Encode a full argument list into a message. A Bytes argument, if present,
/// must be the final parameter (enforced by the method-signature traits).
template <typename... Ts>
void encode_args(Message& m, Ts&&... vs) {
  static_assert(total_words<Ts...> <= kMsgInlineWords,
                "too many inline argument words for one message");
  static_assert(bytes_args<Ts...> <= 1,
                "a message can carry at most one Bytes payload argument");
  std::size_t at = 0;
  ((Codec<Decay<Ts>>::encode(m, at, std::forward<Ts>(vs)),
    at += Codec<Decay<Ts>>::kWords),
   ...);
  m.argc = static_cast<std::uint8_t>(at);
}

/// Invoke `obj->*method(ctx, args...)` with arguments decoded from `m`.
template <typename B, typename... As, std::size_t... Is>
void invoke_decoded_impl(B& obj, void (B::*method)(Context&, As...),
                         Context& ctx, Message& m,
                         std::index_sequence<Is...>) {
  // Word offsets are prefix sums of the argument widths.
  constexpr std::size_t kN = sizeof...(As);
  constexpr std::array<std::size_t, kN + 1> offs = [] {
    std::array<std::size_t, kN + 1> o{};
    std::size_t acc = 0;
    std::size_t i = 0;
    ((o[i++] = acc, acc += Codec<Decay<As>>::kWords), ...);
    o[kN] = acc;
    return o;
  }();
  (void)offs;  // unused for nullary methods
  (obj.*method)(ctx, Codec<Decay<As>>::decode(m, offs[Is])...);
}

template <typename B, typename... As>
void invoke_decoded(B& obj, void (B::*method)(Context&, As...), Context& ctx,
                    Message& m) {
  static_assert((AnyArg<As> && ...),
                "unsupported argument type in actor method signature");
  invoke_decoded_impl(obj, method, ctx, m, std::index_sequence_for<As...>{});
}

}  // namespace codec

// --- Method-pointer traits --------------------------------------------------

namespace detail {

template <typename T>
struct MemberTraits;

template <typename C, typename... As>
struct MemberTraits<void (C::*)(Context&, As...)> {
  using Class = C;
  static constexpr std::size_t kArgWords = codec::total_words<As...>;
};

}  // namespace detail

/// The behaviour class a method pointer belongs to.
template <auto Method>
using class_of = typename detail::MemberTraits<decltype(Method)>::Class;

/// Selector of a method within its behaviour's method list. Requires the
/// behaviour to declare its methods with HAL_BEHAVIOR.
template <auto Method>
constexpr Selector sel() {
  return class_of<Method>::MethodsT::template index_of<Method>();
}

}  // namespace hal
