// Per-node runtime kernel (§3, Fig. 2).
//
// The kernel is "a passive substrate on which individual actors execute":
// it owns the node's name table, actor and join-continuation pools,
// dispatcher, group table and bulk channel, and exposes the actor interface
// the compiler targets. Kernel functions execute on the running actor's
// stream — there is no kernel thread and no context switch. Remote-protocol
// logic (message delivery per Fig. 3, FIR, remote creation, migration, load
// balancing) lives in the NodeManager, the kernel's meta-actor.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "am/bulk.hpp"
#include "am/machine.hpp"
#include "check/affinity.hpp"
#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "common/slot_pool.hpp"
#include "common/stats.hpp"
#include "name/name_table.hpp"
#include "obs/probe_recorder.hpp"
#include "runtime/actor_record.hpp"
#include "runtime/config.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/front_end.hpp"
#include "runtime/group.hpp"
#include "runtime/handlers.hpp"
#include "runtime/join_continuation.hpp"
#include "runtime/registry.hpp"
#include "trace/trace.hpp"

namespace hal {

class Context;
class NodeManager;

/// Why a message was dead-lettered (per-cause counters surface in
/// RunReport v3 so a fault run can distinguish "actor really terminated"
/// from "descriptor pointed somewhere stale").
enum class DeadLetterCause : std::uint8_t {
  kUnknownActor,     ///< no record for the address anywhere it could resolve
  kStaleDescriptor,  ///< a descriptor resolved to a slot whose actor is gone
  kShutdownDrain,    ///< dying actor's mailbox/pending queue discarded
  kCount,
};

/// Shutdown-drain accounting: what was still in flight inside a kernel when
/// the runtime tore down (buffered mail, parked messages, unfilled joins),
/// and how many payload buffers were retired to the pools in the process.
struct DrainStats {
  std::uint64_t messages = 0;  ///< undelivered messages accounted
  std::uint64_t payloads = 0;  ///< payload buffers retired to pools

  DrainStats& operator+=(const DrainStats& o) noexcept {
    messages += o.messages;
    payloads += o.payloads;
    return *this;
  }
};

// HAL_LINT_SUPPRESS(hal-capability-coverage): Kernel IS the capability
// root — affinity_.assert_here() guards its executor entry points (handle,
// step, send_message) and every other method runs strictly downstream of
// one of them on the owning node's stream (DESIGN.md §5). Annotating the
// ~15 plain counters/tables member-by-member would force HAL_GUARDED_BY
// proof obligations through dozens of private methods clang cannot check
// interprocedurally; the per-node aggregates that carry real invariants
// (pool_, names_, dispatcher_, groups_, probes_) are self-guarding types
// audited by their own annotations instead.
class Kernel final : public am::NodeClient {
 public:
  /// Messages one dispatcher item may run from a single actor's mailbox
  /// before the actor goes to the back of the ready queue (step()). Matches
  /// BatchConfig::max_msgs so a decoded wire frame executes as one burst.
  static constexpr std::uint32_t kMailboxBurst = 64;

  Kernel(am::Machine& machine, NodeId self, const BehaviorRegistry& registry,
         const RuntimeConfig& config);
  ~Kernel() override;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- am::NodeClient -------------------------------------------------------
  void handle(am::Packet p) override;
  bool step() override;
  bool has_work() const override;
  void on_idle() override;
  /// The reliable link clones retransmit masters from (and retires dropped
  /// or duplicate payloads into) this node's pool, keeping the buffer
  /// ledger conservative under fault injection.
  BufferPool* link_pool() noexcept override { return &pool_; }
  /// The wire-batching layer records its frame-fill samples here so they
  /// surface in the RunReport beside the kernel's other probes.
  obs::ProbeRecorder* wire_probes() noexcept override { return &probes_; }
  /// When an idle node wants on_idle re-run: the balancer's backed-off
  /// repoll deadline (NodeManager::poll_resume_at), 0 for "no wake needed".
  SimTime service_deadline() const override;
  /// Frame-decode burst (Machine::deliver_to_client): cache the frame's
  /// single arrival time so the per-record delivery path (remote-delivery
  /// span, mailbox enqueue stamp) reuses it instead of re-reading the
  /// machine clock per record.
  void on_frame_begin(SimTime now, std::uint32_t /*count*/) override {
    frame_now_ = now;
  }
  void on_frame_end() override { frame_now_ = 0; }
  /// Delivery timestamp for the message being handled: the enclosing
  /// frame's arrival time during a decode burst, a live clock read
  /// otherwise.
  SimTime delivery_now() const {
    return frame_now_ != 0 ? frame_now_ : machine_.now(self_);
  }

  // --- Actor creation (§5) ---------------------------------------------------
  /// Create an actor on this node; returns its ordinary mail address.
  MailAddress create_local(BehaviorId behavior);
  /// Create an actor on `target`. Remote targets use the alias scheme: the
  /// returned address is usable immediately — the caller's continuation is
  /// never blocked on the round trip.
  MailAddress create(BehaviorId behavior, NodeId target);

  // --- Message send (§4, Fig. 3 sender side) ---------------------------------
  /// The generic message-send mechanism: consult the local name server,
  /// deliver locally or ship to the best-guess node.
  void send_message(Message m);
  /// Enqueue into a local actor's mailbox and schedule it.
  void deliver_local(SlotId actor_slot, Message m);

  // --- Join continuations (§6.2) ---------------------------------------------
  ContRef make_join(std::uint32_t slot_count, JoinBody body,
                    const MailAddress& creator);
  /// Pre-fill a slot with a value known at creation time.
  void prefill_join(const ContRef& ref, std::uint64_t word);
  /// Route a reply to a continuation slot (local fill or kHReply packet).
  void reply_to(const ContRef& ref, std::uint64_t word, Bytes blob = {});
  /// Fill a slot of a continuation living on this node; runs the body when
  /// the counter reaches zero.
  void fill_join(const ContRef& ref, std::uint64_t word, Bytes blob);

  // --- Groups (§2.2, §6.4) ---------------------------------------------------
  GroupId group_new(BehaviorId behavior, std::uint32_t count);
  void group_broadcast(GroupId gid, Selector sel, std::uint8_t argc,
                       const std::array<std::uint64_t, kMsgInlineWords>& args,
                       const ContRef& cont, Bytes payload);
  void group_member_send(GroupId gid, NodeId root, std::uint32_t index,
                         Message m);

  // --- Dynamic placement -------------------------------------------------------
  /// Next node under round-robin spreading (per-kernel cursor).
  NodeId place_round_robin() {
    const NodeId n = static_cast<NodeId>(place_cursor_++ % node_count());
    return n;
  }
  /// Uniformly random node (seeded stream: deterministic under SimMachine).
  NodeId place_random() {
    return static_cast<NodeId>(rng_.below(node_count()));
  }

  // --- Front-end I/O (§3, Fig. 1) -----------------------------------------------
  /// Forward a console line to the front-end (an I/O request packet routed
  /// through node 0, like the paper's partition-manager front-end).
  void console_print(std::string_view text);
  void set_front_end(FrontEnd* fe) noexcept { front_end_ = fe; }

  // --- Tracing ---------------------------------------------------------------------
  void set_tracer(trace::TraceRecorder* t) noexcept { tracer_ = t; }
  bool tracing() const noexcept { return tracer_ != nullptr; }
  void trace_event(trace::EventKind kind, SimTime start, SimTime duration,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    if (tracer_ == nullptr) return;
    tracer_->record(trace::Event{start, duration, self_, kind, a, b});
  }
  /// Instantaneous marker at the current virtual time.
  void trace_mark(trace::EventKind kind, std::uint64_t a = 0,
                  std::uint64_t b = 0) {
    if (tracer_ == nullptr) return;
    tracer_->record(
        trace::Event{machine_.now(self_), 0, self_, kind, a, b});
  }

  // --- Migration / termination ----------------------------------------------
  /// Flag the running actor for migration after its current method returns.
  void request_migrate(SlotId actor_slot, NodeId target);
  /// Pack the actor and ship it (bulk, kTagMigration). Used post-method and
  /// by the load balancer when serving a steal.
  void perform_migration(SlotId actor_slot, NodeId target);
  void terminate_actor(SlotId actor_slot);

  // --- Cost accounting --------------------------------------------------------
  void charge(SimTime ns) { machine_.charge(self_, ns); }
  void charge_flops(std::uint64_t flops) { machine_.charge_flops(self_, flops); }
  void charge_work(std::uint64_t units) { machine_.charge_work(self_, units); }

  // --- Accessors ---------------------------------------------------------------
  NodeId self() const noexcept { return self_; }
  NodeId node_count() const noexcept { return machine_.node_count(); }
  am::Machine& machine() noexcept { return machine_; }
  const am::CostModel& costs() const noexcept { return machine_.costs(); }
  NameTable& names() noexcept { return names_; }
  StatBlock& stats() noexcept { return stats_; }
  const StatBlock& stats() const noexcept { return stats_; }
  obs::ProbeRecorder& probes() noexcept { return probes_; }
  const obs::ProbeRecorder& probes() const noexcept { return probes_; }
  /// Close out any open dispatch batch (called by Runtime::report() so a
  /// run that never idled still contributes its batch-length samples).
  void flush_probes();
  const BehaviorRegistry& registry() const noexcept { return registry_; }
  const RuntimeConfig& config() const noexcept { return config_; }
  GroupTable& groups() noexcept { return groups_; }
  /// This node's payload-buffer pool. Single-owner: touched only from this
  /// kernel's execution stream (thread under ThreadMachine, interleaved
  /// stream under SimMachine).
  BufferPool& pool() noexcept { return pool_; }
  Dispatcher& dispatcher() noexcept { return dispatcher_; }
  Xoshiro256& rng() noexcept { return rng_; }
  am::BulkChannel& bulk() noexcept { return bulk_; }
  NodeManager& node_manager() noexcept { return *node_manager_; }

  ActorRecord* actor(SlotId slot) noexcept { return actors_.try_get(slot); }
  std::size_t live_actors() const noexcept { return actors_.size(); }
  std::uint64_t dead_letters() const noexcept { return dead_letters_; }
  std::uint64_t dead_letters(DeadLetterCause cause) const noexcept {
    return dead_letter_causes_[static_cast<std::size_t>(cause)];
  }

  /// Visit every live actor record: `fn(SlotId, ActorRecord&)`. Used by the
  /// garbage collector's sweep (in-process walk at quiescence).
  template <typename Fn>
  void for_each_actor(Fn&& fn) {
    actors_.for_each(std::forward<Fn>(fn));
  }
  /// Reclaim an unreachable actor at quiescence (GC sweep): frees the
  /// record, leaving its descriptors as dead-letter sinks.
  void reap_actor(SlotId slot);

  /// Shutdown accounting: count and retire every message still buffered in
  /// this kernel (mailboxes, pending queues, broadcast quanta, parked and
  /// awaiting queues in the NodeManager) and every unfilled join
  /// continuation, releasing their payload buffers into the pool and giving
  /// back the work tokens they hold. Idempotent; called by
  /// Runtime::shutdown_drain and the Runtime destructor.
  DrainStats drain_in_flight();

  /// Visit the payload of every message still buffered inside this kernel
  /// (mailboxes, pending queues, broadcast quanta, join reply blobs, and the
  /// NodeManager's parked/awaiting queues). Read-only walk used by the
  /// hal::check leak audit to separate in-flight buffers from leaked ones.
  void for_each_in_flight_payload(
      const std::function<void(const Bytes&)>& fn);

  /// Resolve a mail address to a *local* actor slot (invalid SlotId if the
  /// address is unknown here or the actor is not local). This is the
  /// "locality check routine which is part of the generic message send
  /// mechanism" exposed to the compiler (§6.3).
  SlotId locality_check(const MailAddress& addr);

  /// Behaviour object of a local actor, typed; nullptr when not local or of
  /// a different type (the method-lookup escape hatch for compiled code).
  template <typename B>
  B* local_behavior(const MailAddress& addr) {
    const SlotId s = locality_check(addr);
    if (!s.valid()) return nullptr;
    return dynamic_cast<B*>(actors_.get(s).impl.get());
  }

  // --- Compiler-controlled stack scheduling (§6.3) ---------------------------
  /// RAII depth guard for stack-based direct dispatch.
  class StackGuard {
   public:
    explicit StackGuard(Kernel& k) : k_(k) { ++k_.stack_depth_; }
    ~StackGuard() { --k_.stack_depth_; }
    StackGuard(const StackGuard&) = delete;
    StackGuard& operator=(const StackGuard&) = delete;

   private:
    Kernel& k_;
  };
  bool stack_budget_left() const noexcept {
    return stack_depth_ < config_.max_stack_depth;
  }

  /// Dispatch one message to an actor: constraint check, method execution,
  /// pending-queue replay, then post-processing (become/migrate/terminate).
  /// `cheap_dispatch` is the compiler/quantum fast path: the method lookup
  /// has already been paid for, so only a call's worth of cost is charged.
  void run_method(SlotId actor_slot, Message m, bool cheap_dispatch = false);

  /// Used by NodeManager/Runtime: create an actor object for a remote
  /// creation request or a migration arrival. `epoch` is the actor's
  /// migration count (0 for fresh creations).
  SlotId install_actor(std::unique_ptr<ActorBase> impl, BehaviorId behavior,
                       const MailAddress& address, const MailAddress& alias,
                       std::uint32_t epoch = 0);

 private:
  friend class NodeManager;

  /// Put an actor in the ready structure if it has mail and isn't there.
  void schedule(SlotId actor_slot);
  /// Enqueue a broadcast quantum for this node's group members.
  void schedule_quantum(GroupId gid, Message m);
  /// Execute one message body: build a Context, dispatch, apply `become`.
  void execute_message(SlotId actor_slot, Message& m);
  /// Execute a broadcast quantum: all local group members process the same
  /// message consecutively with a single method lookup (§6.4).
  void run_quantum(GroupId gid, Message m);
  /// Post-method bookkeeping shared by run_method and the quantum path.
  void post_method(SlotId actor_slot, ActorRecord& rec);
  /// Replay pending messages whose constraints are now enabled (§6.1).
  void replay_pending(SlotId actor_slot);
  /// Account an undeliverable message and retire its payload buffer.
  void dead_letter(Message& m, DeadLetterCause cause);

  am::Machine& machine_;
  const NodeId self_;  // write-once identity, never a shared-state race
  const BehaviorRegistry& registry_;
  const RuntimeConfig& config_;

  check::NodeAffinityGuard affinity_;
  StatBlock stats_;
  obs::ProbeRecorder probes_;
  BufferPool pool_;  // declared before bulk_: BulkChannel holds a reference
  NameTable names_;
  SlotPool<ActorRecord> actors_;
  SlotPool<JoinContinuation> joins_;
  Dispatcher dispatcher_;
  GroupTable groups_;
  am::BulkChannel bulk_;
  std::unique_ptr<NodeManager> node_manager_;
  Xoshiro256 rng_;

  std::uint32_t group_seq_ = 0;
  std::uint32_t stack_depth_ = 0;
  SimTime frame_now_ = 0;  // nonzero only inside a frame-decode burst
  std::uint64_t dispatch_batch_len_ = 0;
  std::uint64_t dead_letters_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(DeadLetterCause::kCount)>
      dead_letter_causes_{};
  std::uint64_t place_cursor_ = 0;
  FrontEnd* front_end_ = nullptr;  // node 0 only
  trace::TraceRecorder* tracer_ = nullptr;
};

}  // namespace hal
