// Execution context handed to actor methods.
//
// A Context is the actor interface of Fig. 2 — the thin layer between a
// running method and the kernel it executes on. It is created on the stack
// for each method dispatch (and for each join-continuation body), so all
// kernel services are reached without any context switch, exactly as in the
// paper's single-address-space kernel design.
#pragma once

#include <memory>
#include <utility>

#include "runtime/arg_codec.hpp"
#include "runtime/kernel.hpp"

namespace hal {

class Context {
 public:
  /// `actor_slot` is invalid for non-actor executions (join-continuation
  /// bodies, bootstrap); `msg` is null outside method dispatch.
  Context(Kernel& kernel, SlotId actor_slot, const MailAddress& self,
          Message* msg)
      : kernel_(kernel), actor_slot_(actor_slot), self_(self), msg_(msg) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- Identity ---------------------------------------------------------------
  const MailAddress& self() const noexcept { return self_; }
  NodeId node() const noexcept { return kernel_.self(); }
  NodeId node_count() const noexcept { return kernel_.node_count(); }
  SimTime now() const { return kernel_.machine().now(kernel_.self()); }
  Kernel& kernel() noexcept { return kernel_; }
  Message* message() noexcept { return msg_; }

  // --- Asynchronous send (the actor primitive) --------------------------------
  /// Send a message invoking `Method` on the actor at `addr`. Argument types
  /// are checked against the method signature at compile time.
  template <auto Method, typename... Args>
  void send(const MailAddress& addr, Args&&... args) {
    send_cont<Method>(addr, ContRef{}, std::forward<Args>(args)...);
  }

  /// Send with an explicit continuation slot the callee will reply to.
  template <auto Method, typename... Args>
  void send_cont(const MailAddress& addr, const ContRef& cont,
                 Args&&... args) {
    Message m;
    m.dest = addr;
    m.selector = sel<Method>();
    m.cont = cont;
    codec::encode_args(m, std::forward<Args>(args)...);
    kernel_.send_message(std::move(m));
  }

  // --- Call/return (§6.2): request compiled to send + join continuation ------
  /// Issue a request; `then(Context&, const JoinView&)` runs when the reply
  /// arrives (view slot 0 holds the reply value).
  template <auto Method, typename Then, typename... Args>
  void request(const MailAddress& addr, Then&& then, Args&&... args) {
    const ContRef jc = make_join(1, JoinBody(std::forward<Then>(then)));
    send_cont<Method>(addr, jc, std::forward<Args>(args)...);
  }

  /// Create a join continuation with `slots` reply slots; the body runs once
  /// all slots are filled. The body's captures stay inline in the
  /// continuation record (JoinBody) — no heap, and no raw pointers to actor
  /// state: the actor may migrate between now and the join firing.
  ContRef make_join(std::uint32_t slots, JoinBody body) {
    return kernel_.make_join(slots, std::move(body), self_);
  }

  /// Fill a slot with a value already known at creation time (Fig. 4's
  /// pre-filled argument slots).
  template <typename T>
  void prefill(const ContRef& ref, const T& value) {
    kernel_.prefill_join(ref, to_word(value));
  }

  // --- Reply (§2.2) -----------------------------------------------------------
  /// Reply to the current message's continuation. No-op with a diagnostic
  /// count if the sender did not expect a reply.
  template <typename T>
  void reply(const T& value) {
    if (msg_ != nullptr && msg_->cont.valid()) {
      kernel_.reply_to(msg_->cont, to_word(value));
    }
  }
  void reply_blob(std::uint64_t word, Bytes blob) {
    if (msg_ != nullptr && msg_->cont.valid()) {
      kernel_.reply_to(msg_->cont, word, std::move(blob));
    }
  }
  /// Reply to an explicit continuation reference.
  template <typename T>
  void reply_to(const ContRef& ref, const T& value) {
    kernel_.reply_to(ref, to_word(value));
  }
  void reply_blob_to(const ContRef& ref, std::uint64_t word, Bytes blob) {
    kernel_.reply_to(ref, word, std::move(blob));
  }

  // --- Creation (new / §5) -----------------------------------------------------
  /// Create an actor of behaviour B on this node.
  template <typename B>
  MailAddress create() {
    return kernel_.create_local(kernel_.registry().id_of<B>());
  }
  /// Create on an explicit node (dynamic placement). Remote targets return
  /// an alias immediately; the round trip is hidden (§5).
  template <typename B>
  MailAddress create_on(NodeId target) {
    return kernel_.create(kernel_.registry().id_of<B>(), target);
  }
  /// Untyped creation by behaviour id (language front-ends; the id comes
  /// from BehaviorRegistry::register_factory / id_of_name).
  MailAddress create_on_id(BehaviorId behavior, NodeId target) {
    return kernel_.create(behavior, target);
  }

  /// Dynamic placement policies: spread creations round-robin over the
  /// machine, or place uniformly at random (deterministic under the
  /// simulator's seeded streams).
  template <typename B>
  MailAddress create_spread() {
    return create_on<B>(kernel_.place_round_robin());
  }
  template <typename B>
  MailAddress create_random() {
    return create_on<B>(kernel_.place_random());
  }

  /// Create and send an initialization message in one step.
  template <auto InitMethod, typename... Args>
  MailAddress create_init(Args&&... args) {
    using B = class_of<InitMethod>;
    const MailAddress a = create<B>();
    send<InitMethod>(a, std::forward<Args>(args)...);
    return a;
  }
  template <auto InitMethod, typename... Args>
  MailAddress create_init_on(NodeId target, Args&&... args) {
    using B = class_of<InitMethod>;
    const MailAddress a = create_on<B>(target);
    send<InitMethod>(a, std::forward<Args>(args)...);
    return a;
  }

  // --- Groups (§2.2) -----------------------------------------------------------
  template <typename B>
  GroupId grpnew(std::uint32_t count) {
    return kernel_.group_new(kernel_.registry().id_of<B>(), count);
  }
  /// Broadcast: replicate a message to every member of the group.
  template <auto Method, typename... Args>
  void broadcast(GroupId gid, Args&&... args) {
    broadcast_cont<Method>(gid, ContRef{}, std::forward<Args>(args)...);
  }
  template <auto Method, typename... Args>
  void broadcast_cont(GroupId gid, const ContRef& cont, Args&&... args) {
    Message m;
    m.selector = sel<Method>();
    m.cont = cont;
    codec::encode_args(m, std::forward<Args>(args)...);
    kernel_.group_broadcast(gid, m.selector, m.argc, m.args, m.cont,
                            std::move(m.payload));
  }
  /// Send to one group member by index.
  template <auto Method, typename... Args>
  void send_member(GroupId gid, std::uint32_t index, Args&&... args) {
    send_member_cont<Method>(gid, index, ContRef{}, std::forward<Args>(args)...);
  }
  template <auto Method, typename... Args>
  void send_member_cont(GroupId gid, std::uint32_t index, const ContRef& cont,
                        Args&&... args) {
    Message m;
    m.selector = sel<Method>();
    m.cont = cont;
    codec::encode_args(m, std::forward<Args>(args)...);
    kernel_.group_member_send(gid, gid.creator, index, std::move(m));
  }

  // --- become / migrate / terminate -------------------------------------------
  /// Replace this actor's behaviour after the current method returns.
  template <typename B, typename... CtorArgs>
  void become(CtorArgs&&... ctor_args) {
    become_ptr(std::make_unique<B>(std::forward<CtorArgs>(ctor_args)...));
  }
  void become_ptr(std::unique_ptr<ActorBase> next) {
    HAL_ASSERT(actor_slot_.valid());  // only actors can become
    become_ = std::move(next);
  }
  std::unique_ptr<ActorBase> take_become() { return std::move(become_); }

  /// Move this actor (state + queued mail) to `target` after the current
  /// method completes.
  void migrate_to(NodeId target) {
    HAL_ASSERT(actor_slot_.valid());
    kernel_.request_migrate(actor_slot_, target);
  }
  /// Allow the dynamic load balancer to relocate this actor.
  void set_relocatable(bool on) {
    ActorRecord* rec = kernel_.actor(actor_slot_);
    HAL_ASSERT(rec != nullptr);
    rec->relocatable = on;
  }
  /// Mark a co-located actor as relocatable — a creation attribute in
  /// spirit; must be called on the node where the actor currently lives
  /// (typically right after create()).
  void set_relocatable(const MailAddress& addr, bool on) {
    const SlotId slot = kernel_.locality_check(addr);
    HAL_ASSERT(slot.valid());
    kernel_.actor(slot)->relocatable = on;
  }
  /// Free this actor after the current method returns.
  void terminate() {
    HAL_ASSERT(actor_slot_.valid());
    kernel_.terminate_actor(actor_slot_);
  }

  // --- Front-end I/O (§3) -------------------------------------------------------
  /// Print a line through the front-end (ordered by virtual emission time;
  /// read with Runtime::console() after the run).
  void print(std::string_view text) { kernel_.console_print(text); }

  // --- Cost accounting (simulated compute; no-op on ThreadMachine) ------------
  void charge_flops(std::uint64_t flops) { kernel_.charge_flops(flops); }
  void charge_work(std::uint64_t units) { kernel_.charge_work(units); }
  void charge_ns(SimTime ns) { kernel_.charge(ns); }

 private:
  template <typename T>
  static std::uint64_t to_word(const T& value) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "reply values must fit one message word");
    std::uint64_t w = 0;
    std::memcpy(&w, &value, sizeof(T));
    return w;
  }

  Kernel& kernel_;
  SlotId actor_slot_;
  MailAddress self_;
  Message* msg_;
  std::unique_ptr<ActorBase> become_;

  friend class Kernel;
};

}  // namespace hal
