// Front-end services (paper §3, Fig. 1).
//
// "The runtime system consists of a front-end which runs on the partition
// manager and a set of runtime kernels which run on the processing
// elements. … In addition to dynamic loading of user's executables, the
// front-end processes all I/O requests from the kernels running on the
// nodes." The BehaviorRegistry covers the loading half; this class covers
// I/O: kernels forward console output as packets to node 0, whose kernel
// hands the lines (with their virtual timestamps) to the front-end. Under
// the simulator the log is deterministic; lines are ordered by emission
// time.
#pragma once

#include <algorithm>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hal {

class FrontEnd {
 public:
  struct Line {
    SimTime time = 0;    ///< emitting node's clock at the print call
    NodeId node = kInvalidNode;
    std::string text;
  };

  /// Called on node 0's execution stream (ThreadMachine: node 0's thread;
  /// bootstrap: the main thread) — serialized defensively anyway. Takes a
  /// view over the packet payload; the owning string is built in place here,
  /// not by the caller.
  void append(SimTime time, NodeId node, std::string_view text) {
    // HAL_LINT_SUPPRESS(hal-handler-purity): console output is not a fast
    // path; the lock is defensive (single writer in practice, see above)
    // and uncontended, and programs that print in a hot loop are measuring
    // their console, not HAL.
    std::lock_guard lock(mutex_);
    lines_.push_back(Line{time, node, std::string(text)});
  }

  /// All output, ordered by virtual emission time (stable for ties).
  /// Call after Runtime::run().
  std::vector<Line> take_ordered() {
    std::lock_guard lock(mutex_);
    std::stable_sort(lines_.begin(), lines_.end(),
                     [](const Line& a, const Line& b) {
                       return a.time < b.time;
                     });
    return std::move(lines_);
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return lines_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Line> lines_;
};

}  // namespace hal
