// Umbrella header: the public API of the Halcyon actor runtime.
//
// Halcyon reproduces the runtime system of:
//   WooYoung Kim and Gul Agha, "Efficient Support of Location Transparency
//   in Concurrent Object-Oriented Programming Languages", SC '95.
//
// Quick tour:
//   * Declare behaviours with HAL_BEHAVIOR (behavior.hpp).
//   * Boot a machine with hal::Runtime (runtime.hpp), load behaviours, spawn
//     a root actor, run to quiescence. An invalid RuntimeConfig throws a
//     typed hal::ConfigError (config.hpp) at construction.
//   * Inside methods, hal::Context provides send / create / become /
//     migrate_to / grpnew / broadcast / request-reply (context.hpp).
//   * hal::compiled::send_static is the compiler fast path for local sends
//     (compiled.hpp).
//   * After run(), Runtime::report() returns the structured results — the
//     makespan, per-node and aggregate counters, and per-probe latency
//     histograms, with deterministic JSON via RunReport::to_json()
//     (obs/run_report.hpp, docs/observability.md).
#pragma once

#include "runtime/behavior.hpp"   // IWYU pragma: export
#include "runtime/compiled.hpp"   // IWYU pragma: export
#include "runtime/context.hpp"    // IWYU pragma: export
#include "runtime/runtime.hpp"    // IWYU pragma: export
