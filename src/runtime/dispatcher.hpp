// Intra-node dispatcher (§3, §6.3, §6.4).
//
// "The dispatcher provides the data structures that are necessary for
// scheduling actors; the responsibility to actually schedule actors is
// delegated to individual actors" — when an actor finishes a method it asks
// the dispatcher for the next item and yields to it directly, with no
// context switch. Two item kinds exist: a ready actor (one buffered message
// to dispatch) and a broadcast *quantum* (§6.4) — all local members of a
// group processing the same broadcast message consecutively, TAM-style.
#pragma once

#include <deque>
#include <optional>

#include "common/slot_pool.hpp"
#include "runtime/message.hpp"

namespace hal {

class Dispatcher {
 public:
  struct Item {
    enum class Kind : std::uint8_t { kActor, kQuantum };
    Kind kind = Kind::kActor;
    SlotId actor{};    // kActor
    GroupId group{};   // kQuantum
    Message message;   // kQuantum: the broadcast being delivered
  };

  void schedule_actor(SlotId actor) {
    ready_.push_back(Item{Item::Kind::kActor, actor, {}, {}});
  }

  void schedule_quantum(GroupId group, Message m) {
    ready_.push_back(
        Item{Item::Kind::kQuantum, {}, group, std::move(m)});
  }

  std::optional<Item> next() {
    if (ready_.empty()) return std::nullopt;
    Item item = std::move(ready_.front());
    ready_.pop_front();
    return item;
  }

  bool empty() const noexcept { return ready_.empty(); }
  std::size_t size() const noexcept { return ready_.size(); }

  /// Load-balancer support: remove and return the first ready *actor* item
  /// accepted by `pred(SlotId)` (e.g. "relocatable and still alive").
  /// Victims give away the oldest ready actor — for divide-and-conquer
  /// trees that is the one closest to the root, i.e. the largest subtree.
  template <typename Pred>
  std::optional<SlotId> steal_if(Pred&& pred) {
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if (it->kind == Item::Kind::kActor && pred(it->actor)) {
        SlotId victim = it->actor;
        ready_.erase(it);
        return victim;
      }
    }
    return std::nullopt;
  }

 private:
  std::deque<Item> ready_;
};

}  // namespace hal
