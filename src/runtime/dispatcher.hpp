// Intra-node dispatcher (§3, §6.3, §6.4).
//
// "The dispatcher provides the data structures that are necessary for
// scheduling actors; the responsibility to actually schedule actors is
// delegated to individual actors" — when an actor finishes a method it asks
// the dispatcher for the next item and yields to it directly, with no
// context switch. Two item kinds exist: a ready actor (one buffered message
// to dispatch) and a broadcast *quantum* (§6.4) — all local members of a
// group processing the same broadcast message consecutively, TAM-style.
//
// The ready structure is a growable power-of-two ring of 40-byte items:
// the broadcast message of a kQuantum item lives in a small side pool and
// the item carries only its SlotId, so scheduling an actor never copies a
// Message and steady-state dispatch performs no heap allocation (the ring
// stops growing at the run's high-water depth).
#pragma once

#include <optional>

#include "check/affinity.hpp"
#include "check/capability.hpp"
#include "common/ring_buffer.hpp"
#include "common/slot_pool.hpp"
#include "runtime/message.hpp"

namespace hal {

class Dispatcher {
 public:
  struct Item {
    enum class Kind : std::uint8_t { kActor, kQuantum };
    Kind kind = Kind::kActor;
    SlotId actor{};  // kActor
    GroupId group{};  // kQuantum
    SlotId qmsg{};   // kQuantum: side-pool slot of the broadcast being delivered
  };

  void schedule_actor(SlotId actor) {
    affinity_.assert_here();
    ready_.push_back(Item{Item::Kind::kActor, actor, {}, {}});
  }

  void schedule_quantum(GroupId group, Message m) {
    affinity_.assert_here();
    const SlotId qmsg = quantum_msgs_.allocate(std::move(m));
    ready_.push_back(Item{Item::Kind::kQuantum, {}, group, qmsg});
  }

  [[nodiscard]] std::optional<Item> next() {
    affinity_.assert_here();
    if (ready_.empty()) return std::nullopt;
    return ready_.take_front();
  }

  /// Claim the broadcast message of a kQuantum item (frees its pool slot).
  [[nodiscard]] Message take_message(const Item& item) {
    affinity_.assert_here();
    HAL_DASSERT(item.kind == Item::Kind::kQuantum);
    Message m = std::move(quantum_msgs_.get(item.qmsg));
    quantum_msgs_.free(item.qmsg);
    return m;
  }

  bool empty() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return ready_.empty();
  }
  std::size_t size() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return ready_.size();
  }

  /// Name the owning node (called once by the owning kernel's constructor).
  void bind_owner(NodeId node) noexcept { affinity_.bind(node, "Dispatcher"); }

  /// Drain every buffered broadcast quantum (shutdown accounting): invokes
  /// `fn(Message&)` for each side-pool message, then frees the slot.
  template <typename Fn>
  void drain_quanta(Fn&& fn) HAL_NO_THREAD_SAFETY_ANALYSIS {
    std::vector<SlotId> slots;
    quantum_msgs_.for_each(
        [&](SlotId id, Message&) { slots.push_back(id); });
    for (SlotId id : slots) {
      fn(quantum_msgs_.get(id));
      quantum_msgs_.free(id);
    }
  }

  /// Visit every buffered broadcast quantum message: `fn(const Message&)`.
  /// Read-only walk used by the hal::check leak audit (report time).
  template <typename Fn>
  void for_each_quantum(Fn&& fn) HAL_NO_THREAD_SAFETY_ANALYSIS {
    quantum_msgs_.for_each([&](SlotId, Message& m) { fn(m); });
  }

  /// Load-balancer support: remove and return the first ready *actor* item
  /// accepted by `pred(SlotId)` (e.g. "relocatable and still alive").
  /// Victims give away the oldest ready actor — for divide-and-conquer
  /// trees that is the one closest to the root, i.e. the largest subtree.
  template <typename Pred>
  [[nodiscard]] std::optional<SlotId> steal_if(Pred&& pred) {
    affinity_.assert_here();
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const Item& item = ready_[i];
      if (item.kind == Item::Kind::kActor && pred(item.actor)) {
        SlotId victim = item.actor;
        ready_.erase_at(i);
        return victim;
      }
    }
    return std::nullopt;
  }

 private:
  check::NodeAffinityGuard affinity_;
  RingDeque<Item> ready_ HAL_GUARDED_BY(affinity_);
  SlotPool<Message> quantum_msgs_ HAL_GUARDED_BY(affinity_);
};

}  // namespace hal
