#include "runtime/node_manager.hpp"

#include <algorithm>
#include <utility>

#include "am/mst.hpp"
#include "check/protocol.hpp"
#include "runtime/kernel.hpp"

namespace hal {

NodeManager::NodeManager(Kernel& kernel) : k_(kernel) {}

// --- Send side -----------------------------------------------------------------

void NodeManager::ship(Message m, SlotId desc_slot) {
  const LocalityDescriptor& d = k_.names().descriptor(desc_slot);
  HAL_ASSERT(!d.local());
  const NodeId dst = d.remote_node;
  HAL_DASSERT(dst != k_.self());  // monotone epochs forbid self-pointers
  const SlotId hint = k_.config().name_cache ? d.remote_desc : SlotId{};

  if (m.body_bytes() > am::kMaxInlinePayload) {
    // Large message: three-phase bulk protocol (§6.5). The full message is
    // serialized; the receiving node manager re-enters the delivery path.
    ByteWriter w(k_.pool().reserve(m.full_bytes()));
    m.encode_full(w);
    k_.pool().release(std::move(m.payload));
    k_.bulk().send(dst, kTagLargeMessage, {0, 0}, std::move(w).take());
    return;
  }
  k_.trace_mark(trace::EventKind::kSendRemote, dst);
  am::Packet p;
  p.src = k_.self();
  p.dst = dst;
  p.handler = kHActorMessage;
  p.words = {m.dest.pack_word0(),
             m.dest.pack_word1(),
             pack_sel_argc(m.selector, m.argc),
             m.cont.pack_word0(),
             m.cont.pack_word1(),
             hint.pack()};
  // Small-message fast path: args + payload memcpy'd straight into a pooled
  // packet buffer — no ByteWriter, no length word, no heap allocation at
  // steady state. A body-less message (argc == 0, e.g. a bare request)
  // ships with no buffer at all: acquiring one would drain this node's
  // free list one-way whenever the return traffic is buffer-less (replies
  // carry no pool buffer), turning a zero-byte body into a malloc/free per
  // message.
  if (m.body_bytes() != 0) {
    p.payload = k_.pool().reserve(m.body_bytes());
    m.encode_body_into(p.payload);
  }
  k_.pool().release(std::move(m.payload));
  k_.machine().send(std::move(p));
}

// --- Receiving side (Fig. 3) -----------------------------------------------------

void NodeManager::on_actor_message(const am::Packet& p) {
  k_.probes().record_span(obs::Probe::kRemoteDelivery, p.stamp,
                          k_.delivery_now());
  Message m;
  m.dest = MailAddress::unpack(p.words[0], p.words[1]);
  m.selector = unpack_sel(p.words[2]);
  m.argc = unpack_argc(p.words[2]);
  m.cont = ContRef::unpack(p.words[3], p.words[4]);
  m.dest_desc_hint = SlotId::unpack(p.words[5]);
  m.decode_body(p.payload, &k_.pool());
  const bool had_hint = m.dest_desc_hint.valid();
  local_or_forward(std::move(m), p.src, had_hint);
}

void NodeManager::local_or_forward(Message m, NodeId src, bool had_hint) {
  NameTable& nt = k_.names();
  SlotId ds{};

  // Cached descriptor address from the sender (§4.1): O(1) dereference, no
  // name-table lookup on the receiving node.
  if (k_.config().name_cache && m.dest_desc_hint.valid() &&
      nt.try_descriptor(m.dest_desc_hint) != nullptr) {
    ds = m.dest_desc_hint;
    k_.stats().bump(Stat::kDescriptorCacheHits);
  }
  if (!ds.valid()) {
    ds = nt.resolve(m.dest);
    k_.charge(m.dest.home == k_.self() ? k_.costs().locality_check_ns
                                       : k_.costs().name_lookup_ns);
  }
  if (!ds.valid()) {
    if (m.dest.alias && m.dest.created_on == k_.self()) {
      // The message raced ahead of the creation request that carries this
      // alias (§5): hold it until the actor registers.
      k_.stats().bump(Stat::kMessagesParked);
      k_.machine().token_acquire();
      await_reg_[m.dest].messages.push_back(std::move(m));
      return;
    }
    HAL_ASSERT(m.dest.home != k_.self());  // home descriptors always exist
    // A node that knows nothing about the receiver: route toward the
    // address's fallback node via a fresh best-guess descriptor.
    k_.charge(k_.costs().descriptor_alloc_ns + k_.costs().name_insert_ns);
    ds = nt.allocate(
        LocalityDescriptor::make_remote(m.dest.fallback_node()));
    nt.bind(m.dest, ds);
  }

  LocalityDescriptor& d = nt.descriptor(ds);
  if (d.local()) {
    if (src != kInvalidNode && !had_hint && k_.config().name_cache) {
      // First delivery from that sender: cache our descriptor's address
      // back at the sending node so subsequent sends skip our lookup.
      am::Packet fill;
      fill.src = k_.self();
      fill.dst = src;
      fill.handler = kHCacheFill;
      fill.words = {m.dest.pack_word0(), m.dest.pack_word1(), ds.pack(),
                    d.epoch, 0, 0};
      k_.machine().send(std::move(fill));
    }
    k_.deliver_local(d.actor, std::move(m));
    return;
  }

  // The receiver has migrated on. Do NOT forward the whole message (§4.3):
  // park it and chase the actor with a forwarding-information request.
  k_.stats().bump(Stat::kMessagesForwarded);
  const MailAddress dest = m.dest;
  const NodeId toward = d.remote_node;
  const std::uint32_t epoch = d.epoch;
  const bool need_fir = !d.fir_outstanding;
  d.fir_outstanding = true;
  park(dest, std::move(m), src);
  if (need_fir) send_fir(dest, toward, /*hops=*/0, epoch);
}

void NodeManager::park(const MailAddress& addr, Message m, NodeId origin) {
  k_.trace_mark(trace::EventKind::kParked);
  k_.stats().bump(Stat::kMessagesParked);
  k_.machine().token_acquire();
  parked_[addr].push_back(ParkedMessage{std::move(m), origin});
}

// --- FIR protocol (§4.3) -----------------------------------------------------------

void NodeManager::send_fir(const MailAddress& addr, NodeId toward,
                           std::uint64_t hops, std::uint64_t epoch) {
  k_.trace_mark(trace::EventKind::kFirSent, toward);
  k_.stats().bump(Stat::kFirSent);
  // Anchor the round-trip probe (keep the first anchor if a chase for this
  // address is somehow re-fired before its response lands).
  fir_sent_at_.try_emplace(addr, k_.machine().now(k_.self()));
  am::Packet p;
  p.src = k_.self();
  p.dst = toward;
  p.handler = kHFir;
  // words[2] carries the relay count so far and words[3] the chain's epoch
  // watermark (highest descriptor epoch seen along the chase): monotone
  // epochs keep forward chains acyclic (§4.3), so the hop count stays
  // within node count + watermark — audited at each relay in on_fir.
  p.words = {addr.pack_word0(), addr.pack_word1(), hops, epoch, 0, 0};
  k_.machine().send(std::move(p));
}

void NodeManager::respond_fir(const MailAddress& addr, SlotId desc_slot,
                              NodeId to) {
  am::Packet p;
  p.src = k_.self();
  p.dst = to;
  p.handler = kHFirResponse;
  p.words = {addr.pack_word0(), addr.pack_word1(), k_.self(),
             desc_slot.pack(), k_.names().descriptor(desc_slot).epoch, 0};
  k_.machine().send(std::move(p));
}

void NodeManager::on_fir(const am::Packet& p) {
  const MailAddress addr = MailAddress::unpack(p.words[0], p.words[1]);
  const NodeId from = p.src;
  NameTable& nt = k_.names();
  SlotId ds = nt.resolve(addr);
  if (!ds.valid()) {
    if (addr.alias && addr.created_on == k_.self()) {
      // FIR raced the creation request; answer once the actor registers.
      k_.machine().token_acquire();
      await_reg_[addr].fir_origins.push_back(from);
      return;
    }
    HAL_ASSERT(addr.home != k_.self());
    ds = nt.allocate(LocalityDescriptor::make_remote(addr.fallback_node()));
    nt.bind(addr, ds);
  }
  LocalityDescriptor& d = nt.descriptor(ds);
  if (d.local()) {
    // The chase ends here (even for a terminated actor: senders will then
    // dead-letter against this node's descriptor).
    respond_fir(addr, ds, from);
    return;
  }
  // Relay along the forward chain; remember who asked so the response can
  // propagate back and update every name table on the way (§4.3).
  k_.stats().bump(Stat::kFirRelayed);
  const std::uint64_t hops = p.words[2] + 1;
  // Raise the chain's epoch watermark with what this relay knows. A relay
  // node can legitimately know *less* than the chain (a fresh fallback
  // descriptor during a registration race), so the watermark, not the local
  // epoch, bounds the chain length.
  const std::uint64_t seen = std::max<std::uint64_t>(p.words[3], d.epoch);
  check::audit_fir_chain(k_.self(), hops, k_.node_count(), seen);
  fir_relays_[addr].push_back(from);
  if (!d.fir_outstanding) {
    d.fir_outstanding = true;
    send_fir(addr, d.remote_node, hops, seen);
  }
}

void NodeManager::on_fir_response(const am::Packet& p) {
  const MailAddress addr = MailAddress::unpack(p.words[0], p.words[1]);
  const NodeId node = static_cast<NodeId>(p.words[2]);
  const SlotId rdesc = SlotId::unpack(p.words[3]);
  const auto epoch = static_cast<std::uint32_t>(p.words[4]);
  if (auto it = fir_sent_at_.find(addr); it != fir_sent_at_.end()) {
    // Responses also reach nodes that never asked (parked-sender teaching,
    // migrate acks routed here) — only a node with an anchored FIR samples.
    k_.probes().record_span(obs::Probe::kFirRoundTrip, it->second,
                            k_.machine().now(k_.self()));
    fir_sent_at_.erase(it);
  }
  k_.stats().bump(Stat::kFirResolved);
  k_.trace_mark(trace::EventKind::kFirResolved, node);
  location_learned(addr, node, rdesc, epoch, /*clear_fir=*/true,
                   /*propagate=*/true);
}

void NodeManager::location_learned(const MailAddress& addr, NodeId node,
                                   SlotId rdesc, std::uint32_t epoch,
                                   bool clear_fir, bool propagate) {
  NameTable& nt = k_.names();
  const SlotId ds = nt.resolve(addr);
  if (ds.valid()) {
    LocalityDescriptor& d = nt.descriptor(ds);
    if (!d.local()) {
      // Monotone best-guess update: discard information older than what we
      // hold. Without this guard, a late-arriving response could point a
      // forward chain *backwards* and the FIR chase could cycle forever.
      if (epoch > d.epoch) {
        d.remote_node = node;
        d.remote_desc = rdesc;
        d.epoch = epoch;
      } else if (epoch == d.epoch && d.remote_node == node &&
                 !d.remote_desc.valid()) {
        d.remote_desc = rdesc;
      }
      // The flag answers *our* outstanding FIR regardless of staleness;
      // flushed messages re-resolve against the (possibly fresher) pointer.
      if (clear_fir) d.fir_outstanding = false;
    }
  }
  if (auto it = parked_.find(addr); it != parked_.end()) {
    std::vector<ParkedMessage> msgs = std::move(it->second);
    parked_.erase(it);
    std::vector<NodeId> taught;
    for (ParkedMessage& pm : msgs) {
      k_.machine().token_release();
      pm.m.dest_desc_hint = {};
      // "Once the location is known, the original message is sent directly
      // to the node where the receiver resides."
      k_.send_message(std::move(pm.m));
      // Teach the original sender the new location so its next send goes
      // direct instead of detouring through this node again.
      if (pm.origin != kInvalidNode && pm.origin != k_.self() &&
          pm.origin != node &&
          std::find(taught.begin(), taught.end(), pm.origin) ==
              taught.end()) {
        taught.push_back(pm.origin);
        am::Packet p;
        p.src = k_.self();
        p.dst = pm.origin;
        p.handler = kHFirResponse;
        p.words = {addr.pack_word0(), addr.pack_word1(), node, rdesc.pack(),
                   epoch, 0};
        k_.machine().send(std::move(p));
      }
    }
  }
  if (propagate) {
    if (auto it = fir_relays_.find(addr); it != fir_relays_.end()) {
      std::vector<NodeId> relays = std::move(it->second);
      fir_relays_.erase(it);
      for (const NodeId r : relays) {
        am::Packet p;
        p.src = k_.self();
        p.dst = r;
        p.handler = kHFirResponse;
        p.words = {addr.pack_word0(), addr.pack_word1(), node, rdesc.pack(),
                   epoch, 0};
        k_.machine().send(std::move(p));
      }
    }
  }
}

void NodeManager::on_cache_fill(const am::Packet& p) {
  const MailAddress addr = MailAddress::unpack(p.words[0], p.words[1]);
  const SlotId rdesc = SlotId::unpack(p.words[2]);
  const auto epoch = static_cast<std::uint32_t>(p.words[3]);
  NameTable& nt = k_.names();
  const SlotId ds = nt.resolve(addr);
  if (!ds.valid()) return;  // nothing cached here any more
  LocalityDescriptor& d = nt.descriptor(ds);
  // Accept only if the fill matches (or refreshes) our best guess — it
  // comes from the node we delivered to, so the node must agree.
  if (!d.local() && d.remote_node == p.src && epoch >= d.epoch &&
      !d.remote_desc.valid()) {
    d.remote_desc = rdesc;
    d.epoch = epoch;
  }
}

// --- Remote creation (§5) ------------------------------------------------------------

void NodeManager::on_create_request(const am::Packet& p) {
  const MailAddress alias = MailAddress::unpack(p.words[0], p.words[1]);
  const BehaviorId behavior = static_cast<BehaviorId>(p.words[2]);
  k_.charge(k_.costs().actor_alloc_ns + k_.costs().descriptor_alloc_ns +
            k_.costs().name_insert_ns);
  std::unique_ptr<ActorBase> impl = k_.registry().construct(behavior);
  const SlotId aslot = k_.install_actor(std::move(impl), behavior, {}, alias);
  k_.stats().bump(Stat::kActorsCreatedRemote);

  // Background acknowledgment: cache this node's descriptor address in the
  // requester's alias descriptor.
  am::Packet ack;
  ack.src = k_.self();
  ack.dst = p.src;
  ack.handler = kHCreateAck;
  ack.words = {alias.pack_word0(), alias.pack_word1(),
               k_.actor(aslot)->self_desc.pack(), 0, 0, 0};
  k_.machine().send(std::move(ack));
}

void NodeManager::on_create_ack(const am::Packet& p) {
  const MailAddress alias = MailAddress::unpack(p.words[0], p.words[1]);
  const SlotId rdesc = SlotId::unpack(p.words[2]);
  HAL_ASSERT(alias.home == k_.self());
  LocalityDescriptor* d = k_.names().try_descriptor(alias.desc);
  HAL_ASSERT(d != nullptr);
  if (!d->local() && !d->remote_desc.valid()) d->remote_desc = rdesc;
}

// --- Replies (§6.2) -------------------------------------------------------------------

void NodeManager::on_reply(const am::Packet& p) {
  const ContRef ref{k_.self(), SlotId::unpack(p.words[0]),
                    static_cast<std::uint32_t>(p.words[1])};
  Bytes blob;
  if (p.words[3] != 0) {
    blob = k_.pool().acquire(p.payload.size());
    std::memcpy(blob.data(), p.payload.data(), p.payload.size());
  }
  k_.fill_join(ref, p.words[2], std::move(blob));
}

// --- Groups (§2.2, §6.4) ----------------------------------------------------------------

void NodeManager::relay_mst(const am::Packet& proto, NodeId root) {
  am::mst_for_each_child(k_.self(), root, k_.node_count(), [&](NodeId child) {
    am::Packet copy = proto;
    copy.src = k_.self();
    copy.dst = child;
    k_.stats().bump(Stat::kBroadcastFanout);
    k_.machine().send(std::move(copy));
  });
}

void NodeManager::group_create_local(GroupId gid, BehaviorId behavior,
                                     std::uint32_t count, NodeId root) {
  if (k_.groups().find(gid) != nullptr) return;  // already created here
  const NodeId nodes = k_.node_count();
  GroupInfo info;
  info.id = gid;
  info.behavior = behavior;
  info.total = count;
  info.root = root;
  // Member i is born on node (root + i) mod P; this node owns the indices
  // congruent to (self - root) mod P.
  const std::uint32_t first =
      (k_.self() + nodes - (root % nodes)) % nodes;
  for (std::uint32_t idx = first; idx < count; idx += nodes) {
    const MailAddress a = k_.create_local(behavior);
    info.members.emplace_back(idx, a);
  }
  k_.groups().insert(std::move(info));
  group_registered(gid);
}

void NodeManager::on_group_create(const am::Packet& p) {
  const GroupId gid = GroupId::unpack(p.words[0]);
  const BehaviorId behavior = static_cast<BehaviorId>(p.words[1]);
  const auto count = static_cast<std::uint32_t>(p.words[2]);
  const NodeId root = static_cast<NodeId>(p.words[3]);
  // Relay first: subtrees can start creating while we create locally.
  relay_mst(p, root);
  group_create_local(gid, behavior, count, root);
}

void NodeManager::broadcast_deliver_local(GroupId gid, Message m) {
  if (k_.groups().find(gid) != nullptr) {
    k_.schedule_quantum(gid, std::move(m));
    return;
  }
  k_.machine().token_acquire();
  await_group_[gid].push_back(PendingGroupOp{true, 0, std::move(m)});
}

void NodeManager::member_deliver_local(GroupId gid, std::uint32_t index,
                                       Message m) {
  const GroupInfo* g = k_.groups().find(gid);
  if (g != nullptr) {
    m.dest = k_.groups().member_address(gid, index);
    k_.send_message(std::move(m));
    return;
  }
  k_.machine().token_acquire();
  await_group_[gid].push_back(PendingGroupOp{false, index, std::move(m)});
}

void NodeManager::on_group_broadcast(const am::Packet& p) {
  k_.probes().record_span(obs::Probe::kBroadcastRelay, p.stamp,
                          k_.machine().now(k_.self()));
  const GroupId gid = GroupId::unpack(p.words[0]);
  const NodeId root = static_cast<NodeId>(p.words[4]);
  relay_mst(p, root);
  Message m;
  m.selector = unpack_sel(p.words[1]);
  m.argc = unpack_argc(p.words[1]);
  m.cont = ContRef::unpack(p.words[2], p.words[3]);
  m.decode_body(p.payload, &k_.pool());
  broadcast_deliver_local(gid, std::move(m));
}

void NodeManager::on_group_member_send(const am::Packet& p) {
  const GroupId gid = GroupId::unpack(p.words[0]);
  const auto index = static_cast<std::uint32_t>(p.words[1]);
  Message m;
  m.selector = unpack_sel(p.words[2]);
  m.argc = unpack_argc(p.words[2]);
  m.cont = ContRef::unpack(p.words[3], p.words[4]);
  m.decode_body(p.payload, &k_.pool());
  member_deliver_local(gid, index, std::move(m));
}

void NodeManager::group_registered(GroupId gid) {
  auto it = await_group_.find(gid);
  if (it == await_group_.end()) return;
  std::vector<PendingGroupOp> ops = std::move(it->second);
  await_group_.erase(it);
  for (PendingGroupOp& op : ops) {
    k_.machine().token_release();
    if (op.is_broadcast) {
      broadcast_deliver_local(gid, std::move(op.m));
    } else {
      member_deliver_local(gid, op.index, std::move(op.m));
    }
  }
}

// --- Registration rendezvous ------------------------------------------------------------

void NodeManager::registered(const MailAddress& addr) {
  // The actor now lives here. Three kinds of work may be waiting on that
  // fact:
  //  1. deliveries/FIRs that raced the registration itself (await_reg_);
  //  2. messages this node parked earlier, when its descriptor still said
  //     "moved away" — deliverable locally now;
  //  3. FIR relays recorded while the actor was in transit *to* this node:
  //     the chase dead-ends here (our own onward FIR followed stale, older-
  //     epoch pointers and circles back), so we are the one who must answer.
  if (auto it = await_reg_.find(addr); it != await_reg_.end()) {
    AwaitReg ar = std::move(it->second);
    await_reg_.erase(it);
    for (Message& m : ar.messages) {
      k_.machine().token_release();
      m.dest_desc_hint = {};
      local_or_forward(std::move(m), kInvalidNode, false);
    }
    if (!ar.fir_origins.empty()) {
      const SlotId ds = k_.names().resolve(addr);
      HAL_ASSERT(ds.valid());
      for (const NodeId n : ar.fir_origins) {
        k_.machine().token_release();
        respond_fir(addr, ds, n);
      }
    }
  }
  if (auto it = parked_.find(addr); it != parked_.end()) {
    std::vector<ParkedMessage> msgs = std::move(it->second);
    parked_.erase(it);
    for (ParkedMessage& pm : msgs) {
      k_.machine().token_release();
      pm.m.dest_desc_hint = {};
      k_.send_message(std::move(pm.m));
    }
  }
  if (auto it = fir_relays_.find(addr); it != fir_relays_.end()) {
    std::vector<NodeId> relays = std::move(it->second);
    fir_relays_.erase(it);
    const SlotId ds = k_.names().resolve(addr);
    HAL_ASSERT(ds.valid());
    for (const NodeId n : relays) respond_fir(addr, ds, n);
  }
}

// --- Migration ----------------------------------------------------------------------------

void NodeManager::migration_arrived(NodeId src, SimTime departed_at,
                                    Bytes data) {
  if (departed_at != 0) {
    k_.probes().record_span(obs::Probe::kMigration, departed_at,
                            k_.machine().now(k_.self()));
  }
  ByteReader r{std::span<const std::byte>{data}};
  const auto behavior = r.read<BehaviorId>();
  const auto a0 = r.read<std::uint64_t>();
  const auto a1 = r.read<std::uint64_t>();
  const MailAddress addr = MailAddress::unpack(a0, a1);
  const auto l0 = r.read<std::uint64_t>();
  const auto l1 = r.read<std::uint64_t>();
  const MailAddress alias = MailAddress::unpack(l0, l1);
  const auto epoch = r.read<std::uint32_t>();
  const bool relocatable = r.read<std::uint8_t>() != 0;
  const auto state = r.read_bytes();

  k_.charge(k_.costs().actor_alloc_ns + k_.costs().descriptor_alloc_ns);
  std::unique_ptr<ActorBase> impl = k_.registry().construct(behavior);
  {
    ByteReader sr(state);
    impl->unpack_state(sr);
  }
  const SlotId aslot =
      k_.install_actor(std::move(impl), behavior, addr, alias, epoch);
  ActorRecord* rec = k_.actor(aslot);
  rec->relocatable = relocatable;
  const auto mail_count = r.read<std::uint32_t>();
  for (std::uint32_t i = 0; i < mail_count; ++i) {
    rec->mailbox.push_back(Message::decode_full(r, &k_.pool()));
  }
  const auto pending_count = r.read<std::uint32_t>();
  for (std::uint32_t i = 0; i < pending_count; ++i) {
    rec->pending.push_back(Message::decode_full(r, &k_.pool()));
  }
  k_.stats().bump(Stat::kMigrationsIn);
  k_.trace_mark(trace::EventKind::kMigrateIn, src, epoch);
  if (poll_outstanding_) {
    // Steal success: the poll this node had outstanding was answered with a
    // migrated actor. (An unsolicited migration racing the poll inflates
    // the sample set by one — acceptable for a latency distribution.)
    k_.probes().record_span(obs::Probe::kStealRoundTrip, poll_sent_at_,
                            k_.machine().now(k_.self()));
  }
  poll_outstanding_ = false;
  // A successful steal resets the deny backoff: work is flowing again, so
  // the next idle spell may poll immediately.
  poll_denies_ = 0;
  poll_backoff_until_ = 0;
  if (rec->has_mail()) k_.schedule(aslot);

  // Cache the new descriptor address at the old node *and* the birthplace
  // (§4.3) so both shortcut future deliveries.
  const SlotId new_desc = rec->self_desc;
  auto send_ack = [&](NodeId to) {
    if (to == k_.self()) return;
    am::Packet p;
    p.src = k_.self();
    p.dst = to;
    p.handler = kHMigrateAck;
    p.words = {addr.pack_word0(), addr.pack_word1(), k_.self(),
               new_desc.pack(), epoch, 0};
    k_.machine().send(std::move(p));
  };
  send_ack(src);
  if (addr.home != src) send_ack(addr.home);
  // The migration image has been fully unpacked; recycle its buffer.
  k_.pool().release(std::move(data));
}

void NodeManager::on_migrate_ack(const am::Packet& p) {
  const MailAddress addr = MailAddress::unpack(p.words[0], p.words[1]);
  const NodeId node = static_cast<NodeId>(p.words[2]);
  const SlotId rdesc = SlotId::unpack(p.words[3]);
  const auto epoch = static_cast<std::uint32_t>(p.words[4]);
  // Treat like location information learned out-of-band: update the
  // best guess and flush anything parked here, but leave an in-flight FIR
  // to complete its own chain.
  location_learned(addr, node, rdesc, epoch, /*clear_fir=*/false,
                   /*propagate=*/false);
}

// --- Bulk completion --------------------------------------------------------------------

void NodeManager::bulk_delivered(NodeId src, std::uint64_t tag,
                                 const std::array<std::uint64_t, 2>& meta,
                                 Bytes data) {
  switch (tag) {
    case kTagLargeMessage: {
      ByteReader r{std::span<const std::byte>{data}};
      Message m = Message::decode_full(r, &k_.pool());
      k_.pool().release(std::move(data));
      local_or_forward(std::move(m), src, /*had_hint=*/false);
      break;
    }
    case kTagMigration:
      migration_arrived(src, meta[0], std::move(data));
      break;
    case kTagMemberMessage: {
      ByteReader r{std::span<const std::byte>{data}};
      Message m = Message::decode_full(r, &k_.pool());
      k_.pool().release(std::move(data));
      member_deliver_local(GroupId::unpack(meta[0]),
                           static_cast<std::uint32_t>(meta[1]), std::move(m));
      break;
    }
    case kTagReplyBlob: {
      HAL_ASSERT(data.size() >= sizeof(std::uint64_t));
      std::uint64_t word = 0;
      std::memcpy(&word, data.data(), sizeof(word));
      Bytes blob = k_.pool().acquire(data.size() - sizeof(word));
      std::memcpy(blob.data(), data.data() + sizeof(word),
                  data.size() - sizeof(word));
      k_.pool().release(std::move(data));
      const ContRef ref{k_.self(), SlotId::unpack(meta[0]),
                        static_cast<std::uint32_t>(meta[1])};
      k_.fill_join(ref, word, std::move(blob));
      break;
    }
    default:
      HAL_PANIC("unknown bulk tag");
  }
}

// --- Load balancing (receiver-initiated random polling) ----------------------------------

void NodeManager::maybe_poll() {
  if (!k_.config().load_balancing || k_.node_count() < 2) return;
  if (poll_outstanding_) return;
  // Continuous polling while any node has queued or executing work (the
  // front-end's work hint stands in for the termination detector Kumar et
  // al. pair with random polling). An idle machine sends nothing, so
  // quiescence detection stays clean.
  if (k_.machine().work_hint() <= 0) return;
  // Deny backoff: after a failed poll, wait out the exponential holdoff
  // before bothering another victim. The machine re-runs on_idle at
  // poll_resume_at() (service_deadline plumbing), so expiry is not missed.
  if (poll_backoff_until_ != 0 &&
      k_.machine().now(k_.self()) < poll_backoff_until_) {
    return;
  }
  NodeId victim =
      static_cast<NodeId>(k_.rng().below(k_.node_count() - 1));
  if (victim >= k_.self()) ++victim;
  poll_outstanding_ = true;
  poll_sent_at_ = k_.machine().now(k_.self());
  k_.stats().bump(Stat::kStealRequestsSent);
  am::Packet p;
  p.src = k_.self();
  p.dst = victim;
  p.handler = kHStealRequest;
  p.urgent = true;  // the poll RTT gates how fast work spreads
  k_.machine().send(std::move(p));
}

void NodeManager::on_steal_request(const am::Packet& p) {
  const NodeId thief = p.src;
  // Threshold policy [Kumar et al.]: keep the last ready item for yourself —
  // handing it away just bounces the only work around the machine.
  if (k_.dispatcher().size() < 2) {
    k_.stats().bump(Stat::kStealRequestsDenied);
    am::Packet deny;
    deny.src = k_.self();
    deny.dst = thief;
    deny.handler = kHStealDeny;
    deny.urgent = true;  // a held deny stretches the thief's backoff anchor
    k_.machine().send(std::move(deny));
    return;
  }
  const auto victim = k_.dispatcher().steal_if([&](SlotId slot) {
    const ActorRecord* rec = k_.actor(slot);
    return rec != nullptr && rec->relocatable && rec->impl->migratable() &&
           rec->has_mail();
  });
  if (victim.has_value()) {
    k_.stats().bump(Stat::kStealRequestsServed);
    k_.trace_mark(trace::EventKind::kStealServed, thief);
    ActorRecord* rec = k_.actor(*victim);
    rec->scheduled = false;
    k_.machine().work_hint_add(-1);  // leaves this queue; re-counted on arrival
    k_.perform_migration(*victim, thief);
    return;
  }
  k_.stats().bump(Stat::kStealRequestsDenied);
  am::Packet deny;
  deny.src = k_.self();
  deny.dst = thief;
  deny.handler = kHStealDeny;
  deny.urgent = true;
  k_.machine().send(std::move(deny));
}

void NodeManager::on_steal_deny(const am::Packet& /*p*/) {
  const SimTime now = k_.machine().now(k_.self());
  k_.probes().record_span(obs::Probe::kStealRoundTrip, poll_sent_at_, now);
  poll_outstanding_ = false;
  // Exponential backoff instead of an immediate repoll: consecutive denies
  // double the wait (capped), so a machine whose work is concentrated on
  // one busy node is not flooded by every idle node's poll loop. The next
  // poll fires from on_idle once the backoff expires — the machines park
  // until poll_resume_at() and re-run on_idle then.
  ++poll_denies_;
  const std::uint32_t shift = std::min(poll_denies_ - 1, kPollBackoffMaxShift);
  poll_backoff_until_ = now + (kPollBackoffBaseNs << shift);
}

SimTime NodeManager::poll_resume_at() const {
  if (!k_.config().load_balancing || k_.node_count() < 2) return 0;
  if (poll_outstanding_) return 0;  // the reply itself wakes this node
  if (poll_backoff_until_ == 0) return 0;
  // Nothing left to steal: no wake needed; a work-hint edge re-runs on_idle
  // anyway (wake_hook) and polling resumes from there.
  if (k_.machine().work_hint() <= 0) return 0;
  return poll_backoff_until_;
}

// --- Introspection ---------------------------------------------------------------------

std::size_t NodeManager::parked_messages() const {
  std::size_t n = 0;
  for (const auto& [addr, v] : parked_) n += v.size();
  return n;
}

std::size_t NodeManager::awaiting_registration() const {
  std::size_t n = 0;
  for (const auto& [addr, ar] : await_reg_) {
    n += ar.messages.size() + ar.fir_origins.size();
  }
  return n;
}

std::size_t NodeManager::awaiting_group() const {
  std::size_t n = 0;
  for (const auto& [gid, v] : await_group_) n += v.size();
  return n;
}

// --- Shutdown drain ---------------------------------------------------------------------

void NodeManager::drain_in_flight(DrainStats& out) {
  auto retire = [&](Message& m) {
    ++out.messages;
    if (m.payload.capacity() != 0) ++out.payloads;
    k_.pool().release(std::move(m.payload));
  };
  for (auto& [addr, msgs] : parked_) {
    for (ParkedMessage& pm : msgs) {
      k_.machine().token_release();
      retire(pm.m);
    }
  }
  parked_.clear();
  for (auto& [addr, ar] : await_reg_) {
    for (Message& m : ar.messages) {
      k_.machine().token_release();
      retire(m);
    }
    // Unanswered FIRs hold a token each but carry no payload.
    for (std::size_t i = 0; i < ar.fir_origins.size(); ++i) {
      k_.machine().token_release();
    }
  }
  await_reg_.clear();
  for (auto& [gid, ops] : await_group_) {
    for (PendingGroupOp& op : ops) {
      k_.machine().token_release();
      retire(op.m);
    }
  }
  await_group_.clear();
  // Relay records and probe anchors hold no messages or tokens.
  fir_relays_.clear();
  fir_sent_at_.clear();
}

void NodeManager::for_each_in_flight_payload(
    const std::function<void(const Bytes&)>& fn) const {
  for (const auto& [addr, msgs] : parked_) {
    for (const ParkedMessage& pm : msgs) fn(pm.m.payload);
  }
  for (const auto& [addr, ar] : await_reg_) {
    for (const Message& m : ar.messages) fn(m.payload);
  }
  for (const auto& [gid, ops] : await_group_) {
    for (const PendingGroupOp& op : ops) fn(op.m.payload);
  }
}

}  // namespace hal
