// Actor messages and continuation references.
//
// "All actor messages have a destination mail address and a method selector.
// Many of them may also contain a continuation address." (§3) The runtime
// exploits exactly these properties when mapping messages onto active-message
// packets: the header fits in one packet's words, arguments travel as a short
// inline payload, and anything larger goes through the bulk protocol.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "name/mail_address.hpp"

namespace hal {

/// Reference to one argument slot of a join continuation living on `node`.
/// This is the paper's "continuation address": replies are routed straight
/// to the slot, not through the creating actor's mailbox.
struct ContRef {
  NodeId node = kInvalidNode;
  SlotId jc{};
  std::uint32_t slot = 0;

  constexpr bool valid() const noexcept {
    return node != kInvalidNode && jc.valid();
  }

  /// Same continuation, different argument slot.
  constexpr ContRef at(std::uint32_t s) const noexcept {
    return ContRef{node, jc, s};
  }

  constexpr std::uint64_t pack_word0() const noexcept {
    return (static_cast<std::uint64_t>(node & 0xffffU) << 32) | slot;
  }
  constexpr std::uint64_t pack_word1() const noexcept { return jc.pack(); }

  static constexpr ContRef unpack(std::uint64_t w0,
                                  std::uint64_t w1) noexcept {
    ContRef c;
    c.node = static_cast<NodeId>((w0 >> 32) & 0xffffU);
    if (c.node == 0xffffU) c.node = kInvalidNode;
    c.slot = static_cast<std::uint32_t>(w0 & 0xffffffffU);
    c.jc = SlotId::unpack(w1);
    return c;
  }

  friend constexpr bool operator==(const ContRef&, const ContRef&) noexcept =
      default;
};

/// Inline argument words a message can carry without a payload buffer.
inline constexpr std::size_t kMsgInlineWords = 8;

/// Spare bit of the serialized argc byte (argc <= 8 needs 4 bits) marking
/// "a payload block follows" in the full encoding. An empty payload costs
/// zero bytes on the wire instead of the 8-byte length word the original
/// format always wrote.
inline constexpr std::uint8_t kArgcPayloadFlag = 0x80;

struct Message {
  MailAddress dest;
  Selector selector = 0;
  ContRef cont{};  ///< reply target (invalid if the method never replies)
  std::array<std::uint64_t, kMsgInlineWords> args{};
  std::uint8_t argc = 0;  ///< words of args[] in use
  Bytes payload;          ///< optional bulk argument (e.g. a matrix block)

  /// Sender-side routing hint: the receiving node's descriptor slot for the
  /// destination, when cached (§4.1). Lets the receiving node manager skip
  /// its name-table lookup.
  SlotId dest_desc_hint{};

  /// Queue-residency probe anchor: set when the message enters a mailbox or
  /// pending queue on the node that will execute it. Never serialized — a
  /// message that crosses nodes (or migrates inside a mailbox) restarts at 0,
  /// the "not stamped" sentinel, and its residency sample is skipped.
  SimTime enqueued_at = 0;

  /// Wire size of the body: inline argument words followed directly by the
  /// payload bytes. No length word — the payload extent is implied by the
  /// packet's payload size minus the argc announced in the header word.
  std::size_t body_bytes() const noexcept {
    return sizeof(std::uint64_t) * argc + payload.size();
  }

  /// Wire size of the full encoding (header + body; see encode_full).
  std::size_t full_bytes() const noexcept {
    return 4 * sizeof(std::uint64_t) + sizeof(Selector) +
           sizeof(std::uint8_t) + sizeof(std::uint64_t) * argc +
           (payload.empty() ? 0 : sizeof(std::uint64_t) + payload.size());
  }

  /// Serialize the body into `out` (resized to body_bytes()). The fast
  /// path: two memcpys into a caller-supplied — typically pooled — buffer,
  /// no ByteWriter, no length word, zero bytes for an arg-only message...
  /// and zero heap allocation when out.capacity() >= body_bytes().
  void encode_body_into(Bytes& out) const {
    out.resize(body_bytes());
    if (argc != 0) {
      std::memcpy(out.data(), args.data(), sizeof(std::uint64_t) * argc);
    }
    if (!payload.empty()) {
      std::memcpy(out.data() + sizeof(std::uint64_t) * argc, payload.data(),
                  payload.size());
    }
  }

  /// Serialize everything except the header words that ride in the packet.
  /// Convenience wrapper over encode_body_into (tests, cold paths).
  Bytes encode_body() const {
    Bytes out;
    encode_body_into(out);
    return out;
  }

  /// Decode a body produced by encode_body_into. `argc` must already hold
  /// the header's value; the payload is the remainder past the arg words.
  /// With `pool`, a non-empty payload lands in a recycled buffer.
  void decode_body(std::span<const std::byte> body,
                   BufferPool* pool = nullptr) {
    const std::size_t arg_bytes = sizeof(std::uint64_t) * argc;
    HAL_ASSERT(body.size() >= arg_bytes);
    if (argc != 0) std::memcpy(args.data(), body.data(), arg_bytes);
    const std::size_t tail = body.size() - arg_bytes;
    if (tail == 0) {
      payload.clear();
      return;
    }
    if (pool != nullptr && payload.capacity() < tail) {
      payload = pool->acquire(tail);
    } else {
      payload.resize(tail);
    }
    std::memcpy(payload.data(), body.data() + arg_bytes, tail);
  }

  /// Full serialization (used when a message itself is data: migration
  /// carries the actor's queued mail with it). Payload presence rides the
  /// spare kArgcPayloadFlag bit of the argc byte, so an empty payload costs
  /// nothing on the wire.
  void encode_full(ByteWriter& w) const {
    w.write(dest.pack_word0());
    w.write(dest.pack_word1());
    w.write(selector);
    w.write(cont.pack_word0());
    w.write(cont.pack_word1());
    w.write(static_cast<std::uint8_t>(
        argc | (payload.empty() ? 0 : kArgcPayloadFlag)));
    for (std::uint8_t i = 0; i < argc; ++i) w.write(args[i]);
    if (!payload.empty()) w.write_bytes(payload);
  }

  static Message decode_full(ByteReader& r, BufferPool* pool = nullptr) {
    Message m;
    const auto a0 = r.read<std::uint64_t>();
    const auto a1 = r.read<std::uint64_t>();
    m.dest = MailAddress::unpack(a0, a1);
    m.selector = r.read<Selector>();
    const auto c0 = r.read<std::uint64_t>();
    const auto c1 = r.read<std::uint64_t>();
    m.cont = ContRef::unpack(c0, c1);
    const auto argc_byte = r.read<std::uint8_t>();
    m.argc = argc_byte & static_cast<std::uint8_t>(~kArgcPayloadFlag);
    HAL_ASSERT(m.argc <= kMsgInlineWords);
    for (std::uint8_t i = 0; i < m.argc; ++i)
      m.args[i] = r.read<std::uint64_t>();
    if ((argc_byte & kArgcPayloadFlag) != 0) {
      auto b = r.read_bytes();
      if (pool != nullptr) {
        m.payload = pool->acquire(b.size());
        std::memcpy(m.payload.data(), b.data(), b.size());
      } else {
        m.payload.assign(b.begin(), b.end());
      }
    }
    return m;
  }

  /// Copy for fan-out (broadcast quanta): like the copy constructor, but a
  /// non-empty payload is cloned into a pooled buffer.
  Message clone_using(BufferPool& pool) const {
    Message c;
    c.dest = dest;
    c.selector = selector;
    c.cont = cont;
    c.args = args;
    c.argc = argc;
    c.dest_desc_hint = dest_desc_hint;
    if (!payload.empty()) {
      c.payload = pool.acquire(payload.size());
      std::memcpy(c.payload.data(), payload.data(), payload.size());
    }
    return c;
  }
};

/// Group identity returned by grpnew: creator node + per-node sequence.
struct GroupId {
  NodeId creator = kInvalidNode;
  std::uint32_t seq = 0;

  constexpr bool valid() const noexcept { return creator != kInvalidNode; }
  constexpr std::uint64_t pack() const noexcept {
    return (static_cast<std::uint64_t>(creator) << 32) | seq;
  }
  static constexpr GroupId unpack(std::uint64_t w) noexcept {
    return GroupId{static_cast<NodeId>(w >> 32),
                   static_cast<std::uint32_t>(w & 0xffffffffU)};
  }
  friend constexpr bool operator==(const GroupId&, const GroupId&) noexcept =
      default;
};

struct GroupIdHash {
  std::size_t operator()(const GroupId& g) const noexcept {
    return static_cast<std::size_t>(mix64(g.pack()));
  }
};

}  // namespace hal
