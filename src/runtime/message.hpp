// Actor messages and continuation references.
//
// "All actor messages have a destination mail address and a method selector.
// Many of them may also contain a continuation address." (§3) The runtime
// exploits exactly these properties when mapping messages onto active-message
// packets: the header fits in one packet's words, arguments travel as a short
// inline payload, and anything larger goes through the bulk protocol.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "name/mail_address.hpp"

namespace hal {

/// Reference to one argument slot of a join continuation living on `node`.
/// This is the paper's "continuation address": replies are routed straight
/// to the slot, not through the creating actor's mailbox.
struct ContRef {
  NodeId node = kInvalidNode;
  SlotId jc{};
  std::uint32_t slot = 0;

  constexpr bool valid() const noexcept {
    return node != kInvalidNode && jc.valid();
  }

  /// Same continuation, different argument slot.
  constexpr ContRef at(std::uint32_t s) const noexcept {
    return ContRef{node, jc, s};
  }

  constexpr std::uint64_t pack_word0() const noexcept {
    return (static_cast<std::uint64_t>(node & 0xffffU) << 32) | slot;
  }
  constexpr std::uint64_t pack_word1() const noexcept { return jc.pack(); }

  static constexpr ContRef unpack(std::uint64_t w0,
                                  std::uint64_t w1) noexcept {
    ContRef c;
    c.node = static_cast<NodeId>((w0 >> 32) & 0xffffU);
    if (c.node == 0xffffU) c.node = kInvalidNode;
    c.slot = static_cast<std::uint32_t>(w0 & 0xffffffffU);
    c.jc = SlotId::unpack(w1);
    return c;
  }

  friend constexpr bool operator==(const ContRef&, const ContRef&) noexcept =
      default;
};

/// Inline argument words a message can carry without a payload buffer.
inline constexpr std::size_t kMsgInlineWords = 8;

struct Message {
  MailAddress dest;
  Selector selector = 0;
  ContRef cont{};  ///< reply target (invalid if the method never replies)
  std::array<std::uint64_t, kMsgInlineWords> args{};
  std::uint8_t argc = 0;  ///< words of args[] in use
  Bytes payload;          ///< optional bulk argument (e.g. a matrix block)

  /// Sender-side routing hint: the receiving node's descriptor slot for the
  /// destination, when cached (§4.1). Lets the receiving node manager skip
  /// its name-table lookup.
  SlotId dest_desc_hint{};

  /// Queue-residency probe anchor: set when the message enters a mailbox or
  /// pending queue on the node that will execute it. Never serialized — a
  /// message that crosses nodes (or migrates inside a mailbox) restarts at 0,
  /// the "not stamped" sentinel, and its residency sample is skipped.
  SimTime enqueued_at = 0;

  /// Serialize everything except the header words that ride in the packet.
  Bytes encode_body() const {
    ByteWriter w;
    for (std::uint8_t i = 0; i < argc; ++i) w.write(args[i]);
    w.write_bytes(payload);
    return std::move(w).take();
  }

  void decode_body(std::span<const std::byte> body) {
    ByteReader r(body);
    for (std::uint8_t i = 0; i < argc; ++i) args[i] = r.read<std::uint64_t>();
    auto b = r.read_bytes();
    payload.assign(b.begin(), b.end());
  }

  /// Full serialization (used when a message itself is data: migration
  /// carries the actor's queued mail with it).
  void encode_full(ByteWriter& w) const {
    w.write(dest.pack_word0());
    w.write(dest.pack_word1());
    w.write(selector);
    w.write(cont.pack_word0());
    w.write(cont.pack_word1());
    w.write(argc);
    for (std::uint8_t i = 0; i < argc; ++i) w.write(args[i]);
    w.write_bytes(payload);
  }

  static Message decode_full(ByteReader& r) {
    Message m;
    const auto a0 = r.read<std::uint64_t>();
    const auto a1 = r.read<std::uint64_t>();
    m.dest = MailAddress::unpack(a0, a1);
    m.selector = r.read<Selector>();
    const auto c0 = r.read<std::uint64_t>();
    const auto c1 = r.read<std::uint64_t>();
    m.cont = ContRef::unpack(c0, c1);
    m.argc = r.read<std::uint8_t>();
    HAL_ASSERT(m.argc <= kMsgInlineWords);
    for (std::uint8_t i = 0; i < m.argc; ++i)
      m.args[i] = r.read<std::uint64_t>();
    auto b = r.read_bytes();
    m.payload.assign(b.begin(), b.end());
    return m;
  }
};

/// Group identity returned by grpnew: creator node + per-node sequence.
struct GroupId {
  NodeId creator = kInvalidNode;
  std::uint32_t seq = 0;

  constexpr bool valid() const noexcept { return creator != kInvalidNode; }
  constexpr std::uint64_t pack() const noexcept {
    return (static_cast<std::uint64_t>(creator) << 32) | seq;
  }
  static constexpr GroupId unpack(std::uint64_t w) noexcept {
    return GroupId{static_cast<NodeId>(w >> 32),
                   static_cast<std::uint32_t>(w & 0xffffffffU)};
  }
  friend constexpr bool operator==(const GroupId&, const GroupId&) noexcept =
      default;
};

struct GroupIdHash {
  std::size_t operator()(const GroupId& g) const noexcept {
    return static_cast<std::size_t>(mix64(g.pack()));
  }
};

}  // namespace hal
