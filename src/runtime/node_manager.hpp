// Node manager: the kernel's meta-actor (§3).
//
// "A node manager delivers messages sent by remote actors to local actors,
// creates an actor (or actors) in response to a creation request from a
// remote actor, and dynamically loads and links a user's executables. Node
// managers communicate with each other to maintain the system's consistency
// and allow dynamic load balancing." Requests arrive as active messages and
// are processed on the stream of whatever the node was doing — no context
// switch.
//
// This class implements the receiving half of the Fig. 3 message-delivery
// algorithm, the FIR (forwarding information request) protocol of §4.3, the
// alias-based remote creation of §5, group creation/broadcast relays,
// migration, and the receiver-initiated random-polling load balancer.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "am/packet.hpp"
#include "runtime/message.hpp"

namespace hal {

class Kernel;
struct DrainStats;

class NodeManager {
 public:
  explicit NodeManager(Kernel& kernel);

  // --- Packet handlers (dispatched from Kernel::handle) ---------------------
  void on_actor_message(const am::Packet& p);
  void on_cache_fill(const am::Packet& p);
  void on_fir(const am::Packet& p);
  void on_fir_response(const am::Packet& p);
  void on_create_request(const am::Packet& p);
  void on_create_ack(const am::Packet& p);
  void on_reply(const am::Packet& p);
  void on_group_create(const am::Packet& p);
  void on_group_broadcast(const am::Packet& p);
  void on_group_member_send(const am::Packet& p);
  void on_steal_request(const am::Packet& p);
  void on_steal_deny(const am::Packet& p);
  void on_migrate_ack(const am::Packet& p);

  /// Completed bulk transfers (large messages, migrations, large replies).
  void bulk_delivered(NodeId src, std::uint64_t tag,
                      const std::array<std::uint64_t, 2>& meta, Bytes data);

  // --- Send-side helpers ------------------------------------------------------
  /// Ship a message to the best-guess node recorded in descriptor
  /// `desc_slot` (Fig. 3 sender side, remote branch). Large bodies divert
  /// through the bulk protocol.
  void ship(Message m, SlotId desc_slot);

  /// Receiving-node delivery core (Fig. 3): local delivery, park-and-FIR for
  /// departed actors, or park awaiting a racing registration. `src` is the
  /// sending node (kInvalidNode when re-entered internally) and
  /// `had_hint` records whether the sender supplied a cached descriptor
  /// address (controls the cache-fill response).
  void local_or_forward(Message m, NodeId src, bool had_hint);

  // --- Registration rendezvous -----------------------------------------------
  /// An actor (created or migrated in) now answers to `addr`; flush parked
  /// messages and FIRs that raced ahead of the registration.
  void registered(const MailAddress& addr);
  /// A group now exists locally; flush broadcasts/member-sends that raced
  /// ahead of the group-create relay.
  void group_registered(GroupId gid);

  // --- Group operations --------------------------------------------------------
  void group_create_local(GroupId gid, BehaviorId behavior,
                          std::uint32_t count, NodeId root);
  /// Relay a group packet to this node's children in the MST rooted at
  /// `root`, preserving all words/payload.
  void relay_mst(const am::Packet& p, NodeId root);
  /// Deliver a broadcast to this node's members (a dispatcher quantum), or
  /// park it if the group-create relay hasn't arrived yet.
  void broadcast_deliver_local(GroupId gid, Message m);
  /// Resolve a member-indexed send on the member's birth node and re-enter
  /// the generic send path (the member may have migrated since).
  void member_deliver_local(GroupId gid, std::uint32_t index, Message m);

  // --- Load balancing (receiver-initiated random polling, Table 4) -----------
  void maybe_poll();

  /// When this node wants its on_idle re-run to retry a backed-off poll:
  /// the deadline of the current deny backoff, or 0 when no wake is needed
  /// (no balancing, a poll already outstanding, no backoff armed, or no
  /// work left to steal). Surfaces through Kernel::service_deadline so the
  /// machines can park until then instead of being repolled continuously.
  SimTime poll_resume_at() const;

  /// Migration landed here (also the steal-success path). `departed_at` is
  /// the source node's clock when it started packing (bulk meta[0]); 0 means
  /// unknown and skips the end-to-end migration probe.
  void migration_arrived(NodeId src, SimTime departed_at, Bytes data);

  // --- Introspection (tests) ---------------------------------------------------
  std::size_t parked_messages() const;
  std::size_t awaiting_registration() const;
  std::size_t awaiting_group() const;

  /// Shutdown accounting (see Kernel::drain_in_flight): count and retire
  /// every message still held in the parked / awaiting-registration /
  /// awaiting-group queues, releasing payload buffers into the kernel's
  /// pool and returning the work token each entry holds.
  void drain_in_flight(DrainStats& out);

  /// Read-only walk over payloads held in the parked / awaiting queues
  /// (hal::check leak audit; see Kernel::for_each_in_flight_payload).
  void for_each_in_flight_payload(
      const std::function<void(const Bytes&)>& fn) const;

 private:
  struct AwaitReg {
    std::vector<Message> messages;   // deliveries that raced registration
    std::vector<NodeId> fir_origins; // FIRs that raced registration
  };
  struct PendingGroupOp {
    bool is_broadcast = false;
    std::uint32_t index = 0;  // member-sends only
    Message m;
  };

  struct ParkedMessage {
    Message m;
    NodeId origin;  // the node whose send got parked here (may be invalid)
  };

  void send_fir(const MailAddress& addr, NodeId toward,
                std::uint64_t hops = 0, std::uint64_t epoch = 0);
  void respond_fir(const MailAddress& addr, SlotId desc_slot, NodeId to);
  /// Apply location info "as of migration `epoch`, the actor is at `node`
  /// (descriptor `rdesc`)": update the descriptor unless the info is older
  /// than what we hold (monotone epochs keep forward chains acyclic), flush
  /// parked messages (teaching their origin nodes so they stop detouring
  /// through us), propagate to recorded FIR relays when `propagate`.
  void location_learned(const MailAddress& addr, NodeId node, SlotId rdesc,
                        std::uint32_t epoch, bool clear_fir, bool propagate);
  void park(const MailAddress& addr, Message m, NodeId origin);

  Kernel& k_;

  /// Messages held at this node while an FIR locates their receiver (§4.3).
  std::unordered_map<MailAddress, std::vector<ParkedMessage>, MailAddressHash>
      parked_;
  /// Reverse FIR chain: nodes to which the eventual response is relayed.
  std::unordered_map<MailAddress, std::vector<NodeId>, MailAddressHash>
      fir_relays_;
  /// Deliveries/FIRs that arrived before the actor registered here.
  std::unordered_map<MailAddress, AwaitReg, MailAddressHash> await_reg_;
  /// Group operations that arrived before the group-create relay.
  std::unordered_map<GroupId, std::vector<PendingGroupOp>, GroupIdHash>
      await_group_;

  /// FIR round-trip probe anchors: when this node fired the FIR for `addr`.
  std::unordered_map<MailAddress, SimTime, MailAddressHash> fir_sent_at_;

  bool poll_outstanding_ = false;
  SimTime poll_sent_at_ = 0;  // steal round-trip probe anchor

  /// Deny backoff: each consecutive steal denial doubles the wait before
  /// the next poll (reset by a successful steal). Kumar-style continuous
  /// polling otherwise degenerates into a deny storm when the machine's
  /// work is concentrated on one node (mn_scaling at N=1: every idle node
  /// repolls the moment its deny lands).
  std::uint32_t poll_denies_ = 0;
  SimTime poll_backoff_until_ = 0;

  static constexpr SimTime kPollBackoffBaseNs = 2'000;
  static constexpr std::uint32_t kPollBackoffMaxShift = 10;  // cap ~2 ms
};

}  // namespace hal
