// Actor groups (§2.2, §6.4).
//
// grpnew creates a group of actors with the same behaviour template and
// returns a unique identifier. Members are striped round-robin across nodes
// starting at the creator — but striping only fixes each member's
// *birthplace*: members are ordinary actors with ordinary mail addresses and
// remain fully location-transparent (they may migrate; member-indexed sends
// re-enter the normal name-server path on the birth node). This is the
// contrast the paper draws with Concert's location-dependent aggregates.
#pragma once

#include <unordered_map>
#include <vector>

#include "check/affinity.hpp"
#include "check/capability.hpp"
#include "common/assert.hpp"
#include "runtime/message.hpp"

namespace hal {

struct GroupInfo {
  GroupId id{};
  BehaviorId behavior = kInvalidBehavior;
  std::uint32_t total = 0;   ///< members in the whole group
  NodeId root = kInvalidNode;  ///< creator node (stripe base & MST root)
  /// Local members: (member index, mail address), ascending index.
  std::vector<std::pair<std::uint32_t, MailAddress>> members;
};

class GroupTable {
 public:
  /// Birth node of member `index` under round-robin striping.
  static NodeId member_home(const GroupInfo& g, std::uint32_t index,
                            NodeId nodes) {
    return static_cast<NodeId>((g.root + index) % nodes);
  }
  static NodeId member_home(GroupId gid, NodeId root, std::uint32_t index,
                            NodeId nodes) {
    (void)gid;
    return static_cast<NodeId>((root + index) % nodes);
  }

  /// Names the owning node (called once from the owning kernel's ctor).
  void bind(NodeId owner) noexcept { affinity_.bind(owner, "GroupTable"); }

  void insert(GroupInfo info) {
    affinity_.assert_here();
    HAL_ASSERT(!table_.contains(info.id));
    table_.emplace(info.id, std::move(info));
  }

  GroupInfo* find(GroupId id) {
    affinity_.assert_here();
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
  }

  const GroupInfo* find(GroupId id) const {
    affinity_.assert_here();
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
  }

  /// Member address by index; asserts the member was born on this node.
  const MailAddress& member_address(GroupId id, std::uint32_t index) const {
    const GroupInfo* g = find(id);
    HAL_ASSERT(g != nullptr);
    for (const auto& [idx, addr] : g->members) {
      if (idx == index) return addr;
    }
    HAL_PANIC("group member not born on this node");
  }

  // Quiescent-time introspection (report, tests): opted out of the
  // capability analysis rather than asserted.
  std::size_t size() const noexcept HAL_NO_THREAD_SAFETY_ANALYSIS {
    return table_.size();
  }

 private:
  check::NodeAffinityGuard affinity_;
  std::unordered_map<GroupId, GroupInfo, GroupIdHash> table_
      HAL_GUARDED_BY(affinity_);
};

}  // namespace hal
