// hal::check — debug invariant checker core (level 2).
//
// HAL_CHECK gates every runtime probe in src/check/. When off (the default,
// and all release builds) the probe classes are empty, their methods are
// empty inline functions, and the whole layer compiles away — verified by
// the benchmark-parity criterion in CI (table3/table4 and the msgpath
// allocation census must not move). When on (-DHAL_CHECK=ON), violations of
// the runtime's ownership and protocol invariants are reported through a
// process-wide handler that panics by default; tests install a capturing
// handler to prove each checker fires.
#pragma once

#include <cstdint>

#include "common/types.hpp"

#ifndef HAL_CHECK
#define HAL_CHECK 0
#endif

namespace hal::check {

/// What kind of invariant was violated. Attribution beyond the kind rides
/// in Violation's fields (component name, expected/actual node, detail).
enum class ViolationKind : std::uint8_t {
  kNodeAffinity,       ///< per-node state touched from a foreign stream
  kDoubleRetire,       ///< buffer released into a pool that already holds it
  kUseAfterRetire,     ///< poison fill of an idle pooled buffer was overwritten
  kBufferLeak,         ///< buffers still outstanding at shutdown accounting
  kEpochRegression,    ///< locality descriptor updated with an older epoch
  kFirChainOverflow,   ///< FIR forwarding chain longer than the node count
  kCreditUnderflow,    ///< bulk flow-control credit window went negative
  kCounterConservation ///< termination detector handled > sent
};

inline const char* violation_kind_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kNodeAffinity: return "node-affinity";
    case ViolationKind::kDoubleRetire: return "double-retire";
    case ViolationKind::kUseAfterRetire: return "use-after-retire";
    case ViolationKind::kBufferLeak: return "buffer-leak";
    case ViolationKind::kEpochRegression: return "epoch-regression";
    case ViolationKind::kFirChainOverflow: return "fir-chain-overflow";
    case ViolationKind::kCreditUnderflow: return "credit-underflow";
    case ViolationKind::kCounterConservation: return "counter-conservation";
  }
  return "unknown";
}

/// One reported invariant violation, with node/component attribution.
struct Violation {
  ViolationKind kind = ViolationKind::kNodeAffinity;
  const char* component = "";          ///< e.g. "BufferPool", "NameTable"
  NodeId owner = kInvalidNode;         ///< node that owns the violated state
  NodeId actor_node = kInvalidNode;    ///< node whose stream performed the act
  std::uint64_t detail0 = 0;           ///< kind-specific (e.g. held epoch)
  std::uint64_t detail1 = 0;           ///< kind-specific (e.g. update epoch)
};

#if HAL_CHECK

/// Handler invoked on every violation. The default aborts via hal::panic so
/// a violated invariant can never scroll past unnoticed; tests install a
/// recording handler and restore the default afterwards.
using ViolationHandler = void (*)(const Violation&);

/// Install `h` (nullptr restores the default panicking handler). Returns the
/// previous handler so scoped installs can nest.
ViolationHandler set_violation_handler(ViolationHandler h) noexcept;

/// Report a violation through the installed handler.
void fail(const Violation& v);

#else  // !HAL_CHECK — the entire reporting layer compiles away.

using ViolationHandler = void (*)(const Violation&);
inline ViolationHandler set_violation_handler(ViolationHandler) noexcept {
  return nullptr;
}
inline void fail(const Violation&) {}

#endif  // HAL_CHECK

}  // namespace hal::check
