#include "check/check.hpp"

#if HAL_CHECK

#include <atomic>
#include <cstdio>

#include "common/assert.hpp"

namespace hal::check {

namespace {

void default_handler(const Violation& v) {
  std::fprintf(stderr,
               "hal::check: %s violation in %s (owner node %u, acting node "
               "%u, detail %llu/%llu)\n",
               violation_kind_name(v.kind), v.component, v.owner, v.actor_node,
               static_cast<unsigned long long>(v.detail0),
               static_cast<unsigned long long>(v.detail1));
  HAL_PANIC("hal::check invariant violation");
}

// Atomic so a ThreadMachine node thread hitting a violation while the
// bootstrap thread swaps handlers (tests) is a race on the pointer only,
// not undefined behaviour.
std::atomic<ViolationHandler> g_handler{&default_handler};

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler h) noexcept {
  return g_handler.exchange(h != nullptr ? h : &default_handler);
}

void fail(const Violation& v) { g_handler.load()(v); }

}  // namespace hal::check

#endif  // HAL_CHECK
