// Node-affinity tracking and the NodeAffinityGuard capability.
//
// Level-2 counterpart of the capability annotations: the executors publish
// "node N's stream is running on this OS thread right now" into a
// thread-local (SimMachine around each handler/step/idle dispatch,
// ThreadMachine for the whole node loop, Runtime around bootstrap calls),
// and every guarded per-node structure asserts on entry that the current
// stream matches its owner. Code running outside any node stream (the
// bootstrap thread before run(), Runtime::report() after quiescence, unit
// tests poking kernels directly) reads kInvalidNode and passes: only a
// *wrong* node context is a violation — exactly the cross-node touch that
// breaks the single-writer discipline.
//
// All of it compiles to nothing when HAL_CHECK is off; the capability
// attribute (and the empty assert_here) still informs clang's static
// analysis in every build.
#pragma once

#include "check/capability.hpp"
#include "check/check.hpp"
#include "common/types.hpp"

namespace hal::check {

#if HAL_CHECK

namespace detail {
/// The node whose execution stream the current OS thread is running, or
/// kInvalidNode outside any stream. One variable per thread: SimMachine
/// interleaves all nodes on one thread (set per dispatch); ThreadMachine
/// pins one node per thread (set once per loop).
inline thread_local NodeId t_current_node = kInvalidNode;
}  // namespace detail

inline NodeId current_node() noexcept { return detail::t_current_node; }

/// RAII: marks the current thread as running `node`'s execution stream.
/// Restores the previous value so bootstrap wrappers can nest inside an
/// already-running stream (e.g. tests injecting from a method body).
class ScopedExecutionNode {
 public:
  explicit ScopedExecutionNode(NodeId node) noexcept
      : prev_(detail::t_current_node) {
    detail::t_current_node = node;
  }
  ~ScopedExecutionNode() { detail::t_current_node = prev_; }
  ScopedExecutionNode(const ScopedExecutionNode&) = delete;
  ScopedExecutionNode& operator=(const ScopedExecutionNode&) = delete;

 private:
  NodeId prev_;
};

/// The capability object per-node structures embed. `bind()` names the
/// owner (called once from the owning kernel's constructor); assert_here()
/// is the per-entry runtime check and, for clang, the static capability
/// assertion. Unbound guards (structures used standalone in unit tests)
/// check nothing.
class HAL_CAPABILITY("node") NodeAffinityGuard {
 public:
  void bind(NodeId owner, const char* component) noexcept {
    owner_ = owner;
    component_ = component;
  }

  NodeId owner() const noexcept { return owner_; }

  void assert_here() const HAL_ASSERT_CAPABILITY(this) {
    if (owner_ == kInvalidNode) return;  // unbound: standalone structure
    const NodeId here = current_node();
    if (here == kInvalidNode || here == owner_) return;
    fail(Violation{ViolationKind::kNodeAffinity, component_, owner_, here, 0,
                   0});
  }

 private:
  NodeId owner_ = kInvalidNode;
  const char* component_ = "";
};

#else  // !HAL_CHECK — empty shells; clang still sees the capability type.

inline NodeId current_node() noexcept { return kInvalidNode; }

class ScopedExecutionNode {
 public:
  explicit ScopedExecutionNode(NodeId) noexcept {}
  ScopedExecutionNode(const ScopedExecutionNode&) = delete;
  ScopedExecutionNode& operator=(const ScopedExecutionNode&) = delete;
};

class HAL_CAPABILITY("node") NodeAffinityGuard {
 public:
  void bind(NodeId, const char*) noexcept {}
  NodeId owner() const noexcept { return kInvalidNode; }
  void assert_here() const HAL_ASSERT_CAPABILITY(this) {}
};

#endif  // HAL_CHECK

}  // namespace hal::check
