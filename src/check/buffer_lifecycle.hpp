// Buffer lifecycle tracking (hal::check level 2).
//
// Pooled payload buffers follow a strict acquire→ship→handle→retire
// lifecycle (buffer_pool.hpp): the sender's pool acquires, the bytes travel
// inside the packet, and the *receiver's* pool retires. Two trackers watch
// it:
//
//  * BufferLifecycle — per pool, single-writer like the pool itself. Detects
//    double-retire (an allocation already idle in the free list is retired
//    again) and use-after-retire (idle buffers are filled with a poison
//    pattern on retire and verified intact on reuse, catching writes through
//    dangling pointers/spans into recycled memory).
//
//  * BufferLedger — one per Runtime, shared by all node pools (cross-node
//    recycling means acquire and retire happen in different pools), so it is
//    the one mutex-protected structure in the layer. It tracks the live set
//    by allocation identity (data() pointer — stable for the buffer's whole
//    pooled life) and classifies every exit: retired back to a pool, escaped
//    to user code (payload moved out by a method), or adopted (a user-made
//    buffer retired into a pool). What remains at accounting time minus the
//    buffers still reachable in runtime structures is a leak.
//
// Everything here compiles to empty classes and no-op inline functions when
// HAL_CHECK is off.
#pragma once

#include <cstdint>

#include "check/affinity.hpp"
#include "check/check.hpp"
#include "common/bytes.hpp"

#if HAL_CHECK
#include <cstring>
#include <mutex>
#include <unordered_set>
#endif

namespace hal::check {

/// Poison byte written over retired buffers while they sit idle in a free
/// list. 0xD5 is unlikely as real data and easy to spot in a debugger.
inline constexpr std::byte kPoisonByte{0xD5};

#if HAL_CHECK

class BufferLifecycle {
 public:
  /// `b` is about to be stored in a free list. Reports kDoubleRetire when
  /// the same allocation is already idle, then poison-fills the buffer.
  void note_idle(Bytes& b, const NodeAffinityGuard& owner) {
    if (!idle_.insert(b.data()).second) {
      ++double_retires_;
      fail(Violation{ViolationKind::kDoubleRetire, "BufferPool",
                     owner.owner(), current_node(),
                     reinterpret_cast<std::uintptr_t>(b.data()), 0});
      return;  // already poisoned + tracked
    }
    b.resize(b.capacity());
    std::memset(b.data(), static_cast<int>(kPoisonByte), b.size());
  }

  /// `b` is being handed back out of a free list. Verifies the poison fill
  /// survived its idle period and reports kUseAfterRetire (with the offset
  /// of the first corrupted byte) if anything wrote through a stale pointer.
  void note_reuse(Bytes& b, const NodeAffinityGuard& owner) {
    idle_.erase(b.data());
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i] != kPoisonByte) {
        ++poison_hits_;
        fail(Violation{ViolationKind::kUseAfterRetire, "BufferPool",
                       owner.owner(), current_node(), i,
                       static_cast<std::uint64_t>(b[i])});
        break;
      }
    }
  }

  std::uint64_t double_retires() const noexcept { return double_retires_; }
  std::uint64_t poison_hits() const noexcept { return poison_hits_; }

 private:
  std::unordered_set<const void*> idle_;
  std::uint64_t double_retires_ = 0;
  std::uint64_t poison_hits_ = 0;
};

class BufferLedger {
 public:
  void note_acquire(const void* p) {
    // HAL_LINT_SUPPRESS(hal-handler-purity): HAL_CHECK-only conservation
    // audit; the ledger is cross-node shared by design and compiles out of
    // release builds, so the uncontended lock never sits on a hot path.
    std::lock_guard lock(mu_);
    ++acquired_;
    live_.insert(p);
  }

  /// A buffer was handed back to some pool. Unknown allocations are user
  /// buffers adopted into the recycling loop, not errors.
  void note_retire(const void* p) {
    // HAL_LINT_SUPPRESS(hal-handler-purity): HAL_CHECK-only, see note_acquire.
    std::lock_guard lock(mu_);
    if (live_.erase(p) != 0) {
      ++retired_;
    } else {
      ++adopted_;
    }
  }

  /// A pooled payload was moved out to user code (Codec<Bytes>::decode);
  /// ownership legitimately leaves the recycling loop.
  void note_escape(const void* p) {
    // HAL_LINT_SUPPRESS(hal-handler-purity): HAL_CHECK-only, see note_acquire.
    std::lock_guard lock(mu_);
    if (live_.erase(p) != 0) ++escaped_;
  }

  bool contains(const void* p) const {
    // HAL_LINT_SUPPRESS(hal-handler-purity): HAL_CHECK-only, see note_acquire.
    std::lock_guard lock(mu_);
    return live_.contains(p);
  }

  std::uint64_t acquired() const { std::lock_guard l(mu_); return acquired_; }
  std::uint64_t retired() const { std::lock_guard l(mu_); return retired_; }
  std::uint64_t adopted() const { std::lock_guard l(mu_); return adopted_; }
  std::uint64_t escaped() const { std::lock_guard l(mu_); return escaped_; }
  /// Buffers acquired from some pool and not yet retired or escaped.
  std::uint64_t outstanding() const {
    std::lock_guard lock(mu_);
    return live_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_set<const void*> live_;
  std::uint64_t acquired_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t adopted_ = 0;
  std::uint64_t escaped_ = 0;
};

#else  // !HAL_CHECK

class BufferLifecycle {
 public:
  void note_idle(Bytes&, const NodeAffinityGuard&) {}
  void note_reuse(Bytes&, const NodeAffinityGuard&) {}
  std::uint64_t double_retires() const noexcept { return 0; }
  std::uint64_t poison_hits() const noexcept { return 0; }
};

class BufferLedger {
 public:
  void note_acquire(const void*) {}
  void note_retire(const void*) {}
  void note_escape(const void*) {}
  bool contains(const void*) const { return false; }
  std::uint64_t acquired() const { return 0; }
  std::uint64_t retired() const { return 0; }
  std::uint64_t adopted() const { return 0; }
  std::uint64_t escaped() const { return 0; }
  std::uint64_t outstanding() const { return 0; }
};

#endif  // HAL_CHECK

}  // namespace hal::check
