// Compile-time node-capability annotations (hal::check level 1).
//
// The runtime's ownership discipline — per-node state is touched only from
// its owning node's execution stream (DESIGN.md §5) — is invisible to the
// compiler: there are no mutexes, so nothing for a race detector to key on,
// and under the SimMachine everything interleaves on one OS thread anyway.
// Clang's thread-safety analysis can still see it, because the analysis is
// really a *capability* analysis: we declare each node's execution stream a
// capability (NodeAffinityGuard below carries the attribute), mark the
// single-writer structures GUARDED_BY their owner's guard, and assert the
// capability at every entry point. A cross-node touch that skips the assert
// becomes a clang -Wthread-safety compile error; the asserts themselves
// compile to nothing unless HAL_CHECK is on.
//
// The macros map 1:1 onto clang's attributes and expand to nothing under
// other compilers (GCC would warn on the unknown attributes). This is the
// standard "assert-capability" idiom (abseil's AssertHeld): annotating with
// HAL_ASSERT_CAPABILITY instead of REQUIRES keeps the annotations local to
// each class — callers need no annotation cascade.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HAL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HAL_THREAD_ANNOTATION
#define HAL_THREAD_ANNOTATION(x)
#endif

/// Class attribute: instances represent a capability (here: the owning
/// node's execution stream) in clang's thread-safety analysis.
#define HAL_CAPABILITY(name) HAL_THREAD_ANNOTATION(capability(name))

/// Data member attribute: reads/writes require the capability to be held.
#define HAL_GUARDED_BY(x) HAL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member attribute: the pointee is guarded (the pointer is not).
#define HAL_PT_GUARDED_BY(x) HAL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: caller must hold the capability.
#define HAL_REQUIRES(...) \
  HAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: the function acquires / releases the capability.
#define HAL_ACQUIRE(...) HAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HAL_RELEASE(...) HAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: after this call the analysis treats the capability as
/// held (the runtime check inside is the dynamic counterpart).
#define HAL_ASSERT_CAPABILITY(x) HAL_THREAD_ANNOTATION(assert_capability(x))

/// Function attribute: opt a function out of the analysis. Used for
/// quiescent-time introspection (Runtime::report and tests read per-node
/// state from the bootstrap thread after the machine has stopped).
#define HAL_NO_THREAD_SAFETY_ANALYSIS \
  HAL_THREAD_ANNOTATION(no_thread_safety_analysis)
