// Protocol-state auditors (hal::check level 2).
//
// Three distributed-protocol invariants from the paper's runtime design,
// each checkable locally at a single node:
//
//  * Locality-descriptor epochs are monotone (§4 migration): a descriptor is
//    only ever overwritten with an equal-or-newer epoch. Monotone epochs are
//    what make FIR chases acyclic, so a regression is a protocol bug even if
//    nothing visibly breaks. Enforced by NameTable::update via
//    audit_epoch_monotone.
//
//  * FIR forwarding chains stay acyclic (§4.3). A chase may legitimately
//    revisit a node — the actor can migrate back while being chased — but
//    every revisit requires an intervening migration (an epoch advance), so
//    the hop count never exceeds node count + the highest descriptor epoch
//    seen along the chain. NodeManager threads the hop counter and the
//    max-epoch watermark through the spare packet words and audits the
//    bound at each relay: a chain whose length grows while its epoch
//    watermark stalls is a forwarding cycle.
//
//  * The bulk flow-control credit window never goes negative (§5: "one
//    active inbound transfer" — a window of exactly one credit). BulkChannel
//    embeds a CreditWindowAuditor; grants spend the credit, completions
//    refund it.
//
// The termination sent/handled conservation check lives directly in
// common/termination.hpp (it needs the detector's atomics) and reports
// through the same fail() channel.
#pragma once

#include <cstdint>

#include "check/affinity.hpp"
#include "check/check.hpp"
#include "common/types.hpp"

namespace hal::check {

/// NameTable::update is about to overwrite a descriptor holding epoch
/// `held` with one carrying epoch `next`. Regression = violation.
inline void audit_epoch_monotone([[maybe_unused]] NodeId owner,
                                 [[maybe_unused]] std::uint32_t held,
                                 [[maybe_unused]] std::uint32_t next) {
#if HAL_CHECK
  if (next < held) {
    fail(Violation{ViolationKind::kEpochRegression, "NameTable", owner,
                   current_node(), held, next});
  }
#endif
}

/// A FIR is about to be relayed with `hops` total relays behind it while
/// `max_epoch` is the highest descriptor epoch any node on the chain held.
/// A chain can visit at most node_count distinct nodes plus one revisit per
/// migration the actor has performed, so a longer chain proves a forwarding
/// cycle: it grew without the actor moving.
inline void audit_fir_chain([[maybe_unused]] NodeId owner,
                            [[maybe_unused]] std::uint64_t hops,
                            [[maybe_unused]] std::uint64_t node_count,
                            [[maybe_unused]] std::uint64_t max_epoch) {
#if HAL_CHECK
  if (hops > node_count + max_epoch) {
    fail(Violation{ViolationKind::kFirChainOverflow, "NodeManager", owner,
                   current_node(), hops, node_count + max_epoch});
  }
#endif
}

/// Audits the bulk channel's "one active inbound transfer" window: grants
/// spend the single credit, completions refund it. A negative balance means
/// a grant was issued while another transfer was still assembling — exactly
/// the overlap the flow-control stall queue exists to prevent. Inert when
/// flow control is disabled (the ablation legitimately overlaps transfers)
/// and in HAL_CHECK=0 builds.
class CreditWindowAuditor {
 public:
  void configure([[maybe_unused]] NodeId owner,
                 [[maybe_unused]] bool flow_control) noexcept {
#if HAL_CHECK
    owner_ = owner;
    armed_ = flow_control;
    credits_ = 1;
#endif
  }

  void note_grant() noexcept {
#if HAL_CHECK
    if (!armed_) return;
    --credits_;
    if (credits_ < 0) {
      fail(Violation{ViolationKind::kCreditUnderflow, "BulkChannel", owner_,
                     current_node(), static_cast<std::uint64_t>(-credits_),
                     0});
    }
#endif
  }

  void note_complete() noexcept {
#if HAL_CHECK
    if (!armed_) return;
    ++credits_;
#endif
  }

#if HAL_CHECK
 private:
  NodeId owner_ = kInvalidNode;
  std::int64_t credits_ = 1;
  bool armed_ = false;
#endif
};

}  // namespace hal::check
