#include "baseline/worksteal.hpp"

#include <utility>

namespace hal::baseline {

thread_local int WorkStealPool::tl_worker_id_ = -1;

WorkStealPool::WorkStealPool(unsigned workers) {
  HAL_ASSERT(workers >= 1);
  deques_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<WsDeque<TaskNode>>());
  }
}

WorkStealPool::~WorkStealPool() { HAL_ASSERT(outstanding_.load() == 0); }

void WorkStealPool::fork(Task task) {
  auto* node = new TaskNode{std::move(task)};
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const int id = tl_worker_id_;
  if (id >= 0) {
    deques_[static_cast<std::size_t>(id)]->push_bottom(node);
    return;
  }
  while (inject_lock_.test_and_set(std::memory_order_acquire)) {
  }
  inject_queue_.push_back(node);
  inject_count_.fetch_add(1, std::memory_order_release);
  inject_lock_.clear(std::memory_order_release);
}

WorkStealPool::TaskNode* WorkStealPool::try_acquire(unsigned id,
                                                    Xoshiro256& rng) {
  if (TaskNode* n = deques_[id]->pop_bottom()) return n;
  // Injection queue (rare; bootstrap only). The lock-free gate reads the
  // atomic count, not the vector itself — peeking at inject_queue_.empty()
  // outside the spinlock would race with fork()'s push_back.
  if (inject_count_.load(std::memory_order_acquire) != 0) {
    TaskNode* n = nullptr;
    while (inject_lock_.test_and_set(std::memory_order_acquire)) {
    }
    if (!inject_queue_.empty()) {
      n = inject_queue_.back();
      inject_queue_.pop_back();
      inject_count_.fetch_sub(1, std::memory_order_release);
    }
    inject_lock_.clear(std::memory_order_release);
    if (n != nullptr) return n;
  }
  // Random stealing.
  const std::size_t w = deques_.size();
  for (std::size_t attempt = 0; attempt < 2 * w; ++attempt) {
    const auto victim = static_cast<std::size_t>(rng.below(w));
    if (victim == id) continue;
    if (TaskNode* n = deques_[victim]->steal_top()) return n;
  }
  return nullptr;
}

void WorkStealPool::worker_loop(unsigned id) {
  tl_worker_id_ = static_cast<int>(id);
  Xoshiro256 rng(0xabcdef01ULL + id);
  while (!stopping_.load(std::memory_order_acquire)) {
    TaskNode* n = try_acquire(id, rng);
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    n->fn();
    delete n;
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      stopping_.store(true, std::memory_order_release);
    }
  }
  tl_worker_id_ = -1;
}

void WorkStealPool::run(Task root) {
  HAL_ASSERT(tl_worker_id_ == -1);  // not from inside the pool
  stopping_.store(false, std::memory_order_release);
  fork(std::move(root));
  threads_.reserve(deques_.size());
  for (unsigned i = 0; i < deques_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  HAL_ASSERT(outstanding_.load() == 0);
}

}  // namespace hal::baseline
