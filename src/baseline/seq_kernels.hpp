// Sequential reference kernels.
//
// These are the "optimized C" comparators of the paper's evaluation
// (Table 4's sequential Fibonacci; the local block kernels of the Cholesky
// and matmul benchmarks) and the ground truth the integration tests check
// the actor implementations against.
#pragma once

#include <cstdint>
#include <vector>

namespace hal::baseline {

/// Plain recursive Fibonacci (the paper's benchmark is the naive exponential
/// recursion — that is the point: 11.4M activations for fib(33)).
std::uint64_t fib_seq(unsigned n);

/// Number of recursive calls fib_seq(n) performs (= actors the actor version
/// conceptually creates): calls(n) = 2*fib(n+1) - 1.
std::uint64_t fib_call_count(unsigned n);

/// In-place dense Cholesky factorization (column-oriented, lower
/// triangular): A = L·Lᵀ. `a` is n×n row-major, symmetric positive
/// definite; on return the lower triangle holds L.
void cholesky_seq(std::vector<double>& a, std::size_t n);

/// Floating-point operations in a dense n×n Cholesky (n³/3 + lower order).
std::uint64_t cholesky_flops(std::size_t n);

/// C ← C + A·B for row-major dense blocks (n×n). The micro-kernel the
/// systolic algorithm runs per step (the paper borrowed von Eicken's
/// assembly version; we use a register-blocked C++ loop).
void matmul_block(const double* a, const double* b, double* c, std::size_t n);

/// Reference n×n dense multiply: C = A·B (row-major).
std::vector<double> matmul_seq(const std::vector<double>& a,
                               const std::vector<double>& b, std::size_t n);

/// Generate a random symmetric positive-definite matrix (for Cholesky).
std::vector<double> make_spd(std::size_t n, std::uint64_t seed);

/// Generate a random dense matrix with entries in [-1, 1).
std::vector<double> make_dense(std::size_t n, std::uint64_t seed);

/// Max |x - y| over two equal-length vectors.
double max_abs_diff(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace hal::baseline
