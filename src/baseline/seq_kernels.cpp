#include "baseline/seq_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace hal::baseline {

std::uint64_t fib_seq(unsigned n) {
  if (n < 2) return n;
  return fib_seq(n - 1) + fib_seq(n - 2);
}

std::uint64_t fib_call_count(unsigned n) {
  // calls(n) = 1 + calls(n-1) + calls(n-2), calls(0) = calls(1) = 1
  // ⇒ calls(n) = 2*fib(n+1) - 1.
  return 2 * fib_seq(n + 1) - 1;
}

void cholesky_seq(std::vector<double>& a, std::size_t n) {
  HAL_ASSERT(a.size() == n * n);
  for (std::size_t k = 0; k < n; ++k) {
    double d = a[k * n + k];
    HAL_ASSERT(d > 0.0);  // SPD input required
    d = std::sqrt(d);
    a[k * n + k] = d;
    for (std::size_t i = k + 1; i < n; ++i) a[i * n + k] /= d;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double ajk = a[j * n + k];
      for (std::size_t i = j; i < n; ++i) {
        a[i * n + j] -= a[i * n + k] * ajk;
      }
    }
    // Zero the strict upper triangle of column k's row for a clean L.
    for (std::size_t j = k + 1; j < n; ++j) a[k * n + j] = 0.0;
  }
}

std::uint64_t cholesky_flops(std::size_t n) {
  const auto nn = static_cast<std::uint64_t>(n);
  return nn * nn * nn / 3 + 2 * nn * nn;
}

void matmul_block(const double* a, const double* b, double* c,
                  std::size_t n) {
  // i-k-j loop order with a hoisted A element: streams B and C rows, which
  // is what a tuned 1995 assembly kernel achieved on the Sparc.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      const double* brow = b + k * n;
      double* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

std::vector<double> matmul_seq(const std::vector<double>& a,
                               const std::vector<double>& b, std::size_t n) {
  HAL_ASSERT(a.size() == n * n && b.size() == n * n);
  std::vector<double> c(n * n, 0.0);
  matmul_block(a.data(), b.data(), c.data(), n);
  return c;
}

std::vector<double> make_spd(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> m(n * n);
  for (auto& v : m) v = rng.uniform() - 0.5;
  // A = M·Mᵀ + n·I is symmetric positive definite.
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += m[i * n + k] * m[j * n + k];
      a[i * n + j] = s;
      a[j * n + i] = s;
    }
    a[i * n + i] += static_cast<double>(n);
  }
  return a;
}

std::vector<double> make_dense(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> a(n * n);
  for (auto& v : a) v = 2.0 * rng.uniform() - 1.0;
  return a;
}

double max_abs_diff(const std::vector<double>& x,
                    const std::vector<double>& y) {
  HAL_ASSERT(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(x[i] - y[i]));
  }
  return m;
}

}  // namespace hal::baseline
