// Cilk-style randomized work-stealing pool (the Table 4 comparator).
//
// The paper quotes Cilk 1.x timings for Fibonacci on the same Sparc; this is
// the equivalent baseline: per-worker Chase–Lev deques, owner pushes/pops at
// the bottom, thieves steal from the top of random victims. Tasks are
// heap-allocated closures; join structure is the caller's business
// (bench/table4 uses continuation-passing with atomic counters, the way
// Cilk's compiled code does).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/inline_function.hpp"
#include "common/rng.hpp"

namespace hal::baseline {

/// Chase–Lev work-stealing deque of raw pointers.
/// Owner thread: push_bottom / pop_bottom. Other threads: steal_top.
template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity_pow2 = 1u << 13)
      : buffer_(capacity_pow2), mask_(capacity_pow2 - 1) {
    HAL_ASSERT((capacity_pow2 & mask_) == 0);  // power of two
  }

  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    HAL_ASSERT(b - t < static_cast<std::int64_t>(buffer_.size()));  // full
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  T* pop_bottom() {
    // The classic formulation puts a seq_cst fence between the bottom store
    // and the top load; seq_cst accesses on both are equivalent here (the
    // store/load pair lands in the single total order S, so the symmetric
    // store-buffering race with steal_top is excluded) and, unlike fences,
    // are modeled by ThreadSanitizer.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t != b) return item;  // more than one element: safe
    // Single element: race with thieves via CAS on top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      item = nullptr;  // lost to a thief
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return item;
  }

  T* steal_top() {
    // seq_cst accesses in place of the classic load/fence/load — see
    // pop_bottom for why.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;  // empty
    T* item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::atomic<T*>> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

/// Fork-only task pool: tasks may fork more tasks; the pool runs until all
/// tasks (tracked by an outstanding counter) have executed. Joins are
/// expressed in task code via continuation counters.
class WorkStealPool {
 public:
  /// Same inline-callable type as the runtime's own code slots: one task is
  /// one heap node (Cilk-style), not one node plus a std::function control
  /// block, and capture blocks are bounded at compile time.
  using Task = InlineFunction<void()>;

  explicit WorkStealPool(unsigned workers);
  ~WorkStealPool();

  WorkStealPool(const WorkStealPool&) = delete;
  WorkStealPool& operator=(const WorkStealPool&) = delete;

  /// Fork a task. Callable from worker threads (pushes the local deque) and
  /// from outside (pushes worker 0's injection queue).
  void fork(Task task);

  /// Run `root` and return when the pool is quiescent (every forked task has
  /// finished). Must be called from outside the pool.
  void run(Task root);

  unsigned workers() const noexcept {
    return static_cast<unsigned>(deques_.size());
  }

 private:
  struct TaskNode {
    Task fn;
  };

  void worker_loop(unsigned id);
  TaskNode* try_acquire(unsigned id, Xoshiro256& rng);

  std::vector<std::unique_ptr<WsDeque<TaskNode>>> deques_;
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};

  // Injection queue for forks from outside worker threads (guarded by a
  // simple mutex-free single-slot design is insufficient; use a deque with
  // a spinlock — injection is rare).
  std::vector<TaskNode*> inject_queue_;
  std::atomic<std::size_t> inject_count_{0};  // lock-free emptiness gate
  std::atomic_flag inject_lock_ = ATOMIC_FLAG_INIT;

  static thread_local int tl_worker_id_;
  std::vector<std::thread> threads_;
};

}  // namespace hal::baseline
