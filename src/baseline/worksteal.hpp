// Cilk-style randomized work-stealing pool (the Table 4 comparator).
//
// The paper quotes Cilk 1.x timings for Fibonacci on the same Sparc; this is
// the equivalent baseline: per-worker Chase–Lev deques, owner pushes/pops at
// the bottom, thieves steal from the top of random victims. Tasks are
// heap-allocated closures; join structure is the caller's business
// (bench/table4 uses continuation-passing with atomic counters, the way
// Cilk's compiled code does).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "common/ws_deque.hpp"

namespace hal::baseline {

// The Chase–Lev deque itself now lives in common/ws_deque.hpp (it is shared
// with the MnMachine's per-worker run queues); this pool keeps using it
// under its historical name.
using hal::WsDeque;

/// Fork-only task pool: tasks may fork more tasks; the pool runs until all
/// tasks (tracked by an outstanding counter) have executed. Joins are
/// expressed in task code via continuation counters.
class WorkStealPool {
 public:
  /// Same inline-callable type as the runtime's own code slots: one task is
  /// one heap node (Cilk-style), not one node plus a std::function control
  /// block, and capture blocks are bounded at compile time.
  using Task = InlineFunction<void()>;

  explicit WorkStealPool(unsigned workers);
  ~WorkStealPool();

  WorkStealPool(const WorkStealPool&) = delete;
  WorkStealPool& operator=(const WorkStealPool&) = delete;

  /// Fork a task. Callable from worker threads (pushes the local deque) and
  /// from outside (pushes worker 0's injection queue).
  void fork(Task task);

  /// Run `root` and return when the pool is quiescent (every forked task has
  /// finished). Must be called from outside the pool.
  void run(Task root);

  unsigned workers() const noexcept {
    return static_cast<unsigned>(deques_.size());
  }

 private:
  struct TaskNode {
    Task fn;
  };

  void worker_loop(unsigned id);
  TaskNode* try_acquire(unsigned id, Xoshiro256& rng);

  std::vector<std::unique_ptr<WsDeque<TaskNode>>> deques_;
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};

  // Injection queue for forks from outside worker threads (guarded by a
  // simple mutex-free single-slot design is insufficient; use a deque with
  // a spinlock — injection is rare).
  std::vector<TaskNode*> inject_queue_;
  std::atomic<std::size_t> inject_count_{0};  // lock-free emptiness gate
  std::atomic_flag inject_lock_ = ATOMIC_FLAG_INIT;

  static thread_local int tl_worker_id_;
  std::vector<std::thread> threads_;
};

}  // namespace hal::baseline
