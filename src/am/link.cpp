#include "am/link.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace hal::am {
namespace {

/// Metadata-only copy: everything that goes on the wire except the payload,
/// which each transmission clones (or moves) separately. Copying the whole
/// Packet would deep-copy `Bytes` behind the pool ledger's back.
Packet wire_copy(const Packet& m) {
  Packet w;
  w.src = m.src;
  w.dst = m.dst;
  w.handler = m.handler;
  w.words = m.words;
  w.stamp = m.stamp;
  w.link_seq = m.link_seq;
  w.link_ack = m.link_ack;
  // Frames are sequenced and retransmitted whole; the flag must survive the
  // clone or a redelivered frame would be handled as a single packet.
  w.frame = m.frame;
  w.urgent = m.urgent;
  return w;
}

}  // namespace

void LinkEndpoint::configure(NodeId self, const FaultConfig& cfg,
                             SimTime rto_ns, BufferPool* pool) {
  self_ = self;
  cfg_ = cfg;
  rto_ = rto_ns;
  pool_ = pool;
  // Independent per-source stream: draws on node A never perturb node B's,
  // so ThreadMachine needs no locking and SimMachine's schedule alone
  // determines the draw sequence.
  rng_ = Xoshiro256(mix64(cfg.seed) ^ mix64(0x11bb5eedULL + self));
}

Bytes LinkEndpoint::clone_payload(const Bytes& src) {
  if (src.empty()) return {};
  Bytes b = pool().acquire(src.size());
  std::memcpy(b.data(), src.data(), src.size());
  return b;
}

SimTime LinkEndpoint::backoff(std::uint32_t retries) const noexcept {
  const std::uint32_t shift = std::min<std::uint32_t>(retries, 5);
  return rto_ << shift;
}

void LinkEndpoint::send_data(Packet p, SimTime now, LinkSink& sink) {
  HAL_DASSERT(p.src == self_ && p.dst != self_);
  OutChannel& ch = out_[p.dst];
  p.link_seq = ch.next_seq;
  ch.next_seq = seq_next(ch.next_seq);
  p.link_ack = false;
  p.retransmitted = false;

  Bytes payload = std::move(p.payload);
  Master m;
  m.packet = wire_copy(p);
  m.packet.payload = clone_payload(payload);
  m.deadline = now + rto_;
  ch.pending.emplace(p.link_seq, std::move(m));
  ++unacked_;

  transmit(p, std::move(payload), /*is_data=*/true, &ch, sink);
}

void LinkEndpoint::transmit(const Packet& proto, Bytes payload, bool is_data,
                            OutChannel* ch, LinkSink& sink) {
  if (is_data) {
    HAL_DASSERT(ch != nullptr);
    ++ch->data_attempts;
    if (ch->data_attempts <= cfg_.drop_first) {
      ++stats_.drops_injected;
      pool().release(std::move(payload));
      return;
    }
  }
  if (cfg_.drop > 0.0 && rng_.uniform() < cfg_.drop) {
    ++stats_.drops_injected;
    pool().release(std::move(payload));
    return;
  }
  int copies = 1;
  if (cfg_.duplicate > 0.0 && rng_.uniform() < cfg_.duplicate) {
    copies = 2;
    ++stats_.duplicates_injected;
  }
  for (int i = 0; i < copies; ++i) {
    Packet w = wire_copy(proto);
    w.retransmitted = proto.retransmitted;
    w.payload = i + 1 < copies ? clone_payload(payload) : std::move(payload);
    SimTime extra = 0;
    if (cfg_.delay > 0.0 && rng_.uniform() < cfg_.delay) {
      extra = cfg_.delay_ns;
      ++stats_.delays_injected;
    }
    sink.link_transmit(std::move(w), extra);
  }
}

void LinkEndpoint::send_ack(NodeId to, std::uint64_t cumulative,
                            LinkSink& sink) {
  if (cumulative == 0) return;  // nothing delivered yet: nothing to ack
  ++stats_.acks_sent;
  Packet a;
  a.src = self_;
  a.dst = to;
  a.link_ack = true;
  a.link_seq = cumulative;
  transmit(a, {}, /*is_data=*/false, nullptr, sink);
}

void LinkEndpoint::on_ack(NodeId from, std::uint64_t cumulative) {
  if (cumulative == 0) return;  // "nothing delivered": nothing to release
  const auto it = out_.find(from);
  if (it == out_.end()) return;  // ack for a channel we never opened: stale
  OutChannel& ch = it->second;
  // Full scan with serial compare: once the space wraps, the acked prefix
  // is not a prefix of the map's absolute key order (seq 1 post-wrap sorts
  // before the still-pending UINT64_MAX). The map stays small — it only
  // holds unacked masters.
  for (auto p = ch.pending.begin(); p != ch.pending.end();) {
    if (seq_before(cumulative, p->first)) {
      ++p;
      continue;
    }
    pool().release(std::move(p->second.packet.payload));
    p = ch.pending.erase(p);
    HAL_DASSERT(unacked_ > 0);
    --unacked_;
  }
}

void LinkEndpoint::receive(Packet p, LinkSink& sink) {
  HAL_DASSERT(p.dst == self_);
  if (p.link_ack) {
    on_ack(p.src, p.link_seq);
    return;
  }
  HAL_DASSERT(p.link_seq != 0);
  const NodeId src = p.src;
  InChannel& ch = in_[src];
  const std::uint64_t s = p.link_seq;

  if (seq_before(s, ch.expect) || ch.buffered.contains(s)) {
    // Duplicate (retransmit that crossed an ack, or an injected copy):
    // suppress before any layer above — the termination detector in
    // particular — can see it, and re-ack so the sender stops resending.
    ++stats_.dupes_suppressed;
    pool().release(std::move(p.payload));
    send_ack(src, ch.last_delivered, sink);
    return;
  }
  if (s != ch.expect) {
    // Early arrival (a predecessor was dropped or delayed): hold it, and
    // re-ack the prefix so far in case our previous ack was lost.
    ch.buffered.emplace(s, std::move(p));
    send_ack(src, ch.last_delivered, sink);
    return;
  }
  // In order: deliver, then flush any buffered successors it unblocks.
  sink.link_deliver(std::move(p));
  ch.last_delivered = ch.expect;
  ch.expect = seq_next(ch.expect);
  for (auto it = ch.buffered.find(ch.expect); it != ch.buffered.end();
       it = ch.buffered.find(ch.expect)) {
    Packet q = std::move(it->second);
    ch.buffered.erase(it);
    sink.link_deliver(std::move(q));
    ch.last_delivered = ch.expect;
    ch.expect = seq_next(ch.expect);
  }
  send_ack(src, ch.last_delivered, sink);
}

SimTime LinkEndpoint::on_timer(SimTime now, LinkSink& sink) {
  for (auto& [dst, ch] : out_) {
    for (auto& [seq, m] : ch.pending) {
      if (m.deadline > now) continue;
      if (m.retries >= cfg_.max_retries) {
        HAL_PANIC(
            "LinkEndpoint: retransmission limit exceeded — channel wedged "
            "(drop rate too high for max_retries, or an ack path is broken)");
      }
      ++m.retries;
      ++stats_.retransmits;
      m.deadline = now + backoff(m.retries);
      Packet w = wire_copy(m.packet);
      // Keep the original send stamp: the redelivery-latency probe measures
      // first-send to final-delivery, which is the latency the actor saw.
      w.retransmitted = true;
      transmit(w, clone_payload(m.packet.payload), /*is_data=*/true, &ch,
               sink);
    }
  }
  return next_deadline();
}

SimTime LinkEndpoint::next_deadline() const noexcept {
  SimTime best = 0;
  for (const auto& [dst, ch] : out_) {
    for (const auto& [seq, m] : ch.pending) {
      if (best == 0 || m.deadline < best) best = m.deadline;
    }
  }
  return best;
}

void LinkEndpoint::drain() {
  for (auto& [dst, ch] : out_) {
    for (auto& [seq, m] : ch.pending) {
      pool().release(std::move(m.packet.payload));
      HAL_DASSERT(unacked_ > 0);
      --unacked_;
    }
    ch.pending.clear();
  }
  for (auto& [src, ch] : in_) {
    for (auto& [seq, q] : ch.buffered) pool().release(std::move(q.payload));
    ch.buffered.clear();
  }
}

void LinkEndpoint::for_each_pending_payload(
    const std::function<void(const Bytes&)>& fn) const {
  for (const auto& [dst, ch] : out_) {
    for (const auto& [seq, m] : ch.pending) fn(m.packet.payload);
  }
  for (const auto& [src, ch] : in_) {
    for (const auto& [seq, q] : ch.buffered) fn(q.payload);
  }
}

}  // namespace hal::am
