// Fault-injection configuration for the active-message wire (ROADMAP item 3).
//
// The paper's runtime rides the CM-5 data network, which delivers every
// packet exactly once and in order; Halcyon's machines inherited that
// assumption wholesale. `FaultConfig` makes the wire adversarial on demand:
// a seeded, per-source-node random stream decides — at transmission time —
// whether each packet is dropped, duplicated, or delayed (delay on a FIFO
// wire is what produces reordering). Under `SimMachine` the draws consume
// the event-loop's deterministic schedule, so a given seed reproduces the
// same fault pattern byte-for-byte; under `ThreadMachine` the same knobs
// give a statistical soak (delay is scrubbed there — real queues already
// reorder across nodes, and a wall-clock sleep would only slow the soak).
//
// Enabling faults also enables the reliable-link layer (`LinkEndpoint`):
// sequence numbers, cumulative acks, retransmission, and duplicate
// suppression. Disabled (the default) the wire is bypassed entirely — no
// sequencing, no clones, no extra branches on the zero-allocation fast
// path beyond one predictable test.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace hal::am {

struct FaultConfig {
  /// Master switch. When false every other knob is ignored and packets
  /// take the historical direct path (exactly-once, in-order).
  bool enabled = false;

  /// Per-transmission probability of silently dropping the packet.
  double drop = 0.0;
  /// Per-transmission probability of delivering the packet twice.
  double duplicate = 0.0;
  /// Per-copy probability of adding `delay_ns` of extra wire latency
  /// (SimMachine only). Delaying one packet past its successors is how
  /// reordering arises on an otherwise-FIFO wire.
  double delay = 0.0;
  /// Extra latency applied when a delay fires.
  SimTime delay_ns = 20'000;

  /// Deterministically drop the first N data transmissions on every
  /// directed channel, before any probabilistic draw. Lets regression
  /// tests target a *specific* loss ("the final quiescence-carrying
  /// message") instead of fishing for a seed.
  std::uint32_t drop_first = 0;

  /// Seed for the injector's random streams. 0 means "derive from the
  /// runtime seed" (RuntimeConfig::seed); each source node then gets an
  /// independent stream so Thread-machine draws need no locking.
  std::uint64_t seed = 0;

  /// Retransmission timeout. 0 picks a machine-appropriate default
  /// (a few round-trips of virtual time under Sim, ~2 ms wall under
  /// Thread). Backoff doubles per retry, capped at 32x.
  SimTime rto_ns = 0;

  /// Retries per packet before the link declares the channel wedged and
  /// panics — a liveness backstop, not a recovery policy.
  std::uint32_t max_retries = 64;

  /// True when any knob can actually perturb a packet.
  [[nodiscard]] bool any_faults() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || drop_first > 0;
  }

  /// All probabilities inside [0, 1].
  [[nodiscard]] bool probabilities_valid() const noexcept {
    const auto ok = [](double p) { return p >= 0.0 && p <= 1.0; };
    return ok(drop) && ok(duplicate) && ok(delay);
  }
};

}  // namespace hal::am
