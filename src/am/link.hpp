// Reliable-link layer: sequence numbers, cumulative acks, retransmission,
// and duplicate suppression over a faulty wire (ROADMAP item 3).
//
// One `LinkEndpoint` per node, owned by the machine and touched only from
// that node's execution stream — no locks, same discipline as every other
// per-node structure. Each directed channel (self -> dst) numbers its data
// packets from 1 and keeps a pool-cloned *master* copy of every unacked
// packet; each (re)transmission ships a fresh clone so the wire can mangle
// its copy freely. The receiving endpoint delivers in sequence order,
// buffers early arrivals, suppresses duplicates (releasing their payloads
// back to the pool), and answers with cumulative acks. Acks themselves ride
// the faulty wire unsequenced: a lost ack is recovered when the retransmit
// arrives, is recognised as a duplicate, and is re-acked.
//
// The guarantee composes to effectively-once, in-order delivery per
// channel: at-least-once from retransmission, at-most-once from the
// sequence-layer dedupe. Layers above (`Kernel::handle` and everything it
// dispatches to — FIR chases, bulk grants, join continuations, the
// termination detector's epoch counts) therefore see the same perfect
// network they were written against.
//
// Buffer-ledger accounting is conservative on every path: masters and wire
// clones come from the owning node's pool (`NodeClient::link_pool`, or a
// private fallback for bare test clients) and every copy is released
// exactly once — at drop time on the sender, at dedupe time on the
// receiver, at ack time for masters, or by `drain()` at teardown.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "am/fault.hpp"
#include "am/packet.hpp"
#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hal::am {

/// Per-endpoint wire counters, folded into the owning node's `StatBlock`
/// by `Runtime::report()`. Injection counters (drops/duplicates/delays)
/// tally what the fault plane did to outbound packets; retransmits,
/// suppressed duplicates, and acks tally the recovery work.
struct LinkStats {
  std::uint64_t drops_injected = 0;
  std::uint64_t duplicates_injected = 0;
  std::uint64_t delays_injected = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dupes_suppressed = 0;
  std::uint64_t acks_sent = 0;
};

/// How an endpoint reaches the wire and the client. Machines implement this
/// privately: `link_transmit` puts one physical copy on the wire (Sim: a
/// delivery event at now + wire latency + extra_delay; Thread: a queue push
/// with the sent-epoch bump), `link_deliver` hands an in-order packet to
/// `NodeClient::handle` on the destination node.
class LinkSink {
 public:
  virtual void link_transmit(Packet p, SimTime extra_delay_ns) = 0;
  virtual void link_deliver(Packet p) = 0;

 protected:
  ~LinkSink() = default;
};

class LinkEndpoint {
 public:
  /// Sequence-space rules: link_seq 0 is reserved (it marks unsequenced
  /// control traffic), so the 64-bit counter wraps UINT64_MAX -> 1, and all
  /// ordering uses serial-number arithmetic (RFC 1982 style): `a` precedes
  /// `b` when the signed distance is negative. Exact as long as a channel's
  /// live window — unacked masters plus buffered early arrivals — spans
  /// less than 2^63 sequence numbers, which retransmission bounds and the
  /// in-order delivery contract guarantee by a wide margin.
  static constexpr std::uint64_t seq_next(std::uint64_t s) noexcept {
    return s + 1 == 0 ? 1 : s + 1;
  }
  static constexpr bool seq_before(std::uint64_t a,
                                   std::uint64_t b) noexcept {
    return static_cast<std::int64_t>(a - b) < 0;
  }
  /// Called once by `Machine::configure_faults`. `pool` is the node's
  /// payload pool (nullptr falls back to a private, unbound pool so
  /// machine-level tests work without a kernel).
  void configure(NodeId self, const FaultConfig& cfg, SimTime rto_ns,
                 BufferPool* pool);

  /// Sequence an outbound data packet, file its retransmit master, and put
  /// the first (faulty) transmission on the wire. Must run on the source
  /// node's stream. `now` anchors the retransmission deadline.
  void send_data(Packet p, SimTime now, LinkSink& sink);

  /// Process one physical arrival (data or ack) on the destination node's
  /// stream. May call `link_deliver` zero or more times (an in-order
  /// arrival also releases any buffered successors) and `link_transmit`
  /// for acks.
  void receive(Packet p, LinkSink& sink);

  /// Retransmit every master whose deadline has passed. Returns the next
  /// pending deadline, or 0 when nothing is in flight.
  SimTime on_timer(SimTime now, LinkSink& sink);

  /// Earliest retransmission deadline across all channels (0 = none).
  [[nodiscard]] SimTime next_deadline() const noexcept;

  /// True while any sent packet lacks a cumulative ack. A node with
  /// unacked masters still owes wire work and must not be treated as
  /// terminally idle.
  [[nodiscard]] bool has_unacked() const noexcept { return unacked_ != 0; }

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }

  /// Release every held payload (retransmit masters, out-of-order buffer)
  /// back to the pool. Caller must be executing as the owning node.
  void drain();

  /// Visit payloads the endpoint still holds — the link layer's share of
  /// the buffer audit's in-flight walk.
  void for_each_pending_payload(
      const std::function<void(const Bytes&)>& fn) const;

  /// Test-only: pre-position a channel's sequence space as if traffic up
  /// to (but not including) `next_seq` had already been exchanged and
  /// acked. Lets tests/test_faults.cpp reach the wraparound point without
  /// 2^64 real sends. Must match on both ends of the channel.
  void preseed_out_for_test(NodeId dst, std::uint64_t next_seq) {
    out_[dst].next_seq = next_seq;
  }
  void preseed_in_for_test(NodeId src, std::uint64_t expect) {
    InChannel& ch = in_[src];
    ch.expect = expect;
    ch.last_delivered = expect == 1 ? 0 : expect - 1;
  }

 private:
  struct Master {
    Packet packet;         ///< pool-cloned payload; original send stamp
    SimTime deadline = 0;  ///< next retransmission due
    std::uint32_t retries = 0;
  };
  struct OutChannel {
    std::uint64_t next_seq = 1;
    std::uint64_t data_attempts = 0;  ///< transmissions, for drop_first
    std::map<std::uint64_t, Master> pending;
  };
  struct InChannel {
    std::uint64_t expect = 1;
    /// Highest in-order seq delivered; 0 = none yet. Kept explicitly
    /// because `expect - 1` is ambiguous once the space has wrapped
    /// (expect == 1 then means "last delivered was UINT64_MAX").
    std::uint64_t last_delivered = 0;
    std::map<std::uint64_t, Packet> buffered;  ///< early (out-of-order) data
  };

  BufferPool& pool() noexcept { return pool_ != nullptr ? *pool_ : fallback_; }
  [[nodiscard]] Bytes clone_payload(const Bytes& src);
  /// Apply the fault draws and put 0..2 physical copies on the wire.
  void transmit(const Packet& proto, Bytes payload, bool is_data,
                OutChannel* ch, LinkSink& sink);
  void send_ack(NodeId to, std::uint64_t cumulative, LinkSink& sink);
  void on_ack(NodeId from, std::uint64_t cumulative);
  [[nodiscard]] SimTime backoff(std::uint32_t retries) const noexcept;

  NodeId self_ = 0;
  FaultConfig cfg_{};
  SimTime rto_ = 0;
  BufferPool* pool_ = nullptr;
  BufferPool fallback_;
  Xoshiro256 rng_{0};
  // std::map (not unordered) so retransmission and drain order is
  // deterministic — SimMachine's byte-identical reports depend on it.
  std::map<NodeId, OutChannel> out_;
  std::map<NodeId, InChannel> in_;
  std::uint64_t unacked_ = 0;  ///< total masters across channels
  LinkStats stats_;
};

}  // namespace hal::am
