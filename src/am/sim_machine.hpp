// Deterministic discrete-event machine simulator.
//
// Each node is a sequential execution stream with its own virtual clock;
// packet deliveries and node-resume events are processed from one global
// priority queue ordered by (time, insertion sequence) so every run with the
// same seed is bit-for-bit reproducible. Node code advances its clock via
// Machine::charge(); packet arrival time = sender clock after injection
// charges + wire latency. This is the stand-in for the paper's CM-5
// (DESIGN.md §1): the runtime's protocols execute unmodified, and reported
// "execution times" are simulated makespans.
//
// Handler preemption: on the CM-5 an incoming active message interrupts the
// running actor — "the node manager steals the processor from the actor
// that is currently executing, processes the request using that actor's
// stack frame and subsequently resumes the actor's execution" (§3). The
// simulator models this with two per-node streams: handlers execute at
// their arrival time (serialized among themselves on the handler stream),
// and their cost is charged to the method stream as stolen cycles. A bulk
// transfer therefore makes progress *during* a long method — which is what
// lets communication overlap computation, exactly as on the real machine.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "am/machine.hpp"
#include "am/node_executor.hpp"

namespace hal::am {

class SimMachine final : public Machine, private LinkSink {
 public:
  SimMachine(NodeId nodes, CostModel costs);

  void send(Packet p) override;
  void charge(NodeId node, SimTime ns) override;
  SimTime now(NodeId node) const override;
  void run() override;
  void configure_faults(const FaultConfig& cfg) override;
  void configure_batching(const BatchConfig& cfg) override;

  /// Makespan: maximum virtual clock over all nodes. This is the number the
  /// benchmark tables report as "execution time".
  SimTime makespan() const;

  /// Total events processed (diagnostic; useful in tests to bound work).
  std::uint64_t events_processed() const noexcept { return events_done_; }

  /// Safety valve for protocol bugs: run() aborts after this many events.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }

  /// Reset all virtual clocks to zero (between benchmark repetitions).
  void reset_clocks();

 private:
  enum class EventKind : std::uint8_t {
    kDelivery,
    kResume,
    kLinkTimer,
    kFrameTimer,  // wire-batching holdoff expiry (coalesced per node)
    kService,     // client-requested on_idle re-run (service_deadline)
  };

  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal-time events
    EventKind kind;
    NodeId node;
    Packet packet;  // kDelivery only
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier seq first
    }
  };

  void push_event(Event e);
  /// Schedule a resume for `node` at its current clock unless one is already
  /// pending.
  void schedule_resume(NodeId node);
  /// After running client code on `node`: keep it executing or transition
  /// it to idle (invoking on_idle once).
  void settle(NodeId node);
  /// The executing stream's current time on `node` (handler stream while a
  /// handler runs, method stream otherwise).
  SimTime current_time(NodeId node) const;

  // LinkSink: one physical wire copy / one in-order delivery (fault plane).
  void link_transmit(Packet p, SimTime extra_delay_ns) override;
  void link_deliver(Packet p) override;
  /// Arm `node`'s retransmission timer event at its endpoint's earliest
  /// deadline (coalesced: at most one pending timer event per node).
  void schedule_link_timer(NodeId node);
  /// A few virtual round trips on the configured cost model.
  SimTime default_rto() const noexcept override;

  /// Route a closed frame to the wire, charging only the once-per-frame
  /// injection overhead (records paid per-word/per-byte at append).
  void wire_inject(Packet frame) override;
  /// Arm `node`'s holdoff-flush event at its earliest frame deadline
  /// (coalesced like the link timer). Held frames always have a pending
  /// timer event, so quiescence cannot be declared over a held frame.
  void schedule_frame_timer(NodeId node);
  /// Arm a client-requested on_idle re-run (NodeClient::service_deadline),
  /// e.g. the load balancer's backed-off repoll on an otherwise idle node.
  void schedule_service(NodeId node);
  /// The NI-as-hardware half of the holdoff timer: when `node`'s advancing
  /// clock passes an open frame's deadline *inside* a method or handler,
  /// ship the frame at that point instead of holding it until the code
  /// yields. Without this, a send followed by a long compute burst in the
  /// same dispatch would serialize the receiver behind the sender's local
  /// work — the overlap the holdoff bounds (and that the unbatched path
  /// gets for free) would be lost.
  void autoflush(NodeId node);

  // Shared node-stepping core, demux/timer entry points only: packets live
  // in the event queue below (no mailboxes) and quiescence is queue
  // exhaustion (no detector participants).
  NodeExecutor exec_{*this, 0, /*mailboxes=*/false};
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<SimTime> clock_;         // method/compute stream
  std::vector<SimTime> handler_tail_;  // handler-stream serialization point
  std::vector<bool> resume_pending_;
  std::vector<bool> idle_notified_;
  std::vector<bool> link_timer_pending_;
  std::vector<bool> frame_timer_pending_;
  std::vector<bool> service_pending_;
  // Transient handler-execution context (one handler at a time globally —
  // the event loop is sequential).
  bool in_handler_ = false;
  NodeId handler_node_ = kInvalidNode;
  SimTime handler_time_ = 0;
  bool autoflushing_ = false;  // wire_inject charges re-enter charge()
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_done_ = 0;
  std::uint64_t event_limit_ = 0;  // 0 = unlimited
  bool running_ = false;
};

}  // namespace hal::am
