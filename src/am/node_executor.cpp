#include "am/node_executor.hpp"

#include <utility>

namespace hal::am {

NodeExecutor::NodeExecutor(Machine& machine, std::uint32_t participants,
                           bool mailboxes)
    : machine_(machine), detector_(participants) {
  if (mailboxes) {
    const NodeId nodes = machine.node_count();
    mailboxes_.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
      mailboxes_.push_back(std::make_unique<MpscQueue<Packet>>());
    }
  }
}

void NodeExecutor::dispatch(NodeId node, Packet p, LinkSink& sink) {
  if (machine_.links_active() && (p.link_seq != 0 || p.link_ack)) {
    // Physical arrival on the faulty wire: the endpoint dedupes, reorders
    // into sequence, acks, and calls sink.link_deliver for each packet that
    // becomes deliverable.
    machine_.link(node).receive(std::move(p), sink);
  } else {
    // Plain packets run their handler directly; coalesced frames decode
    // into one handler call per record (one wake and one mailbox slot
    // carried many messages).
    machine_.deliver_to_client(node, std::move(p));
  }
}

void NodeExecutor::post(Packet p) {
  const NodeId dst = p.dst;
  // Epoch order matters for termination detection: the send must be counted
  // before the packet becomes visible, so a checker that reads
  // sent == handled knows no packet is hiding in a queue.
  detector_.note_sent();
  mailboxes_[dst]->push(std::move(p));
}

std::size_t NodeExecutor::drain(NodeId node, LinkSink& sink, std::size_t max) {
  MpscQueue<Packet>& q = *mailboxes_[node];
  std::size_t done = 0;
  while (done < max) {
    auto p = q.pop();
    if (!p.has_value()) break;
    dispatch(node, std::move(*p), sink);
    // The handled epoch counts the *physical* packet regardless of whether
    // the link layer suppressed it as a duplicate — symmetric with post().
    detector_.note_handled();
    ++done;
  }
  return done;
}

std::size_t NodeExecutor::step_quantum(NodeId node, std::size_t max) {
  NodeClient& c = machine_.client(node);
  std::size_t done = 0;
  while (done < max && c.step()) ++done;
  return done;
}

SimTime NodeExecutor::fire_link_timer(NodeId node, SimTime now,
                                      LinkSink& sink) {
  if (!machine_.links_active()) return 0;
  LinkEndpoint& ep = machine_.link(node);
  ep.on_timer(now, sink);
  return ep.next_deadline();
}

SimTime NodeExecutor::link_deadline(NodeId node) const {
  if (!machine_.links_active()) return 0;
  return machine_.link(node).next_deadline();
}

bool NodeExecutor::has_unacked(NodeId node) const {
  return machine_.links_active() && machine_.link(node).has_unacked();
}

}  // namespace hal::am
