// Hypercube-like minimum-spanning-tree broadcast structure (§6.4).
//
// The paper's communication module implements the broadcast primitive "in
// terms of point-to-point communication, using a hypercube-like minimum
// spanning tree". This is the classic binomial tree over node ranks relative
// to the broadcast root: node rr's parent clears rr's highest set bit, so a
// broadcast reaches P nodes in ⌈log2 P⌉ relay steps with each node sending
// at most ⌈log2 P⌉ packets.
#pragma once

#include <bit>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hal::am {

/// Visit the children of `self` in the binomial broadcast tree rooted at
/// `root` over `nodes` nodes; `fn(NodeId child)` is called in relay order
/// (nearest subtree first).
template <typename Fn>
void mst_for_each_child(NodeId self, NodeId root, NodeId nodes, Fn&& fn) {
  HAL_ASSERT(self < nodes && root < nodes);
  const NodeId rr = (self + nodes - root) % nodes;
  // Children of relative rank rr are rr + 2^k for every 2^k above rr's
  // highest set bit (all of them for rr == 0).
  NodeId step = (rr == 0) ? 1 : (std::bit_floor(rr) << 1);
  for (; step != 0 && rr + step < nodes; step <<= 1) {
    fn(static_cast<NodeId>((rr + step + root) % nodes));
  }
}

/// Parent of `self` in the tree rooted at `root`; root's parent is itself.
inline NodeId mst_parent(NodeId self, NodeId root, NodeId nodes) {
  HAL_ASSERT(self < nodes && root < nodes);
  const NodeId rr = (self + nodes - root) % nodes;
  if (rr == 0) return root;
  const NodeId pr = rr & static_cast<NodeId>(~std::bit_floor(rr));
  return static_cast<NodeId>((pr + root) % nodes);
}

/// Depth of `self` in the tree (number of relay hops from the root).
inline unsigned mst_depth(NodeId self, NodeId root, NodeId nodes) {
  const NodeId rr = (self + nodes - root) % nodes;
  return static_cast<unsigned>(std::popcount(rr));
}

}  // namespace hal::am
