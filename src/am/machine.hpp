// Abstract multicomputer: P nodes exchanging active-message packets.
//
// Three implementations share this interface (DESIGN.md §1, docs/machines.md):
//   * SimMachine    — deterministic discrete-event executor with per-node
//                     virtual clocks and the CostModel; regenerates the
//                     paper's CM-5 scaling and primitive-cost tables on a
//                     single host core.
//   * ThreadMachine — one OS thread per node, real MPSC endpoint queues,
//                     wall-clock time; demonstrates the runtime is genuinely
//                     concurrent.
//   * MnMachine     — M nodes multiplexed onto N worker threads with
//                     work-stealing run queues; reaches node counts (1024+)
//                     far past hardware parallelism.
// All kernel/protocol code above this interface is identical under all
// three; construction is centralized in make_machine (machine_factory.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "am/cost_model.hpp"
#include "am/fault.hpp"
#include "am/link.hpp"
#include "am/packet.hpp"
#include "am/wire_batch.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"

namespace hal::obs {
class ProbeRecorder;
}  // namespace hal::obs

namespace hal::am {

/// Per-node logic attached to a machine. All four methods are invoked on the
/// node's own execution stream; implementations need no internal locking.
class NodeClient {
 public:
  virtual ~NodeClient() = default;

  /// An active-message packet arrived; run its handler.
  virtual void handle(Packet p) = 0;

  /// A coalesced frame is about to decode into `count` consecutive handle()
  /// calls that all left the wire in one physical arrival at machine time
  /// `now`. Clients may cache `now` as the delivery timestamp for the whole
  /// burst instead of re-reading the machine clock per record — on the
  /// wall-clock machines a clock read costs a third of the delivery path,
  /// and one frame genuinely has one arrival time. Paired with
  /// on_frame_end() after the last record of the frame.
  virtual void on_frame_begin(SimTime /*now*/, std::uint32_t /*count*/) {}
  virtual void on_frame_end() {}

  /// Perform one unit of local work (e.g. dispatch one actor message).
  /// Returns false if there was nothing to do.
  virtual bool step() = 0;

  /// True if step() would do work.
  virtual bool has_work() const = 0;

  /// Called once on each transition from busy to idle (endpoint drained and
  /// has_work() false). May send packets — this is where the receiver-
  /// initiated load balancer issues its poll.
  virtual void on_idle() {}

  /// Payload pool the reliable-link layer clones retransmit masters from
  /// and releases dropped/duplicate payloads into. The kernel returns its
  /// per-node pool so the buffer ledger stays conservative under faults;
  /// nullptr (the default) gives the endpoint a private fallback pool so
  /// bare machine-level test clients keep working. The wire-batching
  /// aggregator borrows the same pool for its frame buffers.
  virtual BufferPool* link_pool() noexcept { return nullptr; }

  /// Probe recorder for wire-layer observability (the frame-fill histogram
  /// recorded when a frame closes on this node's stream). The kernel
  /// returns its per-node recorder; nullptr (the default) skips recording
  /// for bare machine-level clients.
  virtual obs::ProbeRecorder* wire_probes() noexcept { return nullptr; }

  /// Earliest future time (machine clock) at which this client wants its
  /// on_idle re-run even though nothing arrived — 0 = never. Machines fold
  /// it into their idle parking so deferred work (e.g. the load balancer's
  /// backed-off repoll) resumes without an inbound packet to wake the node.
  virtual SimTime service_deadline() const { return 0; }
};

class Machine {
 public:
  Machine(NodeId nodes, CostModel costs)
      : clients_(nodes, nullptr), costs_(costs) {
    HAL_ASSERT(nodes >= 1);
  }
  virtual ~Machine() = default;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  NodeId node_count() const noexcept {
    return static_cast<NodeId>(clients_.size());
  }
  const CostModel& costs() const noexcept { return costs_; }

  void attach(NodeId node, NodeClient* client) {
    HAL_ASSERT(node < node_count());
    clients_[node] = client;
  }

  /// Inject a packet. Must be called from the src node's execution stream
  /// (or from the bootstrap thread before run()). Payloads above
  /// kBulkChunkBytes are rejected: larger transfers must be chunked through
  /// the three-phase BulkChannel protocol.
  virtual void send(Packet p) = 0;

  /// Advance the node's virtual clock (SimMachine) / no-op (ThreadMachine).
  virtual void charge(NodeId node, SimTime ns) = 0;

  /// Convenience: charge a floating-point workload on the cost model.
  void charge_flops(NodeId node, std::uint64_t flops) {
    charge(node, static_cast<SimTime>(static_cast<double>(flops) *
                                      costs_.flop_ns));
  }
  /// Charge generic user work units (integer ops, traversal steps).
  void charge_work(NodeId node, std::uint64_t units) {
    charge(node, static_cast<SimTime>(static_cast<double>(units) *
                                      costs_.work_ns));
  }

  /// Current time on a node: virtual ns (SimMachine) or wall ns since
  /// machine construction (ThreadMachine).
  virtual SimTime now(NodeId node) const = 0;

  /// Execute until quiescence (no packets in flight, no local work, no work
  /// tokens outstanding) or until stop() is called.
  virtual void run() = 0;

  /// Host-parallelism this machine runs on: 1 for the sequential simulator,
  /// one per node for ThreadMachine, the worker-pool size for MnMachine.
  /// Reported as RunReport::workers (the scaling-curve dimension).
  virtual std::uint32_t worker_count() const noexcept { return 1; }

  /// Ask run() to return as soon as possible (callable from any thread).
  void stop() noexcept {
    stop_.store(true, std::memory_order_release);
    wake_hook();
  }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  // --- Global work hint ----------------------------------------------------
  // Front-end service standing in for the global progress information a
  // receiver-initiated load balancer needs (Kumar et al. pair random polling
  // with a separate termination detector): the total number of dispatcher
  // items queued or executing across all nodes. Idle nodes keep polling only
  // while this is positive, which keeps an idle machine quiescent without
  // giving up continuous polling during computation.
  void work_hint_add(std::int64_t delta) noexcept {
    const std::int64_t prev =
        work_hint_.fetch_add(delta, std::memory_order_acq_rel);
    // The machine went from drained to having work: idle nodes that stopped
    // polling (their steal chain went silent at hint == 0) must be told, or
    // an event-driven executor would leave them asleep and never re-poll.
    if (delta > 0 && prev <= 0) wake_hook();
  }
  std::int64_t work_hint() const noexcept {
    return work_hint_.load(std::memory_order_acquire);
  }

  // --- Work tokens --------------------------------------------------------
  // The front-end's quiescence service (DESIGN.md §5): a token is held for
  // every unit of outstanding work the machine cannot see (e.g. a parked
  // message awaiting FIR resolution). run() does not return while tokens
  // are outstanding.
  void token_acquire(std::uint64_t k = 1) noexcept {
    tokens_.fetch_add(k, std::memory_order_acq_rel);
  }
  void token_release(std::uint64_t k = 1) noexcept {
    const auto prev = tokens_.fetch_sub(k, std::memory_order_acq_rel);
    HAL_ASSERT(prev >= k);
  }
  std::uint64_t tokens() const noexcept {
    return tokens_.load(std::memory_order_acquire);
  }

  // --- Fault plane / reliable link -----------------------------------------
  // Configured once, after clients are attached and before run(). Enabling
  // faults also enables the per-node LinkEndpoints (ack/retransmit/dedupe);
  // disabled, sends take the historical direct path with zero link overhead.
  // Machine implementations override to scrub unsupported knobs (Thread
  // drops the delay probability) and pick the default RTO, then call the
  // base. Must not be called while the machine is running.
  virtual void configure_faults(const FaultConfig& cfg);
  const FaultConfig& fault_config() const noexcept { return faults_; }

  /// Wire counters for one node's endpoint; nullptr when faults are off.
  const LinkStats* link_stats(NodeId node) const noexcept {
    return links_.empty() ? nullptr : &links_[node]->stats();
  }

  /// Release every payload the link layer still holds (retransmit masters,
  /// out-of-order buffers) back to the owning pools. Called at shutdown
  /// drain, after run() has returned.
  void drain_links();

  /// Buffer-audit walk over link-held payloads (the link layer's share of
  /// the report's in-flight count).
  void for_each_link_payload(const std::function<void(const Bytes&)>& fn) const;

  // --- Wire batching (destination-coalesced frames) ------------------------
  // Configured once, after clients are attached and before run(), like the
  // fault plane above. Enabled, eligible small sends accumulate in
  // per-(source, destination) FrameBuilders and ship as single wire frames;
  // disabled (or on a 1-node machine) sends take the historical
  // one-packet-per-message path. Machine implementations override to hook
  // their flush-timer plumbing, then call the base.
  virtual void configure_batching(const BatchConfig& cfg);
  const BatchConfig& batch_config() const noexcept { return batch_; }
  bool batching_active() const noexcept { return !wire_.empty(); }

  /// Aggregation counters for one node; nullptr when batching is off.
  const WireStats* wire_stats(NodeId node) const noexcept {
    return wire_.empty() ? nullptr : &wire_[node]->stats();
  }

  /// Release every still-open frame buffer back to the owning pools
  /// without shipping it. Called at shutdown drain, after run() returned.
  void drain_wire();

  /// Buffer-audit walk over open frame buffers (the aggregation layer's
  /// share of the report's in-flight count).
  void for_each_wire_payload(const std::function<void(const Bytes&)>& fn) const;

 protected:
  // The shared node-stepping core (node_executor.hpp) demuxes arrivals and
  // fires link timers on behalf of its machine; it needs the same access to
  // clients and link endpoints the machine itself has.
  friend class NodeExecutor;

  NodeClient& client(NodeId node) const {
    HAL_ASSERT(node < node_count() && clients_[node] != nullptr);
    return *clients_[node];
  }

  /// Executor hook: the global run state changed in a way sleeping node
  /// loops must observe (stop requested, work hint went positive).
  /// ThreadMachine overrides it to wake every blocked node; SimMachine is
  /// single-threaded and needs nothing. Must be safe from any thread.
  virtual void wake_hook() noexcept {}

  /// Validate a packet at injection time.
  void check_packet(const Packet& p) const {
    HAL_ASSERT(p.src < node_count());
    HAL_ASSERT(p.dst < node_count());
    HAL_ASSERT(p.payload.size() <= kBulkChunkBytes);
  }

  /// True when sends must route through the reliable link.
  bool links_active() const noexcept { return !links_.empty(); }
  LinkEndpoint& link(NodeId node) noexcept { return *links_[node]; }

  /// Machine-appropriate retransmission timeout when FaultConfig::rto_ns
  /// is 0 (Sim: a few virtual round trips; Thread: ~2 ms wall).
  virtual SimTime default_rto() const noexcept { return 2'000'000; }

  // --- Batching internals (shared by the three machines' send paths) -------
  /// Can `p` ride a frame? Small non-bulk, non-loopback, non-link-control
  /// payloads whose record fits an empty frame qualify.
  bool batch_eligible(const Packet& p) const noexcept;

  /// Append an eligible packet to src's frame toward dst. Emits (through
  /// wire_inject) the previous frame first if the record would overflow it,
  /// and the new frame immediately if the append filled it. `now` is the
  /// source node's clock, arming the holdoff deadline.
  void batch_append(Packet p, SimTime now);

  /// FIFO barrier: flush the open frame toward dst before an unbatchable
  /// packet uses the same channel (bulk chunks, oversized payloads) so
  /// per-channel order holds across the batched/unbatched boundary.
  /// Returns the number of frames emitted (0 or 1).
  std::size_t batch_barrier(NodeId src, NodeId dst);

  /// Flush every open frame held by src (idle transition, shutdown).
  std::size_t flush_frames(NodeId src, FlushCause cause);

  /// Flush src's frames whose holdoff deadline has expired.
  std::size_t flush_due_frames(NodeId src, SimTime now);

  /// Earliest holdoff deadline over src's open frames; 0 = none.
  SimTime frame_deadline(NodeId src) const noexcept;

  /// Put a closed frame on the wire. The default routes through send()
  /// (frames are never batch_eligible, so this cannot recurse); SimMachine
  /// overrides to charge only the amortized injection cost.
  virtual void wire_inject(Packet frame) { send(std::move(frame)); }

  /// Arrival demux used by NodeExecutor: plain packets go straight to the
  /// client, frames decode into one handler call per record (one wake, one
  /// mailbox drain, many messages) with record payloads drawn from — and
  /// the frame buffer retired into — the receiving node's pool.
  void deliver_to_client(NodeId node, Packet p);

 private:
  /// Close fb (held by src toward dst), account the flush, record the
  /// frame-fill probe, and ship the frame.
  void emit_frame(WireAggregator& agg, FrameBuilder& fb, NodeId src,
                  NodeId dst, FlushCause cause);

  std::vector<NodeClient*> clients_;
  CostModel costs_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tokens_{0};
  std::atomic<std::int64_t> work_hint_{0};
  std::vector<std::unique_ptr<LinkEndpoint>> links_;
  FaultConfig faults_{};
  std::vector<std::unique_ptr<WireAggregator>> wire_;
  BatchConfig batch_{};
};

}  // namespace hal::am
