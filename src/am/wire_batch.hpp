// Destination-coalesced wire batching (ROADMAP item 4a).
//
// The paper's flow-control layer already tracks per-destination traffic;
// this extends it into an aggregation layer: a per-(source, destination)
// FrameBuilder packs many small packets into one bounded wire frame, so a
// burst of fine-grain sends to the same node pays the per-packet costs
// (header injection, link sequencing, wake handshake, dispatch entry) once
// per frame instead of once per message — the amortization CAF and Templet
// identify as the dominant lever once allocation is off the path (PR 3/5).
//
// Wire format of a frame (Packet::frame = true, words[0] = record count,
// payload = concatenated records, ≤ BatchConfig::max_frame_bytes):
//
//   record := handler   u32      | payload_len  u16 | nwords u8 | flags u8
//             stamp     u64      |                                  (16 B)
//             words     nwords×u64   (trailing zero words trimmed)
//             payload   payload_len bytes
//
// Frames travel as ordinary packets: LinkEndpoint sequences, retransmits
// and dedupes whole frames, so the fault plane (PR 6) composes unchanged,
// and the per-channel FIFO order of batched traffic is the frame order.
// Mixing unbatchable traffic (bulk chunks, loopback, oversized payloads)
// into a channel forces a barrier flush first, preserving send order.
//
// Flush policy (docs/perf.md):
//   fill    — the frame reached max_msgs records or max_frame_bytes
//   timer   — the per-destination holdoff deadline expired (machines ride
//             their existing timer plumbing: Sim schedules a coalesced
//             kFrameTimer event, Thread/Mn poll deadlines per quantum)
//   idle    — the source node transitioned busy → idle (termination
//             detection must never see a held frame)
//   barrier — an unbatchable packet needed the channel, or shutdown drain
//
// The holdoff adapts per destination when BatchConfig::adaptive: a fill
// flush doubles it (the channel is hot — wait for fuller frames), a timer
// flush of a near-empty frame halves it (latency-bound traffic), clamped
// to [holdoff_min_ns, holdoff_max_ns]. All decisions depend only on the
// deterministic flush sequence, so SimMachine reports stay byte-identical.
//
// Ownership: frame buffers come from the *sending* node's BufferPool
// (borrowed from NodeClient::link_pool, private fallback otherwise) and
// retire into the *receiving* node's pool after decode — the same
// cross-node recycling loop packet payloads use, keeping the message path
// at 0 allocs/msg in steady state (bench/msgpath_alloc).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>

#include "common/assert.hpp"
#include "common/buffer_pool.hpp"
#include "common/bytes.hpp"
#include "common/lint_markers.hpp"
#include "common/types.hpp"

#include "am/packet.hpp"

namespace hal::am {

/// Bytes of fixed header per frame record (see the format comment above).
inline constexpr std::size_t kFrameRecordHeader = 16;

/// Smallest useful frame: one record header plus a full word set.
inline constexpr std::size_t kMinFrameBytes =
    kFrameRecordHeader + kPacketWords * sizeof(std::uint64_t);

/// Knobs for the aggregation layer. Like FaultConfig this rides
/// RuntimeConfig and is applied once, after clients attach and before
/// run(), via Machine::configure_batching.
struct BatchConfig {
  /// Master switch. Batching is on by default: coalescing is semantically
  /// invisible (per-channel order and exactly-once delivery preserved) and
  /// strictly cheaper on the wire. Disabled, sends take the historical
  /// one-packet-per-message path.
  bool enabled = true;
  /// Frame payload cap. Bounded by kBulkChunkBytes (the machine's hard
  /// per-packet cap); the default fills the pool's 4 KiB size class — a
  /// half-full 2 KiB frame would recycle through the same class, so
  /// capping below it only halves the amortization, never the footprint.
  std::uint32_t max_frame_bytes = 4096;
  /// Fill-flush threshold: a frame closes after this many records.
  std::uint32_t max_msgs = 64;
  /// Initial per-destination holdoff: how long the first record of a frame
  /// may wait for company before a timer flush (virtual ns under Sim, wall
  /// ns under Thread/Mn). Kept small: bursty channels double their way up
  /// adaptively, while pipelined dependency chains (one small message per
  /// hop, sender still busy) only ever pay this much extra latency.
  SimTime holdoff_ns = 2'000;
  /// Adaptive holdoff clamp range.
  SimTime holdoff_min_ns = 1'000;
  SimTime holdoff_max_ns = 100'000;
  /// Adapt the holdoff per destination from the observed flush causes.
  bool adaptive = true;

  bool valid() const noexcept {
    if (!enabled) return true;
    return max_frame_bytes >= kMinFrameBytes &&
           max_frame_bytes <= kBulkChunkBytes && max_msgs >= 2 &&
           holdoff_min_ns >= 1 && holdoff_ns >= holdoff_min_ns &&
           holdoff_ns <= holdoff_max_ns;
  }
};

/// Why a frame closed. Indexes the WireStats flush counters and drives the
/// adaptive holdoff.
enum class FlushCause : std::uint8_t { kFill, kTimer, kIdle, kBarrier };

/// Per-source-node aggregation counters, folded into RunReport (schema v5)
/// alongside the link stats.
struct WireStats {
  std::uint64_t frames_sent = 0;     ///< closed frames put on the wire
  std::uint64_t msgs_coalesced = 0;  ///< messages that traveled inside frames
  std::uint64_t flush_fill = 0;
  std::uint64_t flush_timer = 0;
  std::uint64_t flush_idle = 0;
  std::uint64_t flush_barrier = 0;
};

/// Number of trailing zero words a record can omit from the wire.
inline std::uint8_t frame_used_words(const Packet& p) noexcept {
  std::size_t n = kPacketWords;
  while (n > 0 && p.words[n - 1] == 0) --n;
  return static_cast<std::uint8_t>(n);
}

/// Encoded size of `p` as a frame record.
inline std::size_t frame_record_size(const Packet& p) noexcept {
  return kFrameRecordHeader +
         frame_used_words(p) * sizeof(std::uint64_t) + p.payload.size();
}

/// One open frame toward a single destination. The buffer is Owned while
/// records accumulate and handed off whole by close(); the drop-on-drain
/// path retires it instead (Machine::drain_wire).
class FrameBuilder {
  // Checked by hal-lint HL007: this protocol is *single-writer* — deadlines
  // and counts are plain fields whose safety comes from execution-stream
  // affinity, so introducing atomics (or memory orders) here would paper
  // over a design breach instead of fixing one.
  HAL_MEMORY_PROTOCOL("frame_deadlines");

 public:
  bool open() const noexcept { return count_ != 0; }
  std::uint32_t count() const noexcept { return count_; }
  /// Flush deadline of the open frame (0 when closed).
  SimTime deadline() const noexcept { return deadline_; }

  /// Would `p`'s record still fit under the frame byte cap?
  bool fits(const Packet& p, const BatchConfig& cfg) const noexcept {
    return buf_.size() + frame_record_size(p) <= cfg.max_frame_bytes;
  }

  /// Append `p` as a record. The first record arms the holdoff deadline and
  /// acquires the frame buffer from `pool`; `p`'s payload retires back into
  /// `pool` (both on the sending node's stream). Caller checked fits().
  void add(Packet p, SimTime now, const BatchConfig& cfg, BufferPool& pool);

  /// Close the frame into a wire packet (frame = true, words[0] = record
  /// count, payload = the record bytes) and adapt the holdoff from `cause`.
  Packet close(NodeId src, NodeId dst, FlushCause cause,
               const BatchConfig& cfg);

  /// Shutdown path: retire a still-open buffer without shipping it.
  void abandon(BufferPool& pool);

  /// Buffer-audit peek at the open frame bytes (empty shell when closed).
  const Bytes& pending_payload() const noexcept { return buf_; }

 private:
  Bytes buf_;
  std::uint32_t count_ = 0;
  SimTime deadline_ = 0;
  SimTime holdoff_ = 0;  // adaptive; seeded from cfg on first use
};

/// Iterate the records of a received frame, rehydrating each into a
/// standalone Packet whose payload comes from the *receiving* node's pool.
/// Takes the client/pool as concrete references — no type-erased callback
/// (hal-handler-purity: decode runs on the AM handler path).
class FrameReader {
 public:
  explicit FrameReader(const Packet& frame) noexcept
      : frame_(frame),
        expected_(static_cast<std::uint32_t>(frame.words[0])) {
    HAL_ASSERT(frame.frame);
  }

  /// Decode the next record into `out`. Returns false when exhausted;
  /// asserts the record count and byte bounds agree (a frame passed the
  /// link layer intact or not at all).
  bool next(Packet& out, BufferPool& pool);

  std::uint32_t expected() const noexcept { return expected_; }
  std::uint32_t decoded() const noexcept { return decoded_; }

 private:
  const Packet& frame_;
  std::uint32_t expected_;
  std::uint32_t decoded_ = 0;
  std::size_t pos_ = 0;
};

/// Per-source-node aggregation state: one FrameBuilder per destination the
/// node has batched toward (std::map for deterministic flush order; entries
/// are never erased, so steady-state batching allocates nothing), the
/// borrowed payload pool, and the wire counters. Single-writer: touched
/// only from the owning node's execution stream, like LinkEndpoint.
class WireAggregator {
 public:
  void configure(NodeId self, const BatchConfig& cfg, BufferPool* pool) {
    self_ = self;
    cfg_ = cfg;
    pool_ = pool;
    frames_.clear();
    stats_ = WireStats{};
  }

  const BatchConfig& config() const noexcept { return cfg_; }
  /// The node's payload pool (kernel-provided), or the private fallback
  /// for bare machine-level clients.
  BufferPool& pool() noexcept {
    return pool_ != nullptr ? *pool_ : fallback_pool_;
  }

  /// Builder toward `dst`, created on first use.
  FrameBuilder& builder(NodeId dst) { return frames_[dst]; }
  /// Builder toward `dst` if one was ever created, else nullptr (barriers
  /// must not instantiate builders for never-batched channels).
  FrameBuilder* find(NodeId dst) {
    const auto it = frames_.find(dst);
    return it == frames_.end() ? nullptr : &it->second;
  }

  std::map<NodeId, FrameBuilder>& frames() noexcept { return frames_; }
  const std::map<NodeId, FrameBuilder>& frames() const noexcept {
    return frames_;
  }

  /// Earliest holdoff deadline over open frames; 0 = none open.
  SimTime earliest_deadline() const noexcept {
    SimTime best = 0;
    for (const auto& [dst, fb] : frames_) {
      const SimTime d = fb.deadline();
      if (d != 0 && (best == 0 || d < best)) best = d;
    }
    return best;
  }

  WireStats& stats() noexcept { return stats_; }
  const WireStats& stats() const noexcept { return stats_; }

 private:
  NodeId self_ = kInvalidNode;
  BatchConfig cfg_{};
  BufferPool* pool_ = nullptr;
  BufferPool fallback_pool_;
  std::map<NodeId, FrameBuilder> frames_;
  WireStats stats_;
};

}  // namespace hal::am
