// Machine construction API: one factory for every MachineKind.
//
// Runtime (and any embedder) constructs its machine through make_machine
// instead of naming concrete machine classes — adding a machine means a new
// MachineKind, a case here, and a name in to_string/parse_machine_kind;
// kernel, naming, bulk, link and protocol code never changes. See
// docs/machines.md for the selection matrix.
#pragma once

#include <memory>

#include "am/machine.hpp"
#include "runtime/config.hpp"

namespace hal::am {

/// Build the machine `config` asks for: kind, node count, cost model, and
/// kind-specific knobs (sim_event_limit, mn_workers). The config is assumed
/// validated (Runtime validates before calling).
std::unique_ptr<Machine> make_machine(const RuntimeConfig& config);

}  // namespace hal::am
