// Real-threads machine: one OS thread per simulated node.
//
// This executor demonstrates that the runtime above it is a genuine
// concurrent system: nodes exchange packets through MPSC endpoint queues and
// all protocol code (name server, FIR chasing, migration, flow control) runs
// under true preemption.
//
// The machine is fully event-driven — there is no polling anywhere:
//   * An idle node blocks on its condition variable with no timeout. A
//     sender publishes the packet, then acquires the receiver's mutex before
//     notifying, which closes the classic lost-wakeup window (the notify can
//     no longer land between the sleeper's predicate check and its wait).
//   * Global quiescence is detected by the TerminationDetector
//     (common/termination.hpp): a sharded active-participant counter plus
//     send/handle epoch counters, confirmed with a provably race-free double
//     scan run only on idle transitions. The last node to go idle detects
//     termination and wakes everyone; see docs/threadmachine.md for the
//     correctness argument.
//   * Idle nodes that stopped load-balancer polling because the machine-wide
//     work hint hit zero are re-woken through Machine::wake_hook() when the
//     hint turns positive again (a per-node generation counter makes that
//     wake visible through the wait predicate).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "am/machine.hpp"
#include "am/node_executor.hpp"
#include "am/park_handshake.hpp"
#include "common/fast_clock.hpp"
#include "common/lint_markers.hpp"

namespace hal::am {

class ThreadMachine final : public Machine, private LinkSink {
  // The memory-order contract of the wakeup flag lives in ParkHandshake
  // (am/park_handshake.hpp, hal-lint HL007 protocol `park_handshake`):
  // every touch is a seq_cst exchange — the RMW chain in the raw_push proof
  // needs reads and writes fused, so plain loads/stores and weaker orders
  // are both off the table. The arm-per-predicate loop shape in park() is
  // pinned separately by HL006.

 public:
  ThreadMachine(NodeId nodes, CostModel costs);
  ~ThreadMachine() override;

  void send(Packet p) override;
  void charge(NodeId node, SimTime ns) override;  // no-op: time is real
  SimTime now(NodeId node) const override;
  void run() override;
  std::uint32_t worker_count() const noexcept override {
    return node_count();  // one OS thread per node
  }
  /// Delay injection is Sim-only (real queues already reorder, and a wall
  /// clock sleep would only slow the soak): the knob is scrubbed here.
  void configure_faults(const FaultConfig& cfg) override;

  /// Packets injected / fully handled so far (stress tests, stats).
  std::uint64_t packets_sent() const noexcept {
    return exec_.detector().sent();
  }
  std::uint64_t packets_handled() const noexcept {
    return exec_.detector().handled();
  }

 protected:
  void wake_hook() noexcept override;

 private:
  // The packet mailboxes themselves live in the NodeExecutor; this record
  // holds only the scheduling state — the parking lot each node thread
  // sleeps in and the wakeup handshake flag.
  struct NodeRec {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t wake_gen = 0;  // guarded by mutex; bumped by wake_hook
    // Armed only while the owner is parked in cv.wait. Senders skip the
    // mutex+notify entirely when the receiver is awake — see the RMW
    // handshake in ThreadMachine::raw_push and am/park_handshake.hpp.
    // HAL_PARK_FLAG puts the wait loop under hal-lint HL006: it must re-arm
    // before every predicate evaluation.
    ParkHandshake<> sleeping HAL_PARK_FLAG;
  };

  void node_loop(NodeId node);
  void wake_all() noexcept;

  /// Block until the mailbox looks non-empty, stop is requested, a wake
  /// generation lands, or `deadline` (ns since epoch_, 0 = none) passes.
  /// Re-arms `sleeping` before every predicate evaluation — required for
  /// correctness against the MPSC queue's unreachable-suffix window, see
  /// the proof at the implementation.
  void park(NodeRec& rec, NodeId node, std::uint64_t gen, SimTime deadline);

  /// Put one physical packet on the wire: count it in the sent epoch, push
  /// it into the destination queue, and run the wakeup handshake. The
  /// termination epochs count *physical* packets symmetrically (duplicates
  /// twice, drops never — they are decided before the push; acks and
  /// retransmits too), so sent == handled still proves no packet is hiding
  /// in any queue and the detector's double scan stays exact under faults.
  void raw_push(Packet p);

  // LinkSink (fault plane).
  void link_transmit(Packet p, SimTime extra_delay_ns) override;
  void link_deliver(Packet p) override;

  std::vector<std::unique_ptr<NodeRec>> nodes_;
  NodeExecutor exec_;  // mailboxes, epochs, demux (shared node-stepping core)
  // now() reads clock_ (calibrated TSC, ~7 ns); epoch_ anchors the cv
  // wait_until deadlines in steady_clock terms. The two clocks' sub-µs
  // offset/drift only shifts when a timed park *wakes*; due-ness is always
  // re-checked against clock_, so timers never fire early.
  FastClock clock_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hal::am
