// Real-threads machine: one OS thread per simulated node.
//
// This executor demonstrates that the runtime above it is a genuine
// concurrent system: nodes exchange packets through MPSC endpoint queues and
// all protocol code (name server, FIR, migration, flow control) runs under
// true preemption. Quiescence is detected by the front-end service: all
// nodes idle, every injected packet handled, and no external work tokens —
// verified with a double scan so a racing send cannot be missed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "am/machine.hpp"
#include "common/mpsc_queue.hpp"

namespace hal::am {

class ThreadMachine final : public Machine {
 public:
  ThreadMachine(NodeId nodes, CostModel costs);
  ~ThreadMachine() override;

  void send(Packet p) override;
  void charge(NodeId node, SimTime ns) override;  // no-op: time is real
  SimTime now(NodeId node) const override;
  void run() override;

 private:
  struct NodeRec {
    MpscQueue<Packet> queue;
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> idle{false};
  };

  void node_loop(NodeId node);
  bool quiescent() const;

  std::vector<std::unique_ptr<NodeRec>> nodes_;
  std::atomic<std::uint64_t> packets_sent_{0};
  std::atomic<std::uint64_t> packets_handled_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hal::am
