#include "am/bulk.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace hal::am {

BulkChannel::BulkChannel(Machine& machine, NodeId self, BulkHandlers handlers,
                         StatBlock& stats, obs::ProbeRecorder& probes,
                         BufferPool& pool, DeliverFn deliver)
    : machine_(machine),
      self_(self),
      handlers_(handlers),
      stats_(stats),
      probes_(probes),
      pool_(pool),
      deliver_(std::move(deliver)) {
  HAL_ASSERT(static_cast<bool>(deliver_));
}

std::uint64_t BulkChannel::send(NodeId dst, std::uint64_t tag,
                                const std::array<std::uint64_t, 2>& meta,
                                Bytes data) {
  const std::uint64_t id = next_id_++;
  stats_.bump(Stat::kBulkTransfers);

  Packet req;
  req.src = self_;
  req.dst = dst;
  req.handler = handlers_.request;
  // Word 5 carries the transfer's start time so the receiver can charge the
  // end-to-end duration probe at completion.
  req.words = {id, data.size(), tag, meta[0], meta[1], machine_.now(self_)};
  outbound_.emplace(id, Outbound{dst, std::move(data)});
  machine_.send(std::move(req));
  return id;
}

void BulkChannel::route(const Packet& p) {
  if (p.handler == handlers_.request) {
    on_request(p);
  } else if (p.handler == handlers_.ack) {
    on_ack(p);
  } else if (p.handler == handlers_.data) {
    on_data(p);
  } else {
    HAL_PANIC("BulkChannel::route: unknown handler");
  }
}

void BulkChannel::grant(const PendingGrant& g) {
  ++active_inbound_grants_;
  audit_.note_grant();
  if (g.size == 0) {
    // Degenerate transfer: nothing to stream (and no assembly buffer —
    // acquiring one here just leaked it); complete at grant time. Still
    // ACK so the sender can retire its outbound record.
    --active_inbound_grants_;
    audit_.note_complete();
    probes_.record_span(obs::Probe::kBulkTransfer, g.started_at,
                        machine_.now(self_));
    deliver_(g.src, g.tag, g.meta, {});
  } else {
    Inbound in;
    in.tag = g.tag;
    in.meta = g.meta;
    in.data = pool_.acquire(g.size);
    in.started_at = g.started_at;
    inbound_.emplace(key(g.src, g.id), std::move(in));
  }
  Packet ack;
  ack.src = self_;
  ack.dst = g.src;
  ack.handler = handlers_.ack;
  ack.words = {g.id, 0, 0, 0, 0, 0};
  machine_.send(std::move(ack));
}

void BulkChannel::on_request(const Packet& p) {
  PendingGrant g{p.src,        p.words[0], p.words[1], p.words[2],
                 {p.words[3], p.words[4]}, p.words[5], 0};
  if (flow_control_ && active_inbound_grants_ > 0) {
    // Minimal flow control: hold the ACK until the active transfer drains.
    stats_.bump(Stat::kBulkFlowStalls);
    g.queued_at = machine_.now(self_);
    grant_queue_.push_back(g);
    return;
  }
  grant(g);
  // A zero-size grant completes inline and leaves no active transfer, so it
  // cannot rely on on_data to unblock the queue.
  pump_grants();
}

void BulkChannel::on_ack(const Packet& p) {
  const std::uint64_t id = p.words[0];
  auto it = outbound_.find(id);
  // Fault-exemption invariant (docs/faults.md): bulk control packets —
  // REQUEST, this ACK (the credit grant), and DATA — all ride the reliable
  // link when fault injection is on, so a grant can be lost or duplicated
  // on the wire but never *delivered* lost, out of order, or twice. A
  // missing outbound entry therefore always means a protocol bug (a grant
  // forged or a transfer retired early), never wire damage; fail loudly
  // rather than resending the window.
  HAL_ASSERT(it != outbound_.end());
  Outbound out = std::move(it->second);
  outbound_.erase(it);

  // DATA phase: stream the buffer in chunks. Each chunk is charged to the
  // sender at injection (Machine::send) and to the receiver in on_data.
  std::size_t offset = 0;
  while (offset < out.data.size()) {
    const std::size_t len =
        std::min(kBulkChunkBytes, out.data.size() - offset);
    Packet d;
    d.src = self_;
    d.dst = out.dst;
    d.handler = handlers_.data;
    d.words = {id, offset, 0, 0, 0, 0};
    d.payload = pool_.acquire(len);
    std::memcpy(d.payload.data(), out.data.data() + offset, len);
    machine_.send(std::move(d));
    offset += len;
  }
  // The whole buffer has been streamed; recycle it.
  pool_.release(std::move(out.data));
}

void BulkChannel::on_data(const Packet& p) {
  const std::uint64_t k = key(p.src, p.words[0]);
  auto it = inbound_.find(k);
  HAL_ASSERT(it != inbound_.end());
  Inbound& in = it->second;
  const std::size_t offset = p.words[1];
  HAL_ASSERT(offset + p.payload.size() <= in.data.size());
  // Receiver-side drain cost: copying the chunk out of the NI.
  machine_.charge(self_, machine_.costs().payload_byte_ns *
                             static_cast<SimTime>(p.payload.size()));
  std::memcpy(in.data.data() + offset, p.payload.data(), p.payload.size());
  in.received += p.payload.size();
  if (in.received < in.data.size()) return;

  Inbound done = std::move(in);
  inbound_.erase(it);
  HAL_ASSERT(active_inbound_grants_ > 0);
  --active_inbound_grants_;
  audit_.note_complete();
  probes_.record_span(obs::Probe::kBulkTransfer, done.started_at,
                      machine_.now(self_));
  // Grant the next queued transfer before delivering: delivery may trigger
  // long method execution, and the grant lets the next sender overlap its
  // DATA phase with that execution (software pipelining).
  pump_grants();
  deliver_(p.src, done.tag, done.meta, std::move(done.data));
}

void BulkChannel::pump_grants() {
  // Drain the grant queue until a streaming transfer is active or it
  // empties. A zero-size grant completes inline without ever entering the
  // DATA phase (so on_data never fires for it); granting just one queue
  // entry — as this code once did — stranded everything queued behind a
  // zero-size transfer: no ACK, senders' outbound_ records never retired,
  // and the machine deadlocked on their work tokens.
  //
  // Under fault injection this single-credit window stays live only
  // because grants ride the reliable link (see the invariant in on_ack):
  // the wire may drop a grant's packet, but the link retransmits it, so
  // the sender's DATA phase — whose completion re-enters this pump —
  // always eventually starts. There is deliberately no grant-resend logic
  // here; audited under the injector by tests/test_faults.cpp.
  while (active_inbound_grants_ == 0 && !grant_queue_.empty()) {
    PendingGrant g = grant_queue_.front();
    grant_queue_.pop_front();
    probes_.record_span(obs::Probe::kBulkFlowStall, g.queued_at,
                        machine_.now(self_));
    grant(g);
  }
}

}  // namespace hal::am
