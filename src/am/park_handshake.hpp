// Park/wake handshake: the seq_cst RMW flag protocol between a parking
// consumer and its producers.
//
// Extracted from ThreadMachine/MnMachine (PR 8's lost-wakeup fix) into a
// checkable unit: the executors instantiate it with `StdAtomics` (their
// behavior is unchanged — same flag, same exchanges, same orders) and
// hal-mc instantiates it with model atomics to exhaustively explore the
// producer/consumer interleavings (docs/model-checking.md).
//
// Protocol (full happens-before argument at ThreadMachine::raw_push):
//
//   consumer                         producer (after its queue push)
//   --------                         -------------------------------
//   loop:
//     arm()        exchange(true)    claim_wake()   exchange(false)
//     if work: break                   -> true: lock mutex, notify
//     cv.wait                          -> false: consumer is awake
//   disarm()       exchange(false)
//
// Every access is a seq_cst exchange, so all touches of the flag form a
// single modification-order chain in which each RMW reads the write
// immediately before it and every link synchronizes-with the next. The
// consumer must arm() before EVERY predicate evaluation — not once before
// the loop — because a Vyukov MPSC push can be transiently unreachable
// behind another producer's half-finished one (mpsc_queue.hpp, empty());
// the gap-closing producer must either read true and notify, or have its
// RMW precede the arm, making its push visible to the predicate. The
// arm-per-evaluation loop shape is pinned by hal-lint HL006, the orders by
// HL007, the interleavings by hal-mc's park scenarios, and the whole thing
// by the TSan soak — four independent ways to lose if this regresses.
#pragma once

#include <atomic>

#include "common/atomic_policy.hpp"
#include "common/lint_markers.hpp"

namespace hal::am {

/// `Policy` supplies the atomic flag cell (common/atomic_policy.hpp).
template <typename Policy = StdAtomics>
class ParkHandshake {
  // Binds this class to hal-lint HL007's `park_handshake` policy: the flag
  // is ONLY ever touched through seq_cst exchanges (the HL006 RMW chain) —
  // plus the explicitly-advisory relaxed peek for thief wakes.
  HAL_MEMORY_PROTOCOL("park_handshake");

 public:
  /// Consumer side: raise the flag. Must run before EVERY wait-predicate
  /// evaluation (see the header comment). Returns the previous value
  /// (true on a redundant re-arm — harmless, and it keeps the RMW chain).
  bool arm() noexcept {
    return flag_.exchange(true, std::memory_order_seq_cst);
  }

  /// Consumer side: lower the flag after leaving the park loop, so senders
  /// stop paying the mutex+notify while the consumer is awake.
  void disarm() noexcept {
    flag_.exchange(false, std::memory_order_seq_cst);
  }

  /// Producer side, after the queue push: lower the flag and learn whether
  /// the consumer may be parked. True means the caller MUST notify under
  /// the consumer's mutex (the lock is what keeps the notify from landing
  /// between the predicate check and the wait).
  bool claim_wake() noexcept {
    return flag_.exchange(false, std::memory_order_seq_cst);
  }

  /// Advisory relaxed peek (MnMachine::maybe_wake_thief): a stale read
  /// costs a missed throughput wake, never correctness — every token in a
  /// deque is consumed by its owner if nobody steals it.
  bool armed_hint() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  typename Policy::template Atomic<bool> flag_{false};
};

}  // namespace hal::am
