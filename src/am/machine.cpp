#include "am/machine.hpp"

#include <memory>
#include <vector>

#include "check/affinity.hpp"

namespace hal::am {

void Machine::configure_faults(const FaultConfig& cfg) {
  HAL_ASSERT(cfg.probabilities_valid());
  faults_ = cfg;
  links_.clear();
  if (!cfg.enabled) return;
  const SimTime rto = cfg.rto_ns != 0 ? cfg.rto_ns : default_rto();
  links_.reserve(node_count());
  for (NodeId n = 0; n < node_count(); ++n) {
    auto ep = std::make_unique<LinkEndpoint>();
    ep->configure(n, cfg, rto,
                  clients_[n] != nullptr ? clients_[n]->link_pool() : nullptr);
    links_.push_back(std::move(ep));
  }
}

void Machine::drain_links() {
  for (NodeId n = 0; n < static_cast<NodeId>(links_.size()); ++n) {
    // Pool releases assert execution affinity; at shutdown drain the node
    // threads/streams are gone, so adopt each node's identity in turn.
    check::ScopedExecutionNode scope(n);
    links_[n]->drain();
  }
}

void Machine::for_each_link_payload(
    const std::function<void(const Bytes&)>& fn) const {
  for (const auto& ep : links_) ep->for_each_pending_payload(fn);
}

}  // namespace hal::am
