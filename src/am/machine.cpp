#include "am/machine.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "check/affinity.hpp"
#include "obs/probe_recorder.hpp"

namespace hal::am {

void Machine::configure_faults(const FaultConfig& cfg) {
  HAL_ASSERT(cfg.probabilities_valid());
  faults_ = cfg;
  links_.clear();
  if (!cfg.enabled) return;
  const SimTime rto = cfg.rto_ns != 0 ? cfg.rto_ns : default_rto();
  links_.reserve(node_count());
  for (NodeId n = 0; n < node_count(); ++n) {
    auto ep = std::make_unique<LinkEndpoint>();
    ep->configure(n, cfg, rto,
                  clients_[n] != nullptr ? clients_[n]->link_pool() : nullptr);
    links_.push_back(std::move(ep));
  }
}

void Machine::drain_links() {
  for (NodeId n = 0; n < static_cast<NodeId>(links_.size()); ++n) {
    // Pool releases assert execution affinity; at shutdown drain the node
    // threads/streams are gone, so adopt each node's identity in turn.
    check::ScopedExecutionNode scope(n);
    links_[n]->drain();
  }
}

void Machine::for_each_link_payload(
    const std::function<void(const Bytes&)>& fn) const {
  for (const auto& ep : links_) ep->for_each_pending_payload(fn);
}

// --- Wire batching -----------------------------------------------------------

void Machine::configure_batching(const BatchConfig& cfg) {
  HAL_ASSERT(cfg.valid());
  batch_ = cfg;
  wire_.clear();
  // A single node has no remote channel to coalesce (loopback never
  // batches), so leave the layer inert rather than instantiating it.
  if (!cfg.enabled || node_count() < 2) return;
  wire_.reserve(node_count());
  for (NodeId n = 0; n < node_count(); ++n) {
    auto agg = std::make_unique<WireAggregator>();
    agg->configure(n, cfg,
                   clients_[n] != nullptr ? clients_[n]->link_pool() : nullptr);
    wire_.push_back(std::move(agg));
  }
}

bool Machine::batch_eligible(const Packet& p) const noexcept {
  if (wire_.empty()) return false;
  // Frames and link-control traffic are the layer's own output; loopback
  // bypasses the wire entirely; bulk chunks and oversized payloads must
  // keep the direct path (their records would not fit a frame).
  if (p.frame || p.link_ack || p.link_seq != 0) return false;
  // Latency-critical control packets keep the direct path (see Packet).
  if (p.urgent) return false;
  if (p.src == p.dst) return false;
  if (p.payload.size() > kMaxInlinePayload) return false;
  return frame_record_size(p) <= batch_.max_frame_bytes;
}

void Machine::emit_frame(WireAggregator& agg, FrameBuilder& fb, NodeId src,
                         NodeId dst, FlushCause cause) {
  WireStats& ws = agg.stats();
  switch (cause) {
    case FlushCause::kFill:
      ++ws.flush_fill;
      break;
    case FlushCause::kTimer:
      ++ws.flush_timer;
      break;
    case FlushCause::kIdle:
      ++ws.flush_idle;
      break;
    case FlushCause::kBarrier:
      ++ws.flush_barrier;
      break;
  }
  ++ws.frames_sent;
  if (obs::ProbeRecorder* probes =
          clients_[src] != nullptr ? clients_[src]->wire_probes() : nullptr) {
    probes->record(obs::Probe::kFrameFill, fb.count());
  }
  wire_inject(fb.close(src, dst, cause, agg.config()));
}

void Machine::batch_append(Packet p, SimTime now) {
  HAL_DASSERT(batch_eligible(p));
  WireAggregator& agg = *wire_[p.src];
  const NodeId src = p.src;
  const NodeId dst = p.dst;
  FrameBuilder& fb = agg.builder(dst);
  if (fb.open() && !fb.fits(p, agg.config())) {
    emit_frame(agg, fb, src, dst, FlushCause::kFill);
  }
  ++agg.stats().msgs_coalesced;
  fb.add(std::move(p), now, agg.config(), agg.pool());
  if (fb.count() >= agg.config().max_msgs) {
    emit_frame(agg, fb, src, dst, FlushCause::kFill);
  }
}

std::size_t Machine::batch_barrier(NodeId src, NodeId dst) {
  if (wire_.empty()) return 0;
  WireAggregator& agg = *wire_[src];
  FrameBuilder* fb = agg.find(dst);
  if (fb == nullptr || !fb->open()) return 0;
  emit_frame(agg, *fb, src, dst, FlushCause::kBarrier);
  return 1;
}

std::size_t Machine::flush_frames(NodeId src, FlushCause cause) {
  if (wire_.empty()) return 0;
  WireAggregator& agg = *wire_[src];
  std::size_t emitted = 0;
  for (auto& [dst, fb] : agg.frames()) {
    if (!fb.open()) continue;
    emit_frame(agg, fb, src, dst, cause);
    ++emitted;
  }
  return emitted;
}

std::size_t Machine::flush_due_frames(NodeId src, SimTime now) {
  if (wire_.empty()) return 0;
  WireAggregator& agg = *wire_[src];
  std::size_t emitted = 0;
  for (auto& [dst, fb] : agg.frames()) {
    if (!fb.open() || fb.deadline() > now) continue;
    emit_frame(agg, fb, src, dst, FlushCause::kTimer);
    ++emitted;
  }
  return emitted;
}

SimTime Machine::frame_deadline(NodeId src) const noexcept {
  return wire_.empty() ? 0 : wire_[src]->earliest_deadline();
}

void Machine::deliver_to_client(NodeId node, Packet p) {
  if (!p.frame) {
    client(node).handle(std::move(p));
    return;
  }
  // Frames only exist while the aggregation layer is configured; decode on
  // the receiving node's stream, one handler call per record, and retire
  // the frame buffer into the receiving node's pool (the same cross-node
  // recycling loop packet payloads use).
  HAL_ASSERT(!wire_.empty());
  BufferPool& pool = wire_[node]->pool();
  NodeClient& c = client(node);
  FrameReader reader(p);
  // One clock read for the whole burst: every record in the frame arrived
  // in the same physical packet, so they share a delivery timestamp.
  c.on_frame_begin(now(node), reader.expected());
  Packet record;
  while (reader.next(record, pool)) c.handle(std::move(record));
  c.on_frame_end();
  pool.release(std::move(p.payload));
}

void Machine::drain_wire() {
  for (NodeId n = 0; n < static_cast<NodeId>(wire_.size()); ++n) {
    // Same affinity adoption as drain_links: the node streams are gone at
    // shutdown drain, and pool releases assert execution affinity.
    check::ScopedExecutionNode scope(n);
    for (auto& [dst, fb] : wire_[n]->frames()) fb.abandon(wire_[n]->pool());
  }
}

void Machine::for_each_wire_payload(
    const std::function<void(const Bytes&)>& fn) const {
  for (const auto& agg : wire_) {
    for (const auto& [dst, fb] : agg->frames()) {
      if (fb.open()) fn(fb.pending_payload());
    }
  }
}

}  // namespace hal::am
