#include "am/thread_machine.hpp"

#include <utility>

#include "check/affinity.hpp"

namespace hal::am {

ThreadMachine::ThreadMachine(NodeId nodes, CostModel costs)
    : Machine(nodes, costs),
      exec_(*this, nodes, /*mailboxes=*/true),
      epoch_(std::chrono::steady_clock::now()) {
  nodes_.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeRec>());
  }
}

ThreadMachine::~ThreadMachine() = default;

void ThreadMachine::configure_faults(const FaultConfig& cfg) {
  FaultConfig scrubbed = cfg;
  scrubbed.delay = 0.0;
  Machine::configure_faults(scrubbed);
}

void ThreadMachine::send(Packet p) {
  check_packet(p);
  p.stamp = now(p.src);
  if (batch_eligible(p)) {
    // Coalesced path: accumulate in the per-destination frame; the node
    // loop flushes on fill (inside batch_append), holdoff expiry, and the
    // busy -> idle transition. Runs on the source node's thread, so the
    // aggregator needs no locking.
    const SimTime t = p.stamp;
    batch_append(std::move(p), t);
    return;
  }
  // Unbatchable traffic flushes the channel's open frame first so
  // per-channel FIFO order holds across the batched/unbatched boundary.
  if (batching_active() && p.src != p.dst) batch_barrier(p.src, p.dst);
  if (links_active() && p.src != p.dst) {
    // Faulty wire: sequence + file a retransmit master; the link calls
    // back into link_transmit for every physical copy that survives the
    // injector. Runs on the source node's thread, so the endpoint needs no
    // locking. Loopback skips the link — a node's own queue cannot drop.
    const NodeId src = p.src;
    link(src).send_data(std::move(p), now(src), *this);
    return;
  }
  raw_push(std::move(p));
}

void ThreadMachine::link_transmit(Packet p,
                                  [[maybe_unused]] SimTime extra_delay_ns) {
  HAL_DASSERT(extra_delay_ns == 0);  // delay scrubbed in configure_faults
  raw_push(std::move(p));
}

void ThreadMachine::link_deliver(Packet p) {
  // Frames decode into a burst of records here; plain packets pass through.
  const NodeId dst = p.dst;
  deliver_to_client(dst, std::move(p));
}

void ThreadMachine::raw_push(Packet p) {
  NodeRec& dst = *nodes_[p.dst];
  // The executor counts the send epoch before the push (termination
  // accounting); the wakeup below must come after the push.
  exec_.post(std::move(p));
  // Wakeup handshake. Every access to `sleeping` (here and in park()) is
  // a seq_cst read-modify-write, so they form a single modification-order
  // chain in which each RMW reads the write immediately before it and every
  // link synchronizes-with the next. The receiver re-arms `sleeping` (an
  // RMW writing true) before EVERY wait-predicate evaluation; take any such
  // arm C and this sender's RMW S (after the push):
  //   - S precedes C: the RMW chain from S to C carries happens-before, so
  //     the predicate (sequenced after C) sees the push — no park.
  //   - C precedes S: the first sender RMW after C reads true and notifies
  //     while holding the receiver's mutex, so the notify cannot land
  //     between the predicate check and the park; the roused receiver
  //     re-arms before it re-checks, restarting the argument, and later
  //     senders that read false are covered by that pending notify.
  // Either way the wakeup cannot be lost — the seed machine notified
  // without the lock and papered over the lost-wakeup window with a 200 µs
  // wait timeout, giving idle nodes a ~100 µs median message latency. Busy
  // receivers keep this path lock-free (one uncontended RMW). RMWs instead
  // of a seq_cst fence keep the protocol visible to ThreadSanitizer, which
  // does not model atomic_thread_fence.
  //
  // The re-arm-per-evaluation is load-bearing, not belt-and-braces: the
  // mailbox is a Vyukov MPSC queue, so a COMPLETED push can be transiently
  // invisible behind another producer's half-finished one (mpsc_queue.hpp,
  // empty()). With a single pre-park arm, a receiver woken by sender A could
  // read "empty" over sender B's gap and re-wait with `sleeping` false (A's
  // exchange cleared it) — then B, closing the gap after A, reads false,
  // skips the notify, and the receiver sleeps forever over B's packet.
  // Arming afresh guarantees the gap-closing producer either reads true and
  // notifies, or its RMW precedes the arm, in which case its next-pointer
  // store (sequenced before its RMW) is visible to the predicate.
  if (dst.sleeping.claim_wake()) {
    std::lock_guard lock(dst.mutex);
    dst.cv.notify_one();
  }
}

void ThreadMachine::charge(NodeId node, SimTime /*ns*/) {
  HAL_ASSERT(node < node_count());
}

SimTime ThreadMachine::now(NodeId node) const {
  HAL_ASSERT(node < node_count());
  return static_cast<SimTime>(clock_.now_ns());
}

void ThreadMachine::wake_all() noexcept {
  for (auto& rec : nodes_) {
    {
      std::lock_guard lock(rec->mutex);
      ++rec->wake_gen;
    }
    rec->cv.notify_all();
  }
}

void ThreadMachine::wake_hook() noexcept { wake_all(); }

void ThreadMachine::node_loop(NodeId node) {
  NodeRec& rec = *nodes_[node];
  NodeClient& c = client(node);
  // This thread IS node `node` for its whole lifetime (§3: one execution
  // stream per node); bind it so affinity guards can attribute touches.
  check::ScopedExecutionNode scope(node);

  while (!stop_requested()) {
    bool did_work = false;
    // Drain the mailbox through the shared demux: link-layer packets are
    // deduped/reordered/acked in the endpoint, everything else reaches the
    // client directly; each physical packet is counted in the handled epoch.
    if (exec_.drain(node, *this) > 0) did_work = true;
    if (exec_.step_quantum(node, 1) > 0) did_work = true;
    // Holdoff expiry is polled from the node's own loop (wall-clock timers
    // stay on the owning thread, like the link retransmission timer); a
    // frame never outlives its deadline by more than one quantum. Gated on
    // an open frame existing: a busy receiver with nothing batched must not
    // pay a clock read per loop iteration.
    if (batching_active() && frame_deadline(node) != 0) {
      flush_due_frames(node, now(node));
    }
    if (did_work) continue;

    // Busy -> idle: ship held frames before polling for more work, so a
    // receiver never waits out a holdoff that outlived the sender's burst.
    if (batching_active()) flush_frames(node, FlushCause::kIdle);

    // Idle transition. Snapshot the wake generation first: a work-hint or
    // stop wake that fires from here on is caught by the wait predicate, so
    // the on_idle() poll below always sees the freshest global state.
    std::uint64_t gen;
    {
      std::lock_guard lock(rec.mutex);
      gen = rec.wake_gen;
    }
    c.on_idle();  // may send packets (load-balancer poll)
    // on_idle's own sends (a steal poll, say) must not sit in a frame on an
    // idle node either.
    if (batching_active()) flush_frames(node, FlushCause::kIdle);
    if (!exec_.mailbox_empty(node) || c.has_work()) continue;  // re-drain

    // An idle client may still want servicing later (service_deadline), e.g.
    // the balancer's backed-off repoll; bound the parks below by it.
    const SimTime svc = c.service_deadline();

    if (exec_.has_unacked(node)) {
      // Unacked masters: this node still owes wire work (a drop may need
      // retransmitting), so it must NOT join the idle set — staying active
      // keeps the detector's double scan returning kBusy, which is what
      // makes loss unable to fake quiescence. Park with a deadline instead
      // of deactivating; a timeout fires the retransmission timer on this
      // node's own thread (endpoint state stays single-threaded).
      SimTime deadline = exec_.link_deadline(node);
      if (svc != 0 && (deadline == 0 || svc < deadline)) deadline = svc;
      park(rec, node, gen, deadline);
      if (!stop_requested() && exec_.mailbox_empty(node)) {
        exec_.fire_link_timer(node, now(node), *this);
      }
      continue;  // re-drain (an ack may have landed), then re-idle
    }

    // Leave the active set, then ask the detector whether the whole machine
    // is done. The last node to deactivate is guaranteed to see a passing
    // double scan (termination.hpp, point 4), so nobody sleeps through
    // quiescence. A kBusy verdict is always safe: some packet, active node,
    // or token will wake us (or already queued into us — the predicate
    // re-checks under the mutex).
    TerminationDetector& detector = exec_.detector();
    detector.deactivate(node);
    switch (detector.check([this] { return tokens(); })) {
      case TerminationDetector::Verdict::kQuiescent:
        stop();  // wake_hook() rouses every sleeping node; they see stop
        return;
      case TerminationDetector::Verdict::kStalled:
        // Mirrors SimMachine's end-of-run assert: every node idle, nothing
        // in flight, yet work tokens outstanding — a protocol deadlock
        // (e.g. a message parked on an FIR whose response was lost). Fail
        // fast instead of hanging the process.
        HAL_PANIC(
            "ThreadMachine: all nodes idle with work tokens outstanding "
            "(protocol deadlock?)");
      case TerminationDetector::Verdict::kBusy:
        break;
    }
    // Timed park when the client has a service deadline (backed-off
    // balancer repoll), untimed otherwise.
    park(rec, node, gen, svc);
    detector.activate(node);
    // Loop around: drain the queue, or re-run the idle poll if this was a
    // generation wake (work appeared elsewhere — the balancer may want to
    // steal some of it).
  }
}

void ThreadMachine::park(NodeRec& rec, NodeId node, std::uint64_t gen,
                         SimTime deadline) {
  std::unique_lock lock(rec.mutex);
  for (;;) {
    // Re-arm before EVERY predicate evaluation — not once before the first
    // wait. A completed push can be unreachable behind another producer's
    // half-finished one (mpsc_queue.hpp, empty()), so a single check after a
    // wakeup can read "empty" over a non-empty mailbox while `sleeping` is
    // already false; the producer that closes the gap would then skip its
    // notify and we would sleep over its packet forever. With the arm here,
    // every producer RMW after it reads true and notifies under our mutex,
    // and every producer RMW before it synchronizes-with the arm through
    // the seq_cst RMW chain, making its pushes — including the gap-closing
    // next-pointer store — visible to the check below. Full proof in send().
    rec.sleeping.arm();
    if (!exec_.mailbox_empty(node) || stop_requested() ||
        rec.wake_gen != gen) {
      break;
    }
    if (deadline != 0) {
      if (rec.cv.wait_until(lock,
                            epoch_ + std::chrono::nanoseconds(deadline)) ==
          std::cv_status::timeout) {
        break;  // deadline work (link timer, service poll) is due
      }
    } else {
      rec.cv.wait(lock);
    }
  }
  rec.sleeping.disarm();
}

void ThreadMachine::run() {
  std::vector<std::jthread> threads;
  threads.reserve(node_count());
  for (NodeId n = 0; n < node_count(); ++n) {
    threads.emplace_back([this, n] { node_loop(n); });
  }
  // jthread joins on destruction; run() returns once every node loop exits.
}

}  // namespace hal::am
