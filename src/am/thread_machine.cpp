#include "am/thread_machine.hpp"

#include <utility>

namespace hal::am {

using namespace std::chrono_literals;

ThreadMachine::ThreadMachine(NodeId nodes, CostModel costs)
    : Machine(nodes, costs), epoch_(std::chrono::steady_clock::now()) {
  nodes_.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeRec>());
  }
}

ThreadMachine::~ThreadMachine() = default;

void ThreadMachine::send(Packet p) {
  check_packet(p);
  NodeRec& dst = *nodes_[p.dst];
  packets_sent_.fetch_add(1, std::memory_order_acq_rel);
  dst.queue.push(std::move(p));
  dst.cv.notify_one();
}

void ThreadMachine::charge(NodeId node, SimTime /*ns*/) {
  HAL_ASSERT(node < node_count());
}

SimTime ThreadMachine::now(NodeId node) const {
  HAL_ASSERT(node < node_count());
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool ThreadMachine::quiescent() const {
  for (const auto& rec : nodes_) {
    if (!rec->idle.load(std::memory_order_acquire)) return false;
  }
  const auto sent = packets_sent_.load(std::memory_order_acquire);
  const auto handled = packets_handled_.load(std::memory_order_acquire);
  if (sent != handled || tokens() != 0) return false;
  // Double scan: a send that raced the first pass would have bumped
  // packets_sent_ (senders increment before pushing) or cleared an idle
  // flag by the time we re-read. New sends can only originate from a
  // non-idle node, so a stable snapshot proves quiescence.
  for (const auto& rec : nodes_) {
    if (!rec->idle.load(std::memory_order_acquire)) return false;
  }
  return packets_sent_.load(std::memory_order_acquire) == sent &&
         packets_handled_.load(std::memory_order_acquire) == sent &&
         tokens() == 0;
}

void ThreadMachine::node_loop(NodeId node) {
  NodeRec& rec = *nodes_[node];
  NodeClient& c = client(node);
  bool idle_notified = false;

  while (!stop_requested()) {
    bool did_work = false;
    while (auto p = rec.queue.pop()) {
      c.handle(std::move(*p));
      packets_handled_.fetch_add(1, std::memory_order_acq_rel);
      did_work = true;
    }
    if (c.step()) did_work = true;
    if (did_work) {
      idle_notified = false;
      continue;
    }
    if (!idle_notified) {
      idle_notified = true;
      c.on_idle();  // may send packets (load-balancer poll)
      continue;     // re-drain: the poll's reply may already be queued
    }
    // Genuinely idle: advertise it, then either detect global quiescence or
    // sleep until a packet arrives.
    rec.idle.store(true, std::memory_order_release);
    if (rec.queue.empty() && quiescent()) {
      stop();
      for (auto& other : nodes_) other->cv.notify_all();
      rec.idle.store(false, std::memory_order_release);
      return;
    }
    {
      std::unique_lock lock(rec.mutex);
      rec.cv.wait_for(lock, 200us, [&] {
        return !rec.queue.empty() || stop_requested();
      });
    }
    rec.idle.store(false, std::memory_order_release);
    // Re-arm the idle notification: a node that stays idle re-polls (e.g.
    // the load balancer) every wakeup, like an idle PE spinning in its
    // polling loop on the real machine.
    idle_notified = false;
  }
}

void ThreadMachine::run() {
  std::vector<std::jthread> threads;
  threads.reserve(node_count());
  for (NodeId n = 0; n < node_count(); ++n) {
    threads.emplace_back([this, n] { node_loop(n); });
  }
  // jthread joins on destruction; run() returns once every node loop exits.
}

}  // namespace hal::am
