#include "am/wire_batch.hpp"

#include <algorithm>

namespace hal::am {

void FrameBuilder::add(Packet p, SimTime now, const BatchConfig& cfg,
                       BufferPool& pool) {
  if (count_ == 0) {
    HAL_ASSERT(buf_.empty());
    buf_ = pool.reserve(cfg.max_frame_bytes);
    if (holdoff_ == 0) holdoff_ = cfg.holdoff_ns;
    deadline_ = now + holdoff_;
  }
  const std::uint8_t nwords = frame_used_words(p);
  const auto plen = static_cast<std::uint16_t>(p.payload.size());
  const std::uint8_t flags = 0;
  const std::size_t off = buf_.size();
  buf_.resize(off + frame_record_size(p));  // within reserve: no allocation
  std::byte* out = buf_.data() + off;
  std::memcpy(out, &p.handler, sizeof(p.handler));
  out += sizeof(p.handler);
  std::memcpy(out, &plen, sizeof(plen));
  out += sizeof(plen);
  std::memcpy(out, &nwords, sizeof(nwords));
  out += sizeof(nwords);
  std::memcpy(out, &flags, sizeof(flags));
  out += sizeof(flags);
  std::memcpy(out, &p.stamp, sizeof(p.stamp));
  out += sizeof(p.stamp);
  if (nwords != 0) {
    std::memcpy(out, p.words.data(), nwords * sizeof(std::uint64_t));
    out += nwords * sizeof(std::uint64_t);
  }
  if (plen != 0) std::memcpy(out, p.payload.data(), plen);
  ++count_;
  // The record now carries the message; the packet's own payload buffer
  // retires immediately into the sending node's pool.
  pool.release(std::move(p.payload));
}

Packet FrameBuilder::close(NodeId src, NodeId dst, FlushCause cause,
                           const BatchConfig& cfg) {
  HAL_ASSERT(count_ != 0);
  if (cfg.adaptive && cause == FlushCause::kTimer) {
    // Only timer flushes teach us anything: a fill flush closed before the
    // deadline mattered (raising the holdoff there would just tax the next
    // latency-critical singleton on a bursty channel), and idle/barrier
    // flushes are forced. A nearly-full timeout means the deadline was
    // slightly too short for the burst — wait longer and reach fill next
    // time; a near-empty timeout means the traffic is latency-bound — stop
    // making it wait.
    if (count_ >= cfg.max_msgs / 2) {
      holdoff_ = std::min<SimTime>(holdoff_ * 2, cfg.holdoff_max_ns);
    } else if (count_ < cfg.max_msgs / 4) {
      holdoff_ = std::max<SimTime>(holdoff_ / 2, cfg.holdoff_min_ns);
    }
  }
  Packet f;
  f.src = src;
  f.dst = dst;
  f.frame = true;
  f.words[0] = count_;
  f.payload = std::move(buf_);
  buf_ = Bytes{};
  count_ = 0;
  deadline_ = 0;
  return f;
}

void FrameBuilder::abandon(BufferPool& pool) {
  if (count_ == 0) return;
  pool.release(std::move(buf_));
  buf_ = Bytes{};
  count_ = 0;
  deadline_ = 0;
}

bool FrameReader::next(Packet& out, BufferPool& pool) {
  if (decoded_ == expected_) {
    // A frame is delivered whole or not at all (the link retransmits whole
    // frames), so the byte cursor must land exactly on the end.
    HAL_ASSERT(pos_ == frame_.payload.size());
    return false;
  }
  const Bytes& buf = frame_.payload;
  HAL_ASSERT(pos_ + kFrameRecordHeader <= buf.size());
  std::uint32_t handler = 0;
  std::uint16_t plen = 0;
  std::uint8_t nwords = 0;
  std::uint8_t flags = 0;
  SimTime stamp = 0;
  const std::byte* in = buf.data() + pos_;
  std::memcpy(&handler, in, sizeof(handler));
  in += sizeof(handler);
  std::memcpy(&plen, in, sizeof(plen));
  in += sizeof(plen);
  std::memcpy(&nwords, in, sizeof(nwords));
  in += sizeof(nwords);
  std::memcpy(&flags, in, sizeof(flags));
  in += sizeof(flags);
  std::memcpy(&stamp, in, sizeof(stamp));
  in += sizeof(stamp);
  HAL_ASSERT(nwords <= kPacketWords);
  HAL_ASSERT(flags == 0);
  const std::size_t body = nwords * sizeof(std::uint64_t) + plen;
  HAL_ASSERT(pos_ + kFrameRecordHeader + body <= buf.size());
  out = Packet{};
  out.src = frame_.src;
  out.dst = frame_.dst;
  out.handler = handler;
  out.stamp = stamp;
  // Redelivered frames redeliver every record: the kernel's redelivery
  // probe spans each record's original stamp to its final delivery.
  out.retransmitted = frame_.retransmitted;
  if (nwords != 0) {
    std::memcpy(out.words.data(), in, nwords * sizeof(std::uint64_t));
    in += nwords * sizeof(std::uint64_t);
  }
  if (plen != 0) {
    out.payload = pool.acquire(plen);
    std::memcpy(out.payload.data(), in, plen);
  }
  pos_ += kFrameRecordHeader + body;
  ++decoded_;
  return true;
}

}  // namespace hal::am
