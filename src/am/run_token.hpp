// Run-token state machine: the per-node cell that guarantees each node has
// at most one run token machine-wide and exactly one running worker.
//
// Extracted from MnMachine into a checkable unit: the executor instantiates
// it with `StdAtomics` (behavior unchanged — same enum, same CAS loop, same
// seq_cst orders) and hal-mc instantiates it with model atomics to explore
// the sender/runner interleavings (docs/model-checking.md).
//
// Protocol:
//
//            publish() wins CAS            begin_quantum()
//    kIdle ----------------------> kQueued ---------------> kRunning
//      ^                              ^                     |   |
//      |   retire_or_requeue() CAS    |      requeue()      |   | publish()
//      +------------------------------+---------------------+   | mid-quantum
//                                     |                         v
//                                     +----------------- kRunningNotified
//                                      retire_or_requeue() sees the flag
//
// Every transition is a seq_cst RMW (or a store sequenced inside the
// token-holder's quantum), so successive owners of the token are linked by
// a happens-before chain through the cell: the plain per-node fields (the
// kernel, probes, buffer pool, link endpoint — everything single-writer)
// are handed over race-free. The two safety properties hal-mc checks:
//
//   * exactly-one-runner: between a begin_quantum() and its matching
//     retire/requeue, no other thread's begin_quantum() can run (publish()
//     can only reach kQueued/kRunningNotified, never a second kRunning).
//   * no lost unit: a publish() that runs after a unit of work became
//     visible either wins Idle→Queued (a fresh token exists), observes a
//     pending token (kQueued/kRunningNotified — its quantum will look), or
//     flags the in-progress quantum (kRunning→kRunningNotified — the
//     runner's retire CAS fails and requeues). No interleaving strands the
//     unit in an unscheduled mailbox.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/assert.hpp"
#include "common/atomic_policy.hpp"
#include "common/lint_markers.hpp"

namespace hal::am {

/// `Policy` supplies the atomic state cell (common/atomic_policy.hpp).
template <typename Policy = StdAtomics>
class RunTokenCell {
  // Binds this class to hal-lint HL007's `run_tokens` policy: every state
  // transition stays seq_cst (the happens-before chain between successive
  // token owners rides these RMWs).
  HAL_MEMORY_PROTOCOL("run_tokens");

 public:
  enum class State : std::uint8_t {
    kIdle,             ///< no token anywhere; next sender publishes one
    kQueued,           ///< token in some run queue, awaiting a worker
    kRunning,          ///< a worker is executing a quantum
    kRunningNotified,  ///< running, and work arrived: runner must requeue
  };

  /// A unit of work became visible on this node. Returns true when the
  /// caller won the Idle→Queued race and MUST publish the node's one run
  /// token (count it, push it into a run queue); false when a token is
  /// already pending or the in-progress quantum has been flagged.
  bool publish() noexcept {
    State cur = state_.load(std::memory_order_seq_cst);
    for (;;) {
      switch (cur) {
        case State::kIdle:
          // Win the CAS → this thread publishes the node's one run token.
          if (state_.compare_exchange_weak(cur, State::kQueued,
                                           std::memory_order_seq_cst)) {
            return true;
          }
          break;  // cur reloaded; retry
        case State::kRunning:
          // A quantum is in progress. Flag it: the runner's retire CAS
          // (Running→Idle) fails and requeues, so the unit we just made
          // visible cannot be stranded in an unscheduled mailbox.
          if (state_.compare_exchange_weak(cur, State::kRunningNotified,
                                           std::memory_order_seq_cst)) {
            return false;
          }
          break;
        case State::kQueued:
        case State::kRunningNotified:
          return false;  // token already pending; its quantum sees our unit
      }
    }
  }

  /// The worker that popped this node's token starts its quantum.
  void begin_quantum() noexcept {
    [[maybe_unused]] const State prev =
        state_.exchange(State::kRunning, std::memory_order_seq_cst);
    HAL_DASSERT(prev == State::kQueued);
  }

  /// End of quantum with work remaining: the runner keeps the token and
  /// re-publishes it itself (round-robin fairness among runnable nodes).
  void requeue() noexcept {
    state_.store(State::kQueued, std::memory_order_seq_cst);
  }

  /// End of quantum with no work observed. Returns false when the node went
  /// Idle; true when a sender flagged new work mid-quantum (the CAS lost to
  /// kRunningNotified — between the runner's mailbox check and this CAS the
  /// state can only move Running→RunningNotified, so the racing unit is
  /// covered): the cell is back to kQueued and the caller MUST re-publish
  /// the token.
  bool retire_or_requeue() noexcept {
    State expected = State::kRunning;
    if (state_.compare_exchange_strong(expected, State::kIdle,
                                       std::memory_order_seq_cst)) {
      return false;
    }
    HAL_DASSERT(expected == State::kRunningNotified);
    state_.store(State::kQueued, std::memory_order_seq_cst);
    return true;
  }

  /// Snapshot for the home-node sweep: true iff no token is pending.
  bool idle() const noexcept {
    return state_.load(std::memory_order_seq_cst) == State::kIdle;
  }

 private:
  typename Policy::template Atomic<State> state_{State::kIdle};
};

}  // namespace hal::am
