// Three-phase bulk transfer with minimal flow control (§6.5).
//
// Active messages are not buffered, so sending bulk data requires a
// three-phase protocol: the sender issues a REQUEST, the receiver's node
// manager answers with an ACK (the grant), and only then does the sender
// stream DATA chunks. The paper's *minimal flow control* is the grant
// policy: "a node manager controls sending the acknowledgment for a bulk
// data transfer request ... so that only one such transfer is active at a
// time". That serialization is what makes software pipelining work (their
// Cholesky result, Table 1) — bench/ablation_flowcontrol reproduces the
// effect by toggling set_flow_control().
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "am/machine.hpp"
#include "check/protocol.hpp"
#include "common/buffer_pool.hpp"
#include "common/inline_function.hpp"
#include "common/stats.hpp"
#include "obs/probe_recorder.hpp"

namespace hal::am {

/// Handler ids the owning NodeClient must route to on_request / on_ack /
/// on_data. The kernel assigns these from its handler namespace.
struct BulkHandlers {
  std::uint32_t request = 0;
  std::uint32_t ack = 0;
  std::uint32_t data = 0;
};

/// Per-node endpoint of the bulk protocol. Single-threaded: owned and driven
/// entirely by one node's execution stream.
class BulkChannel {
 public:
  /// Completed-transfer callback: (src node, tag, meta words, data).
  /// Inline callable — constructed once per kernel, but invoked on the
  /// AM-handler path, so it must carry no hidden heap machinery.
  using DeliverFn =
      InlineFunction<void(NodeId src, std::uint64_t tag,
                          const std::array<std::uint64_t, 2>& meta,
                          Bytes data)>;

  /// `pool` recycles transfer buffers (assembly targets, DATA chunk
  /// payloads); it is the owning kernel's pool, touched only on this node's
  /// execution stream.
  BulkChannel(Machine& machine, NodeId self, BulkHandlers handlers,
              StatBlock& stats, obs::ProbeRecorder& probes, BufferPool& pool,
              DeliverFn deliver);

  /// Begin a transfer; returns the local transfer id. The data is held until
  /// the receiver grants the transfer. `tag`/`meta` travel with the REQUEST
  /// and are handed to the receiver's DeliverFn on completion.
  std::uint64_t send(NodeId dst, std::uint64_t tag,
                     const std::array<std::uint64_t, 2>& meta, Bytes data);

  /// Route an incoming packet (handler must be one of ours).
  void route(const Packet& p);

  /// Flow control on (default): one active inbound transfer at a time;
  /// further REQUESTs queue for the grant. Off: every REQUEST is ACKed
  /// immediately (the paper's broken-pipelining baseline).
  void set_flow_control(bool enabled) noexcept {
    flow_control_ = enabled;
    audit_.configure(self_, enabled);
  }
  bool flow_control() const noexcept { return flow_control_; }

  /// Transfers currently granted but not yet fully received.
  std::size_t inbound_active() const noexcept { return inbound_.size(); }
  /// Outbound transfers awaiting a grant or mid-stream.
  std::size_t outbound_pending() const noexcept { return outbound_.size(); }

 private:
  struct Outbound {
    NodeId dst;
    Bytes data;
  };
  struct Inbound {
    std::uint64_t tag = 0;
    std::array<std::uint64_t, 2> meta{};
    Bytes data;
    std::size_t received = 0;
    SimTime started_at = 0;  // sender-side REQUEST injection time
  };
  struct PendingGrant {
    NodeId src;
    std::uint64_t id;
    std::uint64_t size;
    std::uint64_t tag;
    std::array<std::uint64_t, 2> meta;
    SimTime started_at = 0;  // sender-side REQUEST injection time
    SimTime queued_at = 0;   // when flow control parked the grant here
  };

  void on_request(const Packet& p);
  void on_ack(const Packet& p);
  void on_data(const Packet& p);
  void grant(const PendingGrant& g);
  void pump_grants();
  static std::uint64_t key(NodeId src, std::uint64_t id) {
    return (static_cast<std::uint64_t>(src) << 40) ^ id;
  }

  Machine& machine_;
  NodeId self_;
  BulkHandlers handlers_;
  StatBlock& stats_;
  obs::ProbeRecorder& probes_;
  BufferPool& pool_;
  DeliverFn deliver_;
  std::uint64_t next_id_ = 1;
  bool flow_control_ = true;
  std::uint64_t active_inbound_grants_ = 0;
  /// hal::check: audits the single-credit grant window (§6.5).
  check::CreditWindowAuditor audit_;
  std::unordered_map<std::uint64_t, Outbound> outbound_;        // by local id
  std::unordered_map<std::uint64_t, Inbound> inbound_;          // by key()
  std::deque<PendingGrant> grant_queue_;
};

}  // namespace hal::am
