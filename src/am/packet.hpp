// Active-message packet, modeled on CMAM [von Eicken et al. 92].
//
// A packet names a handler on the destination node and carries a small fixed
// number of argument words; the handler runs on the receiving node's
// execution stream ("the node manager steals the processor from the actor
// that is currently executing", §3). Packets are *not* buffered by the
// network layer beyond the destination endpoint queue — bulk data must go
// through the three-phase protocol in am/bulk.hpp, mirroring the paper's
// CMAM customization (§6.5).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace hal::am {

/// Number of argument words a packet carries (CMAM handlers take 4-5 words;
/// we use 6 so an actor-message header — destination address, selector,
/// continuation — fits in one packet).
inline constexpr std::size_t kPacketWords = 6;

/// Payload bytes allowed on a plain (non-bulk) packet. Larger actor-message
/// payloads must go through the three-phase bulk protocol — enforced by the
/// node manager at send time. 512 B models a short train of back-to-back
/// network packets, which is how the paper's communication module sends
/// medium actor messages.
inline constexpr std::size_t kMaxInlinePayload = 512;

/// Chunk size of the bulk-transfer DATA phase; also the hard per-packet
/// payload cap enforced by Machine::send.
inline constexpr std::size_t kBulkChunkBytes = 4096;

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t handler = 0;
  std::array<std::uint64_t, kPacketWords> words{};
  /// ≤ kMaxInlinePayload except for bulk DATA chunks. For actor messages
  /// the layout is Message::encode_body_into's: the inline argument words
  /// (count announced in the header's sel/argc word) followed directly by
  /// the bulk-argument bytes — no length word; the remainder of the buffer
  /// *is* the message payload, so an arg-only message costs zero payload
  /// bytes. Buffers come from the sending kernel's BufferPool and retire
  /// into the receiving kernel's pool after the handler runs.
  Bytes payload;
  /// Injection timestamp, stamped by Machine::send — virtual ns under
  /// SimMachine, wall ns under ThreadMachine. Feeds the delivery-latency
  /// probes; not part of the modeled wire format (the real CMAM packet has
  /// no room for it — a hardware implementation would timestamp at the NI).
  SimTime stamp = 0;
  /// Reliable-link sequence number on the (src, dst) channel, assigned by
  /// LinkEndpoint when fault injection is enabled. 0 = unsequenced: the
  /// packet bypassed the link layer (faults disabled, or loopback).
  std::uint64_t link_seq = 0;
  /// Link-control acknowledgement: link_seq carries the cumulative
  /// sequence received in order; no handler runs for these.
  bool link_ack = false;
  /// This physical copy is a retransmission. Retransmits keep the original
  /// `stamp`, so the kernel's redelivery probe spans first-send to
  /// final-delivery — the latency the destination actor actually saw.
  bool retransmitted = false;
  /// Destination-coalesced wire frame (am/wire_batch.hpp): words[0] is the
  /// record count, the payload is the concatenated records. Frames pass
  /// through the link layer as single packets (sequenced, retransmitted and
  /// deduped whole) and are decoded back into per-message handler calls by
  /// Machine::deliver_to_client on the receiving node's stream.
  bool frame = false;
  /// Latency-critical control traffic (e.g. the load balancer's steal
  /// request/deny round trip): never coalesced into a frame — a held deny
  /// would stretch the steal RTT by a whole holdoff. Urgent sends still
  /// flush the channel's open frame first, preserving per-channel FIFO.
  bool urgent = false;
};

}  // namespace hal::am
