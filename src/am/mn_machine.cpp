#include "am/mn_machine.hpp"

#include <bit>
#include <thread>
#include <utility>
#include <vector>

#include "check/affinity.hpp"

namespace hal::am {

thread_local int MnMachine::tl_worker_ = -1;

namespace {

std::uint32_t clamp_workers(std::uint32_t requested, NodeId nodes) {
  std::uint32_t w = requested;
  if (w == 0) {
    w = std::thread::hardware_concurrency();
    if (w == 0) w = 2;  // hardware_concurrency may be unknown
  }
  if (w > nodes) w = nodes;
  return w == 0 ? 1 : w;
}

}  // namespace

MnMachine::MnMachine(NodeId nodes, CostModel costs, std::uint32_t workers)
    : Machine(nodes, costs),
      workers_n_(clamp_workers(workers, nodes)),
      slots_(nodes),
      exec_(*this, /*participants=*/clamp_workers(workers, nodes),
            /*mailboxes=*/true),
      epoch_(std::chrono::steady_clock::now()) {
  for (NodeId n = 0; n < nodes; ++n) {
    slots_[n].id = n;
    slots_[n].home = n % workers_n_;
  }
  // Each node holds at most one run token machine-wide, so a deque sized to
  // the node count can never overflow even if every token lands on one
  // worker.
  const std::size_t cap =
      std::bit_ceil(static_cast<std::size_t>(nodes) + 1);
  workers_.reserve(workers_n_);
  for (std::uint32_t w = 0; w < workers_n_; ++w) {
    workers_.push_back(std::make_unique<WorkerRec>(
        w, cap, 0x6d6e5eedULL ^ (static_cast<std::uint64_t>(w) << 32)));
  }
}

MnMachine::~MnMachine() = default;

void MnMachine::configure_faults(const FaultConfig& cfg) {
  FaultConfig scrubbed = cfg;
  scrubbed.delay = 0.0;
  Machine::configure_faults(scrubbed);
  std::lock_guard lock(timers_mutex_);
  timer_deadlines_.clear();
}

void MnMachine::send(Packet p) {
  check_packet(p);
  p.stamp = now(p.src);
  if (batch_eligible(p)) {
    // Coalesced path: accumulate in the per-destination frame. Runs on the
    // source node's execution stream (its current worker, or the bootstrap
    // thread before run()), so the aggregator needs no locking; the node's
    // own quantum flushes on fill, holdoff expiry and the busy->idle
    // transition (run_node).
    const SimTime t = p.stamp;
    batch_append(std::move(p), t);
    return;
  }
  // Unbatchable traffic flushes the channel's open frame first so
  // per-channel FIFO order holds across the batched/unbatched boundary.
  if (batching_active() && p.src != p.dst) batch_barrier(p.src, p.dst);
  if (links_active() && p.src != p.dst) {
    // Faulty wire: sequence + file a retransmit master; the link calls back
    // into link_transmit for every physical copy that survives the
    // injector. Runs on the source node's execution stream (its current
    // worker), so the endpoint needs no locking. The node's retransmission
    // deadline is published at the end of its quantum (update_link_timer);
    // bootstrap masters are covered by the priming sweep in run().
    const NodeId src = p.src;
    link(src).send_data(std::move(p), now(src), *this);
    return;
  }
  post_and_schedule(std::move(p));
}

void MnMachine::link_transmit(Packet p,
                              [[maybe_unused]] SimTime extra_delay_ns) {
  HAL_DASSERT(extra_delay_ns == 0);  // delay scrubbed in configure_faults
  post_and_schedule(std::move(p));
}

void MnMachine::link_deliver(Packet p) {
  // Frames decode into a burst of records here; plain packets pass through.
  const NodeId dst = p.dst;
  deliver_to_client(dst, std::move(p));
}

void MnMachine::post_and_schedule(Packet p) {
  // Mailbox push first (with its note_sent), then the run token: a consumer
  // that acquires the token is guaranteed to see the packet.
  const NodeId dst = p.dst;
  exec_.post(std::move(p));
  schedule(dst);
}

void MnMachine::charge(NodeId node, SimTime /*ns*/) {
  HAL_ASSERT(node < node_count());
}

SimTime MnMachine::now(NodeId node) const {
  HAL_ASSERT(node < node_count());
  return static_cast<SimTime>(clock_.now_ns());
}

void MnMachine::schedule(NodeId node) {
  // The Idle/Queued/Running/RunningNotified transition logic lives in
  // RunTokenCell::publish (am/run_token.hpp); a true return means this
  // thread won the Idle→Queued race and owes the machine one enqueue.
  NodeSlot& s = slots_[node];
  if (s.token.publish()) enqueue(s);
}

void MnMachine::enqueue(NodeSlot& s) {
  // Run tokens are epoch-counted units exactly like packets: note_sent
  // before the token becomes visible, note_handled when its quantum ends
  // (run_node). sent == handled therefore proves no token hides in any run
  // queue — the detector's double scan stays exact at P >> N.
  exec_.detector().note_sent();
  const int self = tl_worker_;
  if (self >= 0) {
    // On-pool: keep the node where its traffic originates (locality);
    // thieves rebalance from the top of the deque.
    workers_[static_cast<std::size_t>(self)]->local.push_bottom(&s);
    maybe_wake_thief();
  } else {
    // Off-pool (bootstrap sends before run()): hand the token to the node's
    // home worker through its MPSC inject queue.
    WorkerRec& rec = *workers_[s.home];
    rec.inject.push(s.id);
    wake_worker(rec);
  }
}

void MnMachine::wake_worker(WorkerRec& rec) noexcept {
  // Same seq_cst RMW handshake as ThreadMachine::raw_push (proof there and
  // at am/park_handshake.hpp): the push above this call is visible to the
  // wait predicate, and a notify under the mutex cannot land between
  // predicate check and park.
  if (rec.sleeping.claim_wake()) {
    std::lock_guard lock(rec.mutex);
    rec.cv.notify_one();
  }
}

void MnMachine::maybe_wake_thief() noexcept {
  // Advisory only: a parked worker is roused to come steal. Correctness
  // never depends on this wake — a token in our own deque is consumed by us
  // if nobody steals it — so a missed flag read costs throughput, nothing
  // else.
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  for (auto& rec : workers_) {
    if (rec->sleeping.armed_hint()) {
      {
        std::lock_guard lock(rec->mutex);
        ++rec->wake_gen;
      }
      rec->cv.notify_one();
      return;
    }
  }
}

void MnMachine::wake_hook() noexcept {
  // The global run state changed (stop, or the work hint went positive).
  // Bump the wake epoch so idle nodes re-run on_idle (the balancer re-poll
  // ThreadMachine gets by waking every node thread), then wake every worker.
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  for (auto& rec : workers_) {
    {
      std::lock_guard lock(rec->mutex);
      ++rec->wake_gen;
    }
    rec->cv.notify_all();
  }
}

MnMachine::NodeSlot* MnMachine::next_runnable(WorkerRec& rec) {
  // Tokens injected off-pool surface into the owner's deque first so they
  // become stealable like everything else.
  while (auto n = rec.inject.pop()) {
    rec.local.push_bottom(&slots_[*n]);
  }
  if (NodeSlot* s = rec.local.pop_bottom()) return s;
  if (workers_n_ > 1) {
    // Random victims first (Kumar-style), then one deterministic sweep so
    // an available token is never missed by bad luck alone.
    for (std::uint32_t i = 0; i < workers_n_; ++i) {
      const auto v =
          static_cast<std::uint32_t>(rec.rng.below(workers_n_));
      if (v == rec.index) continue;
      if (NodeSlot* s = workers_[v]->local.steal_top()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return s;
      }
    }
    for (std::uint32_t v = 0; v < workers_n_; ++v) {
      if (v == rec.index) continue;
      if (NodeSlot* s = workers_[v]->local.steal_top()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return s;
      }
    }
  }
  return nullptr;
}

void MnMachine::run_node(NodeSlot& s) {
  const NodeId n = s.id;
  s.token.begin_quantum();
  bool more;
  {
    // This worker IS node n for the duration of the quantum (one execution
    // stream per node); the seq_cst state RMWs carry the happens-before
    // edge from the previous owner, so every per-node structure is handed
    // over race-free.
    check::ScopedExecutionNode scope(n);
    NodeClient& c = client(n);
    const std::size_t drained = exec_.drain(n, *this, kDrainQuantum);
    const std::size_t stepped = exec_.step_quantum(n, kStepQuantum);
    if (drained + stepped > 0) s.idle_notified = false;
    // Holdoff expiry rides the node's own quantum (the frame owner's
    // stream), like the link retransmission timer below; a frame never
    // outlives its deadline by more than one quantum of its runnable node.
    // Gated on an open frame existing: a busy receiver with nothing batched
    // must not pay a clock read per quantum.
    if (batching_active() && frame_deadline(n) != 0) {
      flush_due_frames(n, now(n));
    }
    // A due service deadline re-arms on_idle: the client asked to be
    // serviced at that time (e.g. the balancer's backed-off repoll).
    if (s.idle_notified) {
      const SimTime sd = c.service_deadline();
      if (sd != 0 && sd <= now(n)) s.idle_notified = false;
    }
    more = !exec_.mailbox_empty(n) || c.has_work();
    if (!more) {
      // Busy→idle: ship held frames before the node's run token is retired,
      // so a receiver never waits out a holdoff that outlived the sender's
      // burst — and so no idle node ever holds a frame (termination).
      if (batching_active()) flush_frames(n, FlushCause::kIdle);
      // Run on_idle once per idle spell, and once more per wake epoch
      // (work-hint edge) so the balancer re-polls.
      const std::uint64_t e = wake_epoch_.load(std::memory_order_acquire);
      if (!s.idle_notified || s.idle_epoch != e) {
        s.idle_notified = true;
        s.idle_epoch = e;
        c.on_idle();  // may send packets (load-balancer poll)
        // on_idle's own sends (a steal poll, say) must not sit in a frame
        // on an idle node either.
        if (batching_active()) flush_frames(n, FlushCause::kIdle);
        more = !exec_.mailbox_empty(n) || c.has_work();
      }
    }
    if (links_active()) {
      // Fire this node's retransmission timer if due (on its own stream,
      // like ThreadMachine's timed park), then publish the next deadline so
      // idle workers know how long the machine still owes wire work.
      const SimTime due = exec_.link_deadline(n);
      if (due != 0 && due <= now(n)) {
        exec_.fire_link_timer(n, now(n), *this);
      }
      update_link_timer(n);
    }
    // Publish/retire the node's service deadline so idle workers know when
    // an otherwise-idle client wants its on_idle re-run (backed-off repoll).
    update_service_timer(s, c);
  }
  if (more) {
    s.token.requeue();
    enqueue(s);
  } else if (s.token.retire_or_requeue()) {
    // A sender saw us running and flagged new work mid-quantum (the retire
    // CAS lost to kRunningNotified — see RunTokenCell): re-publish.
    enqueue(s);
  }
  exec_.detector().note_handled();  // the run token this quantum consumed
}

void MnMachine::sweep_home_nodes(WorkerRec& rec) {
  const bool prime = !rec.primed;
  rec.primed = true;
  // After priming, a sweep only matters while the work hint is positive
  // (idle nodes poll only then — their on_idle is a no-op otherwise, so
  // skipping the quanta entirely is behavior-equivalent and O(P) cheaper).
  if (!prime && work_hint() <= 0) return;
  for (NodeId n = rec.index; n < node_count();
       n += static_cast<NodeId>(workers_n_)) {
    if (prime || slots_[n].token.idle()) {
      schedule(n);
    }
  }
}

void MnMachine::update_link_timer(NodeId node) {
  const SimTime deadline = exec_.link_deadline(node);
  std::lock_guard lock(timers_mutex_);
  if (deadline == 0) {
    timer_deadlines_.erase(node);
  } else {
    timer_deadlines_[node] = deadline;
  }
}

SimTime MnMachine::earliest_link_deadline() {
  if (!links_active()) return 0;
  std::lock_guard lock(timers_mutex_);
  SimTime best = 0;
  for (const auto& [node, deadline] : timer_deadlines_) {
    if (best == 0 || deadline < best) best = deadline;
  }
  return best;
}

void MnMachine::update_service_timer(NodeSlot& s, NodeClient& c) {
  // The published flag is owned by the token holder, so quanta for clients
  // that never request servicing (the common case) skip the mutex entirely.
  const SimTime deadline = c.service_deadline();
  if (deadline == 0 && !s.service_published) return;
  std::lock_guard lock(timers_mutex_);
  if (deadline == 0) {
    service_deadlines_.erase(s.id);
    s.service_published = false;
  } else {
    service_deadlines_[s.id] = deadline;
    s.service_published = true;
  }
}

SimTime MnMachine::earliest_service_deadline() {
  std::lock_guard lock(timers_mutex_);
  SimTime best = 0;
  for (const auto& [node, deadline] : service_deadlines_) {
    if (best == 0 || deadline < best) best = deadline;
  }
  return best;
}

void MnMachine::schedule_due_service() {
  const SimTime t = now(0);
  std::vector<NodeId> due;
  {
    std::lock_guard lock(timers_mutex_);
    for (const auto& [node, deadline] : service_deadlines_) {
      if (deadline <= t) due.push_back(node);
    }
  }
  // The nodes' own quanta re-run on_idle (run_node clears idle_notified when
  // the deadline has passed) and refresh the table entries; schedule() is
  // idempotent while a token is pending.
  for (const NodeId n : due) schedule(n);
}

void MnMachine::schedule_due_links() {
  const SimTime t = now(0);
  std::vector<NodeId> due;
  {
    std::lock_guard lock(timers_mutex_);
    for (const auto& [node, deadline] : timer_deadlines_) {
      if (deadline <= t) due.push_back(node);
    }
  }
  // The nodes' own quanta fire the timers (and refresh the table entries);
  // schedule() is idempotent while a token is pending.
  for (const NodeId n : due) schedule(n);
}

void MnMachine::worker_loop(std::uint32_t w) {
  WorkerRec& rec = *workers_[w];
  tl_worker_ = static_cast<int>(w);
  TerminationDetector& detector = exec_.detector();
  while (!stop_requested()) {
    const std::uint64_t epoch = wake_epoch_.load(std::memory_order_acquire);
    if (epoch != rec.sweep_epoch) {
      rec.sweep_epoch = epoch;
      sweep_home_nodes(rec);
    }
    if (NodeSlot* s = next_runnable(rec)) {
      run_node(*s);
      continue;
    }

    // Idle transition. Snapshot the wake generation first: any wake that
    // fires from here on is caught by the wait predicates below.
    std::uint64_t gen;
    {
      std::lock_guard lock(rec.mutex);
      gen = rec.wake_gen;
    }
    if (!rec.inject.empty()) continue;
    if (wake_epoch_.load(std::memory_order_acquire) != rec.sweep_epoch) {
      continue;  // a wake epoch landed after our sweep: re-sweep, don't park
    }

    SimTime deadline = earliest_link_deadline();
    // A pending service deadline (backed-off repoll) bounds the park too, so
    // an idle node's deferred on_idle fires on time even under faults.
    const SimTime svc = earliest_service_deadline();
    if (deadline != 0) {
      if (svc != 0 && svc < deadline) deadline = svc;
      // Unacked retransmit masters somewhere: the machine still owes wire
      // work, so this worker must NOT join the idle set — staying active
      // keeps the detector's double scan returning kBusy, which is what
      // makes loss unable to fake quiescence (ThreadMachine's unacked-
      // master rule, lifted to the worker pool). Park with the earliest
      // deadline; on timeout, reschedule the due nodes so their quanta fire
      // the retransmission timers on their own streams.
      sleepers_.fetch_add(1, std::memory_order_relaxed);
      park(rec, gen, deadline);
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      if (!stop_requested()) {
        schedule_due_links();
        schedule_due_service();
      }
      continue;
    }

    // Leave the active set, then ask the detector whether the whole machine
    // is done (the proof in termination.hpp: the last worker to deactivate
    // is guaranteed a passing double scan). kBusy is always safe: a token
    // or packet push wakes us through the inject/thief handshakes.
    detector.deactivate(w);
    switch (detector.check([this] { return tokens(); })) {
      case TerminationDetector::Verdict::kQuiescent:
        stop();  // wake_hook rouses every parked worker; they see stop
        return;
      case TerminationDetector::Verdict::kStalled:
        HAL_PANIC(
            "MnMachine: all workers idle with work tokens outstanding "
            "(protocol deadlock?)");
      case TerminationDetector::Verdict::kBusy:
        break;
    }
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    // Timed park when a service deadline is pending (backed-off balancer
    // repoll fires even with no other traffic), untimed otherwise.
    park(rec, gen, svc);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    detector.activate(w);
    if (!stop_requested()) schedule_due_service();
  }
}

void MnMachine::park(WorkerRec& rec, std::uint64_t gen, SimTime deadline) {
  std::unique_lock lock(rec.mutex);
  for (;;) {
    // Re-arm before EVERY predicate evaluation: the inject queue is the same
    // Vyukov MPSC as ThreadMachine's mailboxes, so a completed push can be
    // unreachable behind another producer's half-finished one and a single
    // post-wakeup check could read "empty" with `sleeping` already cleared —
    // the gap-closing producer would then skip its notify and this worker
    // would sleep over a live run token. See ThreadMachine::park for the
    // full happens-before argument.
    rec.sleeping.arm();
    if (!rec.inject.empty() || stop_requested() || rec.wake_gen != gen) break;
    if (deadline != 0) {
      if (rec.cv.wait_until(lock,
                            epoch_ + std::chrono::nanoseconds(deadline)) ==
          std::cv_status::timeout) {
        break;  // deadline work (link timer, service poll) is due
      }
    } else {
      rec.cv.wait(lock);
    }
  }
  rec.sleeping.disarm();
}

void MnMachine::run() {
  std::vector<std::jthread> threads;
  threads.reserve(workers_n_);
  for (std::uint32_t w = 0; w < workers_n_; ++w) {
    threads.emplace_back([this, w] { worker_loop(w); });
  }
  // jthread joins on destruction; run() returns once every worker exits.
}

}  // namespace hal::am
