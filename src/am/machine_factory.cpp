#include "am/machine_factory.hpp"

#include "am/mn_machine.hpp"
#include "am/sim_machine.hpp"
#include "am/thread_machine.hpp"

namespace hal::am {

std::unique_ptr<Machine> make_machine(const RuntimeConfig& config) {
  switch (config.machine) {
    case MachineKind::kSim: {
      auto sim = std::make_unique<SimMachine>(config.nodes, config.costs);
      if (config.sim_event_limit != 0) {
        sim->set_event_limit(config.sim_event_limit);
      }
      return sim;
    }
    case MachineKind::kThread:
      return std::make_unique<ThreadMachine>(config.nodes, config.costs);
    case MachineKind::kMn:
      return std::make_unique<MnMachine>(config.nodes, config.costs,
                                         config.mn_workers);
  }
  HAL_PANIC("make_machine: unknown MachineKind");
}

}  // namespace hal::am
