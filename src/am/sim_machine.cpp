#include "am/sim_machine.hpp"

#include <algorithm>
#include <utility>

#include "check/affinity.hpp"

namespace hal::am {

SimMachine::SimMachine(NodeId nodes, CostModel costs)
    : Machine(nodes, costs),
      clock_(nodes, 0),
      handler_tail_(nodes, 0),
      resume_pending_(nodes, false),
      idle_notified_(nodes, false),
      link_timer_pending_(nodes, false),
      frame_timer_pending_(nodes, false),
      service_pending_(nodes, false) {}

void SimMachine::configure_faults(const FaultConfig& cfg) {
  HAL_ASSERT(!running_);
  Machine::configure_faults(cfg);
  std::fill(link_timer_pending_.begin(), link_timer_pending_.end(), false);
}

void SimMachine::configure_batching(const BatchConfig& cfg) {
  HAL_ASSERT(!running_);
  Machine::configure_batching(cfg);
  std::fill(frame_timer_pending_.begin(), frame_timer_pending_.end(), false);
}

SimTime SimMachine::default_rto() const noexcept {
  // A few simulated round trips, with a floor so degenerate cost models
  // (CostModel::zero) still make forward progress between retries.
  const auto& c = costs();
  const SimTime rtt = c.wire_latency_ns + c.packet_inject_ns +
                      c.handler_entry_ns +
                      c.per_word_ns * static_cast<SimTime>(kPacketWords);
  return std::max<SimTime>(8 * rtt, 1000);
}

void SimMachine::push_event(Event e) {
  e.seq = next_seq_++;
  queue_.push(std::move(e));
}

void SimMachine::schedule_resume(NodeId node) {
  if (resume_pending_[node]) return;
  resume_pending_[node] = true;
  push_event(Event{clock_[node], 0, EventKind::kResume, node, {}});
}

SimTime SimMachine::current_time(NodeId node) const {
  if (in_handler_ && node == handler_node_) return handler_time_;
  return clock_[node];
}

void SimMachine::send(Packet p) {
  check_packet(p);
  const auto& c = costs();
  if (batch_eligible(p)) {
    // Coalesced path: the record pays its per-word/per-byte marshalling
    // now; the fixed injection overhead is deferred to the frame and paid
    // once in wire_inject — the amortization the batching layer models.
    charge(p.src,
           c.per_word_ns * static_cast<SimTime>(kPacketWords) +
               c.payload_byte_ns * static_cast<SimTime>(p.payload.size()));
    p.stamp = current_time(p.src);
    const NodeId src = p.src;
    batch_append(std::move(p), current_time(src));
    schedule_frame_timer(src);
    return;
  }
  // Unbatchable traffic on a channel with an open frame must flush it
  // first, or the frame's records would be reordered behind this packet.
  if (batching_active() && p.src != p.dst) batch_barrier(p.src, p.dst);
  // Sender pays injection: fixed overhead + per-word + per-payload-byte.
  charge(p.src, c.packet_inject_ns +
                    c.per_word_ns * static_cast<SimTime>(kPacketWords) +
                    c.payload_byte_ns * static_cast<SimTime>(p.payload.size()));
  p.stamp = current_time(p.src);
  if (links_active() && p.src != p.dst) {
    // Faulty wire: the reliable link sequences the packet, files its
    // retransmit master, and puts the (possibly mangled) copies on the
    // wire through link_transmit below. Loopback skips the link — a node's
    // own queue cannot drop.
    const NodeId src = p.src;
    link(src).send_data(std::move(p), current_time(src), *this);
    schedule_link_timer(src);
    return;
  }
  const SimTime arrival = p.stamp + c.wire_latency_ns;
  const NodeId dst = p.dst;
  push_event(Event{arrival, 0, EventKind::kDelivery, dst, std::move(p)});
}

void SimMachine::link_transmit(Packet p, SimTime extra_delay_ns) {
  // First transmissions were charged in send(); retransmissions and acks
  // are fresh NI work, billed to whichever stream is currently executing
  // (handler stream when an arrival triggers an ack, method stream when a
  // timer fires).
  if (p.retransmitted || p.link_ack) {
    charge(p.src, costs().packet_inject_ns);
  }
  const SimTime arrival =
      current_time(p.src) + costs().wire_latency_ns + extra_delay_ns;
  const NodeId dst = p.dst;
  push_event(Event{arrival, 0, EventKind::kDelivery, dst, std::move(p)});
}

void SimMachine::link_deliver(Packet p) {
  const NodeId dst = p.dst;
  deliver_to_client(dst, std::move(p));
}

void SimMachine::schedule_link_timer(NodeId node) {
  if (!links_active() || link_timer_pending_[node]) return;
  const SimTime deadline = link(node).next_deadline();
  if (deadline == 0) return;
  link_timer_pending_[node] = true;
  push_event(Event{deadline, 0, EventKind::kLinkTimer, node, {}});
}

void SimMachine::wire_inject(Packet f) {
  // The once-per-frame share of the send cost; every record already paid
  // its marshalling in send().
  charge(f.src, costs().packet_inject_ns);
  f.stamp = current_time(f.src);
  if (links_active() && f.src != f.dst) {
    const NodeId src = f.src;
    link(src).send_data(std::move(f), current_time(src), *this);
    schedule_link_timer(src);
    return;
  }
  const SimTime arrival = f.stamp + costs().wire_latency_ns;
  const NodeId dst = f.dst;
  push_event(Event{arrival, 0, EventKind::kDelivery, dst, std::move(f)});
}

void SimMachine::schedule_frame_timer(NodeId node) {
  if (frame_timer_pending_[node]) return;
  const SimTime deadline = frame_deadline(node);
  if (deadline == 0) return;
  frame_timer_pending_[node] = true;
  push_event(Event{deadline, 0, EventKind::kFrameTimer, node, {}});
}

void SimMachine::schedule_service(NodeId node) {
  if (service_pending_[node]) return;
  const SimTime deadline = client(node).service_deadline();
  if (deadline == 0) return;
  service_pending_[node] = true;
  push_event(Event{std::max(deadline, clock_[node]), 0, EventKind::kService,
                   node,
                   {}});
}

void SimMachine::charge(NodeId node, SimTime ns) {
  HAL_ASSERT(node < node_count());
  if (in_handler_ && node == handler_node_) {
    // Handler execution advances the handler stream; the method stream is
    // billed for the stolen cycles when the handler completes.
    handler_time_ += ns;
  } else {
    clock_[node] += ns;
  }
  autoflush(node);
}

void SimMachine::autoflush(NodeId node) {
  // Guard against re-entry: wire_inject below charges the frame's injection
  // overhead, which lands back here.
  if (autoflushing_ || !batching_active()) return;
  const SimTime due = frame_deadline(node);
  if (due == 0 || due > current_time(node)) return;
  autoflushing_ = true;
  flush_due_frames(node, current_time(node));
  autoflushing_ = false;
}

SimTime SimMachine::now(NodeId node) const {
  HAL_ASSERT(node < node_count());
  return current_time(node);
}

SimTime SimMachine::makespan() const {
  SimTime m = 0;
  for (NodeId n = 0; n < node_count(); ++n) {
    m = std::max(m, std::max(clock_[n], handler_tail_[n]));
  }
  return m;
}

void SimMachine::reset_clocks() {
  HAL_ASSERT(!running_ && queue_.empty());
  std::fill(clock_.begin(), clock_.end(), SimTime{0});
  std::fill(handler_tail_.begin(), handler_tail_.end(), SimTime{0});
}

void SimMachine::settle(NodeId node) {
  NodeClient& c = client(node);
  if (c.has_work()) {
    idle_notified_[node] = false;
    schedule_resume(node);
    return;
  }
  // Busy -> idle: ship any held frames before the node goes quiet, so a
  // receiver never waits out a holdoff that outlived the sender's burst.
  flush_frames(node, FlushCause::kIdle);
  if (!idle_notified_[node]) {
    idle_notified_[node] = true;
    c.on_idle();
    // on_idle may have produced local work (it usually only sends packets,
    // but e.g. a balancer may decide to re-enable a parked computation).
    if (c.has_work()) {
      idle_notified_[node] = false;
      schedule_resume(node);
      return;
    }
    // on_idle's own sends (a steal poll, say) must not sit in a frame on an
    // idle node either.
    flush_frames(node, FlushCause::kIdle);
  }
  // An idle client may still want servicing later (service_deadline), e.g.
  // the balancer's backed-off repoll; arm the wake-up event.
  schedule_service(node);
}

void SimMachine::run() {
  HAL_ASSERT(!running_);
  running_ = true;

  // Prime: nodes seeded with bootstrap work start executing at t=0; workless
  // nodes get their idle notification (where a load balancer would poll).
  for (NodeId n = 0; n < node_count(); ++n) {
    check::ScopedExecutionNode scope(n);
    if (client(n).has_work()) {
      schedule_resume(n);
    }
  }
  for (NodeId n = 0; n < node_count(); ++n) {
    check::ScopedExecutionNode scope(n);
    if (!client(n).has_work()) settle(n);
  }

  while (!queue_.empty() && !stop_requested()) {
    // top() yields a const ref; moving through it is safe because the
    // element is popped immediately, and it avoids copying the packet
    // payload (one heap allocation per delivery otherwise).
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    ++events_done_;
    if (event_limit_ != 0 && events_done_ > event_limit_) {
      HAL_PANIC("SimMachine event limit exceeded (protocol livelock?)");
    }
    const NodeId n = e.node;
    // Everything below executes on node n's (simulated) stream; the affinity
    // checker treats the whole dispatch as running "on" that node.
    check::ScopedExecutionNode scope(n);
    switch (e.kind) {
      case EventKind::kDelivery: {
        // Preemptive handler (§3): runs at arrival time on the handler
        // stream, serialized after any handler still in flight here.
        const SimTime start = std::max(e.time, handler_tail_[n]);
        in_handler_ = true;
        handler_node_ = n;
        handler_time_ = start;
        charge(n, costs().handler_entry_ns);
        idle_notified_[n] = false;
        // Shared demux (node_executor.hpp): faulty-wire packets dedupe/
        // reorder/ack in the endpoint and reach the client via link_deliver,
        // all within this handler slot; direct packets go straight through.
        exec_.dispatch(n, std::move(e.packet), *this);
        const SimTime stolen = handler_time_ - start;
        handler_tail_[n] = handler_time_;
        in_handler_ = false;
        handler_node_ = kInvalidNode;
        // Bill the method stream: an idle stream resumes when the handler
        // ends; a busy one is pushed back by the stolen cycles.
        clock_[n] = clock_[n] <= start ? handler_time_ : clock_[n] + stolen;
        break;
      }
      case EventKind::kResume:
        resume_pending_[n] = false;
        clock_[n] = std::max(clock_[n], e.time);
        client(n).step();
        break;
      case EventKind::kLinkTimer:
        // Retransmission timer: resend every master past its deadline,
        // then re-arm at the endpoint's next deadline. Pending timers also
        // keep the event queue non-empty, so run() cannot exit while a
        // dropped packet still awaits recovery.
        link_timer_pending_[n] = false;
        clock_[n] = std::max(clock_[n], e.time);
        if (links_active()) {
          exec_.fire_link_timer(n, current_time(n), *this);
          schedule_link_timer(n);
        }
        break;
      case EventKind::kFrameTimer: {
        // Holdoff expiry: flush due frames, then re-arm for any still open.
        // Like the link timer, a pending frame timer keeps the queue
        // non-empty, so quiescence cannot be declared over a held frame.
        // A stale timer (its frame already flushed at an idle transition)
        // must not drag the clock forward, or tiny workloads would report
        // holdoff-length makespans.
        frame_timer_pending_[n] = false;
        const SimTime due = frame_deadline(n);
        if (due != 0 && due <= e.time) {
          clock_[n] = std::max(clock_[n], e.time);
          flush_due_frames(n, current_time(n));
        }
        schedule_frame_timer(n);
        break;
      }
      case EventKind::kService: {
        // The client asked for its on_idle to re-run at this time (e.g. a
        // backed-off balancer repoll). Clearing the idle notification lets
        // settle() below invoke on_idle again if the node is still idle.
        // Stale events (the client no longer wants servicing, or pushed the
        // deadline out) are skipped without touching the clock; settle()
        // re-arms at the fresh deadline.
        service_pending_[n] = false;
        const SimTime want = client(n).service_deadline();
        if (want != 0 && want <= e.time) {
          clock_[n] = std::max(clock_[n], e.time);
          idle_notified_[n] = false;
        }
        break;
      }
    }
    settle(n);
  }

  if (!stop_requested()) {
    // Queue exhausted: every node idle, nothing in flight. Outstanding work
    // tokens here mean a protocol deadlock (e.g. a message parked on an FIR
    // whose response was lost) — fail loudly.
    HAL_ASSERT(tokens() == 0);
  }
  running_ = false;
}

}  // namespace hal::am
