// Shared node-stepping core for Machine implementations.
//
// Every machine ultimately does the same per-node work: demultiplex a
// physical arrival (reliable-link packet vs. direct active message), drain a
// mailbox, run NodeClient::step quanta, count termination-detector epochs,
// and fire link retransmission timers. SimMachine keeps its own event queue
// and virtual clocks but shares the demux and timer entry points;
// ThreadMachine and MnMachine additionally run their per-node MPSC mailboxes
// and epoch accounting through here — which is what makes MnMachine an
// executor *policy* (which worker runs which node when) rather than a third
// copy of the event-loop logic.
//
// Threading contract: post() may be called from any thread (it is the
// cross-thread handoff point); dispatch()/drain()/step_quantum()/
// fire_link_timer() must be called from the node's current execution stream
// (exactly one thread at a time, with a happens-before edge between
// successive owners — the machines' scheduling structures provide it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "am/machine.hpp"
#include "common/lint_markers.hpp"
#include "common/mpsc_queue.hpp"
#include "common/termination.hpp"

namespace hal::am {

class NodeExecutor {
 public:
  /// `participants` sizes the termination detector (ThreadMachine: one per
  /// node; MnMachine: one per worker; SimMachine passes 0 — its event queue
  /// is its own quiescence proof). `mailboxes` allocates the per-node MPSC
  /// packet queues; machines that keep packets elsewhere (SimMachine's
  /// event queue) skip them.
  NodeExecutor(Machine& machine, std::uint32_t participants, bool mailboxes);

  NodeExecutor(const NodeExecutor&) = delete;
  NodeExecutor& operator=(const NodeExecutor&) = delete;

  /// Run one physical arrival on `node`'s execution stream: packets carrying
  /// link state (sequence number or ack) go through the node's LinkEndpoint
  /// (dedupe, reorder, ack — only in-order data reaches the client via
  /// sink.link_deliver); everything else goes straight to the client.
  void dispatch(NodeId node, Packet p, LinkSink& sink);

  // --- Mailbox plane (queue-based machines only) --------------------------

  /// Publish one physical packet: count it in the sent epoch *before* the
  /// push (the detector's double scan needs sent == handled to prove no
  /// packet hides in a queue), then push it into the destination mailbox.
  /// Any wakeup handshake stays with the caller — it is scheduling policy.
  void post(Packet p);

  /// Exact from the consuming stream when false; may race when true.
  bool mailbox_empty(NodeId node) const {
    return mailboxes_[node]->empty();
  }

  /// Pop and dispatch up to `max` packets from `node`'s mailbox, counting
  /// each in the handled epoch (physical packets, symmetric with post()).
  /// Returns the number of packets processed.
  std::size_t drain(NodeId node, LinkSink& sink,
                    std::size_t max = std::numeric_limits<std::size_t>::max());

  /// Run NodeClient::step() until it reports no work, up to `max` times.
  std::size_t step_quantum(NodeId node, std::size_t max);

  // --- Link retransmission timers -----------------------------------------

  /// Fire `node`'s retransmission timer (resend masters past their deadline)
  /// on its execution stream; returns the endpoint's next deadline (0 when
  /// nothing is pending or links are inactive).
  SimTime fire_link_timer(NodeId node, SimTime now, LinkSink& sink);

  /// The node's earliest retransmission deadline (0 = none / links off).
  SimTime link_deadline(NodeId node) const;

  /// True while `node` holds unacked retransmit masters: the node still owes
  /// wire work and must not be allowed to look quiescent.
  bool has_unacked(NodeId node) const;

  TerminationDetector& detector() noexcept { return detector_; }
  const TerminationDetector& detector() const noexcept { return detector_; }

 private:
  Machine& machine_;
  TerminationDetector detector_;
  // Physical packets in flight are epoch-counted units (HAL_EPOCH_COUNTED →
  // hal-lint HL009): post() bumps the sent epoch before every push, drain()
  // bumps handled after every pop, so the detector's double scan stays exact.
  std::vector<std::unique_ptr<MpscQueue<Packet>>> mailboxes_ HAL_EPOCH_COUNTED;
};

}  // namespace hal::am
