// M:N machine: many nodes multiplexed onto a worker-thread pool.
//
// SimMachine is one sequential event queue and ThreadMachine burns one OS
// thread per node, so neither reaches the P = 1024–16384 regime the
// hypercube broadcast tree and FIR load balancer were designed for. This
// machine runs M nodes on N workers (CAF-style actor multiplexing over the
// hardware_manager M:N shape cited in ROADMAP item 1):
//
//   * Packets cross workers through the per-node MPSC mailboxes owned by the
//     shared NodeExecutor — the same queues ThreadMachine uses.
//   * A *runnable node* is a unit of scheduling. Each node carries an atomic
//     state machine {Idle, Queued, Running, RunningNotified}; a sender whose
//     CAS wins Idle→Queued publishes exactly one run token for the node, so
//     a node is never in two run queues and never runs on two workers at
//     once (the single-writer discipline every per-node structure — kernel,
//     probes, buffer pool, link endpoint — relies on).
//   * Run tokens live in per-worker Chase–Lev deques (common/ws_deque.hpp):
//     the owning worker pushes and pops at the bottom, idle workers steal
//     from the top. Tokens published off-pool (bootstrap sends before run())
//     go through a per-worker MPSC inject queue to the node's home worker.
//   * A token runs as a bounded quantum: drain the mailbox through the link
//     demux, run NodeClient::step up to a budget, fire due link
//     retransmission timers, then requeue if work remains — round-robin
//     fairness among runnable nodes at P >> N.
//   * Termination reuses the TerminationDetector double scan with the N
//     workers as participants. The sent/handled epochs count *both* physical
//     packets and run tokens, so sent == handled proves no packet hides in
//     any mailbox AND no runnable node hides in any queue; in-progress
//     quanta are covered by the running worker being active.
//   * Under fault injection, nodes holding unacked retransmit masters
//     publish their next deadline into a shared timer table; a worker that
//     would otherwise deactivate instead stays *active* and parks with that
//     deadline, mirroring ThreadMachine's rule that pending wire work must
//     keep the machine non-quiescent (loss cannot fake termination).
//
// Selection: RuntimeConfig{.machine = MachineKind::kMn, .mn_workers = N}
// through make_machine, or HAL_MACHINE=mn / HAL_MN_WORKERS=N in the bench
// harness. See docs/machines.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "am/machine.hpp"
#include "am/node_executor.hpp"
#include "am/park_handshake.hpp"
#include "am/run_token.hpp"
#include "common/fast_clock.hpp"
#include "common/lint_markers.hpp"
#include "common/mpsc_queue.hpp"
#include "common/rng.hpp"
#include "common/ws_deque.hpp"

namespace hal::am {

class MnMachine final : public Machine, private LinkSink {
  // Memory-order contract checked by hal-lint HL007. The run-token state
  // machine itself lives in RunTokenCell (am/run_token.hpp, protocol
  // `run_tokens`) and the park flag in ParkHandshake (am/park_handshake.hpp,
  // protocol `park_handshake`); what remains here is the scheduler fabric:
  // wake_epoch_ publishes seq_cst / reads acquire, and the steal/sleeper
  // diagnostics are advisory relaxed counters.
  HAL_MEMORY_PROTOCOL("mn_scheduler");

 public:
  /// `workers` = 0 picks min(hardware threads, nodes); any value is capped
  /// at the node count.
  MnMachine(NodeId nodes, CostModel costs, std::uint32_t workers = 0);
  ~MnMachine() override;

  void send(Packet p) override;
  void charge(NodeId node, SimTime ns) override;  // no-op: time is real
  SimTime now(NodeId node) const override;
  void run() override;
  std::uint32_t worker_count() const noexcept override { return workers_n_; }
  /// Delay injection is Sim-only (real queues already reorder): scrubbed,
  /// exactly as on ThreadMachine.
  void configure_faults(const FaultConfig& cfg) override;

  /// Epoch counters (stress tests, stats). These count packets *and* run
  /// tokens — see the termination note above.
  std::uint64_t units_sent() const noexcept { return exec_.detector().sent(); }
  std::uint64_t units_handled() const noexcept {
    return exec_.detector().handled();
  }
  /// Run tokens taken from another worker's deque (scheduling diagnostics).
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 protected:
  void wake_hook() noexcept override;

 private:
  /// Per-node scheduling state. The RunTokenCell is the cross-thread
  /// handoff point; the plain fields are owned by whichever worker holds the
  /// node's run token (the cell's seq_cst RMWs carry the happens-before
  /// edge between successive owners).
  struct alignas(64) NodeSlot {
    RunTokenCell<> token;
    NodeId id = 0;
    std::uint32_t home = 0;       // home worker for off-pool injection
    bool idle_notified = false;   // on_idle already ran for this idle spell
    std::uint64_t idle_epoch = 0; // wake epoch that on_idle last observed
    bool service_published = false;  // entry live in service_deadlines_
  };

  struct WorkerRec {
    explicit WorkerRec(std::uint32_t index_, std::size_t deque_capacity,
                       std::uint64_t rng_seed)
        : index(index_), local(deque_capacity), rng(rng_seed) {}

    const std::uint32_t index;
    // Run tokens are epoch-counted units (HAL_EPOCH_COUNTED → hal-lint
    // HL009): every push into either queue must follow a note_sent or a
    // pop from a sibling queue (a hand-off), so sent == handled keeps
    // proving no token hides in any run queue.
    WsDeque<NodeSlot> local HAL_EPOCH_COUNTED;   // owner bottom, thieves top
    MpscQueue<NodeId> inject HAL_EPOCH_COUNTED;  // off-pool token handoff
    Xoshiro256 rng;               // steal-victim selection
    std::uint64_t sweep_epoch = ~std::uint64_t{0};  // forces the first sweep
    bool primed = false;          // first sweep schedules every home node
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t wake_gen = 0;   // guarded by mutex; bumped by wake_hook
    // ThreadMachine's RMW handshake (am/park_handshake.hpp); HAL_PARK_FLAG
    // → hal-lint HL006 pins the arm-per-predicate park-loop shape.
    ParkHandshake<> sleeping HAL_PARK_FLAG;
  };

  void worker_loop(std::uint32_t w);
  /// Block until the inject queue looks non-empty, stop is requested, a wake
  /// generation lands, or `deadline` (ns since epoch_, 0 = none) passes.
  /// Re-arms `sleeping` before every predicate evaluation — required for
  /// correctness against the MPSC queue's unreachable-suffix window (see
  /// ThreadMachine::park, whose proof this mirrors).
  void park(WorkerRec& rec, std::uint64_t gen, SimTime deadline);
  /// Execute one quantum for the node whose token we hold.
  void run_node(NodeSlot& slot);
  /// A unit of work became visible on `node`: publish a run token if none
  /// is pending (Idle→Queued), or flag the current quantum to requeue.
  void schedule(NodeId node);
  /// Publish `slot`'s run token (state already Queued): count the token in
  /// the sent epoch, then push it where the calling thread may.
  void enqueue(NodeSlot& slot);
  /// Next token for worker `rec`: inject queue, own deque, then stealing.
  NodeSlot* next_runnable(WorkerRec& rec);
  void post_and_schedule(Packet p);
  void wake_worker(WorkerRec& rec) noexcept;
  /// Best-effort: rouse one parked worker to come steal (pure throughput —
  /// correctness never depends on a thief wake).
  void maybe_wake_thief() noexcept;
  /// Schedule every home node of `rec` that should re-observe global state:
  /// all of them on the priming pass, idle ones on later wake epochs.
  void sweep_home_nodes(WorkerRec& rec);
  /// Publish/erase `node`'s entry in the shared link-timer table.
  void update_link_timer(NodeId node);
  SimTime earliest_link_deadline();
  /// Schedule every node whose retransmission deadline has passed.
  void schedule_due_links();
  /// Publish/erase the slot's entry in the shared service-deadline table
  /// (NodeClient::service_deadline — e.g. the balancer's backed-off repoll).
  void update_service_timer(NodeSlot& s, NodeClient& c);
  SimTime earliest_service_deadline();
  /// Schedule every node whose service deadline has passed (its quantum
  /// re-runs on_idle).
  void schedule_due_service();

  // LinkSink (fault plane).
  void link_transmit(Packet p, SimTime extra_delay_ns) override;
  void link_deliver(Packet p) override;

  std::uint32_t workers_n_;
  std::vector<NodeSlot> slots_;
  std::vector<std::unique_ptr<WorkerRec>> workers_;
  NodeExecutor exec_;  // mailboxes, epochs, demux (shared node-stepping core)
  // now() reads clock_ (calibrated TSC, ~7 ns); epoch_ anchors the cv
  // wait_until deadlines in steady_clock terms. The two clocks' sub-µs
  // offset/drift only shifts when a timed park *wakes*; due-ness is always
  // re-checked against clock_, so timers never fire early.
  FastClock clock_;
  std::chrono::steady_clock::time_point epoch_;
  // Bumped by wake_hook: idle nodes re-run on_idle once per epoch so the
  // load balancer re-polls when the work hint turns positive (the M:N
  // analogue of ThreadMachine waking every node thread).
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint32_t> sleepers_{0};  // gate for maybe_wake_thief
  // Link retransmission deadlines of nodes with unacked masters. Guarded by
  // timers_mutex_; touched only off the message fast path (end of quantum
  // under faults, worker idle transitions).
  std::mutex timers_mutex_;
  std::map<NodeId, SimTime> timer_deadlines_;
  // Service deadlines of idle nodes whose client wants a later on_idle
  // re-run (NodeClient::service_deadline). Same guard and access pattern as
  // the link-timer table above.
  std::map<NodeId, SimTime> service_deadlines_;

  static thread_local int tl_worker_;  // index into workers_, -1 off-pool

  // Quantum budgets: big enough to amortize token churn, small enough that
  // a flooded node cannot starve its worker's other nodes.
  static constexpr std::size_t kDrainQuantum = 64;
  static constexpr std::size_t kStepQuantum = 64;
};

}  // namespace hal::am
