// Virtual-time cost model for the simulated machine.
//
// The paper evaluates on a CM-5: 33 MHz Sparc nodes (~30 ns/cycle) with a
// network interface supporting CMAM active messages. SimMachine charges these
// costs so that the primitive-operation table (paper Table 2) and the
// application scaling tables *emerge* from the same protocol code that runs
// under the threaded machine. The cm5() calibration targets the two numbers
// the paper states exactly — alias-based remote-creation initiation 5.83 µs
// vs. 20.83 µs actual, locality check ≤ 1 µs — plus published CM-5 CMAM
// figures (one-way latency a few µs, ~10 MB/s per-node bulk bandwidth).
#pragma once

#include "common/types.hpp"

namespace hal::am {

struct CostModel {
  // --- Network / active message layer -----------------------------------
  SimTime wire_latency_ns = 2000;    ///< NI-to-NI transit time
  SimTime packet_inject_ns = 2000;   ///< sender-side injection overhead
  SimTime per_word_ns = 300;         ///< per argument word injected
  SimTime handler_entry_ns = 900;    ///< receiver-side handler dispatch
  SimTime payload_byte_ns = 100;     ///< per payload byte (≈10 MB/s)

  // --- Runtime kernel primitives -----------------------------------------
  SimTime actor_alloc_ns = 2500;       ///< allocate + initialize an actor
  SimTime descriptor_alloc_ns = 1200;  ///< allocate a locality descriptor
  SimTime name_lookup_ns = 800;        ///< hash lookup in the name table
  SimTime name_insert_ns = 900;        ///< insert into the name table
  SimTime locality_check_ns = 500;     ///< cached-descriptor locality check
  SimTime enqueue_ns = 600;            ///< mailbox/ready-queue enqueue
  SimTime dispatch_ns = 1100;          ///< generic method dispatch
  SimTime static_dispatch_ns = 150;    ///< compiler fast path (≈ a call)
  SimTime become_ns = 300;             ///< behaviour replacement
  SimTime join_alloc_ns = 800;         ///< allocate a join continuation
  SimTime join_fill_ns = 200;          ///< fill one continuation slot
  SimTime schedule_ns = 500;           ///< dispatcher hand-off (no ctx switch)
  SimTime constraint_check_ns = 200;   ///< evaluate a disabling condition

  // --- Application compute ------------------------------------------------
  /// Cost of one floating-point operation. A 33 MHz Sparc sustains roughly
  /// 5-10 MFlops on tuned block kernels (the paper's matmul peaks at
  /// 434 MFlops on 64 nodes ≈ 6.8 MFlops/node), so ~150 ns/flop.
  double flop_ns = 150.0;
  /// Cost of a unit of non-numeric user work (integer op, pointer chase).
  double work_ns = 60.0;

  /// Calibrated to the paper's CM-5 numbers (see above).
  static CostModel cm5() { return CostModel{}; }

  /// Network of workstations with a fast interconnect — the platform the
  /// paper's conclusions point at [Anderson et al. 95; von Eicken et al.
  /// 95: Active Messages over ATM]. Same processors, but an order of
  /// magnitude more latency and less bandwidth than the CM-5's NI.
  static CostModel now() {
    CostModel m{};
    m.wire_latency_ns = 25000;   // ~25 µs one-way over ATM
    m.packet_inject_ns = 6000;
    m.per_word_ns = 400;
    m.handler_entry_ns = 3000;
    m.payload_byte_ns = 250;     // ≈4 MB/s per stream
    return m;
  }

  /// Zero costs: pure-logic tests where virtual time is irrelevant.
  static CostModel zero() {
    CostModel m{};
    m.wire_latency_ns = m.packet_inject_ns = m.per_word_ns = 0;
    m.handler_entry_ns = m.payload_byte_ns = 0;
    m.actor_alloc_ns = m.descriptor_alloc_ns = 0;
    m.name_lookup_ns = m.name_insert_ns = m.locality_check_ns = 0;
    m.enqueue_ns = m.dispatch_ns = m.static_dispatch_ns = m.become_ns = 0;
    m.join_alloc_ns = m.join_fill_ns = m.schedule_ns = 0;
    m.constraint_check_ns = 0;
    m.flop_ns = 0.0;
    m.work_ns = 0.0;
    return m;
  }
};

}  // namespace hal::am
