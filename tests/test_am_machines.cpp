// Unit tests: active-message substrate (SimMachine, ThreadMachine,
// MnMachine, MST, bulk transfer protocol with minimal flow control).
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "am/bulk.hpp"
#include "am/mn_machine.hpp"
#include "am/mst.hpp"
#include "am/sim_machine.hpp"
#include "am/thread_machine.hpp"

namespace hal::am {
namespace {

// A scriptable node client for substrate tests.
class TestClient : public NodeClient {
 public:
  std::function<void(TestClient&, Packet)> on_packet;
  std::vector<Packet> received;

  void handle(Packet p) override {
    received.push_back(p);
    if (on_packet) on_packet(*this, std::move(p));
  }
  bool step() override { return false; }
  bool has_work() const override { return false; }
};

template <typename M>
struct Harness {
  M machine;
  std::vector<TestClient> clients;

  Harness(NodeId nodes, CostModel costs = CostModel::zero())
      : machine(nodes, costs), clients(nodes) {
    for (NodeId n = 0; n < nodes; ++n) machine.attach(n, &clients[n]);
  }
};

Packet make_packet(NodeId src, NodeId dst, std::uint64_t tag) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.handler = 1;
  p.words[0] = tag;
  return p;
}

// --- SimMachine -------------------------------------------------------------------

TEST(SimMachine, DeliversPacket) {
  Harness<SimMachine> h(2);
  h.machine.send(make_packet(0, 1, 77));
  h.machine.run();
  ASSERT_EQ(h.clients[1].received.size(), 1u);
  EXPECT_EQ(h.clients[1].received[0].words[0], 77u);
}

TEST(SimMachine, PerLinkFifoWithEqualSizes) {
  Harness<SimMachine> h(2);
  for (std::uint64_t i = 0; i < 50; ++i) h.machine.send(make_packet(0, 1, i));
  h.machine.run();
  ASSERT_EQ(h.clients[1].received.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(h.clients[1].received[i].words[0], i);
  }
}

TEST(SimMachine, VirtualTimeAdvancesWithCosts) {
  Harness<SimMachine> h(2, CostModel::cm5());
  h.machine.send(make_packet(0, 1, 0));
  h.machine.run();
  const CostModel c = CostModel::cm5();
  // Sender pays injection, receiver pays handler entry, wire in between.
  EXPECT_GE(h.machine.makespan(),
            c.packet_inject_ns + c.wire_latency_ns + c.handler_entry_ns);
}

TEST(SimMachine, DeterministicEventCount) {
  auto run_once = [] {
    Harness<SimMachine> h(4, CostModel::cm5());
    // Each node relays once: 0→1→2→3.
    for (NodeId n = 0; n < 3; ++n) {
      h.clients[n].on_packet = [](TestClient&, Packet) {};
    }
    h.clients[0].on_packet = nullptr;
    for (int i = 0; i < 10; ++i) h.machine.send(make_packet(0, 1, 5));
    h.machine.run();
    return h.machine.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimMachine, HandlerMaySendOnward) {
  Harness<SimMachine> h(3);
  h.clients[1].on_packet = [&h](TestClient&, Packet p) {
    h.machine.send(make_packet(1, 2, p.words[0] + 1));
  };
  h.machine.send(make_packet(0, 1, 10));
  h.machine.run();
  ASSERT_EQ(h.clients[2].received.size(), 1u);
  EXPECT_EQ(h.clients[2].received[0].words[0], 11u);
}

TEST(SimMachine, ChargeAccumulatesPerNode) {
  Harness<SimMachine> h(2);
  h.machine.charge(0, 500);
  h.machine.charge(0, 250);
  EXPECT_EQ(h.machine.now(0), 750u);
  EXPECT_EQ(h.machine.now(1), 0u);
}

// --- ThreadMachine -----------------------------------------------------------------

TEST(ThreadMachine, DeliversAndQuiesces) {
  Harness<ThreadMachine> h(2);
  h.machine.send(make_packet(0, 1, 99));
  h.machine.run();
  ASSERT_EQ(h.clients[1].received.size(), 1u);
  EXPECT_EQ(h.clients[1].received[0].words[0], 99u);
}

TEST(ThreadMachine, RelayChainQuiesces) {
  Harness<ThreadMachine> h(4);
  for (NodeId n = 0; n < 4; ++n) {
    h.clients[n].on_packet = [&h, n](TestClient&, Packet p) {
      if (p.words[0] > 0) {
        h.machine.send(make_packet(n, (n + 1) % 4, p.words[0] - 1));
      }
    };
  }
  h.machine.send(make_packet(0, 1, 100));
  h.machine.run();
  std::size_t total = 0;
  for (auto& c : h.clients) total += c.received.size();
  EXPECT_EQ(total, 101u);
}

// --- MnMachine ---------------------------------------------------------------------
// (The large-P / stealing / termination suite lives in test_mn_machine.cpp;
// here MnMachine just rides the same substrate matrix as the other two.)

TEST(MnMachine, DeliversAndQuiesces) {
  Harness<MnMachine> h(2);
  h.machine.send(make_packet(0, 1, 99));
  h.machine.run();
  ASSERT_EQ(h.clients[1].received.size(), 1u);
  EXPECT_EQ(h.clients[1].received[0].words[0], 99u);
}

TEST(MnMachine, RelayChainQuiesces) {
  Harness<MnMachine> h(4);
  for (NodeId n = 0; n < 4; ++n) {
    h.clients[n].on_packet = [&h, n](TestClient&, Packet p) {
      if (p.words[0] > 0) {
        h.machine.send(make_packet(n, (n + 1) % 4, p.words[0] - 1));
      }
    };
  }
  h.machine.send(make_packet(0, 1, 100));
  h.machine.run();
  std::size_t total = 0;
  for (auto& c : h.clients) total += c.received.size();
  EXPECT_EQ(total, 101u);
}

// --- MST ---------------------------------------------------------------------------

TEST(Mst, CoversAllNodesExactlyOnce) {
  for (NodeId nodes : {1u, 2u, 3u, 4u, 7u, 8u, 16u, 33u, 64u}) {
    for (NodeId root : {0u, 1u, nodes - 1}) {
      if (root >= nodes) continue;
      std::map<NodeId, int> indegree;
      for (NodeId self = 0; self < nodes; ++self) {
        mst_for_each_child(self, root, nodes,
                           [&](NodeId child) { ++indegree[child]; });
      }
      EXPECT_EQ(indegree.count(root), 0u) << "root has a parent";
      for (NodeId n = 0; n < nodes; ++n) {
        if (n == root) continue;
        EXPECT_EQ(indegree[n], 1) << "node " << n << " of " << nodes;
      }
    }
  }
}

TEST(Mst, ParentChildConsistent) {
  const NodeId nodes = 13, root = 5;
  for (NodeId self = 0; self < nodes; ++self) {
    mst_for_each_child(self, root, nodes, [&](NodeId child) {
      EXPECT_EQ(mst_parent(child, root, nodes), self);
    });
  }
}

TEST(Mst, DepthIsLogarithmic) {
  const NodeId nodes = 64;
  for (NodeId self = 0; self < nodes; ++self) {
    EXPECT_LE(mst_depth(self, 0, nodes), 6u);
  }
}

// --- Bulk transfer -------------------------------------------------------------------

template <typename M>
struct BulkHarnessT {
  M machine;
  struct BulkClient : NodeClient {
    BulkChannel* channel = nullptr;
    std::vector<std::pair<std::uint64_t, Bytes>> delivered;  // (tag, data)
    void handle(Packet p) override { channel->route(p); }
    bool step() override { return false; }
    bool has_work() const override { return false; }
  };
  std::vector<BulkClient> clients;
  std::vector<StatBlock> stats;
  std::vector<obs::ProbeRecorder> probes;
  std::vector<BufferPool> pools;
  std::vector<std::unique_ptr<BulkChannel>> channels;

  explicit BulkHarnessT(NodeId nodes, CostModel costs = CostModel::zero())
      : machine(nodes, costs),
        clients(nodes),
        stats(nodes),
        probes(nodes),
        pools(nodes) {
    const BulkHandlers h{10, 11, 12};
    for (NodeId n = 0; n < nodes; ++n) {
      auto* client = &clients[n];
      channels.push_back(std::make_unique<BulkChannel>(
          machine, n, h, stats[n], probes[n], pools[n],
          [client](NodeId, std::uint64_t tag,
                   const std::array<std::uint64_t, 2>&, Bytes data) {
            client->delivered.emplace_back(tag, std::move(data));
          }));
      clients[n].channel = channels[n].get();
      machine.attach(n, &clients[n]);
    }
  }
};

using BulkHarness = BulkHarnessT<SimMachine>;

Bytes pattern_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::byte>(i * 31 % 251);
  }
  return b;
}

TEST(Bulk, TransfersLargeBuffer) {
  BulkHarness h(2);
  const Bytes data = pattern_bytes(3 * kBulkChunkBytes + 100);
  h.channels[0]->send(1, 42, {7, 8}, data);
  h.machine.run();
  ASSERT_EQ(h.clients[1].delivered.size(), 1u);
  EXPECT_EQ(h.clients[1].delivered[0].first, 42u);
  EXPECT_EQ(h.clients[1].delivered[0].second, data);
}

TEST(Bulk, ZeroLengthTransferCompletes) {
  BulkHarness h(2);
  h.channels[0]->send(1, 5, {0, 0}, {});
  h.machine.run();
  ASSERT_EQ(h.clients[1].delivered.size(), 1u);
  EXPECT_TRUE(h.clients[1].delivered[0].second.empty());
}

TEST(Bulk, FlowControlSerializesInboundTransfers) {
  BulkHarness h(3, CostModel::cm5());
  const Bytes data = pattern_bytes(8 * kBulkChunkBytes);
  h.channels[0]->send(2, 1, {0, 0}, data);
  h.channels[1]->send(2, 2, {0, 0}, data);
  h.machine.run();
  ASSERT_EQ(h.clients[2].delivered.size(), 2u);
  // With flow control on, at least one REQUEST had to wait for a grant.
  EXPECT_GE(h.stats[2].get(Stat::kBulkFlowStalls), 1u);
}

TEST(Bulk, NoFlowControlGrantsImmediately) {
  BulkHarness h(3, CostModel::cm5());
  h.channels[2]->set_flow_control(false);
  const Bytes data = pattern_bytes(8 * kBulkChunkBytes);
  h.channels[0]->send(2, 1, {0, 0}, data);
  h.channels[1]->send(2, 2, {0, 0}, data);
  h.machine.run();
  ASSERT_EQ(h.clients[2].delivered.size(), 2u);
  EXPECT_EQ(h.stats[2].get(Stat::kBulkFlowStalls), 0u);
}

TEST(Bulk, ManyTransfersAllComplete) {
  BulkHarness h(4);
  int expected = 0;
  for (NodeId src = 1; src < 4; ++src) {
    for (int i = 0; i < 5; ++i) {
      h.channels[src]->send(0, src * 100 + static_cast<std::uint64_t>(i),
                            {0, 0}, pattern_bytes(1000 + 512 * src));
      ++expected;
    }
  }
  h.machine.run();
  EXPECT_EQ(h.clients[0].delivered.size(), static_cast<std::size_t>(expected));
}

TEST(Bulk, MetaWordsArriveIntact) {
  BulkHarness h(2);
  std::array<std::uint64_t, 2> got{};
  auto* client = &h.clients[1];
  (void)client;
  // Re-wire deliver to capture meta.
  h.channels[1] = std::make_unique<BulkChannel>(
      h.machine, 1, BulkHandlers{10, 11, 12}, h.stats[1], h.probes[1],
      h.pools[1],
      [&got](NodeId, std::uint64_t, const std::array<std::uint64_t, 2>& meta,
             Bytes) { got = meta; });
  h.clients[1].channel = h.channels[1].get();
  h.channels[0]->send(1, 9, {0xdeadULL, 0xbeefULL}, pattern_bytes(10));
  h.machine.run();
  EXPECT_EQ(got[0], 0xdeadULL);
  EXPECT_EQ(got[1], 0xbeefULL);
}

// Regression: a zero-size transfer granted from the queue completes inline
// (there is no DATA phase to finish), so the channel must keep draining the
// grant queue. The seed granted exactly one entry per completion and
// stranded everything queued behind a zero-size grant — those senders never
// saw an ACK, their outbound_ records never retired, and in the full runtime
// their work tokens deadlocked the machine (run() never returned).
TEST(Bulk, ZeroSizeGrantDoesNotStrandQueuedGrants) {
  BulkHarness h(5, CostModel::cm5());
  const Bytes big = pattern_bytes(4 * kBulkChunkBytes);
  // Arrival order at node 0 is injection order (deterministic under
  // SimMachine): the big transfer is granted first, the rest queue.
  h.channels[1]->send(0, 1, {0, 0}, big);
  h.channels[2]->send(0, 2, {0, 0}, {});   // zero-size, queued
  h.channels[3]->send(0, 3, {0, 0}, {});   // zero-size, queued behind it
  h.channels[4]->send(0, 4, {0, 0}, big);  // queued behind both
  h.machine.run();
  ASSERT_EQ(h.clients[0].delivered.size(), 4u);
  for (NodeId n = 1; n < 5; ++n) {
    EXPECT_EQ(h.channels[n]->outbound_pending(), 0u) << "sender " << n;
  }
  EXPECT_GE(h.stats[0].get(Stat::kBulkFlowStalls), 3u);
}

// The same edge cases must hold under true preemption, where request order
// at the receiver is nondeterministic: every transfer — zero-size or not —
// completes, byte-exact, and every sender retires its outbound record.
template <typename M>
void run_bulk_edge_cases() {
  BulkHarnessT<M> h(4);
  std::vector<std::size_t> sizes = {0,    1,      100,  0,
                                    4096, 4097,   0,    3 * 4096 + 7};
  int expected = 0;
  for (NodeId src = 1; src < 4; ++src) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      h.channels[src]->send(0, src * 100 + i, {src, i},
                            pattern_bytes(sizes[i]));
      ++expected;
    }
  }
  h.machine.run();
  ASSERT_EQ(h.clients[0].delivered.size(),
            static_cast<std::size_t>(expected));
  // Byte-exact delivery: look each tag up and compare to the pattern.
  for (const auto& [tag, data] : h.clients[0].delivered) {
    const std::size_t i = tag % 100;
    ASSERT_LT(i, sizes.size());
    EXPECT_EQ(data, pattern_bytes(sizes[i])) << "tag " << tag;
  }
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(h.channels[n]->outbound_pending(), 0u) << "sender " << n;
    EXPECT_EQ(h.channels[n]->inbound_active(), 0u) << "receiver " << n;
  }
}

TEST(Bulk, EdgeCaseMixCompletesUnderSimMachine) {
  run_bulk_edge_cases<SimMachine>();
}

TEST(Bulk, EdgeCaseMixCompletesUnderThreadMachine) {
  run_bulk_edge_cases<ThreadMachine>();
}

TEST(Bulk, EdgeCaseMixCompletesUnderMnMachine) {
  run_bulk_edge_cases<MnMachine>();
}

TEST(Bulk, ZeroLengthTransferCompletesUnderThreadMachine) {
  BulkHarnessT<ThreadMachine> h(2);
  h.channels[0]->send(1, 5, {0, 0}, {});
  h.machine.run();
  ASSERT_EQ(h.clients[1].delivered.size(), 1u);
  EXPECT_TRUE(h.clients[1].delivered[0].second.empty());
  EXPECT_EQ(h.channels[0]->outbound_pending(), 0u);
}

// Back-to-back queued grants: three senders hammer one receiver with flow
// control on, so at least two REQUESTs must wait in the grant queue and be
// released one at a time as their predecessors drain.
template <typename M>
void run_back_to_back_grants() {
  BulkHarnessT<M> h(4, CostModel::cm5());
  const Bytes data = pattern_bytes(6 * kBulkChunkBytes);
  for (NodeId src = 1; src < 4; ++src) {
    h.channels[src]->send(0, src, {0, 0}, data);
  }
  h.machine.run();
  ASSERT_EQ(h.clients[0].delivered.size(), 3u);
  for (const auto& [tag, bytes] : h.clients[0].delivered) {
    EXPECT_EQ(bytes, data) << "tag " << tag;
  }
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(h.channels[n]->outbound_pending(), 0u);
  }
}

TEST(Bulk, BackToBackQueuedGrantsUnderSimMachine) {
  run_back_to_back_grants<SimMachine>();
}

TEST(Bulk, BackToBackQueuedGrantsUnderThreadMachine) {
  run_back_to_back_grants<ThreadMachine>();
}

TEST(Bulk, BackToBackQueuedGrantsUnderMnMachine) {
  run_back_to_back_grants<MnMachine>();
}

}  // namespace
}  // namespace hal::am
