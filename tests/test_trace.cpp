// Tests: execution tracing — event capture, determinism, and Chrome-trace
// serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/api.hpp"

namespace hal {
namespace {

class Busy : public ActorBase {
 public:
  void on_work(Context& ctx, std::int64_t units) {
    ctx.charge_work(static_cast<std::uint64_t>(units));
  }
  void on_hop(Context& ctx, NodeId target) { ctx.migrate_to(target); }
  HAL_BEHAVIOR(Busy, &Busy::on_work, &Busy::on_hop)
  bool migratable() const override { return true; }
  void pack_state(ByteWriter&) const override {}
  void unpack_state(ByteReader&) override {}
};

RuntimeConfig traced_cfg(NodeId nodes) {
  RuntimeConfig c;
  c.nodes = nodes;
  c.trace = true;
  return c;
}

std::vector<trace::Event> run_traced() {
  Runtime rt(traced_cfg(3));
  rt.load<Busy>();
  const MailAddress b = rt.spawn<Busy>(0);
  rt.inject<&Busy::on_work>(b, std::int64_t{1000});
  rt.inject<&Busy::on_hop>(b, NodeId{2});
  rt.inject<&Busy::on_work>(b, std::int64_t{500});
  rt.run();
  return rt.trace_events();
}

std::size_t count_kind(const std::vector<trace::Event>& ev,
                       trace::EventKind k) {
  std::size_t n = 0;
  for (const auto& e : ev) {
    if (e.kind == k) ++n;
  }
  return n;
}

TEST(Trace, CapturesMethodsAndMigrations) {
  const auto ev = run_traced();
  EXPECT_GE(count_kind(ev, trace::EventKind::kMethod), 3u);
  EXPECT_EQ(count_kind(ev, trace::EventKind::kMigrateOut), 1u);
  EXPECT_EQ(count_kind(ev, trace::EventKind::kMigrateIn), 1u);
  EXPECT_EQ(count_kind(ev, trace::EventKind::kCreateLocal), 1u);
  // Method events carry durations; the first on_work charged 1000 units.
  bool found_long_method = false;
  for (const auto& e : ev) {
    if (e.kind == trace::EventKind::kMethod && e.duration >= 50000) {
      found_long_method = true;
    }
  }
  EXPECT_TRUE(found_long_method);
}

TEST(Trace, DisabledByDefault) {
  RuntimeConfig c;
  c.nodes = 2;
  Runtime rt(c);
  rt.load<Busy>();
  const MailAddress b = rt.spawn<Busy>(0);
  rt.inject<&Busy::on_work>(b, std::int64_t{10});
  rt.run();
  EXPECT_TRUE(rt.trace_events().empty());
}

TEST(Trace, DeterministicUnderSim) {
  const auto a = run_traced();
  const auto b = run_traced();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
    EXPECT_EQ(a[i].node, b[i].node);
  }
}

TEST(Trace, ChromeJsonIsWellFormed) {
  const auto ev = run_traced();
  std::ostringstream out;
  trace::write_chrome_trace(out, ev);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // One object per event; braces balance.
  std::int64_t depth = 0;
  std::size_t objects = 0;
  for (const char c : json) {
    if (c == '{') {
      if (depth == 0) ++objects;
      ++depth;
    } else if (c == '}') {
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(objects, ev.size());
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // durations
  EXPECT_NE(json.find("migrate_out"), std::string::npos);
}

TEST(Trace, EventNamesCoverAllKinds) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(trace::EventKind::kCount);
       ++i) {
    EXPECT_FALSE(
        trace::event_name(static_cast<trace::EventKind>(i)).empty());
  }
}

}  // namespace
}  // namespace hal
