#!/usr/bin/env python3
"""Fixture tests for hal-lint.

Each fixture under fixtures/ is linted in isolation. Expected findings are
written in the fixture itself:

    ... offending line ...   // EXPECT: check-id[, check-id]
    // EXPECT-NEXT: check-id     (flags the following line; used when the
                                  marker cannot share the offending line,
                                  e.g. HL000 diagnostics on suppression
                                  comments)

The comparison is exact and bidirectional on (line, check-id) pairs: a
diagnostic with no marker fails the run, and a marker with no diagnostic
fails the run — so both regressions (a fixed rule stops firing) and new
false positives are caught. Files with at least one marker must make
hal-lint exit 1; marker-free files must produce a clean exit 0.
"""
import re
import subprocess
import sys
from pathlib import Path

DIAG_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): warning: .* "
    r"\[(?P<check>[a-z0-9-]+)\]$")
EXPECT_RE = re.compile(
    r"EXPECT(?P<next>-NEXT)?:\s*"
    r"(?P<ids>[a-z][a-z0-9-]*(?:\s*,\s*[a-z][a-z0-9-]*)*)")


def expected_findings(path: Path) -> set:
    exp = set()
    for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        m = EXPECT_RE.search(text)
        if m is None:
            continue
        target = lineno + (1 if m.group("next") else 0)
        for check in re.split(r"\s*,\s*", m.group("ids")):
            exp.add((target, check))
    return exp


def run_lint(lint: str, args):
    proc = subprocess.run([lint, *args], capture_output=True, text=True)
    found = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m is not None:
            found.add((int(m.group("line")), m.group("check")))
    return found, proc.returncode


def actual_findings(lint: str, path: Path):
    return run_lint(lint, [str(path)])


LIST_RE = re.compile(r"^(?P<code>HL\d{3}) (?P<id>hal-[a-z0-9-]+)\s+\S")

# Whole-program checks (requires_full_run) are deliberately skipped under
# --checks= selection; selecting one must therefore be silently clean.
FULL_RUN_ONLY = {"hal-stale-suppress"}


def flag_tests(lint: str, fixtures) -> list:
    """Cover --list-checks and --checks= selection against the fixtures."""
    problems = []

    proc = subprocess.run([lint, "--list-checks"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        problems.append(f"  --list-checks: exit {proc.returncode}, want 0")
    listing = {}
    for line in proc.stdout.splitlines():
        m = LIST_RE.match(line)
        if m is None:
            problems.append(f"  --list-checks: malformed line {line!r}")
        else:
            listing[m.group("id")] = m.group("code")
    if len(listing) < 8:
        problems.append(f"  --list-checks: only {len(listing)} checks")

    # A fixture with at least one finding from a selectable check drives
    # the filtering tests.
    chosen = None
    for path in fixtures:
        expected = expected_findings(path)
        ids = {c for _, c in expected
               if c in listing and c not in FULL_RUN_ONLY}
        if ids:
            chosen = (path, expected, sorted(ids)[0])
            break
    if chosen is None:
        problems.append("  --checks: no fixture with selectable findings")
        return problems
    path, expected, sel = chosen
    subset = {(l, c) for l, c in expected if c == sel}

    # Selecting by id and by HL code must both yield exactly that check's
    # findings (and the failing exit code, since there are findings).
    for flag in (sel, listing[sel]):
        found, rc = run_lint(lint, [f"--checks={flag}", str(path)])
        if found != subset:
            problems.append(f"  --checks={flag}: got {sorted(found)}, "
                            f"want {sorted(subset)}")
        if rc != 1:
            problems.append(f"  --checks={flag}: exit {rc}, want 1")

    # Selecting a check the fixture does not trip must be clean, and
    # multi-selection must be the union of the selected checks.
    others = sorted(set(listing) - {c for _, c in expected} - FULL_RUN_ONLY)
    if others:
        found, rc = run_lint(lint, [f"--checks={others[0]}", str(path)])
        if found or rc != 0:
            problems.append(f"  --checks={others[0]}: got {sorted(found)} "
                            f"rc {rc}, want clean exit 0")
        found, rc = run_lint(
            lint, [f"--checks={sel},{others[0]}", str(path)])
        if found != subset or rc != 1:
            problems.append(f"  --checks={sel},{others[0]}: got "
                            f"{sorted(found)} rc {rc}, want the "
                            f"{sel}-only findings and exit 1")

    # Full-run-only checks are skipped under selection: a fixture that
    # trips one with the full suite is clean when only it is selected.
    for path in fixtures:
        tripped = {c for _, c in expected_findings(path)} & FULL_RUN_ONLY
        if tripped:
            full_only = sorted(tripped)[0]
            found, rc = run_lint(lint, [f"--checks={full_only}", str(path)])
            if found or rc != 0:
                problems.append(
                    f"  --checks={full_only}: full-run-only check must be "
                    f"skipped under selection, got {sorted(found)} rc {rc}")
            break

    return problems


def sarif_tests(lint: str, fixtures) -> list:
    """The SARIF log must parse, carry stable partialFingerprints on every
    result, and contain no duplicate (rule, file, line) results — repeated
    CI uploads would otherwise churn code-scanning alerts."""
    import json
    import tempfile
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "out.sarif"
        subprocess.run(
            [lint, f"--sarif={out}", *[str(p) for p in fixtures]],
            capture_output=True, text=True)
        try:
            log = json.loads(out.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            return [f"  sarif: cannot parse log: {err}"]
        results = log["runs"][0]["results"]
        if not results:
            return ["  sarif: no results — fixtures should produce some"]
        keys = set()
        for r in results:
            fp = r.get("partialFingerprints", {})
            if not fp.get("halLintFingerprint/v1"):
                problems.append(
                    f"  sarif: result for {r.get('ruleId')} lacks a "
                    "halLintFingerprint/v1 partial fingerprint")
                break
            loc = r["locations"][0]["physicalLocation"]
            key = (r["ruleId"],
                   loc["artifactLocation"]["uri"],
                   loc["region"]["startLine"])
            if key in keys:
                problems.append(f"  sarif: duplicate result {key}")
            keys.add(key)
        # The fingerprint must be stable across runs: a second log over the
        # same inputs carries the identical fingerprint set.
        out2 = Path(tmp) / "out2.sarif"
        subprocess.run(
            [lint, f"--sarif={out2}", *[str(p) for p in fixtures]],
            capture_output=True, text=True)
        def fps(doc):
            return sorted(r["partialFingerprints"]["halLintFingerprint/v1"]
                          for r in doc["runs"][0]["results"]
                          if "partialFingerprints" in r)
        log2 = json.loads(out2.read_text(encoding="utf-8"))
        if fps(log) != fps(log2):
            problems.append("  sarif: fingerprints differ between two runs "
                            "over identical inputs")
    return problems


def main() -> int:
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <hal-lint-binary> "
              "<fixture-dir-or-file>...", file=sys.stderr)
        return 2
    lint = sys.argv[1]
    fixtures = []
    for arg in sys.argv[2:]:
        p = Path(arg)
        fixtures.extend(sorted(p.rglob("*.cpp")) if p.is_dir() else [p])
    fixture_dir = Path(sys.argv[2])
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 2

    failures = 0
    for path in fixtures:
        expected = expected_findings(path)
        actual, rc = actual_findings(lint, path)
        problems = []
        for line, check in sorted(expected - actual):
            problems.append(f"  missing: expected [{check}] at line {line}")
        for line, check in sorted(actual - expected):
            problems.append(f"  extra:   unexpected [{check}] at line {line}")
        want_rc = 1 if expected else 0
        if rc != want_rc:
            problems.append(f"  exit:    got {rc}, want {want_rc}")
        name = (path.relative_to(fixture_dir)
                if fixture_dir.is_dir() and path.is_relative_to(fixture_dir)
                else path.name)
        if problems:
            failures += 1
            print(f"FAIL {name}")
            print("\n".join(problems))
        else:
            print(f"ok   {name} ({len(expected)} expected finding(s))")

    for title, problems in (
            ("flag coverage (--list-checks / --checks=)",
             flag_tests(lint, fixtures)),
            ("sarif coverage (--sarif fingerprints + dedupe)",
             sarif_tests(lint, fixtures))):
        if problems:
            failures += 1
            print(f"FAIL {title}")
            print("\n".join(problems))
        else:
            print(f"ok   {title}")

    if failures:
        print(f"{failures} test group(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(fixtures)} fixture(s) + flag coverage passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
