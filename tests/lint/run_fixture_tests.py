#!/usr/bin/env python3
"""Fixture tests for hal-lint.

Each fixture under fixtures/ is linted in isolation. Expected findings are
written in the fixture itself:

    ... offending line ...   // EXPECT: check-id[, check-id]
    // EXPECT-NEXT: check-id     (flags the following line; used when the
                                  marker cannot share the offending line,
                                  e.g. HL000 diagnostics on suppression
                                  comments)

The comparison is exact and bidirectional on (line, check-id) pairs: a
diagnostic with no marker fails the run, and a marker with no diagnostic
fails the run — so both regressions (a fixed rule stops firing) and new
false positives are caught. Files with at least one marker must make
hal-lint exit 1; marker-free files must produce a clean exit 0.
"""
import re
import subprocess
import sys
from pathlib import Path

DIAG_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): warning: .* "
    r"\[(?P<check>[a-z0-9-]+)\]$")
EXPECT_RE = re.compile(
    r"EXPECT(?P<next>-NEXT)?:\s*"
    r"(?P<ids>[a-z][a-z0-9-]*(?:\s*,\s*[a-z][a-z0-9-]*)*)")


def expected_findings(path: Path) -> set:
    exp = set()
    for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        m = EXPECT_RE.search(text)
        if m is None:
            continue
        target = lineno + (1 if m.group("next") else 0)
        for check in re.split(r"\s*,\s*", m.group("ids")):
            exp.add((target, check))
    return exp


def actual_findings(lint: str, path: Path):
    proc = subprocess.run([lint, str(path)], capture_output=True, text=True)
    found = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m is not None:
            found.add((int(m.group("line")), m.group("check")))
    return found, proc.returncode


def main() -> int:
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <hal-lint-binary> "
              "<fixture-dir-or-file>...", file=sys.stderr)
        return 2
    lint = sys.argv[1]
    fixtures = []
    for arg in sys.argv[2:]:
        p = Path(arg)
        fixtures.extend(sorted(p.rglob("*.cpp")) if p.is_dir() else [p])
    fixture_dir = Path(sys.argv[2])
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 2

    failures = 0
    for path in fixtures:
        expected = expected_findings(path)
        actual, rc = actual_findings(lint, path)
        problems = []
        for line, check in sorted(expected - actual):
            problems.append(f"  missing: expected [{check}] at line {line}")
        for line, check in sorted(actual - expected):
            problems.append(f"  extra:   unexpected [{check}] at line {line}")
        want_rc = 1 if expected else 0
        if rc != want_rc:
            problems.append(f"  exit:    got {rc}, want {want_rc}")
        name = (path.relative_to(fixture_dir)
                if fixture_dir.is_dir() and path.is_relative_to(fixture_dir)
                else path.name)
        if problems:
            failures += 1
            print(f"FAIL {name}")
            print("\n".join(problems))
        else:
            print(f"ok   {name} ({len(expected)} expected finding(s))")

    if failures:
        print(f"{failures}/{len(fixtures)} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"all {len(fixtures)} fixture(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
