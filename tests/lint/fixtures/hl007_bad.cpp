// Fixture: HL007 hal-memory-order-policy (known-bad).
//
// A miniature MpscQueue whose publication edges were downgraded: each bad
// access violates the allow table at the call site AND deletes the edge
// the policy's require rules pin to the function, so the function head
// is flagged too. Plus the drift cases (unknown policy name, marker
// dropped from a policy class) and a single-writer breach.
#include <atomic>

namespace fix {

template <typename T>
class MpscQueue {
  HAL_MEMORY_PROTOCOL("mpsc_queue");

 public:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value;
  };

  // Downgraded publication: exchange lost its release half, the next
  // pointer store is no longer a release.
  void push(Node* n) {  // EXPECT: hal-memory-order-policy
    Node* prev = head_.exchange(n, std::memory_order_acquire);  // EXPECT: hal-memory-order-policy
    prev->next.store(n, std::memory_order_relaxed);  // EXPECT: hal-memory-order-policy
  }

  // Downgraded consumption edge.
  Node* pop() {  // EXPECT: hal-memory-order-policy
    return tail_->next.load(std::memory_order_relaxed);  // EXPECT: hal-memory-order-policy
  }

  // Correct (and required): acquire read of the published next pointer.
  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

  // A relaxed load feeding a control decision without an advisory entry.
  std::uint64_t approx_size() const {
    if (size_.load(std::memory_order_relaxed) == 0) {  // EXPECT: hal-memory-order-policy
      return 0;
    }
    return size_.load(std::memory_order_relaxed);
  }

  // These protocols model ordering as access orders (TSan-visible), never
  // as fences.
  void fence_creep() {
    std::atomic_thread_fence(std::memory_order_seq_cst);  // EXPECT: hal-memory-order-policy
  }

 private:
  std::atomic<Node*> head_{nullptr};
  Node* tail_ = nullptr;
  std::atomic<std::uint64_t> size_{0};
};

// Marker naming a policy that does not exist in the table.
class Mystery {
  HAL_MEMORY_PROTOCOL("no_such_protocol");  // EXPECT: hal-memory-order-policy
};

// A policy class that lost its marker: the table still knows ws_deque is
// checked, so the drift is reported at the class head.
class WsDeque {  // EXPECT: hal-memory-order-policy
 public:
  void push_bottom(int* item);
};

// Single-writer protocol: atomics (and orders) are design breaches here.
class FrameBuilder {
  HAL_MEMORY_PROTOCOL("frame_deadlines");

 public:
  void add() {
    count_.store(1, std::memory_order_release);  // EXPECT: hal-memory-order-policy
  }

 private:
  std::atomic<std::uint32_t> count_{0};  // EXPECT: hal-memory-order-policy
};

}  // namespace fix
