// Fixture: HL005 hal-capability-coverage (known-good).
//
// Every way a member can legitimately satisfy the coverage contract:
// HAL_GUARDED_BY annotation, const / static / reference members,
// delegation to a self-guarding type, and a reasoned class-level
// suppression for a hand-audited root object.
namespace hal::check {
class NodeAffinityGuard {};
}  // namespace hal::check

namespace fix {

struct Stats {};

// Self-guarding: owns its guard and annotates its own mutable state.
class InnerTable {
 public:
  void put(int key, int value);

 private:
  hal::check::NodeAffinityGuard affinity_;
  int rows_ HAL_GUARDED_BY(affinity_) = 0;
};

class CoveredTable {
 public:
  void put(int key, int value);

 private:
  hal::check::NodeAffinityGuard affinity_;
  int counter_ HAL_GUARDED_BY(affinity_) = 0;
  const int capacity_ = 64;
  static int instances_;
  Stats& stats_;
  InnerTable inner_;  // delegation: InnerTable is self-guarding
};

// HAL_LINT_SUPPRESS(hal-capability-coverage): fixture — root object whose
// members are only touched downstream of asserted entry points.
class AuditedRoot {
 public:
  void step();

 private:
  hal::check::NodeAffinityGuard affinity_;
  int epoch_ = 0;
  int cursor_ = 0;
};

}  // namespace fix
