// Fixture: HL006 hal-park-loop-protocol (known-good).
//
// The full ThreadMachine-style handshake: the park flag is re-armed with a
// seq_cst exchange at the top of every loop iteration — before EACH
// predicate evaluation — and disarmed with a seq_cst exchange after the
// loop; the sender side lowers it with the matching RMW and notifies under
// the mutex when it observed true.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace fix {

struct NodeRec {
  std::atomic<bool> sleeping{false};
  std::condition_variable cv;
  std::mutex m;
};

bool pred();
std::chrono::steady_clock::time_point due();

void park(NodeRec& rec, bool deadline) {
  std::unique_lock<std::mutex> lock(rec.m);
  for (;;) {
    rec.sleeping.exchange(true, std::memory_order_seq_cst);
    if (pred()) break;
    if (deadline) {
      if (rec.cv.wait_until(lock, due()) == std::cv_status::timeout) {
        break;
      }
    } else {
      rec.cv.wait(lock);
    }
  }
  rec.sleeping.exchange(false, std::memory_order_seq_cst);
}

// Sender side of the handshake: lower the flag with the same seq_cst RMW;
// only a true->false transition pays the mutex + notify.
void wake(NodeRec& rec) {
  if (rec.sleeping.exchange(false, std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> g(rec.m);
    rec.cv.notify_one();
  }
}

}  // namespace fix
