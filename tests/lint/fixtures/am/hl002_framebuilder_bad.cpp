// Fixture: HL002 hal-buffer-lifecycle (known-bad) — FrameBuilder mistakes
// the wire-batching layer must not make.
//
// Each function breaks the frame-buffer discipline a different way: the
// empty-flush branch forgets to retire the reservation; a packed record's
// payload is retired twice (once by the pack, again by a shared cleanup);
// reopening a frame re-reserves while the previous buffer is still owned.
namespace fix {

struct Bytes {};
struct Pool {
  Bytes reserve(unsigned n);
  Bytes acquire(unsigned n);
  void release(Bytes b);
};

void wire_push(Bytes b);
void copy_record_into(Bytes& frame, const Bytes& payload);

class BadFrameBuilder {
 public:
  // Flushing an empty frame bails out — and the reservation leaks.
  void flush_leaks_when_empty(Pool& pool, bool empty) {
    Bytes frame = pool.reserve(4096);
    if (empty) {
      return;  // EXPECT: hal-buffer-lifecycle
    }
    wire_push(std::move(frame));
  }

  // The pack retires the record payload, then a shared cleanup path
  // retires it again — the receiver would poison-trip on the second.
  void pack_double_retires(Pool& pool, unsigned n) {
    Bytes payload = pool.acquire(n);
    Bytes frame = pool.reserve(4096);
    copy_record_into(frame, payload);
    pool.release(std::move(payload));
    pool.release(std::move(payload));  // EXPECT: hal-buffer-lifecycle
    wire_push(std::move(frame));
  }

  // Reopening re-reserves while the previous frame buffer is still owned,
  // dropping the held records on the floor.
  void reopen_drops_open_frame(Pool& pool) {
    Bytes frame = pool.reserve(4096);
    frame = pool.reserve(4096);  // EXPECT: hal-buffer-lifecycle
    wire_push(std::move(frame));
  }
};

}  // namespace fix
