// Fixture: HL004 hal-wire-hygiene (known-bad).
//
// Lives under am/ so it is in wire scope. Serialisation must go through
// the word-wise codec: no reinterpret_cast, no magic memcpy byte counts,
// no sizeof(padded wire struct) shipped to another host.
#include <cstring>

namespace fix {

struct Packet {
  unsigned long long words[6];
};

void encode(Packet& p, const char* src, char* dst) {
  const auto* w = reinterpret_cast<const unsigned long long*>(src);  // EXPECT: hal-wire-hygiene
  p.words[0] = w[0];
  std::memcpy(dst, src, 24);  // EXPECT: hal-wire-hygiene
  std::memcpy(dst, &p, sizeof(Packet));  // EXPECT: hal-wire-hygiene
}

}  // namespace fix
