// Fixture: HL004 hal-wire-hygiene (known-good).
//
// The sanctioned shapes: word-wise stores, memcpy sized by a named
// constant or sizeof of a fixed-width scalar, payloads moved as counted
// byte ranges.
#include <cstdint>
#include <cstring>

namespace fix {

struct Packet {
  std::uint64_t words[6];
};

constexpr std::size_t kHeaderBytes = 24;

void encode(Packet& p, std::uint64_t a, std::uint64_t b, char* dst,
            const char* payload, std::size_t payload_bytes) {
  p.words[0] = a;
  p.words[1] = b;
  std::memcpy(dst, payload, payload_bytes);
  std::memcpy(dst + payload_bytes, &p.words[0], sizeof(std::uint64_t));
  std::memcpy(dst, payload, kHeaderBytes);
}

}  // namespace fix
