// Fixture: HL002 hal-buffer-lifecycle (known-good) — the FrameBuilder
// idiom of the wire-batching layer (src/am/wire_batch.cpp).
//
// Sanctioned shapes: a frame buffer reserved lazily on the first append
// (empty/owned join, then a single move); a record payload retired into
// the pool after its bytes are copied into the frame; an emit path that
// ships the closed frame exactly once; an abandon path that retires an
// unshipped frame at teardown.
namespace fix {

struct Bytes {};
struct Pool {
  Bytes reserve(unsigned n);
  Bytes acquire(unsigned n);
  void release(Bytes b);
};

void wire_push(Bytes b);
void copy_record_into(Bytes& frame, const Bytes& payload);

class GoodFrameBuilder {
 public:
  // Lazy open: the buffer is reserved only when the first record lands.
  // The E/O join at the merge point is legal — moving an empty Bytes is a
  // no-op, and the owned branch's buffer reaches wire_push exactly once.
  void append_then_ship(Pool& pool, const Bytes& payload, bool open) {
    Bytes frame;
    if (!open) {
      frame = pool.reserve(4096);
    }
    copy_record_into(frame, payload);
    wire_push(std::move(frame));
  }

  // A record's payload retires into the pool once its bytes are packed —
  // the frame owns the only live copy from here on.
  void pack_record(Pool& pool, unsigned n) {
    Bytes payload = pool.acquire(n);
    Bytes frame = pool.reserve(4096);
    copy_record_into(frame, payload);
    pool.release(std::move(payload));
    wire_push(std::move(frame));
  }

  // Flushing an empty frame retires the reservation instead of shipping a
  // zero-record packet.
  void flush(Pool& pool, bool empty) {
    Bytes frame = pool.reserve(4096);
    if (empty) {
      pool.release(std::move(frame));
      return;
    }
    wire_push(std::move(frame));
  }
};

}  // namespace fix
