// Fixture: HL002 hal-buffer-lifecycle (known-good) — the retransmit-queue
// idiom of the reliable link (src/am/link.cpp).
//
// Sanctioned shapes: a master clone handed off by return; a wire copy
// retired by the injected-drop branch and shipped otherwise; a duplicated
// transmission where each physical copy reaches exactly one consumer; a
// cumulative ack retiring the master exactly once.
namespace fix {

struct Bytes {};
struct Pool {
  Bytes acquire(unsigned n);
  void release(Bytes b);
};

void wire_push(Bytes b);

class GoodLink {
 public:
  // Masters are cloned from the pool and handed to the pending map by
  // return — ownership transfers to the caller.
  Bytes clone_master(unsigned n) {
    Bytes b = pool_.acquire(n);
    return b;
  }

  // Each (re)transmission ships a fresh clone; the injected-drop branch
  // retires it instead of shipping.
  void transmit(unsigned n, bool dropped) {
    Bytes copy = pool_.acquire(n);
    if (dropped) {
      pool_.release(std::move(copy));
      return;
    }
    wire_push(std::move(copy));
  }

  // An injected duplicate puts two physical copies on the wire; each is
  // consumed exactly once.
  void transmit_duplicated(unsigned n) {
    Bytes first = pool_.acquire(n);
    Bytes second = pool_.acquire(n);
    wire_push(std::move(first));
    wire_push(std::move(second));
  }

  // A cumulative ack retires the master clone exactly once.
  void on_ack(unsigned n) {
    Bytes master = pool_.acquire(n);
    pool_.release(std::move(master));
  }

 private:
  Pool pool_;
};

}  // namespace fix
