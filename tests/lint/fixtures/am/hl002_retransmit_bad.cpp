// Fixture: HL002 hal-buffer-lifecycle (known-bad) — retransmit-queue
// mistakes the reliable link must not make.
//
// Each function breaks the clone discipline a different way: the injected
// drop forgets to retire the wire copy; a duplicate-suppression path
// retires the same payload twice; retransmission re-clones while the
// previous clone is still owned.
namespace fix {

struct Bytes {};
struct Pool {
  Bytes acquire(unsigned n);
  void release(Bytes b);
};

void wire_push(Bytes b);

class BadLink {
 public:
  // The injector decided to drop the copy — and the clone leaks.
  void transmit_leaks_on_drop(unsigned n, bool dropped) {
    Bytes copy = pool_.acquire(n);
    if (dropped) {
      return;  // EXPECT: hal-buffer-lifecycle
    }
    wire_push(std::move(copy));
  }

  // Duplicate suppression retires the payload, then a shared cleanup path
  // retires it again — the double-retire the dead-letter path once had.
  void dedupe_double_retires(unsigned n) {
    Bytes dup = pool_.acquire(n);
    pool_.release(std::move(dup));
    pool_.release(std::move(dup));  // EXPECT: hal-buffer-lifecycle
  }

  // Re-cloning for a retransmission while the previous wire copy is still
  // owned drops the first clone on the floor.
  void retransmit_reclones(unsigned n) {
    Bytes copy = pool_.acquire(n);
    copy = pool_.acquire(n);  // EXPECT: hal-buffer-lifecycle
    wire_push(std::move(copy));
  }

 private:
  Pool pool_;
};

}  // namespace fix
