// Fixture: HL003 hal-actor-state-escape (known-bad).
//
// Behaviour classes (HAL_BEHAVIOR) hand continuations to request() /
// make_join(); the actor may migrate before the reply arrives, so
// capturing `this` or stack frames by reference is a hazard.
namespace fix {

struct Address {};
struct Context {
  Address self();
  template <typename Fn>
  void request(Address to, Fn&& k);
};

class Counter {
 public:
  HAL_BEHAVIOR(Counter, &Counter::on_inc, &Counter::on_sum)

  void on_inc(Context& ctx, Address peer) {
    ctx.request(peer, [this](int r) { total_ += r; });  // EXPECT: hal-actor-state-escape
  }

  void on_sum(Context& ctx, Address peer) {
    int partial = 0;
    ctx.request(peer, [&partial](int r) { partial += r; });  // EXPECT: hal-actor-state-escape
    ctx.request(peer, [&](int r) { total_ += r; });  // EXPECT: hal-actor-state-escape
  }

 private:
  int total_ = 0;
};

}  // namespace fix
