// Fixture: HL008 hal-send-graph (known-bad).
//
// One handler id per failure mode of the send/handler graph: decoded but
// never sent (unreachable), sent but never decoded (default-arm panic),
// defined but never used (dead vocabulary), a decode arm reading a word
// slot no encode site writes (word-count drift), and a decode path —
// through the forwarded handler function — reading a payload no encode
// site attaches.
namespace fix {

enum Handler : unsigned {
  kHPing,
  kHOrphan,
  kHGhost,  // EXPECT: hal-send-graph
  kHDrift,
  kHPayloadless,
  kHUnrouted,
};

struct Bytes {
  unsigned char* data;
};

struct Packet {
  Handler handler;
  unsigned long words[6];
  Bytes payload;
};

void use(unsigned long a, unsigned long b);
void use_bytes(const Bytes& b);

void send_ping(Packet& p) {
  p.handler = kHPing;
  p.words = {1, 2};
}

void send_drift(Packet& p) {
  p.handler = kHDrift;
  p.words[0] = 7;
}

void send_payloadless(Packet& p) {
  p.handler = kHPayloadless;
  p.words = {1, 2, 3};
}

void send_unrouted(Packet& p) {
  p.handler = kHUnrouted;  // EXPECT: hal-send-graph
}

void on_drift(const Packet& p) {
  use(p.words[0], p.words[2]);
}

void on_payloadless(const Packet& p) {
  use_bytes(p.payload);
}

void dispatch(Packet& p) {
  switch (p.handler) {
    case kHPing:  // EXPECT: hal-send-graph
      use(p.words[0], p.words[3]);
      break;
    case kHOrphan:  // EXPECT: hal-send-graph
      break;
    case kHDrift:  // EXPECT: hal-send-graph
      on_drift(p);
      break;
    case kHPayloadless:  // EXPECT: hal-send-graph
      on_payloadless(p);
      break;
    default:
      break;
  }
}

}  // namespace fix
