// Fixture: HL005 hal-capability-coverage (known-bad).
//
// A class that owns a NodeAffinityGuard has opted into the per-node
// single-writer discipline; every mutable member must be annotated
// HAL_GUARDED_BY, delegate to a self-guarding type, or carry a reasoned
// suppression.
namespace hal::check {
class NodeAffinityGuard {};
}  // namespace hal::check

namespace fix {

class LeakyTable {
 public:
  void put(int key, int value);

 private:
  hal::check::NodeAffinityGuard affinity_;
  int counter_ = 0;  // EXPECT: hal-capability-coverage
  int* rows_ = nullptr;  // EXPECT: hal-capability-coverage
};

}  // namespace fix
