// Fixture: HL010 hal-stale-suppress (known-bad).
//
// Well-formed suppressions that silence nothing are stale: the code they
// excused was fixed or moved, and a lingering escape hatch would silently
// swallow the next real finding on that line. Malformed suppressions stay
// HL000's findings alone — the last case pins that there is no double
// report.
namespace fix {

// Own-line form, nothing fires on the covered line any more.
// EXPECT-NEXT: hal-stale-suppress
// HAL_LINT_SUPPRESS(hal-handler-purity): obsolete — the allocation moved.
void fixed_long_ago(int v);

// Same-line form, equally dead.
// EXPECT-NEXT: hal-stale-suppress
void also_fixed(int v);  // HAL_LINT_SUPPRESS(hal-buffer-lifecycle): stale.

// Malformed (no reason): HL000's finding, NOT also reported as stale.
// EXPECT-NEXT: hal-suppress-needs-reason
// HAL_LINT_SUPPRESS(hal-wire-hygiene)
void malformed(int v);

}  // namespace fix
