// Fixture: HL001 hal-handler-purity (known-bad).
//
// BadClient::handle is an AM handler root (a `handle` override of a
// NodeClient-derived class); the closure must flag allocation, blocking
// primitives, std::function, and executor re-entry both directly in the
// handler and in helpers it reaches.
#include <functional>
#include <memory>
#include <mutex>

namespace am {
class NodeClient {};
class Machine {
 public:
  void run();
};
}  // namespace am

namespace fix {

class BadClient : public am::NodeClient {
 public:
  void handle(int selector) {
    auto boxed = std::make_unique<int>(selector);  // EXPECT: hal-handler-purity
    int* raw = new int(selector);                  // EXPECT: hal-handler-purity
    helper(*raw);
    machine_.run();  // EXPECT: hal-handler-purity
  }

  void helper(int v) {
    std::lock_guard<std::mutex> lock(mu_);  // EXPECT: hal-handler-purity
    std::function<void(int)> cb = [](int) {};  // EXPECT: hal-handler-purity
    pending_ = v;
  }

 private:
  am::Machine& machine_;
  std::mutex mu_;
  int pending_ = 0;
};

}  // namespace fix
