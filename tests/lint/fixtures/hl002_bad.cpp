// Fixture: HL002 hal-buffer-lifecycle (known-bad).
//
// Pooled buffers must reach exactly one consumer on every path. Each
// function below breaks the discipline a different way; diagnostics land
// on the offending statement (or the closing brace for fall-off leaks).
namespace fix {

struct Bytes {};
struct Pool {
  Bytes acquire(unsigned n);
  Bytes reserve(unsigned n);
};

void ship(Bytes b);

class BadCodec {
 public:
  // Consumed in the branch, leaked on the fall-through path.
  void leak_on_branch(unsigned n, bool flag) {
    Bytes b = pool_.acquire(n);
    if (flag) {
      ship(std::move(b));
    }
  }  // EXPECT: hal-buffer-lifecycle

  // The second move hands its consumer an empty buffer.
  void double_move(unsigned n) {
    Bytes b = pool_.acquire(n);
    ship(std::move(b));
    ship(std::move(b));  // EXPECT: hal-buffer-lifecycle
  }

  // Re-acquiring while still owned drops the first buffer on the floor.
  void leak_reacquire(unsigned n) {
    Bytes b = pool_.acquire(n);
    b = pool_.acquire(n + 1);  // EXPECT: hal-buffer-lifecycle
    ship(std::move(b));
  }

  // Early return with the buffer still owned.
  int early_return(unsigned n, bool flag) {
    Bytes b = pool_.reserve(n);
    if (flag) {
      return -1;  // EXPECT: hal-buffer-lifecycle
    }
    ship(std::move(b));
    return 0;
  }

 private:
  Pool pool_;
};

}  // namespace fix
