// Fixture: HL003 hal-actor-state-escape (known-good).
//
// Continuations that survive migration: scalars and the actor's own
// address captured by value; lambdas outside request()/make_join() (e.g.
// immediate algorithms) may capture whatever they like.
namespace fix {

struct Address {};
struct Context {
  Address self();
  template <typename Fn>
  void request(Address to, Fn&& k);
  template <typename Fn>
  void send_local(Fn&& k);
};

void sort_with(int* begin, int* end, int pivot);

class Counter {
 public:
  HAL_BEHAVIOR(Counter, &Counter::on_inc)

  void on_inc(Context& ctx, Address peer) {
    const Address me = ctx.self();
    const int weight = weight_;
    ctx.request(peer, [me, weight](int r) { reply(me, r * weight); });
  }

  void on_local(Context& ctx) {
    // Not a remote continuation: runs synchronously, frame still alive.
    int scratch = 0;
    ctx.send_local([&scratch](int r) { scratch += r; });
  }

  static void reply(Address to, int v);

 private:
  int weight_ = 1;
};

}  // namespace fix
