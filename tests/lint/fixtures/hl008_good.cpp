// Fixture: HL008 hal-send-graph (known-good).
//
// Matched sides: the aggregate `p.words = {...}` encode covers every slot
// the decode arm (and the handler function it forwards to) reads, the
// payload travels on both sides, and an id routed through a registration
// aggregate (BulkHandlers-style generic mention) is evidence for both
// directions — indirection is not misreported as unreachable.
namespace fix {

enum Handler : unsigned {
  kHPing,
  kHStats,
  kHBulkData,
};

struct Bytes {
  unsigned char* data;
};

struct Packet {
  Handler handler;
  unsigned long words[6];
  Bytes payload;
};

struct BulkHandlers {
  Handler data;
};

Bytes make_payload();
void use(unsigned long a, unsigned long b);
void use_bytes(const Bytes& b);

void send_ping(Packet& p) {
  p.handler = kHPing;
  p.words = {1, 2, 3, 4, 5, 6};
  p.payload = make_payload();
}

void send_stats(Packet& p) {
  p.handler = kHStats;
  p.words[0] = 1;
  p.words[1] = 2;
}

// Registration aggregate: the id flows through a variable from here on,
// like the kernel's BulkHandlers wiring.
BulkHandlers register_bulk() {
  return BulkHandlers{kHBulkData};
}

void on_ping(const Packet& p) {
  use(p.words[0], p.words[5]);
  use_bytes(p.payload);
}

void dispatch(Packet& p) {
  switch (p.handler) {
    case kHPing: {
      on_ping(p);
      break;
    }
    case kHStats:
      use(p.words[0], p.words[1]);
      break;
    default:
      break;
  }
}

}  // namespace fix
