// Fixture: HL009 hal-epoch-conservation (known-good).
//
// Every publish onto an epoch-counted channel is preceded by note_sent
// (count-before-visible), every take either bumps the handled epoch,
// re-publishes the already-counted packet onto another counted channel
// (inject -> local transfer), or returns it to the accounting caller
// (next_runnable handing the slot to run_node).
namespace fix {

struct Slot {
  unsigned id;
};

template <typename T>
struct Deque {
  void push_bottom(T* v);
  T* pop_bottom();
  T* steal_top();
};

template <typename T>
struct Queue {
  void push(T* v);
  T* pop();
};

struct Detector {
  void note_sent();
  void note_handled();
};

void execute(Slot* s);

struct MnSched {
  Deque<Slot> local HAL_EPOCH_COUNTED;
  Queue<Slot> inject HAL_EPOCH_COUNTED;
  Detector detector_;

  // Count-before-visible on both the on-pool and off-pool paths.
  void enqueue(Slot* s, bool on_pool) {
    detector_.note_sent();
    if (on_pool) {
      local.push_bottom(s);
    } else {
      inject.push(s);
    }
  }

  // Transfers and escapes: inject->local re-publishes a counted packet,
  // pop_bottom/steal_top hand the slot to the caller's accounting.
  Slot* next_runnable(MnSched& victim) {
    while (Slot* n = inject.pop()) {
      local.push_bottom(n);
    }
    if (Slot* s = local.pop_bottom()) {
      return s;
    }
    return victim.local.steal_top();
  }

  void run_node(Slot* s) {
    execute(s);
    detector_.note_handled();
  }
};

}  // namespace fix
