// Fixture: HL010 hal-stale-suppress (known-good).
//
// A suppression that actually silences a diagnostic is honoured, not
// stale: the lambda below captures `this` inside a behaviour method,
// which HL003 would flag, and the reasoned suppression consumes exactly
// that finding — so the full run is clean.
namespace fix {

struct Address {};
struct Context {
  Address self();
  template <typename Fn>
  void request(Address to, Fn&& k);
};

class Counter {
 public:
  HAL_BEHAVIOR(Counter, &Counter::on_inc)

  void on_inc(Context& ctx, Address peer) {
    // HAL_LINT_SUPPRESS(hal-actor-state-escape): fixture — this driver is
    // pinned for the whole run and can never migrate.
    ctx.request(peer, [this](int r) { total_ += r; });
  }

 private:
  int total_ = 0;
};

}  // namespace fix
