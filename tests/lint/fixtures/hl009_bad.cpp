// Fixture: HL009 hal-epoch-conservation (known-bad).
//
// The first function is the historical dropped-bump shape: a delivery path
// publishes a packet onto an epoch-counted channel without note_sent, so
// `sent - handled` no longer counts it and the termination detector can
// declare quiescence over an in-flight message. The others pin the
// count-after-visible ordering bug and the unaccounted take.
namespace fix {

struct Packet {
  unsigned dst;
};

template <typename T>
struct Queue {
  void push(T v);
  T* pop();
};

struct Detector {
  void note_sent();
  void note_handled();
};

void dispatch(Packet* p);

struct NodeExecutor {
  Queue<Packet>** mailboxes_ HAL_EPOCH_COUNTED;
  Detector detector_;

  // Dropped bump: the retransmit-path bug shape.
  void post(Packet p) {
    mailboxes_[p.dst]->push(p);  // EXPECT: hal-epoch-conservation
  }

  // Bump AFTER the packet is visible: a racing all_idle() between the
  // push and the bump sees balanced epochs over a live packet.
  void post_late(Packet p) {
    mailboxes_[p.dst]->push(p);  // EXPECT: hal-epoch-conservation
    detector_.note_sent();
  }

  // Unaccounted take through a reference alias: dispatched but the
  // handled epoch never moves.
  void drain_one(unsigned node) {
    Queue<Packet>& q = *mailboxes_[node];
    Packet* p = q.pop();  // EXPECT: hal-epoch-conservation
    dispatch(p);
  }
};

}  // namespace fix
