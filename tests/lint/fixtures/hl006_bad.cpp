// Fixture: HL006 hal-park-loop-protocol (known-bad).
//
// The first function is the exact PR 8 lost-wakeup shape: the park flag
// armed once before the wait loop, so a wakeup that re-reads the mailbox
// transiently empty (Vyukov MPSC empty() may report true over a completed
// push hidden behind another producer's half-finished one) re-parks with
// the flag already down — the gap-closing producer reads false, skips its
// notify, and the node sleeps over a live packet forever.
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace fix {

struct NodeRec {
  std::atomic<bool> sleeping{false};
  std::condition_variable cv;
  std::mutex m;
};

bool pred();

// PR 8 shape: arm hoisted out of the loop.
void park_armed_before_loop(NodeRec& rec) {
  std::unique_lock<std::mutex> lock(rec.m);
  rec.sleeping.exchange(true, std::memory_order_seq_cst);
  for (;;) {
    if (pred()) break;
    rec.cv.wait(lock);  // EXPECT: hal-park-loop-protocol
  }
  rec.sleeping.exchange(false, std::memory_order_seq_cst);
}

// Never arms at all.
void park_never_arms(NodeRec& rec) {
  std::unique_lock<std::mutex> lock(rec.m);
  for (;;) {
    if (pred()) break;
    rec.cv.wait(lock);  // EXPECT: hal-park-loop-protocol
  }
  rec.sleeping.exchange(false, std::memory_order_seq_cst);
}

// Arms in the right place but with a weakened order: the proof leans on
// the seq_cst RMW chain.
void park_weak_arm(NodeRec& rec) {
  std::unique_lock<std::mutex> lock(rec.m);
  for (;;) {
    rec.sleeping.exchange(true, std::memory_order_acq_rel);  // EXPECT: hal-park-loop-protocol
    if (pred()) break;
    rec.cv.wait(lock);
  }
  rec.sleeping.exchange(false, std::memory_order_seq_cst);
}

// store() is not an RMW, so it does not join the exchange chain — and the
// loop is left with no seq_cst disarm at all.
void park_store_disarm(NodeRec& rec) {
  std::unique_lock<std::mutex> lock(rec.m);
  for (;;) {
    rec.sleeping.exchange(true, std::memory_order_seq_cst);
    if (pred()) break;
    rec.cv.wait(lock);
  }  // EXPECT: hal-park-loop-protocol
  rec.sleeping.store(false, std::memory_order_seq_cst);  // EXPECT: hal-park-loop-protocol
}

// Predicate-form wait: the library re-evaluates the predicate internally
// with no chance to re-arm in between.
void park_predicate_form(NodeRec& rec) {
  std::unique_lock<std::mutex> lock(rec.m);
  rec.sleeping.exchange(true, std::memory_order_seq_cst);
  rec.cv.wait(lock, [&] { return pred(); });  // EXPECT: hal-park-loop-protocol
  rec.sleeping.exchange(false, std::memory_order_seq_cst);
}

// Plain assignment bypasses the RMW chain entirely.
void flag_assignment(NodeRec& rec) {
  rec.sleeping = true;  // EXPECT: hal-park-loop-protocol
}

}  // namespace fix
