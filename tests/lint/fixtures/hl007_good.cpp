// Fixture: HL007 hal-memory-order-policy (known-good).
//
// The same protocols with their reviewed orders intact: the Vyukov queue's
// acq_rel/release publication and acquire consumption, a relaxed ctor
// init allowed by function-scoped rule, an advisory-listed relaxed load in
// a control decision (MnMachine::maybe_wake_thief), and an all-plain
// single-writer FrameBuilder.
#include <atomic>

namespace fix {

template <typename T>
class MpscQueue {
  HAL_MEMORY_PROTOCOL("mpsc_queue");

 public:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value;
  };

  MpscQueue() {
    head_.store(&stub_, std::memory_order_relaxed);  // pre-publication
  }

  void push(Node* n) {
    size_.fetch_add(1, std::memory_order_relaxed);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  Node* pop() {
    Node* next = tail_->next.load(std::memory_order_acquire);
    if (next != nullptr) size_.fetch_sub(1, std::memory_order_relaxed);
    return next;
  }

  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Node*> head_{nullptr};
  Node* tail_ = nullptr;
  Node stub_;
  std::atomic<std::uint64_t> size_{0};
};

// Advisory reads: the (sleepers_, maybe_wake_thief) pair is allow-listed —
// a stale read only skips an optional wake, never a correctness step.
class MnMachine {
  HAL_MEMORY_PROTOCOL("mn_scheduler");

 public:
  void maybe_wake_thief() {
    if (sleepers_.load(std::memory_order_relaxed) == 0) {
      return;
    }
    wake_epoch_.fetch_add(1);
  }

 private:
  std::atomic<int> sleepers_{0};
  std::atomic<std::uint64_t> wake_epoch_{0};
};

// Single-writer: plain fields, no orders anywhere.
class FrameBuilder {
  HAL_MEMORY_PROTOCOL("frame_deadlines");

 public:
  void add(std::uint64_t now) {
    if (count_ == 0) deadline_ = now + holdoff_;
    ++count_;
  }

 private:
  std::uint32_t count_ = 0;
  std::uint64_t deadline_ = 0;
  std::uint64_t holdoff_ = 0;
};

}  // namespace fix
