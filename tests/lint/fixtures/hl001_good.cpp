// Fixture: HL001 hal-handler-purity (known-good).
//
// A handler that stays on the fast path: no allocation, no blocking, and
// a reasoned suppression stopping the closure at a hand-audited subtree.
#include <memory>

namespace am {
class NodeClient {};
}  // namespace am

namespace fix {

class GoodClient : public am::NodeClient {
 public:
  void handle(int selector) {
    dispatch(selector);
    if (selector < 0) cold_path(selector);
  }

  void dispatch(int v) { pending_ = pending_ * 31 + v; }

  // HAL_LINT_SUPPRESS(hal-handler-purity): fixture — cold error path, runs
  // once per process at most; allocation here is audited and acceptable.
  void cold_path(int v) {
    diagnostics_ = std::make_unique<int>(v);
  }

 private:
  int pending_ = 0;
  std::unique_ptr<int> diagnostics_;
};

// Allocation outside any handler closure is not HL001's business.
inline std::unique_ptr<int> bootstrap_helper(int v) {
  return std::make_unique<int>(v);
}

}  // namespace fix
