// Fixture: HL002 hal-buffer-lifecycle (known-good).
//
// The disciplined shapes: straight-line acquire/ship, the receive-path
// idiom (conditionally filled, unconditionally moved — moving an empty
// buffer is a legal no-op), branch-complete retirement, and ownership
// transfer by return.
namespace fix {

struct Bytes {};
struct Pool {
  Bytes acquire(unsigned n);
  void release(Bytes b);
};

void ship(Bytes b);
void deliver(Bytes b);

class GoodCodec {
 public:
  void ship_once(unsigned n) {
    Bytes b = pool_.acquire(n);
    ship(std::move(b));
  }

  // The on_reply idiom: a body-less message leaves `b` empty.
  void conditional_fill(unsigned n, bool has_body) {
    Bytes b;
    if (has_body) {
      b = pool_.acquire(n);
    }
    deliver(std::move(b));
  }

  // Both branches retire; nothing survives the if.
  void branch_complete(unsigned n, bool flag) {
    Bytes b = pool_.acquire(n);
    if (flag) {
      ship(std::move(b));
    } else {
      pool_.release(std::move(b));
    }
  }

  // Returning the buffer transfers ownership to the caller.
  Bytes hand_off(unsigned n) {
    Bytes b = pool_.acquire(n);
    return b;
  }

 private:
  Pool pool_;
};

}  // namespace fix
