// Fixture: HL000 hal-suppress-needs-reason (known-good).
namespace fix {

// Canonical form: check id plus a reason.
// HAL_LINT_SUPPRESS(hal-handler-purity): fixture — audited by hand.
void own_line_form(int v);

void same_line_form(int v);  // HAL_LINT_SUPPRESS(hal-buffer-lifecycle): fixture.

// Several checks at once, by id or code, with one shared reason.
// HAL_LINT_SUPPRESS(hal-wire-hygiene, HL005): fixture — legacy shim.
void multi_check_form(int v);

// Wildcard is allowed as long as the reason says why.
// HAL_LINT_SUPPRESS(*): fixture — generated code, excluded wholesale.
void wildcard_form(int v);

}  // namespace fix
