// Fixture: HL000 hal-suppress-needs-reason (known-good forms).
//
// Every suppression below is well-formed — named check(s) plus a reason —
// so none is an HL000 finding. But none of them silences a real
// diagnostic in this file either, so each IS an HL010 hal-stale-suppress
// finding: the two checks split the suppression-hygiene contract exactly
// there (malformed is HL000's alone, well-formed-but-dead is HL010's
// alone, never both), and this fixture pins that boundary together with
// hl000_bad.cpp and hl010_good.cpp.
namespace fix {

// Canonical form: check id plus a reason.
// EXPECT-NEXT: hal-stale-suppress
// HAL_LINT_SUPPRESS(hal-handler-purity): fixture — audited by hand.
void own_line_form(int v);

// EXPECT-NEXT: hal-stale-suppress
void same_line_form(int v);  // HAL_LINT_SUPPRESS(hal-buffer-lifecycle): fixture.

// Several checks at once, by id or code, with one shared reason.
// EXPECT-NEXT: hal-stale-suppress
// HAL_LINT_SUPPRESS(hal-wire-hygiene, HL005): fixture — legacy shim.
void multi_check_form(int v);

// Wildcard is allowed as long as the reason says why.
// EXPECT-NEXT: hal-stale-suppress
// HAL_LINT_SUPPRESS(*): fixture — generated code, excluded wholesale.
void wildcard_form(int v);

}  // namespace fix
