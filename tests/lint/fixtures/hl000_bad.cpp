// Fixture: HL000 hal-suppress-needs-reason (known-bad).
//
// Every HAL_LINT_SUPPRESS must name a known check and carry a reason.
// Markers: `EXPECT-NEXT:` flags the following line because the diagnostic
// lands on the suppression comment itself, and putting `EXPECT:` inside
// that comment would read as its reason string.
namespace fix {

// A suppression with no reason at all.
// EXPECT-NEXT: hal-suppress-needs-reason
// HAL_LINT_SUPPRESS(hal-handler-purity)
void reasonless(int v);

// A reason, but the check name is misspelled.
// EXPECT-NEXT: hal-suppress-needs-reason
// HAL_LINT_SUPPRESS(hal-handler-pureness): totally sound, trust me
void misspelled(int v);

// An empty check list (and a reason, so only the list is wrong).
// EXPECT-NEXT: hal-suppress-needs-reason
// HAL_LINT_SUPPRESS(): which check did you mean?
void empty_list(int v);

}  // namespace fix
