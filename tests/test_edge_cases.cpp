// Edge cases and failure injection: terminated receivers (dead letters),
// payload size boundaries (inline packet vs bulk protocol crossover),
// argument-codec limits, self-sends, deep message chains, and large reply
// blobs.
#include <gtest/gtest.h>

#include "runtime/api.hpp"

namespace hal {
namespace {

class Echo : public ActorBase {
 public:
  void on_ping(Context& ctx) {
    ++pings;
    ctx.reply(std::int64_t{1});
  }
  void on_die(Context& ctx) { ctx.terminate(); }
  void on_blob(Context& ctx, Bytes data) {
    const auto size = static_cast<std::uint64_t>(data.size());
    bytes_seen += static_cast<std::int64_t>(size);
    // Echo the payload back through the reply path.
    ctx.reply_blob(size, std::move(data));
  }
  void on_self_spam(Context& ctx, std::int64_t remaining) {
    ++self_hits;
    if (remaining > 0) {
      ctx.send<&Echo::on_self_spam>(ctx.self(), remaining - 1);
    }
  }
  HAL_BEHAVIOR(Echo, &Echo::on_ping, &Echo::on_die, &Echo::on_blob,
               &Echo::on_self_spam)
  inline static std::int64_t pings = 0;
  inline static std::int64_t bytes_seen = 0;
  inline static std::int64_t self_hits = 0;

  static void reset() { pings = bytes_seen = self_hits = 0; }
};

struct EdgeFixture : ::testing::Test {
  void SetUp() override { Echo::reset(); }
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    return c;
  }
};

// --- Dead letters ----------------------------------------------------------------

TEST_F(EdgeFixture, SendToTerminatedActorIsDeadLettered) {
  Runtime rt(cfg(1));
  rt.load<Echo>();
  const MailAddress e = rt.spawn<Echo>(0);
  rt.inject<&Echo::on_die>(e);
  rt.inject<&Echo::on_self_spam>(e, std::int64_t{0});  // after death
  rt.run();
  EXPECT_EQ(rt.dead_letters(), 1u);
  EXPECT_EQ(Echo::self_hits, 0);
}

TEST_F(EdgeFixture, RemoteSendToTerminatedActorIsDeadLettered) {
  Runtime rt(cfg(2));
  rt.load<Echo>();
  const MailAddress e = rt.spawn<Echo>(1);
  rt.inject<&Echo::on_die>(e);

  // A second actor on node 0 sends to the dead receiver after a delay.
  class Late : public ActorBase {
   public:
    void on_go(Context& ctx, MailAddress t) {
      ctx.charge_ns(1'000'000);
      ctx.send<&Echo::on_self_spam>(t, std::int64_t{3});
    }
    HAL_BEHAVIOR(Late, &Late::on_go)
  };
  rt.load<Late>();
  const MailAddress l = rt.spawn<Late>(0);
  rt.inject<&Late::on_go>(l, e);
  rt.run();
  EXPECT_EQ(rt.dead_letters(), 1u);
  EXPECT_EQ(Echo::self_hits, 0);
}

TEST_F(EdgeFixture, TerminationFreesActorButKeepsDescriptor) {
  Runtime rt(cfg(1));
  rt.load<Echo>();
  const MailAddress e = rt.spawn<Echo>(0);
  rt.inject<&Echo::on_die>(e);
  rt.run();
  Kernel& k = rt.kernel(0);
  EXPECT_EQ(k.live_actors(), 0u);
  // The descriptor persists as a dead-letter sink (no GC yet, like the
  // paper, which defers reclamation to future work).
  EXPECT_NE(k.names().try_descriptor(e.desc), nullptr);
  EXPECT_FALSE(k.locality_check(e).valid());
}

// --- Payload size boundaries ---------------------------------------------------------

class BlobDriver : public ActorBase {
 public:
  void on_go(Context& ctx, MailAddress target, std::int64_t size) {
    Bytes data(static_cast<std::size_t>(size));
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::byte>(i % 251);
    }
    expected_ = std::move(data);
    Bytes copy = expected_;
    ctx.request<&Echo::on_blob>(
        target,
        [this](Context&, const JoinView& v) {
          round_trip_ok = (v.blob(0) == expected_) &&
                          v.get<std::uint64_t>(0) == expected_.size();
        },
        std::move(copy));
  }
  HAL_BEHAVIOR(BlobDriver, &BlobDriver::on_go)
  inline static bool round_trip_ok = false;

 private:
  Bytes expected_;
};

class PayloadBoundary
    : public ::testing::TestWithParam<std::tuple<std::int64_t, MachineKind>> {
};

TEST_P(PayloadBoundary, BlobRoundTripsAtEverySizeClass) {
  const auto [size, machine] = GetParam();
  Echo::reset();
  BlobDriver::round_trip_ok = false;
  RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.machine = machine;
  Runtime rt(cfg);
  rt.load<Echo>();
  rt.load<BlobDriver>();
  const MailAddress e = rt.spawn<Echo>(1);
  const MailAddress d = rt.spawn<BlobDriver>(0);
  rt.inject<&BlobDriver::on_go>(d, e, size);
  rt.run();
  EXPECT_TRUE(BlobDriver::round_trip_ok) << "size " << size;
  EXPECT_EQ(Echo::bytes_seen, size);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

// Sizes straddling every transport crossover: empty, inline packet payload
// (≤512 incl. codec framing), bulk threshold, one chunk (4096), chunk ± 1,
// several chunks, and a large buffer — each through NodeManager::ship under
// both the deterministic simulator and real preemption.
INSTANTIATE_TEST_SUITE_P(
    Sizes, PayloadBoundary,
    ::testing::Combine(::testing::Values(0, 1, 100, 480, 481, 512, 513, 4095,
                                         4096, 4097, 12288, 100000),
                       ::testing::Values(MachineKind::kSim,
                                         MachineKind::kThread)));

// --- Argument codec limits -------------------------------------------------------------

class WideArgs : public ActorBase {
 public:
  // 8 single-word arguments: exactly kMsgInlineWords.
  void on_wide(Context&, std::int64_t a, std::int64_t b, std::int64_t c,
               std::int64_t d, std::int64_t e, std::int64_t f, std::int64_t g,
               std::int64_t h) {
    sum = a + b + c + d + e + f + g + h;
  }
  // Mixed-width arguments: 2+2+1+1+1 = 7 words + payload.
  void on_mixed(Context&, MailAddress x, ContRef y, double z, bool w,
                std::uint32_t u, Bytes blob) {
    mixed_ok = x.valid() && !y.valid() && z == 2.5 && w &&
               u == 9u && blob.size() == 3;
  }
  HAL_BEHAVIOR(WideArgs, &WideArgs::on_wide, &WideArgs::on_mixed)
  inline static std::int64_t sum = 0;
  inline static bool mixed_ok = false;
};

TEST_F(EdgeFixture, MaxInlineArgumentWords) {
  Runtime rt(cfg(2));
  rt.load<WideArgs>();
  const MailAddress w = rt.spawn<WideArgs>(1);  // remote: words serialize
  WideArgs::sum = 0;
  rt.inject<&WideArgs::on_wide>(w, std::int64_t{1}, std::int64_t{2},
                                std::int64_t{3}, std::int64_t{4},
                                std::int64_t{5}, std::int64_t{6},
                                std::int64_t{7}, std::int64_t{8});
  rt.run();
  EXPECT_EQ(WideArgs::sum, 36);
}

TEST_F(EdgeFixture, MixedWidthArgumentsAcrossNodes) {
  Runtime rt(cfg(2));
  rt.load<WideArgs>();
  const MailAddress w = rt.spawn<WideArgs>(1);
  WideArgs::mixed_ok = false;
  rt.inject<&WideArgs::on_mixed>(w, w, ContRef{}, 2.5, true, std::uint32_t{9},
                                 Bytes{std::byte{1}, std::byte{2},
                                       std::byte{3}});
  rt.run();
  EXPECT_TRUE(WideArgs::mixed_ok);
}

// --- Self sends and deep chains ------------------------------------------------------------

TEST_F(EdgeFixture, SelfSendChainTerminates) {
  Runtime rt(cfg(1));
  rt.load<Echo>();
  const MailAddress e = rt.spawn<Echo>(0);
  rt.inject<&Echo::on_self_spam>(e, std::int64_t{10000});
  rt.run();
  EXPECT_EQ(Echo::self_hits, 10001);
}

class Relay : public ActorBase {
 public:
  void on_hop(Context& ctx, std::int64_t remaining) {
    ++hops;
    if (remaining > 0 && next.valid()) {
      ctx.send<&Relay::on_hop>(next, remaining - 1);
    }
  }
  void on_wire(Context&, MailAddress n) { next = n; }
  HAL_BEHAVIOR(Relay, &Relay::on_hop, &Relay::on_wire)
  MailAddress next;
  inline static std::int64_t hops = 0;
};

TEST_F(EdgeFixture, LongRemoteChainAcrossManyNodes) {
  // A message ricochets around a 16-node machine 2000 times.
  Relay::hops = 0;
  Runtime rt(cfg(16));
  rt.load<Relay>();
  std::vector<MailAddress> ring;
  for (NodeId n = 0; n < 16; ++n) ring.push_back(rt.spawn<Relay>(n));
  for (std::size_t i = 0; i < ring.size(); ++i) {
    rt.inject<&Relay::on_wire>(ring[i], ring[(i + 1) % ring.size()]);
  }
  rt.inject<&Relay::on_hop>(ring[0], std::int64_t{2000});
  rt.run();
  EXPECT_EQ(Relay::hops, 2001);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

// --- Group edge cases ----------------------------------------------------------------------

class Cell : public ActorBase {
 public:
  void on_tick(Context&) { ++ticks; }
  HAL_BEHAVIOR(Cell, &Cell::on_tick)
  inline static std::int64_t ticks = 0;
};

class GroupDriver : public ActorBase {
 public:
  void on_go(Context& ctx, std::uint32_t members, std::int64_t rounds) {
    const GroupId gid = ctx.grpnew<Cell>(members);
    for (std::int64_t r = 0; r < rounds; ++r) {
      ctx.broadcast<&Cell::on_tick>(gid);
    }
  }
  HAL_BEHAVIOR(GroupDriver, &GroupDriver::on_go)
};

TEST_F(EdgeFixture, GroupWithMoreNodesThanMembers) {
  Cell::ticks = 0;
  Runtime rt(cfg(8));
  rt.load<Cell>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(3);  // off-zero creator
  rt.inject<&GroupDriver::on_go>(d, std::uint32_t{3}, std::int64_t{4});
  rt.run();
  EXPECT_EQ(Cell::ticks, 12);
}

TEST_F(EdgeFixture, ZeroRoundBroadcastIsQuiet) {
  Cell::ticks = 0;
  Runtime rt(cfg(4));
  rt.load<Cell>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(0);
  rt.inject<&GroupDriver::on_go>(d, std::uint32_t{6}, std::int64_t{0});
  rt.run();
  EXPECT_EQ(Cell::ticks, 0);
  EXPECT_EQ(rt.machine().tokens(), 0u);
}

// --- Stale-address detection ------------------------------------------------------------------

TEST_F(EdgeFixture, StaleSlotIdDoesNotResolve) {
  Runtime rt(cfg(1));
  rt.load<Echo>();
  (void)rt.spawn<Echo>(0);
  MailAddress bogus;
  bogus.home = 0;
  bogus.desc = SlotId{999, 42};  // never allocated
  Kernel& k = rt.kernel(0);
  EXPECT_FALSE(k.locality_check(bogus).valid());
  EXPECT_FALSE(k.names().resolve(bogus).valid());
}

}  // namespace
}  // namespace hal
