// Wire-batching semantics (PR 8 tentpole): destination-coalesced frames
// must be invisible to everything above the wire. Determinism (same-seed Sim
// runs stay byte-identical, batched results equal unbatched results),
// reliability (frames ride the link whole: exactly-once, in-order under
// loss), liveness (held frames force-flush at quiescence instead of waiting
// out the holdoff), and config validation.
//
// Suite names contain "Fault" / "ThreadMachine" where the CI sanitizer jobs
// should pick them up (-R 'Stress|ThreadMachine|Bulk|Fault').
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "am/sim_machine.hpp"
#include "am/thread_machine.hpp"
#include "am/wire_batch.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

// --- Runtime-level workload -----------------------------------------------------

/// Flood sink: sums everything (the exact-result check).
class Sink : public ActorBase {
 public:
  void on_add(Context&, std::uint64_t v) { sum += v; }
  HAL_BEHAVIOR(Sink, &Sink::on_add)
  std::uint64_t sum = 0;
};

/// Self-paced flood source (one chunk per dispatch).
class Source : public ActorBase {
 public:
  void on_init(Context&, MailAddress dst, std::uint64_t base) {
    dst_ = dst;
    next_ = base;
  }
  void on_flood(Context& ctx, std::uint64_t left) {
    const std::uint64_t chunk = left < 128 ? left : 128;
    for (std::uint64_t i = 0; i < chunk; ++i) {
      ctx.send<&Sink::on_add>(dst_, next_++);
    }
    if (left > chunk) ctx.send<&Source::on_flood>(ctx.self(), left - chunk);
  }
  HAL_BEHAVIOR(Source, &Source::on_init, &Source::on_flood)

 private:
  MailAddress dst_;
  std::uint64_t next_ = 0;
};

struct StormResult {
  std::uint64_t sum = 0;
  std::uint64_t dead = 0;
  obs::RunReport report;
};

/// 3:1 remote flood into node 0 under `cfg` (seeded Sim by default).
StormResult run_flood(RuntimeConfig cfg, std::uint64_t per_sender = 600) {
  cfg.nodes = 4;
  Runtime rt(cfg);
  rt.load<Sink>();
  rt.load<Source>();
  const MailAddress sink = rt.spawn<Sink>(0);
  for (NodeId s = 1; s < cfg.nodes; ++s) {
    const MailAddress f = rt.spawn<Source>(s);
    rt.inject<&Source::on_init>(f, sink, per_sender * s);
    rt.inject<&Source::on_flood>(f, per_sender);
  }
  rt.run();
  StormResult out;
  const auto* c = rt.find_behavior<Sink>(sink);
  out.sum = c != nullptr ? c->sum : 0;
  out.dead = rt.dead_letters();
  out.report = rt.report();
  return out;
}

std::uint64_t flood_expect(NodeId nodes, std::uint64_t per_sender) {
  std::uint64_t want = 0;
  for (NodeId s = 1; s < nodes; ++s) {
    const std::uint64_t base = per_sender * s;
    want += per_sender * base + per_sender * (per_sender - 1) / 2;
  }
  return want;
}

TEST(WireBatchFault, SimSameSeedReportsAreByteIdentical) {
  RuntimeConfig cfg;  // batching on by default, seeded Sim
  const StormResult a = run_flood(cfg);
  const StormResult b = run_flood(cfg);
  EXPECT_EQ(a.sum, flood_expect(4, 600));
  EXPECT_EQ(a.dead, 0u);
  // Coalescing actually happened, and the whole structured report — stats,
  // probes, the frame-fill histogram — replays byte-for-byte.
  EXPECT_GT(a.report.total.get(Stat::kWireFramesSent), 0u);
  EXPECT_GT(a.report.total.get(Stat::kWireMsgsCoalesced), 0u);
  EXPECT_EQ(a.report.to_json(), b.report.to_json());
}

TEST(WireBatchFault, SimBatchedMatchesUnbatchedResults) {
  RuntimeConfig on;
  RuntimeConfig off;
  off.batching.enabled = false;
  const StormResult rb = run_flood(on);
  const StormResult ru = run_flood(off);
  EXPECT_EQ(rb.sum, flood_expect(4, 600));
  EXPECT_EQ(rb.sum, ru.sum);
  EXPECT_EQ(rb.dead, 0u);
  EXPECT_EQ(ru.dead, 0u);
  EXPECT_EQ(ru.report.total.get(Stat::kWireFramesSent), 0u);
  // Every message arrived either way; the batched run moved (almost) all of
  // them inside frames.
  EXPECT_EQ(rb.report.total.get(Stat::kMessagesDelivered),
            ru.report.total.get(Stat::kMessagesDelivered));
}

// --- Machine-level: frames on the faulty wire -----------------------------------

class RecordingClient : public am::NodeClient {
 public:
  std::vector<am::Packet> received;
  void handle(am::Packet p) override { received.push_back(std::move(p)); }
  bool step() override { return false; }
  bool has_work() const override { return false; }
};

am::Packet tagged(NodeId src, NodeId dst, std::uint64_t tag) {
  am::Packet p;
  p.src = src;
  p.dst = dst;
  p.handler = 1;
  p.words[0] = tag;
  return p;
}

void expect_exactly_once_in_order(const RecordingClient& c,
                                  std::uint64_t count) {
  ASSERT_EQ(c.received.size(), count);
  for (std::uint64_t i = 0; i < count; ++i) {
    EXPECT_EQ(c.received[i].words[0], i) << "at position " << i;
  }
}

TEST(WireBatchFault, SimCoalescedFramesExactlyOnceInOrderUnderLoss) {
  am::SimMachine machine(2, am::CostModel::cm5());
  RecordingClient clients[2];
  machine.attach(0, &clients[0]);
  machine.attach(1, &clients[1]);
  machine.configure_batching(am::BatchConfig{});
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.05;  // the ISSUE's 5%-loss reliability bar
  fc.seed = 0xbadc;
  machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 800;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    machine.send(tagged(0, 1, i));
  }
  machine.run();
  // Frames were lost and retransmitted whole; the decoded record stream is
  // still exactly the sent stream, in per-channel order.
  expect_exactly_once_in_order(clients[1], kCount);
  const am::LinkStats& s = *machine.link_stats(0);
  EXPECT_GT(s.drops_injected, 0u);
  EXPECT_GE(s.retransmits, s.drops_injected);
}

TEST(WireBatchFault, ThreadMachineCoalescedFramesSurviveLoss) {
  am::ThreadMachine machine(2, am::CostModel::cm5());
  RecordingClient clients[2];
  machine.attach(0, &clients[0]);
  machine.attach(1, &clients[1]);
  machine.configure_batching(am::BatchConfig{});
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.05;
  fc.seed = 23;
  fc.rto_ns = 500'000;  // soak-friendly recovery
  machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 400;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    machine.send(tagged(0, 1, i));
  }
  machine.run();
  expect_exactly_once_in_order(clients[1], kCount);
}

// --- Forced flush at quiescence -------------------------------------------------

TEST(WireBatchFault, IdleTransitionFlushKeepsTerminationPrompt) {
  // A holdoff far beyond any reasonable run: if quiescence had to wait out
  // the timer, Sim's makespan would blow up (and ThreadMachine below would
  // stall for wall-clock seconds). The busy->idle flush must ship the held
  // frames instead.
  RuntimeConfig cfg;
  cfg.batching.holdoff_ns = 5'000'000'000;  // 5 s
  cfg.batching.holdoff_max_ns = 5'000'000'000;
  cfg.batching.adaptive = false;
  const StormResult r = run_flood(cfg, /*per_sender=*/40);
  EXPECT_EQ(r.sum, flood_expect(4, 40));
  EXPECT_EQ(r.dead, 0u);
  EXPECT_GT(r.report.total.get(Stat::kWireFlushIdle), 0u);
  EXPECT_EQ(r.report.total.get(Stat::kWireFlushTimer), 0u);
  // Virtual time stayed in the microsecond regime — nothing waited 5 s.
  EXPECT_LT(r.report.makespan_ns, cfg.batching.holdoff_ns);
}

TEST(WireBatchFault, ThreadMachineIdleFlushTerminatesWithHugeHoldoff) {
  RuntimeConfig cfg;
  cfg.machine = MachineKind::kThread;
  cfg.batching.holdoff_ns = 5'000'000'000;
  cfg.batching.holdoff_max_ns = 5'000'000'000;
  cfg.batching.adaptive = false;
  // Completion alone is the assertion: a missing idle flush would park this
  // run for ~5 s per held frame (and trip the suite's timeout).
  const StormResult r = run_flood(cfg, /*per_sender=*/40);
  EXPECT_EQ(r.sum, flood_expect(4, 40));
  EXPECT_EQ(r.dead, 0u);
}

// --- Config validation ----------------------------------------------------------

TEST(WireBatch, InvalidKnobsAreRejected) {
  RuntimeConfig cfg;
  cfg.batching.max_msgs = 1;  // a one-record "frame" is not coalescing
  auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kBadBatchConfig);

  RuntimeConfig huge;
  huge.batching.max_frame_bytes = am::kBulkChunkBytes + 1;
  err = huge.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kBadBatchConfig);

  RuntimeConfig inverted;
  inverted.batching.holdoff_ns = 10;
  inverted.batching.holdoff_min_ns = 100;
  err = inverted.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kBadBatchConfig);

  // Disabled batching skips knob validation entirely (the knobs are inert).
  RuntimeConfig offcfg;
  offcfg.batching.enabled = false;
  offcfg.batching.max_msgs = 1;
  EXPECT_FALSE(offcfg.validate().has_value());
}

}  // namespace
}  // namespace hal
