// Unit tests: the smaller components — Dispatcher, BehaviorRegistry,
// StatBlock formatting, cost-model presets, SimMachine housekeeping,
// FrontEnd ordering, and the logging configuration.
#include <gtest/gtest.h>

#include "am/sim_machine.hpp"
#include "common/logging.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

// --- Dispatcher ------------------------------------------------------------------

TEST(Dispatcher, FifoOrderAcrossItemKinds) {
  Dispatcher d;
  d.schedule_actor(SlotId{1, 1});
  Message m;
  m.selector = 7;
  d.schedule_quantum(GroupId{0, 3}, m);
  d.schedule_actor(SlotId{2, 1});
  ASSERT_EQ(d.size(), 3u);

  auto i1 = d.next();
  ASSERT_TRUE(i1.has_value());
  EXPECT_EQ(i1->kind, Dispatcher::Item::Kind::kActor);
  EXPECT_EQ(i1->actor, (SlotId{1, 1}));

  auto i2 = d.next();
  EXPECT_EQ(i2->kind, Dispatcher::Item::Kind::kQuantum);
  EXPECT_EQ(i2->group, (GroupId{0, 3}));
  EXPECT_EQ(d.take_message(*i2).selector, 7u);

  auto i3 = d.next();
  EXPECT_EQ(i3->actor, (SlotId{2, 1}));
  EXPECT_FALSE(d.next().has_value());
}

TEST(Dispatcher, StealTakesOldestMatching) {
  Dispatcher d;
  d.schedule_actor(SlotId{1, 1});
  d.schedule_actor(SlotId{2, 1});
  d.schedule_actor(SlotId{3, 1});
  // Predicate rejects the first: the steal should take the second.
  auto stolen = d.steal_if([](SlotId s) { return s.index != 1; });
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->index, 2u);
  EXPECT_EQ(d.size(), 2u);
  // Remaining order intact.
  EXPECT_EQ(d.next()->actor.index, 1u);
  EXPECT_EQ(d.next()->actor.index, 3u);
}

TEST(Dispatcher, StealOnEmptyOrNoMatch) {
  Dispatcher d;
  EXPECT_FALSE(d.steal_if([](SlotId) { return true; }).has_value());
  d.schedule_actor(SlotId{1, 1});
  EXPECT_FALSE(d.steal_if([](SlotId) { return false; }).has_value());
  EXPECT_EQ(d.size(), 1u);
}

// --- BehaviorRegistry ---------------------------------------------------------------

class RegA : public ActorBase {
 public:
  void on_x(Context&) {}
  HAL_BEHAVIOR(RegA, &RegA::on_x)
};
class RegB : public ActorBase {
 public:
  void on_y(Context&) {}
  HAL_BEHAVIOR(RegB, &RegB::on_y)
};

TEST(Registry, IdsAreStableAndIdempotent) {
  BehaviorRegistry r;
  const BehaviorId a1 = r.register_behavior<RegA>();
  const BehaviorId b = r.register_behavior<RegB>();
  const BehaviorId a2 = r.register_behavior<RegA>();  // duplicate load
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.id_of<RegA>(), a1);
  EXPECT_TRUE(r.registered<RegB>());
}

TEST(Registry, ConstructsByIdWithCorrectDynamicType) {
  BehaviorRegistry r;
  const BehaviorId b = r.register_behavior<RegB>();
  auto obj = r.construct(b);
  EXPECT_NE(dynamic_cast<RegB*>(obj.get()), nullptr);
  EXPECT_EQ(obj->behavior_name(), "RegB");
  EXPECT_EQ(r.name(b), "RegB");
  EXPECT_EQ(obj->method_count(), 1u);
}

// --- StatBlock -----------------------------------------------------------------------

TEST(Stats, AccumulateAndFormat) {
  StatBlock a, b;
  a.bump(Stat::kMigrationsIn, 3);
  b.bump(Stat::kMigrationsIn, 4);
  b.bump(Stat::kFirSent);
  a += b;
  EXPECT_EQ(a.get(Stat::kMigrationsIn), 7u);
  EXPECT_EQ(a.get(Stat::kFirSent), 1u);
  const std::string text = format_stats(a);
  EXPECT_NE(text.find("migrations_in=7"), std::string::npos);
  EXPECT_NE(text.find("fir_sent=1"), std::string::npos);
  // Zero counters are skipped by default.
  EXPECT_EQ(text.find("broadcasts_sent"), std::string::npos);
  a.reset();
  EXPECT_EQ(a.get(Stat::kMigrationsIn), 0u);
}

TEST(Stats, NameTableCoversAllCounters) {
  EXPECT_EQ(kStatNames.size(), static_cast<std::size_t>(Stat::kCount));
  for (const auto name : kStatNames) EXPECT_FALSE(name.empty());
}

// --- Cost model presets -----------------------------------------------------------------

TEST(CostModel, ZeroIsEntirelyFree) {
  const am::CostModel z = am::CostModel::zero();
  EXPECT_EQ(z.wire_latency_ns, 0u);
  EXPECT_EQ(z.actor_alloc_ns, 0u);
  EXPECT_EQ(z.dispatch_ns, 0u);
  EXPECT_EQ(z.flop_ns, 0.0);
}

TEST(CostModel, NowIsSlowerThanCm5OnTheWire) {
  const am::CostModel a = am::CostModel::cm5();
  const am::CostModel b = am::CostModel::now();
  EXPECT_GT(b.wire_latency_ns, a.wire_latency_ns);
  EXPECT_GT(b.payload_byte_ns, a.payload_byte_ns);
  // Same processors: kernel primitive costs unchanged.
  EXPECT_EQ(b.dispatch_ns, a.dispatch_ns);
  EXPECT_EQ(b.flop_ns, a.flop_ns);
}

// --- SimMachine housekeeping ----------------------------------------------------------

struct NullClient : am::NodeClient {
  void handle(am::Packet) override {}
  bool step() override { return false; }
  bool has_work() const override { return false; }
};

TEST(SimMachineHousekeeping, ResetClocksAfterRun) {
  am::SimMachine m(2, am::CostModel::cm5());
  NullClient c0, c1;
  m.attach(0, &c0);
  m.attach(1, &c1);
  am::Packet p;
  p.src = 0;
  p.dst = 1;
  p.handler = 1;
  m.send(p);
  m.run();
  EXPECT_GT(m.makespan(), 0u);
  m.reset_clocks();
  EXPECT_EQ(m.makespan(), 0u);
}

TEST(SimMachineHousekeeping, EventLimitPanics) {
  struct Bouncer : am::NodeClient {
    am::Machine* m = nullptr;
    NodeId self = 0;
    void handle(am::Packet p) override {
      am::Packet next;
      next.src = self;
      next.dst = p.src;
      next.handler = 1;
      m->send(next);  // ping-pong forever
    }
    bool step() override { return false; }
    bool has_work() const override { return false; }
  };
  am::SimMachine m(2, am::CostModel::cm5());
  Bouncer b0, b1;
  b0.m = &m;
  b0.self = 0;
  b1.m = &m;
  b1.self = 1;
  m.attach(0, &b0);
  m.attach(1, &b1);
  m.set_event_limit(500);
  am::Packet p;
  p.src = 0;
  p.dst = 1;
  p.handler = 1;
  m.send(p);
  EXPECT_DEATH(m.run(), "event limit");
}

// --- FrontEnd --------------------------------------------------------------------------

TEST(FrontEndUnit, OrdersByTimeStably) {
  FrontEnd fe;
  fe.append(300, 1, "c");
  fe.append(100, 0, "a");
  fe.append(100, 2, "b");  // same time as "a": insertion order preserved
  const auto lines = fe.take_ordered();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "a");
  EXPECT_EQ(lines[1].text, "b");
  EXPECT_EQ(lines[2].text, "c");
  EXPECT_EQ(fe.size(), 0u);  // consumed
}

// --- Logging ----------------------------------------------------------------------------

TEST(Logging, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  set_log_level(before);
}

}  // namespace
}  // namespace hal
