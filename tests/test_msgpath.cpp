// Message-path fast-path units: the compact body wire format (no length
// word, zero bytes for arg-only messages), the empty-payload flag bit of the
// full encoding, BufferPool recycling semantics, and the RingDeque /
// Dispatcher ring including growth and steals across index wraparound.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/ring_buffer.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

Message sample_message(std::uint8_t argc, std::size_t payload_len) {
  Message m;
  m.dest.home = 3;
  m.dest.desc = SlotId{42, 7};
  m.selector = 5;
  m.cont.node = 1;
  m.cont.jc = SlotId{9, 2};
  m.cont.slot = 1;
  m.argc = argc;
  for (std::uint8_t i = 0; i < argc; ++i) m.args[i] = 0x1111U * (i + 1U);
  m.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    m.payload[i] = static_cast<std::byte>(i & 0xffU);
  }
  return m;
}

void expect_same_content(const Message& a, const Message& b) {
  EXPECT_EQ(a.dest, b.dest);
  EXPECT_EQ(a.selector, b.selector);
  EXPECT_EQ(a.cont, b.cont);
  ASSERT_EQ(a.argc, b.argc);
  for (std::uint8_t i = 0; i < a.argc; ++i) EXPECT_EQ(a.args[i], b.args[i]);
  EXPECT_EQ(a.payload, b.payload);
}

// --- Body wire format -----------------------------------------------------------

TEST(MessageBody, InlineOnlyCostsArgWordsAndNothingElse) {
  const Message m = sample_message(3, 0);
  // No length word: an arg-only body is exactly the argument words.
  EXPECT_EQ(m.body_bytes(), 3 * sizeof(std::uint64_t));
  const Bytes body = m.encode_body();
  ASSERT_EQ(body.size(), m.body_bytes());

  Message d;
  d.argc = m.argc;  // travels in the packet header word
  d.decode_body(body);
  for (std::uint8_t i = 0; i < 3; ++i) EXPECT_EQ(d.args[i], m.args[i]);
  EXPECT_TRUE(d.payload.empty());
}

TEST(MessageBody, EmptyMessageIsZeroWireBytes) {
  const Message m = sample_message(0, 0);
  EXPECT_EQ(m.body_bytes(), 0u);
  EXPECT_TRUE(m.encode_body().empty());
}

TEST(MessageBody, PayloadIsTheRemainderPastTheArgWords) {
  const Message m = sample_message(2, 100);
  EXPECT_EQ(m.body_bytes(), 2 * sizeof(std::uint64_t) + 100);
  const Bytes body = m.encode_body();

  BufferPool pool;
  Message d;
  d.argc = m.argc;
  d.decode_body(body, &pool);
  EXPECT_EQ(d.args[0], m.args[0]);
  EXPECT_EQ(d.args[1], m.args[1]);
  EXPECT_EQ(d.payload, m.payload);
}

TEST(MessageBody, EncodeIntoPooledBufferDoesNotShrinkCapacity) {
  BufferPool pool;
  Bytes buf = pool.reserve(64);
  const std::size_t cap = buf.capacity();
  const Message m = sample_message(4, 0);
  m.encode_body_into(buf);
  EXPECT_EQ(buf.size(), m.body_bytes());
  EXPECT_GE(buf.capacity(), cap);  // resize within capacity, no realloc
}

// --- Full encoding: the spare argc flag bit -------------------------------------

TEST(MessageFull, EmptyPayloadWritesNoPayloadBlock) {
  const Message m = sample_message(2, 0);
  ByteWriter w;
  m.encode_full(w);
  const Bytes wire = std::move(w).take();
  ASSERT_EQ(wire.size(), m.full_bytes());

  // The argc byte sits after dest (2 words), selector, cont (2 words); the
  // flag bit must be clear for an empty payload.
  const std::size_t argc_off = 4 * sizeof(std::uint64_t) + sizeof(Selector);
  const auto argc_byte = static_cast<std::uint8_t>(wire[argc_off]);
  EXPECT_EQ(argc_byte & kArgcPayloadFlag, 0);
  EXPECT_EQ(argc_byte, 2);

  ByteReader r(wire);
  const Message d = Message::decode_full(r);
  EXPECT_TRUE(r.exhausted());
  expect_same_content(m, d);
}

TEST(MessageFull, PayloadPresenceRidesTheFlagBit) {
  const Message m = sample_message(1, 33);
  ByteWriter w;
  m.encode_full(w);
  const Bytes wire = std::move(w).take();
  ASSERT_EQ(wire.size(), m.full_bytes());

  const std::size_t argc_off = 4 * sizeof(std::uint64_t) + sizeof(Selector);
  const auto argc_byte = static_cast<std::uint8_t>(wire[argc_off]);
  EXPECT_NE(argc_byte & kArgcPayloadFlag, 0);
  EXPECT_EQ(argc_byte & ~kArgcPayloadFlag, 1);

  BufferPool pool;
  ByteReader r(wire);
  const Message d = Message::decode_full(r, &pool);
  EXPECT_TRUE(r.exhausted());
  expect_same_content(m, d);
}

TEST(MessageFull, EmptyPayloadSavesTheLengthWord) {
  Message with = sample_message(2, 8);
  Message without = sample_message(2, 0);
  // The only difference is the payload block: length word + bytes.
  EXPECT_EQ(with.full_bytes() - without.full_bytes(),
            sizeof(std::uint64_t) + 8);
}

TEST(MessageFull, StreamsConcatenate) {
  // Migration serializes whole mailboxes back to back; decoding must consume
  // exactly one message per call.
  const Message a = sample_message(0, 0);
  const Message b = sample_message(3, 17);
  ByteWriter w;
  a.encode_full(w);
  b.encode_full(w);
  const Bytes wire = std::move(w).take();
  ByteReader r(wire);
  expect_same_content(a, Message::decode_full(r));
  expect_same_content(b, Message::decode_full(r));
  EXPECT_TRUE(r.exhausted());
}

TEST(MessageClone, CloneUsingPoolCopiesPayload) {
  BufferPool pool;
  const Message m = sample_message(2, 50);
  const Message c = m.clone_using(pool);
  expect_same_content(m, c);
  EXPECT_NE(c.payload.data(), m.payload.data());  // distinct buffers
}

// --- BufferPool -----------------------------------------------------------------

TEST(BufferPoolTest, AcquireReleaseAcquireRecycles) {
  BufferPool pool;
  Bytes b = pool.acquire(48);
  EXPECT_EQ(b.size(), 48u);
  EXPECT_GE(b.capacity(), 64u);  // rounded up to the class capacity
  EXPECT_EQ(pool.misses(), 1u);
  const std::byte* data = b.data();

  pool.release(std::move(b));
  EXPECT_EQ(pool.returns(), 1u);
  EXPECT_EQ(pool.idle_buffers(), 1u);

  Bytes b2 = pool.acquire(64);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(b2.data(), data);  // same allocation came back
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPoolTest, ReleaseClassifiesByCapacity) {
  BufferPool pool;
  // A 512-capacity buffer must serve a later 512-byte request without
  // reallocating (released into the 512 class, not the 64 class).
  Bytes big = pool.acquire(512);
  const std::byte* data = big.data();
  pool.release(std::move(big));
  Bytes again = pool.acquire(512);
  EXPECT_EQ(again.data(), data);
}

TEST(BufferPoolTest, UselessBuffersAreDropped) {
  BufferPool pool;
  pool.release(Bytes{});  // moved-from shell: nothing worth keeping
  Bytes tiny;
  tiny.reserve(8);
  pool.release(std::move(tiny));
  Bytes huge;
  huge.reserve(3 * BufferPool::kClassBytes.back());  // oversized one-off
  pool.release(std::move(huge));
  EXPECT_EQ(pool.idle_buffers(), 0u);
  EXPECT_EQ(pool.returns(), 0u);
}

TEST(BufferPoolTest, FreeListsAreBounded) {
  BufferPool pool;
  std::vector<Bytes> held;
  for (std::size_t i = 0; i < BufferPool::kMaxFreePerClass + 10; ++i) {
    held.push_back(pool.acquire(64));
  }
  for (Bytes& b : held) pool.release(std::move(b));
  EXPECT_EQ(pool.idle_buffers(), BufferPool::kMaxFreePerClass);
}

TEST(BufferPoolTest, SteadyStateLoopNeverMisses) {
  BufferPool pool;
  Bytes warm = pool.acquire(100);
  pool.release(std::move(warm));
  const std::uint64_t misses = pool.misses();
  for (int i = 0; i < 1000; ++i) {
    Bytes b = pool.acquire(100);
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.misses(), misses);
  EXPECT_EQ(pool.hits(), 1000u);
}

// --- RingDeque ------------------------------------------------------------------

TEST(RingDequeTest, FifoAcrossGrowthAndWraparound) {
  RingDeque<int> q;
  int next_in = 0;
  int next_out = 0;
  // Interleaved push/pop keeps the head rotating so growth happens with a
  // wrapped ring; contents must stay FIFO throughout.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 5 + round * 7; ++i) q.push_back(next_in++);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(q.take_front(), next_out);
      ++next_out;
    }
  }
  while (!q.empty()) {
    ASSERT_EQ(q.take_front(), next_out);
    ++next_out;
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingDequeTest, IndexedAccessFollowsTheHead) {
  RingDeque<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);  // fill to capacity
  q.pop_front();
  q.pop_front();
  q.push_back(8);
  q.push_back(9);  // physically wrapped now
  ASSERT_EQ(q.size(), 8u);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i], static_cast<int>(i) + 2);
  }
}

TEST(RingDequeTest, EraseAtPreservesOrderOnBothSides) {
  RingDeque<int> q;
  for (int i = 0; i < 10; ++i) q.push_back(i);
  q.erase_at(1);  // near the front: shifts the front segment
  q.erase_at(7);  // near the back (element 8): shifts the back segment
  const int expect[] = {0, 2, 3, 4, 5, 6, 7, 9};
  ASSERT_EQ(q.size(), 8u);
  for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(q[i], expect[i]);
}

// --- Dispatcher ring ------------------------------------------------------------

TEST(DispatcherRing, SurvivesGrowthWithQueuedQuanta) {
  Dispatcher d;
  // Far past the initial ring capacity, alternating item kinds so quantum
  // message slots allocate and free out of order with the ring.
  for (std::uint32_t i = 0; i < 100; ++i) {
    d.schedule_actor(SlotId{i, 1});
    Message m;
    m.selector = i;
    m.payload.resize(16);
    d.schedule_quantum(GroupId{0, i}, std::move(m));
  }
  ASSERT_EQ(d.size(), 200u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    auto a = d.next();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, Dispatcher::Item::Kind::kActor);
    EXPECT_EQ(a->actor.index, i);
    auto qm = d.next();
    ASSERT_TRUE(qm.has_value());
    EXPECT_EQ(qm->kind, Dispatcher::Item::Kind::kQuantum);
    Message m = d.take_message(*qm);
    EXPECT_EQ(m.selector, i);
    EXPECT_EQ(m.payload.size(), 16u);
  }
  EXPECT_FALSE(d.next().has_value());
}

TEST(DispatcherRing, StealScansAcrossWraparound) {
  Dispatcher d;
  // Rotate the ring so the live region physically wraps: fill, drain most,
  // then refill past the old tail.
  for (std::uint32_t i = 0; i < 8; ++i) d.schedule_actor(SlotId{i, 1});
  for (int i = 0; i < 6; ++i) (void)d.next();
  for (std::uint32_t i = 8; i < 13; ++i) d.schedule_actor(SlotId{i, 1});
  ASSERT_EQ(d.size(), 7u);  // indices 6..12, wrapped in an 8-slot ring

  // Steal a victim that lives past the physical wrap point.
  auto stolen = d.steal_if([](SlotId s) { return s.index == 10; });
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->index, 10u);

  // FIFO order of the survivors is intact.
  const std::uint32_t expect[] = {6, 7, 8, 9, 11, 12};
  for (const std::uint32_t idx : expect) {
    auto item = d.next();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->actor.index, idx);
  }
  EXPECT_FALSE(d.next().has_value());
}

TEST(DispatcherRing, StealSkipsQuantumItems) {
  Dispatcher d;
  Message m;
  m.selector = 1;
  d.schedule_quantum(GroupId{0, 1}, std::move(m));
  // Only actor items are stealable; a quantum-only queue yields nothing.
  EXPECT_FALSE(d.steal_if([](SlotId) { return true; }).has_value());
  EXPECT_EQ(d.size(), 1u);
}

}  // namespace
}  // namespace hal
