// Unit tests: mail addresses, continuation references, argument codec,
// message serialization, and the per-node name table.
#include <gtest/gtest.h>

#include "name/name_table.hpp"
#include "runtime/arg_codec.hpp"
#include "runtime/message.hpp"

namespace hal {
namespace {

// --- MailAddress ----------------------------------------------------------------

TEST(MailAddress, PackUnpackOrdinary) {
  MailAddress a;
  a.home = 3;
  a.desc = SlotId{17, 4};
  a.created_on = 3;
  a.behavior = 9;
  const MailAddress b = MailAddress::unpack(a.pack_word0(), a.pack_word1());
  EXPECT_EQ(b, a);
  EXPECT_EQ(b.created_on, 3u);
  EXPECT_EQ(b.behavior, 9u);
  EXPECT_FALSE(b.alias);
}

TEST(MailAddress, PackUnpackAlias) {
  MailAddress a;
  a.home = 1;
  a.desc = SlotId{5, 2};
  a.created_on = 7;
  a.behavior = 11;
  a.alias = true;
  const MailAddress b = MailAddress::unpack(a.pack_word0(), a.pack_word1());
  EXPECT_TRUE(b.alias);
  EXPECT_EQ(b.created_on, 7u);
  EXPECT_EQ(b.fallback_node(), 7u);
}

TEST(MailAddress, FallbackNodeOrdinaryIsBirthplace) {
  MailAddress a;
  a.home = 4;
  a.desc = SlotId{1, 1};
  EXPECT_EQ(a.fallback_node(), 4u);
}

TEST(MailAddress, InvalidRoundTrips) {
  const MailAddress a{};  // invalid
  const MailAddress b = MailAddress::unpack(a.pack_word0(), a.pack_word1());
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(b.home, kInvalidNode);
  EXPECT_EQ(b.behavior, kInvalidBehavior);
}

TEST(MailAddress, IdentityIgnoresAnnotations) {
  MailAddress a;
  a.home = 2;
  a.desc = SlotId{3, 1};
  MailAddress b = a;
  b.behavior = 42;
  b.created_on = 5;
  EXPECT_EQ(a, b);
  EXPECT_EQ(MailAddressHash{}(a), MailAddressHash{}(b));
}

// --- ContRef ---------------------------------------------------------------------

TEST(ContRef, PackUnpack) {
  const ContRef c{6, SlotId{100, 7}, 3};
  const ContRef d = ContRef::unpack(c.pack_word0(), c.pack_word1());
  EXPECT_EQ(d, c);
}

TEST(ContRef, InvalidRoundTrips) {
  const ContRef c{};
  EXPECT_FALSE(c.valid());
  const ContRef d = ContRef::unpack(c.pack_word0(), c.pack_word1());
  EXPECT_FALSE(d.valid());
}

TEST(ContRef, AtSelectsSlot) {
  const ContRef c{1, SlotId{2, 3}, 0};
  EXPECT_EQ(c.at(5).slot, 5u);
  EXPECT_EQ(c.at(5).jc, c.jc);
}

// --- Argument codec -----------------------------------------------------------------

TEST(ArgCodec, ScalarsRoundTrip) {
  Message m;
  codec::encode_args(m, std::int64_t{-5}, 3.5, true, std::uint32_t{9});
  EXPECT_EQ(m.argc, 4);
  EXPECT_EQ((codec::Codec<std::int64_t>::decode(m, 0)), -5);
  EXPECT_EQ((codec::Codec<double>::decode(m, 1)), 3.5);
  EXPECT_EQ((codec::Codec<bool>::decode(m, 2)), true);
  EXPECT_EQ((codec::Codec<std::uint32_t>::decode(m, 3)), 9u);
}

TEST(ArgCodec, AddressesTakeTwoWords) {
  Message m;
  MailAddress a;
  a.home = 1;
  a.desc = SlotId{2, 3};
  codec::encode_args(m, a, std::int64_t{7});
  EXPECT_EQ(m.argc, 3);
  EXPECT_EQ((codec::Codec<MailAddress>::decode(m, 0)), a);
  EXPECT_EQ((codec::Codec<std::int64_t>::decode(m, 2)), 7);
}

TEST(ArgCodec, BytesBecomePayload) {
  Message m;
  Bytes b{std::byte{1}, std::byte{2}};
  codec::encode_args(m, std::int64_t{1}, b);
  EXPECT_EQ(m.argc, 1);
  EXPECT_EQ(m.payload.size(), 2u);
}

// --- Message serialization ------------------------------------------------------------

TEST(Message, BodyRoundTrip) {
  Message m;
  m.argc = 3;
  m.args[0] = 10;
  m.args[1] = 20;
  m.args[2] = 30;
  m.payload = {std::byte{9}, std::byte{8}};
  const Bytes body = m.encode_body();
  Message n;
  n.argc = 3;
  n.decode_body(body);
  EXPECT_EQ(n.args[0], 10u);
  EXPECT_EQ(n.args[2], 30u);
  EXPECT_EQ(n.payload, m.payload);
}

TEST(Message, FullRoundTrip) {
  Message m;
  m.dest.home = 2;
  m.dest.desc = SlotId{4, 1};
  m.selector = 5;
  m.cont = ContRef{1, SlotId{7, 2}, 3};
  m.argc = 2;
  m.args[0] = 111;
  m.args[1] = 222;
  m.payload = {std::byte{5}};
  ByteWriter w;
  m.encode_full(w);
  const Bytes buf = std::move(w).take();
  ByteReader r{std::span<const std::byte>{buf}};
  const Message n = Message::decode_full(r);
  EXPECT_EQ(n.dest, m.dest);
  EXPECT_EQ(n.selector, m.selector);
  EXPECT_EQ(n.cont, m.cont);
  EXPECT_EQ(n.argc, m.argc);
  EXPECT_EQ(n.args[1], 222u);
  EXPECT_EQ(n.payload, m.payload);
  EXPECT_TRUE(r.exhausted());
}

// --- GroupId ----------------------------------------------------------------------------

TEST(GroupId, PackUnpack) {
  const GroupId g{5, 77};
  EXPECT_EQ(GroupId::unpack(g.pack()), g);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(GroupId{}.valid());
}

// --- NameTable ------------------------------------------------------------------------

struct NameTableTest : ::testing::Test {
  StatBlock stats;
  NameTable table{2, stats};  // we are node 2
};

TEST_F(NameTableTest, HomeFastPathUsesEmbeddedSlot) {
  const SlotId d = table.allocate(LocalityDescriptor::make_local(SlotId{9, 1}));
  MailAddress a;
  a.home = 2;  // our node
  a.desc = d;
  EXPECT_EQ(table.resolve(a), d);
  // The fast path must not touch the hash tier.
  EXPECT_EQ(stats.get(Stat::kNameTableLookups), 0u);
}

TEST_F(NameTableTest, ForeignAddressNeedsBinding) {
  MailAddress a;
  a.home = 0;
  a.desc = SlotId{3, 1};
  EXPECT_FALSE(table.resolve(a).valid());
  EXPECT_EQ(stats.get(Stat::kNameTableLookups), 1u);
  const SlotId d = table.allocate(LocalityDescriptor::make_remote(0));
  table.bind(a, d);
  EXPECT_EQ(table.resolve(a), d);
  EXPECT_EQ(stats.get(Stat::kNameTableHits), 1u);
}

TEST_F(NameTableTest, StaleEmbeddedSlotResolvesInvalid) {
  MailAddress a;
  a.home = 2;
  a.desc = SlotId{42, 9};  // never allocated
  EXPECT_FALSE(table.resolve(a).valid());
}

TEST_F(NameTableTest, UnbindRemoves) {
  MailAddress a;
  a.home = 1;
  a.desc = SlotId{1, 1};
  const SlotId d = table.allocate();
  table.bind(a, d);
  EXPECT_TRUE(table.resolve(a).valid());
  table.unbind(a);
  EXPECT_FALSE(table.resolve(a).valid());
}

TEST_F(NameTableTest, DescriptorStateTransitions) {
  const SlotId d = table.allocate(LocalityDescriptor::make_remote(7));
  EXPECT_FALSE(table.descriptor(d).local());
  table.descriptor(d) = LocalityDescriptor::make_local(SlotId{1, 1});
  EXPECT_TRUE(table.descriptor(d).local());
}

}  // namespace
}  // namespace hal
