// hal::check negative tests: every level-2 checker must demonstrably fire
// on a seeded violation (with correct node/component attribution), stay
// silent on clean runs, and compile to nothing when HAL_CHECK is off.
//
// The suite builds twice in CI — once per HAL_CHECK mode — and the #if
// blocks select which half runs: checker-firing tests need the violation
// handler, compile-out tests prove the release shells are inert and empty.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "am/packet.hpp"
#include "check/buffer_lifecycle.hpp"
#include "check/check.hpp"
#include "check/protocol.hpp"
#include "common/buffer_pool.hpp"
#include "common/termination.hpp"
#include "name/name_table.hpp"
#include "runtime/api.hpp"
#include "runtime/handlers.hpp"

namespace hal {
namespace {

// --- Workload actors ----------------------------------------------------------

class Sink : public ActorBase {
 public:
  void on_blob(Context&, Bytes data) { bytes_seen += data.size(); }
  void on_nop(Context&) {}
  void on_die(Context& ctx) { ctx.terminate(); }
  HAL_BEHAVIOR(Sink, &Sink::on_blob, &Sink::on_nop, &Sink::on_die)
  inline static std::size_t bytes_seen = 0;
};

class Blaster : public ActorBase {
 public:
  void on_go(Context& ctx, MailAddress target, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      // Alternate inline-payload and bulk-protocol sends so the clean-run
      // audit covers both buffer paths.
      const std::size_t size = (i % 2 == 0) ? 256 : 2048;
      ctx.send<&Sink::on_blob>(target, Bytes(size, std::byte{0x5A}));
    }
  }
  HAL_BEHAVIOR(Blaster, &Blaster::on_go)
};

#if HAL_CHECK

// --- Violation capture ---------------------------------------------------------

std::vector<check::Violation> g_violations;

void capture_violation(const check::Violation& v) { g_violations.push_back(v); }

/// Installs the capturing handler for one test, restoring the previous
/// (panicking) handler on the way out so later tests fail loudly again.
struct HandlerScope {
  HandlerScope() {
    g_violations.clear();
    prev_ = check::set_violation_handler(&capture_violation);
  }
  ~HandlerScope() { check::set_violation_handler(prev_); }
  HandlerScope(const HandlerScope&) = delete;
  HandlerScope& operator=(const HandlerScope&) = delete;

 private:
  check::ViolationHandler prev_;
};

// --- Node affinity --------------------------------------------------------------

TEST(CheckAffinity, ForeignStreamTouchingAPoolIsAttributed) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  Runtime rt(cfg);
  HandlerScope hs;
  Bytes b;
  {
    // Node 1's execution stream reaches into node 0's buffer pool — the
    // cross-node touch the single-writer discipline forbids.
    check::ScopedExecutionNode scope(1);
    b = rt.kernel(0).pool().reserve(64);
  }
  ASSERT_EQ(g_violations.size(), 1u);
  const check::Violation& v = g_violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kNodeAffinity);
  EXPECT_STREQ(v.component, "BufferPool");
  EXPECT_EQ(v.owner, NodeId{0});
  EXPECT_EQ(v.actor_node, NodeId{1});
  {
    // Returning the buffer from the owning stream is clean.
    check::ScopedExecutionNode scope(0);
    rt.kernel(0).pool().release(std::move(b));
  }
  EXPECT_EQ(g_violations.size(), 1u);
}

TEST(CheckAffinity, UnboundStreamAndOwnerStreamPass) {
  RuntimeConfig cfg;
  cfg.nodes = 1;
  Runtime rt(cfg);
  HandlerScope hs;
  // Bootstrap thread (no scope): reads kInvalidNode, passes.
  Bytes a = rt.kernel(0).pool().reserve(64);
  {
    check::ScopedExecutionNode scope(0);
    rt.kernel(0).pool().release(std::move(a));
  }
  EXPECT_TRUE(g_violations.empty());
}

// --- Buffer lifecycle -----------------------------------------------------------

TEST(CheckBuffers, DoubleRetireIsDetected) {
  HandlerScope hs;
  check::BufferLifecycle lc;
  check::NodeAffinityGuard guard;  // unbound, standalone
  Bytes b;
  b.reserve(64);
  lc.note_idle(b, guard);
  EXPECT_TRUE(g_violations.empty());
  lc.note_idle(b, guard);  // same allocation retired twice
  ASSERT_EQ(g_violations.size(), 1u);
  EXPECT_EQ(g_violations.front().kind, check::ViolationKind::kDoubleRetire);
  EXPECT_STREQ(g_violations.front().component, "BufferPool");
  EXPECT_EQ(lc.double_retires(), 1u);
  EXPECT_EQ(lc.poison_hits(), 0u);
}

TEST(CheckBuffers, UseAfterRetireTripsThePoisonFill) {
  HandlerScope hs;
  BufferPool pool;  // standalone: unbound affinity, no ledger
  Bytes b = pool.acquire(64);
  std::byte* stale = b.data();
  pool.release(std::move(b));
  EXPECT_TRUE(g_violations.empty());
  stale[3] = std::byte{0x42};  // write through the dangling pointer
  Bytes reused = pool.reserve(64);
  ASSERT_EQ(g_violations.size(), 1u);
  const check::Violation& v = g_violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kUseAfterRetire);
  EXPECT_EQ(v.detail0, 3u);     // offset of the first corrupted byte
  EXPECT_EQ(v.detail1, 0x42u);  // the byte found instead of the poison
}

TEST(CheckBuffers, DroppedPoolBufferShowsUpAsALeak) {
  RuntimeConfig cfg;
  cfg.nodes = 1;
  Runtime rt(cfg);
  Bytes leaked;
  {
    check::ScopedExecutionNode scope(0);
    leaked = rt.kernel(0).pool().acquire(64);
  }
  // `leaked` is reachable from nowhere inside the runtime: the audit must
  // classify it as a leak, not as in-flight.
  obs::RunReport r = rt.report();
  EXPECT_EQ(r.buffers.acquired, 1u);
  EXPECT_EQ(r.buffers.retired, 0u);
  EXPECT_EQ(r.buffers.in_flight, 0u);
  EXPECT_EQ(r.buffers.leaked, 1u);
  {
    // Hand it back so the destructor-time ledger is clean again.
    check::ScopedExecutionNode scope(0);
    rt.kernel(0).pool().release(std::move(leaked));
  }
  EXPECT_EQ(rt.report().buffers.leaked, 0u);
}

// --- Protocol state -------------------------------------------------------------

TEST(CheckProtocol, DescriptorEpochRegressionIsDetected) {
  HandlerScope hs;
  StatBlock stats;
  NameTable nt(0, stats);
  const SlotId s = nt.allocate(LocalityDescriptor::make_remote(1, {}, 5));
  nt.update(s, LocalityDescriptor::make_remote(2, {}, 3));  // older epoch
  ASSERT_EQ(g_violations.size(), 1u);
  const check::Violation& v = g_violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kEpochRegression);
  EXPECT_STREQ(v.component, "NameTable");
  EXPECT_EQ(v.owner, NodeId{0});
  EXPECT_EQ(v.detail0, 5u);  // held epoch
  EXPECT_EQ(v.detail1, 3u);  // regressing update
  // Equal and newer epochs pass.
  nt.update(s, LocalityDescriptor::make_remote(2, {}, 3));
  nt.update(s, LocalityDescriptor::make_remote(2, {}, 7));
  EXPECT_EQ(g_violations.size(), 1u);
}

TEST(CheckProtocol, FirChainOverflowIsDetected) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  Runtime rt(cfg);
  rt.load<Sink>();
  const MailAddress a = rt.spawn<Sink>(1);
  HandlerScope hs;
  check::ScopedExecutionNode scope(0);
  // Forge FIR packets at node 0, which holds no descriptor for `a` and so
  // allocates a fallback forward pointer and relays the chase.
  am::Packet p;
  p.src = 1;
  p.dst = 0;
  p.handler = kHFir;
  p.words = {a.pack_word0(), a.pack_word1(), 0, 0, 0, 0};
  rt.kernel(0).handle(p);  // 1 hop on a 2-node machine: within bound
  EXPECT_TRUE(g_violations.empty());
  p.words[2] = 3;  // 4 hops, but an epoch-3 watermark licenses the revisits
  p.words[3] = 2;
  rt.kernel(0).handle(p);
  EXPECT_TRUE(g_violations.empty());
  p.words[2] = 5;  // 6 hops with a stalled watermark: a forwarding cycle
  p.words[3] = 0;
  rt.kernel(0).handle(p);
  ASSERT_EQ(g_violations.size(), 1u);
  const check::Violation& v = g_violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kFirChainOverflow);
  EXPECT_STREQ(v.component, "NodeManager");
  EXPECT_EQ(v.owner, NodeId{0});
  EXPECT_EQ(v.detail0, 6u);  // chain length
  EXPECT_EQ(v.detail1, 2u);  // node count + epoch watermark bound
}

TEST(CheckProtocol, BulkCreditWindowUnderflowIsDetected) {
  HandlerScope hs;
  check::CreditWindowAuditor audit;
  audit.configure(3, /*flow_control=*/true);
  audit.note_grant();  // spends the single credit
  EXPECT_TRUE(g_violations.empty());
  audit.note_grant();  // a second concurrent grant: window goes negative
  ASSERT_EQ(g_violations.size(), 1u);
  const check::Violation& v = g_violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kCreditUnderflow);
  EXPECT_STREQ(v.component, "BulkChannel");
  EXPECT_EQ(v.owner, NodeId{3});
  // Completions refund; a grant after a refund is clean again.
  audit.note_complete();
  audit.note_complete();
  audit.note_grant();
  EXPECT_EQ(g_violations.size(), 1u);
  // The flow-control ablation legitimately overlaps transfers: disarmed.
  check::CreditWindowAuditor off;
  off.configure(3, /*flow_control=*/false);
  off.note_grant();
  off.note_grant();
  off.note_grant();
  EXPECT_EQ(g_violations.size(), 1u);
}

TEST(CheckProtocol, TerminationCounterConservationIsDetected) {
  HandlerScope hs;
  TerminationDetector td(1);
  td.note_sent();
  td.note_handled();  // balanced
  EXPECT_TRUE(g_violations.empty());
  td.note_handled();  // handled (2) overtakes sent (1)
  ASSERT_EQ(g_violations.size(), 1u);
  const check::Violation& v = g_violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kCounterConservation);
  EXPECT_STREQ(v.component, "TerminationDetector");
  EXPECT_EQ(v.detail0, 2u);
  EXPECT_EQ(v.detail1, 1u);
}

#else  // !HAL_CHECK — prove the layer compiles away.

// The release shells are empty classes: no fields, no vtables, nothing for
// the per-node structures that embed them to carry.
static_assert(HAL_CHECK == 0);
static_assert(sizeof(check::NodeAffinityGuard) == 1);
static_assert(sizeof(check::BufferLifecycle) == 1);
static_assert(sizeof(check::BufferLedger) == 1);
static_assert(sizeof(check::CreditWindowAuditor) == 1);
static_assert(sizeof(check::ScopedExecutionNode) == 1);

TEST(CheckCompiledOut, ReportingLayerIsInert) {
  // No handler machinery exists: installs are swallowed and return nothing.
  EXPECT_EQ(check::set_violation_handler(nullptr), nullptr);
  check::ScopedExecutionNode scope(7);
  EXPECT_EQ(check::current_node(), kInvalidNode);
}

TEST(CheckCompiledOut, ViolatingSequencesRunSilently) {
  // Each sequence below fires a checker in HAL_CHECK builds; here the
  // probes are no-ops and nothing panics (the default handler would abort
  // the test if any check were still live).
  BufferPool pool;
  Bytes b = pool.acquire(64);
  std::byte* stale = b.data();
  pool.release(std::move(b));
  stale[0] = std::byte{0x42};  // would be use-after-retire
  Bytes reused = pool.reserve(64);
  EXPECT_EQ(reused.size(), 0u);

  StatBlock stats;
  NameTable nt(0, stats);
  const SlotId s = nt.allocate(LocalityDescriptor::make_remote(1, {}, 5));
  nt.update(s, LocalityDescriptor::make_remote(2, {}, 3));  // would regress

  check::CreditWindowAuditor audit;
  audit.configure(0, true);
  audit.note_grant();
  audit.note_grant();  // would underflow

  TerminationDetector td(1);
  td.note_handled();  // would break conservation
  EXPECT_EQ(td.handled(), 1u);
}

TEST(CheckCompiledOut, ReportBufferAuditStaysZero) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  Runtime rt(cfg);
  rt.load<Sink>();
  rt.load<Blaster>();
  const MailAddress sink = rt.spawn<Sink>(1);
  rt.inject<&Blaster::on_go>(rt.spawn<Blaster>(0), sink, std::int64_t{8});
  rt.run();
  const obs::RunReport r = rt.report();
  EXPECT_EQ(r.buffers.acquired, 0u);
  EXPECT_EQ(r.buffers.retired, 0u);
  EXPECT_EQ(r.buffers.leaked, 0u);
  EXPECT_EQ(r.buffers.in_flight, 0u);
}

#endif  // HAL_CHECK

// --- Clean-run + shutdown accounting (both build modes) -------------------------

TEST(CheckClean, MixedWorkloadReportsNoViolationsOrLeaks) {
#if HAL_CHECK
  HandlerScope hs;
#endif
  RuntimeConfig cfg;
  cfg.nodes = 4;
  Runtime rt(cfg);
  rt.load<Sink>();
  rt.load<Blaster>();
  const MailAddress sink = rt.spawn<Sink>(3);
  for (NodeId n = 0; n < cfg.nodes; ++n) {
    rt.inject<&Blaster::on_go>(rt.spawn<Blaster>(n), sink, std::int64_t{12});
  }
  rt.run();
  const obs::RunReport r = rt.report();
  EXPECT_EQ(r.buffers.double_retires, 0u);
  EXPECT_EQ(r.buffers.poison_hits, 0u);
  EXPECT_EQ(r.buffers.in_flight, 0u);
  EXPECT_EQ(r.buffers.leaked, 0u);
  // Ledger conservation on a quiescent machine: every pooled acquisition
  // was retired or legitimately escaped to user code.
  EXPECT_EQ(r.buffers.retired + r.buffers.escaped, r.buffers.acquired);
  const DrainStats drained = rt.shutdown_drain();
  EXPECT_EQ(drained.messages, 0u);
  EXPECT_EQ(drained.payloads, 0u);
#if HAL_CHECK
  EXPECT_GT(r.buffers.acquired, 0u);  // the audit actually watched traffic
  EXPECT_TRUE(g_violations.empty());
#endif
}

TEST(CheckDrain, UndeliveredMailIsCountedAndDrainIsIdempotent) {
  RuntimeConfig cfg;
  cfg.nodes = 1;
  Runtime rt(cfg);
  rt.load<Sink>();
  const MailAddress a = rt.spawn<Sink>(0);
  rt.inject<&Sink::on_blob>(a, Bytes(600, std::byte{0x7F}));
  rt.inject<&Sink::on_nop>(a);
  // Never run: both messages are still buffered in the mailbox.
  const DrainStats d = rt.shutdown_drain();
  EXPECT_EQ(d.messages, 2u);
  EXPECT_EQ(d.payloads, 1u);  // only the blob message carried a buffer
  const DrainStats again = rt.shutdown_drain();
  EXPECT_EQ(again.messages, 0u);
  EXPECT_EQ(again.payloads, 0u);
  // Drained payloads were adopted by the pool, not leaked.
  const obs::RunReport r = rt.report();
  EXPECT_EQ(r.buffers.leaked, 0u);
  EXPECT_EQ(r.buffers.in_flight, 0u);
}

TEST(CheckDrain, DeadLetteredPayloadsAreRetiredNotLeaked) {
  Sink::bytes_seen = 0;
  RuntimeConfig cfg;
  cfg.nodes = 2;
  Runtime rt(cfg);
  rt.load<Sink>();
  const MailAddress a = rt.spawn<Sink>(1);
  rt.inject<&Sink::on_die>(a);
  rt.inject<&Sink::on_blob>(a, Bytes(600, std::byte{0x7F}));  // after death
  rt.run();
  EXPECT_EQ(rt.dead_letters(), 1u);
  EXPECT_EQ(Sink::bytes_seen, 0u);
  // The dead letter's payload buffer went back to a pool: clean ledger.
  const obs::RunReport r = rt.report();
  EXPECT_EQ(r.buffers.leaked, 0u);
  EXPECT_EQ(r.buffers.in_flight, 0u);
  EXPECT_EQ(r.buffers.double_retires, 0u);
  const DrainStats drained = rt.shutdown_drain();
  EXPECT_EQ(drained.messages, 0u);
  EXPECT_EQ(drained.payloads, 0u);
}

}  // namespace
}  // namespace hal
