// Tests: the compiler interface (§6.3) — stack-based static dispatch with
// locality check, fallback to generic sends, and the depth bound.
#include <gtest/gtest.h>

#include "runtime/api.hpp"

namespace hal {
namespace {

class Acc : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { total_ += v; }
  HAL_BEHAVIOR(Acc, &Acc::on_add)
  std::int64_t total() const { return total_; }

 private:
  std::int64_t total_ = 0;
};

/// Looks like Acc to the untyped eye, but is a different class: the fast
/// path's type guard must reject it.
class NotAcc : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { total_ += 100 * v; }
  HAL_BEHAVIOR(NotAcc, &NotAcc::on_add)
  std::int64_t total() const { return total_; }

 private:
  std::int64_t total_ = 0;
};

/// Recursive chain: each actor statically dispatches to the next — nesting
/// on the caller's stack until the depth budget runs out.
class ChainLink : public ActorBase {
 public:
  void on_next(Context& ctx, MailAddress next, std::int64_t remaining) {
    ++depth_reached;
    if (remaining > 0) {
      compiled::send_static<&ChainLink::on_next>(ctx, next, next,
                                                 remaining - 1);
    }
  }
  HAL_BEHAVIOR(ChainLink, &ChainLink::on_next)
  inline static std::int64_t depth_reached = 0;
};

class Driver : public ActorBase {
 public:
  void on_static_sends(Context& ctx, MailAddress target, std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) {
      compiled::send_static<&Acc::on_add>(ctx, target, std::int64_t{1});
    }
  }
  void on_self_chain(Context& ctx, MailAddress link, std::int64_t depth) {
    compiled::send_static<&ChainLink::on_next>(ctx, link, link, depth);
  }
  HAL_BEHAVIOR(Driver, &Driver::on_static_sends, &Driver::on_self_chain)
};

struct CompiledTest : ::testing::Test {
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = MachineKind::kSim;
    return c;
  }
};

TEST_F(CompiledTest, LocalStaticDispatchBypassesQueue) {
  Runtime rt(cfg(1));
  rt.load<Acc>();
  rt.load<Driver>();
  const MailAddress a = rt.spawn<Acc>(0);
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_static_sends>(d, a, std::int64_t{10});
  rt.run();
  EXPECT_EQ(rt.find_behavior<Acc>(a)->total(), 10);
  const StatBlock stats = rt.report().total;
  EXPECT_GE(stats.get(Stat::kStaticDispatches), 10u);
  // Static dispatches bypass the mailbox entirely: the only buffered local
  // send is the bootstrap injection to the driver.
  EXPECT_EQ(stats.get(Stat::kMessagesSentLocal), 1u);
}

TEST_F(CompiledTest, RemoteTargetFallsBackToGenericSend) {
  Runtime rt(cfg(2));
  rt.load<Acc>();
  rt.load<Driver>();
  const MailAddress a = rt.spawn<Acc>(1);  // remote from the driver
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_static_sends>(d, a, std::int64_t{5});
  rt.run();
  EXPECT_EQ(rt.find_behavior<Acc>(a)->total(), 5);
  const StatBlock stats = rt.report().total;
  EXPECT_GE(stats.get(Stat::kMessagesSentRemote), 5u);
}

TEST_F(CompiledTest, TypeGuardRejectsWrongBehavior) {
  Runtime rt(cfg(1));
  rt.load<Acc>();
  rt.load<NotAcc>();
  rt.load<Driver>();
  const MailAddress wrong = rt.spawn<NotAcc>(0);
  const MailAddress d = rt.spawn<Driver>(0);
  // Driver statically targets Acc::on_add; the actual receiver is a NotAcc.
  // The guard must fall back to the generic send, which dispatches by
  // selector — NotAcc's selector 0 — so the message still lands safely.
  rt.inject<&Driver::on_static_sends>(d, wrong, std::int64_t{3});
  rt.run();
  EXPECT_EQ(rt.find_behavior<NotAcc>(wrong)->total(), 300);
}

TEST_F(CompiledTest, DepthBudgetBoundsStackNesting) {
  RuntimeConfig c = cfg(1);
  c.max_stack_depth = 16;
  Runtime rt(c);
  rt.load<ChainLink>();
  rt.load<Driver>();
  ChainLink::depth_reached = 0;
  const MailAddress link = rt.spawn<ChainLink>(0);
  const MailAddress d = rt.spawn<Driver>(0);
  // A self-chain 1000 deep: without the budget this would nest 1000 frames.
  rt.inject<&Driver::on_self_chain>(d, link, std::int64_t{1000});
  rt.run();
  // All 1001 hops ran (fast path + generic fallbacks), none lost.
  EXPECT_EQ(ChainLink::depth_reached, 1001);
  const StatBlock stats = rt.report().total;
  EXPECT_GT(stats.get(Stat::kGenericDispatches), 0u);
  EXPECT_GT(stats.get(Stat::kStaticDispatches), 0u);
}

TEST_F(CompiledTest, LocalityCheckCostsLessThanLookup) {
  // The paper's claim: locality check uses only locally available
  // information — on the home node it is O(1) with no hash access.
  Runtime rt(cfg(2));
  rt.load<Acc>();
  const MailAddress local = rt.spawn<Acc>(0);
  Kernel& k0 = rt.kernel(0);
  const StatBlock& s = k0.stats();
  const auto lookups_before = s.get(Stat::kNameTableLookups);
  EXPECT_TRUE(k0.locality_check(local).valid());
  EXPECT_EQ(s.get(Stat::kNameTableLookups), lookups_before)
      << "home-node locality check must not consult the hash tier";
}

}  // namespace
}  // namespace hal
