// MnMachine: the P >> N regime — node affinity under work stealing,
// termination with thousands of nodes on a handful of workers, link-layer
// recovery on a multiplexed pool, and the large-P assumptions audit
// (RuntimeConfig::validate at P = 16384, detector and probe memory).
//
// Suite names all contain "MnMachine" so the whole file rides the TSan CI
// job's -R 'Stress|ThreadMachine|MnMachine|Bulk|Fault' soak filter: the
// node-state token protocol, the Chase-Lev deques, and the cross-worker
// mailbox handoff are exactly the code paths a 50x repeat under
// ThreadSanitizer is meant to shake.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "am/mn_machine.hpp"
#include "apps/fib.hpp"
#include "common/termination.hpp"
#include "obs/probe_recorder.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

// --- Machine-level harness ----------------------------------------------------

/// Counts with a PLAIN int on purpose: the machine's contract is one
/// execution stream per node (a node never runs on two workers at once, and
/// the token-state RMWs hand the stream over with happens-before). A data
/// race here is the TSan soak's way of catching a broken handoff.
class CountingClient : public am::NodeClient {
 public:
  std::function<void(am::Packet)> on_packet;
  std::uint64_t handled = 0;

  void handle(am::Packet p) override {
    ++handled;
    if (on_packet) on_packet(std::move(p));
  }
  bool step() override { return false; }
  bool has_work() const override { return false; }
};

struct MnHarness {
  am::MnMachine machine;
  std::vector<CountingClient> clients;

  MnHarness(NodeId nodes, std::uint32_t workers)
      : machine(nodes, am::CostModel::zero(), workers), clients(nodes) {
    for (NodeId n = 0; n < nodes; ++n) machine.attach(n, &clients[n]);
  }
};

am::Packet make_packet(NodeId src, NodeId dst, std::uint64_t tag) {
  am::Packet p;
  p.src = src;
  p.dst = dst;
  p.handler = 1;
  p.words[0] = tag;
  return p;
}

// --- Delivery and termination at P >> N ---------------------------------------

TEST(MnMachine, FanoutAndRepliesAtLargeFanoutSmallPool) {
  constexpr NodeId kNodes = 256;
  MnHarness h(kNodes, 2);
  // Every node acks node 0 when pinged; node 0 must see every ack.
  for (NodeId n = 1; n < kNodes; ++n) {
    h.clients[n].on_packet = [&h, n](am::Packet p) {
      h.machine.send(make_packet(n, 0, p.words[0]));
    };
  }
  for (NodeId n = 1; n < kNodes; ++n) {
    h.machine.send(make_packet(0, n, n));
  }
  h.machine.run();
  EXPECT_EQ(h.clients[0].handled, kNodes - 1u);
  for (NodeId n = 1; n < kNodes; ++n) {
    EXPECT_EQ(h.clients[n].handled, 1u) << "node " << n;
  }
}

TEST(MnMachine, TerminationAtThousandNodesOnFourWorkers) {
  constexpr NodeId kNodes = 1024;
  MnHarness h(kNodes, 4);
  // Relay ring seeded at a single node: termination must see the one packet
  // hopping among 1024 mailboxes and declare quiescence exactly when the
  // countdown dies — not before (stranded token) and not never (lost wake).
  for (NodeId n = 0; n < kNodes; ++n) {
    h.clients[n].on_packet = [&h, n](am::Packet p) {
      if (p.words[0] > 0) {
        h.machine.send(make_packet(n, (n + 1) % kNodes, p.words[0] - 1));
      }
    };
  }
  h.machine.send(make_packet(0, 1, 3000));
  h.machine.run();
  std::uint64_t total = 0;
  for (auto& c : h.clients) total += c.handled;
  EXPECT_EQ(total, 3001u);
  // Epoch conservation: every unit (packet or run token) that was sent got
  // handled — the double scan's sent == handled held at the end.
  EXPECT_EQ(h.machine.units_sent(), h.machine.units_handled());
}

TEST(MnMachine, NodeAffinityUnderStealing) {
  // All traffic is seeded through node 0, so every relay token is born in
  // the deque of whichever worker runs node 0 — the other workers only get
  // work by stealing. The plain per-node counters stay exact throughout
  // (stolen nodes carry their execution stream with them).
  constexpr NodeId kNodes = 64;
  constexpr std::uint32_t kWorkers = 4;
  constexpr std::uint64_t kBursts = 32;
  std::uint64_t steals = 0;
  for (int attempt = 0; attempt < 10 && steals == 0; ++attempt) {
    MnHarness h(kNodes, kWorkers);
    h.clients[0].on_packet = [&h](am::Packet p) {
      if (p.words[0] == 0) return;  // an echo, not a burst trigger
      for (NodeId n = 1; n < kNodes; ++n) {
        h.machine.send(make_packet(0, n, p.words[0]));
      }
    };
    for (NodeId n = 1; n < kNodes; ++n) {
      h.clients[n].on_packet = [&h, n](am::Packet) {
        // ~1us of busy work per echo: without it the seeding worker drains
        // the whole flood before a parked thief wakes from its futex, and
        // the attempt observes zero steals.
        volatile std::uint64_t spin = 0;
        for (int i = 0; i < 2000; ++i) {
          spin = spin + static_cast<std::uint64_t>(i);
        }
        h.machine.send(make_packet(n, 0, 0));  // echo back
      };
    }
    for (std::uint64_t i = 1; i <= kBursts; ++i) {
      h.machine.send(make_packet(1, 0, i));
    }
    h.machine.run();
    // Node 0: kBursts triggers + (kNodes-1) echoes per burst.
    EXPECT_EQ(h.clients[0].handled, kBursts + kBursts * (kNodes - 1));
    for (NodeId n = 1; n < kNodes; ++n) {
      EXPECT_EQ(h.clients[n].handled, kBursts) << "node " << n;
    }
    steals = h.machine.steals();
  }
  // Stealing is timing-dependent (a worker parked at the wrong moment may
  // miss a window), hence the retry loop — but five floods through one
  // worker's deque without a single steal means the thief path is dead.
  EXPECT_GT(steals, 0u);
}

TEST(MnMachine, SixteenThousandNodesDeliverAndQuiesce) {
  // The validate() ceiling is the 16-bit wire encoding, not worker count:
  // a 16384-node machine on 4 workers must boot, deliver, and terminate.
  constexpr NodeId kNodes = 16384;
  MnHarness h(kNodes, 4);
  constexpr NodeId kStride = 1024;  // ping a scattered sample, reply to 0
  for (NodeId n = kStride - 1; n < kNodes; n += kStride) {
    h.clients[n].on_packet = [&h, n](am::Packet p) {
      h.machine.send(make_packet(n, 0, p.words[0]));
    };
    h.machine.send(make_packet(0, n, n));
  }
  h.machine.run();
  EXPECT_EQ(h.clients[0].handled, kNodes / kStride);
}

// --- Runtime-level: fib under loss at P >> N ----------------------------------

TEST(MnMachineRuntime, FibUnderLossAtLargePStaysExact) {
  apps::FibParams p;
  p.n = 16;
  p.cutoff = 8;
  p.nodes = 512;
  p.load_balancing = true;
  p.machine = MachineKind::kMn;
  p.mn_workers = 4;
  p.faults.enabled = true;
  p.faults.drop = 0.05;
  p.faults.duplicate = 0.02;
  p.faults.rto_ns = 500'000;
  const apps::FibResult r = apps::run_fib(p);
  EXPECT_EQ(r.value, 987u);
  EXPECT_EQ(r.dead_letters, 0u);
}

TEST(MnMachineRuntime, ReportCarriesMachineKindAndWorkerCount) {
  RuntimeConfig cfg;
  cfg.nodes = 8;
  cfg.machine = MachineKind::kMn;
  cfg.mn_workers = 3;
  Runtime rt(cfg);
  rt.run();
  const obs::RunReport r = rt.report();
  EXPECT_EQ(r.machine, "mn");
  EXPECT_EQ(r.workers, 3u);
  EXPECT_EQ(r.nodes, 8u);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"machine\":\"mn\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\":3"), std::string::npos);
}

TEST(MnMachineRuntime, WorkerCountIsCappedAtNodeCount) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.machine = MachineKind::kMn;
  cfg.mn_workers = 64;  // more workers than nodes cannot be scheduled
  Runtime rt(cfg);
  rt.run();
  EXPECT_EQ(rt.report().workers, 2u);
}

// --- Large-P assumptions audit (satellite 4) ----------------------------------

TEST(MnMachineConfig, ValidateAcceptsSixteenThousandNodes) {
  RuntimeConfig cfg;
  cfg.machine = MachineKind::kMn;
  cfg.nodes = 16384;
  EXPECT_FALSE(cfg.validate().has_value());
  cfg.nodes = kMaxNodes;  // 0xffff: the last id the wire encoding carries
  EXPECT_FALSE(cfg.validate().has_value());
  cfg.nodes = kMaxNodes + 1;
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kTooManyNodes);
}

TEST(MnMachineConfig, MachineKindNamesRoundTrip) {
  for (const MachineKind k :
       {MachineKind::kSim, MachineKind::kThread, MachineKind::kMn}) {
    const auto parsed = parse_machine_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_machine_kind("").has_value());
  EXPECT_FALSE(parse_machine_kind("Sim").has_value());
  EXPECT_FALSE(parse_machine_kind("mn ").has_value());
  EXPECT_FALSE(parse_machine_kind("threads").has_value());
}

TEST(MnMachineScale, TerminationDetectorHandlesSixteenThousandParticipants) {
  // Participant count is a shard-local counter, not a per-participant
  // table: 16384 participants must construct in O(shards) memory and the
  // double scan must still converge when they all leave.
  TerminationDetector det(16384);
  static_assert(sizeof(TerminationDetector) < 8192,
                "detector memory must not scale with participant count");
  det.note_sent();
  det.note_handled();
  for (std::uint32_t i = 0; i < 16384; ++i) det.deactivate(i);
  EXPECT_EQ(det.check([] { return std::uint64_t{0}; }),
            TerminationDetector::Verdict::kQuiescent);
}

TEST(MnMachineScale, PerNodeProbeMemoryIsBoundedAtLargeP) {
  // Runtime keeps one ProbeRecorder per node. At P = 16384 that footprint
  // is P * sizeof(ProbeRecorder); keep the per-node cost under 8 KiB so the
  // machine fits thousands of nodes in a few hundred MB, histograms
  // included.
  static_assert(sizeof(obs::ProbeRecorder) <= 8192,
                "per-node probe memory grew past the large-P budget");
  static_assert(sizeof(obs::Log2Histogram) <= 640,
                "histogram must stay a fixed 65-bucket array");
  SUCCEED();
}

}  // namespace
}  // namespace hal
