// Property-based tests: system-wide invariants under randomized workloads.
//
//  * Exactly-once delivery: every message sent to a location-transparent
//    address is processed exactly once, no matter how the receiver migrates
//    or is stolen while traffic is in flight.
//  * Determinism: identical seeds give bit-identical virtual-time runs.
//  * Epoch monotonicity: after quiescence, following any forward chain
//    strictly increases location epochs and ends at the actor.
//  * Conservation: work tokens return to zero; migrations in == out; no
//    dead letters for live receivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "common/rng.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

/// A migratable accumulator that hops wherever it is told.
class Nomad : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; ++messages_; }
  void on_hop(Context& ctx, NodeId target) { ctx.migrate_to(target); }
  HAL_BEHAVIOR(Nomad, &Nomad::on_add, &Nomad::on_hop)
  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override {
    w.write(sum_);
    w.write(messages_);
  }
  void unpack_state(ByteReader& r) override {
    sum_ = r.read<std::int64_t>();
    messages_ = r.read<std::int64_t>();
  }
  std::int64_t sum() const { return sum_; }
  std::int64_t messages() const { return messages_; }

 private:
  std::int64_t sum_ = 0;
  std::int64_t messages_ = 0;
};

/// Fires a randomized schedule of adds and hops at a set of nomads.
class StormDriver : public ActorBase {
 public:
  void on_storm(Context& ctx, std::uint64_t seed, std::int64_t ops,
                MailAddress a, MailAddress b, MailAddress c) {
    Xoshiro256 rng(seed);
    const MailAddress targets[3] = {a, b, c};
    for (std::int64_t i = 0; i < ops; ++i) {
      const MailAddress& t = targets[rng.below(3)];
      // Space sends out a little so migrations interleave with traffic.
      ctx.charge_ns(rng.below(5000));
      if (rng.below(4) == 0) {
        ctx.send<&Nomad::on_hop>(
            t, static_cast<NodeId>(rng.below(ctx.node_count())));
      } else {
        ctx.send<&Nomad::on_add>(t, std::int64_t{1});
        sent_adds.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  HAL_BEHAVIOR(StormDriver, &StormDriver::on_storm)
  inline static std::atomic<std::int64_t> sent_adds{0};
};

struct StormCase {
  std::uint64_t seed;
  NodeId nodes;
  std::int64_t ops;
  MachineKind machine;
};

class MigrationStorm : public ::testing::TestWithParam<StormCase> {};

TEST_P(MigrationStorm, ExactlyOnceDeliveryUnderRelocation) {
  const StormCase& c = GetParam();
  RuntimeConfig cfg;
  cfg.nodes = c.nodes;
  cfg.machine = c.machine;
  cfg.seed = c.seed;
  Runtime rt(cfg);
  rt.load<Nomad>();
  rt.load<StormDriver>();
  StormDriver::sent_adds = 0;

  const MailAddress a = rt.spawn<Nomad>(0);
  const MailAddress b = rt.spawn<Nomad>(c.nodes / 2);
  const MailAddress n3 = rt.spawn<Nomad>(c.nodes - 1);
  // Several independent drivers on different nodes stress cross-traffic.
  for (NodeId d = 0; d < std::min<NodeId>(c.nodes, 3); ++d) {
    const MailAddress drv = rt.spawn<StormDriver>(d);
    rt.inject<&StormDriver::on_storm>(drv, c.seed + d, c.ops, a, b, n3);
  }
  rt.run();

  std::int64_t received = 0;
  for (const MailAddress& t : {a, b, n3}) {
    const Nomad* nm = rt.find_behavior<Nomad>(t);
    ASSERT_NE(nm, nullptr) << "nomad lost";
    received += nm->messages();
    EXPECT_EQ(nm->sum(), nm->messages());
  }
  EXPECT_EQ(received, StormDriver::sent_adds.load());
  EXPECT_EQ(rt.dead_letters(), 0u);
  EXPECT_EQ(rt.machine().tokens(), 0u);
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kMigrationsIn), stats.get(Stat::kMigrationsOut));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MigrationStorm,
    ::testing::Values(StormCase{1, 4, 120, MachineKind::kSim},
                      StormCase{2, 4, 120, MachineKind::kSim},
                      StormCase{3, 8, 200, MachineKind::kSim},
                      StormCase{4, 8, 200, MachineKind::kSim},
                      StormCase{5, 2, 80, MachineKind::kSim},
                      StormCase{6, 16, 150, MachineKind::kSim},
                      StormCase{7, 3, 100, MachineKind::kSim},
                      StormCase{8, 4, 120, MachineKind::kThread},
                      StormCase{9, 8, 150, MachineKind::kThread}));

TEST_P(MigrationStorm, EpochsIncreaseAlongForwardChains) {
  const StormCase& c = GetParam();
  if (c.machine != MachineKind::kSim) GTEST_SKIP();
  RuntimeConfig cfg;
  cfg.nodes = c.nodes;
  cfg.machine = c.machine;
  cfg.seed = c.seed;
  Runtime rt(cfg);
  rt.load<Nomad>();
  rt.load<StormDriver>();
  const MailAddress a = rt.spawn<Nomad>(0);
  const MailAddress b = rt.spawn<Nomad>(c.nodes - 1);
  const MailAddress drv = rt.spawn<StormDriver>(0);
  rt.inject<&StormDriver::on_storm>(drv, c.seed, c.ops, a, b, a);
  rt.run();

  // Walk each forward chain: epochs must strictly increase hop to hop.
  for (const MailAddress& t : {a, b}) {
    NodeId node = t.home;
    std::uint32_t last_epoch = 0;
    bool first = true;
    for (NodeId hops = 0; hops <= c.nodes + 1; ++hops) {
      Kernel& k = rt.kernel(node);
      const SlotId ds = k.names().resolve(t);
      ASSERT_TRUE(ds.valid());
      const LocalityDescriptor& d = k.names().descriptor(ds);
      if (d.local()) {
        SUCCEED();
        break;
      }
      if (!first) {
        EXPECT_GT(d.epoch, last_epoch)
            << "non-monotone forward chain at node " << node;
      }
      first = false;
      last_epoch = d.epoch;
      node = d.remote_node;
      ASSERT_LE(hops, c.nodes) << "forward chain did not terminate (cycle?)";
    }
  }
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    RuntimeConfig cfg;
    cfg.nodes = 6;
    cfg.seed = seed;
    cfg.load_balancing = true;
    Runtime rt(cfg);
    rt.load<Nomad>();
    rt.load<StormDriver>();
    const MailAddress a = rt.spawn<Nomad>(0);
    const MailAddress b = rt.spawn<Nomad>(3);
    const MailAddress drv = rt.spawn<StormDriver>(1);
    rt.inject<&StormDriver::on_storm>(drv, seed, std::int64_t{150}, a, b, a);
    rt.run();
    return std::pair(rt.report().makespan_ns,
                     rt.report().total.get(Stat::kMessagesSentRemote));
  };
  const auto r1 = run_once(77);
  const auto r2 = run_once(77);
  const auto r3 = run_once(78);
  EXPECT_EQ(r1, r2);
  // A different seed perturbs the schedule (send gaps are seeded).
  EXPECT_NE(r1, r3);
}

/// Join continuations with many slots complete exactly once regardless of
/// the reply arrival order.
class FanOut : public ActorBase {
 public:
  void on_go(Context& ctx, std::int64_t width) {
    const auto w32 = static_cast<std::uint32_t>(width);
    const ContRef join =
        ctx.make_join(w32, [](Context&, const JoinView& v) {
          std::int64_t sum = 0;
          for (std::size_t i = 0; i < v.size(); ++i) {
            sum += v.get<std::int64_t>(i);
          }
          total = sum;
          ++fires;
        });
    for (std::uint32_t i = 0; i < w32; ++i) {
      const auto node =
          static_cast<NodeId>(i % static_cast<std::uint32_t>(ctx.node_count()));
      const MailAddress echo = ctx.create_on<Echo>(node);
      ctx.send_cont<&Echo::on_echo>(echo, join.at(i), std::int64_t{i});
    }
  }
  class Echo : public ActorBase {
   public:
    void on_echo(Context& ctx, std::int64_t v) {
      // Random-ish virtual delay scrambles reply order.
      ctx.charge_ns((static_cast<SimTime>(v) * 2654435761u) % 50000);
      ctx.reply(v);
      ctx.terminate();
    }
    HAL_BEHAVIOR(Echo, &Echo::on_echo)
  };
  HAL_BEHAVIOR(FanOut, &FanOut::on_go)
  inline static std::int64_t total = 0;
  inline static int fires = 0;
};

class JoinWidth : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(JoinWidth, JoinFiresOnceWithAllReplies) {
  const std::int64_t width = GetParam();
  FanOut::total = 0;
  FanOut::fires = 0;
  RuntimeConfig cfg;
  cfg.nodes = 5;
  Runtime rt(cfg);
  rt.load<FanOut>();
  rt.load<FanOut::Echo>();
  const MailAddress f = rt.spawn<FanOut>(0);
  rt.inject<&FanOut::on_go>(f, width);
  rt.run();
  EXPECT_EQ(FanOut::fires, 1);
  EXPECT_EQ(FanOut::total, width * (width - 1) / 2);
  EXPECT_EQ(rt.machine().tokens(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, JoinWidth,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 200));

}  // namespace
}  // namespace hal
