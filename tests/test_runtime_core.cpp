// Integration tests: core actor runtime — creation, sends (local/remote),
// aliases, request/reply via join continuations, become, synchronization
// constraints, and the compiled fast path. Parameterized over both machine
// kinds: the protocols must behave identically under virtual time and under
// real threads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/api.hpp"

namespace hal {
namespace {

// --- Test behaviours --------------------------------------------------------------

class Counter : public ActorBase {
 public:
  void on_inc(Context&, std::int64_t by) { value_ += by; }
  void on_get(Context& ctx) { ctx.reply(value_); }
  HAL_BEHAVIOR(Counter, &Counter::on_inc, &Counter::on_get)

  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Sink : public ActorBase {
 public:
  void on_value(Context&, std::int64_t v) { values.push_back(v); }
  HAL_BEHAVIOR(Sink, &Sink::on_value)
  std::vector<std::int64_t> values;
};

/// Ping-pong pair: bounces a counter back and forth `hops` times, then
/// reports the total to a sink.
class Ponger;
class Pinger : public ActorBase {
 public:
  void on_start(Context& ctx, MailAddress peer, MailAddress sink,
                std::int64_t hops);
  void on_pong(Context& ctx, std::int64_t remaining);
  HAL_BEHAVIOR(Pinger, &Pinger::on_start, &Pinger::on_pong)

 private:
  MailAddress peer_;
  MailAddress sink_;
  std::int64_t count_ = 0;
};

class Ponger : public ActorBase {
 public:
  void on_ping(Context& ctx, MailAddress from, std::int64_t remaining);
  HAL_BEHAVIOR(Ponger, &Ponger::on_ping)
};

void Pinger::on_start(Context& ctx, MailAddress peer, MailAddress sink,
                      std::int64_t hops) {
  peer_ = peer;
  sink_ = sink;
  ctx.send<&Ponger::on_ping>(peer_, ctx.self(), hops);
}

void Pinger::on_pong(Context& ctx, std::int64_t remaining) {
  ++count_;
  if (remaining > 0) {
    ctx.send<&Ponger::on_ping>(peer_, ctx.self(), remaining);
  } else {
    ctx.send<&Sink::on_value>(sink_, count_);
  }
}

void Ponger::on_ping(Context& ctx, MailAddress from, std::int64_t remaining) {
  ctx.send<&Pinger::on_pong>(from, remaining - 1);
}

/// A bounded cell demonstrating synchronization constraints (§6.1): on_take
/// is disabled while empty, on_put is disabled while full.
class Cell : public ActorBase {
 public:
  void on_put(Context&, std::int64_t v) {
    HAL_ASSERT(!full_);
    value_ = v;
    full_ = true;
  }
  void on_take(Context& ctx) {
    HAL_ASSERT(full_);
    full_ = false;
    ctx.reply(value_);
  }
  HAL_BEHAVIOR(Cell, &Cell::on_put, &Cell::on_take)

  bool method_enabled(Selector s) const override {
    if (s == sel<&Cell::on_put>()) return !full_;
    if (s == sel<&Cell::on_take>()) return full_;
    return true;
  }

 private:
  std::int64_t value_ = 0;
  bool full_ = false;
};

/// Behaviour replacement: an egg becomes a chicken.
class Chicken : public ActorBase {
 public:
  void on_query(Context& ctx) { ctx.reply(std::int64_t{2}); }
  HAL_BEHAVIOR(Chicken, &Chicken::on_query)
};

class Egg : public ActorBase {
 public:
  void on_query(Context& ctx) { ctx.reply(std::int64_t{1}); }
  void on_hatch(Context& ctx) { ctx.become<Chicken>(); }
  HAL_BEHAVIOR(Egg, &Egg::on_query, &Egg::on_hatch)
};

/// Collects one int64 reply for test assertions.
class Probe : public ActorBase {
 public:
  void on_ask_counter(Context& ctx, MailAddress target) {
    ctx.request<&Counter::on_get>(
        target, [](Context& inner_ctx, const JoinView& v) {
          // Relay the observed value to ourselves via a plain field write —
          // the body runs on the probe's node with the probe as creator.
          (void)inner_ctx;
          last_seen = v.get<std::int64_t>(0);
        });
  }
  HAL_BEHAVIOR(Probe, &Probe::on_ask_counter)
  static std::int64_t last_seen;
};
std::int64_t Probe::last_seen = -1;

// --- Fixture ------------------------------------------------------------------------

class RuntimeCore : public ::testing::TestWithParam<MachineKind> {
 protected:
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = GetParam();
    return c;
  }
};

TEST_P(RuntimeCore, LocalSendAndReply) {
  Runtime rt(cfg(1));
  rt.load<Counter>();
  const MailAddress c = rt.spawn<Counter>(0);
  rt.inject<&Counter::on_inc>(c, std::int64_t{5});
  rt.inject<&Counter::on_inc>(c, std::int64_t{7});
  rt.run();
  Counter* obj = rt.find_behavior<Counter>(c);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value(), 12);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

TEST_P(RuntimeCore, RemoteSendCrossesNodes) {
  Runtime rt(cfg(4));
  rt.load<Counter>();
  const MailAddress c = rt.spawn<Counter>(3);
  rt.inject<&Counter::on_inc>(c, std::int64_t{1});
  rt.run();
  Counter* obj = rt.find_behavior<Counter>(c);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value(), 1);
  // inject ran on node 3 (the home), so this delivery was local; but the
  // bootstrap injection charged the local path. Now check stats exist.
  EXPECT_EQ(rt.report().total.get(Stat::kActorsCreatedLocal), 1u);
}

TEST_P(RuntimeCore, PingPongAcrossNodes) {
  Runtime rt(cfg(2));
  rt.load<Pinger>();
  rt.load<Ponger>();
  rt.load<Sink>();
  const MailAddress sink = rt.spawn<Sink>(0);
  const MailAddress ping = rt.spawn<Pinger>(0);
  const MailAddress pong = rt.spawn<Ponger>(1);
  rt.inject<&Pinger::on_start>(ping, pong, sink, std::int64_t{20});
  rt.run();
  Sink* s = rt.find_behavior<Sink>(sink);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->values.size(), 1u);
  // ping(20) yields pongs carrying 19, 18, …, 0: exactly 20 round trips.
  EXPECT_EQ(s->values[0], 20);
  const StatBlock stats = rt.report().total;
  EXPECT_GT(stats.get(Stat::kMessagesSentRemote), 0u);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

/// Remote creation through the alias scheme (§5): a spawner actor creates a
/// counter on another node and immediately sends to the alias.
class Spawner : public ActorBase {
 public:
  void on_go(Context& ctx, NodeId target) {
    created = ctx.create_on<Counter>(target);
    // Use the alias immediately: the creation round trip is still in
    // flight, which is exactly the latency the alias hides.
    ctx.send<&Counter::on_inc>(created, std::int64_t{10});
    ctx.send<&Counter::on_inc>(created, std::int64_t{32});
  }
  HAL_BEHAVIOR(Spawner, &Spawner::on_go)
  static MailAddress created;
};
MailAddress Spawner::created;

TEST_P(RuntimeCore, RemoteCreationWithAlias) {
  Runtime rt(cfg(3));
  rt.load<Counter>();
  rt.load<Spawner>();
  const MailAddress sp = rt.spawn<Spawner>(0);
  rt.inject<&Spawner::on_go>(sp, NodeId{2});
  rt.run();
  ASSERT_TRUE(Spawner::created.valid());
  EXPECT_TRUE(Spawner::created.alias);
  EXPECT_EQ(Spawner::created.home, 0u);
  EXPECT_EQ(Spawner::created.created_on, 2u);
  Counter* obj = rt.find_behavior<Counter>(Spawner::created);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value(), 42);
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kAliasesAllocated), 1u);
  EXPECT_EQ(stats.get(Stat::kActorsCreatedRemote), 1u);
}

TEST_P(RuntimeCore, RequestReplyViaJoinContinuation) {
  Probe::last_seen = -1;
  Runtime rt(cfg(2));
  rt.load<Counter>();
  rt.load<Probe>();
  const MailAddress c = rt.spawn<Counter>(1);
  const MailAddress p = rt.spawn<Probe>(0);
  rt.inject<&Counter::on_inc>(c, std::int64_t{123});
  rt.inject<&Probe::on_ask_counter>(p, c);
  rt.run();
  EXPECT_EQ(Probe::last_seen, 123);
  const StatBlock stats = rt.report().total;
  EXPECT_GE(stats.get(Stat::kJoinContinuationsCreated), 1u);
  EXPECT_GE(stats.get(Stat::kRepliesJoined), 1u);
}

/// Drives the Cell: issues a take *before* the put, so the constraint must
/// park the take in the pending queue until the put enables it.
class Taker : public ActorBase {
 public:
  void on_go(Context& ctx, MailAddress cell) {
    ctx.request<&Cell::on_take>(cell, [](Context&, const JoinView& v) {
      taken = v.get<std::int64_t>(0);
    });
    ctx.send<&Cell::on_put>(cell, std::int64_t{55});
  }
  HAL_BEHAVIOR(Taker, &Taker::on_go)
  static std::int64_t taken;
};
std::int64_t Taker::taken = -1;

TEST_P(RuntimeCore, SynchronizationConstraintDefersTake) {
  Taker::taken = -1;
  Runtime rt(cfg(2));
  rt.load<Cell>();
  rt.load<Taker>();
  const MailAddress cell = rt.spawn<Cell>(1);
  const MailAddress taker = rt.spawn<Taker>(0);
  rt.inject<&Taker::on_go>(taker, cell);
  rt.run();
  EXPECT_EQ(Taker::taken, 55);
  const StatBlock stats = rt.report().total;
  EXPECT_GE(stats.get(Stat::kPendingEnqueued), 1u);
  EXPECT_GE(stats.get(Stat::kPendingReplayed), 1u);
}

TEST_P(RuntimeCore, BecomeReplacesBehavior) {
  Runtime rt(cfg(1));
  rt.load<Egg>();
  const MailAddress e = rt.spawn<Egg>(0);
  rt.inject<&Egg::on_hatch>(e);
  rt.run();
  EXPECT_EQ(rt.find_behavior<Egg>(e), nullptr);
  EXPECT_NE(rt.find_behavior<Chicken>(e), nullptr);
}

TEST_P(RuntimeCore, ManyActorsManyMessages) {
  Runtime rt(cfg(4));
  rt.load<Counter>();
  std::vector<MailAddress> counters;
  for (NodeId n = 0; n < 4; ++n) {
    for (int i = 0; i < 25; ++i) counters.push_back(rt.spawn<Counter>(n));
  }
  for (const auto& c : counters) {
    for (int i = 1; i <= 4; ++i) {
      rt.inject<&Counter::on_inc>(c, std::int64_t{i});
    }
  }
  rt.run();
  for (const auto& c : counters) {
    Counter* obj = rt.find_behavior<Counter>(c);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->value(), 10);
  }
  EXPECT_EQ(rt.dead_letters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, RuntimeCore,
                         ::testing::Values(MachineKind::kSim,
                                           MachineKind::kThread),
                         [](const auto& param_info) {
                           return param_info.param == MachineKind::kSim
                                      ? "Sim"
                                      : "Thread";
                         });

}  // namespace
}  // namespace hal
