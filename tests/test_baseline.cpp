// Tests: baseline substrates — sequential kernels and the Chase–Lev
// work-stealing pool (the paper's C and Cilk comparators).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "baseline/seq_kernels.hpp"
#include "baseline/worksteal.hpp"

namespace hal::baseline {
namespace {

// --- Sequential kernels ------------------------------------------------------------

TEST(SeqKernels, FibValues) {
  EXPECT_EQ(fib_seq(0), 0u);
  EXPECT_EQ(fib_seq(1), 1u);
  EXPECT_EQ(fib_seq(10), 55u);
  EXPECT_EQ(fib_seq(20), 6765u);
}

TEST(SeqKernels, FibCallCountMatchesPaper) {
  // The paper: "executing the Fibonacci of 33 results in the creation of
  // 11,405,773 actors."
  EXPECT_EQ(fib_call_count(33), 11405773u);
}

TEST(SeqKernels, CholeskyReconstructsInput) {
  const std::size_t n = 24;
  const auto a = make_spd(n, 42);
  auto l = a;
  cholesky_seq(l, n);
  // Check A == L·Lᵀ.
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k) {
        s += l[i * n + k] * l[j * n + k];
      }
      max_err = std::max(max_err, std::abs(s - a[i * n + j]));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(SeqKernels, CholeskyUpperTriangleZeroed) {
  const std::size_t n = 8;
  auto l = make_spd(n, 7);
  cholesky_seq(l, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(l[i * n + j], 0.0);
    }
  }
}

TEST(SeqKernels, MatmulBlockMatchesNaive) {
  const std::size_t n = 17;
  const auto a = make_dense(n, 1);
  const auto b = make_dense(n, 2);
  const auto c = matmul_seq(a, b, n);
  // Naive triple loop.
  std::vector<double> ref(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += a[i * n + k] * b[k * n + j];
      ref[i * n + j] = s;
    }
  }
  EXPECT_LT(max_abs_diff(c, ref), 1e-12);
}

TEST(SeqKernels, MatmulBlockAccumulates) {
  const std::size_t n = 4;
  std::vector<double> a(n * n, 1.0), b(n * n, 1.0), c(n * n, 5.0);
  matmul_block(a.data(), b.data(), c.data(), n);
  for (double v : c) EXPECT_EQ(v, 5.0 + static_cast<double>(n));
}

// --- Work-stealing deque --------------------------------------------------------------

TEST(WsDeque, LifoForOwner) {
  WsDeque<int> d;
  int items[3] = {1, 2, 3};
  for (auto& i : items) d.push_bottom(&i);
  EXPECT_EQ(*d.pop_bottom(), 3);
  EXPECT_EQ(*d.pop_bottom(), 2);
  EXPECT_EQ(*d.pop_bottom(), 1);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(WsDeque, FifoForThief) {
  WsDeque<int> d;
  int items[3] = {1, 2, 3};
  for (auto& i : items) d.push_bottom(&i);
  EXPECT_EQ(*d.steal_top(), 1);
  EXPECT_EQ(*d.steal_top(), 2);
  EXPECT_EQ(*d.pop_bottom(), 3);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(WsDeque, ConcurrentStealsLoseNothing) {
  WsDeque<std::uint64_t> d(1u << 16);
  constexpr std::uint64_t kN = 20000;
  std::vector<std::uint64_t> items(kN);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> done{false};
  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire) || !d.empty()) {
      if (auto* p = d.steal_top()) {
        sum.fetch_add(*p, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t own = 0;
  for (auto& i : items) {
    d.push_bottom(&i);
    if (i % 3 == 0) {
      if (auto* p = d.pop_bottom()) own += *p;
    }
  }
  while (auto* p = d.pop_bottom()) own += *p;
  done.store(true, std::memory_order_release);
  thief.join();
  const std::uint64_t expect = kN * (kN - 1) / 2;
  EXPECT_EQ(sum.load() + own, expect);
}

// --- Work-stealing pool -----------------------------------------------------------------

TEST(WorkStealPool, RunsSingleTask) {
  WorkStealPool pool(2);
  std::atomic<int> hits{0};
  pool.run([&] { ++hits; });
  EXPECT_EQ(hits.load(), 1);
}

TEST(WorkStealPool, ForkFanOutAllRun) {
  WorkStealPool pool(4);
  std::atomic<int> hits{0};
  pool.run([&] {
    for (int i = 0; i < 500; ++i) {
      pool.fork([&] { ++hits; });
    }
  });
  EXPECT_EQ(hits.load(), 500);
}

TEST(WorkStealPool, RecursiveFibViaContinuations) {
  // Continuation-passing fib: each node owns a join cell; leaves report up.
  struct Node {
    std::atomic<int> pending{2};
    std::uint64_t parts[2] = {0, 0};
    Node* parent = nullptr;
    int slot = 0;
  };
  WorkStealPool pool(3);
  std::uint64_t result = 0;
  std::function<void(unsigned, Node*, int)> spawn =
      [&](unsigned n, Node* parent, int slot) {
        if (n < 2) {
          // Report a leaf value upward, completing ancestors as they fill.
          std::uint64_t value = n;
          Node* cur = parent;
          int s = slot;
          while (cur != nullptr) {
            cur->parts[s] = value;
            if (cur->pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
              return;
            }
            value = cur->parts[0] + cur->parts[1];
            Node* up = cur->parent;
            s = cur->slot;
            delete cur;
            cur = up;
          }
          result = value;
          return;
        }
        auto* node = new Node;
        node->parent = parent;
        node->slot = slot;
        pool.fork([&spawn, n, node] { spawn(n - 1, node, 0); });
        pool.fork([&spawn, n, node] { spawn(n - 2, node, 1); });
      };
  pool.run([&] { spawn(20, nullptr, 0); });
  EXPECT_EQ(result, 6765u);
}

}  // namespace
}  // namespace hal::baseline
