// Integration tests: the paper's benchmark applications produce correct
// results on the actor runtime — Fibonacci (Table 4), column Cholesky
// (Table 1), and Cannon's systolic matmul (Table 5) — across machine kinds,
// variants and mappings.
#include <gtest/gtest.h>

#include "apps/cholesky.hpp"
#include "apps/fib.hpp"
#include "apps/matmul.hpp"
#include "apps/pagerank.hpp"
#include "baseline/seq_kernels.hpp"

namespace hal::apps {
namespace {

// --- Fibonacci ---------------------------------------------------------------------

struct FibCase {
  unsigned n;
  unsigned cutoff;
  NodeId nodes;
  bool lb;
  MachineKind machine;
};

class FibCorrectness : public ::testing::TestWithParam<FibCase> {};

TEST_P(FibCorrectness, MatchesSequential) {
  const FibCase& c = GetParam();
  FibParams p;
  p.n = c.n;
  p.cutoff = c.cutoff;
  p.nodes = c.nodes;
  p.load_balancing = c.lb;
  p.machine = c.machine;
  const FibResult r = run_fib(p);
  EXPECT_EQ(r.value, baseline::fib_seq(c.n));
  EXPECT_EQ(r.dead_letters, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FibCorrectness,
    ::testing::Values(FibCase{1, 2, 1, false, MachineKind::kSim},
                      FibCase{10, 2, 1, false, MachineKind::kSim},
                      FibCase{15, 2, 4, false, MachineKind::kSim},
                      FibCase{15, 2, 4, true, MachineKind::kSim},
                      FibCase{18, 8, 8, true, MachineKind::kSim},
                      FibCase{18, 5, 3, true, MachineKind::kThread},
                      FibCase{14, 2, 2, true, MachineKind::kThread}));

TEST(FibScaling, LoadBalancingHelpsOnManyNodes) {
  FibParams p;
  p.n = 19;
  p.cutoff = 10;
  p.nodes = 8;
  p.machine = MachineKind::kSim;
  p.load_balancing = false;
  const SimTime without = run_fib(p).makespan_ns;
  p.load_balancing = true;
  const FibResult with_lb = run_fib(p);
  EXPECT_EQ(with_lb.value, baseline::fib_seq(p.n));
  // Everything is seeded on node 0; only stealing can use the other seven.
  EXPECT_LT(with_lb.makespan_ns, without / 2);
  EXPECT_GT(with_lb.stats.get(Stat::kStealRequestsServed), 0u);
}

TEST(FibScaling, DeterministicAcrossRuns) {
  FibParams p;
  p.n = 16;
  p.cutoff = 4;
  p.nodes = 4;
  p.load_balancing = true;
  const FibResult a = run_fib(p);
  const FibResult b = run_fib(p);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.stats.get(Stat::kMigrationsIn), b.stats.get(Stat::kMigrationsIn));
}

// --- Cholesky -----------------------------------------------------------------------

struct CholCase {
  CholVariant variant;
  ColMapping mapping;
  std::size_t n;
  NodeId nodes;
  MachineKind machine;
};

class CholeskyCorrectness : public ::testing::TestWithParam<CholCase> {};

TEST_P(CholeskyCorrectness, MatchesSequentialFactorization) {
  const CholCase& c = GetParam();
  CholeskyParams p;
  p.variant = c.variant;
  p.mapping = c.mapping;
  p.n = c.n;
  p.nodes = c.nodes;
  p.machine = c.machine;
  const CholeskyResult r = run_cholesky(p);
  EXPECT_LT(r.max_error, 1e-8);
  EXPECT_EQ(r.dead_letters, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CholeskyCorrectness,
    ::testing::Values(
        CholCase{CholVariant::kPipelined, ColMapping::kCyclic, 48, 4,
                 MachineKind::kSim},
        CholCase{CholVariant::kPipelined, ColMapping::kBlock, 48, 4,
                 MachineKind::kSim},
        CholCase{CholVariant::kGlobalSeq, ColMapping::kCyclic, 48, 4,
                 MachineKind::kSim},
        CholCase{CholVariant::kGlobalBcast, ColMapping::kCyclic, 48, 4,
                 MachineKind::kSim},
        CholCase{CholVariant::kPipelined, ColMapping::kCyclic, 32, 1,
                 MachineKind::kSim},
        CholCase{CholVariant::kPipelined, ColMapping::kCyclic, 40, 8,
                 MachineKind::kSim},
        CholCase{CholVariant::kPipelined, ColMapping::kCyclic, 32, 4,
                 MachineKind::kThread},
        CholCase{CholVariant::kGlobalBcast, ColMapping::kBlock, 32, 4,
                 MachineKind::kThread}));

TEST(CholeskyShape, LocalSyncBeatsGlobalSync) {
  // The Table 1 headline: pipelined local synchronization outperforms the
  // barrier-per-iteration versions.
  CholeskyParams p;
  p.n = 64;
  p.nodes = 4;
  p.mapping = ColMapping::kCyclic;
  p.variant = CholVariant::kPipelined;
  const SimTime pipelined = run_cholesky(p).makespan_ns;
  p.variant = CholVariant::kGlobalSeq;
  const SimTime global_seq = run_cholesky(p).makespan_ns;
  EXPECT_LT(pipelined, global_seq);
}

TEST(CholeskyShape, CyclicBeatsBlockWhenPipelined) {
  // Cyclic mapping balances the shrinking trailing matrix (CP ≤ BP).
  CholeskyParams p;
  p.n = 64;
  p.nodes = 4;
  p.variant = CholVariant::kPipelined;
  p.mapping = ColMapping::kCyclic;
  const SimTime cyclic = run_cholesky(p).makespan_ns;
  p.mapping = ColMapping::kBlock;
  const SimTime block = run_cholesky(p).makespan_ns;
  EXPECT_LT(cyclic, block);
}

TEST(CholeskyShape, OwnerMappingPartitionsAllColumns) {
  for (const ColMapping m : {ColMapping::kBlock, ColMapping::kCyclic}) {
    std::size_t counted = 0;
    for (std::size_t j = 0; j < 97; ++j) {
      const NodeId o = cholesky_owner(j, 97, 5, m);
      ASSERT_LT(o, 5u);
      ++counted;
    }
    EXPECT_EQ(counted, 97u);
  }
}

// --- Systolic matmul -----------------------------------------------------------------

struct MatmulCase {
  std::size_t n;
  std::uint32_t grid;
  MachineKind machine;
};

class MatmulCorrectness : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulCorrectness, MatchesSequentialProduct) {
  const MatmulCase& c = GetParam();
  MatmulParams p;
  p.n = c.n;
  p.grid = c.grid;
  p.machine = c.machine;
  const MatmulResult r = run_matmul(p);
  EXPECT_LT(r.max_error, 1e-10);
  EXPECT_EQ(r.dead_letters, 0u);
  EXPECT_GT(r.mflops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulCorrectness,
    ::testing::Values(MatmulCase{8, 1, MachineKind::kSim},
                      MatmulCase{16, 2, MachineKind::kSim},
                      MatmulCase{24, 3, MachineKind::kSim},
                      MatmulCase{32, 4, MachineKind::kSim},
                      MatmulCase{16, 2, MachineKind::kThread},
                      MatmulCase{24, 3, MachineKind::kThread}));

// --- PageRank (irregular sparse workload, paper §9's asked-for evaluation) ---

struct PrCase {
  std::uint32_t vertices;
  NodeId nodes;
  std::uint32_t ppn;
  std::uint32_t rounds;
  std::uint32_t rebalance_after;
  MachineKind machine;
};

class PageRankCorrectness : public ::testing::TestWithParam<PrCase> {};

TEST_P(PageRankCorrectness, MatchesSequentialEvenUnderRebalancing) {
  const PrCase& c = GetParam();
  PageRankParams p;
  p.vertices = c.vertices;
  p.nodes = c.nodes;
  p.partitions_per_node = c.ppn;
  p.rounds = c.rounds;
  p.rebalance_after_round = c.rebalance_after;
  p.machine = c.machine;
  const PageRankResult r = run_pagerank(p);
  EXPECT_LT(r.max_error, 1e-12);
  EXPECT_EQ(r.dead_letters, 0u);
  EXPECT_EQ(r.round_ns.size(), c.rounds);
  if (c.rebalance_after > 0 && c.machine == MachineKind::kSim) {
    EXPECT_GT(r.migrations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageRankCorrectness,
    ::testing::Values(PrCase{128, 1, 2, 4, 0, MachineKind::kSim},
                      PrCase{256, 4, 2, 6, 0, MachineKind::kSim},
                      PrCase{256, 4, 2, 6, 2, MachineKind::kSim},
                      PrCase{512, 8, 4, 8, 2, MachineKind::kSim},
                      PrCase{300, 3, 3, 5, 1, MachineKind::kSim},
                      PrCase{256, 4, 2, 6, 2, MachineKind::kThread}));

TEST(PageRankShape, RebalancingShortensLaterRounds) {
  PageRankParams p;
  p.vertices = 2048;
  p.nodes = 8;
  p.partitions_per_node = 4;
  p.rounds = 14;
  p.rebalance_after_round = 0;
  const PageRankResult without = run_pagerank(p);
  p.rebalance_after_round = 2;
  const PageRankResult with_rb = run_pagerank(p);
  EXPECT_LT(with_rb.max_error, 1e-12);
  EXPECT_GT(with_rb.migrations, 0u);
  // Compare a steady post-rebalance round against the same round without.
  ASSERT_GT(without.round_ns.size(), 7u);
  EXPECT_LT(with_rb.round_ns[6], without.round_ns[6] * 3 / 4);
  EXPECT_LT(with_rb.makespan_ns, without.makespan_ns);
}

TEST(PageRankShape, GraphGeneratorIsSkewedAndDeterministic) {
  std::vector<std::uint32_t> s1, d1, s2, d2;
  apps::make_skewed_graph(1000, 8, 7, s1, d1);
  apps::make_skewed_graph(1000, 8, 7, s2, d2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(d1, d2);
  // Skew: the first tenth of vertices emits far more than a tenth of edges.
  std::size_t low = 0;
  for (const auto v : s1) {
    if (v < 100) ++low;
  }
  EXPECT_GT(low * 100 / s1.size(), 25u);
  // Every vertex has out-degree ≥ 1 (dangling self-loops added).
  std::vector<bool> seen(1000, false);
  for (const auto v : s1) seen[v] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(MatmulShape, BiggerGridRaisesMflops) {
  // Same matrix on more nodes: the Table 5 scaling direction.
  MatmulParams p;
  p.n = 48;
  p.grid = 1;
  const double m1 = run_matmul(p).mflops;
  p.grid = 4;
  const double m16 = run_matmul(p).mflops;
  EXPECT_GT(m16, m1 * 2);
}

}  // namespace
}  // namespace hal::apps
