// Integration tests: grpnew, MST broadcast with collective scheduling
// (§2.2, §6.4), and member-indexed sends.
#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/api.hpp"

namespace hal {
namespace {

class Member : public ActorBase {
 public:
  void on_init(Context&, GroupId gid, std::uint32_t index,
               std::uint32_t total) {
    gid_ = gid;
    index_ = index;
    total_ = total;
  }
  void on_bump(Context&, std::int64_t by) { value_ += by; }
  void on_tell_index(Context& ctx) { ctx.reply(static_cast<std::int64_t>(index_)); }
  /// Ring step: forward to the next member by index.
  void on_ring(Context& ctx, std::int64_t remaining) {
    ++ring_hits_;
    if (remaining > 0) {
      ctx.send_member<&Member::on_ring>(gid_, (index_ + 1) % total_,
                                        remaining - 1);
    }
  }
  HAL_BEHAVIOR(Member, &Member::on_init, &Member::on_bump,
               &Member::on_tell_index, &Member::on_ring)

  std::int64_t value() const { return value_; }
  std::int64_t ring_hits() const { return ring_hits_; }
  std::uint32_t index() const { return index_; }

 private:
  GroupId gid_{};
  std::uint32_t index_ = 0;
  std::uint32_t total_ = 0;
  std::int64_t value_ = 0;
  std::int64_t ring_hits_ = 0;
};

/// Creates the group and drives it.
class GroupDriver : public ActorBase {
 public:
  void on_make(Context& ctx, std::uint32_t count) {
    gid = ctx.grpnew<Member>(count);
    // Tell every member its index (member-indexed sends).
    for (std::uint32_t i = 0; i < count; ++i) {
      ctx.send_member<&Member::on_init>(gid, i, gid, i, count);
    }
  }
  void on_bump_all(Context& ctx, std::int64_t by) {
    ctx.broadcast<&Member::on_bump>(gid, by);
  }
  void on_start_ring(Context& ctx, std::int64_t steps) {
    ctx.send_member<&Member::on_ring>(gid, 0, steps);
  }
  HAL_BEHAVIOR(GroupDriver, &GroupDriver::on_make, &GroupDriver::on_bump_all,
               &GroupDriver::on_start_ring)
  inline static GroupId gid{};
};

class GroupTest : public ::testing::TestWithParam<MachineKind> {
 protected:
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = GetParam();
    return c;
  }
};

/// Collect every live Member behaviour across all nodes.
std::vector<Member*> all_members(Runtime& rt) {
  std::vector<Member*> out;
  for (NodeId n = 0; n < rt.nodes(); ++n) {
    Kernel& k = rt.kernel(n);
    k.names().for_each_descriptor([&](SlotId, LocalityDescriptor& d) {
      if (!d.local()) return;
      ActorRecord* rec = k.actor(d.actor);
      if (rec == nullptr) return;
      if (auto* m = dynamic_cast<Member*>(rec->impl.get())) {
        // Descriptors can alias the same actor; dedup by pointer.
        if (std::find(out.begin(), out.end(), m) == out.end()) {
          out.push_back(m);
        }
      }
    });
  }
  return out;
}

TEST_P(GroupTest, GrpnewStripesMembersAcrossNodes) {
  GroupDriver::gid = {};
  Runtime rt(cfg(4));
  rt.load<Member>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(1);
  rt.inject<&GroupDriver::on_make>(d, std::uint32_t{10});
  rt.run();
  // 10 members over 4 nodes, rooted at node 1: nodes get 3,3,2,2.
  std::size_t total = 0;
  for (NodeId n = 0; n < 4; ++n) {
    const GroupInfo* g = rt.kernel(n).groups().find(GroupDriver::gid);
    ASSERT_NE(g, nullptr) << "group unknown on node " << n;
    EXPECT_EQ(g->total, 10u);
    total += g->members.size();
    for (const auto& [idx, addr] : g->members) {
      EXPECT_EQ((1 + idx) % 4, n) << "striping: member " << idx;
    }
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(all_members(rt).size(), 10u);
}

TEST_P(GroupTest, BroadcastReachesEveryMemberOnce) {
  GroupDriver::gid = {};
  Runtime rt(cfg(4));
  rt.load<Member>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(0);
  rt.inject<&GroupDriver::on_make>(d, std::uint32_t{13});
  rt.inject<&GroupDriver::on_bump_all>(d, std::int64_t{3});
  rt.inject<&GroupDriver::on_bump_all>(d, std::int64_t{4});
  rt.run();
  const auto members = all_members(rt);
  ASSERT_EQ(members.size(), 13u);
  for (Member* m : members) {
    EXPECT_EQ(m->value(), 7) << "member got duplicated/lost broadcast";
  }
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kBroadcastsSent), 2u);
  // MST relays: ≤ P-1 per broadcast (plus the group-create relay).
  EXPECT_LE(stats.get(Stat::kBroadcastFanout), 3u * (4 - 1));
}

TEST_P(GroupTest, MemberIndexedRingTraversal) {
  GroupDriver::gid = {};
  Runtime rt(cfg(3));
  rt.load<Member>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(0);
  rt.inject<&GroupDriver::on_make>(d, std::uint32_t{6});
  rt.inject<&GroupDriver::on_start_ring>(d, std::int64_t{17});
  rt.run();
  const auto members = all_members(rt);
  ASSERT_EQ(members.size(), 6u);
  std::int64_t total_hits = 0;
  for (Member* m : members) total_hits += m->ring_hits();
  EXPECT_EQ(total_hits, 18);  // 17 forwards + the initial delivery
  EXPECT_EQ(rt.dead_letters(), 0u);
}

TEST_P(GroupTest, SingleMemberGroupOnOneNode) {
  GroupDriver::gid = {};
  Runtime rt(cfg(1));
  rt.load<Member>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(0);
  rt.inject<&GroupDriver::on_make>(d, std::uint32_t{1});
  rt.inject<&GroupDriver::on_bump_all>(d, std::int64_t{9});
  rt.run();
  const auto members = all_members(rt);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0]->value(), 9);
}

TEST_P(GroupTest, GroupLargerThanMachine) {
  GroupDriver::gid = {};
  Runtime rt(cfg(2));
  rt.load<Member>();
  rt.load<GroupDriver>();
  const MailAddress d = rt.spawn<GroupDriver>(0);
  rt.inject<&GroupDriver::on_make>(d, std::uint32_t{64});
  rt.inject<&GroupDriver::on_bump_all>(d, std::int64_t{1});
  rt.run();
  const auto members = all_members(rt);
  ASSERT_EQ(members.size(), 64u);
  for (Member* m : members) EXPECT_EQ(m->value(), 1);
}

INSTANTIATE_TEST_SUITE_P(Machines, GroupTest,
                         ::testing::Values(MachineKind::kSim,
                                           MachineKind::kThread),
                         [](const auto& param_info) {
                           return param_info.param == MachineKind::kSim
                                      ? "Sim"
                                      : "Thread";
                         });

}  // namespace
}  // namespace hal
