// Fault-plane tests (ROADMAP item 3): seeded drop/duplicate/delay injection
// on the active-message wire, and the reliable-link recovery that restores
// effectively-once, in-order delivery to every layer above — including the
// termination detector, the bulk-transfer credit window, and the FIR chase.
//
// Suite names all contain "Fault" so the ThreadMachine soaks here ride the
// HAL_SANITIZE=thread CI job's -R 'Stress|ThreadMachine|Bulk|Fault' filter.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "am/bulk.hpp"
#include "am/link.hpp"
#include "am/mn_machine.hpp"
#include "am/sim_machine.hpp"
#include "am/thread_machine.hpp"
#include "apps/fib.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

// --- Machine-level harness (mirrors test_am_machines.cpp) ---------------------

class LinkTestClient : public am::NodeClient {
 public:
  std::vector<am::Packet> received;

  void handle(am::Packet p) override { received.push_back(std::move(p)); }
  bool step() override { return false; }
  bool has_work() const override { return false; }
};

template <typename M>
struct LinkHarness {
  M machine;
  std::vector<LinkTestClient> clients;

  explicit LinkHarness(NodeId nodes,
                       am::CostModel costs = am::CostModel::cm5())
      : machine(nodes, costs), clients(nodes) {
    for (NodeId n = 0; n < nodes; ++n) machine.attach(n, &clients[n]);
  }
};

am::Packet make_packet(NodeId src, NodeId dst, std::uint64_t tag) {
  am::Packet p;
  p.src = src;
  p.dst = dst;
  p.handler = 1;
  p.words[0] = tag;
  return p;
}

/// Every packet arrived exactly once, in send order (tags 0..count-1).
void expect_exactly_once_in_order(const LinkTestClient& c, std::uint64_t count) {
  ASSERT_EQ(c.received.size(), count);
  for (std::uint64_t i = 0; i < count; ++i) {
    EXPECT_EQ(c.received[i].words[0], i) << "at position " << i;
  }
}

// --- FaultLink: sequence-number boundaries at the endpoint layer --------------
//
// The sequence space skips 0 (reserved for unsequenced control traffic) and
// wraps UINT64_MAX -> 1 under serial-number ordering. These tests drive a
// bare sender/receiver endpoint pair across the wraparound point directly —
// no machine, no faults drawn — so the boundary arithmetic is pinned
// independently of the probabilistic soaks below.

struct RecordingSink final : am::LinkSink {
  std::vector<am::Packet> wire;       ///< every physical link_transmit copy
  std::vector<am::Packet> delivered;  ///< in-order link_deliver stream

  ~RecordingSink() = default;

  void link_transmit(am::Packet p, SimTime /*extra_delay_ns*/) override {
    wire.push_back(std::move(p));
  }
  void link_deliver(am::Packet p) override { delivered.push_back(std::move(p)); }

  /// Drain and return the data (non-ack) packets transmitted so far.
  std::vector<am::Packet> take_data() {
    std::vector<am::Packet> data;
    for (auto& p : wire) {
      if (!p.link_ack) data.push_back(std::move(p));
    }
    wire.clear();
    return data;
  }
  /// Drain and return the ack packets transmitted so far.
  std::vector<am::Packet> take_acks() {
    std::vector<am::Packet> acks;
    for (auto& p : wire) {
      if (p.link_ack) acks.push_back(std::move(p));
    }
    wire.clear();
    return acks;
  }
};

constexpr std::uint64_t kSeqMax = std::numeric_limits<std::uint64_t>::max();

/// A sender/receiver endpoint pair pre-positioned so the next data packet
/// takes sequence number `start` on the 0 -> 1 channel.
struct WrapPair {
  am::LinkEndpoint a;  ///< sender, node 0
  am::LinkEndpoint b;  ///< receiver, node 1
  RecordingSink a_sink;
  RecordingSink b_sink;

  explicit WrapPair(std::uint64_t start, SimTime rto = 1'000) {
    am::FaultConfig clean;
    clean.enabled = true;
    a.configure(0, clean, rto, nullptr);
    b.configure(1, clean, rto, nullptr);
    a.preseed_out_for_test(1, start);
    b.preseed_in_for_test(0, start);
  }
};

TEST(FaultLink, SeqWraparoundSkipsZeroAndDeliversInOrder) {
  WrapPair w(kSeqMax - 1);
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    w.a.send_data(make_packet(0, 1, tag), /*now=*/0, w.a_sink);
  }
  const auto sent = w.a_sink.take_data();
  ASSERT_EQ(sent.size(), 4u);
  EXPECT_EQ(sent[0].link_seq, kSeqMax - 1);
  EXPECT_EQ(sent[1].link_seq, kSeqMax);
  EXPECT_EQ(sent[2].link_seq, 1u);  // 0 is reserved: the space wraps to 1
  EXPECT_EQ(sent[3].link_seq, 2u);

  // In-order arrival across the boundary delivers every packet exactly
  // once, in send order — the wrap is invisible to the layer above.
  for (const auto& p : sent) w.b.receive(p, w.b_sink);
  ASSERT_EQ(w.b_sink.delivered.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w.b_sink.delivered[i].words[0], i) << "at position " << i;
  }
  EXPECT_EQ(w.b_sink.take_acks().back().link_seq, 2u);
}

TEST(FaultLink, SeqWraparoundOutOfOrderBuffering) {
  WrapPair w(kSeqMax - 1);
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    w.a.send_data(make_packet(0, 1, tag), /*now=*/0, w.a_sink);
  }
  auto sent = w.a_sink.take_data();
  ASSERT_EQ(sent.size(), 4u);

  // Arrive fully reversed: post-wrap seqs 2 and 1 first, then kSeqMax,
  // then the expected kSeqMax - 1 — everything buffers until the straggler
  // lands, then flushes in send order across the boundary.
  for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
    w.b.receive(*it, w.b_sink);
  }
  ASSERT_EQ(w.b_sink.delivered.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w.b_sink.delivered[i].words[0], i) << "at position " << i;
  }

  // The final cumulative ack names the post-wrap frontier, and feeding the
  // acks back releases every master — including the pre-wrap ones, which
  // a cumulative value of 2 covers only under serial ordering.
  const auto acks = w.b_sink.take_acks();
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().link_seq, 2u);
  EXPECT_TRUE(w.a.has_unacked());
  for (const auto& ack : acks) w.a.receive(ack, w.a_sink);
  EXPECT_FALSE(w.a.has_unacked());
}

TEST(FaultLink, SeqWraparoundRetransmitRacingAckIsDeduped) {
  WrapPair w(kSeqMax, /*rto=*/1'000);
  w.a.send_data(make_packet(0, 1, 0), /*now=*/0, w.a_sink);  // seq kSeqMax
  w.a.send_data(make_packet(0, 1, 1), /*now=*/0, w.a_sink);  // seq 1 (wrapped)
  auto first = w.a_sink.take_data();
  ASSERT_EQ(first.size(), 2u);

  // Both copies reach the receiver in order; its cumulative ack (seq 1,
  // post-wrap) is still in flight when the sender's timer fires and
  // retransmits both masters.
  for (const auto& p : first) w.b.receive(p, w.b_sink);
  ASSERT_EQ(w.b_sink.delivered.size(), 2u);
  const auto acks = w.b_sink.take_acks();
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().link_seq, 1u);

  EXPECT_GT(w.a.next_deadline(), 0u);
  w.a.on_timer(/*now=*/5'000, w.a_sink);
  auto retrans = w.a_sink.take_data();
  ASSERT_EQ(retrans.size(), 2u);
  EXPECT_TRUE(retrans[0].retransmitted);

  // The racing ack lands: every master — pre- and post-wrap — is released.
  for (const auto& ack : acks) w.a.receive(ack, w.a_sink);
  EXPECT_FALSE(w.a.has_unacked());
  EXPECT_EQ(w.a.next_deadline(), 0u);

  // The late retransmits are suppressed before any layer above can see
  // them, and each one is re-acked so a real sender would stop resending.
  for (const auto& p : retrans) w.b.receive(p, w.b_sink);
  EXPECT_EQ(w.b_sink.delivered.size(), 2u);  // still effectively-once
  EXPECT_EQ(w.b.stats().dupes_suppressed, 2u);
  const auto reacks = w.b_sink.take_acks();
  ASSERT_EQ(reacks.size(), 2u);
  EXPECT_EQ(reacks.back().link_seq, 1u);
}

// --- FaultLink: the injector + reliable link at the machine layer -------------

TEST(FaultLink, DisabledByDefaultKeepsDirectPath) {
  LinkHarness<am::SimMachine> h(2);
  EXPECT_EQ(h.machine.link_stats(0), nullptr);
  am::FaultConfig off;
  off.drop = 0.5;  // knobs without the master switch stay inert
  h.machine.configure_faults(off);
  EXPECT_EQ(h.machine.link_stats(0), nullptr);
  h.machine.send(make_packet(0, 1, 0));
  h.machine.run();
  expect_exactly_once_in_order(h.clients[1], 1);
}

TEST(FaultLink, SimExactlyOnceInOrderUnderDropDupDelay) {
  LinkHarness<am::SimMachine> h(2);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.2;
  fc.duplicate = 0.2;
  fc.delay = 0.3;
  fc.seed = 42;
  h.machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    h.machine.send(make_packet(0, 1, i));
    h.machine.send(make_packet(1, 0, i));
  }
  h.machine.run();
  expect_exactly_once_in_order(h.clients[0], kCount);
  expect_exactly_once_in_order(h.clients[1], kCount);
  // At these rates over 400 data packets the injector certainly fired, and
  // recovery certainly ran (seeded, so this is deterministic, not flaky).
  const am::LinkStats& s0 = *h.machine.link_stats(0);
  const am::LinkStats& s1 = *h.machine.link_stats(1);
  EXPECT_GT(s0.drops_injected + s1.drops_injected, 0u);
  EXPECT_GT(s0.duplicates_injected + s1.duplicates_injected, 0u);
  EXPECT_GT(s0.delays_injected + s1.delays_injected, 0u);
  EXPECT_GT(s0.retransmits + s1.retransmits, 0u);
  EXPECT_GT(s0.dupes_suppressed + s1.dupes_suppressed, 0u);
  EXPECT_GT(s0.acks_sent, 0u);
  EXPECT_GT(s1.acks_sent, 0u);
}

// Regression for the targeted loss the detector accounting must survive: the
// one and only (hence final, quiescence-carrying) packet is dropped on its
// first transmission. Without the unacked-master liveness rule the machine
// would declare quiescence with the message still unrecovered.
TEST(FaultLink, SimFinalMessageDroppedIsRetransmitted) {
  LinkHarness<am::SimMachine> h(2);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop_first = 1;
  fc.seed = 7;
  h.machine.configure_faults(fc);
  h.machine.send(make_packet(0, 1, 0));
  h.machine.run();
  expect_exactly_once_in_order(h.clients[1], 1);
  const am::LinkStats& s = *h.machine.link_stats(0);
  EXPECT_EQ(s.drops_injected, 1u);
  EXPECT_GE(s.retransmits, 1u);
}

TEST(FaultLink, SimEveryPacketDuplicatedDeliversOnce) {
  LinkHarness<am::SimMachine> h(2);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.duplicate = 1.0;
  fc.seed = 9;
  h.machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 20;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    h.machine.send(make_packet(0, 1, i));
  }
  h.machine.run();
  expect_exactly_once_in_order(h.clients[1], kCount);
  // Every transmission is duplicated — including retransmissions that fire
  // when the doubled handler backlog delays the cumulative ack past the RTO —
  // so both counters are at least the message count, not exactly it.
  EXPECT_GE(h.machine.link_stats(0)->duplicates_injected, kCount);
  EXPECT_GE(h.machine.link_stats(1)->dupes_suppressed, kCount);
}

TEST(FaultLink, SimDelayReordersWireButDeliveryStaysOrdered) {
  LinkHarness<am::SimMachine> h(2);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.delay = 0.5;
  fc.delay_ns = 50'000;  // far past several successors' arrivals
  fc.seed = 3;
  h.machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 50;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    h.machine.send(make_packet(0, 1, i));
  }
  h.machine.run();
  expect_exactly_once_in_order(h.clients[1], kCount);
  EXPECT_GT(h.machine.link_stats(0)->delays_injected, 0u);
}

TEST(FaultLink, SimSameSeedSameFaultPattern) {
  auto run_once = [] {
    LinkHarness<am::SimMachine> h(3);
    am::FaultConfig fc;
    fc.enabled = true;
    fc.drop = 0.15;
    fc.duplicate = 0.15;
    fc.delay = 0.25;
    fc.seed = 0xfeed;
    h.machine.configure_faults(fc);
    for (std::uint64_t i = 0; i < 60; ++i) {
      h.machine.send(make_packet(0, 1, i));
      h.machine.send(make_packet(1, 2, i));
      h.machine.send(make_packet(2, 0, i));
    }
    h.machine.run();
    const am::LinkStats& s = *h.machine.link_stats(0);
    return std::tuple{h.machine.makespan(), h.machine.events_processed(),
                      s.drops_injected,    s.duplicates_injected,
                      s.delays_injected,   s.retransmits,
                      s.dupes_suppressed,  s.acks_sent};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultLink, ThreadLossAndDuplicationExactlyOnce) {
  LinkHarness<am::ThreadMachine> h(2);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.1;
  fc.duplicate = 0.1;
  fc.seed = 11;
  fc.rto_ns = 500'000;  // soak-friendly: recover dropped packets in ~0.5 ms
  h.machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    h.machine.send(make_packet(0, 1, i));
  }
  h.machine.run();
  expect_exactly_once_in_order(h.clients[1], kCount);
}

// Same soak on the M:N pool, with many more endpoints than workers: link
// endpoints migrate across workers with their nodes, and the shared timer
// table (not a per-node thread) keeps retransmission alive.
TEST(FaultLink, MnLossAndDuplicationExactlyOnceAtLargeP) {
  LinkHarness<am::MnMachine> h(64);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.1;
  fc.duplicate = 0.1;
  fc.seed = 11;
  fc.rto_ns = 500'000;
  h.machine.configure_faults(fc);
  constexpr std::uint64_t kCount = 50;
  for (NodeId dst = 1; dst < 64; ++dst) {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      h.machine.send(make_packet(0, dst, i));
    }
  }
  h.machine.run();
  for (NodeId dst = 1; dst < 64; ++dst) {
    expect_exactly_once_in_order(h.clients[dst], kCount);
  }
}

// --- FaultBulk: the credit window audited under the injector ------------------
// pump_grants has no grant-resend path by design: grants ride the reliable
// link (invariant comment in BulkChannel::on_ack). These tests are the audit —
// transfers, queued grants, and zero-size grants all complete under loss.

template <typename M>
struct FaultBulkHarness {
  M machine;
  struct BulkClient : am::NodeClient {
    am::BulkChannel* channel = nullptr;
    std::vector<std::pair<std::uint64_t, Bytes>> delivered;  // (tag, data)
    void handle(am::Packet p) override { channel->route(p); }
    bool step() override { return false; }
    bool has_work() const override { return false; }
  };
  std::vector<BulkClient> clients;
  std::vector<StatBlock> stats;
  std::vector<obs::ProbeRecorder> probes;
  std::vector<BufferPool> pools;
  std::vector<std::unique_ptr<am::BulkChannel>> channels;

  explicit FaultBulkHarness(NodeId nodes,
                            am::CostModel costs = am::CostModel::cm5())
      : machine(nodes, costs),
        clients(nodes),
        stats(nodes),
        probes(nodes),
        pools(nodes) {
    const am::BulkHandlers h{10, 11, 12};
    for (NodeId n = 0; n < nodes; ++n) {
      auto* client = &clients[n];
      channels.push_back(std::make_unique<am::BulkChannel>(
          machine, n, h, stats[n], probes[n], pools[n],
          [client](NodeId, std::uint64_t tag,
                   const std::array<std::uint64_t, 2>&, Bytes data) {
            client->delivered.emplace_back(tag, std::move(data));
          }));
      clients[n].channel = channels[n].get();
      machine.attach(n, &clients[n]);
    }
  }
};

Bytes pattern_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::byte>(i * 31 % 251);
  }
  return b;
}

TEST(FaultBulk, TransfersSurviveDropAndDuplication) {
  FaultBulkHarness<am::SimMachine> h(3);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.15;
  fc.duplicate = 0.15;
  fc.seed = 21;
  h.machine.configure_faults(fc);
  const Bytes data = pattern_bytes(8 * am::kBulkChunkBytes);
  h.channels[0]->send(2, 1, {0, 0}, data);
  h.channels[1]->send(2, 2, {0, 0}, data);
  h.machine.run();
  ASSERT_EQ(h.clients[2].delivered.size(), 2u);
  EXPECT_EQ(h.clients[2].delivered[0].second, data);
  EXPECT_EQ(h.clients[2].delivered[1].second, data);
}

// A zero-size grant completing inline while the injector mangles the REQUEST
// and ACK packets around it — the grant queue must still drain.
TEST(FaultBulk, ZeroSizeAndQueuedGrantsDrainUnderFaults) {
  FaultBulkHarness<am::SimMachine> h(5);
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.2;
  fc.duplicate = 0.1;
  fc.seed = 33;
  h.machine.configure_faults(fc);
  const Bytes big = pattern_bytes(4 * am::kBulkChunkBytes);
  h.channels[1]->send(0, 1, {0, 0}, big);
  h.channels[2]->send(0, 2, {0, 0}, {});  // zero-size, queued behind 1
  h.channels[3]->send(0, 3, {0, 0}, big);
  h.channels[4]->send(0, 4, {0, 0}, {});
  h.machine.run();
  EXPECT_EQ(h.clients[0].delivered.size(), 4u);
}

// --- Runtime-level workloads under faults -------------------------------------

class Counter : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; }
  HAL_BEHAVIOR(Counter, &Counter::on_add)

  std::int64_t sum() const { return sum_; }

 private:
  std::int64_t sum_ = 0;
};

class Burst : public ActorBase {
 public:
  void on_fire(Context& ctx, MailAddress target, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.send<&Counter::on_add>(target, std::int64_t{1});
    }
  }
  HAL_BEHAVIOR(Burst, &Burst::on_fire)
};

/// A migratable accumulator (the Wanderer of test_migration.cpp, trimmed).
class Roamer : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; }
  void on_hop(Context& ctx, NodeId target) { ctx.migrate_to(target); }
  HAL_BEHAVIOR(Roamer, &Roamer::on_add, &Roamer::on_hop)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override { w.write(sum_); }
  void unpack_state(ByteReader& r) override { sum_ = r.read<std::int64_t>(); }

  std::int64_t sum() const { return sum_; }

 private:
  std::int64_t sum_ = 0;
};

/// Waits (virtual time under Sim) then fires adds at a possibly-moved target,
/// forcing the forward + FIR-chase path.
class LateAdder : public ActorBase {
 public:
  void on_fire(Context& ctx, MailAddress target, std::int64_t count,
               std::int64_t delay_us) {
    ctx.charge_ns(static_cast<SimTime>(delay_us) * 1000);
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.send<&Roamer::on_add>(target, std::int64_t{1});
    }
  }
  HAL_BEHAVIOR(LateAdder, &LateAdder::on_fire)
};

/// Which node currently hosts `addr` (walks forward pointers).
NodeId host_of(Runtime& rt, const MailAddress& addr) {
  NodeId node = addr.home;
  for (NodeId hops = 0; hops <= rt.nodes(); ++hops) {
    Kernel& k = rt.kernel(node);
    const SlotId ds = k.names().resolve(addr);
    if (!ds.valid()) return kInvalidNode;
    const LocalityDescriptor& d = k.names().descriptor(ds);
    if (d.local()) return node;
    node = d.remote_node;
  }
  return kInvalidNode;
}

class FaultRuntimeTest : public ::testing::TestWithParam<MachineKind> {
 protected:
  RuntimeConfig cfg(NodeId nodes, const am::FaultConfig& faults) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = GetParam();
    c.faults = faults;
    // Keep ThreadMachine recovery latency test-friendly (default is 2 ms).
    if (c.faults.rto_ns == 0) c.faults.rto_ns = 500'000;
    return c;
  }
  bool is_sim() const { return GetParam() == MachineKind::kSim; }
};

TEST_P(FaultRuntimeTest, BurstsStayExactUnderLossAndDuplication) {
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.05;
  fc.duplicate = 0.05;
  fc.delay = 0.05;  // scrubbed under Thread
  Runtime rt(cfg(4, fc));
  rt.load<Counter>();
  rt.load<Burst>();
  const MailAddress counter = rt.spawn<Counter>(0);
  // Large enough that the wire still carries plenty of physical packets
  // with batching coalescing ~32 sends per frame (the seeded 5% injector
  // must certainly fire below).
  for (NodeId n = 1; n < 4; ++n) {
    rt.inject<&Burst::on_fire>(rt.spawn<Burst>(n), counter, std::int64_t{500});
  }
  rt.run();
  const Counter* c = rt.find_behavior<Counter>(counter);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->sum(), 1500);
  EXPECT_EQ(rt.dead_letters(), 0u);
  const StatBlock total = rt.report().total;
  if (is_sim()) {
    // Seeded Sim draws: the injector certainly fired at these rates, and the
    // wire counters made it into the report.
    EXPECT_GT(total.get(Stat::kLinkDropsInjected), 0u);
    EXPECT_GT(total.get(Stat::kLinkRetransmits), 0u);
    EXPECT_GT(total.get(Stat::kLinkAcksSent), 0u);
  }
}

// Satellite regression: the FINAL quiescence-carrying message of the run is
// lost on first transmission (drop_first hits the first data packet of every
// channel — for a single-message workload that is the final message). The
// run must complete with the exact result, not hang and not undercount.
TEST_P(FaultRuntimeTest, FinalQuiescenceCarryingMessageLost) {
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop_first = 1;
  Runtime rt(cfg(2, fc));
  rt.load<Counter>();
  rt.load<Burst>();
  const MailAddress counter = rt.spawn<Counter>(1);
  rt.inject<&Burst::on_fire>(rt.spawn<Burst>(0), counter, std::int64_t{1});
  rt.run();
  const Counter* c = rt.find_behavior<Counter>(counter);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->sum(), 1);
  EXPECT_EQ(rt.dead_letters(), 0u);
  EXPECT_GE(rt.report().total.get(Stat::kLinkRetransmits), 1u);
}

// ...and its mirror: the final message is duplicated. The sequence layer must
// absorb the copy before the termination detector (or the actor) sees it.
TEST_P(FaultRuntimeTest, FinalQuiescenceCarryingMessageDuplicated) {
  am::FaultConfig fc;
  fc.enabled = true;
  fc.duplicate = 1.0;
  Runtime rt(cfg(2, fc));
  rt.load<Counter>();
  rt.load<Burst>();
  const MailAddress counter = rt.spawn<Counter>(1);
  rt.inject<&Burst::on_fire>(rt.spawn<Burst>(0), counter, std::int64_t{1});
  rt.run();
  const Counter* c = rt.find_behavior<Counter>(counter);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->sum(), 1);  // delivered once, not twice
  EXPECT_EQ(rt.dead_letters(), 0u);
  EXPECT_GE(rt.report().total.get(Stat::kLinkDupesSuppressed), 1u);
}

// Migration + FIR chase over a lossy wire: stale-descriptor forwards, park
// requests, and FIR responses all ride the reliable link, so the chase's
// monotone-epoch re-resolution stays sound under loss and duplication.
TEST_P(FaultRuntimeTest, MigrationAndFirChaseSurviveFaults) {
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.1;
  fc.duplicate = 0.1;
  Runtime rt(cfg(4, fc));
  rt.load<Roamer>();
  rt.load<LateAdder>();
  const MailAddress w = rt.spawn<Roamer>(0);
  rt.inject<&Roamer::on_hop>(w, NodeId{1});
  rt.inject<&Roamer::on_hop>(w, NodeId{2});
  rt.inject<&LateAdder::on_fire>(rt.spawn<LateAdder>(3), w, std::int64_t{10},
                                 std::int64_t{10000});
  rt.run();
  const Roamer* obj = rt.find_behavior<Roamer>(w);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 10);  // exactly-once despite chase + injected faults
  EXPECT_EQ(host_of(rt, w), 2u);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, FaultRuntimeTest,
                         ::testing::Values(MachineKind::kSim,
                                           MachineKind::kThread,
                                           MachineKind::kMn),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case MachineKind::kSim:
                               return "Sim";
                             case MachineKind::kThread:
                               return "Thread";
                             case MachineKind::kMn:
                               return "Mn";
                           }
                           return "Unknown";
                         });

// --- Byte-determinism of full reports across the fault matrix -----------------

TEST(FaultReport, SimFibMatrixIsByteDeterministic) {
  for (const double rate : {0.0, 0.01, 0.05, 0.10}) {
    apps::FibParams params;
    params.n = 16;
    params.cutoff = 8;
    params.nodes = 4;
    params.machine = MachineKind::kSim;
    params.faults.enabled = true;
    params.faults.drop = rate;
    params.faults.duplicate = rate / 2;
    params.faults.delay = rate;
    const apps::FibResult a = apps::run_fib(params);
    const apps::FibResult b = apps::run_fib(params);
    EXPECT_EQ(a.value, 987u) << "rate " << rate;
    EXPECT_EQ(a.dead_letters, 0u) << "rate " << rate;
    EXPECT_EQ(a.report.to_json(), b.report.to_json()) << "rate " << rate;
    if (rate > 0.0) {
      EXPECT_GT(a.stats.get(Stat::kLinkDropsInjected), 0u) << "rate " << rate;
    }
  }
}

// --- ThreadMachine loss soak (TSan CI target) ---------------------------------

TEST(FaultSoak, ThreadRuntimeLossSoak) {
  am::FaultConfig fc;
  fc.enabled = true;
  fc.drop = 0.05;
  fc.duplicate = 0.05;
  fc.rto_ns = 500'000;
  RuntimeConfig c;
  c.nodes = 4;
  c.machine = MachineKind::kThread;
  c.faults = fc;
  Runtime rt(c);
  rt.load<Counter>();
  rt.load<Burst>();
  const MailAddress counter = rt.spawn<Counter>(0);
  for (NodeId n = 1; n < 4; ++n) {
    rt.inject<&Burst::on_fire>(rt.spawn<Burst>(n), counter, std::int64_t{200});
  }
  rt.run();
  const Counter* cnt = rt.find_behavior<Counter>(counter);
  ASSERT_NE(cnt, nullptr);
  EXPECT_EQ(cnt->sum(), 600);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

}  // namespace
}  // namespace hal
