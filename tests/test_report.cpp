// Tests for the observability layer: Log2Histogram quantiles, RunReport
// aggregation and JSON determinism, the deprecated-accessor equivalence, and
// RuntimeConfig validation.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/histogram.hpp"
#include "obs/probe_recorder.hpp"
#include "obs/run_report.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

// --- Log2Histogram ------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  using H = obs::Log2Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  EXPECT_EQ(H::bucket_lower(0), 0u);
  EXPECT_EQ(H::bucket_lower(1), 1u);
  EXPECT_EQ(H::bucket_lower(11), 1024u);
  // Every value maps into the bucket whose range contains it.
  for (std::uint64_t v : {1ull, 7ull, 63ull, 4096ull, 1ull << 40}) {
    const std::size_t b = H::bucket_of(v);
    EXPECT_GE(v, H::bucket_lower(b));
    EXPECT_LT(v, H::bucket_lower(b + 1));
  }
}

TEST(Histogram, QuantilesExactOnBucketLowerBounds) {
  // Samples that are exact bucket lower bounds are returned verbatim by
  // quantile(): 10 samples, ranks 1..10.
  obs::Log2Histogram h;
  for (int i = 0; i < 5; ++i) h.record(16);   // ranks 1-5
  for (int i = 0; i < 4; ++i) h.record(256);  // ranks 6-9
  h.record(4096);                             // rank 10
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 5u * 16 + 4u * 256 + 4096);
  EXPECT_EQ(h.min(), 16u);
  EXPECT_EQ(h.max(), 4096u);
  EXPECT_EQ(h.quantile(0.5), 16u);    // rank 5
  EXPECT_EQ(h.quantile(0.9), 256u);   // rank 9
  EXPECT_EQ(h.quantile(0.99), 4096u); // rank 10
  EXPECT_EQ(h.quantile(1.0), 4096u);
}

TEST(Histogram, ZeroIsItsOwnBucket) {
  obs::Log2Histogram h;
  h.record(0);
  h.record(0);
  h.record(1);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1u);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  obs::Log2Histogram a, b, both;
  for (std::uint64_t v : {1ull, 32ull, 900ull}) {
    a.record(v);
    both.record(v);
  }
  for (std::uint64_t v : {0ull, 32ull, 1ull << 50}) {
    b.record(v);
    both.record(v);
  }
  a += b;
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), both.quantile(q));
  }
}

TEST(ProbeRecorder, SpanSaturatesAtZero) {
  obs::ProbeRecorder r;
  r.record_span(obs::Probe::kRemoteDelivery, 100, 40);  // racing clocks
  EXPECT_EQ(r.histogram(obs::Probe::kRemoteDelivery).max(), 0u);
  EXPECT_EQ(r.histogram(obs::Probe::kRemoteDelivery).count(), 1u);
}

// --- A small mixed workload used by the report tests --------------------------

class Wanderer : public ActorBase {
 public:
  void on_add(Context& ctx, std::int64_t v) {
    sum_ += v;
    ctx.charge_ns(100);
  }
  void on_hop(Context& ctx, NodeId next, std::int64_t remaining) {
    if (remaining > 0) {
      const auto after = static_cast<NodeId>((next + 1) % ctx.node_count());
      ctx.send<&Wanderer::on_hop>(ctx.self(), after, remaining - 1);
      ctx.migrate_to(next);
    }
  }
  void on_ask(Context& ctx) { ctx.reply(sum_); }
  HAL_BEHAVIOR(Wanderer, &Wanderer::on_add, &Wanderer::on_hop,
               &Wanderer::on_ask)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override { w.write(sum_); }
  void unpack_state(ByteReader& r) override { sum_ = r.read<std::int64_t>(); }

 private:
  std::int64_t sum_ = 0;
};

class Pinger : public ActorBase {
 public:
  void on_go(Context& ctx, MailAddress target, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.charge_ns(20000);
      ctx.send<&Wanderer::on_add>(target, std::int64_t{1});
    }
    ctx.request<&Wanderer::on_ask>(target, [](Context&, const JoinView&) {});
  }
  HAL_BEHAVIOR(Pinger, &Pinger::on_go)
};

obs::RunReport run_workload(MachineKind machine) {
  RuntimeConfig cfg;
  cfg.nodes = 4;
  cfg.machine = machine;
  Runtime rt(cfg);
  rt.load<Wanderer>();
  rt.load<Pinger>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  rt.inject<&Wanderer::on_hop>(w, NodeId{1}, std::int64_t{8});
  for (NodeId n = 0; n < cfg.nodes; ++n) {
    rt.inject<&Pinger::on_go>(rt.spawn<Pinger>(n), w, std::int64_t{16});
  }
  rt.run();
  return rt.report();
}

// --- RunReport ----------------------------------------------------------------

TEST(RunReport, JsonIsDeterministicAcrossSameSeedSimRuns) {
  const std::string a = run_workload(MachineKind::kSim).to_json();
  const std::string b = run_workload(MachineKind::kSim).to_json();
  EXPECT_EQ(a, b);  // byte-identical
  EXPECT_NE(a.find("\"schema\":\"halcyon.run_report.v5\""), std::string::npos);
  EXPECT_NE(a.find("\"workers\":1"), std::string::npos);  // sim: one stream
  EXPECT_NE(a.find("\"dead_letter_causes\":{\"unknown_actor\":"),
            std::string::npos);
  EXPECT_NE(a.find("\"buffers\":{\"acquired\":"), std::string::npos);
  EXPECT_NE(a.find("\"machine\":\"sim\""), std::string::npos);
}

TEST(RunReport, PerNodeStatsAndProbesSumToAggregate) {
  const obs::RunReport r = run_workload(MachineKind::kSim);
  ASSERT_EQ(r.per_node.size(), 4u);
  ASSERT_EQ(r.per_node_probes.size(), 4u);
  for (std::size_t s = 0; s < static_cast<std::size_t>(Stat::kCount); ++s) {
    std::uint64_t sum = 0;
    for (const StatBlock& blk : r.per_node) sum += blk.get(static_cast<Stat>(s));
    EXPECT_EQ(sum, r.total.get(static_cast<Stat>(s))) << kStatNames[s];
  }
  for (std::size_t p = 0; p < obs::kProbeCount; ++p) {
    std::uint64_t count = 0, sum = 0;
    for (const obs::ProbeRecorder& rec : r.per_node_probes) {
      count += rec.histogram(static_cast<obs::Probe>(p)).count();
      sum += rec.histogram(static_cast<obs::Probe>(p)).sum();
    }
    EXPECT_EQ(count, r.probes.histogram(static_cast<obs::Probe>(p)).count())
        << obs::kProbeNames[p];
    EXPECT_EQ(sum, r.probes.histogram(static_cast<obs::Probe>(p)).sum())
        << obs::kProbeNames[p];
  }
}

TEST(RunReport, MixedWorkloadPopulatesTheCoreProbes) {
  const obs::RunReport r = run_workload(MachineKind::kSim);
  using obs::Probe;
  for (Probe p : {Probe::kRemoteDelivery, Probe::kMigration,
                  Probe::kBulkTransfer, Probe::kMailboxResidency,
                  Probe::kMethodExecution, Probe::kJoinRoundTrip,
                  Probe::kDispatchBatch}) {
    EXPECT_GT(r.probes.histogram(p).count(), 0u)
        << obs::kProbeNames[static_cast<std::size_t>(p)];
  }
  EXPECT_GE(r.probes.populated(), 5u);
}

TEST(RunReport, ThreadMachineReportsWallTimeAndProbes) {
  const obs::RunReport r = run_workload(MachineKind::kThread);
  EXPECT_EQ(r.machine, "thread");
  EXPECT_EQ(r.nodes, 4u);
  EXPECT_GT(r.makespan_ns, 0u);
  EXPECT_GE(r.probes.populated(), 5u);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"machine\":\"thread\""), std::string::npos);
}

TEST(RunReport, DeprecatedAccessorsMatchReport) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  Runtime rt(cfg);
  rt.load<Wanderer>();
  rt.load<Pinger>();
  const MailAddress w = rt.spawn<Wanderer>(1);
  rt.inject<&Pinger::on_go>(rt.spawn<Pinger>(0), w, std::int64_t{8});
  rt.run();
  const obs::RunReport r = rt.report();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(rt.makespan(), r.makespan_ns);
  const StatBlock legacy = rt.total_stats();
#pragma GCC diagnostic pop
  for (std::size_t s = 0; s < static_cast<std::size_t>(Stat::kCount); ++s) {
    EXPECT_EQ(legacy.get(static_cast<Stat>(s)),
              r.total.get(static_cast<Stat>(s)));
  }
}

// --- RuntimeConfig validation ---------------------------------------------------

TEST(ConfigValidation, DefaultConfigIsValid) {
  EXPECT_FALSE(RuntimeConfig{}.validate().has_value());
}

TEST(ConfigValidation, ZeroNodesRejected) {
  RuntimeConfig cfg;
  cfg.nodes = 0;
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kZeroNodes);
}

TEST(ConfigValidation, NodeCountBeyondWireEncodingRejected) {
  RuntimeConfig cfg;
  cfg.nodes = kMaxNodes + 1;
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kTooManyNodes);
  cfg.nodes = kMaxNodes;  // the ceiling itself is fine
  EXPECT_FALSE(cfg.validate().has_value());
}

TEST(ConfigValidation, OversizedStackQuantumRejected) {
  RuntimeConfig cfg;
  cfg.max_stack_depth = kMaxStackDepth + 1;
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), ConfigErrorCode::kStackDepthTooLarge);
}

TEST(ConfigValidation, RuntimeConstructorThrowsTypedError) {
  RuntimeConfig cfg;
  cfg.nodes = 0;
  try {
    Runtime rt(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.code(), ConfigErrorCode::kZeroNodes);
    EXPECT_NE(std::string(e.what()).find("nodes"), std::string::npos);
  }
}

}  // namespace
}  // namespace hal
