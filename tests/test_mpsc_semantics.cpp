// Pins the Vyukov MPSC queue's *transient-miss* semantics: empty() may
// report true while a COMPLETED push is already in the queue, whenever
// that push is chained behind another producer's half-finished one. This
// is not a bug — it is the documented weakness the park handshake is
// built around: ThreadMachine::raw_push (and hal-lint HL006) require the
// consumer to re-arm its `sleeping` flag with a seq_cst exchange before
// EVERY empty() re-check, so the producer that eventually closes the gap
// observes the armed flag and notifies. If this test ever starts failing
// because empty() became exact, that proof (and the re-arm requirement)
// should be revisited together.
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mpsc_queue.hpp"

namespace {

// A step-wise model of the same algorithm (same members, same orders) so a
// single thread can hold a push half-done: phase 1 swings head_ to the new
// node, phase 2 links the predecessor. Between the two phases every node
// behind the new head — including fully pushed ones — is unreachable from
// tail_.
struct ModelNode {
  std::atomic<ModelNode*> next{nullptr};
  int value = 0;
};

struct ModelQueue {
  ModelNode stub;
  std::atomic<ModelNode*> head{&stub};
  ModelNode* tail = &stub;

  ModelNode* push_phase1(ModelNode* n) {
    return head.exchange(n, std::memory_order_acq_rel);
  }
  static void push_phase2(ModelNode* prev, ModelNode* n) {
    prev->next.store(n, std::memory_order_release);
  }
  void push(ModelNode* n) { push_phase2(push_phase1(n), n); }

  bool empty() const {
    return tail->next.load(std::memory_order_acquire) == nullptr;
  }
  ModelNode* pop() {
    ModelNode* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return nullptr;
    tail = next;
    return next;
  }
};

TEST(MpscSemantics, CompletedPushHiddenBehindHalfFinishedPush) {
  ModelQueue q;
  ModelNode a{.value = 1};
  ModelNode b{.value = 2};

  // Producer A starts: head_ now points at `a`, but the stub's next
  // pointer is not written yet.
  ModelNode* prev_a = q.push_phase1(&a);
  EXPECT_EQ(prev_a, &q.stub);

  // Producer B runs a COMPLETE push: both phases. Its node is fully
  // published — hanging off `a`, which tail_ cannot reach.
  q.push(&b);

  // The consumer's view: the queue claims empty and pop() agrees, even
  // though B's push finished. Exactly the window in which a parked node
  // must have re-armed `sleeping` so A's phase-2 producer-side exchange
  // observes it and notifies.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);

  // A closes the gap; the whole chain becomes visible in FIFO order.
  ModelQueue::push_phase2(prev_a, &a);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pop(), &a);
  EXPECT_EQ(q.pop(), &b);
  EXPECT_TRUE(q.empty());
}

TEST(MpscSemantics, RealQueueBasicFifoAndEmptyTransitions) {
  hal::MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.approx_size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscSemantics, TwoProducersPreservePerProducerOrder) {
  constexpr int kPerProducer = 2000;
  hal::MpscQueue<int> q;
  // Producer p tags values with p's sign: order must hold within each.
  std::thread prod_a([&] {
    for (int i = 1; i <= kPerProducer; ++i) q.push(i);
  });
  std::thread prod_b([&] {
    for (int i = 1; i <= kPerProducer; ++i) q.push(-i);
  });
  int last_a = 0;
  int last_b = 0;
  int drained = 0;
  while (drained < 2 * kPerProducer) {
    // A transiently-missed pop is legal (see the model test above): the
    // consumer simply retries, exactly like a woken node re-checking its
    // mailbox.
    std::optional<int> v = q.pop();
    if (!v.has_value()) continue;
    ++drained;
    if (*v > 0) {
      EXPECT_EQ(*v, last_a + 1);
      last_a = *v;
    } else {
      EXPECT_EQ(*v, last_b - 1);
      last_b = *v;
    }
  }
  prod_a.join();
  prod_b.join();
  EXPECT_EQ(last_a, kPerProducer);
  EXPECT_EQ(last_b, -kPerProducer);
  EXPECT_TRUE(q.empty());
}

}  // namespace
