// Tests: distributed garbage collection (the paper's §9 future work) —
// mark-sweep from roots across nodes, cross-node cycle collection, and the
// automatic reference tracing of interpreted (HALlite) actors.
#include <gtest/gtest.h>

#include <array>

#include "lang/interp.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

/// Holds up to two references to other actors, traced for GC.
class RefHolder : public ActorBase {
 public:
  void on_set(Context&, MailAddress a, MailAddress b) {
    a_ = a;
    b_ = b;
  }
  HAL_BEHAVIOR(RefHolder, &RefHolder::on_set)
  void trace_refs(const std::function<void(const MailAddress&)>& visit)
      const override {
    if (a_.valid()) visit(a_);
    if (b_.valid()) visit(b_);
  }
  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override {
    w.write(a_.pack_word0());
    w.write(a_.pack_word1());
    w.write(b_.pack_word0());
    w.write(b_.pack_word1());
  }
  void unpack_state(ByteReader& r) override {
    const auto a0 = r.read<std::uint64_t>();
    const auto a1 = r.read<std::uint64_t>();
    a_ = MailAddress::unpack(a0, a1);
    const auto b0 = r.read<std::uint64_t>();
    const auto b1 = r.read<std::uint64_t>();
    b_ = MailAddress::unpack(b0, b1);
  }

 private:
  MailAddress a_, b_;
};

std::size_t live_total(Runtime& rt) {
  std::size_t n = 0;
  for (NodeId i = 0; i < rt.nodes(); ++i) n += rt.kernel(i).live_actors();
  return n;
}

TEST(Gc, ReclaimsUnreachableKeepsRooted) {
  RuntimeConfig cfg;
  cfg.nodes = 4;
  Runtime rt(cfg);
  rt.load<RefHolder>();
  // Chain: root → a → b; plus two unreachable strays.
  const MailAddress root = rt.spawn<RefHolder>(0);
  const MailAddress a = rt.spawn<RefHolder>(1);
  const MailAddress b = rt.spawn<RefHolder>(2);
  (void)rt.spawn<RefHolder>(3);
  (void)rt.spawn<RefHolder>(1);
  rt.inject<&RefHolder::on_set>(root, a, MailAddress{});
  rt.inject<&RefHolder::on_set>(a, b, MailAddress{});
  rt.run();
  ASSERT_EQ(live_total(rt), 5u);

  const std::array<MailAddress, 1> roots = {root};
  EXPECT_EQ(rt.collect_garbage(roots), 2u);
  EXPECT_EQ(live_total(rt), 3u);
  // Rooted chain still resolvable.
  EXPECT_NE(rt.find_behavior<RefHolder>(b), nullptr);
}

TEST(Gc, CollectsCrossNodeCycles) {
  RuntimeConfig cfg;
  cfg.nodes = 3;
  Runtime rt(cfg);
  rt.load<RefHolder>();
  // x → y → z → x across three nodes: a cycle no per-node refcount could
  // reclaim; unreachable from the (empty) root set.
  const MailAddress x = rt.spawn<RefHolder>(0);
  const MailAddress y = rt.spawn<RefHolder>(1);
  const MailAddress z = rt.spawn<RefHolder>(2);
  rt.inject<&RefHolder::on_set>(x, y, MailAddress{});
  rt.inject<&RefHolder::on_set>(y, z, MailAddress{});
  rt.inject<&RefHolder::on_set>(z, x, MailAddress{});
  rt.run();
  EXPECT_EQ(rt.collect_garbage({}), 3u);
  EXPECT_EQ(live_total(rt), 0u);
}

TEST(Gc, CycleRootedAnywhereSurvivesWhole) {
  RuntimeConfig cfg;
  cfg.nodes = 3;
  Runtime rt(cfg);
  rt.load<RefHolder>();
  const MailAddress x = rt.spawn<RefHolder>(0);
  const MailAddress y = rt.spawn<RefHolder>(1);
  const MailAddress z = rt.spawn<RefHolder>(2);
  rt.inject<&RefHolder::on_set>(x, y, MailAddress{});
  rt.inject<&RefHolder::on_set>(y, z, MailAddress{});
  rt.inject<&RefHolder::on_set>(z, x, MailAddress{});
  rt.run();
  const std::array<MailAddress, 1> roots = {y};
  EXPECT_EQ(rt.collect_garbage(roots), 0u);
  EXPECT_EQ(live_total(rt), 3u);
}

TEST(Gc, FollowsMigratedActors) {
  RuntimeConfig cfg;
  cfg.nodes = 4;
  Runtime rt(cfg);
  rt.load<RefHolder>();
  // A migratable target referenced by the root; it moves twice, so the
  // marker must walk forward chains.
  class Mover : public ActorBase {
   public:
    void on_hop(Context& ctx, NodeId t) { ctx.migrate_to(t); }
    HAL_BEHAVIOR(Mover, &Mover::on_hop)
    bool migratable() const override { return true; }
    void pack_state(ByteWriter&) const override {}
    void unpack_state(ByteReader&) override {}
  };
  rt.load<Mover>();
  const MailAddress root = rt.spawn<RefHolder>(0);
  const MailAddress mover = rt.spawn<Mover>(0);
  rt.inject<&RefHolder::on_set>(root, mover, MailAddress{});
  rt.inject<&Mover::on_hop>(mover, NodeId{2});
  rt.inject<&Mover::on_hop>(mover, NodeId{3});
  rt.run();
  const std::array<MailAddress, 1> roots = {root};
  EXPECT_EQ(rt.collect_garbage(roots), 0u);
  // Referencing the mover through its (stale-home) address still works.
  EXPECT_NE(rt.find_behavior<Mover>(mover), nullptr);
}

TEST(Gc, SendingToReclaimedActorDeadLetters) {
  RuntimeConfig cfg;
  cfg.nodes = 2;
  Runtime rt(cfg);
  rt.load<RefHolder>();
  const MailAddress stray = rt.spawn<RefHolder>(1);
  rt.run();
  EXPECT_EQ(rt.collect_garbage({}), 1u);
  // The descriptor survives as a dead-letter sink: a stale send is counted
  // and dropped, not a crash.
  Kernel& k1 = rt.kernel(1);
  EXPECT_FALSE(k1.locality_check(stray).valid());
}

TEST(Gc, InterpretedActorsTraceAutomatically) {
  RuntimeConfig cfg;
  cfg.nodes = 3;
  Runtime rt(cfg);
  auto program = lang::load_program(rt, R"(
    behavior Node {
      state next = nil;
      method link(n) { next = n; }
    }
    main {
      let a = new Node on 0;
      let b = new Node on 1;
      let c = new Node on 2;   // never linked: unreachable after main dies
      send a.link(b);
    }
  )");
  const MailAddress main_actor = lang::start_main(rt, program);
  rt.run();
  // Actors: __main, a, b, c. Root only `a` (we must find it first: it's the
  // only Node on node 0).
  MailAddress a_addr;
  rt.kernel(0).for_each_actor([&](SlotId slot, ActorRecord& rec) {
    if (rec.impl->behavior_name() == "Node") a_addr = rec.address;
    (void)slot;
  });
  ASSERT_TRUE(a_addr.valid());
  const std::array<MailAddress, 1> roots = {a_addr};
  // Reclaims __main and c; a→b chain survives through HALlite state.
  EXPECT_EQ(rt.collect_garbage(roots), 2u);
  EXPECT_EQ(live_total(rt), 2u);
  (void)main_actor;
}

}  // namespace
}  // namespace hal
